#!/usr/bin/env python3
"""Validate a Sturgeon JSONL span trace and print per-phase statistics.

Dependency-free (stdlib json only) so it can run inside ctest on any CI
leg. Checks the contract between the trace and the end-of-run summary:

  - every line is a JSON object of type "span" or "run_summary";
  - span ids are unique and non-zero; parent ids reference a span in the
    file (or 0 for roots);
  - durations are non-negative and every child span lies within its
    parent's [start, start+dur] window;
  - the final line is a single "run_summary" whose span_count and
    per-phase {count, total_us} reconcile with the span lines.

Usage: trace_stats.py TRACE.jsonl
Exits non-zero with a message on the first violated invariant.
"""
import json
import sys


def fail(msg):
    print(f"trace_stats: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def percentile(sorted_vals, q):
    if not sorted_vals:
        return 0.0
    idx = q * (len(sorted_vals) - 1)
    lo = int(idx)
    hi = min(lo + 1, len(sorted_vals) - 1)
    frac = idx - lo
    return sorted_vals[lo] * (1.0 - frac) + sorted_vals[hi] * frac


def main():
    if len(sys.argv) != 2:
        fail("usage: trace_stats.py TRACE.jsonl")
    path = sys.argv[1]

    spans = {}
    summary = None
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                fail(f"line {lineno}: blank line")
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"line {lineno}: invalid JSON: {e}")
            if not isinstance(obj, dict):
                fail(f"line {lineno}: not a JSON object")
            kind = obj.get("type")
            if kind == "span":
                if summary is not None:
                    fail(f"line {lineno}: span after run_summary")
                for key in ("id", "parent", "name", "start_us", "dur_us"):
                    if key not in obj:
                        fail(f"line {lineno}: span missing '{key}'")
                sid = obj["id"]
                if not isinstance(sid, int) or sid <= 0:
                    fail(f"line {lineno}: bad span id {sid!r}")
                if sid in spans:
                    fail(f"line {lineno}: duplicate span id {sid}")
                if obj["dur_us"] < 0:
                    fail(f"line {lineno}: span {sid} negative duration")
                if "attrs" in obj and not isinstance(obj["attrs"], dict):
                    fail(f"line {lineno}: span {sid} attrs not an object")
                spans[sid] = obj
            elif kind == "run_summary":
                if summary is not None:
                    fail(f"line {lineno}: second run_summary")
                summary = obj
            else:
                fail(f"line {lineno}: unknown type {kind!r}")

    if summary is None:
        fail("no run_summary line")

    # Parent links and temporal containment.
    for sid, s in spans.items():
        pid = s["parent"]
        if pid == 0:
            continue
        if pid not in spans:
            fail(f"span {sid}: parent {pid} not in trace")
        p = spans[pid]
        if s["start_us"] < p["start_us"]:
            fail(f"span {sid} starts before its parent {pid}")
        if s["start_us"] + s["dur_us"] > p["start_us"] + p["dur_us"]:
            fail(f"span {sid} ends after its parent {pid}")

    # Reconciliation with the summary.
    if summary.get("span_count") != len(spans):
        fail(f"run_summary span_count {summary.get('span_count')} != "
             f"{len(spans)} span lines")
    by_phase = {}
    for s in spans.values():
        by_phase.setdefault(s["name"], []).append(s["dur_us"])
    phases = summary.get("phases")
    if not isinstance(phases, dict):
        fail("run_summary missing phases object")
    if set(phases) != set(by_phase):
        fail(f"run_summary phases {sorted(phases)} != trace phases "
             f"{sorted(by_phase)}")
    for name, info in phases.items():
        durs = by_phase[name]
        if info.get("count") != len(durs):
            fail(f"phase {name}: summary count {info.get('count')} != "
                 f"{len(durs)}")
        if info.get("total_us") != sum(durs):
            fail(f"phase {name}: summary total_us {info.get('total_us')} != "
                 f"{sum(durs)}")

    roots = sum(1 for s in spans.values() if s["parent"] == 0)
    print(f"trace_stats: OK: {len(spans)} spans, {roots} roots, "
          f"{len(by_phase)} phases")
    print(f"{'phase':<28} {'count':>7} {'p50_us':>9} {'p95_us':>9} "
          f"{'p99_us':>9} {'max_us':>9}")
    for name in sorted(by_phase):
        durs = sorted(by_phase[name])
        print(f"{name:<28} {len(durs):>7} "
              f"{percentile(durs, 0.50):>9.1f} "
              f"{percentile(durs, 0.95):>9.1f} "
              f"{percentile(durs, 0.99):>9.1f} "
              f"{durs[-1]:>9}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
