#!/usr/bin/env python3
"""Validate a Sturgeon JSONL span trace and print per-phase statistics.

Dependency-free (stdlib json only) so it can run inside ctest on any CI
leg. Checks the contract between the trace and the end-of-run summary:

  - every line is a JSON object of type "span" or "run_summary";
  - span ids are unique and non-zero; parent ids reference a span in the
    file (or 0 for roots);
  - durations are non-negative and every child span lies within its
    parent's [start, start+dur] window;
  - the final line is a single "run_summary" whose span_count and
    per-phase {count, total_us} reconcile with the span lines.

With --cluster the file is instead a cluster roll-up written by
cluster::write_cluster_jsonl: one "run_summary" line per node followed by
one cluster line. Checks:

  - node ids are unique and cover 0..N-1 exactly, with the cluster line
    last and its "nodes" field equal to N;
  - the cluster line's span_count and per-phase {count, total_us} equal
    the sums over the node lines;
  - every node ran the same number of epochs as the cluster;
  - metric ranges are sane (rates in [0, 1], watts and throughput
    non-negative);
  - fault/recovery accounting is coherent: per-node down/hung/safe-mode
    epoch counts fit inside the run, counters are non-negative and zero
    whenever faults_injected is zero, the cluster's dead_node_epochs and
    recovery fields are present, and caps never oversubscribed the
    budget (max_cap_sum_ratio <= 1 + tolerance);
  - comms accounting is coherent (all counters are zero when the run did
    not route traffic through the message channel): per-node lease
    renewals/expiries/autonomy epochs are non-negative with
    autonomy_epochs bounded by the run and last_autonomy_epoch in
    [-1, epochs); the cluster line carries the exact per-node lease
    sums; the grant ledger identity grants_sent == grants_delivered +
    grants_dropped + grants_in_flight holds; and grants are a subset of
    channel traffic (grants_sent <= comms_sent, grants_dropped <=
    comms_dropped, lease_renewals <= grants_sent).

With --fleet the file is a fleet roll-up written by
fleet::write_fleet_jsonl: the cluster roll-up above followed by one
"fleet_summary" line. The cluster checks run with one relaxation -- a
node under quiescence skipping steps fewer epochs than the run, so the
lockstep rule becomes node epochs + skipped_epochs == cluster epochs --
plus the engine and churn contracts:

  - per-node skipped_epochs and wakes are non-negative, and the cluster
    line carries their exact sums;
  - the fleet_summary's nodes/epochs/skipped_epochs/wakes match the
    cluster line, and skipped_fraction == skipped / (nodes * epochs);
  - churn conservation: jobs_submitted == jobs_placed + jobs_rejected +
    jobs_queued_at_end and jobs_placed == jobs_completed +
    jobs_active_at_end, with every counter non-negative and the queue
    peak at least the end-of-run queue depth.

Usage: trace_stats.py [--cluster | --fleet] TRACE.jsonl
Exits non-zero with a message on the first violated invariant.
"""
import json
import sys


def fail(msg):
    print(f"trace_stats: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def percentile(sorted_vals, q):
    if not sorted_vals:
        return 0.0
    idx = q * (len(sorted_vals) - 1)
    lo = int(idx)
    hi = min(lo + 1, len(sorted_vals) - 1)
    frac = idx - lo
    return sorted_vals[lo] * (1.0 - frac) + sorted_vals[hi] * frac


def read_jsonl(path):
    objs = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                fail(f"line {lineno}: blank line")
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"line {lineno}: invalid JSON: {e}")
            if not isinstance(obj, dict):
                fail(f"line {lineno}: not a JSON object")
            objs.append((lineno, obj))
    return objs


def check_rate(obj, key, where):
    v = obj.get(key)
    if not isinstance(v, (int, float)) or not 0.0 <= v <= 1.0:
        fail(f"{where}: {key} {v!r} not a rate in [0, 1]")


def check_nonneg(obj, key, where):
    v = obj.get(key)
    if not isinstance(v, (int, float)) or v < 0:
        fail(f"{where}: {key} {v!r} not a non-negative number")


def validate_cluster(lines, fleet=False):
    """Validate cluster::write_cluster_jsonl roll-up lines.

    With fleet=True the lockstep epoch rule is relaxed to
    node epochs + skipped_epochs == cluster epochs, and the per-node
    skipped_epochs/wakes counters are checked and summed against the
    cluster line. Returns the parsed cluster-line object.
    """
    node_lines = []
    cluster = None
    for lineno, obj in lines:
        if obj.get("type") != "run_summary":
            fail(f"line {lineno}: cluster file holds only run_summary "
                 f"lines, got {obj.get('type')!r}")
        if obj.get("cluster") is True:
            if cluster is not None:
                fail(f"line {lineno}: second cluster line")
            cluster = (lineno, obj)
        else:
            if cluster is not None:
                fail(f"line {lineno}: node line after the cluster line")
            node_lines.append((lineno, obj))

    if cluster is None:
        fail("no cluster roll-up line")
    if not node_lines:
        fail("no node lines")
    _, c = cluster

    ids = [obj.get("node") for _, obj in node_lines]
    if sorted(ids) != list(range(len(node_lines))):
        fail(f"node ids {ids} do not cover 0..{len(node_lines) - 1} "
             f"exactly once")
    if c.get("nodes") != len(node_lines):
        fail(f"cluster nodes {c.get('nodes')} != {len(node_lines)} "
             f"node lines")

    # span_count and per-phase totals reconcile against the node sums.
    span_sum = 0
    phase_sums = {}
    skipped_sum = 0
    wakes_sum = 0
    renewals_sum = 0
    expiries_sum = 0
    autonomy_sum = 0
    run_epochs = c.get("epochs", 0)
    for lineno, obj in node_lines:
        where = f"node {obj['node']}"
        if not isinstance(obj.get("span_count"), int):
            fail(f"{where}: missing span_count")
        span_sum += obj["span_count"]
        phases = obj.get("phases")
        if not isinstance(phases, dict):
            fail(f"{where}: missing phases object")
        for name, info in phases.items():
            agg = phase_sums.setdefault(name, {"count": 0, "total_us": 0})
            agg["count"] += info.get("count", 0)
            agg["total_us"] += info.get("total_us", 0)
        if fleet:
            check_nonneg(obj, "skipped_epochs", where)
            check_nonneg(obj, "wakes", where)
            skipped_sum += obj["skipped_epochs"]
            wakes_sum += obj["wakes"]
            covered = obj.get("epochs", 0) + obj["skipped_epochs"]
            if covered != c.get("epochs"):
                fail(f"{where}: epochs {obj.get('epochs')} + skipped "
                     f"{obj['skipped_epochs']} != cluster epochs "
                     f"{c.get('epochs')} (stepped + skipped must cover "
                     f"the run)")
        elif obj.get("epochs") != c.get("epochs"):
            fail(f"{where}: epochs {obj.get('epochs')} != cluster "
                 f"epochs {c.get('epochs')} (lockstep broken)")
        check_rate(obj, "qos_guarantee_rate", where)
        check_nonneg(obj, "be_throughput_norm", where)
        check_nonneg(obj, "budget_w", where)
        check_nonneg(obj, "mean_cap_w", where)
        check_nonneg(obj, "max_power_ratio", where)
        check_nonneg(obj, "throttled_epochs", where)
        for key in ("epochs_down", "epochs_hung", "safe_mode_epochs",
                    "watchdog_trips", "faults_injected", "sensor_rejected",
                    "actuator_retries", "actuator_gave_up"):
            check_nonneg(obj, key, where)
        epochs = obj.get("epochs", 0)
        for key in ("epochs_down", "epochs_hung", "safe_mode_epochs"):
            if obj[key] > epochs:
                fail(f"{where}: {key} {obj[key]} exceeds epochs {epochs}")
        if obj["faults_injected"] == 0:
            for key in ("epochs_down", "epochs_hung"):
                if obj[key] != 0:
                    fail(f"{where}: {key} {obj[key]} nonzero with zero "
                         f"faults_injected")
        # Lease accounting (all zero when comms is disabled). A node is
        # asked for its effective cap at most once per run epoch, so
        # autonomous node-epochs are bounded by the run even under
        # quiescence skipping (where per-node stepped epochs are fewer).
        for key in ("lease_renewals", "lease_expiries", "autonomy_epochs"):
            check_nonneg(obj, key, where)
        renewals_sum += obj["lease_renewals"]
        expiries_sum += obj["lease_expiries"]
        autonomy_sum += obj["autonomy_epochs"]
        if obj["autonomy_epochs"] > run_epochs:
            fail(f"{where}: autonomy_epochs {obj['autonomy_epochs']} "
                 f"exceeds run epochs {run_epochs}")
        last = obj.get("last_autonomy_epoch")
        if not isinstance(last, int) or not -1 <= last < max(run_epochs, 1):
            fail(f"{where}: last_autonomy_epoch {last!r} not in "
                 f"[-1, {run_epochs})")
        if (last == -1) != (obj["autonomy_epochs"] == 0):
            fail(f"{where}: last_autonomy_epoch {last} inconsistent with "
                 f"autonomy_epochs {obj['autonomy_epochs']}")

    if c.get("span_count") != span_sum:
        fail(f"cluster span_count {c.get('span_count')} != node sum "
             f"{span_sum}")
    cphases = c.get("phases")
    if not isinstance(cphases, dict):
        fail("cluster line missing phases object")
    if set(cphases) != set(phase_sums):
        fail(f"cluster phases {sorted(cphases)} != merged node phases "
             f"{sorted(phase_sums)}")
    for name, info in cphases.items():
        agg = phase_sums[name]
        if info.get("count") != agg["count"]:
            fail(f"cluster phase {name}: count {info.get('count')} != "
                 f"node sum {agg['count']}")
        if info.get("total_us") != agg["total_us"]:
            fail(f"cluster phase {name}: total_us {info.get('total_us')} "
                 f"!= node sum {agg['total_us']}")

    if fleet:
        if c.get("skipped_epochs") != skipped_sum:
            fail(f"cluster skipped_epochs {c.get('skipped_epochs')} != "
                 f"node sum {skipped_sum}")
        if c.get("wakes") != wakes_sum:
            fail(f"cluster wakes {c.get('wakes')} != node sum {wakes_sum}")

    if not isinstance(c.get("epochs"), int) or c["epochs"] <= 0:
        fail(f"cluster epochs {c.get('epochs')!r} not a positive integer")
    if not c.get("coordinator"):
        fail("cluster line missing coordinator")
    check_rate(c, "fleet_qos_guarantee_rate", "cluster")
    check_rate(c, "overshoot_fraction", "cluster")
    check_nonneg(c, "aggregate_be_throughput", "cluster")
    check_nonneg(c, "power_budget_w", "cluster")
    check_nonneg(c, "max_power_ratio", "cluster")
    check_nonneg(c, "mean_power_w", "cluster")
    check_nonneg(c, "max_cap_sum_ratio", "cluster")
    check_nonneg(c, "dead_node_epochs", "cluster")
    check_nonneg(c, "recovery_episodes", "cluster")
    check_nonneg(c, "mttr_p95_epochs", "cluster")
    if c["max_cap_sum_ratio"] > 1.0 + 1e-6:
        fail(f"cluster max_cap_sum_ratio {c['max_cap_sum_ratio']} "
             f"oversubscribes the budget")

    # Comms channel + grant-ledger accounting. Every counter must be
    # present (zero when the run did not use the message channel).
    for key in ("comms_sent", "comms_dropped", "comms_delayed",
                "comms_duplicated", "grants_sent", "grants_delivered",
                "grants_dropped", "grants_in_flight", "lease_renewals",
                "lease_expiries", "autonomy_epochs"):
        check_nonneg(c, key, "cluster")
    if c["grants_sent"] != (c["grants_delivered"] + c["grants_dropped"]
                            + c["grants_in_flight"]):
        fail(f"cluster grant identity broken: grants_sent "
             f"{c['grants_sent']} != delivered {c['grants_delivered']} + "
             f"dropped {c['grants_dropped']} + in_flight "
             f"{c['grants_in_flight']}")
    if c["grants_sent"] > c["comms_sent"]:
        fail(f"cluster grants_sent {c['grants_sent']} exceeds comms_sent "
             f"{c['comms_sent']} (grants are a subset of all traffic)")
    if c["grants_dropped"] > c["comms_dropped"]:
        fail(f"cluster grants_dropped {c['grants_dropped']} exceeds "
             f"comms_dropped {c['comms_dropped']}")
    if c["lease_renewals"] > c["grants_delivered"]:
        fail(f"cluster lease_renewals {c['lease_renewals']} exceeds "
             f"grants_delivered {c['grants_delivered']} (every adoption "
             f"needs a delivered grant with a fresh seq)")
    for key, want in (("lease_renewals", renewals_sum),
                      ("lease_expiries", expiries_sum),
                      ("autonomy_epochs", autonomy_sum)):
        if c[key] != want:
            fail(f"cluster {key} {c[key]} != node sum {want}")
    if c["dead_node_epochs"] > len(node_lines) * c["epochs"]:
        fail(f"cluster dead_node_epochs {c['dead_node_epochs']} exceeds "
             f"{len(node_lines)} nodes x {c['epochs']} epochs")

    print(f"trace_stats: OK: cluster of {len(node_lines)} nodes, "
          f"{c['epochs']} epochs, {span_sum} spans, "
          f"coordinator {c['coordinator']}, "
          f"dead_node_epochs {c['dead_node_epochs']}, "
          f"recovery_episodes {c['recovery_episodes']} "
          f"(mttr_p95 {c['mttr_p95_epochs']})")
    if c["comms_sent"]:
        print(f"trace_stats: comms: {c['comms_sent']} msgs "
              f"({c['comms_dropped']} dropped, {c['comms_delayed']} "
              f"delayed, {c['comms_duplicated']} duplicated), grants "
              f"{c['grants_sent']} = {c['grants_delivered']} delivered + "
              f"{c['grants_dropped']} dropped + {c['grants_in_flight']} "
              f"in flight, leases: {c['lease_renewals']} renewals / "
              f"{c['lease_expiries']} expiries / {c['autonomy_epochs']} "
              f"autonomous node-epochs")
    print(f"{'node':>4} {'policy':<34} {'epochs':>7} {'qos_rate':>9} "
          f"{'be_thr':>7} {'mean_cap_w':>11} {'throttled':>9} "
          f"{'faults':>7} {'down':>5} {'safe':>5}")
    for _, obj in sorted(node_lines, key=lambda x: x[1]["node"]):
        print(f"{obj['node']:>4} {obj.get('policy', '?')[:34]:<34} "
              f"{obj['epochs']:>7} {obj['qos_guarantee_rate']:>9.4f} "
              f"{obj['be_throughput_norm']:>7.3f} "
              f"{obj['mean_cap_w']:>11.1f} {obj['throttled_epochs']:>9} "
              f"{obj['faults_injected']:>7} {obj['epochs_down']:>5} "
              f"{obj['safe_mode_epochs']:>5}")
    return c


def validate_fleet(path):
    """Validate a fleet::write_fleet_jsonl roll-up file."""
    lines = read_jsonl(path)
    if not lines or lines[-1][1].get("type") != "fleet_summary":
        fail("last line is not a fleet_summary")
    lineno, f = lines[-1]
    c = validate_cluster(lines[:-1], fleet=True)

    where = f"fleet_summary (line {lineno})"
    for key in ("nodes", "epochs", "skipped_epochs", "wakes"):
        if f.get(key) != c.get(key):
            fail(f"{where}: {key} {f.get(key)} != cluster line "
                 f"{c.get(key)}")
    for key in ("events_processed", "event_queue_peak", "cap_revisions",
                "rebalances", "jobs_submitted", "jobs_placed",
                "jobs_completed", "jobs_migrated", "jobs_rejected",
                "job_queue_peak", "jobs_active_at_end",
                "jobs_queued_at_end", "mean_job_completion_epochs",
                "skipped_fraction"):
        check_nonneg(f, key, where)

    want_frac = f["skipped_epochs"] / (f["nodes"] * f["epochs"])
    if abs(f["skipped_fraction"] - want_frac) > 1e-9:
        fail(f"{where}: skipped_fraction {f['skipped_fraction']} != "
             f"skipped / (nodes * epochs) = {want_frac}")

    # Churn conservation: every submitted job is placed, rejected or
    # still queued; every placed job completed or is still running.
    if f["jobs_submitted"] != (f["jobs_placed"] + f["jobs_rejected"]
                               + f["jobs_queued_at_end"]):
        fail(f"{where}: jobs_submitted {f['jobs_submitted']} != placed "
             f"{f['jobs_placed']} + rejected {f['jobs_rejected']} + "
             f"queued_at_end {f['jobs_queued_at_end']}")
    if f["jobs_placed"] != f["jobs_completed"] + f["jobs_active_at_end"]:
        fail(f"{where}: jobs_placed {f['jobs_placed']} != completed "
             f"{f['jobs_completed']} + active_at_end "
             f"{f['jobs_active_at_end']}")
    if f["job_queue_peak"] < f["jobs_queued_at_end"]:
        fail(f"{where}: job_queue_peak {f['job_queue_peak']} < "
             f"jobs_queued_at_end {f['jobs_queued_at_end']}")
    if f["jobs_completed"] == 0 and f["mean_job_completion_epochs"] != 0:
        fail(f"{where}: mean_job_completion_epochs "
             f"{f['mean_job_completion_epochs']} nonzero with zero "
             f"completions")

    print(f"trace_stats: OK: fleet_summary: "
          f"{f['skipped_epochs']} skipped node-epochs "
          f"({f['skipped_fraction']:.1%}), {f['wakes']} wakes, "
          f"{f['events_processed']} events, "
          f"{f['rebalances']} rebalances / {f['cap_revisions']} delta "
          f"revisions, jobs {f['jobs_submitted']} submitted / "
          f"{f['jobs_completed']} completed / {f['jobs_migrated']} "
          f"migrated / {f['jobs_rejected']} rejected")
    return 0


def main():
    args = sys.argv[1:]
    cluster_mode = "--cluster" in args
    fleet_mode = "--fleet" in args
    args = [a for a in args if a not in ("--cluster", "--fleet")]
    if len(args) != 1 or (cluster_mode and fleet_mode):
        fail("usage: trace_stats.py [--cluster | --fleet] TRACE.jsonl")
    if fleet_mode:
        return validate_fleet(args[0])
    if cluster_mode:
        validate_cluster(read_jsonl(args[0]))
        return 0
    path = args[0]

    spans = {}
    summary = None
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                fail(f"line {lineno}: blank line")
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"line {lineno}: invalid JSON: {e}")
            if not isinstance(obj, dict):
                fail(f"line {lineno}: not a JSON object")
            kind = obj.get("type")
            if kind == "span":
                if summary is not None:
                    fail(f"line {lineno}: span after run_summary")
                for key in ("id", "parent", "name", "start_us", "dur_us"):
                    if key not in obj:
                        fail(f"line {lineno}: span missing '{key}'")
                sid = obj["id"]
                if not isinstance(sid, int) or sid <= 0:
                    fail(f"line {lineno}: bad span id {sid!r}")
                if sid in spans:
                    fail(f"line {lineno}: duplicate span id {sid}")
                if obj["dur_us"] < 0:
                    fail(f"line {lineno}: span {sid} negative duration")
                if "attrs" in obj and not isinstance(obj["attrs"], dict):
                    fail(f"line {lineno}: span {sid} attrs not an object")
                spans[sid] = obj
            elif kind == "run_summary":
                if summary is not None:
                    fail(f"line {lineno}: second run_summary")
                summary = obj
            else:
                fail(f"line {lineno}: unknown type {kind!r}")

    if summary is None:
        fail("no run_summary line")

    # Parent links and temporal containment.
    for sid, s in spans.items():
        pid = s["parent"]
        if pid == 0:
            continue
        if pid not in spans:
            fail(f"span {sid}: parent {pid} not in trace")
        p = spans[pid]
        if s["start_us"] < p["start_us"]:
            fail(f"span {sid} starts before its parent {pid}")
        if s["start_us"] + s["dur_us"] > p["start_us"] + p["dur_us"]:
            fail(f"span {sid} ends after its parent {pid}")

    # Reconciliation with the summary.
    if summary.get("span_count") != len(spans):
        fail(f"run_summary span_count {summary.get('span_count')} != "
             f"{len(spans)} span lines")
    by_phase = {}
    for s in spans.values():
        by_phase.setdefault(s["name"], []).append(s["dur_us"])
    phases = summary.get("phases")
    if not isinstance(phases, dict):
        fail("run_summary missing phases object")
    if set(phases) != set(by_phase):
        fail(f"run_summary phases {sorted(phases)} != trace phases "
             f"{sorted(by_phase)}")
    for name, info in phases.items():
        durs = by_phase[name]
        if info.get("count") != len(durs):
            fail(f"phase {name}: summary count {info.get('count')} != "
                 f"{len(durs)}")
        if info.get("total_us") != sum(durs):
            fail(f"phase {name}: summary total_us {info.get('total_us')} != "
                 f"{sum(durs)}")

    roots = sum(1 for s in spans.values() if s["parent"] == 0)
    print(f"trace_stats: OK: {len(spans)} spans, {roots} roots, "
          f"{len(by_phase)} phases")
    print(f"{'phase':<28} {'count':>7} {'p50_us':>9} {'p95_us':>9} "
          f"{'p99_us':>9} {'max_us':>9}")
    for name in sorted(by_phase):
        durs = sorted(by_phase[name])
        print(f"{name:<28} {len(durs):>7} "
              f"{percentile(durs, 0.50):>9.1f} "
              f"{percentile(durs, 0.95):>9.1f} "
              f"{percentile(durs, 0.99):>9.1f} "
              f"{durs[-1]:>9}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
