#!/usr/bin/env python3
"""clang-tidy wrapper that diffs findings against a checked-in baseline.

.clang-tidy promotes every enabled family to an error
(`WarningsAsErrors: '*'`), so a bare clang-tidy run fails on the first
legacy finding and blocks unrelated PRs. This wrapper makes the gate
incremental instead:

  * every finding is normalized to `<relpath> [check] message` (no
    line/column, so unrelated edits that shift lines do not churn the
    diff) and compared against tools/tidy_baseline.txt;
  * a finding NOT in the baseline fails the run -- new violations are
    rejected at the door;
  * a baseline entry that no longer fires also fails the run -- burned-
    down legacy findings must be deleted from the baseline in the same
    change, keeping the debt list honest (regenerate with
    --update-baseline).

The baseline is currently empty: the tree is clean under the enabled
check families, and this gate keeps it that way.

Usage:
  python3 tools/run_tidy.py -p build [--root .] [--update-baseline]
      [--require] [--out FILE] [--reuse]

Behavior without clang-tidy on PATH: exit 0 with a notice (local dev
containers may not ship clang); pass --require to fail instead (CI
does). --out writes the normalized findings for caching; --reuse reads
a previously written --out file instead of re-running clang-tidy (the CI
analyze leg caches it keyed on a hash of src/ + .clang-tidy).

Exit status: 0 clean/skipped, 1 diff non-empty or tidy crashed, 2 usage.
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
from pathlib import Path

BASELINE_HEADER = """\
# clang-tidy baseline for tools/run_tidy.py.
#
# One normalized finding per line: `<relpath> [check] message`. Entries
# here are known legacy violations that do not fail CI; removing the
# code that caused one REQUIRES removing its entry (the runner fails on
# stale entries). Add entries only via --update-baseline, and only with
# a burn-down plan -- an empty file is the goal state.
"""


def find_sources(root: Path) -> list[Path]:
    return sorted((root / "src").rglob("*.cpp"))


def normalize(raw_output: str, root: Path) -> list[str]:
    """Collapse clang-tidy output to stable `<relpath> [check] message` keys."""
    findings: list[str] = []
    for line in raw_output.splitlines():
        # e.g. /abs/path/src/core/x.cpp:12:5: warning: msg [check-name]
        parts = line.split(": ", 2)
        if len(parts) != 3 or parts[1] not in ("warning", "error"):
            continue
        loc, _, rest = parts
        pieces = loc.rsplit(":", 2)
        path = Path(pieces[0])
        try:
            rel = path.resolve().relative_to(root)
        except ValueError:
            rel = path
        findings.append(f"{rel} {rest.strip()}")
    return sorted(findings)


def read_baseline(path: Path) -> list[str]:
    if not path.is_file():
        return []
    lines = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            lines.append(line)
    return sorted(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-p", "--build-dir", default="build",
                        help="build dir with compile_commands.json")
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default tools/tidy_baseline.txt)")
    parser.add_argument("--clang-tidy", default="clang-tidy",
                        help="clang-tidy binary")
    parser.add_argument("--require", action="store_true",
                        help="fail (not skip) when clang-tidy is missing")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings")
    parser.add_argument("--out", default=None,
                        help="write normalized findings to this file")
    parser.add_argument("--reuse", action="store_true",
                        help="read findings from --out instead of running")
    args = parser.parse_args()

    root = Path(args.root).resolve()
    baseline_path = (Path(args.baseline) if args.baseline
                     else root / "tools" / "tidy_baseline.txt")

    if args.reuse and args.out and Path(args.out).is_file():
        findings = read_baseline(Path(args.out))
        print(f"run_tidy.py: reusing {len(findings)} cached finding(s) "
              f"from {args.out}")
    else:
        tidy = shutil.which(args.clang_tidy)
        if tidy is None:
            msg = f"run_tidy.py: {args.clang_tidy} not found"
            if args.require:
                print(f"{msg} (--require set)", file=sys.stderr)
                return 1
            print(f"{msg}; skipping (the CI analyze leg runs this for real)")
            return 0
        build_dir = Path(args.build_dir)
        if not (build_dir / "compile_commands.json").is_file():
            print(f"run_tidy.py: no compile_commands.json in {build_dir} "
                  "(configure with CMake first)", file=sys.stderr)
            return 2
        sources = find_sources(root)
        if not sources:
            print("run_tidy.py: no sources under src/", file=sys.stderr)
            return 2
        cmd = [tidy, "-p", str(build_dir), "--quiet"]
        cmd += [str(s) for s in sources]
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              check=False)
        # clang-tidy exits non-zero on WarningsAsErrors hits, which is
        # exactly what the baseline exists to absorb; only crashes
        # (signals / internal errors with no parsable findings) are fatal.
        findings = normalize(proc.stdout + proc.stderr, root)
        if proc.returncode != 0 and not findings:
            print(proc.stdout, file=sys.stderr)
            print(proc.stderr, file=sys.stderr)
            print(f"run_tidy.py: clang-tidy failed (rc={proc.returncode}) "
                  "with no parsable findings", file=sys.stderr)
            return 1
        if args.out:
            out = Path(args.out)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text("".join(f"{f}\n" for f in findings),
                           encoding="utf-8")

    if args.update_baseline:
        baseline_path.write_text(
            BASELINE_HEADER + "".join(f"{f}\n" for f in findings),
            encoding="utf-8")
        print(f"run_tidy.py: baseline rewritten with {len(findings)} "
              f"finding(s): {baseline_path}")
        return 0

    baseline = read_baseline(baseline_path)
    new = [f for f in findings if f not in set(baseline)]
    stale = [f for f in baseline if f not in set(findings)]
    if new:
        print(f"run_tidy.py: {len(new)} NEW finding(s) not in baseline:")
        for f in new:
            print(f"  + {f}")
    if stale:
        print(f"run_tidy.py: {len(stale)} STALE baseline entr(ies) no "
              "longer firing -- delete them (or --update-baseline):")
        for f in stale:
            print(f"  - {f}")
    if new or stale:
        return 1
    print(f"run_tidy.py: OK ({len(findings)} finding(s), all baselined; "
          f"baseline {baseline_path.name} in sync)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
