#!/usr/bin/env python3
"""Dependency-free custom linter for the Sturgeon repository.

Registered as a ctest test (`lint.sturgeon`) so `ctest` fails on any
violation. Checks are deliberately conservative -- every rule is either
mechanical (pragma once, include order) or bans a call that has a strictly
better replacement in this codebase (Rng over std::rand, log.h over printf,
containers/smart pointers over raw new/delete).

Rules:
  SL001  header file missing `#pragma once`
  SL002  banned call: std::rand/srand (use util/rng.h), printf/puts to
         stdout (use util/log.h or fprintf/snprintf with explicit streams)
  SL003  raw `new` / `delete` expression (use containers or smart pointers)
  SL004  include-order hygiene: within a contiguous include block, <...>
         includes must precede "..." includes, and each group must be
         alphabetically sorted
  SL005  TODO/FIXME without an issue reference (write `TODO(#123): ...`)
  SL006  `using namespace` at file scope in a header

Run locally:  python3 tools/lint.py [--root .] [--list-rules]
Exit status:  0 clean, 1 violations found, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOURCE_DIRS = ("src", "tests", "bench", "examples", "tools")
HEADER_SUFFIXES = {".h", ".hpp"}
CXX_SUFFIXES = {".h", ".hpp", ".cc", ".cpp", ".cxx"}

BANNED_CALLS = (
    # (regex on comment/string-stripped code, message)
    (re.compile(r"\bstd::rand\b|\bsrand\s*\("),
     "std::rand/srand banned: use util/rng.h (seedable, reproducible)"),
    (re.compile(r"(?<![\w:])(?:std::)?printf\s*\(|(?<![\w:])puts\s*\("),
     "printf/puts banned: use util/log.h (or fprintf/snprintf with an "
     "explicit stream)"),
)

RAW_NEW_RE = re.compile(r"(?<![\w_])new\s+[A-Za-z_:<]")
RAW_DELETE_RE = re.compile(r"(?<![\w_])delete(\s*\[\s*\])?\s+[A-Za-z_:*(]")
TODO_RE = re.compile(r"\b(TODO|FIXME)\b(?!\(#\d+\))")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\s+[\w:]+\s*;")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(<[^>]+>|"[^"]+")')


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line breaks.

    A lexer-lite pass: good enough for banned-token scans without false
    positives from documentation or log messages.
    """
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":  # line comment
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":  # block comment
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c in "\"'":  # string / char literal
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.violations: list[tuple[Path, int, str, str]] = []

    def report(self, path: Path, line: int, rule: str, msg: str) -> None:
        self.violations.append((path.relative_to(self.root), line, rule, msg))

    # -- rules ------------------------------------------------------------

    def check_pragma_once(self, path: Path, text: str) -> None:
        if path.suffix not in HEADER_SUFFIXES:
            return
        for lineno, line in enumerate(text.splitlines(), 1):
            if line.strip() == "#pragma once":
                return
        self.report(path, 1, "SL001", "header is missing `#pragma once`")

    def check_banned_calls(self, path: Path, stripped: str) -> None:
        for lineno, line in enumerate(stripped.splitlines(), 1):
            for pattern, msg in BANNED_CALLS:
                if pattern.search(line):
                    self.report(path, lineno, "SL002", msg)
            if RAW_NEW_RE.search(line) or RAW_DELETE_RE.search(line):
                self.report(
                    path, lineno, "SL003",
                    "raw new/delete banned: use containers or smart pointers")

    def check_include_order(self, path: Path, text: str) -> None:
        lines = text.splitlines()
        block: list[tuple[int, str]] = []  # (lineno, include spec)
        for lineno, line in enumerate(lines + [""], 1):
            m = INCLUDE_RE.match(line)
            if m:
                block.append((lineno, m.group(1)))
                continue
            if block:
                self._check_include_block(path, block)
                block = []

    def _check_include_block(self, path: Path,
                             block: list[tuple[int, str]]) -> None:
        # Within one contiguous block: system includes first, then project
        # includes, each group sorted. Blocks are separated by blank lines,
        # so the conventional own-header / system / project grouping is
        # expressible and only intra-block disorder is flagged.
        seen_quoted = False
        prev_system: str | None = None
        prev_quoted: str | None = None
        for lineno, spec in block:
            if spec.startswith("<"):
                if seen_quoted:
                    self.report(
                        path, lineno, "SL004",
                        f"system include {spec} after project includes in "
                        "the same block (separate groups with a blank line)")
                elif prev_system is not None and spec < prev_system:
                    self.report(
                        path, lineno, "SL004",
                        f"system include {spec} not sorted (after "
                        f"{prev_system})")
                prev_system = spec if prev_system is None \
                    else max(prev_system, spec)
            else:
                seen_quoted = True
                if prev_quoted is not None and spec < prev_quoted:
                    self.report(
                        path, lineno, "SL004",
                        f"project include {spec} not sorted (after "
                        f"{prev_quoted})")
                prev_quoted = spec if prev_quoted is None \
                    else max(prev_quoted, spec)

    def check_todo_hygiene(self, path: Path, text: str) -> None:
        for lineno, line in enumerate(text.splitlines(), 1):
            if TODO_RE.search(line):
                self.report(
                    path, lineno, "SL005",
                    "TODO/FIXME without an issue reference: write "
                    "`TODO(#123): ...`")

    def check_using_namespace(self, path: Path, stripped: str) -> None:
        if path.suffix not in HEADER_SUFFIXES:
            return
        for lineno, line in enumerate(stripped.splitlines(), 1):
            if USING_NAMESPACE_RE.match(line):
                self.report(
                    path, lineno, "SL006",
                    "`using namespace` in a header leaks into every "
                    "includer")

    # -- driver -----------------------------------------------------------

    def lint_file(self, path: Path) -> None:
        if path == Path(__file__).resolve():
            return  # the rule docs here would trip the TODO check
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as e:
            self.report(path, 1, "SL000", f"unreadable: {e}")
            return
        if path.suffix in CXX_SUFFIXES:
            stripped = strip_comments_and_strings(text)
            self.check_pragma_once(path, text)
            self.check_banned_calls(path, stripped)
            self.check_include_order(path, text)
            self.check_using_namespace(path, stripped)
        self.check_todo_hygiene(path, text)

    def run(self) -> int:
        files: list[Path] = []
        for d in SOURCE_DIRS:
            base = self.root / d
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix in CXX_SUFFIXES | {".py"} and path.is_file():
                    files.append(path)
        for path in files:
            self.lint_file(path)
        if self.violations:
            for path, line, rule, msg in self.violations:
                print(f"{path}:{line}: [{rule}] {msg}")
            print(f"\nlint.py: {len(self.violations)} violation(s) in "
                  f"{len(files)} files")
            return 1
        print(f"lint.py: OK ({len(files)} files clean)")
        return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule ids and exit")
    args = parser.parse_args()
    if args.list_rules:
        print(__doc__)
        return 0
    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"lint.py: no such directory: {root}", file=sys.stderr)
        return 2
    return Linter(root).run()


if __name__ == "__main__":
    sys.exit(main())
