#!/usr/bin/env python3
"""Dependency-free custom linter for the Sturgeon repository.

Registered as a ctest test (`lint.sturgeon`) so `ctest` fails on any
violation. Checks are deliberately conservative -- every rule is either
mechanical (pragma once, include order) or bans a call that has a strictly
better replacement in this codebase (Rng over std::rand, log.h over printf,
containers/smart pointers over raw new/delete).

Rules:
  SL001  header file missing `#pragma once`
  SL002  banned call: std::rand/srand (use util/rng.h), printf/puts to
         stdout (use util/log.h or fprintf/snprintf with explicit streams)
  SL003  raw `new` / `delete` expression (use containers or smart pointers)
  SL004  include-order hygiene: within a contiguous include block, <...>
         includes must precede "..." includes, and each group must be
         alphabetically sorted
  SL005  TODO/FIXME without an issue reference (write `TODO(#123): ...`)
  SL006  `using namespace` at file scope in a header
  SL007  determinism: wall-clock/entropy sources banned in src/
         (std::random_device, time(), clock(), std::chrono::system_clock);
         use an injectable clock or util/rng.h derive_seed streams
  SL008  determinism: std::unordered_map/unordered_set in exporter /
         recorder / report / search files in src/ where iteration order
         can reach output (bit-identity hazard); use std::map or sort a
         snapshot, or waive with `// lint: unordered-ok(<reason>)`
  SL009  every mutex member in src/ must state what it guards: raw
         std::mutex/std::shared_mutex members are rejected (use the
         annotated sturgeon::Mutex/SharedMutex from
         util/thread_annotations.h), and each annotated mutex must have
         at least one STURGEON_GUARDED_BY(<mutex>) field in the same
         file or an explicit `// lint: unguarded(<reason>)` waiver on
         (or directly above) its declaration

Run locally:  python3 tools/lint.py [--root .] [--list-rules] [--self-test]
Exit status:  0 clean, 1 violations found, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOURCE_DIRS = ("src", "tests", "bench", "examples", "tools")
HEADER_SUFFIXES = {".h", ".hpp"}
CXX_SUFFIXES = {".h", ".hpp", ".cc", ".cpp", ".cxx"}

BANNED_CALLS = (
    # (regex on comment/string-stripped code, message)
    (re.compile(r"\bstd::rand\b|\bsrand\s*\("),
     "std::rand/srand banned: use util/rng.h (seedable, reproducible)"),
    (re.compile(r"(?<![\w:])(?:std::)?printf\s*\(|(?<![\w:])puts\s*\("),
     "printf/puts banned: use util/log.h (or fprintf/snprintf with an "
     "explicit stream)"),
)

RAW_NEW_RE = re.compile(r"(?<![\w_])new\s+[A-Za-z_:<]")
RAW_DELETE_RE = re.compile(r"(?<![\w_])delete(\s*\[\s*\])?\s+[A-Za-z_:*(]")
TODO_RE = re.compile(r"\b(TODO|FIXME)\b(?!\(#\d+\))")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\s+[\w:]+\s*;")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(<[^>]+>|"[^"]+")')

# SL007: entropy / wall-clock sources that break bit-identical replay.
# `time(`/`clock(` must not be part of a longer identifier or a member
# call (epoch_time(), ctx.clock() stay legal).
NONDETERMINISM_RES = (
    (re.compile(r"\bstd::random_device\b"),
     "std::random_device banned in src/: seeds must flow from util/rng.h "
     "derive_seed so runs replay bit-identically"),
    (re.compile(r"(?<![\w.:])(?:std::)?time\s*\("),
     "time() banned in src/: wall-clock must come from an injectable "
     "clock (telemetry::Tracer::Clock pattern)"),
    (re.compile(r"(?<![\w.:])(?:std::)?clock\s*\("),
     "clock() banned in src/: wall-clock must come from an injectable "
     "clock (telemetry::Tracer::Clock pattern)"),
    (re.compile(r"\bstd::chrono::system_clock\b"),
     "std::chrono::system_clock banned in src/: use steady_clock behind "
     "an injectable clock; wall-clock timestamps break bit-identity"),
)

# SL008 applies where iteration order plausibly reaches program output.
ORDER_SENSITIVE_FILE_RE = re.compile(r"(export|recorder|report|search)")
UNORDERED_RE = re.compile(r"\bstd::unordered_(map|set)\b")
UNORDERED_WAIVER_RE = re.compile(r"lint:\s*unordered-ok\([^)]+\)")

# SL009: one declaration regex catches raw std mutexes (rejected) and
# annotated sturgeon wrappers (must guard something or carry a waiver).
# `\s+\w+\s*;` keeps MutexLock/CondVar locals and parameters out.
MUTEX_MEMBER_RE = re.compile(
    r"\b(?P<type>std::mutex|std::shared_mutex|std::recursive_mutex|"
    r"(?:sturgeon::)?(?:Shared)?Mutex)\s+(?P<name>[A-Za-z_]\w*)\s*;")
GUARDED_BY_RE_TEMPLATE = \
    r"STURGEON(?:_PT)?_GUARDED_BY\(\s*(?:&?\s*)?{name}\s*\)"
UNGUARDED_WAIVER_RE = re.compile(r"lint:\s*unguarded\([^)]+\)")

# Files exempt from SL009: the annotation layer itself wraps the raw std
# types by definition.
SL009_EXEMPT = {Path("src/util/thread_annotations.h")}


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line breaks.

    A lexer-lite pass: good enough for banned-token scans without false
    positives from documentation or log messages.
    """
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":  # line comment
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":  # block comment
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c in "\"'":  # string / char literal
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.violations: list[tuple[Path, int, str, str]] = []

    def report(self, path: Path, line: int, rule: str, msg: str) -> None:
        self.violations.append((path.relative_to(self.root), line, rule, msg))

    # -- rules ------------------------------------------------------------

    def check_pragma_once(self, path: Path, text: str) -> None:
        if path.suffix not in HEADER_SUFFIXES:
            return
        for lineno, line in enumerate(text.splitlines(), 1):
            if line.strip() == "#pragma once":
                return
        self.report(path, 1, "SL001", "header is missing `#pragma once`")

    def check_banned_calls(self, path: Path, stripped: str) -> None:
        for lineno, line in enumerate(stripped.splitlines(), 1):
            for pattern, msg in BANNED_CALLS:
                if pattern.search(line):
                    self.report(path, lineno, "SL002", msg)
            if RAW_NEW_RE.search(line) or RAW_DELETE_RE.search(line):
                self.report(
                    path, lineno, "SL003",
                    "raw new/delete banned: use containers or smart pointers")

    def check_include_order(self, path: Path, text: str) -> None:
        lines = text.splitlines()
        block: list[tuple[int, str]] = []  # (lineno, include spec)
        for lineno, line in enumerate(lines + [""], 1):
            m = INCLUDE_RE.match(line)
            if m:
                block.append((lineno, m.group(1)))
                continue
            if block:
                self._check_include_block(path, block)
                block = []

    def _check_include_block(self, path: Path,
                             block: list[tuple[int, str]]) -> None:
        # Within one contiguous block: system includes first, then project
        # includes, each group sorted. Blocks are separated by blank lines,
        # so the conventional own-header / system / project grouping is
        # expressible and only intra-block disorder is flagged.
        seen_quoted = False
        prev_system: str | None = None
        prev_quoted: str | None = None
        for lineno, spec in block:
            if spec.startswith("<"):
                if seen_quoted:
                    self.report(
                        path, lineno, "SL004",
                        f"system include {spec} after project includes in "
                        "the same block (separate groups with a blank line)")
                elif prev_system is not None and spec < prev_system:
                    self.report(
                        path, lineno, "SL004",
                        f"system include {spec} not sorted (after "
                        f"{prev_system})")
                prev_system = spec if prev_system is None \
                    else max(prev_system, spec)
            else:
                seen_quoted = True
                if prev_quoted is not None and spec < prev_quoted:
                    self.report(
                        path, lineno, "SL004",
                        f"project include {spec} not sorted (after "
                        f"{prev_quoted})")
                prev_quoted = spec if prev_quoted is None \
                    else max(prev_quoted, spec)

    def check_todo_hygiene(self, path: Path, text: str) -> None:
        for lineno, line in enumerate(text.splitlines(), 1):
            if TODO_RE.search(line):
                self.report(
                    path, lineno, "SL005",
                    "TODO/FIXME without an issue reference: write "
                    "`TODO(#123): ...`")

    def check_using_namespace(self, path: Path, stripped: str) -> None:
        if path.suffix not in HEADER_SUFFIXES:
            return
        for lineno, line in enumerate(stripped.splitlines(), 1):
            if USING_NAMESPACE_RE.match(line):
                self.report(
                    path, lineno, "SL006",
                    "`using namespace` in a header leaks into every "
                    "includer")

    # -- determinism & concurrency rules (lint v2) ------------------------

    @staticmethod
    def _in_src(rel: Path) -> bool:
        return rel.parts[:1] == ("src",)

    @staticmethod
    def _waived(pattern: re.Pattern, lines: list[str], lineno: int) -> bool:
        """Waiver comment on the flagged line or the line directly above."""
        here = lines[lineno - 1] if lineno - 1 < len(lines) else ""
        above = lines[lineno - 2] if lineno >= 2 else ""
        return bool(pattern.search(here) or pattern.search(above))

    def check_nondeterminism(self, path: Path, rel: Path,
                             stripped: str) -> None:
        if not self._in_src(rel):
            return
        for lineno, line in enumerate(stripped.splitlines(), 1):
            for pattern, msg in NONDETERMINISM_RES:
                if pattern.search(line):
                    self.report(path, lineno, "SL007", msg)

    def check_unordered_output(self, path: Path, rel: Path, stripped: str,
                               original_lines: list[str]) -> None:
        if not self._in_src(rel):
            return
        if not ORDER_SENSITIVE_FILE_RE.search(path.name):
            return
        for lineno, line in enumerate(stripped.splitlines(), 1):
            if UNORDERED_RE.search(line) and not self._waived(
                    UNORDERED_WAIVER_RE, original_lines, lineno):
                self.report(
                    path, lineno, "SL008",
                    "unordered container in an order-sensitive file: "
                    "iteration order may reach output (bit-identity "
                    "hazard); use std::map / a sorted snapshot, or waive "
                    "with `// lint: unordered-ok(<reason>)`")

    def check_mutex_guards(self, path: Path, rel: Path, stripped: str,
                           original_lines: list[str]) -> None:
        if not self._in_src(rel) or rel in SL009_EXEMPT:
            return
        for lineno, line in enumerate(stripped.splitlines(), 1):
            for m in MUTEX_MEMBER_RE.finditer(line):
                name, mtype = m.group("name"), m.group("type")
                waived = self._waived(UNGUARDED_WAIVER_RE, original_lines,
                                      lineno)
                if mtype.startswith("std::"):
                    if not waived:
                        self.report(
                            path, lineno, "SL009",
                            f"raw {mtype} member `{name}`: use the "
                            "annotated sturgeon::Mutex/SharedMutex from "
                            "util/thread_annotations.h so the analyze "
                            "build can check the lock discipline")
                    continue
                if waived:
                    continue
                guard_re = re.compile(
                    GUARDED_BY_RE_TEMPLATE.format(name=re.escape(name)))
                if not guard_re.search(stripped):
                    self.report(
                        path, lineno, "SL009",
                        f"mutex `{name}` guards no field: annotate what it "
                        f"protects with STURGEON_GUARDED_BY({name}) or "
                        "waive with `// lint: unguarded(<reason>)`")

    # -- driver -----------------------------------------------------------

    def lint_file(self, path: Path) -> None:
        if path == Path(__file__).resolve():
            return  # the rule docs here would trip the TODO check
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as e:
            self.report(path, 1, "SL000", f"unreadable: {e}")
            return
        if path.suffix in CXX_SUFFIXES:
            rel = path.relative_to(self.root)
            original_lines = text.splitlines()
            stripped = strip_comments_and_strings(text)
            self.check_pragma_once(path, text)
            self.check_banned_calls(path, stripped)
            self.check_include_order(path, text)
            self.check_using_namespace(path, stripped)
            self.check_nondeterminism(path, rel, stripped)
            self.check_unordered_output(path, rel, stripped, original_lines)
            self.check_mutex_guards(path, rel, stripped, original_lines)
        self.check_todo_hygiene(path, text)

    def run(self) -> int:
        files: list[Path] = []
        for d in SOURCE_DIRS:
            base = self.root / d
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix in CXX_SUFFIXES | {".py"} and path.is_file():
                    files.append(path)
        for path in files:
            self.lint_file(path)
        if self.violations:
            for path, line, rule, msg in self.violations:
                print(f"{path}:{line}: [{rule}] {msg}")
            print(f"\nlint.py: {len(self.violations)} violation(s) in "
                  f"{len(files)} files")
            return 1
        print(f"lint.py: OK ({len(files)} files clean)")
        return 0


# -- self-test fixtures ---------------------------------------------------
#
# Each fixture is (relative path, file content, expected rule ids). The
# self-test materializes them in a temp tree, runs the Linter, and checks
# that exactly the expected rules fire on exactly these files -- both the
# positive (violation detected) and negative (clean code, waiver paths
# honored) directions for every rule, with full coverage for the
# determinism/concurrency rules SL007-SL009.
SELF_TEST_FIXTURES: list[tuple[str, str, list[str]]] = [
    # legacy rules: one positive + one negative anchor each
    ("src/f/missing_pragma.h", "int bad_header();\n", ["SL001"]),
    ("src/f/banned_calls.cpp",
     '#pragma GCC diagnostic ignored "-w"\n'
     "void f() { printf(\"x\"); }\n"
     "int g() { return std::rand(); }\n",
     ["SL002", "SL002"]),
    ("src/f/raw_new.cpp", "int* f() { return new int(3); }\n", ["SL003"]),
    ("src/f/include_order.cpp",
     "#include <vector>\n#include <atomic>\n", ["SL004"]),
    ("src/f/todo.cpp", "// T" "ODO: no issue ref\n", ["SL005"]),
    ("src/f/using_ns.h",
     "#pragma once\nusing namespace std;\n", ["SL006"]),
    ("src/f/clean.cpp",
     "#include <atomic>\n#include <vector>\n\n"
     "#include \"util/rng.h\"\n"
     "int f() { return 0; }\n", []),
    # SL007: every banned source fires; lookalikes and tests/ stay legal
    ("src/f/wallclock.cpp",
     "#include <chrono>\n"
     "unsigned f() { std::random_device rd; return rd(); }\n"
     "long g() { return time(nullptr); }\n"
     "long h() { return std::clock(); }\n"
     "auto i() { return std::chrono::system_clock::now(); }\n",
     ["SL007", "SL007", "SL007", "SL007"]),
    ("src/f/wallclock_ok.cpp",
     "#include <chrono>\n"
     "#include <functional>\n"
     "struct Ctx { std::function<long()> clock_; };\n"
     "long epoch_time(int t) { return t; }\n"
     "auto f() { return std::chrono::steady_clock::now(); }\n"
     "long g(Ctx& c) { return c.clock_() + epoch_time(1); }\n",
     []),
    ("tests/f/wallclock_in_test.cpp",
     "long f() { return time(nullptr); }\n", []),
    # SL008: order-sensitive file names flag unordered containers; the
    # waiver comment and order-insensitive files stay clean
    ("src/f/rollup_export.cpp",
     "#include <unordered_map>\n"
     "std::unordered_map<int, int> g_rows;\n", ["SL008"]),
    ("src/f/result_report.cpp",
     "#include <unordered_set>\n"
     "// lint: unordered-ok(drained into a std::set before printing)\n"
     "std::unordered_set<int> g_seen;\n", []),
    ("src/f/plain_model.cpp",
     "#include <unordered_map>\n"
     "std::unordered_map<int, int> g_weights;\n", []),
    # SL009: raw std mutexes rejected; annotated mutexes must guard a
    # field or carry the unguarded() waiver (same line or line above)
    ("src/f/raw_mutex.cpp",
     "#include <mutex>\n"
     "struct S { std::mutex mu_; int x = 0; };\n", ["SL009"]),
    ("src/f/unguarded_mutex.cpp",
     "#include \"util/thread_annotations.h\"\n"
     "struct S { sturgeon::Mutex mu_; int x = 0; };\n", ["SL009"]),
    ("src/f/guarded_mutex.cpp",
     "#include \"util/thread_annotations.h\"\n"
     "struct S {\n"
     "  sturgeon::Mutex mu_;\n"
     "  int x STURGEON_GUARDED_BY(mu_) = 0;\n"
     "};\n", []),
    ("src/f/shared_guarded_mutex.cpp",
     "#include \"util/thread_annotations.h\"\n"
     "struct S {\n"
     "  sturgeon::SharedMutex mu_;\n"
     "  int x STURGEON_GUARDED_BY(mu_) = 0;\n"
     "};\n", []),
    ("src/f/waived_mutex.cpp",
     "#include \"util/thread_annotations.h\"\n"
     "struct S {\n"
     "  sturgeon::Mutex mu_;  // lint: unguarded(guards stderr, no fields)\n"
     "};\n"
     "// lint: unguarded(protects an external resource)\n"
     "struct T { sturgeon::Mutex mu_; };\n", []),
    ("src/f/mutex_locals_ok.cpp",
     "#include \"util/thread_annotations.h\"\n"
     "struct S {\n"
     "  sturgeon::Mutex mu_;\n"
     "  int x STURGEON_GUARDED_BY(mu_) = 0;\n"
     "  int get() { sturgeon::MutexLock lock(mu_); return x; }\n"
     "};\n", []),
]


def run_self_test() -> int:
    import shutil
    import tempfile

    tmp = Path(tempfile.mkdtemp(prefix="sturgeon_lint_selftest_"))
    try:
        for relpath, content, _ in SELF_TEST_FIXTURES:
            dest = tmp / relpath
            dest.parent.mkdir(parents=True, exist_ok=True)
            dest.write_text(content, encoding="utf-8")
        linter = Linter(tmp)
        for relpath, _, _ in SELF_TEST_FIXTURES:
            linter.lint_file(tmp / relpath)
        got: dict[str, list[str]] = {}
        for path, _, rule, _ in linter.violations:
            got.setdefault(str(path), []).append(rule)
        failures = []
        for relpath, _, expected in SELF_TEST_FIXTURES:
            actual = sorted(got.pop(relpath, []))
            if actual != sorted(expected):
                failures.append(
                    f"{relpath}: expected {sorted(expected)}, got {actual}")
        for relpath, rules in got.items():
            failures.append(f"{relpath}: unexpected findings {rules}")
        if failures:
            print("lint.py --self-test FAILED:")
            for f in failures:
                print(f"  {f}")
            return 1
        print(f"lint.py --self-test: OK "
              f"({len(SELF_TEST_FIXTURES)} fixtures)")
        return 0
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule ids and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter's own fixture suite and exit")
    args = parser.parse_args()
    if args.list_rules:
        print(__doc__)
        return 0
    if args.self_test:
        return run_self_test()
    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"lint.py: no such directory: {root}", file=sys.stderr)
        return 2
    return Linter(root).run()


if __name__ == "__main__":
    sys.exit(main())
