// Cluster-layer evaluation: lockstep throughput vs fleet size, plus the
// coordinator strategy comparison the acceptance gate checks:
//
//   1. epochs/sec for 8/16/64-node fleets (64 nodes must sustain >= 50
//      simulated epochs/sec);
//   2. static-equal vs demand-proportional vs slack-harvesting on a
//      heterogeneous fleet (half hot, half cold): slack-harvesting must
//      stay within the per-node tolerance of the global budget and beat
//      static-equal on aggregate BE throughput at an equal-or-better
//      fleet QoS guarantee rate.
//
// Exits non-zero if any gate fails. STURGEON_QUICK=1 shrinks everything.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "cluster/cluster.h"
#include "util/rng.h"
#include "util/table.h"

using namespace sturgeon;

namespace {

int g_failures = 0;

void expect(bool ok, const std::string& what) {
  std::cout << (ok ? "  [pass] " : "  [FAIL] ") << what << "\n";
  if (!ok) ++g_failures;
}

core::TrainerConfig cluster_trainer() {
  // The bench measures the cluster layer, not training: keep the shared
  // campaign small (same scale as the example demo).
  core::TrainerConfig cfg;
  cfg.ls_samples = 250;
  cfg.ls_boundary_searches = 60;
  cfg.be_samples = 150;
  return cfg;
}

/// Fleet of `n` Sturgeon nodes, one LS service and a rotating BE mix, so
/// model training cost is independent of the node count.
std::vector<cluster::NodeSpec> uniform_fleet(int n, const LoadTrace& base,
                                             const LsProfile& ls) {
  const auto& bes = be_catalog();
  std::vector<cluster::NodeSpec> specs;
  specs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    cluster::NodeSpec spec;
    spec.ls = ls;
    spec.be = bes[static_cast<std::size_t>(i) % bes.size()];
    spec.trace =
        base.with_noise(0.05, derive_seed(9, static_cast<std::uint64_t>(i)));
    spec.trainer = cluster_trainer();
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// The throughput section measures the cluster *layer* (lockstep
/// machinery, coordinator, governor), not DES fidelity: shrink the
/// per-node discrete-event arrival scale with the profile's documented
/// sim_scale knob so a 64-node fleet fits one measurement budget. The
/// profile gets its own name (separate profiling campaign) so the
/// coordinator-comparison fleet keeps the catalog-fidelity models.
LsProfile scaled_ls() {
  LsProfile ls = find_ls("memcached");
  ls.name = "memcached-scale";
  ls.sim_scale = 0.02;
  return ls;
}

/// Heterogeneous load: even nodes run hot (ramp toward peak), odd nodes
/// stay cold. This is the regime where watt redistribution matters --
/// a static split starves the hot half while the cold half hoards.
std::vector<cluster::NodeSpec> skewed_fleet(int n, int duration_s) {
  const LoadTrace hot = LoadTrace::ramp_up_down(0.5, 0.95, duration_s);
  const LoadTrace cold = LoadTrace::constant(0.15, duration_s);
  auto specs = uniform_fleet(n, hot, find_ls("memcached"));
  for (int i = 0; i < n; ++i) {
    const auto& base = (i % 2 == 0) ? hot : cold;
    specs[static_cast<std::size_t>(i)].trace = base.with_noise(
        0.05, derive_seed(9, static_cast<std::uint64_t>(i)));
  }
  return specs;
}

cluster::ClusterResult run_fleet(std::vector<cluster::NodeSpec> specs,
                                 cluster::CoordinatorKind kind,
                                 double oversubscription,
                                 double* wall_s = nullptr) {
  cluster::ClusterConfig config;
  config.seed = 11;
  config.coordinator = kind;
  config.oversubscription = oversubscription;
  const auto t0 = std::chrono::steady_clock::now();
  cluster::ClusterSim sim(std::move(specs), config);
  const auto t1 = std::chrono::steady_clock::now();
  const auto result = sim.run();
  const auto t2 = std::chrono::steady_clock::now();
  if (wall_s != nullptr) {
    *wall_s = std::chrono::duration<double>(t2 - t1).count();
  }
  (void)t0;
  return result;
}

}  // namespace

int main() {
  const bool quick = bench::quick_mode();
  const int scale_epochs = quick ? 60 : 120;
  const int compare_epochs = quick ? 120 : 240;

  std::cout << "== cluster_scale: lockstep throughput ==\n";
  TablePrinter scale_table(
      {"nodes", "epochs", "wall s", "epochs/s", "node-epochs/s"});
  double eps_64 = 0.0;
  for (const int n : std::vector<int>{8, 16, 64}) {
    const LoadTrace base = LoadTrace::diurnal(0.2, 0.8, scale_epochs);
    double wall_s = 0.0;
    const auto result = run_fleet(
        uniform_fleet(n, base, scaled_ls()),
        cluster::CoordinatorKind::kSlackHarvest, 0.90, &wall_s);
    const double eps = static_cast<double>(result.epochs) / wall_s;
    if (n == 64) eps_64 = eps;
    scale_table.add_row(
        {std::to_string(n), std::to_string(result.epochs),
         TablePrinter::fmt(wall_s, 2), TablePrinter::fmt(eps, 1),
         TablePrinter::fmt(eps * n, 0)});
  }
  scale_table.print(std::cout);
  expect(eps_64 >= 50.0, "64-node fleet sustains >= 50 epochs/sec");

  std::cout << "\n== cluster_scale: coordinator comparison "
            << "(16 nodes, half hot / half cold) ==\n";
  TablePrinter cmp({"coordinator", "fleet QoS", "agg BE thr", "mean P/budget",
                    "max P/budget", "over-budget epochs"});
  std::vector<cluster::ClusterResult> results;
  for (const auto kind : {cluster::CoordinatorKind::kStaticEqual,
                          cluster::CoordinatorKind::kDemandProportional,
                          cluster::CoordinatorKind::kSlackHarvest}) {
    // Scarce power (75% oversubscription): an equal split cannot carry
    // the hot half, so redistribution is what the gate measures.
    const auto r = run_fleet(skewed_fleet(16, compare_epochs), kind, 0.75);
    cmp.add_row({r.coordinator,
                 TablePrinter::fmt_pct(r.fleet_qos_guarantee_rate, 2),
                 TablePrinter::fmt(r.aggregate_be_throughput, 3),
                 TablePrinter::fmt(r.mean_cluster_power_w /
                                       r.cluster_power_budget_w, 3),
                 TablePrinter::fmt(r.max_cluster_power_ratio, 3),
                 TablePrinter::fmt_pct(r.cluster_overshoot_fraction, 1)});
    results.push_back(r);
  }
  cmp.print(std::cout);
  const auto& equal = results[0];
  const auto& harvest = results[2];

  const double tolerance = cluster::ClusterConfig{}.power_tolerance;
  expect(harvest.max_cluster_power_ratio <= 1.0 + tolerance,
         "slack-harvest stays within budget * (1 + " +
             TablePrinter::fmt(tolerance, 2) + ")");
  // "Equal fleet QoS" = within half a percentage point: the comparison
  // is one seeded run per strategy, and per-node QoS rates carry a few
  // tenths of a point of seed-to-seed noise.
  expect(harvest.fleet_qos_guarantee_rate >=
             equal.fleet_qos_guarantee_rate - 0.005,
         "slack-harvest fleet QoS within 0.5pp of static-equal");
  expect(harvest.aggregate_be_throughput >
             1.05 * equal.aggregate_be_throughput,
         "slack-harvest aggregate BE throughput > static-equal by >= 5%");

  std::cout << (g_failures == 0 ? "\nall gates passed\n"
                                : "\ngates FAILED\n");
  return g_failures == 0 ? 0 : 1;
}
