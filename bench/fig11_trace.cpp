// Fig 11 reproduction: resource-allocation time series for the
// memcached + raytrace pair as the load ramps from 20% to 50% of peak,
// under Sturgeon and under the power-enhanced PARTIES.
//
// Paper shape: Sturgeon starts the LS service on a small fast slice and
// flips to a wider-but-slower LS slice as the load grows (leaving
// raytrace the resource it prefers at each load), while PARTIES walks
// unit-steps, settles on conservative allocations, and trails in BE
// throughput across the ramp.
#include <iostream>

#include "baselines/parties.h"
#include "bench_common.h"
#include "core/controller.h"
#include "exp/model_registry.h"
#include "exp/runner.h"
#include "util/table.h"

using namespace sturgeon;

int main() {
  const auto& ls = find_ls("memcached");
  const auto& be = find_be("rt");
  const auto trace =
      LoadTrace::ramp(0.2, 0.5, bench::quick_mode() ? 200 : 400);
  const auto predictor = exp::predictor_for(ls, be, bench::trainer_config());
  sim::SimulatedServer probe(ls, be, 7);
  const double budget = probe.power_budget_w();

  exp::RunConfig rc;
  rc.seed = bench::pair_seed(ls.name, be.name);
  rc.record_trace = true;

  core::SturgeonController sturgeon(predictor, ls.qos_target_ms, budget);
  const auto r_st = exp::run_colocation(ls, be, sturgeon, trace, rc);

  baselines::PartiesOptions po;
  po.power_budget_w = budget;
  baselines::PartiesController parties(probe.machine(), ls.qos_target_ms, po);
  const auto r_pa = exp::run_colocation(ls, be, parties, trace, rc);

  const int stride = trace.duration_s() / 20;
  std::cout << "Fig 11: memcached + raytrace, load ramp 20% -> 50% of peak\n";
  std::cout << "\n--- Sturgeon ---\n";
  r_st.trace->write_summary(std::cout, stride);
  std::cout << "\n--- PARTIES (power-enhanced) ---\n";
  r_pa.trace->write_summary(std::cout, stride);

  std::cout << "\nrun means: Sturgeon BE throughput "
            << TablePrinter::fmt(r_st.mean_be_throughput_norm, 3)
            << " (QoS " << TablePrinter::fmt_pct(r_st.qos_guarantee_rate, 2)
            << "), PARTIES "
            << TablePrinter::fmt(r_pa.mean_be_throughput_norm, 3) << " (QoS "
            << TablePrinter::fmt_pct(r_pa.qos_guarantee_rate, 2)
            << ")\n(paper: Sturgeon's configuration dominates across the "
               "ramp)\n";
  return 0;
}
