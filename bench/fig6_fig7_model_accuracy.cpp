// Figs 6 & 7 reproduction: accuracy of the model families compared in
// paper Section V-C.
//
//   Fig 6 (performance models): hold-out accuracy of the LS QoS
//   classifier per family (DT, KNN, SV, MLP, LR) and hold-out R^2 of the
//   BE IPC regressor per family.
//   Fig 7 (power models): hold-out R^2 of the LS and BE power regressors
//   per family.
//
// Paper shape: DT classification best for LS performance; KNN/MLP best
// for BE performance; KNN regression best for power.
// Also reports the Lasso feature-selection check from Section V-A (all
// four inputs survive selection).
#include <iostream>
#include <map>

#include "bench_common.h"
#include "exp/model_registry.h"
#include "util/table.h"

using namespace sturgeon;

namespace {

std::string score_cell(const core::FamilyScores& scores, ml::ModelKind kind) {
  for (const auto& [k, v] : scores) {
    if (k == kind) return TablePrinter::fmt(v, 3);
  }
  return "-";
}

void print_scores(const std::string& title,
                  const std::vector<std::pair<std::string,
                                              const core::FamilyScores*>>&
                      rows) {
  std::vector<std::string> headers{"application"};
  for (ml::ModelKind k : ml::paper_regression_kinds()) {
    headers.push_back(ml::to_string(k));
  }
  TablePrinter table(headers);
  for (const auto& [name, scores] : rows) {
    std::vector<std::string> row{name};
    for (ml::ModelKind k : ml::paper_regression_kinds()) {
      row.push_back(score_cell(*scores, k));
    }
    table.add_row(std::move(row));
  }
  std::cout << title << "\n";
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  const auto cfg = bench::trainer_config();

  std::vector<std::pair<std::string, const core::FamilyScores*>> ls_perf,
      ls_power, be_perf, be_power;
  for (const auto& ls : ls_catalog()) {
    const auto& models = exp::ls_models_for(ls, cfg);
    ls_perf.emplace_back(ls.name, &models.qos_accuracy);
    ls_power.emplace_back(ls.name, &models.power_r2);
  }
  for (const auto& be : be_catalog()) {
    const auto& models = exp::be_models_for(be, cfg);
    be_perf.emplace_back(be.name, &models.ipc_r2);
    be_power.emplace_back(be.name, &models.power_r2);
  }

  std::cout << "Fig 6: performance-model quality per family\n"
               "(LS rows: hold-out classification accuracy of the QoS "
               "model;\n BE rows: hold-out R^2 of the IPC model)\n\n";
  print_scores("LS services (QoS classification accuracy):", ls_perf);
  print_scores("BE applications (IPC regression R^2):", be_perf);

  std::cout << "Fig 7: power-model quality per family (hold-out R^2)\n\n";
  print_scores("LS services:", ls_power);
  print_scores("BE applications:", be_power);

  // Per-role winner counts (which family would be deployed).
  const auto winners = [](const std::vector<std::pair<
                              std::string, const core::FamilyScores*>>& rows) {
    std::map<std::string, int> count;
    for (const auto& [name, scores] : rows) {
      (void)name;
      ml::ModelKind best = scores->front().first;
      double best_v = scores->front().second;
      for (const auto& [k, v] : *scores) {
        if (v > best_v) {
          best_v = v;
          best = k;
        }
      }
      ++count[ml::to_string(best)];
    }
    std::string out;
    for (const auto& [k, c] : count) {
      out += k + " x" + std::to_string(c) + "  ";
    }
    return out;
  };
  std::cout << "Deployed families (hold-out winners):\n"
            << "  LS QoS:     " << winners(ls_perf)
            << " (paper: DT classification)\n"
            << "  BE perf:    " << winners(be_perf)
            << " (paper: KNN / MLP regression)\n"
            << "  LS power:   " << winners(ls_power)
            << " (paper: KNN regression)\n"
            << "  BE power:   " << winners(be_power)
            << " (paper: KNN regression)\n\n";

  // Section V-A: Lasso keeps all four inputs.
  const auto data = core::collect_ls_profiling(ls_catalog().front(), cfg);
  const auto kept = core::lasso_selected_features(data.x, data.power_w, 0.05);
  static const char* kFeatureNames[] = {"QPS", "cores", "frequency", "ways"};
  std::cout << "Lasso feature selection on the memcached power dataset "
               "keeps:";
  for (std::size_t idx : kept) {
    std::cout << " " << kFeatureNames[idx];
  }
  std::cout << "  (paper: all four features selected)\n";
  return 0;
}
