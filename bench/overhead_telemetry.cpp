// Observability-layer overhead: the telemetry hot paths must be cheap
// enough to leave the control loop's numbers intact.
//
//   - counter add / gauge set / histogram observe: the per-event registry
//     cost (sharded relaxed atomics; no locks after creation);
//   - span open+close, against a disabled tracer (the default for every
//     policy) and an enabled one;
//   - BM_SturgeonSearch[Parallel]Traced vs the untraced twin from
//     overhead_search: the end-to-end proof that instrumenting the
//     search adds < 5% (one candidate_eval span per search against a
//     ~50 us search body).
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "core/config_search.h"
#include "exp/model_registry.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/thread_pool.h"

using namespace sturgeon;

namespace {

struct Fixture {
  std::shared_ptr<const core::Predictor> predictor;
  double budget = 0.0;
  double qps = 0.0;

  static const Fixture& get() {
    static const Fixture f = [] {
      Fixture fx;
      const auto& ls = find_ls("memcached");
      const auto& be = find_be("rt");
      fx.predictor = exp::predictor_for(ls, be, bench::trainer_config());
      sim::SimulatedServer probe(ls, be, 7);
      fx.budget = probe.power_budget_w();
      fx.qps = 0.35 * ls.peak_qps;
      return fx;
    }();
    return f;
  }
};

void BM_CounterAdd(benchmark::State& state) {
  static telemetry::MetricsRegistry registry;
  telemetry::Counter& c = registry.counter("bench.counter");
  for (auto _ : state) {
    c.inc();
  }
  if (state.thread_index() == 0) {
    benchmark::DoNotOptimize(c.value());
  }
}

void BM_GaugeSet(benchmark::State& state) {
  telemetry::MetricsRegistry registry;
  telemetry::Gauge& g = registry.gauge("bench.gauge");
  double v = 0.0;
  for (auto _ : state) {
    g.set(v += 1.0);
  }
  benchmark::DoNotOptimize(g.value());
}

void BM_HistogramObserve(benchmark::State& state) {
  telemetry::MetricsRegistry registry;
  telemetry::Histogram& h = registry.duration_histogram("bench.hist");
  double v = 0.0;
  for (auto _ : state) {
    v = v < 4096.0 ? v + 1.0 : 0.0;
    h.observe(v);
  }
  benchmark::DoNotOptimize(h.snapshot().count);
}

void BM_SpanOpenClose(benchmark::State& state) {
  telemetry::Tracer tracer(/*enabled=*/true);
  for (auto _ : state) {
    telemetry::Span span = tracer.start_span("bench");
    span.attr("k", 1);
    if (tracer.finished_count() > (1u << 20)) {
      state.PauseTiming();
      tracer.clear();
      state.ResumeTiming();
    }
  }
}

void BM_SpanOpenCloseDisabled(benchmark::State& state) {
  telemetry::Tracer tracer(/*enabled=*/false);  // every policy's default
  for (auto _ : state) {
    telemetry::Span span = tracer.start_span("bench");
    span.attr("k", 1);
  }
  benchmark::DoNotOptimize(tracer.finished_count());
}

/// Untraced twin of BM_SturgeonSearchTraced (same fixture and body as
/// overhead_search's BM_SturgeonSearch; kept here so the pair is always
/// compiled and run together).
void BM_SturgeonSearchUntraced(benchmark::State& state) {
  const auto& fx = Fixture::get();
  core::ConfigSearch search(*fx.predictor, fx.budget);
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.search(fx.qps).best);
  }
}

void BM_SturgeonSearchTraced(benchmark::State& state) {
  const auto& fx = Fixture::get();
  core::ConfigSearch search(*fx.predictor, fx.budget);
  telemetry::MetricsRegistry registry;
  telemetry::Tracer tracer(/*enabled=*/true);
  tracer.bind_registry(&registry);
  search.set_tracer(&tracer);
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.search(fx.qps).best);
    if (tracer.finished_count() > (1u << 18)) {
      state.PauseTiming();
      tracer.clear();
      state.ResumeTiming();
    }
  }
}

void BM_SturgeonSearchParallelUntraced(benchmark::State& state) {
  const auto& fx = Fixture::get();
  core::ConfigSearch search(*fx.predictor, fx.budget);
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.search_parallel(fx.qps, pool).best);
  }
}

void BM_SturgeonSearchParallelTraced(benchmark::State& state) {
  const auto& fx = Fixture::get();
  core::ConfigSearch search(*fx.predictor, fx.budget);
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  telemetry::MetricsRegistry registry;
  telemetry::Tracer tracer(/*enabled=*/true);
  tracer.bind_registry(&registry);
  search.set_tracer(&tracer);
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.search_parallel(fx.qps, pool).best);
    if (tracer.finished_count() > (1u << 18)) {
      state.PauseTiming();
      tracer.clear();
      state.ResumeTiming();
    }
  }
}

}  // namespace

BENCHMARK(BM_CounterAdd)->Threads(1)->Threads(4)->Threads(8);
BENCHMARK(BM_GaugeSet);
BENCHMARK(BM_HistogramObserve);
BENCHMARK(BM_SpanOpenClose);
BENCHMARK(BM_SpanOpenCloseDisabled);
BENCHMARK(BM_SturgeonSearchUntraced)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SturgeonSearchTraced)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SturgeonSearchParallelUntraced)
    ->Arg(2)->Arg(4)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SturgeonSearchParallelTraced)
    ->Arg(2)->Arg(4)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
