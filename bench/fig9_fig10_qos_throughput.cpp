// Figs 9 & 10 reproduction: the headline evaluation. All 18 co-location
// pairs run the paper's fluctuating trace (load 20% -> 80% -> 20% of
// peak) under three controllers:
//   Sturgeon        -- predictor + preference-aware balancer,
//   Sturgeon-NoB    -- balancer disabled (ablation),
//   PARTIES         -- power-enhanced feedback baseline.
//
//   Fig 9:  QoS guarantee rate (queries completed within target).
//   Fig 10: BE throughput normalized to its solo run.
//
// Paper shape: Sturgeon and PARTIES hold the guarantee rate >= 95% on
// every pair while Sturgeon-NoB violates on most (12/18); Sturgeon's BE
// throughput exceeds PARTIES's by ~25% on average and sits a few percent
// below Sturgeon-NoB's (the balancer's price, ~4.4% in the paper).
#include <iostream>

#include "baselines/parties.h"
#include "bench_common.h"
#include "core/controller.h"
#include "exp/model_registry.h"
#include "exp/runner.h"
#include "util/table.h"

using namespace sturgeon;

int main() {
  const auto trace = bench::evaluation_trace();
  const auto trainer_cfg = bench::trainer_config();

  TablePrinter fig9({"pair", "Sturgeon", "Sturgeon-NoB", "PARTIES"});
  TablePrinter fig10({"pair", "Sturgeon", "Sturgeon-NoB", "PARTIES"});

  double thr_st = 0.0, thr_nob = 0.0, thr_pa = 0.0;
  int fail_st = 0, fail_nob = 0, fail_pa = 0;
  int overload_st = 0, overload_pa = 0;
  int pairs = 0;

  for (const auto& ls : ls_catalog()) {
    for (const auto& be : be_catalog()) {
      const auto predictor = exp::predictor_for(ls, be, trainer_cfg);
      sim::SimulatedServer probe(ls, be, 7);
      const double budget = probe.power_budget_w();
      exp::RunConfig rc;
      rc.seed = bench::pair_seed(ls.name, be.name);

      core::SturgeonController sturgeon(predictor, ls.qos_target_ms, budget);
      const auto r_st = exp::run_colocation(ls, be, sturgeon, trace, rc);

      core::SturgeonOptions nob_opts;
      nob_opts.enable_balancer = false;
      core::SturgeonController nob(predictor, ls.qos_target_ms, budget,
                                   nob_opts);
      const auto r_nob = exp::run_colocation(ls, be, nob, trace, rc);

      baselines::PartiesOptions po;
      po.power_budget_w = budget;
      baselines::PartiesController parties(probe.machine(), ls.qos_target_ms,
                                           po);
      const auto r_pa = exp::run_colocation(ls, be, parties, trace, rc);

      const std::string pair = be.name + " under " + ls.name;
      fig9.add_row({pair, TablePrinter::fmt_pct(r_st.qos_guarantee_rate, 2),
                    TablePrinter::fmt_pct(r_nob.qos_guarantee_rate, 2),
                    TablePrinter::fmt_pct(r_pa.qos_guarantee_rate, 2)});
      fig10.add_row({pair,
                     TablePrinter::fmt(r_st.mean_be_throughput_norm, 3),
                     TablePrinter::fmt(r_nob.mean_be_throughput_norm, 3),
                     TablePrinter::fmt(r_pa.mean_be_throughput_norm, 3)});

      thr_st += r_st.mean_be_throughput_norm;
      thr_nob += r_nob.mean_be_throughput_norm;
      thr_pa += r_pa.mean_be_throughput_norm;
      if (r_st.qos_guarantee_rate < 0.95) ++fail_st;
      if (r_nob.qos_guarantee_rate < 0.95) ++fail_nob;
      if (r_pa.qos_guarantee_rate < 0.95) ++fail_pa;
      if (r_st.max_power_ratio > 1.02) ++overload_st;
      if (r_pa.max_power_ratio > 1.02) ++overload_pa;
      ++pairs;
    }
  }

  std::cout << "Fig 9: QoS guarantee rate over the fluctuating trace "
               "(queries within target)\n\n";
  fig9.print(std::cout);
  std::cout << "\npairs below the 95% guarantee: Sturgeon " << fail_st << "/"
            << pairs << ", Sturgeon-NoB " << fail_nob << "/" << pairs
            << ", PARTIES " << fail_pa << "/" << pairs
            << "\n(paper: Sturgeon & PARTIES none, Sturgeon-NoB 12/18)\n\n";

  std::cout << "Fig 10: normalized BE throughput over the same runs\n\n";
  fig10.print(std::cout);
  const double n = static_cast<double>(pairs);
  std::cout << "\nmean throughput: Sturgeon "
            << TablePrinter::fmt(thr_st / n, 3) << ", Sturgeon-NoB "
            << TablePrinter::fmt(thr_nob / n, 3) << ", PARTIES "
            << TablePrinter::fmt(thr_pa / n, 3) << "\nSturgeon vs PARTIES: "
            << TablePrinter::fmt_pct(thr_st / thr_pa - 1.0, 2)
            << " (paper: +24.96%); balancer cost vs NoB: "
            << TablePrinter::fmt_pct(1.0 - thr_st / thr_nob, 2)
            << " (paper: 4.38%)\n";
  std::cout << "power overload (>2% above budget in any interval): Sturgeon "
            << overload_st << "/" << pairs << ", PARTIES " << overload_pa
            << "/" << pairs << " (paper: Sturgeon 0, PARTIES 7/18)\n";
  return 0;
}
