// Shared configuration for the figure-reproduction benches: the paper's
// evaluation trace, the per-pair deterministic seeds, and a reduced-cost
// trainer configuration for quick runs (STURGEON_QUICK=1 environment
// variable halves everything for smoke testing).
#pragma once

#include <cstdlib>
#include <functional>
#include <string>

#include "core/trainer.h"
#include "workloads/load_trace.h"

namespace sturgeon::bench {

inline bool quick_mode() {
  const char* v = std::getenv("STURGEON_QUICK");
  return v != nullptr && v[0] == '1';
}

/// The paper's evaluation trace: load rises 20% -> 80% -> 20% of peak
/// (Section VII-A). 240 s by default, 120 s in quick mode.
inline LoadTrace evaluation_trace() {
  return LoadTrace::ramp_up_down(0.2, 0.8, quick_mode() ? 120 : 240);
}

/// One profiling/training campaign per process (shared via the model
/// registry); the seed is fixed so every bench sees the same models.
inline core::TrainerConfig trainer_config() {
  core::TrainerConfig cfg;
  if (quick_mode()) {
    cfg.ls_samples = 250;
    cfg.ls_boundary_searches = 60;
    cfg.be_samples = 200;
  }
  return cfg;
}

/// Deterministic per-pair seed (stable across benches).
inline std::uint64_t pair_seed(const std::string& ls, const std::string& be) {
  return 42 + std::hash<std::string>{}(ls + "/" + be) % 1000;
}

}  // namespace sturgeon::bench
