// Ablations beyond the paper's figures (DESIGN.md section 4):
//
//   A. alpha/beta slack-band sensitivity (Section IV discusses the
//      trade-off qualitatively: larger alpha protects QoS but wastes
//      resources; smaller beta frees resources faster but risks QoS).
//   B. Search-strategy parity: Sturgeon's O(N log N) binary search vs the
//      exhaustive O(N^4) reference on the *same predictor* -- how much
//      predicted BE throughput does pruning give up?
//   C. Heracles-style DVFS-only power control as a second baseline on the
//      memcached pairs (Table I positions Heracles as power-aware but
//      preference-blind).
#include <iostream>

#include "baselines/heracles.h"
#include "bench_common.h"
#include "core/config_search.h"
#include "core/controller.h"
#include "exp/model_registry.h"
#include "exp/runner.h"
#include "util/table.h"

using namespace sturgeon;

namespace {

void ablation_alpha_beta() {
  const auto& ls = find_ls("memcached");
  const auto& be = find_be("rt");
  const auto predictor = exp::predictor_for(ls, be, bench::trainer_config());
  sim::SimulatedServer probe(ls, be, 7);
  const double budget = probe.power_budget_w();
  const auto trace = bench::evaluation_trace();
  exp::RunConfig rc;
  rc.seed = bench::pair_seed(ls.name, be.name);

  TablePrinter table({"alpha/beta", "QoS rate", "BE throughput",
                      "searches", "balancer acts"});
  const std::pair<double, double> bands[] = {
      {0.05, 0.12}, {0.10, 0.20}, {0.15, 0.30}, {0.25, 0.45}};
  for (const auto& [alpha, beta] : bands) {
    core::SturgeonOptions opts;
    opts.alpha = alpha;
    opts.beta = beta;
    core::SturgeonController ctl(predictor, ls.qos_target_ms, budget, opts);
    const auto r = exp::run_colocation(ls, be, ctl, trace, rc);
    table.add_row({TablePrinter::fmt(alpha, 2) + "/" +
                       TablePrinter::fmt(beta, 2),
                   TablePrinter::fmt_pct(r.qos_guarantee_rate, 2),
                   TablePrinter::fmt(r.mean_be_throughput_norm, 3),
                   std::to_string(ctl.searches_run()),
                   std::to_string(ctl.balancer_actions())});
  }
  std::cout << "A. alpha/beta slack band (memcached+rt, paper default "
               "0.10/0.20):\n\n";
  table.print(std::cout);
  std::cout << "\n";
}

void ablation_balancer_granularity() {
  const auto& ls = find_ls("memcached");
  const auto& be = find_be("fd");  // the contention-heavy pair
  const auto predictor = exp::predictor_for(ls, be, bench::trainer_config());
  sim::SimulatedServer probe(ls, be, 7);
  const double budget = probe.power_budget_w();
  const auto trace = bench::evaluation_trace();
  exp::RunConfig rc;
  rc.seed = bench::pair_seed(ls.name, be.name);

  TablePrinter table({"initial granularity", "QoS rate", "BE throughput",
                      "balancer acts"});
  for (double g : {0.125, 0.25, 0.5, 1.0}) {
    core::SturgeonOptions opts;
    opts.balancer_granularity = g;
    core::SturgeonController ctl(predictor, ls.qos_target_ms, budget, opts);
    const auto r = exp::run_colocation(ls, be, ctl, trace, rc);
    table.add_row({TablePrinter::fmt(g, 3),
                   TablePrinter::fmt_pct(r.qos_guarantee_rate, 2),
                   TablePrinter::fmt(r.mean_be_throughput_norm, 3),
                   std::to_string(ctl.balancer_actions())});
  }
  std::cout << "A2. balancer binary-harvest granularity (memcached+fd, the "
               "pair that\nexercises the balancer hardest; paper default "
               "0.5):\n\n";
  table.print(std::cout);
  std::cout << "\n";
}

void ablation_search_parity() {
  const auto& ls = find_ls("memcached");
  const auto& be = find_be("rt");
  const auto predictor = exp::predictor_for(ls, be, bench::trainer_config());
  sim::SimulatedServer probe(ls, be, 7);
  core::ConfigSearch search(*predictor, probe.power_budget_w());

  TablePrinter table({"load", "binary-search thr", "exhaustive thr",
                      "gap", "calls binary", "calls exhaustive"});
  for (double load : {0.2, 0.35, 0.5, 0.65, 0.8}) {
    const double qps = load * ls.peak_qps;
    const auto fast = search.search(qps);
    const auto full = search.exhaustive(qps);
    const double gap =
        full.predicted_throughput > 0
            ? 1.0 - fast.predicted_throughput / full.predicted_throughput
            : 0.0;
    table.add_row({TablePrinter::fmt_pct(load, 0),
                   TablePrinter::fmt(fast.predicted_throughput, 3),
                   TablePrinter::fmt(full.predicted_throughput, 3),
                   TablePrinter::fmt_pct(gap, 2),
                   std::to_string(fast.model_invocations),
                   std::to_string(full.model_invocations)});
  }
  std::cout << "B. binary search vs exhaustive reference (same predictor; "
               "paper claims\nthe pruned search finds the maximum-throughput "
               "configuration):\n\n";
  table.print(std::cout);
  std::cout << "\n";
}

void ablation_heracles() {
  const auto& ls = find_ls("memcached");
  const auto trace = bench::evaluation_trace();

  TablePrinter table({"pair", "policy", "QoS rate", "BE thr", "max P/budget"});
  for (const auto& be : be_catalog()) {
    const auto predictor =
        exp::predictor_for(ls, be, bench::trainer_config());
    sim::SimulatedServer probe(ls, be, 7);
    const double budget = probe.power_budget_w();
    exp::RunConfig rc;
    rc.seed = bench::pair_seed(ls.name, be.name);

    core::SturgeonController sturgeon(predictor, ls.qos_target_ms, budget);
    const auto r_st = exp::run_colocation(ls, be, sturgeon, trace, rc);
    baselines::HeraclesOptions ho;
    ho.power_budget_w = budget;
    baselines::HeraclesController heracles(probe.machine(), ls.qos_target_ms,
                                           ho);
    const auto r_he = exp::run_colocation(ls, be, heracles, trace, rc);

    table.add_row({be.name + "+" + ls.name, "Sturgeon",
                   TablePrinter::fmt_pct(r_st.qos_guarantee_rate, 2),
                   TablePrinter::fmt(r_st.mean_be_throughput_norm, 3),
                   TablePrinter::fmt(r_st.max_power_ratio, 3)});
    table.add_row({"", "Heracles",
                   TablePrinter::fmt_pct(r_he.qos_guarantee_rate, 2),
                   TablePrinter::fmt(r_he.mean_be_throughput_norm, 3),
                   TablePrinter::fmt(r_he.max_power_ratio, 3)});
  }
  std::cout << "C. Heracles-style DVFS-only power control vs Sturgeon "
               "(memcached pairs):\n\n";
  table.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "Controller ablations (design choices from DESIGN.md)\n\n";
  ablation_alpha_beta();
  ablation_balancer_granularity();
  ablation_search_parity();
  ablation_heracles();
  return 0;
}
