// Fault-machinery overhead gate: the resilience stack (injector hooks,
// retrying enforcer, watchdog, heartbeat tracker) is compiled into every
// node, so a fleet that never injects a fault must pay (almost) nothing
// for it.
//
// Two 64-node lockstep runs, identical seed and fleet:
//
//   baseline  -- ClusterConfig defaults (resilience off, injector null);
//   armed     -- sanitizer + watchdog + retry + heartbeat all enabled,
//                FaultConfig still disabled (the hooks run, inject zero).
//
// Gates:
//   1. both runs clear the PR4 throughput floor minus the 1% overhead
//      allowance (>= 49.5 epochs/sec at 64 nodes);
//   2. the disabled injector injects nothing, and the armed fleet's QoS
//      stays within a point of baseline (the sanitizer's median filter
//      may lag clean readings by a step, so "armed" is close, not
//      bit-identical -- bit-identity for *default* resilience is a unit
//      test, not a bench).
//
// The relative wall-clock delta is printed for the record but not
// gated: on a shared runner a sub-1% timing comparison is noise, while
// the absolute floor is stable.
//
// Exits non-zero if a gate fails. STURGEON_QUICK=1 shrinks the run (and
// scales the floor with it).
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/cluster.h"
#include "util/rng.h"
#include "util/table.h"

using namespace sturgeon;

namespace {

int g_failures = 0;

void expect(bool ok, const std::string& what) {
  std::cout << (ok ? "  [pass] " : "  [FAIL] ") << what << "\n";
  if (!ok) ++g_failures;
}

core::TrainerConfig cluster_trainer() {
  core::TrainerConfig cfg;
  cfg.ls_samples = 250;
  cfg.ls_boundary_searches = 60;
  cfg.be_samples = 150;
  return cfg;
}

/// Same scaled-DES profile trick as cluster_scale.cpp: the bench times
/// the control plane (where the fault hooks live), not event fidelity.
LsProfile scaled_ls() {
  LsProfile ls = find_ls("memcached");
  ls.name = "memcached-scale";
  ls.sim_scale = 0.02;
  return ls;
}

std::vector<cluster::NodeSpec> uniform_fleet(int n, const LoadTrace& base) {
  const auto& bes = be_catalog();
  const LsProfile ls = scaled_ls();
  std::vector<cluster::NodeSpec> specs;
  specs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    cluster::NodeSpec spec;
    spec.ls = ls;
    spec.be = bes[static_cast<std::size_t>(i) % bes.size()];
    spec.trace =
        base.with_noise(0.05, derive_seed(9, static_cast<std::uint64_t>(i)));
    spec.trainer = cluster_trainer();
    specs.push_back(std::move(spec));
  }
  return specs;
}

cluster::ResilienceConfig armed_resilience() {
  cluster::ResilienceConfig r;
  r.sanitize_sensors = true;
  r.watchdog.enabled = true;
  r.heartbeat.dead_after_epochs = 3;
  return r;
}

cluster::ClusterResult timed_run(int nodes, int epochs, bool armed,
                                 double* wall_s) {
  cluster::ClusterConfig config;
  config.seed = 11;
  config.coordinator = cluster::CoordinatorKind::kSlackHarvest;
  config.oversubscription = 0.90;
  if (armed) config.resilience = armed_resilience();
  // config.faults stays default-constructed: injector disabled.
  const LoadTrace base = LoadTrace::diurnal(0.2, 0.8, epochs);
  cluster::ClusterSim sim(uniform_fleet(nodes, base), config);
  const auto t1 = std::chrono::steady_clock::now();
  const auto result = sim.run();
  const auto t2 = std::chrono::steady_clock::now();
  *wall_s = std::chrono::duration<double>(t2 - t1).count();
  return result;
}

}  // namespace

int main() {
  const bool quick = bench::quick_mode();
  const int nodes = 64;
  const int epochs = quick ? 60 : 120;

  std::cout << "== overhead_fault: disabled-injector cost at " << nodes
            << " nodes ==\n";
  TablePrinter table({"config", "epochs", "wall s", "epochs/s"});

  double base_wall = 0.0, armed_wall = 0.0;
  const auto base = timed_run(nodes, epochs, /*armed=*/false, &base_wall);
  const auto armed = timed_run(nodes, epochs, /*armed=*/true, &armed_wall);
  const double base_eps = static_cast<double>(base.epochs) / base_wall;
  const double armed_eps = static_cast<double>(armed.epochs) / armed_wall;
  table.add_row({"baseline (defaults)", std::to_string(base.epochs),
                 TablePrinter::fmt(base_wall, 2),
                 TablePrinter::fmt(base_eps, 1)});
  table.add_row({"armed, zero faults", std::to_string(armed.epochs),
                 TablePrinter::fmt(armed_wall, 2),
                 TablePrinter::fmt(armed_eps, 1)});
  table.print(std::cout);
  std::cout << "  relative delta: "
            << TablePrinter::fmt_pct((base_eps - armed_eps) / base_eps, 1)
            << " (informational)\n";

  expect(armed_eps >= 49.5,
         "armed fleet sustains >= 49.5 epochs/sec (50 eps floor - 1%)");
  expect(base_eps >= 49.5,
         "baseline fleet sustains >= 49.5 epochs/sec (50 eps floor - 1%)");

  std::uint64_t injected = 0;
  for (const auto& nr : armed.node_results) injected += nr.faults_injected;
  expect(injected == 0, "disabled injector injected nothing");
  expect(armed.fleet_qos_guarantee_rate >=
             base.fleet_qos_guarantee_rate - 0.01,
         "armed-but-fault-free fleet QoS within 1pp of baseline");
  expect(armed.dead_node_epochs == 0,
         "heartbeat tracker declared no false deaths");

  std::cout << (g_failures == 0 ? "\nall gates passed\n" : "\ngates FAILED\n");
  return g_failures == 0 ? 0 : 1;
}
