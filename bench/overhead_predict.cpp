// Section V-C overhead claim: "all models make a prediction within
// 0.04 ms". Times single-row inference for every model family on models
// trained over the memcached profiling dataset (google-benchmark).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/trainer.h"
#include "ml/factory.h"

using namespace sturgeon;

namespace {

const core::LsProfilingData& profiling_data() {
  static const core::LsProfilingData data = core::collect_ls_profiling(
      find_ls("memcached"), bench::trainer_config());
  return data;
}

void BM_RegressorPredict(benchmark::State& state) {
  const auto kind = static_cast<ml::ModelKind>(state.range(0));
  const auto& data = profiling_data();
  ml::DataSet train;
  for (std::size_t i = 0; i < data.x.size(); ++i) {
    train.add(data.x[i], data.power_w[i]);
  }
  auto model = ml::make_regressor(kind, 1);
  model->fit(train);
  const ml::FeatureRow row = data.x[data.x.size() / 2];
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->predict(row));
  }
  state.SetLabel(ml::to_string(kind) + " regression");
}

void BM_ClassifierPredict(benchmark::State& state) {
  const auto kind = static_cast<ml::ModelKind>(state.range(0));
  const auto& data = profiling_data();
  auto model = ml::make_classifier(kind, 1);
  model->fit(data.x, data.qos_ok);
  const ml::FeatureRow row = data.x[data.x.size() / 2];
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->predict(row));
  }
  state.SetLabel(ml::to_string(kind) + " classification");
}

}  // namespace

BENCHMARK(BM_RegressorPredict)
    ->Arg(static_cast<int>(ml::ModelKind::kLinear))
    ->Arg(static_cast<int>(ml::ModelKind::kDecisionTree))
    ->Arg(static_cast<int>(ml::ModelKind::kKnn))
    ->Arg(static_cast<int>(ml::ModelKind::kSvm))
    ->Arg(static_cast<int>(ml::ModelKind::kMlp))
    ->Arg(static_cast<int>(ml::ModelKind::kRandomForest));

BENCHMARK(BM_ClassifierPredict)
    ->Arg(static_cast<int>(ml::ModelKind::kLinear))
    ->Arg(static_cast<int>(ml::ModelKind::kDecisionTree))
    ->Arg(static_cast<int>(ml::ModelKind::kKnn))
    ->Arg(static_cast<int>(ml::ModelKind::kSvm))
    ->Arg(static_cast<int>(ml::ModelKind::kMlp));

BENCHMARK_MAIN();
