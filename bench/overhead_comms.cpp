// Comms-fabric overhead gate: routing every cap grant, node report, and
// heartbeat through the in-process message channel must cost (almost)
// nothing when the network is reliable -- the protocol layer is pure
// bookkeeping until faults are configured.
//
// Two 64-node event-engine runs, identical seed and fleet:
//
//   direct -- the engines' shared-memory path (comms disabled);
//   comms  -- every coordinator<->node exchange crosses the zero-fault
//             MessageChannel (typed envelopes, sequence numbers, grant
//             ledger accounting all active).
//
// Gates:
//   1. the two runs are bit-identical on every behavioral output (QoS,
//      throughput, power, skipping, churn) -- the reliable channel is a
//      refactor, not a behavior change;
//   2. the comms run's throughput stays within 2% of direct (best of
//      two timed runs each, so a single scheduler hiccup on a shared
//      runner does not fail the gate).
//
// Exits non-zero if a gate fails. STURGEON_QUICK=1 shrinks the run.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fleet/fleet.h"
#include "util/rng.h"
#include "util/table.h"

using namespace sturgeon;

namespace {

int g_failures = 0;

void expect(bool ok, const std::string& what) {
  std::cout << (ok ? "  [pass] " : "  [FAIL] ") << what << "\n";
  if (!ok) ++g_failures;
}

/// Same scaled-DES profile trick as fleet_scale.cpp: the bench times the
/// control plane (where the channel lives), not event fidelity.
LsProfile scaled_ls() {
  LsProfile ls = find_ls("memcached");
  ls.name = "memcached-comms";
  ls.sim_scale = 0.02;
  return ls;
}

std::vector<cluster::NodeSpec> phased_fleet(int n, int epochs) {
  const auto& bes = be_catalog();
  const LsProfile ls = scaled_ls();
  core::TrainerConfig trainer;
  trainer.ls_samples = 250;
  trainer.ls_boundary_searches = 60;
  trainer.be_samples = 150;
  std::vector<cluster::NodeSpec> specs;
  specs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    cluster::NodeSpec spec;
    spec.ls = ls;
    spec.be = bes[static_cast<std::size_t>(i) % bes.size()];
    spec.trace = LoadTrace::diurnal_phased(
        0.18, 0.55, epochs, static_cast<double>(i) / static_cast<double>(n));
    spec.trainer = trainer;
    specs.push_back(std::move(spec));
  }
  return specs;
}

fleet::FleetConfig fleet_config(bool comms) {
  fleet::FleetConfig config;
  config.cluster.seed = 11;
  config.cluster.coordinator = cluster::CoordinatorKind::kSlackHarvest;
  config.cluster.governor.relax_margin = 0.90;
  config.quiescence.enabled = true;
  config.quiescence.load_epsilon = 0.10;
  config.quiescence.max_sleep_epochs = 64;
  config.churn.enabled = true;
  config.churn.arrival_rate_per_epoch = 0.5;
  config.churn.mean_size_norm_s = 20.0;
  config.churn.slots_per_node = 4;
  config.delta.rebalance_period = 32;
  // comms.network stays all-zero: the channel is RELIABLE, the exact
  // configuration the bit-identity contract covers.
  config.cluster.comms.enabled = comms;
  return config;
}

fleet::FleetResult best_of_two(int nodes, int epochs, bool comms,
                               double* best_wall_s) {
  *best_wall_s = 1e30;
  fleet::FleetResult result;
  for (int rep = 0; rep < 2; ++rep) {
    fleet::FleetSim sim(phased_fleet(nodes, epochs), fleet_config(comms));
    const auto t1 = std::chrono::steady_clock::now();
    result = sim.run();
    const auto t2 = std::chrono::steady_clock::now();
    *best_wall_s =
        std::min(*best_wall_s, std::chrono::duration<double>(t2 - t1).count());
  }
  return result;
}

}  // namespace

int main() {
  const bool quick = bench::quick_mode();
  const int nodes = 64;
  const int epochs = quick ? 60 : 120;

  std::cout << "== overhead_comms: zero-fault channel cost at " << nodes
            << " nodes ==\n";
  double direct_wall = 0.0, comms_wall = 0.0;
  const auto direct = best_of_two(nodes, epochs, /*comms=*/false,
                                  &direct_wall);
  const auto comms = best_of_two(nodes, epochs, /*comms=*/true, &comms_wall);
  const double direct_eps = static_cast<double>(direct.cluster.epochs) /
                            direct_wall;
  const double comms_eps = static_cast<double>(comms.cluster.epochs) /
                           comms_wall;

  TablePrinter table({"path", "epochs", "wall s", "epochs/s"});
  table.add_row({"direct (shared memory)", std::to_string(direct.cluster.epochs),
                 TablePrinter::fmt(direct_wall, 3),
                 TablePrinter::fmt(direct_eps, 1)});
  table.add_row({"zero-fault channel", std::to_string(comms.cluster.epochs),
                 TablePrinter::fmt(comms_wall, 3),
                 TablePrinter::fmt(comms_eps, 1)});
  table.print(std::cout);

  expect(comms.cluster.fleet_qos_guarantee_rate ==
                 direct.cluster.fleet_qos_guarantee_rate &&
             comms.cluster.aggregate_be_throughput ==
                 direct.cluster.aggregate_be_throughput &&
             comms.cluster.mean_cluster_power_w ==
                 direct.cluster.mean_cluster_power_w &&
             comms.cluster.max_cap_sum_ratio ==
                 direct.cluster.max_cap_sum_ratio,
         "reliable channel is bit-identical to the direct path "
         "(QoS, throughput, power, cap-sum)");
  expect(comms.total_skipped_epochs == direct.total_skipped_epochs &&
             comms.total_wakes == direct.total_wakes &&
             comms.jobs_completed == direct.jobs_completed &&
             comms.events_processed == direct.events_processed,
         "engine bookkeeping (skipping, wakes, churn, events) matches");
  expect(comms.cluster.comms_sent > 0 && direct.cluster.comms_sent == 0,
         "the comms run actually used the channel and the direct run "
         "did not");
  const double overhead = (direct_eps - comms_eps) / direct_eps;
  std::cout << "  channel overhead: " << TablePrinter::fmt_pct(overhead, 2)
            << " of direct throughput\n";
  expect(overhead <= 0.02,
         "zero-fault channel stays within 2% of direct throughput");

  std::cout << (g_failures == 0 ? "\nall gates passed\n" : "\ngates FAILED\n");
  return g_failures == 0 ? 0 : 1;
}
