// Fig 2 reproduction: the power-overload problem at co-location.
//
// For each of the 18 LS x BE pairs: allocate the *measured* just-enough
// resources to the LS service at 20% load, give everything that remains
// to the BE application at the top P-state (what a power-oblivious
// co-location runtime does), and report peak package power normalized to
// the node budget (= LS-alone-at-peak power, Section III-B).
//
// Paper shape: every pair exceeds the budget, by roughly 2% to 12.6%.
#include <iostream>

#include "bench_common.h"
#include "exp/ground_truth.h"
#include "util/table.h"

using namespace sturgeon;

int main() {
  const auto machine = MachineSpec::xeon_e5_2630_v4();
  const double load = 0.2;

  TablePrinter table({"pair", "LS alloc", "budget(W)", "power(W)",
                      "power/budget", "overload"});
  double min_ratio = 1e9, max_ratio = 0.0;
  int overloaded = 0, pairs = 0;

  for (const auto& ls : ls_catalog()) {
    // Measured just-enough allocation for the LS service at this load
    // (mirrors the paper's Section III-B measurement).
    const AppSlice min_ls = exp::measured_min_ls_allocation(ls, load, machine);
    for (const auto& be : be_catalog()) {
      Partition p;
      p.ls = min_ls;
      p.be = Allocation::complement(machine, min_ls, machine.max_freq_level());

      sim::SimulatedServer probe(ls, be, 7);
      const double budget = probe.power_budget_w();
      const auto point = exp::measure_configuration(ls, be, p, load);
      const double ratio = point.peak_power_w / budget;
      min_ratio = std::min(min_ratio, ratio);
      max_ratio = std::max(max_ratio, ratio);
      if (ratio > 1.0) ++overloaded;
      ++pairs;

      char slice[32];
      std::snprintf(slice, sizeof(slice), "%dC %.1fF %dL", min_ls.cores,
                    machine.freq_at(min_ls.freq_level), min_ls.llc_ways);
      table.add_row({be.name + " under " + ls.name, slice,
                     TablePrinter::fmt(budget, 1),
                     TablePrinter::fmt(point.peak_power_w, 1),
                     TablePrinter::fmt(ratio, 3),
                     TablePrinter::fmt_pct(ratio - 1.0, 2)});
    }
  }

  std::cout << "Fig 2: package power of power-oblivious co-location at 20% "
               "load,\nnormalized to the budget (LS alone at peak load)\n\n";
  table.print(std::cout);
  std::cout << "\n" << overloaded << "/" << pairs
            << " pairs exceed the budget; overload range "
            << TablePrinter::fmt_pct(min_ratio - 1.0, 2) << " .. "
            << TablePrinter::fmt_pct(max_ratio - 1.0, 2)
            << " (paper: all 18 pairs, 2.04% .. 12.57%)\n";
  return 0;
}
