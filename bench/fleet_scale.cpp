// Fleet-engine evaluation: event-driven throughput vs fleet size under
// diurnal workload churn, the scaling story the fleet subsystem exists
// for:
//
//   1. epochs/sec for 64/1k/10k-node fleets with quiescence skipping and
//      churn enabled (the 10k fleet must sustain >= 50 simulated
//      epochs/sec -- far past where the lockstep engine's O(N) sweep
//      falls over on one core);
//   2. the engine must actually be skipping (>= 50% of node-epochs
//      quiescent on smooth phase-offset diurnal load) and churning
//      (jobs submitted and completed), or the headline number is
//      meaningless.
//
// Emits BENCH_fleet.json (machine-readable rows + gate verdicts) next
// to the working directory and exits non-zero if any gate fails.
// STURGEON_QUICK=1 shrinks everything to a compile-smoke scale.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fleet/fleet.h"
#include "util/rng.h"
#include "util/table.h"

using namespace sturgeon;

namespace {

int g_failures = 0;

void expect(bool ok, const std::string& what) {
  std::cout << (ok ? "  [pass] " : "  [FAIL] ") << what << "\n";
  if (!ok) ++g_failures;
}

/// The bench measures the fleet *engine* (event queue, skipping, delta
/// coordination, churn bookkeeping), not DES fidelity: shrink the
/// per-node discrete-event arrival scale hard so a 10k-node fleet fits
/// one core's measurement budget. Own profile name = own (tiny)
/// profiling campaign, shared across every fleet size in the process.
LsProfile fleet_ls() {
  LsProfile ls = find_ls("memcached");
  ls.name = "memcached-fleet";
  ls.sim_scale = 0.002;
  return ls;
}

core::TrainerConfig fleet_trainer() {
  core::TrainerConfig cfg;
  cfg.ls_samples = 250;
  cfg.ls_boundary_searches = 60;
  cfg.be_samples = 150;
  return cfg;
}

/// `n` nodes on phase-offset diurnal load: every node sees the same
/// smooth day, each at its own point in it, so at any epoch most of the
/// fleet sits on a flat stretch of its trace (quiescable) while a thin
/// rotating frontier rides the steep part (awake). This is the fleet
/// regime the paper's utilization argument lives in.
std::vector<cluster::NodeSpec> diurnal_fleet(int n, int duration_s) {
  const auto& bes = be_catalog();
  std::vector<cluster::NodeSpec> specs;
  specs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    cluster::NodeSpec spec;
    spec.ls = fleet_ls();
    spec.be = bes[static_cast<std::size_t>(i) % bes.size()];
    spec.trace = LoadTrace::diurnal_phased(
        0.18, 0.50, duration_s,
        static_cast<double>(i) / static_cast<double>(n));
    spec.trainer = fleet_trainer();
    specs.push_back(std::move(spec));
  }
  return specs;
}

fleet::FleetConfig fleet_config() {
  fleet::FleetConfig fc;
  fc.cluster.seed = 11;
  fc.cluster.oversubscription = 1.0;
  // Hysteresis on the governor's relax path: a power-capped node settles
  // at a constant throttle level (a sleepable fixed point) instead of
  // oscillating one level up and down around its cap forever.
  fc.cluster.governor.relax_margin = 0.90;
  fc.quiescence.enabled = true;
  fc.quiescence.load_epsilon = 0.12;
  fc.quiescence.cap_headroom = 0.02;
  fc.quiescence.max_sleep_epochs = 128;
  fc.churn.enabled = true;
  fc.churn.arrival_rate_per_epoch = 1.0;
  fc.churn.mean_size_norm_s = 30.0;
  fc.churn.slots_per_node = 4;
  fc.delta.rebalance_period = 64;
  return fc;
}

struct BenchRow {
  int nodes = 0;
  fleet::FleetResult result;
  double wall_s = 0.0;
};

BenchRow run_size(int nodes, int epochs) {
  BenchRow row;
  row.nodes = nodes;
  fleet::FleetSim sim(diurnal_fleet(nodes, epochs), fleet_config());
  const auto t0 = std::chrono::steady_clock::now();
  row.result = sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  row.wall_s = std::chrono::duration<double>(t1 - t0).count();
  return row;
}

double epochs_per_s(const BenchRow& row) {
  return static_cast<double>(row.result.cluster.epochs) / row.wall_s;
}

void write_json(const std::vector<BenchRow>& rows, bool quick,
                double eps_largest, double skipped_largest,
                const std::string& path) {
  std::ostringstream os;
  os << "{\"bench\":\"fleet_scale\",\"quick\":" << (quick ? "true" : "false")
     << ",\"results\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& row = rows[i];
    const fleet::FleetResult& r = row.result;
    if (i > 0) os << ",";
    os << "{\"nodes\":" << row.nodes << ",\"epochs\":" << r.cluster.epochs
       << ",\"wall_s\":" << row.wall_s
       << ",\"epochs_per_s\":" << epochs_per_s(row)
       << ",\"skipped_fraction\":" << r.skipped_fraction
       << ",\"total_wakes\":" << r.total_wakes
       << ",\"events_processed\":" << r.events_processed
       << ",\"event_queue_peak\":" << r.event_queue_peak
       << ",\"cap_revisions\":" << r.cap_revisions
       << ",\"rebalances\":" << r.rebalances
       << ",\"jobs_submitted\":" << r.jobs_submitted
       << ",\"jobs_completed\":" << r.jobs_completed
       << ",\"jobs_migrated\":" << r.jobs_migrated
       << ",\"fleet_qos\":" << r.cluster.fleet_qos_guarantee_rate
       << ",\"agg_be_throughput\":" << r.cluster.aggregate_be_throughput
       << "}";
  }
  os << "],\"gates\":{\"largest_epochs_per_s\":" << eps_largest
     << ",\"largest_epochs_per_s_ge_50\":"
     << (eps_largest >= 50.0 ? "true" : "false")
     << ",\"largest_skipped_fraction\":" << skipped_largest
     << ",\"largest_skipped_ge_half\":"
     << (skipped_largest >= 0.5 ? "true" : "false") << "}}\n";
  std::ofstream out(path);
  out << os.str();
  std::cout << "\nwrote " << path << "\n";
}

}  // namespace

int main() {
  const bool quick = bench::quick_mode();
  const int epochs = quick ? 60 : 200;
  const std::vector<int> sizes =
      quick ? std::vector<int>{16, 64} : std::vector<int>{64, 1000, 10000};

  std::cout << "== fleet_scale: event-driven throughput under diurnal "
            << "churn ==\n";
  TablePrinter table({"nodes", "epochs", "wall s", "epochs/s", "skipped %",
                      "wakes", "jobs done", "migrated"});
  std::vector<BenchRow> rows;
  for (const int n : sizes) {
    rows.push_back(run_size(n, epochs));
    const BenchRow& row = rows.back();
    const fleet::FleetResult& r = row.result;
    table.add_row({std::to_string(n), std::to_string(r.cluster.epochs),
                   TablePrinter::fmt(row.wall_s, 2),
                   TablePrinter::fmt(epochs_per_s(row), 1),
                   TablePrinter::fmt_pct(r.skipped_fraction, 1),
                   std::to_string(r.total_wakes),
                   std::to_string(r.jobs_completed),
                   std::to_string(r.jobs_migrated)});
  }
  table.print(std::cout);

  const BenchRow& largest = rows.back();
  const double eps = epochs_per_s(largest);
  const double skipped = largest.result.skipped_fraction;
  expect(eps >= 50.0, std::to_string(largest.nodes) +
                          "-node churning fleet sustains >= 50 epochs/sec");
  expect(skipped >= 0.5,
         "quiescence skips >= 50% of node-epochs at the largest size");
  expect(largest.result.jobs_submitted > 0 &&
             largest.result.jobs_completed > 0,
         "churn is live: jobs submitted and completed");
  expect(largest.result.jobs_placed ==
             largest.result.jobs_completed + largest.result.jobs_active_at_end,
         "churn bookkeeping: placed == completed + active");

  write_json(rows, quick, eps, skipped, "BENCH_fleet.json");

  std::cout << (g_failures == 0 ? "\nall gates passed\n" : "\ngates FAILED\n");
  return g_failures == 0 ? 0 : 1;
}
