// Inference fast-path overhead: cached vs uncached configuration search
// and batched vs scalar model inference (extension of the Section VII-E
// overhead experiments). Demonstrates the prediction cache's steady-state
// claim: at a fixed QPS bucket a warmed search issues ~0 model calls --
// every answer is a dense-table lookup -- while results stay bit-identical
// to the uncached search (asserted by tests/core/prediction_cache_test).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/config_search.h"
#include "core/features.h"
#include "core/prediction_cache.h"
#include "exp/model_registry.h"
#include "util/thread_pool.h"

using namespace sturgeon;

namespace {

struct Fixture {
  core::TrainedModels models;
  MachineSpec machine;
  double budget = 0.0;
  double qps = 0.0;

  static const Fixture& get() {
    static const Fixture f = [] {
      Fixture fx;
      const auto& ls = find_ls("memcached");
      const auto& be = find_be("rt");
      const auto cfg = bench::trainer_config();
      fx.models = core::assemble_models(exp::ls_models_for(ls, cfg),
                                        exp::be_models_for(be, cfg));
      fx.machine = cfg.server.machine;
      sim::SimulatedServer probe(ls, be, 7);
      fx.budget = probe.power_budget_w();
      fx.qps = 0.35 * ls.peak_qps;
      return fx;
    }();
    return f;
  }
};

std::unique_ptr<core::Predictor> make_predictor(bool cached) {
  const auto& fx = Fixture::get();
  auto p = std::make_unique<core::Predictor>(fx.machine, fx.models);
  if (cached) p->enable_cache();
  return p;
}

void run_search_bench(benchmark::State& state, bool cached, bool exhaustive) {
  const auto& fx = Fixture::get();
  auto predictor = make_predictor(cached);
  core::ConfigSearch search(*predictor, fx.budget);
  if (cached) {
    // Warm the dense tables: the bench reports the steady-state cost.
    benchmark::DoNotOptimize(exhaustive ? search.exhaustive(fx.qps)
                                        : search.search(fx.qps));
  }
  std::uint64_t invocations = 0, searches = 0;
  for (auto _ : state) {
    const auto result =
        exhaustive ? search.exhaustive(fx.qps) : search.search(fx.qps);
    benchmark::DoNotOptimize(result.best);
    invocations += result.model_invocations;
    ++searches;
  }
  state.counters["model_calls_per_search"] =
      static_cast<double>(invocations) / static_cast<double>(searches);
  const auto s = predictor->cache_stats();
  if (s.hits + s.misses > 0) {
    state.counters["cache_hit_rate"] = s.hit_rate();
  }
}

void BM_SturgeonSearchUncached(benchmark::State& state) {
  run_search_bench(state, /*cached=*/false, /*exhaustive=*/false);
}

void BM_SturgeonSearchCached(benchmark::State& state) {
  run_search_bench(state, /*cached=*/true, /*exhaustive=*/false);
}

void BM_ExhaustiveSearchUncached(benchmark::State& state) {
  run_search_bench(state, /*cached=*/false, /*exhaustive=*/true);
}

void BM_ExhaustiveSearchCached(benchmark::State& state) {
  run_search_bench(state, /*cached=*/true, /*exhaustive=*/true);
}

void BM_SturgeonSearchParallelCached(benchmark::State& state) {
  const auto& fx = Fixture::get();
  auto predictor = make_predictor(/*cached=*/true);
  core::ConfigSearch search(*predictor, fx.budget);
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  benchmark::DoNotOptimize(search.search_parallel(fx.qps, pool));  // warm
  std::uint64_t invocations = 0, searches = 0;
  for (auto _ : state) {
    const auto result = search.search_parallel(fx.qps, pool);
    benchmark::DoNotOptimize(result.best);
    invocations += result.model_invocations;
    ++searches;
  }
  state.counters["model_calls_per_search"] =
      static_cast<double>(invocations) / static_cast<double>(searches);
  state.counters["cache_hit_rate"] = predictor->cache_stats().hit_rate();
}

/// One dense-table sweep (every slice in the cache geometry) through the
/// deployed LS power regressor: scalar loop vs one predict_batch call.
std::vector<ml::FeatureRow> table_rows() {
  const auto& fx = Fixture::get();
  core::PredictionCache geometry(fx.machine, {});
  std::vector<ml::FeatureRow> rows;
  rows.reserve(geometry.table_size());
  for (std::size_t i = 0; i < geometry.table_size(); ++i) {
    rows.push_back(
        core::ls_features(fx.machine, fx.qps, geometry.slice_at(i)));
  }
  return rows;
}

void BM_ScalarPredictTableSweep(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const auto rows = table_rows();
  for (auto _ : state) {
    double acc = 0.0;
    for (const auto& row : rows) acc += fx.models.ls_power->predict(row);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows.size()));
  state.SetLabel(fx.models.ls_power->name());
}

void BM_BatchPredictTableSweep(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const auto rows = table_rows();
  const std::size_t stride = rows[0].size();
  std::vector<double> flat;
  flat.reserve(rows.size() * stride);
  for (const auto& row : rows) flat.insert(flat.end(), row.begin(), row.end());
  std::vector<double> out(rows.size());
  for (auto _ : state) {
    fx.models.ls_power->predict_batch(flat.data(), rows.size(), stride,
                                      out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows.size()));
  state.SetLabel(fx.models.ls_power->name());
}

void BM_ScalarClassifyTableSweep(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const auto rows = table_rows();
  for (auto _ : state) {
    int acc = 0;
    for (const auto& row : rows) acc += fx.models.ls_qos->predict(row);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows.size()));
  state.SetLabel(fx.models.ls_qos->name());
}

void BM_BatchClassifyTableSweep(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const auto rows = table_rows();
  const std::size_t stride = rows[0].size();
  std::vector<double> flat;
  flat.reserve(rows.size() * stride);
  for (const auto& row : rows) flat.insert(flat.end(), row.begin(), row.end());
  std::vector<int> out(rows.size());
  for (auto _ : state) {
    fx.models.ls_qos->predict_batch(flat.data(), rows.size(), stride,
                                    out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows.size()));
  state.SetLabel(fx.models.ls_qos->name());
}

}  // namespace

BENCHMARK(BM_SturgeonSearchUncached)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SturgeonSearchCached)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SturgeonSearchParallelCached)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ExhaustiveSearchUncached)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExhaustiveSearchCached)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScalarPredictTableSweep)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BatchPredictTableSweep)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScalarClassifyTableSweep)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BatchClassifyTableSweep)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
