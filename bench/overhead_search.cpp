// Section VII-E overhead reproduction: the configuration-search cost.
//
// The paper reports ~6.4 s for exhaustive search over the 40000-point
// space (0.04 ms per model call x 4 models) versus <= ~120 ms for
// Sturgeon's binary search (at most (16 + 11*19) x 4 predictions), and
// 3 x 4 predictions (~0.48 ms) for one balancer invocation. This bench
// times both search strategies on the trained memcached+raytrace
// predictor and reports model invocations per search, so the paper's
// O(N^4) vs O(N log N) gap is visible in both time and calls.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "core/balancer.h"
#include "core/config_search.h"
#include "exp/model_registry.h"
#include "util/thread_pool.h"

using namespace sturgeon;

namespace {

struct Fixture {
  std::shared_ptr<const core::Predictor> predictor;
  double budget = 0.0;
  double qps = 0.0;

  static const Fixture& get() {
    static const Fixture f = [] {
      Fixture fx;
      const auto& ls = find_ls("memcached");
      const auto& be = find_be("rt");
      fx.predictor = exp::predictor_for(ls, be, bench::trainer_config());
      sim::SimulatedServer probe(ls, be, 7);
      fx.budget = probe.power_budget_w();
      fx.qps = 0.35 * ls.peak_qps;
      return fx;
    }();
    return f;
  }
};

void BM_SturgeonSearch(benchmark::State& state) {
  const auto& fx = Fixture::get();
  core::ConfigSearch search(*fx.predictor, fx.budget);
  std::uint64_t invocations = 0, searches = 0;
  for (auto _ : state) {
    const auto result = search.search(fx.qps);
    benchmark::DoNotOptimize(result.best);
    invocations += result.model_invocations;
    ++searches;
  }
  state.counters["model_calls_per_search"] =
      static_cast<double>(invocations) / static_cast<double>(searches);
}

void BM_SturgeonSearchParallel(benchmark::State& state) {
  const auto& fx = Fixture::get();
  core::ConfigSearch search(*fx.predictor, fx.budget);
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::uint64_t invocations = 0, searches = 0;
  for (auto _ : state) {
    const auto result = search.search_parallel(fx.qps, pool);
    benchmark::DoNotOptimize(result.best);
    invocations += result.model_invocations;
    ++searches;
  }
  state.counters["model_calls_per_search"] =
      static_cast<double>(invocations) / static_cast<double>(searches);
}

void BM_ExhaustiveSearch(benchmark::State& state) {
  const auto& fx = Fixture::get();
  core::ConfigSearch search(*fx.predictor, fx.budget);
  std::uint64_t invocations = 0, searches = 0;
  for (auto _ : state) {
    const auto result = search.exhaustive(fx.qps);
    benchmark::DoNotOptimize(result.best);
    invocations += result.model_invocations;
    ++searches;
  }
  state.counters["model_calls_per_search"] =
      static_cast<double>(invocations) / static_cast<double>(searches);
}

void BM_BalancerInvocation(benchmark::State& state) {
  const auto& fx = Fixture::get();
  core::ResourceBalancer balancer(*fx.predictor, fx.budget);
  Partition p;
  p.ls = AppSlice{6, 8, 6};
  p.be = AppSlice{14, 8, 14};
  for (auto _ : state) {
    balancer.arm(p);
    benchmark::DoNotOptimize(balancer.step(/*slack=*/0.02, fx.qps, p));
  }
}

}  // namespace

BENCHMARK(BM_SturgeonSearch)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SturgeonSearchParallel)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExhaustiveSearch)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BalancerInvocation)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
