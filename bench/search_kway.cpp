// K-way search overhead: ns/search at K = 2/3/4 on the default
// MachineSpec, with the warm-start strategy the controller uses in
// steady state (each search seeds from the previous epoch's solution
// while the load sweeps deterministically).
//
// The acceptance bar for the K-way redesign is p50 < 1 ms at K = 4 with
// warm start -- comfortably inside the paper's 1 s control interval.
// K = 2 exercises the bit-exact ConfigSearch delegation path, so its row
// doubles as the pair-search baseline.
//
// Prints an aligned table and writes BENCH_search.json (first argument
// overrides the output path). Timing is hand-rolled steady_clock --
// bench/ is exempt from the no-wall-clock lint (SL007) that covers src/.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/kway_search.h"
#include "exp/model_registry.h"

using namespace sturgeon;

namespace {

struct Row {
  int k = 0;
  double p50_ns = 0.0;
  double p90_ns = 0.0;
  double mean_ns = 0.0;
  double model_calls = 0.0;  ///< mean model invocations per search
  double rounds = 0.0;       ///< mean hill-climb rounds per search
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * (v.size() - 1));
  return v[idx];
}

/// One LS service plus K-1 priority-ranked BE slots, all sharing the
/// trained memcached/raytrace predictor.
WorkloadSet make_workloads(int k, double qos_ms) {
  std::vector<Workload> items;
  items.push_back(Workload::latency_sensitive("memcached", qos_ms));
  for (int j = 1; j < k; ++j) {
    items.push_back(Workload::best_effort("be" + std::to_string(j),
                                          k - 1 - j));
  }
  return WorkloadSet{std::move(items)};
}

Row run_bench(const core::Predictor& predictor, double budget_w,
              double qos_ms, double peak_qps, int k, int iterations) {
  core::KwaySearch search(make_workloads(k, qos_ms), predictor, budget_w);
  std::vector<double> qps(static_cast<std::size_t>(k), 0.0);

  // Steady-state shape: warm-start from the previous solution while the
  // load sweeps 25%..45% of peak deterministically.
  qps[0] = 0.35 * peak_qps;
  core::KwaySearchResult last = search.search(qps);

  std::vector<double> ns;
  ns.reserve(static_cast<std::size_t>(iterations));
  std::uint64_t calls = 0;
  std::uint64_t rounds = 0;
  for (int i = 0; i < iterations; ++i) {
    qps[0] = (0.25 + 0.2 * static_cast<double>(i % 50) / 50.0) * peak_qps;
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = search.search(qps, &last.best);
    const auto t1 = std::chrono::steady_clock::now();
    ns.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
    calls += r.model_invocations;
    rounds += static_cast<std::uint64_t>(r.rounds);
    last = r;
  }

  Row row;
  row.k = k;
  row.p50_ns = percentile(ns, 0.50);
  row.p90_ns = percentile(ns, 0.90);
  double sum = 0.0;
  for (const double v : ns) sum += v;
  row.mean_ns = sum / static_cast<double>(ns.size());
  row.model_calls = static_cast<double>(calls) / iterations;
  row.rounds = static_cast<double>(rounds) / iterations;
  return row;
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "search_kway: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"search_kway\",\n");
  std::fprintf(f, "  \"machine\": \"xeon_e5_2630_v4\",\n");
  std::fprintf(f, "  \"warm_start\": true,\n  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"k\": %d, \"p50_ns\": %.0f, \"p90_ns\": %.0f, "
                 "\"mean_ns\": %.0f, \"model_calls_per_search\": %.1f, "
                 "\"rounds_per_search\": %.2f}%s\n",
                 r.k, r.p50_ns, r.p90_ns, r.mean_ns, r.model_calls, r.rounds,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stdout, "wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "BENCH_search.json";
  const auto& ls = find_ls("memcached");
  const auto& be = find_be("rt");
  const auto predictor = exp::predictor_for(ls, be, bench::trainer_config());
  sim::SimulatedServer probe(ls, be, 7);
  const double budget = probe.power_budget_w();
  const int iterations = bench::quick_mode() ? 200 : 1000;

  std::fprintf(stdout, "K-way search, warm-started, %d searches per K\n", iterations);
  std::fprintf(stdout, "%3s %12s %12s %12s %12s %8s\n", "K", "p50 (us)", "p90 (us)",
              "mean (us)", "calls/srch", "rounds");
  std::vector<Row> rows;
  for (const int k : {2, 3, 4}) {
    rows.push_back(run_bench(*predictor, budget, ls.qos_target_ms,
                             ls.peak_qps, k, iterations));
    const Row& r = rows.back();
    std::fprintf(stdout, "%3d %12.1f %12.1f %12.1f %12.1f %8.2f\n", r.k,
                r.p50_ns / 1e3, r.p90_ns / 1e3, r.mean_ns / 1e3,
                r.model_calls, r.rounds);
  }
  write_json(out, rows);

  const bool ok = rows.back().p50_ns < 1e6;  // K = 4 p50 under 1 ms
  std::fprintf(stdout, "K=4 p50 %s the 1 ms acceptance bar\n",
              ok ? "meets" : "MISSES");
  return ok ? 0 : 1;
}
