// Fig 3 reproduction: multiple feasible resource configurations exist,
// and which one maximizes BE throughput depends on the load and the BE
// application's preferences.
//
// For memcached at 20% and 35% of peak load, two *measured-feasible*
// configurations are built for every BE application:
//   core-rich : LS gets its measured just-enough slice (few cores), the
//               BE side takes many cores at the highest frequency the
//               power budget allows;
//   freq-rich : LS gets twice the cores at a lower just-enough frequency,
//               the BE side takes fewer cores but a higher frequency.
// Both must meet QoS and the power budget; the table reports normalized
// BE throughput of each and which wins.
//
// Paper shape: at 20% load the core-rich configuration wins for most
// applications; at 35% the frequency-rich configuration wins for several
// (preference flips with load and application).
#include <iostream>
#include <optional>

#include "bench_common.h"
#include "exp/ground_truth.h"
#include "util/table.h"

using namespace sturgeon;

namespace {

/// Highest BE P-state whose measured co-location stays within budget and
/// keeps the LS service's QoS; nullopt if even the bottom state fails.
std::optional<int> measured_max_be_freq(const LsProfile& ls,
                                        const BeProfile& be, Partition p,
                                        double load, double budget) {
  const auto machine = MachineSpec::xeon_e5_2630_v4();
  for (int f2 = machine.max_freq_level(); f2 >= 0; --f2) {
    p.be.freq_level = f2;
    const auto m = exp::measure_configuration(ls, be, p, load);
    if (m.peak_power_w <= budget && m.qos_met) return f2;
  }
  return std::nullopt;
}

}  // namespace

int main() {
  const auto machine = MachineSpec::xeon_e5_2630_v4();
  const auto& ls = find_ls("memcached");

  TablePrinter table({"load", "BE", "core-rich config", "thr",
                      "freq-rich config", "thr", "winner"});
  int core_rich_wins = 0, freq_rich_wins = 0;

  for (double load : {0.20, 0.35}) {
    const AppSlice min_ls = exp::measured_min_ls_allocation(ls, load, machine);

    // Freq-rich variant: LS holds twice the cores (so the BE side is
    // narrow but can clock higher), at the measured minimum frequency for
    // that width. The LS way count stays moderate so the narrow BE slice
    // is not additionally cache-starved (paper's B-configs leave the BE
    // side ~8 ways).
    AppSlice wide_ls = min_ls;
    wide_ls.cores = std::min(machine.num_cores - 4, min_ls.cores * 2);
    wide_ls.llc_ways = std::min(12, min_ls.llc_ways + 3);
    {
      // Just-enough frequency for the wide slice.
      AppSlice probe = wide_ls;
      for (int f = 0; f <= machine.max_freq_level(); ++f) {
        probe.freq_level = f;
        const Partition solo{probe, AppSlice{0, 0, 0}};
        if (exp::measure_configuration(ls, be_catalog().front(), solo, load)
                .qos_met) {
          wide_ls.freq_level = f;
          break;
        }
      }
    }

    for (const auto& be : be_catalog()) {
      sim::SimulatedServer probe(ls, be, 7);
      const double budget = probe.power_budget_w();

      Partition core_rich{min_ls,
                          Allocation::complement(machine, min_ls, 0)};
      Partition freq_rich{wide_ls,
                          Allocation::complement(machine, wide_ls, 0)};
      const auto f2a =
          measured_max_be_freq(ls, be, core_rich, load, budget);
      const auto f2b =
          measured_max_be_freq(ls, be, freq_rich, load, budget);
      if (!f2a || !f2b) continue;
      core_rich.be.freq_level = *f2a;
      freq_rich.be.freq_level = *f2b;

      const auto ma = exp::measure_configuration(ls, be, core_rich, load);
      const auto mb = exp::measure_configuration(ls, be, freq_rich, load);
      const bool a_wins = ma.be_throughput_norm >= mb.be_throughput_norm;
      (a_wins ? core_rich_wins : freq_rich_wins)++;

      table.add_row({TablePrinter::fmt_pct(load, 0), be.name,
                     core_rich.to_string(machine),
                     TablePrinter::fmt(ma.be_throughput_norm, 3),
                     freq_rich.to_string(machine),
                     TablePrinter::fmt(mb.be_throughput_norm, 3),
                     a_wins ? "core-rich" : "freq-rich"});
    }
  }

  std::cout << "Fig 3: normalized BE throughput under two measured-feasible "
               "configurations\n(memcached co-location; both configs meet "
               "QoS and the power budget)\n\n";
  table.print(std::cout);
  std::cout << "\ncore-rich wins " << core_rich_wins << ", freq-rich wins "
            << freq_rich_wins
            << " (paper: 13/18 core-rich vs 5/18 freq-rich across loads; "
               "the split demonstrates the preference flip)\n";
  return 0;
}
