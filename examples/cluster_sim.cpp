// Cluster-level view (paper Fig 4): a front-end scheduler dispatches user
// queries across N nodes; an independent Sturgeon daemon manages each
// node's co-location. This example runs a small cluster over a diurnal
// day, with per-node load share jitter (imperfect load balancing), and
// reports per-node and aggregate outcomes.
//
// Usage: cluster_sim [nodes=4] [duration_s=240]
#include <iostream>
#include <memory>
#include <vector>

#include "core/controller.h"
#include "exp/model_registry.h"
#include "exp/runner.h"
#include "util/rng.h"
#include "util/table.h"

using namespace sturgeon;

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::stoi(argv[1]) : 4;
  const int duration = argc > 2 ? std::stoi(argv[2]) : 240;
  if (nodes < 1 || duration < 10) {
    std::cerr << "usage: cluster_sim [nodes>=1] [duration_s>=10]\n";
    return 1;
  }

  const auto& ls = find_ls("memcached");
  // Heterogeneous BE mix across nodes, as a real cluster would run.
  const auto& bes = be_catalog();

  std::cout << "Cluster of " << nodes << " nodes serving " << ls.name
            << " behind a front-end dispatcher; training models...\n";

  // The cluster-wide load follows a diurnal curve; each node receives its
  // share with +-7% dispatch jitter.
  const auto cluster_trace = LoadTrace::diurnal(0.15, 0.85, duration);

  TablePrinter table({"node", "BE app", "QoS rate", "BE thr",
                      "max P/budget"});
  double total_thr = 0.0;
  double worst_qos = 1.0;
  for (int n = 0; n < nodes; ++n) {
    const auto& be = bes[static_cast<std::size_t>(n) % bes.size()];
    const auto predictor = exp::predictor_for(ls, be);
    sim::SimulatedServer probe(ls, be, 7);
    const double budget = probe.power_budget_w();
    core::SturgeonController ctl(predictor, ls.qos_target_ms, budget);

    const auto node_trace = cluster_trace.with_noise(
        0.07, 1000 + static_cast<std::uint64_t>(n));
    exp::RunConfig rc;
    rc.seed = 500 + static_cast<std::uint64_t>(n);
    const auto r = exp::run_colocation(ls, be, ctl, node_trace, rc);

    table.add_row({std::to_string(n), be.name,
                   TablePrinter::fmt_pct(r.qos_guarantee_rate, 2),
                   TablePrinter::fmt(r.mean_be_throughput_norm, 3),
                   TablePrinter::fmt(r.max_power_ratio, 3)});
    total_thr += r.mean_be_throughput_norm;
    worst_qos = std::min(worst_qos, r.qos_guarantee_rate);
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\ncluster BE throughput harvested: "
            << TablePrinter::fmt(total_thr, 3) << " solo-machine equivalents"
            << " across " << nodes << " nodes\nworst node QoS rate: "
            << TablePrinter::fmt_pct(worst_qos, 2) << "\n";
  return 0;
}
