// Chaos quickstart: the same fleet run twice -- once fault-free, once
// under the standard chaos schedule (sensor dropout fleet-wide, an
// actuator burst, one node crash that recovers) with every defense
// armed: sensor sanitization, watchdog safe-mode fallback, actuator
// retry, and heartbeat-driven dead-node power reclamation.
//
// The side-by-side table is the point: QoS should stay within a few
// points of the clean run, the budget must never be oversubscribed, and
// the recovery columns show what the fault machinery absorbed.
//
// Usage: chaos_demo [nodes=4] [duration_s=120] [cluster_jsonl_path]
// The optional third argument writes the *faulted* run's roll-up, which
// tools/trace_stats.py --cluster validates (including the fault and
// recovery fields).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/export.h"
#include "util/rng.h"
#include "util/table.h"

using namespace sturgeon;

namespace {

std::vector<cluster::NodeSpec> build_fleet(int nodes, int duration) {
  const auto& ls = find_ls("memcached");
  const auto& bes = be_catalog();
  core::TrainerConfig trainer;
  trainer.ls_samples = 250;
  trainer.ls_boundary_searches = 60;
  trainer.be_samples = 150;
  const auto load = LoadTrace::diurnal(0.15, 0.85, duration);
  std::vector<cluster::NodeSpec> specs;
  specs.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    cluster::NodeSpec spec;
    spec.ls = ls;
    spec.be = bes[static_cast<std::size_t>(n) % bes.size()];
    spec.trace =
        load.with_noise(0.07, derive_seed(42, static_cast<std::uint64_t>(n)));
    spec.trainer = trainer;
    specs.push_back(std::move(spec));
  }
  return specs;
}

cluster::ClusterConfig base_config() {
  cluster::ClusterConfig config;
  config.seed = 7;
  config.coordinator = cluster::CoordinatorKind::kSlackHarvest;
  // All defenses armed in both runs, so the comparison isolates the
  // faults themselves, not the defense overhead.
  config.resilience.sanitize_sensors = true;
  config.resilience.watchdog.enabled = true;
  config.resilience.heartbeat.dead_after_epochs = 3;
  return config;
}

/// The standard chaos schedule, scaled to the run length.
fault::FaultConfig standard_chaos(int epochs, int victim) {
  fault::FaultConfig f;
  f.enabled = true;
  f.sensor.dropout_p = 0.05;
  f.actuator.burst_start_epoch = epochs / 4;
  f.actuator.burst_epochs = 3;
  f.actuator.burst_fail_p = 0.9;
  f.node.victim = victim;
  f.node.crash_epoch = epochs / 2;
  f.node.crash_epochs = 6;
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::stoi(argv[1]) : 4;
  const int duration = argc > 2 ? std::stoi(argv[2]) : 120;
  const std::string jsonl_path = argc > 3 ? argv[3] : "";
  if (nodes < 2 || duration < 30) {
    std::cerr << "usage: chaos_demo [nodes>=2] [duration_s>=30] [jsonl]\n";
    return 1;
  }

  std::cout << "Chaos demo: " << nodes << " nodes, " << duration
            << " epochs; training models...\n";
  cluster::ClusterSim clean_sim(build_fleet(nodes, duration), base_config());
  const cluster::ClusterResult clean = clean_sim.run();

  cluster::ClusterConfig faulted_config = base_config();
  faulted_config.faults = standard_chaos(duration, /*victim=*/1);
  cluster::ClusterSim chaos_sim(build_fleet(nodes, duration), faulted_config);
  const cluster::ClusterResult chaos = chaos_sim.run();

  TablePrinter table({"run", "fleet QoS", "agg BE thr", "max cap-sum ratio",
                      "dead epochs", "recoveries", "MTTR p95"});
  for (const auto* r : {&clean, &chaos}) {
    table.add_row({r == &clean ? "fault-free" : "chaos",
                   TablePrinter::fmt_pct(r->fleet_qos_guarantee_rate, 2),
                   TablePrinter::fmt(r->aggregate_be_throughput, 3),
                   TablePrinter::fmt(r->max_cap_sum_ratio, 3),
                   std::to_string(r->dead_node_epochs),
                   std::to_string(r->recovery_mttr_epochs.size()),
                   TablePrinter::fmt(r->mttr_p95_epochs, 1)});
  }
  table.print(std::cout);

  std::uint64_t injected = 0, rejected = 0, retries = 0;
  int safe_mode = 0;
  for (const auto& nr : chaos.node_results) {
    injected += nr.faults_injected;
    rejected += nr.sensor_rejected;
    retries += nr.actuator_retries;
    safe_mode += nr.safe_mode_epochs;
  }
  std::cout << "\nchaos run absorbed: " << injected << " injected faults, "
            << rejected << " sensor readings rejected, " << retries
            << " actuator retries, " << safe_mode
            << " safe-mode epochs\nQoS delta vs fault-free: "
            << TablePrinter::fmt_pct(chaos.fleet_qos_guarantee_rate -
                                         clean.fleet_qos_guarantee_rate,
                                     2)
            << "\n";

  if (!jsonl_path.empty()) {
    if (!cluster::write_cluster_jsonl(chaos, jsonl_path)) {
      std::cerr << "cannot write " << jsonl_path << "\n";
      return 1;
    }
    std::cout << "\nchaos roll-up written to " << jsonl_path << "\n";
  }
  return 0;
}
