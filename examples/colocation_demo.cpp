// Co-location policy shoot-out on a chosen pair and load pattern.
//
// Usage: colocation_demo [ls] [be] [trace] [csv_path]
//   ls    : memcached | xapian | img-dnn          (default memcached)
//   be    : bs | fa | fe | rt | sp | fd           (default fe)
//   trace : ramp | diurnal | step                 (default diurnal)
//   csv   : optional path for the Sturgeon per-second trace
//
// Runs Sturgeon, Sturgeon-NoB, power-enhanced PARTIES and Heracles over
// the same load and prints the comparison; optionally dumps Sturgeon's
// per-second allocation trace as CSV for plotting.
#include <fstream>
#include <iostream>
#include <memory>

#include "baselines/heracles.h"
#include "baselines/parties.h"
#include "core/controller.h"
#include "exp/model_registry.h"
#include "exp/runner.h"
#include "util/table.h"

using namespace sturgeon;

namespace {

LoadTrace make_trace(const std::string& kind) {
  if (kind == "ramp") return LoadTrace::ramp_up_down(0.2, 0.8, 240);
  if (kind == "step") {
    return LoadTrace::steps({0.2, 0.5, 0.3, 0.7, 0.25, 0.6}, 40);
  }
  if (kind == "diurnal") {
    return LoadTrace::diurnal(0.15, 0.85, 240).with_noise(0.05, 11);
  }
  throw std::invalid_argument("unknown trace kind '" + kind +
                              "' (ramp|diurnal|step)");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string ls_name = argc > 1 ? argv[1] : "memcached";
  const std::string be_name = argc > 2 ? argv[2] : "fe";
  const std::string trace_kind = argc > 3 ? argv[3] : "diurnal";
  const std::string csv_path = argc > 4 ? argv[4] : "";

  const auto& ls = find_ls(ls_name);
  const auto& be = find_be(be_name);
  const auto trace = make_trace(trace_kind);
  std::cout << "Pair " << ls.name << " + " << be.name << " on a "
            << trace_kind << " trace (" << trace.duration_s() << " s)\n"
            << "Training models (cached per process)...\n";
  const auto predictor = exp::predictor_for(ls, be);
  sim::SimulatedServer probe(ls, be, 7);
  const double budget = probe.power_budget_w();

  exp::RunConfig rc;
  rc.seed = 2024;
  rc.record_trace = !csv_path.empty();

  TablePrinter table({"policy", "QoS rate", "BE thr", "over-budget s",
                      "max P/budget"});
  const auto report = [&](core::Policy& policy) {
    std::cout << "  " << policy.describe() << "\n";
    const auto r = exp::run_colocation(ls, be, policy, trace, rc);
    table.add_row({policy.name(),
                   TablePrinter::fmt_pct(r.qos_guarantee_rate, 2),
                   TablePrinter::fmt(r.mean_be_throughput_norm, 3),
                   TablePrinter::fmt_pct(r.power_overshoot_fraction, 1),
                   TablePrinter::fmt(r.max_power_ratio, 3)});
    return r;
  };

  core::SturgeonController sturgeon(predictor, ls.qos_target_ms, budget);
  const auto r_sturgeon = report(sturgeon);

  core::SturgeonOptions nob_opts;
  nob_opts.enable_balancer = false;
  core::SturgeonController nob(predictor, ls.qos_target_ms, budget, nob_opts);
  report(nob);

  baselines::PartiesOptions po;
  po.power_budget_w = budget;
  baselines::PartiesController parties(probe.machine(), ls.qos_target_ms, po);
  report(parties);

  baselines::HeraclesOptions ho;
  ho.power_budget_w = budget;
  baselines::HeraclesController heracles(probe.machine(), ls.qos_target_ms,
                                         ho);
  report(heracles);

  std::cout << "\nbudget " << budget << " W, QoS target " << ls.qos_target_ms
            << " ms p95\n\n";
  table.print(std::cout);

  if (!csv_path.empty() && r_sturgeon.trace) {
    std::ofstream out(csv_path);
    if (!out) {
      std::cerr << "cannot open " << csv_path << "\n";
      return 1;
    }
    r_sturgeon.trace->write_csv(out);
    std::cout << "\nSturgeon per-second trace written to " << csv_path
              << "\n";
  }
  return 0;
}
