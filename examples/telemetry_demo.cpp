// Telemetry demo: one short Sturgeon run with the full observability
// layer switched on -- span tracing, per-interval CSV rows, and the
// end-of-run metrics summary.
//
//   ./build/examples/telemetry_demo [trace.jsonl] [trace.csv]
//
// Writes the JSONL span trace (and optionally the per-second CSV), then
// prints the registry summary: counters, gauges, and per-phase duration
// histograms whose counts reconcile with the span trace. The JSONL file
// is what tools/trace_stats.py validates in ctest.
#include <iostream>
#include <memory>

#include "core/controller.h"
#include "core/predictor.h"
#include "core/trainer.h"
#include "exp/model_registry.h"
#include "exp/runner.h"
#include "telemetry/context.h"

int main(int argc, char** argv) {
  using namespace sturgeon;

  const std::string jsonl_path = argc > 1 ? argv[1] : "telemetry_trace.jsonl";
  const std::string csv_path = argc > 2 ? argv[2] : "";

  const LsProfile& ls = find_ls("memcached");
  const BeProfile& be = find_be("rt");

  // Reduced profiling campaign: the demo is about telemetry, not model
  // quality (same settings as the integration tests).
  core::TrainerConfig trainer;
  trainer.ls_samples = 250;
  trainer.ls_boundary_searches = 60;
  trainer.be_samples = 150;
  trainer.seed = 0xFEED;
  std::cout << "Training models..." << std::flush;
  auto predictor = exp::predictor_for(ls, be, trainer);
  std::cout << " done\n";

  sim::SimulatedServer probe(ls, be, /*seed=*/7);
  const double budget = probe.power_budget_w();
  core::SturgeonController sturgeon(predictor, ls.qos_target_ms, budget);

  // One live context for the whole experiment: tracing + CSV rows on,
  // file sinks written by the runner's flush on every exit path.
  telemetry::TelemetryConfig tc;
  tc.tracing = true;
  tc.csv = true;
  tc.trace_jsonl_path = jsonl_path;
  tc.csv_path = csv_path;
  exp::RunConfig run_cfg;
  run_cfg.seed = 1;
  run_cfg.telemetry = telemetry::TelemetryContext::make(probe.machine(), tc);

  const auto trace = LoadTrace::ramp_up_down(0.2, 0.8, 60);
  const auto result = exp::run_colocation(ls, be, sturgeon, trace, run_cfg);

  std::cout << "policy: " << sturgeon.describe() << "\n"
            << "last action: " << sturgeon.last_decision().action_string() << " (epoch "
            << sturgeon.last_decision().epoch << ")\n"
            << "intervals run: " << result.intervals_run << "\n"
            << "QoS guarantee rate: " << 100.0 * result.qos_guarantee_rate
            << " %\n"
            << "spans recorded: "
            << result.telemetry->tracer().finished_count() << " -> "
            << jsonl_path << "\n\n";
  result.telemetry->write_summary(std::cout);
  return 0;
}
