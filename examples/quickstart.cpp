// Quickstart: co-locate one latency-sensitive service with one
// best-effort application under a power budget, managed by Sturgeon.
//
//   1. pick workloads from the built-in catalogs,
//   2. train the offline performance/power models (seconds),
//   3. run the Sturgeon controller over a fluctuating load,
//   4. read the QoS / throughput / power summary.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>
#include <memory>

#include "core/controller.h"
#include "core/predictor.h"
#include "core/trainer.h"
#include "exp/runner.h"

int main() {
  using namespace sturgeon;

  // 1. Workloads: memcached-like LS service, raytrace-like BE app.
  const LsProfile& ls = find_ls("memcached");
  const BeProfile& be = find_be("rt");
  std::cout << "Co-locating " << ls.name << " (p95 target "
            << ls.qos_target_ms << " ms, peak " << ls.peak_qps
            << " QPS) with " << be.name << "\n";

  // 2. Offline training: profile both applications on a quiet machine
  //    and fit the QoS / power / IPC models (paper Section V).
  core::TrainerConfig trainer;
  trainer.ls_samples = 300;          // reduced for a fast quickstart
  trainer.ls_boundary_searches = 80;
  trainer.be_samples = 250;
  std::cout << "Training models..." << std::flush;
  auto predictor = std::make_shared<const core::Predictor>(
      trainer.server.machine, core::train_for_pair(ls, be, trainer));
  std::cout << " done\n";

  // 3. The node's power budget is its LS-alone-at-peak power; run the
  //    Sturgeon controller over a 20% -> 80% -> 20% load ramp.
  sim::SimulatedServer probe(ls, be, /*seed=*/7);
  const double budget = probe.power_budget_w();
  std::cout << "Power budget: " << budget << " W\n";

  core::SturgeonController sturgeon(predictor, ls.qos_target_ms, budget);
  std::cout << "Policy: " << sturgeon.describe() << "\n";
  const auto trace = LoadTrace::ramp_up_down(0.2, 0.8, 180);
  exp::RunConfig run_cfg;
  run_cfg.seed = 1;
  const auto result = exp::run_colocation(ls, be, sturgeon, trace, run_cfg);

  // 4. Summary.
  std::cout << "\nAfter " << trace.duration_s() << " s of fluctuating load:\n"
            << "  QoS guarantee rate:        "
            << 100.0 * result.qos_guarantee_rate << " %\n"
            << "  BE throughput (vs solo):   "
            << 100.0 * result.mean_be_throughput_norm << " %\n"
            << "  intervals over budget:     "
            << 100.0 * result.power_overshoot_fraction << " %\n"
            << "  worst power / budget:      " << result.max_power_ratio
            << "\n  predictor searches run:    " << sturgeon.searches_run()
            << "\n  balancer interventions:    "
            << sturgeon.balancer_actions() << "\n  last decision:             "
            << sturgeon.last_decision().action_string() << "\n\n";

  // Every run carries a metrics registry; the end-of-run summary shows
  // counters, gauges, and per-phase duration histograms.
  result.telemetry->write_summary(std::cout);
  return 0;
}
