// Chaos-net quickstart: the same fleet run twice with all coordinator
// traffic routed through the simulated message channel -- once over a
// reliable (zero-fault) network, once under chaos-net (message drops,
// reordering, and a full coordinator partition window). Cap grants are
// leases; nodes whose lease lapses fall back to a conservative
// autonomous cap, so the budget is never oversubscribed no matter what
// the network eats.
//
// The side-by-side table is the point: the reliable run behaves exactly
// like the direct shared-memory path, the chaos run keeps
// max_cap_sum_ratio <= 1 while the comms counters show what the
// network did and what the lease machinery absorbed.
//
// Usage: comms_demo [nodes=4] [duration_s=120] [cluster_jsonl_path]
// The optional third argument writes the *chaos-net* run's roll-up,
// which tools/trace_stats.py --cluster validates (including the comms
// accounting identity grants_sent == delivered + dropped + in_flight).
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/export.h"
#include "util/rng.h"
#include "util/table.h"

using namespace sturgeon;

namespace {

std::vector<cluster::NodeSpec> build_fleet(int nodes, int duration) {
  const auto& ls = find_ls("memcached");
  const auto& bes = be_catalog();
  core::TrainerConfig trainer;
  trainer.ls_samples = 250;
  trainer.ls_boundary_searches = 60;
  trainer.be_samples = 150;
  const auto load = LoadTrace::diurnal(0.15, 0.85, duration);
  std::vector<cluster::NodeSpec> specs;
  specs.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    cluster::NodeSpec spec;
    spec.ls = ls;
    spec.be = bes[static_cast<std::size_t>(n) % bes.size()];
    spec.trace =
        load.with_noise(0.07, derive_seed(42, static_cast<std::uint64_t>(n)));
    spec.trainer = trainer;
    specs.push_back(std::move(spec));
  }
  return specs;
}

cluster::ClusterConfig comms_config(int duration, bool chaos) {
  cluster::ClusterConfig config;
  config.seed = 7;
  config.coordinator = cluster::CoordinatorKind::kSlackHarvest;
  config.resilience.heartbeat.dead_after_epochs = 3;
  config.comms.enabled = true;
  config.comms.lease_epochs = 8;
  config.comms.renew_ahead_epochs = 3;
  if (chaos) {
    config.comms.network.drop_p = 0.15;
    config.comms.network.reorder_p = 0.5;
    config.comms.network.duplicate_p = 0.05;
    // One full coordinator partition for a sixth of the run: every
    // lease lapses and the fleet rides it out on autonomous caps.
    config.comms.network.partition_start_epoch = duration / 2;
    config.comms.network.partition_epochs = duration / 6;
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::stoi(argv[1]) : 4;
  const int duration = argc > 2 ? std::stoi(argv[2]) : 120;
  const std::string jsonl_path = argc > 3 ? argv[3] : "";
  if (nodes < 2 || duration < 30) {
    std::cerr << "usage: comms_demo [nodes>=2] [duration_s>=30] [jsonl]\n";
    return 1;
  }

  std::cout << "Chaos-net demo: " << nodes << " nodes, " << duration
            << " epochs over the message channel; training models...\n";
  cluster::ClusterSim clean_sim(build_fleet(nodes, duration),
                                comms_config(duration, /*chaos=*/false));
  const cluster::ClusterResult clean = clean_sim.run();

  cluster::ClusterSim chaos_sim(build_fleet(nodes, duration),
                                comms_config(duration, /*chaos=*/true));
  const cluster::ClusterResult chaos = chaos_sim.run();

  TablePrinter table({"network", "fleet QoS", "agg BE thr",
                      "max cap-sum ratio", "dead epochs", "msgs dropped",
                      "lease expiries", "autonomy epochs"});
  for (const auto* r : {&clean, &chaos}) {
    table.add_row({r == &clean ? "reliable" : "chaos-net",
                   TablePrinter::fmt_pct(r->fleet_qos_guarantee_rate, 2),
                   TablePrinter::fmt(r->aggregate_be_throughput, 3),
                   TablePrinter::fmt(r->max_cap_sum_ratio, 3),
                   std::to_string(r->dead_node_epochs),
                   std::to_string(r->comms_dropped),
                   std::to_string(r->comms_lease_expiries),
                   std::to_string(r->comms_autonomy_epochs)});
  }
  table.print(std::cout);

  std::cout << "\nchaos-net channel: " << chaos.comms_sent
            << " messages sent, " << chaos.comms_dropped << " dropped, "
            << chaos.comms_delayed << " delayed, " << chaos.comms_duplicated
            << " duplicated\ngrant ledger: " << chaos.comms_grants_sent
            << " sent == " << chaos.comms_grants_delivered << " delivered + "
            << chaos.comms_grants_dropped << " dropped + "
            << chaos.comms_grants_in_flight
            << " in flight\nlease machinery: " << chaos.comms_lease_renewals
            << " renewals, " << chaos.comms_lease_expiries << " expiries, "
            << chaos.comms_autonomy_epochs
            << " autonomous node-epochs\nQoS delta vs reliable: "
            << TablePrinter::fmt_pct(chaos.fleet_qos_guarantee_rate -
                                         clean.fleet_qos_guarantee_rate,
                                     2)
            << "\n";

  if (!jsonl_path.empty()) {
    if (!cluster::write_cluster_jsonl(chaos, jsonl_path)) {
      std::cerr << "cannot write " << jsonl_path << "\n";
      return 1;
    }
    std::cout << "\nchaos-net roll-up written to " << jsonl_path << "\n";
  }
  return 0;
}
