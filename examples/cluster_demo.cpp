// Cluster quickstart: a fleet of co-location nodes under one cluster
// power budget. Each node runs its own Sturgeon daemon over a diurnal
// load (with per-node dispatch jitter); the slack-harvesting coordinator
// re-splits the cluster budget every epoch, moving watts from nodes with
// QoS headroom to nodes near violation.
//
// Usage: cluster_demo [nodes=4] [duration_s=180] [cluster_jsonl_path]
// The optional third argument writes the per-node + cluster run_summary
// roll-up that tools/trace_stats.py --cluster validates.
#include <fstream>
#include <iostream>
#include <string>

#include "cluster/cluster.h"
#include "cluster/export.h"
#include "util/rng.h"
#include "util/table.h"

using namespace sturgeon;

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::stoi(argv[1]) : 4;
  const int duration = argc > 2 ? std::stoi(argv[2]) : 180;
  const std::string jsonl_path = argc > 3 ? argv[3] : "";
  if (nodes < 1 || duration < 10) {
    std::cerr << "usage: cluster_demo [nodes>=1] [duration_s>=10] [jsonl]\n";
    return 1;
  }

  const auto& ls = find_ls("memcached");
  const auto& bes = be_catalog();

  // Reduced profiling campaign so the demo trains in seconds; the fleet
  // shares it (one campaign per process, distinct BEs train in parallel).
  core::TrainerConfig trainer;
  trainer.ls_samples = 250;
  trainer.ls_boundary_searches = 60;
  trainer.be_samples = 150;

  const auto cluster_load = LoadTrace::diurnal(0.15, 0.85, duration);

  std::vector<cluster::NodeSpec> specs;
  specs.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    cluster::NodeSpec spec;
    spec.ls = ls;
    spec.be = bes[static_cast<std::size_t>(n) % bes.size()];
    // Every node serves its dispatcher share of the diurnal day, with
    // +-7% jitter (imperfect load balancing), on an independent stream.
    spec.trace = cluster_load.with_noise(
        0.07, derive_seed(42, static_cast<std::uint64_t>(n)));
    spec.trainer = trainer;
    specs.push_back(std::move(spec));
  }

  cluster::ClusterConfig config;
  config.seed = 7;
  config.coordinator = cluster::CoordinatorKind::kSlackHarvest;
  config.node_tracing = true;

  std::cout << "Cluster of " << nodes << " nodes serving " << ls.name
            << "; training models...\n";
  cluster::ClusterSim sim(std::move(specs), config);
  std::cout << "cluster power budget: "
            << TablePrinter::fmt(sim.cluster_budget_w(), 1) << " W ("
            << TablePrinter::fmt_pct(config.oversubscription, 0)
            << " of the fleet's summed node budgets)\n\n";

  const cluster::ClusterResult result = sim.run();

  TablePrinter table({"node", "BE app", "QoS rate", "BE thr", "mean cap W",
                      "throttled"});
  for (const auto& nr : result.node_results) {
    table.add_row({std::to_string(nr.node), nr.be,
                   TablePrinter::fmt_pct(nr.qos_guarantee_rate, 2),
                   TablePrinter::fmt(nr.mean_be_throughput_norm, 3),
                   TablePrinter::fmt(nr.mean_cap_w, 1),
                   std::to_string(nr.throttled_epochs)});
  }
  table.print(std::cout);

  std::cout << "\ncoordinator: " << result.coordinator
            << "\nfleet QoS guarantee rate: "
            << TablePrinter::fmt_pct(result.fleet_qos_guarantee_rate, 2)
            << "\naggregate BE throughput: "
            << TablePrinter::fmt(result.aggregate_be_throughput, 3)
            << " solo-machine equivalents\nmean cluster power: "
            << TablePrinter::fmt(result.mean_cluster_power_w, 1)
            << " W (budget " << TablePrinter::fmt(result.cluster_power_budget_w, 1)
            << " W)\nmax cluster power ratio: "
            << TablePrinter::fmt(result.max_cluster_power_ratio, 3)
            << "\nepochs over budget: "
            << TablePrinter::fmt_pct(result.cluster_overshoot_fraction, 2)
            << "\n";

  if (!jsonl_path.empty()) {
    std::ofstream out(jsonl_path);
    if (!out) {
      std::cerr << "cannot open " << jsonl_path << "\n";
      return 1;
    }
    cluster::write_cluster_jsonl(result, out);
    std::cout << "\ncluster roll-up written to " << jsonl_path << "\n";
  }
  return 0;
}
