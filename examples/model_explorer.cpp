// Model explorer: how good are the offline models where the controller
// actually uses them?
//
// Usage: model_explorer [ls] [load]
//
// Trains the LS models for one service, then sweeps core counts and
// frequencies at the given load, printing predicted QoS feasibility and
// power next to freshly *measured* ground truth -- the picture behind
// paper Fig 5 and the accuracy claims of Figs 6-7.
#include <iostream>

#include "core/features.h"
#include "core/predictor.h"
#include "exp/ground_truth.h"
#include "exp/model_registry.h"
#include "util/table.h"

using namespace sturgeon;

int main(int argc, char** argv) {
  const std::string ls_name = argc > 1 ? argv[1] : "memcached";
  const double load = argc > 2 ? std::stod(argv[2]) : 0.35;
  const auto& ls = find_ls(ls_name);
  const auto& be = find_be("bs");  // any BE works; LS models are solo
  const auto machine = MachineSpec::xeon_e5_2630_v4();

  std::cout << "Training models for " << ls.name << "...\n";
  const auto predictor = exp::predictor_for(ls, be);
  const double qps = load * ls.peak_qps;

  std::cout << "\nQoS feasibility and power at " << 100 * load
            << "% load (" << qps << " QPS), 10 LLC ways:\n\n";
  TablePrinter table({"cores", "freq", "predicted QoS", "measured p95(ms)",
                      "measured QoS", "pred P(W)", "meas P(W)"});
  for (int cores : {2, 4, 6, 8, 12, 16}) {
    for (double ghz : {1.2, 1.7, 2.2}) {
      AppSlice slice{cores, machine.level_for(ghz), 10};
      const bool pred_ok = predictor->ls_qos_ok(qps, slice);
      const double pred_power = predictor->ls_power_w(qps, slice);
      const Partition solo{slice, AppSlice{0, 0, 0}};
      const auto measured = exp::measure_configuration(ls, be, solo, load);
      table.add_row({std::to_string(cores), TablePrinter::fmt(ghz, 1),
                     pred_ok ? "ok" : "VIOLATE",
                     TablePrinter::fmt(measured.p95_ms, 2),
                     measured.qos_met ? "ok" : "VIOLATE",
                     TablePrinter::fmt(pred_power, 1),
                     TablePrinter::fmt(measured.peak_power_w, 1)});
    }
  }
  table.print(std::cout);

  std::cout << "\nMeasured just-enough LS allocation at this load: ";
  const auto min_alloc = exp::measured_min_ls_allocation(ls, load, machine);
  std::cout << min_alloc.cores << " cores @ "
            << machine.freq_at(min_alloc.freq_level) << " GHz, "
            << min_alloc.llc_ways << " ways\n";
  return 0;
}
