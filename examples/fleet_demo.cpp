// Fleet quickstart: the event-driven engine at fleet scale. N nodes on
// phase-offset diurnal load run under one cluster budget with
// quiescence skipping (nodes at a control fixed point sleep until their
// trace moves, a job arrives, or a rebalance changes their cap) and
// workload churn (a seeded arrival process places best-effort jobs
// online, drains them at each node's measured throughput, and migrates
// them off nodes under sustained pressure).
//
// Usage: fleet_demo [nodes=16] [duration_s=120] [fleet_jsonl_path]
// The optional third argument writes the per-node + cluster + fleet
// roll-up that tools/trace_stats.py --fleet validates.
#include <iostream>
#include <string>
#include <vector>

#include "fleet/export.h"
#include "fleet/fleet.h"
#include "util/table.h"

using namespace sturgeon;

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::stoi(argv[1]) : 16;
  const int duration = argc > 2 ? std::stoi(argv[2]) : 120;
  const std::string jsonl_path = argc > 3 ? argv[3] : "";
  if (nodes < 1 || duration < 10) {
    std::cerr << "usage: fleet_demo [nodes>=1] [duration_s>=10] [jsonl]\n";
    return 1;
  }

  LsProfile ls = find_ls("memcached");
  // The demo's story is the engine, not DES fidelity: shrink the
  // per-node arrival scale so a 1k-node fleet runs in seconds.
  ls.name = "memcached-fleet-demo";
  ls.sim_scale = 0.01;
  const auto& bes = be_catalog();

  core::TrainerConfig trainer;
  trainer.ls_samples = 250;
  trainer.ls_boundary_searches = 60;
  trainer.be_samples = 150;

  std::vector<cluster::NodeSpec> specs;
  specs.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    cluster::NodeSpec spec;
    spec.ls = ls;
    spec.be = bes[static_cast<std::size_t>(n) % bes.size()];
    // Same smooth day on every node, each at its own phase: at any
    // epoch most of the fleet sits on a flat (quiescable) stretch.
    spec.trace = LoadTrace::diurnal_phased(
        0.18, 0.55, duration,
        static_cast<double>(n) / static_cast<double>(nodes));
    spec.trainer = trainer;
    specs.push_back(std::move(spec));
  }

  fleet::FleetConfig config;
  config.cluster.seed = 23;
  config.cluster.coordinator = cluster::CoordinatorKind::kSlackHarvest;
  // Let capped nodes settle at a constant throttle level (a sleepable
  // fixed point) instead of oscillating around the cap forever.
  config.cluster.governor.relax_margin = 0.90;
  config.quiescence.enabled = true;
  config.quiescence.load_epsilon = 0.10;
  config.quiescence.max_sleep_epochs = 64;
  config.churn.enabled = true;
  config.churn.arrival_rate_per_epoch = 0.5;
  config.churn.mean_size_norm_s = 20.0;
  config.churn.slots_per_node = 4;
  config.delta.rebalance_period = 32;

  std::cout << "Fleet of " << nodes << " nodes serving " << ls.name
            << "; training models...\n";
  fleet::FleetSim sim(std::move(specs), config);
  std::cout << "cluster power budget: "
            << TablePrinter::fmt(sim.cluster_budget_w(), 1) << " W\n\n";

  const fleet::FleetResult result = sim.run();

  TablePrinter table({"metric", "value"});
  table.add_row({"epochs", std::to_string(result.cluster.epochs)});
  table.add_row({"skipped node-epochs",
                 std::to_string(result.total_skipped_epochs) + " (" +
                     TablePrinter::fmt_pct(result.skipped_fraction, 1) +
                     ")"});
  table.add_row({"wakes", std::to_string(result.total_wakes)});
  table.add_row({"events processed",
                 std::to_string(result.events_processed)});
  table.add_row({"rebalances / delta revisions",
                 std::to_string(result.rebalances) + " / " +
                     std::to_string(result.cap_revisions)});
  table.add_row({"jobs submitted / completed / migrated",
                 std::to_string(result.jobs_submitted) + " / " +
                     std::to_string(result.jobs_completed) + " / " +
                     std::to_string(result.jobs_migrated)});
  table.add_row({"fleet QoS guarantee rate",
                 TablePrinter::fmt_pct(
                     result.cluster.fleet_qos_guarantee_rate, 2)});
  table.add_row({"aggregate BE throughput",
                 TablePrinter::fmt(result.cluster.aggregate_be_throughput,
                                   3)});
  table.print(std::cout);

  if (!jsonl_path.empty()) {
    if (!fleet::write_fleet_jsonl(result, jsonl_path)) {
      std::cerr << "cannot write " << jsonl_path << "\n";
      return 1;
    }
    std::cout << "\nfleet roll-up written to " << jsonl_path << "\n";
  }
  return 0;
}
