// Process-wide cache of trained models, mirroring the paper's deployment
// where "all offline-trained models are stored on the server and the most
// suitable one can be deployed" (Section V-C). LS models are independent
// of the co-runner (and vice versa), so each LS service and BE
// application is profiled once per process and shared by every pair.
#pragma once

#include <memory>

#include "core/predictor.h"
#include "core/trainer.h"

namespace sturgeon::exp {

/// Trained predictor for an (LS service, BE application) pair; profiles
/// and trains the per-service model sets on first use. All calls in one
/// process must use the same TrainerConfig seed (one profiling campaign),
/// enforced with std::logic_error.
std::shared_ptr<const core::Predictor> predictor_for(
    const LsProfile& ls, const BeProfile& be,
    const core::TrainerConfig& config = {});

/// The underlying per-service model sets (with their per-family hold-out
/// scores, the data of Figs 6-7). Same caching discipline as above.
const core::LsModels& ls_models_for(const LsProfile& ls,
                                    const core::TrainerConfig& config = {});
const core::BeModels& be_models_for(const BeProfile& be,
                                    const core::TrainerConfig& config = {});

/// Drop all cached models (tests that need fresh training).
void clear_predictor_cache();

}  // namespace sturgeon::exp
