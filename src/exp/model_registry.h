// Process-wide cache of trained models, mirroring the paper's deployment
// where "all offline-trained models are stored on the server and the most
// suitable one can be deployed" (Section V-C). LS models are independent
// of the co-runner (and vice versa), so each LS service and BE
// application is profiled once per process and shared by every pair.
//
// Sharing contract (the cluster layer leans on this): lookups are
// thread-safe and train-once -- concurrent callers asking for the same
// service block on a per-key latch while exactly one of them trains, so
// N nodes resolving the same predictor never retrain N times (the old
// registry raced: two simultaneous misses both ran the full profiling
// campaign and one result was thrown away). Distinct services still
// train concurrently. The returned Predictor is immutable and safe to
// share across threads/nodes for the registry's lifetime.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/predictor.h"
#include "core/trainer.h"
#include "util/thread_pool.h"

namespace sturgeon::exp {

/// Trained predictor for an (LS service, BE application) pair; profiles
/// and trains the per-service model sets on first use. All calls in one
/// process must use the same TrainerConfig seed (one profiling campaign),
/// enforced with std::logic_error.
std::shared_ptr<const core::Predictor> predictor_for(
    const LsProfile& ls, const BeProfile& be,
    const core::TrainerConfig& config = {});

/// The underlying per-service model sets (with their per-family hold-out
/// scores, the data of Figs 6-7). Same caching discipline as above.
const core::LsModels& ls_models_for(const LsProfile& ls,
                                    const core::TrainerConfig& config = {});
const core::BeModels& be_models_for(const BeProfile& be,
                                    const core::TrainerConfig& config = {});

/// Pre-train every model a set of co-location pairs needs, profiling
/// distinct services concurrently on `pool` (nullptr = sequential).
/// Afterwards predictor_for() for any listed pair is a pure cache hit --
/// the cluster runner warms its fleet's models once here instead of
/// paying a training campaign inside the first epoch of every node.
void warm_models(
    const std::vector<std::pair<const LsProfile*, const BeProfile*>>& pairs,
    ThreadPool* pool = nullptr, const core::TrainerConfig& config = {});

/// Drop all cached models (tests that need fresh training).
void clear_predictor_cache();

}  // namespace sturgeon::exp
