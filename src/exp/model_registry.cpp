#include "exp/model_registry.h"

#include <map>
#include <mutex>
#include <stdexcept>

namespace sturgeon::exp {

namespace {
std::mutex g_mu;
std::map<std::string, core::LsModels> g_ls_models;
std::map<std::string, core::BeModels> g_be_models;
std::map<std::pair<std::string, std::string>,
         std::shared_ptr<const core::Predictor>>
    g_cache;
std::uint64_t g_seed_in_use = 0;
bool g_seed_set = false;

void check_seed_locked(std::uint64_t seed) {
  if (g_seed_set && g_seed_in_use != seed) {
    throw std::logic_error(
        "model registry: one profiling campaign (seed) per process; call "
        "clear_predictor_cache() to retrain with a different seed");
  }
  g_seed_in_use = seed;
  g_seed_set = true;
}
}  // namespace

const core::LsModels& ls_models_for(const LsProfile& ls,
                                    const core::TrainerConfig& config) {
  {
    std::lock_guard<std::mutex> lock(g_mu);
    check_seed_locked(config.seed);
    const auto it = g_ls_models.find(ls.name);
    if (it != g_ls_models.end()) return it->second;
  }
  auto trained =
      core::train_ls_models(core::collect_ls_profiling(ls, config), config);
  std::lock_guard<std::mutex> lock(g_mu);
  return g_ls_models.emplace(ls.name, std::move(trained)).first->second;
}

const core::BeModels& be_models_for(const BeProfile& be,
                                    const core::TrainerConfig& config) {
  {
    std::lock_guard<std::mutex> lock(g_mu);
    check_seed_locked(config.seed);
    const auto it = g_be_models.find(be.name);
    if (it != g_be_models.end()) return it->second;
  }
  auto trained =
      core::train_be_models(core::collect_be_profiling(be, config), config);
  std::lock_guard<std::mutex> lock(g_mu);
  return g_be_models.emplace(be.name, std::move(trained)).first->second;
}

std::shared_ptr<const core::Predictor> predictor_for(
    const LsProfile& ls, const BeProfile& be,
    const core::TrainerConfig& config) {
  const auto key = std::make_pair(ls.name, be.name);
  {
    std::lock_guard<std::mutex> lock(g_mu);
    check_seed_locked(config.seed);
    const auto it = g_cache.find(key);
    if (it != g_cache.end()) return it->second;
  }
  const auto& ls_models = ls_models_for(ls, config);
  const auto& be_models = be_models_for(be, config);
  auto predictor = std::make_shared<const core::Predictor>(
      config.server.machine, core::assemble_models(ls_models, be_models));
  std::lock_guard<std::mutex> lock(g_mu);
  g_cache[key] = predictor;
  return g_cache[key];
}

void clear_predictor_cache() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_cache.clear();
  g_ls_models.clear();
  g_be_models.clear();
  g_seed_set = false;
}

}  // namespace sturgeon::exp
