#include "exp/model_registry.h"

#include <map>
#include <set>
#include <stdexcept>
#include <string>

#include "util/thread_annotations.h"

namespace sturgeon::exp {

namespace {

// Per-key train-once slot. The registry mutex only guards the maps; the
// expensive profiling campaign runs under the slot's own latch, so
// concurrent callers for the SAME service serialize on the slot (one
// trains, the rest wait and reuse) while DIFFERENT services train in
// parallel. Lock order is always latch -> g_mu (slot_for releases g_mu
// before any latch is taken, predictor assembly holds its latch while
// slot_for re-takes g_mu), never the reverse.
template <typename T>
struct Slot {
  Mutex latch;
  bool ready STURGEON_GUARDED_BY(latch) = false;
  T value STURGEON_GUARDED_BY(latch);
};

Mutex g_mu;
std::map<std::string, std::shared_ptr<Slot<core::LsModels>>> g_ls_models
    STURGEON_GUARDED_BY(g_mu);
std::map<std::string, std::shared_ptr<Slot<core::BeModels>>> g_be_models
    STURGEON_GUARDED_BY(g_mu);
std::map<std::pair<std::string, std::string>,
         std::shared_ptr<Slot<std::shared_ptr<const core::Predictor>>>>
    g_predictors STURGEON_GUARDED_BY(g_mu);
std::uint64_t g_seed_in_use STURGEON_GUARDED_BY(g_mu) = 0;
bool g_seed_set STURGEON_GUARDED_BY(g_mu) = false;

void check_seed_locked(std::uint64_t seed) STURGEON_REQUIRES(g_mu) {
  if (g_seed_set && g_seed_in_use != seed) {
    throw std::logic_error(
        "model registry: one profiling campaign (seed) per process; call "
        "clear_predictor_cache() to retrain with a different seed");
  }
  g_seed_in_use = seed;
  g_seed_set = true;
}

template <typename Map, typename Key>
auto slot_for(Map& map, const Key& key, std::uint64_t seed)
    -> typename Map::mapped_type {
  MutexLock lock(g_mu);
  check_seed_locked(seed);
  auto& slot = map[key];
  if (!slot) {
    slot = std::make_shared<typename Map::mapped_type::element_type>();
  }
  return slot;
}

}  // namespace

const core::LsModels& ls_models_for(const LsProfile& ls,
                                    const core::TrainerConfig& config) {
  const auto slot = slot_for(g_ls_models, ls.name, config.seed);
  MutexLock latch(slot->latch);
  if (!slot->ready) {
    slot->value =
        core::train_ls_models(core::collect_ls_profiling(ls, config), config);
    slot->ready = true;
  }
  return slot->value;
}

const core::BeModels& be_models_for(const BeProfile& be,
                                    const core::TrainerConfig& config) {
  const auto slot = slot_for(g_be_models, be.name, config.seed);
  MutexLock latch(slot->latch);
  if (!slot->ready) {
    slot->value =
        core::train_be_models(core::collect_be_profiling(be, config), config);
    slot->ready = true;
  }
  return slot->value;
}

std::shared_ptr<const core::Predictor> predictor_for(
    const LsProfile& ls, const BeProfile& be,
    const core::TrainerConfig& config) {
  const auto slot = slot_for(
      g_predictors, std::make_pair(ls.name, be.name), config.seed);
  MutexLock latch(slot->latch);
  if (!slot->ready) {
    const auto& ls_models = ls_models_for(ls, config);
    const auto& be_models = be_models_for(be, config);
    slot->value = std::make_shared<const core::Predictor>(
        config.server.machine, core::assemble_models(ls_models, be_models));
    slot->ready = true;
  }
  return slot->value;
}

void warm_models(
    const std::vector<std::pair<const LsProfile*, const BeProfile*>>& pairs,
    ThreadPool* pool, const core::TrainerConfig& config) {
  // Profile each *service* once, concurrently where a pool is given; the
  // cheap per-pair predictor assembly then runs sequentially.
  std::vector<const LsProfile*> ls_todo;
  std::vector<const BeProfile*> be_todo;
  std::set<std::string> seen_ls, seen_be;
  for (const auto& [ls, be] : pairs) {
    if (ls == nullptr || be == nullptr) {
      throw std::invalid_argument("warm_models: null profile");
    }
    if (seen_ls.insert(ls->name).second) ls_todo.push_back(ls);
    if (seen_be.insert(be->name).second) be_todo.push_back(be);
  }

  const std::size_t n = ls_todo.size() + be_todo.size();
  const auto train_one = [&](std::size_t i) {
    if (i < ls_todo.size()) {
      ls_models_for(*ls_todo[i], config);
    } else {
      be_models_for(*be_todo[i - ls_todo.size()], config);
    }
  };
  if (pool != nullptr && pool->size() > 1 && n > 1) {
    pool->parallel_for(n, train_one);
  } else {
    for (std::size_t i = 0; i < n; ++i) train_one(i);
  }
  for (const auto& [ls, be] : pairs) predictor_for(*ls, *be, config);
}

void clear_predictor_cache() {
  MutexLock lock(g_mu);
  g_predictors.clear();
  g_ls_models.clear();
  g_be_models.clear();
  g_seed_set = false;
}

}  // namespace sturgeon::exp
