#include "exp/ground_truth.h"

#include <algorithm>
#include <cmath>

namespace sturgeon::exp {

namespace {
sim::ServerConfig quiet_config() {
  sim::ServerConfig cfg;
  cfg.interference.enabled = false;
  return cfg;
}

/// LS-solo feasibility at a load: worst-interval p95 within target.
bool ls_solo_feasible(const LsProfile& ls, const AppSlice& slice, double load,
                      std::uint64_t seed, int intervals = 4) {
  // Any BE profile works for an LS-solo run; take the first.
  sim::SimulatedServer server(ls, be_catalog().front(), seed, quiet_config());
  Partition p;
  p.ls = slice;
  p.be = AppSlice{0, 0, 0};
  server.set_partition(p);
  for (int i = 0; i < intervals; ++i) {
    if (!server.step(load).qos_met()) return false;
  }
  return true;
}
}  // namespace

MeasuredPoint measure_configuration(const LsProfile& ls, const BeProfile& be,
                                    const Partition& partition, double load,
                                    int intervals, std::uint64_t seed) {
  sim::SimulatedServer server(ls, be, seed, quiet_config());
  server.set_partition(partition);
  MeasuredPoint point;
  point.qos_met = true;
  double thr = 0.0;
  for (int i = 0; i < intervals; ++i) {
    const auto t = server.step(load);
    point.p95_ms = std::max(point.p95_ms, t.ls.p95_ms);
    point.peak_power_w = std::max(point.peak_power_w, t.power_w);
    thr += t.be_throughput_norm;
    point.qos_met = point.qos_met && t.qos_met();
  }
  point.be_throughput_norm = thr / intervals;
  return point;
}

AppSlice measured_min_ls_allocation(const LsProfile& ls, double load,
                                    const MachineSpec& machine,
                                    std::uint64_t seed) {
  AppSlice best{machine.num_cores, machine.max_freq_level(),
                machine.llc_ways};
  if (!ls_solo_feasible(ls, best, load, seed)) return best;  // saturated

  // "Enough" in the paper's sense (their measured anchors, e.g. 4 cores
  // @ 1.6 GHz with 6 ways for memcached at 20% load): minimize the core
  // count at the top P-state, add one headroom core, then take the
  // cheapest frequency and the fewest ways that remain feasible under a
  // 15% load bump -- knife-edge minima are not operational allocations.
  const double bumped = std::min(1.0, load * 1.15);
  const auto feasible_robust = [&](const AppSlice& s) {
    return ls_solo_feasible(ls, s, load, seed) &&
           ls_solo_feasible(ls, s, bumped, seed ^ 0x9e9e);
  };
  {
    int lo = 1, hi = machine.num_cores;
    AppSlice probe = best;
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      probe.cores = mid;
      if (feasible_robust(probe)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    best.cores = std::min(machine.num_cores, hi + 1);
  }
  {
    int lo = 0, hi = machine.max_freq_level();
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      AppSlice probe = best;
      probe.freq_level = mid;
      if (feasible_robust(probe)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    // One P-state of headroom, like the spare core above: an allocation
    // pinned at its minimum frequency needs the full LLC to compensate,
    // which is not how operators provision.
    best.freq_level = std::min(machine.max_freq_level(), hi + 1);
  }
  {
    int lo = 1, hi = machine.llc_ways;
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      AppSlice probe = best;
      probe.llc_ways = mid;
      if (feasible_robust(probe)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    best.llc_ways = hi;
  }
  return best;
}

}  // namespace sturgeon::exp
