// Co-location experiment runner: drives a policy against the simulated
// server through the isolation layer, exactly as the runtime daemon would
// run on a real node -- policy decisions flow through the ResourceEnforcer
// and the Table III tool interfaces, never directly into the simulator.
#pragma once

#include <cstdint>
#include <memory>

#include "core/policy.h"
#include "telemetry/monitor.h"
#include "telemetry/recorder.h"
#include "workloads/load_trace.h"

namespace sturgeon::exp {

struct RunConfig {
  std::uint64_t seed = 1;
  sim::ServerConfig server;
  bool record_trace = false;
};

struct RunResult {
  // Fig 9 / Fig 10 metrics.
  double qos_guarantee_rate = 0.0;
  double mean_be_throughput_norm = 0.0;
  double interval_qos_rate = 0.0;
  // Power behaviour.
  double power_budget_w = 0.0;
  double power_overshoot_fraction = 0.0;
  double max_power_ratio = 0.0;
  // Optional per-second trace (Fig 11).
  std::shared_ptr<telemetry::TraceRecorder> trace;
};

/// Run `policy` over `trace` for one LS/BE pair. The policy is reset()
/// before the run. Deterministic for a given (seed, trace, policy).
RunResult run_colocation(const LsProfile& ls, const BeProfile& be,
                         core::Policy& policy, const LoadTrace& trace,
                         const RunConfig& config = {});

}  // namespace sturgeon::exp
