// Co-location experiment runner: drives a policy against the simulated
// server through the isolation layer, exactly as the runtime daemon would
// run on a real node -- policy decisions flow through the ResourceEnforcer
// and the Table III tool interfaces, never directly into the simulator.
//
// Observability: the runner wires ONE TelemetryContext through the whole
// experiment. Each interval is an "epoch" root span with observe/decide/
// enforce child spans (the policy opens its own children under decide);
// per-interval p95/power/slack feed registry histograms; run-level
// metrics publish as "run.*" gauges. The context is flushed on EVERY
// exit path -- an aborted or throwing run still produces valid CSV and
// JSONL output.
#pragma once

#include <cstdint>
#include <memory>

#include "core/policy.h"
#include "telemetry/context.h"
#include "telemetry/monitor.h"
#include "telemetry/recorder.h"
#include "workloads/load_trace.h"

namespace sturgeon::exp {

struct RunConfig {
  std::uint64_t seed = 1;
  sim::ServerConfig server;
  bool record_trace = false;
  /// Telemetry sink for the run. Null = a fresh private context (metrics
  /// always on; per-interval CSV rows follow record_trace). The runner
  /// attaches it to the policy before reset().
  std::shared_ptr<telemetry::TelemetryContext> telemetry;
  /// Abort the run after this many *consecutive* QoS-violating intervals
  /// (0 = never). Partial results and telemetry are still flushed.
  int abort_after_violation_s = 0;
  /// Power cap handed to the policy before the run (0 = leave the policy's
  /// construction-time budget alone). When the policy reports
  /// !supports_power_cap() the cap is NOT silently dropped: the run's
  /// "policy.cap.unsupported" counter records it.
  double power_cap_w = 0.0;
  /// Route decisions and enforcement through the K-way Allocation API
  /// (Policy::decide(Allocation) + ResourceEnforcer::apply(Allocation))
  /// instead of the pair entry points. Same-seed results are bit-identical
  /// either way at K = 2 -- the twin test in tests/kway pins this.
  bool route_via_allocation = false;
};

struct RunResult {
  // Fig 9 / Fig 10 metrics.
  double qos_guarantee_rate = 0.0;
  double mean_be_throughput_norm = 0.0;
  double interval_qos_rate = 0.0;
  // Power behaviour.
  double power_budget_w = 0.0;
  double power_overshoot_fraction = 0.0;
  double max_power_ratio = 0.0;
  // Early-exit bookkeeping.
  bool aborted = false;      ///< true when the violation guard tripped
  int intervals_run = 0;     ///< intervals actually executed
  /// The run's telemetry context (metrics/trace/recorder), always set.
  std::shared_ptr<telemetry::TelemetryContext> telemetry;
  /// Per-second trace rows when record_trace (or the context's CSV flag)
  /// was on; aliases `telemetry`'s recorder.
  std::shared_ptr<telemetry::TraceRecorder> trace;
};

/// Run `policy` over `trace` for one LS/BE pair. The policy is reset()
/// before the run. Deterministic for a given (seed, trace, policy).
RunResult run_colocation(const LsProfile& ls, const BeProfile& be,
                         core::Policy& policy, const LoadTrace& trace,
                         const RunConfig& config = {});

}  // namespace sturgeon::exp
