#include "exp/runner.h"

#include <utility>

#include "isolation/enforcer.h"
#include "isolation/sim_backend.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace sturgeon::exp {

RunResult run_colocation(const LsProfile& ls, const BeProfile& be,
                         core::Policy& policy, const LoadTrace& trace,
                         const RunConfig& config) {
  sim::SimulatedServer server(ls, be, config.seed, config.server);
  isolation::SimBackend backend(server);
  isolation::ResourceEnforcer enforcer(server.machine(), backend.cpuset(),
                                       backend.cat(), backend.freq());

  std::shared_ptr<telemetry::TelemetryContext> ctx = config.telemetry;
  if (!ctx) {
    telemetry::TelemetryConfig tc;
    tc.csv = config.record_trace;
    ctx = telemetry::TelemetryContext::make(server.machine(), tc);
  }
  const bool record_rows = config.record_trace || ctx->csv_enabled();

  policy.attach_telemetry(ctx);
  policy.reset();

  RunResult result;
  result.power_budget_w = server.power_budget_w();
  result.telemetry = ctx;
  if (record_rows) {
    // Aliasing handle: the recorder lives inside (and dies with) ctx.
    result.trace =
        std::shared_ptr<telemetry::TraceRecorder>(ctx, &ctx->recorder());
  }

  telemetry::RunMetrics metrics(result.power_budget_w);
  auto& registry = ctx->metrics();
  auto& tracer = ctx->tracer();
  telemetry::Histogram& p95_hist = registry.histogram(
      "epoch.p95_ms",
      telemetry::Histogram::exponential_bounds(0.125, 2.0, 16));
  telemetry::Histogram& power_hist = registry.histogram(
      "epoch.power_w", telemetry::Histogram::linear_bounds(0.0, 10.0, 40));
  telemetry::Histogram& slack_hist = registry.histogram(
      "epoch.slack", telemetry::Histogram::linear_bounds(-1.0, 0.1, 21));
  telemetry::Counter& epochs_counter = registry.counter("run.epochs");
  telemetry::Counter& violations_counter =
      registry.counter("run.qos_violation_intervals");
  telemetry::Counter& changes_counter =
      registry.counter("run.partition_changes");

  if (config.power_cap_w > 0.0) {
    if (policy.supports_power_cap()) {
      policy.set_power_cap(config.power_cap_w);
    } else {
      // Cap dropped on the floor by a power-oblivious policy: make the
      // loss observable instead of silent.
      registry.counter("policy.cap.unsupported").inc();
    }
  }

  // Everything the run learned must survive every exit path: normal end,
  // violation abort, and exceptions out of the policy or the simulator.
  const auto finalize = [&]() {
    result.qos_guarantee_rate = metrics.qos_guarantee_rate();
    result.mean_be_throughput_norm = metrics.mean_be_throughput_norm();
    result.interval_qos_rate = metrics.interval_qos_rate();
    result.power_overshoot_fraction = metrics.power_overshoot_fraction();
    result.max_power_ratio = metrics.max_power_ratio();
    metrics.publish(registry);
    ctx->flush();
  };

  int consecutive_violations = 0;
  try {
    for (int t = 0; t < trace.duration_s(); ++t) {
      telemetry::Span epoch = tracer.start_span("epoch");
      epoch.attr("t_s", t);
      epochs_counter.inc();

      sim::ServerTelemetry sample;
      {
        telemetry::Span span = tracer.start_span("observe");
        sample = server.step(trace.at(t));
        backend.observe(sample);
        metrics.observe(sample);
        if (record_rows) {
          ctx->recorder().record(t, sample, enforcer.current());
        }
        span.attr("qps", sample.qps_real)
            .attr("p95_ms", sample.ls.p95_ms)
            .attr("power_w", sample.power_w);
      }
      const double slack = telemetry::latency_slack(sample.ls.p95_ms,
                                                    sample.qos_target_ms);
      p95_hist.observe(sample.ls.p95_ms);
      power_hist.observe(sample.power_w);
      slack_hist.observe(slack);

      Partition next;
      {
        telemetry::Span span = tracer.start_span("decide");
        if (config.route_via_allocation) {
          next = policy.decide(sample, enforcer.current_allocation())
                     .to_partition();
        } else {
          next = policy.decide(sample, enforcer.current());
        }
        span.attr("action", policy.last_decision().action_string());
      }

      const bool changed = !(next == enforcer.current());
      if (changed) {
        telemetry::Span span = tracer.start_span("enforce");
        if (config.route_via_allocation) {
          enforcer.apply(Allocation::of(next));
        } else {
          enforcer.apply(next);
        }
        changes_counter.inc();
        span.attr("partition", next.to_string(server.machine()));
      }
      epoch.attr("qps", sample.qps_real)
          .attr("p95_ms", sample.ls.p95_ms)
          .attr("power_w", sample.power_w)
          .attr("slack", slack)
          .attr("action", policy.last_decision().action_string())
          .attr("changed", changed);
      result.intervals_run = t + 1;

      if (!sample.qos_met()) {
        violations_counter.inc();
        ++consecutive_violations;
        if (config.abort_after_violation_s > 0 &&
            consecutive_violations >= config.abort_after_violation_s) {
          result.aborted = true;
          epoch.attr("aborted", true);
          break;
        }
      } else {
        consecutive_violations = 0;
      }
    }
  } catch (...) {
    finalize();
    throw;
  }

  finalize();
  return result;
}

}  // namespace sturgeon::exp
