#include "exp/runner.h"

#include "isolation/enforcer.h"
#include "isolation/sim_backend.h"

namespace sturgeon::exp {

RunResult run_colocation(const LsProfile& ls, const BeProfile& be,
                         core::Policy& policy, const LoadTrace& trace,
                         const RunConfig& config) {
  sim::SimulatedServer server(ls, be, config.seed, config.server);
  isolation::SimBackend backend(server);
  isolation::ResourceEnforcer enforcer(server.machine(), backend.cpuset(),
                                       backend.cat(), backend.freq());
  policy.reset();

  RunResult result;
  result.power_budget_w = server.power_budget_w();
  telemetry::RunMetrics metrics(result.power_budget_w);
  auto recorder =
      std::make_shared<telemetry::TraceRecorder>(server.machine());

  for (int t = 0; t < trace.duration_s(); ++t) {
    const auto sample = server.step(trace.at(t));
    backend.observe(sample);
    metrics.observe(sample);
    if (config.record_trace) {
      recorder->record(t, sample, enforcer.current());
    }
    const Partition next = policy.decide(sample, enforcer.current());
    if (!(next == enforcer.current())) {
      enforcer.apply(next);
    }
  }

  result.qos_guarantee_rate = metrics.qos_guarantee_rate();
  result.mean_be_throughput_norm = metrics.mean_be_throughput_norm();
  result.interval_qos_rate = metrics.interval_qos_rate();
  result.power_overshoot_fraction = metrics.power_overshoot_fraction();
  result.max_power_ratio = metrics.max_power_ratio();
  if (config.record_trace) result.trace = recorder;
  return result;
}

}  // namespace sturgeon::exp
