// Measured (simulator-ground-truth) characterizations used by the
// motivation experiments. Fig 2 and Fig 3 of the paper report *measured*
// behaviour of fixed configurations -- no models involved -- so these
// helpers evaluate configurations by actually running quiet profiling
// intervals, the way the authors measured their testbed.
#pragma once

#include <cstdint>

#include "sim/server.h"
#include "workloads/app_profile.h"

namespace sturgeon::exp {

struct MeasuredPoint {
  double p95_ms = 0.0;        ///< worst interval p95
  double peak_power_w = 0.0;  ///< interval-peak package power
  double be_throughput_norm = 0.0;
  bool qos_met = false;
};

/// Measure a fixed partition at a fixed load over `intervals` quiet
/// seconds (interference disabled, fresh server seeded by `seed`).
MeasuredPoint measure_configuration(const LsProfile& ls, const BeProfile& be,
                                    const Partition& partition, double load,
                                    int intervals = 4,
                                    std::uint64_t seed = 99);

/// Measured just-enough LS allocation at `load`: minimize cores (at max
/// frequency and full LLC), then ways, then frequency, with feasibility
/// decided by measured p95 <= target on LS-solo runs. This reproduces the
/// paper's Section III-B measurement ("4 cores at 1.6 GHz and 6 LLC ways
/// are enough for memcached at 20% load").
AppSlice measured_min_ls_allocation(const LsProfile& ls, double load,
                                    const MachineSpec& machine,
                                    std::uint64_t seed = 99);

}  // namespace sturgeon::exp
