// Clang Thread Safety Analysis for Sturgeon's lock-bearing subsystems.
//
// Every mutex-protected invariant in the codebase (thread-pool queue,
// metrics registry maps, tracer span stack, prediction-cache shards,
// model-registry latches) is stated *in the type system* with the macros
// below and checked at compile time by clang's -Wthread-safety analysis:
// a field marked STURGEON_GUARDED_BY(mu) cannot be read or written
// without mu held, a method marked STURGEON_REQUIRES(mu) cannot be
// called without it, and the STURGEON_ANALYZE build (CMake preset
// `analyze`, the 4th CI leg) turns any violation into a build error.
// TSan still runs as the dynamic complement — it catches what the
// annotations cannot express, the annotations catch interleavings the
// test suite never schedules.
//
// Under compilers without the analysis (gcc) every macro expands to
// nothing and the wrapper types below degrade to plain std::mutex /
// std::shared_mutex behavior, so annotated code builds identically
// everywhere. New code must use these wrappers instead of raw std
// mutexes: lint rule SL009 (tools/lint.py) rejects raw std::mutex /
// std::shared_mutex members in src/ and requires every wrapper member to
// guard at least one STURGEON_GUARDED_BY field or carry an explicit
// `// lint: unguarded(<reason>)` waiver. See DESIGN.md section 10.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define STURGEON_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef STURGEON_THREAD_ANNOTATION
#define STURGEON_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Type declares a capability (a lock, in practice).
#define STURGEON_CAPABILITY(x) STURGEON_THREAD_ANNOTATION(capability(x))
/// RAII type that acquires in its constructor, releases in its destructor.
#define STURGEON_SCOPED_CAPABILITY STURGEON_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be touched with the named capability held.
#define STURGEON_GUARDED_BY(x) STURGEON_THREAD_ANNOTATION(guarded_by(x))
/// Pointee (not the pointer) is protected by the named capability.
#define STURGEON_PT_GUARDED_BY(x) STURGEON_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function acquires the capability (exclusive / shared).
#define STURGEON_ACQUIRE(...) \
  STURGEON_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define STURGEON_ACQUIRE_SHARED(...) \
  STURGEON_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability.
#define STURGEON_RELEASE(...) \
  STURGEON_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define STURGEON_RELEASE_SHARED(...) \
  STURGEON_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define STURGEON_TRY_ACQUIRE(...) \
  STURGEON_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define STURGEON_TRY_ACQUIRE_SHARED(...) \
  STURGEON_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
/// Caller must already hold the capability (exclusive / shared).
#define STURGEON_REQUIRES(...) \
  STURGEON_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define STURGEON_REQUIRES_SHARED(...) \
  STURGEON_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (deadlock prevention: the
/// function acquires it itself).
#define STURGEON_EXCLUDES(...) \
  STURGEON_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define STURGEON_RETURN_CAPABILITY(x) \
  STURGEON_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: function is exempt from analysis. Every use must carry
/// a comment explaining why the contract is not expressible.
#define STURGEON_NO_THREAD_SAFETY_ANALYSIS \
  STURGEON_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace sturgeon {

/// std::mutex with the capability attribute so the analysis can track
/// it. Same semantics and cost; lock()/unlock() forward directly.
class STURGEON_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() STURGEON_ACQUIRE() { mu_.lock(); }
  void unlock() STURGEON_RELEASE() { mu_.unlock(); }
  bool try_lock() STURGEON_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// std::shared_mutex with the capability attribute (exclusive writer,
/// shared readers).
class STURGEON_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() STURGEON_ACQUIRE() { mu_.lock(); }
  void unlock() STURGEON_RELEASE() { mu_.unlock(); }
  bool try_lock() STURGEON_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock_shared() STURGEON_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() STURGEON_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() STURGEON_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// std::lock_guard analogue over Mutex, visible to the analysis.
class STURGEON_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) STURGEON_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~MutexLock() STURGEON_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Exclusive (writer) scope over a SharedMutex.
class STURGEON_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) STURGEON_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() STURGEON_RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Shared (reader) scope over a SharedMutex.
class STURGEON_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) STURGEON_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() STURGEON_RELEASE() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable usable with the annotated Mutex. wait() declares
/// STURGEON_REQUIRES(mu): callers hold mu (typically via MutexLock) and
/// re-check their predicate in a loop, so guarded-field accesses in the
/// predicate stay inside the analyzed locked scope:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.wait(mu_);
///
/// The transient unlock/relock inside std::condition_variable_any::wait
/// happens in the standard library, outside the analysis.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) STURGEON_REQUIRES(mu) { cv_.wait(mu); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace sturgeon
