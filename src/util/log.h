// Leveled logging for the runtime daemon. Defaults to WARN so benchmark
// output stays clean; experiments flip to INFO/DEBUG for traceability.
#pragma once

#include <sstream>
#include <string>

namespace sturgeon {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a message at `level` (thread-safe, single write to stderr).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, ss_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};
}  // namespace detail

#define STURGEON_LOG(level)                                    \
  if (static_cast<int>(level) < static_cast<int>(::sturgeon::log_level())) { \
  } else                                                       \
    ::sturgeon::detail::LogLine(level)

#define LOG_DEBUG STURGEON_LOG(::sturgeon::LogLevel::kDebug)
#define LOG_INFO STURGEON_LOG(::sturgeon::LogLevel::kInfo)
#define LOG_WARN STURGEON_LOG(::sturgeon::LogLevel::kWarn)
#define LOG_ERROR STURGEON_LOG(::sturgeon::LogLevel::kError)

}  // namespace sturgeon
