#include "util/types.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sturgeon {

MachineSpec MachineSpec::xeon_e5_2630_v4() {
  MachineSpec m;
  m.num_cores = 20;
  m.freq_ghz.clear();
  for (int i = 0; i <= 10; ++i) {
    m.freq_ghz.push_back(1.2 + 0.1 * i);  // 1.2 .. 2.2 GHz
  }
  m.llc_ways = 20;
  m.llc_mb = 25.0;
  m.mem_bw_gbps = 24.0;
  return m;
}

double MachineSpec::freq_at(int level) const {
  if (level < 0 || level >= num_freq_levels()) {
    throw std::out_of_range("MachineSpec::freq_at: level " +
                            std::to_string(level) + " outside P-state table");
  }
  return freq_ghz[static_cast<std::size_t>(level)];
}

int MachineSpec::level_for(double ghz) const {
  if (freq_ghz.empty()) throw std::out_of_range("empty P-state table");
  int best = 0;
  double best_err = std::abs(freq_ghz[0] - ghz);
  for (int i = 1; i < num_freq_levels(); ++i) {
    const double err = std::abs(freq_ghz[static_cast<std::size_t>(i)] - ghz);
    if (err < best_err) {
      best_err = err;
      best = i;
    }
  }
  return best;
}

std::uint64_t MachineSpec::config_space_size() const {
  return static_cast<std::uint64_t>(num_cores) *
         static_cast<std::uint64_t>(num_freq_levels()) *
         static_cast<std::uint64_t>(llc_ways) *
         static_cast<std::uint64_t>(num_freq_levels());
}

const char* to_string(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kLatencySensitive: return "ls";
    case WorkloadKind::kBestEffort: return "be";
  }
  return "unknown";
}

Workload Workload::latency_sensitive(std::string name, double qos_target_ms) {
  Workload w;
  w.kind = WorkloadKind::kLatencySensitive;
  w.name = std::move(name);
  w.qos_target_ms = qos_target_ms;
  return w;
}

Workload Workload::best_effort(std::string name, int priority) {
  Workload w;
  w.kind = WorkloadKind::kBestEffort;
  w.name = std::move(name);
  w.priority = priority;
  return w;
}

std::vector<int> WorkloadSet::ls_indices() const {
  std::vector<int> out;
  for (int i = 0; i < size(); ++i) {
    if ((*this)[i].is_ls()) out.push_back(i);
  }
  return out;
}

std::vector<int> WorkloadSet::be_indices() const {
  std::vector<int> out;
  for (int i = 0; i < size(); ++i) {
    if ((*this)[i].is_be()) out.push_back(i);
  }
  return out;
}

bool WorkloadSet::is_pair() const {
  return size() == 2 && (*this)[0].is_ls() && (*this)[1].is_be();
}

void WorkloadSet::validate() const {
  if (items.empty()) {
    throw std::invalid_argument("WorkloadSet: empty workload set");
  }
  for (int i = 0; i < size(); ++i) {
    const Workload& w = (*this)[i];
    if (w.is_ls() &&
        !(std::isfinite(w.qos_target_ms) && w.qos_target_ms > 0.0)) {
      throw std::invalid_argument(
          "WorkloadSet: LS workload '" + w.name + "' (index " +
          std::to_string(i) + ") needs a positive QoS target");
    }
    if (w.is_be() && w.priority < 0) {
      throw std::invalid_argument(
          "WorkloadSet: BE workload '" + w.name + "' (index " +
          std::to_string(i) + ") has negative priority");
    }
  }
}

WorkloadSet WorkloadSet::pair(double qos_target_ms) {
  WorkloadSet set;
  set.items.push_back(Workload::latency_sensitive("ls", qos_target_ms));
  set.items.push_back(Workload::best_effort("be", 0));
  return set;
}

int Allocation::total_cores() const {
  int total = 0;
  for (const AppSlice& s : slices) total += s.cores;
  return total;
}

int Allocation::total_ways() const {
  int total = 0;
  for (const AppSlice& s : slices) total += s.llc_ways;
  return total;
}

bool Allocation::valid_for(const MachineSpec& m) const {
  return valid_for(m, /*allow_empty=*/false);
}

bool Allocation::valid_for(const MachineSpec& m, bool allow_empty) const {
  if (slices.empty()) return false;
  if (slices.front().empty()) return false;
  for (const AppSlice& s : slices) {
    if (allow_empty && s.empty()) {
      // An unscheduled slice must be wholly empty, not a partial grant.
      if (s.llc_ways != 0 || s.freq_level != 0) return false;
      continue;
    }
    if (s.cores < 1 || s.llc_ways < 1) return false;
    if (s.freq_level < 0 || s.freq_level >= m.num_freq_levels()) return false;
  }
  return total_cores() <= m.num_cores && total_ways() <= m.llc_ways;
}

std::string Allocation::to_string(const MachineSpec& m) const {
  std::string out = "<";
  char buf[48];
  for (int i = 0; i < size(); ++i) {
    const AppSlice& s = (*this)[i];
    std::snprintf(buf, sizeof(buf), "%s%dC, %.1fF, %dL", i > 0 ? "; " : "",
                  s.cores, m.freq_at(s.freq_level), s.llc_ways);
    out += buf;
  }
  out += ">";
  return out;
}

AppSlice Allocation::remainder(const MachineSpec& m, int freq_level) const {
  AppSlice rest;
  rest.cores = std::max(0, m.num_cores - total_cores());
  rest.llc_ways = std::max(0, m.llc_ways - total_ways());
  rest.freq_level = std::clamp(freq_level, 0, m.max_freq_level());
  return rest;
}

AppSlice Allocation::complement(const MachineSpec& m, const AppSlice& held,
                                int freq_level) {
  AppSlice rest;
  rest.cores = std::max(0, m.num_cores - held.cores);
  rest.llc_ways = std::max(0, m.llc_ways - held.llc_ways);
  rest.freq_level = std::clamp(freq_level, 0, m.max_freq_level());
  return rest;
}

Allocation Allocation::all_to_first(const MachineSpec& m, int k) {
  if (k < 1) throw std::invalid_argument("Allocation::all_to_first: k < 1");
  Allocation a;
  a.slices.assign(static_cast<std::size_t>(k), AppSlice{0, 0, 0});
  a.slices.front() = AppSlice{m.num_cores, m.max_freq_level(), m.llc_ways};
  return a;
}

Allocation Allocation::of(const Partition& p) {
  Allocation a;
  a.slices = {p.ls, p.be};
  return a;
}

Partition Allocation::to_partition() const {
  if (size() != 2) {
    throw std::invalid_argument(
        "Allocation::to_partition: K = " + std::to_string(size()) +
        " is not pair-shaped");
  }
  return Partition{(*this)[0], (*this)[1]};
}

bool Partition::valid_for(const MachineSpec& m) const {
  const auto slice_ok = [&m](const AppSlice& s) {
    return s.cores >= 1 && s.llc_ways >= 1 && s.freq_level >= 0 &&
           s.freq_level < m.num_freq_levels();
  };
  return slice_ok(ls) && slice_ok(be) && ls.cores + be.cores <= m.num_cores &&
         ls.llc_ways + be.llc_ways <= m.llc_ways;
}

std::string Partition::to_string(const MachineSpec& m) const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "<%dC, %.1fF, %dL; %dC, %.1fF, %dL>",
                ls.cores, m.freq_at(ls.freq_level), ls.llc_ways, be.cores,
                m.freq_at(be.freq_level), be.llc_ways);
  return buf;
}

Partition Partition::all_to_ls(const MachineSpec& m) {
  Partition p;
  p.ls = AppSlice{m.num_cores, m.max_freq_level(), m.llc_ways};
  p.be = AppSlice{0, 0, 0};
  return p;
}

}  // namespace sturgeon
