#include "util/types.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sturgeon {

MachineSpec MachineSpec::xeon_e5_2630_v4() {
  MachineSpec m;
  m.num_cores = 20;
  m.freq_ghz.clear();
  for (int i = 0; i <= 10; ++i) {
    m.freq_ghz.push_back(1.2 + 0.1 * i);  // 1.2 .. 2.2 GHz
  }
  m.llc_ways = 20;
  m.llc_mb = 25.0;
  m.mem_bw_gbps = 24.0;
  return m;
}

double MachineSpec::freq_at(int level) const {
  if (level < 0 || level >= num_freq_levels()) {
    throw std::out_of_range("MachineSpec::freq_at: level " +
                            std::to_string(level) + " outside P-state table");
  }
  return freq_ghz[static_cast<std::size_t>(level)];
}

int MachineSpec::level_for(double ghz) const {
  if (freq_ghz.empty()) throw std::out_of_range("empty P-state table");
  int best = 0;
  double best_err = std::abs(freq_ghz[0] - ghz);
  for (int i = 1; i < num_freq_levels(); ++i) {
    const double err = std::abs(freq_ghz[static_cast<std::size_t>(i)] - ghz);
    if (err < best_err) {
      best_err = err;
      best = i;
    }
  }
  return best;
}

std::uint64_t MachineSpec::config_space_size() const {
  return static_cast<std::uint64_t>(num_cores) *
         static_cast<std::uint64_t>(num_freq_levels()) *
         static_cast<std::uint64_t>(llc_ways) *
         static_cast<std::uint64_t>(num_freq_levels());
}

bool Partition::valid_for(const MachineSpec& m) const {
  const auto slice_ok = [&m](const AppSlice& s) {
    return s.cores >= 1 && s.llc_ways >= 1 && s.freq_level >= 0 &&
           s.freq_level < m.num_freq_levels();
  };
  return slice_ok(ls) && slice_ok(be) && ls.cores + be.cores <= m.num_cores &&
         ls.llc_ways + be.llc_ways <= m.llc_ways;
}

std::string Partition::to_string(const MachineSpec& m) const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "<%dC, %.1fF, %dL; %dC, %.1fF, %dL>",
                ls.cores, m.freq_at(ls.freq_level), ls.llc_ways, be.cores,
                m.freq_at(be.freq_level), be.llc_ways);
  return buf;
}

Partition Partition::all_to_ls(const MachineSpec& m) {
  Partition p;
  p.ls = AppSlice{m.num_cores, m.max_freq_level(), m.llc_ways};
  p.be = AppSlice{0, 0, 0};
  return p;
}

AppSlice complement_slice(const MachineSpec& m, const AppSlice& ls,
                          int be_freq_level) {
  AppSlice be;
  be.cores = std::max(0, m.num_cores - ls.cores);
  be.llc_ways = std::max(0, m.llc_ways - ls.llc_ways);
  be.freq_level = std::clamp(be_freq_level, 0, m.max_freq_level());
  return be;
}

}  // namespace sturgeon
