// Domain invariant helpers built on the STURGEON_CHECK contract macros.
//
// Three value classes cross nearly every layer boundary in the runtime:
// resource configurations <C1,F1,L1;C2,F2,L2>, power budgets, and model
// outputs. Each helper CHECK-fails with full context when the value is
// malformed, so a bad handoff aborts at the boundary that produced it
// rather than being silently "enforced" downstream.
#pragma once

#include "util/types.h"

namespace sturgeon {

/// CHECK that `p` is expressible on `m`: per-slice bounds hold and core /
/// way totals fit the machine. With `allow_empty_be` (the default) a BE
/// slice with zero cores is accepted -- it models the controller's initial
/// all-to-LS allocation -- but the LS slice must always be well-formed.
/// `where` names the calling boundary in the failure message.
void ValidateConfig(const MachineSpec& m, const Partition& p,
                    const char* where, bool allow_empty_be = true);

/// K-way analogue: CHECK that `a` is expressible on `m`. With
/// `allow_empty` (the default) fully-empty slices are accepted -- they
/// model workloads that are currently unscheduled (the all-to-first
/// fallback) -- but slice 0 must always be well-formed.
void ValidateConfig(const MachineSpec& m, const Allocation& a,
                    const char* where, bool allow_empty = true);

/// CHECK that a power budget is finite and strictly positive.
void ValidatePowerBudget(double budget_w, const char* where);

/// CHECK that a model prediction is finite (and, unless `allow_negative`,
/// non-negative: power and throughput predictions must never be < 0).
/// Returns `value` so call sites can validate inline:
///   return ValidateModelOutput(model->predict(row), "ls_power");
double ValidateModelOutput(double value, const char* what,
                           bool allow_negative = false);

}  // namespace sturgeon
