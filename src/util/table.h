// Console table and CSV emitters for the benchmark harness. Every
// figure/table bench prints an aligned text table (the "paper row" view)
// and can optionally mirror it to CSV for plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace sturgeon {

/// Fixed-schema text table with right-aligned numeric formatting.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append one row; cells are stringified with `fmt_double` for doubles.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with the given precision.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_pct(double fraction, int precision = 2);

  /// Render with column alignment and a header rule.
  void print(std::ostream& os) const;

  /// Render as CSV (no alignment padding).
  void print_csv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Minimal CSV writer for experiment traces.
class CsvWriter {
 public:
  CsvWriter(std::ostream& os, std::vector<std::string> headers);

  void write_row(const std::vector<std::string>& cells);
  void write_row(const std::vector<double>& cells);

 private:
  std::ostream& os_;
  std::size_t num_cols_;
};

}  // namespace sturgeon
