// Deterministic, fast pseudo-random number generation.
//
// Every stochastic component in the simulator and the experiment harness
// takes an explicit seed so runs are reproducible bit-for-bit. We use
// xoshiro256++ (Blackman & Vigna) seeded through SplitMix64, which is the
// recommended seeding procedure and avoids correlated low-entropy seeds.
#pragma once

#include <cmath>
#include <cstdint>

namespace sturgeon {

/// SplitMix64 step; used for seeding and as a cheap hash.
std::uint64_t splitmix64(std::uint64_t& state);

/// Derive a statistically independent child seed from a root seed and a
/// stream label (node index, component id, ...). Two chained SplitMix64
/// steps decorrelate even adjacent (root, stream) pairs, unlike the
/// ad-hoc XOR-with-constant derivations this replaces. The same
/// (root, stream) always yields the same child seed, which is what makes
/// cluster runs bit-reproducible across thread counts: every node's
/// generator depends only on the cluster seed and its own index.
std::uint64_t derive_seed(std::uint64_t root, std::uint64_t stream);

/// Convenience for a second derivation level, e.g.
/// derive_seed(root, node, component).
std::uint64_t derive_seed(std::uint64_t root, std::uint64_t stream,
                          std::uint64_t substream);

/// xoshiro256++ generator with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5357524745ULL);

  /// Raw 64 uniform bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  bool bernoulli(double p);

  /// Exponential with the given rate (1/mean); rate must be > 0.
  double exponential(double rate);

  /// Standard normal via Box-Muller (cached spare value).
  double normal();
  double normal(double mean, double stddev);

  /// Lognormal such that the *mean* of the distribution is `mean` and the
  /// coefficient of variation is `cv`. Useful for service-time draws where
  /// we reason in terms of mean demand.
  double lognormal_mean_cv(double mean, double cv);

  /// Poisson-distributed count (Knuth for small means, normal approx for
  /// large means).
  std::uint64_t poisson(double mean);

  /// Derive an independent child generator (stable given the label).
  Rng fork(std::uint64_t label) const;

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace sturgeon
