// Streaming and batch statistics used by the telemetry layer and the
// experiment harness: Welford online moments, exact batch percentiles,
// the P² online quantile estimator, and simple regression metrics.
#pragma once

#include <cstddef>
#include <vector>

namespace sturgeon {

/// Numerically stable online mean/variance (Welford).
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double sample_variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile of a batch, p in [0,100], by linear interpolation
/// between closest ranks. Copies and sorts; use for offline analysis.
double percentile(std::vector<double> values, double p);

/// Percentile over an already-sorted ascending range (no copy).
double percentile_sorted(const std::vector<double>& sorted, double p);

/// P² (Jain & Chlamtac) single-quantile online estimator: O(1) memory,
/// no sample storage. Used by the 1 s telemetry sampler for p95/p99.
class P2Quantile {
 public:
  explicit P2Quantile(double quantile);

  void add(double x);
  /// Current estimate; exact while fewer than 5 samples.
  double value() const;
  std::size_t count() const { return count_; }

 private:
  double q_[5];       // marker heights
  double n_[5];       // marker positions
  double np_[5];      // desired positions
  double dn_[5];      // position increments
  double quantile_;
  std::size_t count_ = 0;
};

/// Coefficient of determination R^2 of predictions vs. ground truth.
/// Returns 1 for a perfect fit; can be negative for a fit worse than the
/// mean predictor. Requires equal non-zero sizes.
double r_squared(const std::vector<double>& truth,
                 const std::vector<double>& pred);

/// Mean squared / mean absolute error.
double mse(const std::vector<double>& truth, const std::vector<double>& pred);
double mae(const std::vector<double>& truth, const std::vector<double>& pred);

/// Classification accuracy on +-1 or arbitrary integer-coded labels.
double accuracy(const std::vector<int>& truth, const std::vector<int>& pred);

/// Precision / recall / F1 for binary labels (positive class = 1).
/// Degenerate cases (no predicted / no actual positives) score 0.
double precision(const std::vector<int>& truth, const std::vector<int>& pred);
double recall(const std::vector<int>& truth, const std::vector<int>& pred);
double f1_score(const std::vector<int>& truth, const std::vector<int>& pred);

}  // namespace sturgeon
