#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace sturgeon::check_internal {

void check_fail(const char* file, int line, const char* cond,
                const std::string& message) {
  if (message.empty()) {
    std::fprintf(stderr, "%s:%d: STURGEON_CHECK failed: %s\n", file, line,
                 cond);
  } else {
    std::fprintf(stderr, "%s:%d: STURGEON_CHECK failed: %s (%s)\n", file,
                 line, cond, message.c_str());
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace sturgeon::check_internal
