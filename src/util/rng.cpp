#include "util/rng.h"

#include <stdexcept>

namespace sturgeon {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t stream) {
  // Feed the stream label through one SplitMix64 step, mix the root in,
  // and take a second step: a low-entropy (root, stream) pair (e.g.
  // root=1, stream=0..63) still lands on well-separated states.
  std::uint64_t state = stream;
  state = splitmix64(state) ^ root;
  return splitmix64(state);
}

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t stream,
                          std::uint64_t substream) {
  return derive_seed(derive_seed(root, stream), substream);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::next_below(0)");
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

int Rng::uniform_int(int lo, int hi) {
  if (hi < lo) throw std::invalid_argument("Rng::uniform_int: hi < lo");
  return lo + static_cast<int>(next_below(
                  static_cast<std::uint64_t>(hi - lo) + 1));
}

bool Rng::bernoulli(double p) { return next_double() < p; }

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate <= 0");
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return -std::log(u) / rate;
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal_mean_cv(double mean, double cv) {
  if (mean <= 0.0) throw std::invalid_argument("lognormal_mean_cv: mean <= 0");
  if (cv <= 0.0) return mean;
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(mu + std::sqrt(sigma2) * normal());
}

std::uint64_t Rng::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("Rng::poisson: mean < 0");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= next_double();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the
  // arrival-count use case (mean is in the hundreds/thousands).
  const double x = normal(mean, std::sqrt(mean));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

Rng Rng::fork(std::uint64_t label) const {
  std::uint64_t mix = s_[0] ^ rotl(s_[2], 29) ^ (label * 0x9e3779b97f4a7c15ULL);
  return Rng(splitmix64(mix));
}

}  // namespace sturgeon
