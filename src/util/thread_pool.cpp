#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <stdexcept>

#include "util/check.h"

namespace sturgeon {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  // Claim the worker threads under the lock so concurrent shutdown()
  // calls (or shutdown racing the destructor) cannot join a thread twice;
  // join outside the lock so draining workers can still pop tasks.
  std::vector<std::thread> claimed;
  {
    MutexLock lock(mu_);
    stopping_ = true;
    claimed.swap(workers_);
  }
  cv_.notify_all();
  for (auto& w : claimed) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.wait(mu_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  STURGEON_CHECK(fn != nullptr, "parallel_for: null body");
  if (n == 0) return;
  const std::size_t nworkers = size();
  if (nworkers == 0) {
    throw std::runtime_error("ThreadPool::parallel_for after shutdown");
  }
  const std::size_t blocks = std::min(n, nworkers);
  const std::size_t chunk = (n + blocks - 1) / blocks;
  std::vector<std::future<void>> futs;
  futs.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    if (lo >= hi) break;
    futs.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  // Every block must finish before we rethrow: blocks borrow `fn` (and
  // whatever its captures reference), so returning early would let still-
  // running blocks touch dead stack frames. Futures are visited in block
  // order, so the lowest-indexed failing block wins deterministically.
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sturgeon
