// Invariant-contract macros used across the Sturgeon codebase.
//
// The runtime's promise is a *guarantee* -- QoS met and power under budget
// every control interval -- so a wrong-but-plausible value crossing a layer
// boundary is the failure mode to engineer against. These macros make every
// cross-layer handoff assert its preconditions and abort with context the
// moment an invariant is broken, instead of letting a silently invalid
// <C1,F1,L1;C2,F2,L2> configuration reach the enforcer.
//
//   STURGEON_CHECK(cond)                always on; aborts with file:line and
//                                       the condition text on failure
//   STURGEON_CHECK(cond, "v = " << v)   optional streamed message; it must
//                                       start with a string literal and is
//                                       only evaluated on the failure path
//   STURGEON_DCHECK(cond, ...)          debug/sanitizer builds only;
//                                       compiles to nothing otherwise
//   STURGEON_CHECK_RANGE(v, lo, hi)     inclusive-range check reporting the
//                                       offending value and both bounds
//   STURGEON_DCHECK_RANGE(v, lo, hi)    ditto, debug/sanitizer builds only
//
// Dchecks are enabled when NDEBUG is unset or when the build defines
// STURGEON_ENABLE_DCHECKS=1 (the STURGEON_SANITIZE builds do; see the
// top-level CMakeLists). Release builds pay one well-predicted branch per
// CHECK and nothing at all per DCHECK.
#pragma once

#include <sstream>
#include <string>

namespace sturgeon::check_internal {

/// Prints "file:line: CHECK failed: cond (message)" to stderr and aborts.
[[noreturn]] void check_fail(const char* file, int line, const char* cond,
                             const std::string& message);

/// Accumulates the optional failure message from streamed operands; only
/// instantiated on the failure path, so the happy path never touches
/// iostreams.
class MessageBuilder {
 public:
  template <typename T>
  MessageBuilder& operator<<(const T& v) {
    out_ << v;
    return *this;
  }
  std::string str() const { return out_.str(); }

 private:
  std::ostringstream out_;
};

}  // namespace sturgeon::check_internal

// The leading "" lets the message be omitted entirely and concatenates with
// the message's leading string literal when present; the operands are never
// evaluated while the condition holds.
#define STURGEON_CHECK(cond, ...)                                \
  do {                                                           \
    if (!(cond)) [[unlikely]] {                                  \
      ::sturgeon::check_internal::MessageBuilder sturgeon_mb_;   \
      sturgeon_mb_ << "" __VA_ARGS__;                            \
      ::sturgeon::check_internal::check_fail(__FILE__, __LINE__, \
                                             #cond, sturgeon_mb_.str()); \
    }                                                            \
  } while (false)

#define STURGEON_CHECK_RANGE(val, lo, hi)                                \
  do {                                                                   \
    const auto& sturgeon_v_ = (val);                                     \
    const auto& sturgeon_lo_ = (lo);                                     \
    const auto& sturgeon_hi_ = (hi);                                     \
    if (!(sturgeon_lo_ <= sturgeon_v_ && sturgeon_v_ <= sturgeon_hi_))   \
        [[unlikely]] {                                                   \
      ::sturgeon::check_internal::MessageBuilder sturgeon_mb_;           \
      sturgeon_mb_ << #val " = " << sturgeon_v_ << " outside ["          \
                   << sturgeon_lo_ << ", " << sturgeon_hi_ << "]";       \
      ::sturgeon::check_internal::check_fail(                            \
          __FILE__, __LINE__, #val " in [" #lo ", " #hi "]",             \
          sturgeon_mb_.str());                                           \
    }                                                                    \
  } while (false)

#if !defined(STURGEON_ENABLE_DCHECKS)
#if defined(NDEBUG)
#define STURGEON_ENABLE_DCHECKS 0
#else
#define STURGEON_ENABLE_DCHECKS 1
#endif
#endif

#if STURGEON_ENABLE_DCHECKS
#define STURGEON_DCHECK(cond, ...) \
  STURGEON_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#define STURGEON_DCHECK_RANGE(val, lo, hi) STURGEON_CHECK_RANGE(val, lo, hi)
#else
// Swallow the arguments without evaluating them; the sizeof keeps the
// condition syntactically checked so it cannot rot in release builds.
#define STURGEON_DCHECK(cond, ...) \
  static_cast<void>(sizeof(static_cast<bool>(cond)))
#define STURGEON_DCHECK_RANGE(val, lo, hi) \
  static_cast<void>(sizeof(static_cast<bool>((lo) <= (val) && (val) <= (hi))))
#endif
