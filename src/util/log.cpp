#include "util/log.h"

#include <atomic>
#include <cstdio>

#include "util/thread_annotations.h"

namespace sturgeon {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
// Serializes whole lines onto stderr; the capability protects the stream
// itself, not any field. lint: unguarded(guards the stderr stream, no fields)
Mutex g_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load()) return;
  MutexLock lock(g_mu);
  std::fprintf(stderr, "[sturgeon %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace sturgeon
