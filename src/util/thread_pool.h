// Small fixed-size thread pool with a parallel_for helper.
//
// Section VII-E of the paper notes the configuration search "can also be
// further accelerated using multithreading"; the predictor's candidate
// evaluation and the offline model trainer use this pool. The pool is
// intentionally simple: a single mutex-protected deque is more than
// adequate for the coarse-grained tasks we submit (whole candidate
// evaluations, whole model fits).
//
// Lock discipline (compile-time checked, see util/thread_annotations.h):
// mu_ guards the queue, the stop flag and the worker vector; public
// entry points declare STURGEON_EXCLUDES(mu_) so a task running on the
// pool that re-enters submit()/shutdown() while somehow holding mu_ is a
// build error under the analyze leg, not a deadlock in production.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace sturgeon {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ThreadPool(ThreadPool&&) = delete;
  ThreadPool& operator=(ThreadPool&&) = delete;

  /// Worker count; 0 once shutdown() has claimed the workers. Takes the
  /// lock: shutdown() swaps the worker vector under mu_, so an unlocked
  /// size() would race it (found by the thread-safety annotation pass).
  std::size_t size() const STURGEON_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return workers_.size();
  }

  /// Drain queued tasks and join the workers. Idempotent; the destructor
  /// calls it. After shutdown, submit() and parallel_for() throw.
  void shutdown() STURGEON_EXCLUDES(mu_);

  /// Enqueue a task; the returned future rethrows task exceptions.
  template <typename F>
  auto submit(F&& fn)
      -> std::future<std::invoke_result_t<F>> STURGEON_EXCLUDES(mu_) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mu_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit after shutdown");
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n), blocking until all complete. Work is
  /// block-partitioned; if blocks throw, the exception from the
  /// lowest-indexed failing block is rethrown after every block has
  /// finished (so no block can outlive `fn` or its captures).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn)
      STURGEON_EXCLUDES(mu_);

 private:
  void worker_loop() STURGEON_EXCLUDES(mu_);

  mutable Mutex mu_;
  std::vector<std::thread> workers_ STURGEON_GUARDED_BY(mu_);
  std::deque<std::function<void()>> queue_ STURGEON_GUARDED_BY(mu_);
  CondVar cv_;
  bool stopping_ STURGEON_GUARDED_BY(mu_) = false;
};

}  // namespace sturgeon
