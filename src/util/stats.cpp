#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sturgeon {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void OnlineStats::reset() { *this = OnlineStats{}; }

double OnlineStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::sample_variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) throw std::invalid_argument("percentile of empty set");
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  return percentile_sorted(values, p);
}

P2Quantile::P2Quantile(double quantile) : quantile_(quantile) {
  if (quantile <= 0.0 || quantile >= 1.0) {
    throw std::invalid_argument("P2Quantile: quantile must be in (0,1)");
  }
  dn_[0] = 0.0;
  dn_[1] = quantile_ / 2.0;
  dn_[2] = quantile_;
  dn_[3] = (1.0 + quantile_) / 2.0;
  dn_[4] = 1.0;
  for (int i = 0; i < 5; ++i) {
    q_[i] = 0.0;
    n_[i] = static_cast<double>(i + 1);
    np_[i] = 1.0 + 4.0 * dn_[i];
  }
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    q_[count_++] = x;
    if (count_ == 5) std::sort(q_, q_ + 5);
    return;
  }
  ++count_;

  int k = 0;
  if (x < q_[0]) {
    q_[0] = x;
  } else if (x >= q_[4]) {
    q_[4] = x;
    k = 3;
  } else {
    while (k < 3 && x >= q_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) n_[i] += 1.0;
  for (int i = 0; i < 5; ++i) np_[i] += dn_[i];

  for (int i = 1; i <= 3; ++i) {
    const double d = np_[i] - n_[i];
    if ((d >= 1.0 && n_[i + 1] - n_[i] > 1.0) ||
        (d <= -1.0 && n_[i - 1] - n_[i] < -1.0)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction.
      const double qp =
          q_[i] + sign / (n_[i + 1] - n_[i - 1]) *
                      ((n_[i] - n_[i - 1] + sign) * (q_[i + 1] - q_[i]) /
                           (n_[i + 1] - n_[i]) +
                       (n_[i + 1] - n_[i] - sign) * (q_[i] - q_[i - 1]) /
                           (n_[i] - n_[i - 1]));
      if (q_[i - 1] < qp && qp < q_[i + 1]) {
        q_[i] = qp;
      } else {  // fall back to linear prediction
        const int j = i + static_cast<int>(sign);
        q_[i] += sign * (q_[j] - q_[i]) / (n_[j] - n_[i]);
      }
      n_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    std::vector<double> v(q_, q_ + count_);
    std::sort(v.begin(), v.end());
    return percentile_sorted(v, quantile_ * 100.0);
  }
  return q_[2];
}

namespace {
void check_sizes(std::size_t a, std::size_t b, const char* what) {
  if (a != b || a == 0) {
    throw std::invalid_argument(std::string(what) +
                                ": size mismatch or empty input");
  }
}
}  // namespace

double r_squared(const std::vector<double>& truth,
                 const std::vector<double>& pred) {
  check_sizes(truth.size(), pred.size(), "r_squared");
  double mean = 0.0;
  for (double t : truth) mean += t;
  mean /= static_cast<double>(truth.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double mse(const std::vector<double>& truth, const std::vector<double>& pred) {
  check_sizes(truth.size(), pred.size(), "mse");
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    s += (truth[i] - pred[i]) * (truth[i] - pred[i]);
  }
  return s / static_cast<double>(truth.size());
}

double mae(const std::vector<double>& truth, const std::vector<double>& pred) {
  check_sizes(truth.size(), pred.size(), "mae");
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    s += std::abs(truth[i] - pred[i]);
  }
  return s / static_cast<double>(truth.size());
}

double accuracy(const std::vector<int>& truth, const std::vector<int>& pred) {
  check_sizes(truth.size(), pred.size(), "accuracy");
  std::size_t hit = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == pred[i]) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

namespace {
struct BinaryCounts {
  std::size_t tp = 0, fp = 0, fn = 0;
};
BinaryCounts binary_counts(const std::vector<int>& truth,
                           const std::vector<int>& pred, const char* what) {
  check_sizes(truth.size(), pred.size(), what);
  BinaryCounts c;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (pred[i] == 1 && truth[i] == 1) ++c.tp;
    if (pred[i] == 1 && truth[i] != 1) ++c.fp;
    if (pred[i] != 1 && truth[i] == 1) ++c.fn;
  }
  return c;
}
}  // namespace

double precision(const std::vector<int>& truth, const std::vector<int>& pred) {
  const auto c = binary_counts(truth, pred, "precision");
  return c.tp + c.fp == 0
             ? 0.0
             : static_cast<double>(c.tp) / static_cast<double>(c.tp + c.fp);
}

double recall(const std::vector<int>& truth, const std::vector<int>& pred) {
  const auto c = binary_counts(truth, pred, "recall");
  return c.tp + c.fn == 0
             ? 0.0
             : static_cast<double>(c.tp) / static_cast<double>(c.tp + c.fn);
}

double f1_score(const std::vector<int>& truth, const std::vector<int>& pred) {
  const double p = precision(truth, pred);
  const double r = recall(truth, pred);
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

}  // namespace sturgeon
