#include "util/invariants.h"

#include <cmath>
#include <string>

#include "util/check.h"

namespace sturgeon {

namespace {

void validate_slice(const MachineSpec& m, const AppSlice& s, const char* where,
                    const char* side) {
  STURGEON_CHECK(s.cores >= 1 && s.cores <= m.num_cores,
                 "" << where << ": " << side << " cores = " << s.cores
                    << " outside [1, " << m.num_cores << "]");
  STURGEON_CHECK(s.llc_ways >= 1 && s.llc_ways <= m.llc_ways,
                 "" << where << ": " << side << " ways = " << s.llc_ways
                    << " outside [1, " << m.llc_ways << "]");
  STURGEON_CHECK(s.freq_level >= 0 && s.freq_level < m.num_freq_levels(),
                 "" << where << ": " << side << " P-state = " << s.freq_level
                    << " outside [0, " << m.max_freq_level() << "]");
}

}  // namespace

void ValidateConfig(const MachineSpec& m, const Partition& p,
                    const char* where, bool allow_empty_be) {
  validate_slice(m, p.ls, where, "LS");
  if (p.be.cores == 0) {
    STURGEON_CHECK(allow_empty_be,
                   "" << where << ": empty BE slice not allowed here");
    return;
  }
  validate_slice(m, p.be, where, "BE");
  STURGEON_CHECK(p.ls.cores + p.be.cores <= m.num_cores,
                 "" << where << ": core total " << p.ls.cores + p.be.cores
                    << " exceeds " << m.num_cores);
  STURGEON_CHECK(p.ls.llc_ways + p.be.llc_ways <= m.llc_ways,
                 "" << where << ": way total " << p.ls.llc_ways + p.be.llc_ways
                    << " exceeds " << m.llc_ways);
}

void ValidateConfig(const MachineSpec& m, const Allocation& a,
                    const char* where, bool allow_empty) {
  STURGEON_CHECK(a.size() >= 1, "" << where << ": empty allocation");
  for (int i = 0; i < a.size(); ++i) {
    const AppSlice& s = a[i];
    if (s.empty() && i > 0) {
      STURGEON_CHECK(allow_empty,
                     "" << where << ": empty slice " << i
                        << " not allowed here");
      STURGEON_CHECK(s.llc_ways == 0 && s.freq_level == 0,
                     "" << where << ": slice " << i
                        << " has no cores but holds ways or a P-state");
      continue;
    }
    const std::string side = "slice " + std::to_string(i);
    validate_slice(m, s, where, side.c_str());
  }
  STURGEON_CHECK(a.total_cores() <= m.num_cores,
                 "" << where << ": core total " << a.total_cores()
                    << " exceeds " << m.num_cores);
  STURGEON_CHECK(a.total_ways() <= m.llc_ways,
                 "" << where << ": way total " << a.total_ways()
                    << " exceeds " << m.llc_ways);
}

void ValidatePowerBudget(double budget_w, const char* where) {
  STURGEON_CHECK(std::isfinite(budget_w) && budget_w > 0.0,
                 "" << where << ": power budget " << budget_w
                    << " W must be finite and > 0");
}

double ValidateModelOutput(double value, const char* what,
                           bool allow_negative) {
  STURGEON_CHECK(std::isfinite(value),
                 "" << what << ": model prediction is not finite");
  if (!allow_negative) {
    STURGEON_CHECK(value >= 0.0,
                   "" << what << ": model prediction " << value << " < 0");
  }
  return value;
}

}  // namespace sturgeon
