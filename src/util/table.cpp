#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace sturgeon {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TablePrinter: no columns");
  }
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TablePrinter: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      // Left-align the first column (labels), right-align the rest.
      if (c == 0) {
        os << row[c] << std::string(width[c] - row[c].size(), ' ');
      } else {
        os << std::string(width[c] - row[c].size(), ' ') << row[c];
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void TablePrinter::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> headers)
    : os_(os), num_cols_(headers.size()) {
  if (num_cols_ == 0) throw std::invalid_argument("CsvWriter: no columns");
  for (std::size_t c = 0; c < headers.size(); ++c) {
    if (c) os_ << ',';
    os_ << headers[c];
  }
  os_ << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  if (cells.size() != num_cols_) {
    throw std::invalid_argument("CsvWriter: row arity mismatch");
  }
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c) os_ << ',';
    os_ << cells[c];
  }
  os_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& cells) {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (double v : cells) s.push_back(TablePrinter::fmt(v, 6));
  write_row(s);
}

}  // namespace sturgeon
