// Shared resource-allocation types used across the Sturgeon codebase.
//
// The paper co-locates exactly one latency-sensitive (LS) service with one
// best-effort (BE) application; a configuration <C1,F1,L1; C2,F2,L2>
// assigns C1 cores at frequency F1 and L1 LLC ways to the LS service, and
// C2/F2/L2 to the BE application. The generalized model managed here is
// K-way: a WorkloadSet describes an ordered list of co-scheduled
// workloads (each LS-with-QoS-target or BE-with-priority) and an
// Allocation assigns one AppSlice per workload. Partition remains the
// K = 2 view of that model -- every pair-era API keeps working, and
// Allocation::of / Allocation::to_partition bridge the two exactly.
// Frequencies are carried as indices into the machine's P-state table so
// that controllers can do integer binary search over them.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace sturgeon {

/// Static description of the managed server.
///
/// Mirrors Table II of the paper (Xeon E5-2630 v4): 20 logical cores,
/// DVFS range 1.2-2.2 GHz, 20-way 25 MB LLC. All Sturgeon components are
/// parameterized on this spec; nothing hard-codes the paper platform.
struct MachineSpec {
  int num_cores = 20;              ///< schedulable logical cores
  std::vector<double> freq_ghz;    ///< available P-states, ascending
  int llc_ways = 20;               ///< allocatable LLC ways (CAT granularity)
  double llc_mb = 25.0;            ///< total LLC capacity
  double mem_bw_gbps = 24.0;       ///< usable memory bandwidth (unmanaged)

  /// The paper's evaluation platform.
  static MachineSpec xeon_e5_2630_v4();

  int num_freq_levels() const { return static_cast<int>(freq_ghz.size()); }
  int max_freq_level() const { return num_freq_levels() - 1; }
  double min_freq_ghz() const { return freq_ghz.front(); }
  double max_freq_ghz() const { return freq_ghz.back(); }

  /// Frequency in GHz for a P-state index; throws std::out_of_range.
  double freq_at(int level) const;

  /// Closest P-state index for a GHz value (clamped to the table).
  int level_for(double ghz) const;

  /// Total size of the <C1,F1,L1;C2,F2,L2> search space, as counted in
  /// Section V-B of the paper (cores x freq x ways x freq).
  std::uint64_t config_space_size() const;
};

/// Resources assigned to one co-located application.
struct AppSlice {
  int cores = 0;
  int freq_level = 0;  ///< index into MachineSpec::freq_ghz
  int llc_ways = 0;

  bool operator==(const AppSlice&) const = default;

  /// True for the "not scheduled" slice (no cores pinned). An empty
  /// slice is what the initial all-to-LS allocation hands the BE side.
  bool empty() const { return cores == 0; }
};

/// What kind of co-scheduled workload a slice serves.
enum class WorkloadKind {
  kLatencySensitive,  ///< has a tail-latency QoS target
  kBestEffort,        ///< throughput-oriented, priority-ranked
};

const char* to_string(WorkloadKind kind);

/// One co-scheduled workload: an LS service with a QoS target, or a BE
/// application with a scheduling priority (higher = weightier in the
/// search objective and last to be harvested by the arbiter).
struct Workload {
  WorkloadKind kind = WorkloadKind::kBestEffort;
  std::string name;
  double qos_target_ms = 0.0;  ///< LS only; must be > 0
  int priority = 0;            ///< BE only; >= 0, higher = more important

  static Workload latency_sensitive(std::string name, double qos_target_ms);
  static Workload best_effort(std::string name, int priority = 0);

  bool is_ls() const { return kind == WorkloadKind::kLatencySensitive; }
  bool is_be() const { return kind == WorkloadKind::kBestEffort; }
  /// Objective weight of a BE workload (1 + priority); 0 for LS.
  double weight() const { return is_be() ? 1.0 + priority : 0.0; }
};

/// Ordered list of co-scheduled workloads on one node. The order is the
/// slice order of every Allocation decided for this set.
struct WorkloadSet {
  std::vector<Workload> items;

  int size() const { return static_cast<int>(items.size()); }
  const Workload& operator[](int i) const {
    return items[static_cast<std::size_t>(i)];
  }

  std::vector<int> ls_indices() const;
  std::vector<int> be_indices() const;

  /// True iff this is the paper's shape: exactly {one LS, one BE}, in
  /// that order -- the shape Partition expresses.
  bool is_pair() const;

  /// Throws std::invalid_argument when malformed: empty set, an LS
  /// workload without a positive QoS target, or a BE with priority < 0.
  void validate() const;

  /// The canonical paper pair: one LS service at `qos_target_ms`, one
  /// priority-0 BE application.
  static WorkloadSet pair(double qos_target_ms);
};

/// A full K-way co-location configuration: one AppSlice per workload of
/// the owning WorkloadSet, in the same order. The generalization of
/// Partition; Allocation::of / to_partition convert exactly at K = 2.
struct Allocation {
  std::vector<AppSlice> slices;

  Allocation() = default;
  explicit Allocation(std::vector<AppSlice> s) : slices(std::move(s)) {}

  int size() const { return static_cast<int>(slices.size()); }
  AppSlice& operator[](int i) { return slices[static_cast<std::size_t>(i)]; }
  const AppSlice& operator[](int i) const {
    return slices[static_cast<std::size_t>(i)];
  }

  bool operator==(const Allocation&) const = default;

  int total_cores() const;
  int total_ways() const;

  /// True iff the allocation is expressible on `m`: at least one slice,
  /// every slice holds >= 1 core and >= 1 way at a legal P-state, and
  /// the core / way totals fit the machine (no oversubscription).
  /// Mirrors Partition::valid_for generalized to K slices; like the pair
  /// version, an all-empty tail is NOT tolerated here -- use
  /// valid_for(m, /*allow_empty=*/true) for controller-initial shapes.
  bool valid_for(const MachineSpec& m) const;

  /// As above, but slices with zero cores are skipped (the K-way
  /// analogue of the pair rule that an empty BE slice is allowed); the
  /// first slice must still be non-empty.
  bool valid_for(const MachineSpec& m, bool allow_empty) const;

  /// Paper-style rendering generalized to K slices, e.g.
  /// "<8C, 1.2F, 7L; 6C, 2.2F, 9L; 6C, 1.8F, 4L>".
  std::string to_string(const MachineSpec& m) const;

  /// Remainder helper (generalizes the pair-era free complement_slice):
  /// the slice holding every core and way no existing slice holds, at
  /// `freq_level` clamped to the P-state table.
  AppSlice remainder(const MachineSpec& m, int freq_level) const;

  /// Pair-shaped complement: every core/way `held` does not hold, at
  /// `freq_level` clamped to the table. Equivalent to
  /// Allocation{{held}}.remainder(m, freq_level).
  static AppSlice complement(const MachineSpec& m, const AppSlice& held,
                             int freq_level);

  /// K-slice analogue of Partition::all_to_ls: slice 0 owns the whole
  /// machine at max frequency, every other slice is empty. The
  /// conservative fallback when no feasible K-way split exists.
  static Allocation all_to_first(const MachineSpec& m, int k);

  /// Exact K=2 bridges to the pair world.
  static Allocation of(const struct Partition& p);
  struct Partition to_partition() const;  ///< throws unless size() == 2
};

/// A full pair co-location configuration <C1,F1,L1; C2,F2,L2> -- the
/// K = 2 view of an Allocation, kept as the working currency of the
/// pair-era controllers and the isolation backend.
struct Partition {
  AppSlice ls;  ///< latency-sensitive service share
  AppSlice be;  ///< best-effort application share

  bool operator==(const Partition&) const = default;

  /// True iff the partition is expressible on `m`: per-slice bounds hold,
  /// core and way totals fit, and both slices are non-empty.
  bool valid_for(const MachineSpec& m) const;

  /// Paper-style rendering, e.g. "<8C, 1.2F, 7L; 12C, 2.2F, 13L>".
  std::string to_string(const MachineSpec& m) const;

  /// Partition giving every core and way to the LS service at the top
  /// P-state; the BE slice is empty (cores = ways = 0 at P-state 0).
  /// This is the controller's initial allocation (Algorithm 1, line 1)
  /// and doubles as the watchdog's known-safe fallback partition.
  static Partition all_to_ls(const MachineSpec& m);
};

}  // namespace sturgeon
