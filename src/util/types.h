// Shared resource-partition types used across the Sturgeon codebase.
//
// A co-location partitions the server between one latency-sensitive (LS)
// service and one best-effort (BE) application. Following the paper's
// notation, a configuration <C1,F1,L1; C2,F2,L2> assigns C1 cores at
// frequency F1 and L1 LLC ways to the LS service, and C2/F2/L2 to the BE
// application. Frequencies are carried as indices into the machine's
// P-state table so that controllers can do integer binary search over them.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace sturgeon {

/// Static description of the managed server.
///
/// Mirrors Table II of the paper (Xeon E5-2630 v4): 20 logical cores,
/// DVFS range 1.2-2.2 GHz, 20-way 25 MB LLC. All Sturgeon components are
/// parameterized on this spec; nothing hard-codes the paper platform.
struct MachineSpec {
  int num_cores = 20;              ///< schedulable logical cores
  std::vector<double> freq_ghz;    ///< available P-states, ascending
  int llc_ways = 20;               ///< allocatable LLC ways (CAT granularity)
  double llc_mb = 25.0;            ///< total LLC capacity
  double mem_bw_gbps = 24.0;       ///< usable memory bandwidth (unmanaged)

  /// The paper's evaluation platform.
  static MachineSpec xeon_e5_2630_v4();

  int num_freq_levels() const { return static_cast<int>(freq_ghz.size()); }
  int max_freq_level() const { return num_freq_levels() - 1; }
  double min_freq_ghz() const { return freq_ghz.front(); }
  double max_freq_ghz() const { return freq_ghz.back(); }

  /// Frequency in GHz for a P-state index; throws std::out_of_range.
  double freq_at(int level) const;

  /// Closest P-state index for a GHz value (clamped to the table).
  int level_for(double ghz) const;

  /// Total size of the <C1,F1,L1;C2,F2,L2> search space, as counted in
  /// Section V-B of the paper (cores x freq x ways x freq).
  std::uint64_t config_space_size() const;
};

/// Resources assigned to one co-located application.
struct AppSlice {
  int cores = 0;
  int freq_level = 0;  ///< index into MachineSpec::freq_ghz
  int llc_ways = 0;

  bool operator==(const AppSlice&) const = default;
};

/// A full co-location configuration <C1,F1,L1; C2,F2,L2>.
struct Partition {
  AppSlice ls;  ///< latency-sensitive service share
  AppSlice be;  ///< best-effort application share

  bool operator==(const Partition&) const = default;

  /// True iff the partition is expressible on `m`: per-slice bounds hold,
  /// core and way totals fit, and both slices are non-empty.
  bool valid_for(const MachineSpec& m) const;

  /// Paper-style rendering, e.g. "<8C, 1.2F, 7L; 12C, 2.2F, 13L>".
  std::string to_string(const MachineSpec& m) const;

  /// Partition giving everything to the LS service at max frequency --
  /// the controller's initial allocation (Algorithm 1, line 1). The BE
  /// slice is left empty.
  static Partition all_to_ls(const MachineSpec& m);
};

/// Remainder helper: BE gets every core/way the LS slice does not hold.
AppSlice complement_slice(const MachineSpec& m, const AppSlice& ls,
                          int be_freq_level);

}  // namespace sturgeon
