// Fault-injecting decorators over the Table III actuator interfaces.
//
// Each decorator forwards to a real controller but consults the node's
// FaultInjector before every *write*: a scheduled failure throws
// isolation::ActuatorError before the inner tool is touched. Reads are
// always reliable (state queries come from the kernel's own books, not
// the flaky driver path), which is exactly what makes
// ResourceEnforcer::verify/resync able to recover.
//
// Because the enforcer issues up to six tool calls per apply() in a
// fixed sequence, a mid-sequence failure yields a genuine *partial*
// apply -- cpusets moved, way masks not -- the hardest case for the
// retry path. A null injector makes every decorator a transparent
// pass-through, so the same wiring serves fault-free runs.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/injector.h"
#include "isolation/controllers.h"

namespace sturgeon::fault {

class FaultyCpuset final : public isolation::CpusetController {
 public:
  FaultyCpuset(isolation::CpusetController& inner, FaultInjector* injector)
      : inner_(inner), injector_(injector) {}

  void set_cpuset(isolation::AppId app,
                  const std::vector<int>& cores) override;
  std::vector<int> cpuset(isolation::AppId app) const override {
    return inner_.cpuset(app);
  }

 private:
  isolation::CpusetController& inner_;
  FaultInjector* injector_;
};

class FaultyCat final : public isolation::CatController {
 public:
  FaultyCat(isolation::CatController& inner, FaultInjector* injector)
      : inner_(inner), injector_(injector) {}

  void set_way_mask(isolation::AppId app, std::uint32_t mask) override;
  std::uint32_t way_mask(isolation::AppId app) const override {
    return inner_.way_mask(app);
  }

 private:
  isolation::CatController& inner_;
  FaultInjector* injector_;
};

class FaultyFreq final : public isolation::FreqDriver {
 public:
  FaultyFreq(isolation::FreqDriver& inner, FaultInjector* injector)
      : inner_(inner), injector_(injector) {}

  void set_frequency_level(const std::vector<int>& cores, int level) override;
  int frequency_level(int core) const override {
    return inner_.frequency_level(core);
  }

 private:
  isolation::FreqDriver& inner_;
  FaultInjector* injector_;
};

}  // namespace sturgeon::fault
