// Sensor sanitization: the defensive layer between raw power/latency
// readings and every consumer that reacts to them (the node governor,
// the balancer's observed sample, the coordinator's NodeReport).
//
// Pipeline per reading, in order:
//
//   1. reject non-finite values (NaN/inf dropouts) and substitute the
//      last good value decayed toward the running mean of accepted
//      readings -- a held sensor drifts back to "typical" instead of
//      freezing at a possibly-extreme last sample;
//   2. clamp finite values into the configured physical bounds (a
//      package cannot draw negative watts or more than its max power);
//   3. median-of-3 over the last three accepted readings, which deletes
//      single-epoch outlier spikes at the cost of one epoch of lag.
//
// Every intervention is counted (fault.sensor.* when bound), so a chaos
// run can assert the sanitizer actually absorbed the injected faults
// and a production run can alarm on rejection rates.
#pragma once

#include <cstdint>
#include <string>

namespace sturgeon::telemetry {
class MetricsRegistry;
class Counter;
}  // namespace sturgeon::telemetry

namespace sturgeon::fault {

struct SanitizerConfig {
  double lo = 0.0;    ///< physical lower bound (inclusive)
  double hi = 1e12;   ///< physical upper bound (inclusive)
  /// Per-epoch decay of a substituted hold value toward the running
  /// mean of accepted readings (1.0 = hold forever, 0 = jump to mean).
  double decay = 0.85;
  /// Count a median-of-3 override as a suppressed spike only when the
  /// raw reading deviates from the filtered one by more than this
  /// relative amount (the filter itself always applies; the threshold
  /// only keeps ordinary noise out of the fault.sensor.* counters).
  double spike_rel_threshold = 0.5;
};

struct SanitizerCounters {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_nonfinite = 0;  ///< NaN/inf replaced by hold value
  std::uint64_t clamped = 0;             ///< finite but outside [lo, hi]
  std::uint64_t spike_suppressed = 0;    ///< median-of-3 overrode the raw
  std::uint64_t total_interventions() const {
    return rejected_nonfinite + clamped + spike_suppressed;
  }
};

class SignalSanitizer {
 public:
  explicit SignalSanitizer(SanitizerConfig config = {});

  /// Sanitize one reading; always returns a finite value in [lo, hi].
  double sanitize(double raw);

  const SanitizerCounters& counters() const { return counters_; }
  const SanitizerConfig& config() const { return config_; }

  /// Mirror interventions into `<prefix>.{rejected,clamped,suppressed}`
  /// counters of `registry` (live, per event).
  void bind(telemetry::MetricsRegistry& registry, const std::string& prefix);

  void reset();

 private:
  SanitizerConfig config_;
  double window_[3] = {0.0, 0.0, 0.0};  ///< last accepted readings (ring)
  int window_size_ = 0;
  int window_next_ = 0;
  double mean_ = 0.0;  ///< running mean of accepted readings
  double held_ = 0.0;  ///< substitute for rejected readings
  SanitizerCounters counters_;
  telemetry::Counter* rejected_counter_ = nullptr;
  telemetry::Counter* clamped_counter_ = nullptr;
  telemetry::Counter* suppressed_counter_ = nullptr;
};

}  // namespace sturgeon::fault
