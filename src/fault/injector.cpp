#include "fault/injector.h"

#include <limits>
#include <stdexcept>
#include <string>

#include "telemetry/metrics.h"
#include "util/check.h"

namespace sturgeon::fault {

namespace {

bool in_window(int t, int start, int len) {
  return start >= 0 && t >= start && t < start + len;
}

void check_probability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(std::string("FaultInjector: ") + what +
                                " not a probability");
  }
}

}  // namespace

FaultConfig FaultConfig::for_node(int id) const {
  FaultConfig view = *this;
  if (node.victim != id) view.node = NodeFaultConfig{};
  if (model.victim != -1 && model.victim != id) view.model = ModelFaultConfig{};
  return view;
}

FaultInjector::FaultInjector(FaultConfig config, std::uint64_t seed)
    : config_(config),
      sensor_rng_(Rng(seed).fork(1)),
      actuator_rng_(Rng(seed).fork(2)) {
  check_probability(config_.sensor.dropout_p, "sensor.dropout_p");
  check_probability(config_.sensor.stale_p, "sensor.stale_p");
  check_probability(config_.sensor.spike_p, "sensor.spike_p");
  check_probability(config_.actuator.fail_p, "actuator.fail_p");
  check_probability(config_.actuator.burst_fail_p, "actuator.burst_fail_p");
  if (!(config_.sensor.spike_factor > 0.0)) {
    throw std::invalid_argument("FaultInjector: spike_factor must be > 0");
  }
  if (!(config_.model.error_inflation > 0.0)) {
    throw std::invalid_argument("FaultInjector: error_inflation must be > 0");
  }
}

FaultInjector::SensorFate FaultInjector::draw_sensor_fate(Rng& rng,
                                                          int& spike_left) {
  // Exactly one draw per signal per epoch, spiking or not, so the
  // stream position depends only on the epoch count.
  const double u = rng.next_double();
  if (spike_left > 0) {
    --spike_left;
    return SensorFate::kSpike;
  }
  const auto& s = config_.sensor;
  if (u < s.dropout_p) return SensorFate::kDropout;
  if (u < s.dropout_p + s.stale_p) return SensorFate::kStale;
  if (u < s.dropout_p + s.stale_p + s.spike_p) {
    spike_left = s.spike_burst_epochs - 1;
    return SensorFate::kSpike;
  }
  return SensorFate::kClean;
}

void FaultInjector::begin_epoch(int t) {
  STURGEON_CHECK(t > epoch_, "FaultInjector::begin_epoch: epoch " << t
                                 << " not after " << epoch_);
  epoch_ = t;

  const bool now_down = in_window(t, config_.node.crash_epoch,
                                  config_.node.crash_epochs);
  rebooted_ = was_down_ && !now_down;
  was_down_ = now_down;
  down_ = now_down;
  hung_ = in_window(t, config_.node.hang_epoch, config_.node.hang_epochs);
  if (down_) ++counts_.down_epochs;
  if (hung_) ++counts_.hung_epochs;
  if (down_ && down_counter_ != nullptr) down_counter_->inc();

  power_fate_ = draw_sensor_fate(sensor_rng_, power_spike_left_);
  latency_fate_ = draw_sensor_fate(sensor_rng_, latency_spike_left_);

  if (model_error_inflation() != 1.0) {
    ++counts_.model_epochs;
    if (model_counter_ != nullptr) model_counter_->inc();
  }
}

double FaultInjector::corrupt(double raw, SensorFate fate, double& last_raw,
                              bool& has_last) {
  double out = raw;
  switch (fate) {
    case SensorFate::kClean:
      break;
    case SensorFate::kDropout:
      out = std::numeric_limits<double>::quiet_NaN();
      ++counts_.sensor_dropouts;
      break;
    case SensorFate::kStale:
      // A frozen sensor repeats its previous measurement; before any
      // measurement exists it behaves like a dropout.
      out = has_last ? last_raw : std::numeric_limits<double>::quiet_NaN();
      ++counts_.sensor_stale;
      break;
    case SensorFate::kSpike:
      out = raw * config_.sensor.spike_factor;
      ++counts_.sensor_spikes;
      break;
  }
  if (fate != SensorFate::kClean && sensor_counter_ != nullptr) {
    sensor_counter_->inc();
  }
  last_raw = raw;
  has_last = true;
  return out;
}

double FaultInjector::corrupt_power_w(double raw) {
  return corrupt(raw, power_fate_, last_power_raw_, has_last_power_);
}

double FaultInjector::corrupt_latency_ms(double raw) {
  return corrupt(raw, latency_fate_, last_latency_raw_, has_last_latency_);
}

bool FaultInjector::tool_call_fails() {
  const bool burst = in_window(epoch_, config_.actuator.burst_start_epoch,
                               config_.actuator.burst_epochs);
  const double p =
      burst ? config_.actuator.burst_fail_p : config_.actuator.fail_p;
  if (p <= 0.0) return false;  // no draw: keeps the stream schedule-free
  const bool fails = actuator_rng_.bernoulli(p);
  if (fails) {
    ++counts_.tool_call_failures;
    if (tool_counter_ != nullptr) tool_counter_->inc();
  }
  return fails;
}

LinkFaultInjector::LinkFaultInjector(NetworkFaultConfig config,
                                     std::uint64_t seed, int node)
    : config_(config), rng_(seed), node_(node) {
  check_probability(config_.drop_p, "network.drop_p");
  check_probability(config_.delay_p, "network.delay_p");
  check_probability(config_.duplicate_p, "network.duplicate_p");
  check_probability(config_.reorder_p, "network.reorder_p");
  if (config_.delay_p > 0.0 && config_.max_delay_epochs < 1) {
    throw std::invalid_argument(
        "LinkFaultInjector: max_delay_epochs must be >= 1");
  }
}

bool LinkFaultInjector::partitioned(int t) const {
  return in_window(t, config_.partition_start_epoch,
                   config_.partition_epochs) &&
         (config_.partition_node == -1 || config_.partition_node == node_);
}

LinkFate LinkFaultInjector::on_send(int t) {
  // Exactly five draws per send, partitioned or not, so the link's
  // stream position is a pure function of its send count.
  const double u_drop = rng_.next_double();
  const double u_delay = rng_.next_double();
  const double u_dup = rng_.next_double();
  const double u_reorder = rng_.next_double();
  const std::uint64_t u_order = rng_.next_u64();

  LinkFate fate;
  if (partitioned(t)) {
    fate.dropped = true;
    fate.partitioned = true;
  } else if (u_drop < config_.drop_p) {
    fate.dropped = true;
  }
  if (!fate.dropped) {
    if (config_.delay_p > 0.0 && u_delay < config_.delay_p) {
      // Re-use the (uniform-in-[0, delay_p)) draw for the delay length.
      const int span = config_.max_delay_epochs;
      fate.delay_epochs = 1 + static_cast<int>(u_delay / config_.delay_p *
                                               static_cast<double>(span));
      if (fate.delay_epochs > span) fate.delay_epochs = span;
    }
    fate.duplicated = u_dup < config_.duplicate_p;
  }
  // FIFO keys live at the top half of the key space; a reordered send
  // gets a uniform key, landing before (and occasionally between) the
  // in-order messages of its delivery epoch.
  fate.order_key = (config_.reorder_p > 0.0 && u_reorder < config_.reorder_p)
                       ? u_order
                       : (1ULL << 63) + fifo_key_;
  ++fifo_key_;
  return fate;
}

double FaultInjector::model_error_inflation() const {
  return in_window(epoch_, config_.model.start_epoch, config_.model.epochs)
             ? config_.model.error_inflation
             : 1.0;
}

void FaultInjector::bind(telemetry::MetricsRegistry& registry) {
  sensor_counter_ = &registry.counter("fault.injected.sensor");
  tool_counter_ = &registry.counter("fault.injected.tool_failures");
  down_counter_ = &registry.counter("fault.injected.down_epochs");
  model_counter_ = &registry.counter("fault.injected.model_epochs");
}

}  // namespace sturgeon::fault
