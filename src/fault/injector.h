// Deterministic, seed-driven fault injection for chaos runs.
//
// A FaultInjector owns the fault schedule for ONE node. Schedules are
// derived from the node's seed through util/rng.h derive_seed streams,
// so a chaos run is bit-reproducible: the same (cluster seed, node id,
// fault config) produces the same faults at the same epochs regardless
// of thread count or wall-clock time. Sensor draws and actuator draws
// come from independent forked generators, so consuming a variable
// number of actuator draws (retries!) never shifts the sensor schedule.
//
// Four fault classes, mirroring what real power-capped fleets see
// (Hydra's noisy power telemetry, CuttleSys' misconfigured decisions):
//
//   sensor    power/latency readings go NaN (dropout), stale (frozen at
//             the previous epoch's value), or spike (multiplied by an
//             outlier factor for a burst of epochs);
//   actuator  individual isolation-tool calls throw ActuatorError, so a
//             ResourceEnforcer::apply() fails transiently or -- when a
//             mid-sequence call fails -- applies partially;
//   node      the node crashes (stops stepping and reporting entirely)
//             or hangs (serves load under the last partition but its
//             control loop stops) for K epochs, then recovers;
//   model     the sample handed to the policy is inflated, stressing
//             the balancer with extra prediction error.
//
// The injector only *decides* faults; consumers (fault::FaultyCpuset,
// cluster::ClusterNode) act on them. With `enabled == false` no
// injector is constructed at all, keeping the epoch hot path clean
// (bench/overhead_fault gates the residual overhead).
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace sturgeon::telemetry {
class MetricsRegistry;
class Counter;
}  // namespace sturgeon::telemetry

namespace sturgeon::fault {

/// Per-epoch, per-signal sensor corruption probabilities.
struct SensorFaultConfig {
  double dropout_p = 0.0;  ///< reading lost: returned as NaN
  double stale_p = 0.0;    ///< reading frozen at the previous epoch's value
  double spike_p = 0.0;    ///< an outlier burst starts this epoch
  double spike_factor = 4.0;   ///< multiplier applied while spiking
  int spike_burst_epochs = 3;  ///< burst length once a spike triggers
};

/// Transient isolation-tool failures (each tool call draws once).
struct ActuatorFaultConfig {
  double fail_p = 0.0;  ///< background per-tool-call failure probability
  /// Deterministic outage window: within [burst_start_epoch,
  /// burst_start_epoch + burst_epochs) tool calls fail with
  /// `burst_fail_p` instead, modelling a flaky driver episode.
  int burst_start_epoch = -1;
  int burst_epochs = 0;
  double burst_fail_p = 0.9;
};

/// Whole-node crash/hang schedule (explicit epochs, not probabilistic:
/// MTTR assertions need a known outage length).
struct NodeFaultConfig {
  int victim = -1;  ///< node id this schedule applies to; -1 = nobody
  int crash_epoch = -1;  ///< first epoch the node is down; -1 = never
  int crash_epochs = 0;  ///< epochs spent down
  int hang_epoch = -1;   ///< first epoch the control loop stalls
  int hang_epochs = 0;   ///< epochs spent hung
};

/// Prediction-error inflation window (stresses Algorithm 2's balancer).
struct ModelFaultConfig {
  int victim = -1;      ///< node id; -1 = every node
  int start_epoch = -1; ///< -1 = never
  int epochs = 0;
  double error_inflation = 1.5;  ///< factor on the sample the policy sees
};

/// Coordinator<->node link perturbation (the comms MessageChannel's
/// fault class). Applied per message send on a per-link injector, so
/// the two directions of a node's link fault independently.
struct NetworkFaultConfig {
  double drop_p = 0.0;       ///< message lost in flight
  double delay_p = 0.0;      ///< message arrives 1..max_delay_epochs late
  int max_delay_epochs = 3;
  double duplicate_p = 0.0;  ///< a second copy of the message is delivered
  /// Delivery order scrambled among messages landing in the same epoch
  /// (per-message probability of getting a random order key).
  double reorder_p = 0.0;
  /// Full partition window: every send on an affected link is dropped
  /// for [partition_start_epoch, partition_start_epoch +
  /// partition_epochs). partition_node selects one node's link pair, or
  /// -1 for every link (the coordinator itself is unreachable).
  int partition_start_epoch = -1;
  int partition_epochs = 0;
  int partition_node = -1;

  /// Whether any perturbation is configured at all. A channel built
  /// from an all-zero config is *reliable*: the engines use this to
  /// keep the zero-fault comms path bit-identical to direct calls.
  bool any() const {
    return drop_p > 0.0 || delay_p > 0.0 || duplicate_p > 0.0 ||
           reorder_p > 0.0 || (partition_start_epoch >= 0 &&
                               partition_epochs > 0);
  }
};

/// What one send drew from the link's fault schedule.
struct LinkFate {
  bool dropped = false;     ///< lost (probabilistic drop or partition)
  bool partitioned = false; ///< dropped specifically by a partition window
  int delay_epochs = 0;     ///< extra epochs before delivery
  bool duplicated = false;  ///< deliver a second copy
  /// Tie-break among messages delivered in the same epoch. Non-reordered
  /// sends get a monotone key (FIFO); a reordered send gets a random one.
  std::uint64_t order_key = 0;
};

/// Deterministic per-link fault schedule for one direction of one
/// coordinator<->node link. Every on_send() consumes a fixed number of
/// RNG draws, so a link's stream position depends only on its own send
/// count -- never on what the faults decided or on other links.
class LinkFaultInjector {
 public:
  /// `seed` should derive from the channel seed and the link identity
  /// (direction, node) so links are independent streams.
  LinkFaultInjector(NetworkFaultConfig config, std::uint64_t seed, int node);

  /// Fate for one message sent at epoch `t`.
  LinkFate on_send(int t);

  /// True while the partition window covers this link at epoch `t`.
  bool partitioned(int t) const;

 private:
  NetworkFaultConfig config_;
  Rng rng_;
  int node_;
  std::uint64_t fifo_key_ = 0;
};

struct FaultConfig {
  bool enabled = false;
  SensorFaultConfig sensor;
  ActuatorFaultConfig actuator;
  NodeFaultConfig node;
  ModelFaultConfig model;

  /// The view node `id` sees: victim-targeted classes (node, model) are
  /// cleared unless this node is the victim.
  FaultConfig for_node(int id) const;
};

/// What the injector did so far (exported as fault.injected.* counters
/// when bound to a registry).
struct InjectorCounts {
  std::uint64_t sensor_dropouts = 0;
  std::uint64_t sensor_stale = 0;
  std::uint64_t sensor_spikes = 0;
  std::uint64_t tool_call_failures = 0;
  std::uint64_t down_epochs = 0;
  std::uint64_t hung_epochs = 0;
  std::uint64_t model_epochs = 0;
};

class FaultInjector {
 public:
  /// `seed` should be derive_seed(node_seed, kFaultStream) so fault
  /// schedules are independent of the server's own load/noise streams.
  FaultInjector(FaultConfig config, std::uint64_t seed);

  /// Advance the schedule to epoch `t` (call once per epoch, before any
  /// corrupt_*/tool_call_fails queries). Draws the epoch's sensor fates
  /// here, in a fixed order, so query order cannot shift the stream.
  void begin_epoch(int t);

  // -- node faults ---------------------------------------------------
  bool node_down() const { return down_; }
  bool node_hung() const { return hung_; }
  /// True on the first healthy epoch after a crash window (the node
  /// reboots: the server restarts, the policy re-initializes).
  bool rebooted_this_epoch() const { return rebooted_; }

  // -- sensor faults (call at most once per signal per epoch) --------
  double corrupt_power_w(double raw);
  double corrupt_latency_ms(double raw);

  // -- actuator faults (one draw per isolation tool call) ------------
  bool tool_call_fails();

  // -- model faults ---------------------------------------------------
  /// 1.0 outside the configured window.
  double model_error_inflation() const;

  const FaultConfig& config() const { return config_; }
  const InjectorCounts& counts() const { return counts_; }

  /// Mirror counts into `fault.injected.*` counters of `registry`
  /// (incremented live as faults fire).
  void bind(telemetry::MetricsRegistry& registry);

 private:
  enum class SensorFate { kClean, kDropout, kStale, kSpike };

  SensorFate draw_sensor_fate(Rng& rng, int& spike_left);
  double corrupt(double raw, SensorFate fate, double& last_raw,
                 bool& has_last);

  FaultConfig config_;
  Rng sensor_rng_;
  Rng actuator_rng_;
  int epoch_ = -1;
  bool down_ = false;
  bool hung_ = false;
  bool rebooted_ = false;
  bool was_down_ = false;
  SensorFate power_fate_ = SensorFate::kClean;
  SensorFate latency_fate_ = SensorFate::kClean;
  int power_spike_left_ = 0;
  int latency_spike_left_ = 0;
  double last_power_raw_ = 0.0;
  double last_latency_raw_ = 0.0;
  bool has_last_power_ = false;
  bool has_last_latency_ = false;
  InjectorCounts counts_;
  telemetry::Counter* sensor_counter_ = nullptr;
  telemetry::Counter* tool_counter_ = nullptr;
  telemetry::Counter* down_counter_ = nullptr;
  telemetry::Counter* model_counter_ = nullptr;
};

/// derive_seed stream label separating fault schedules from the node's
/// other RNG consumers.
inline constexpr std::uint64_t kFaultStream = 0xFA;

}  // namespace sturgeon::fault
