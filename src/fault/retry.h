// Bounded-exponential-backoff retry with verify-after-apply around a
// ResourceEnforcer.
//
// One apply(target) attempt can fail two ways: a tool call throws
// isolation::ActuatorError mid-sequence (partial apply), or every call
// "succeeds" but verify() finds the hardware state does not match the
// target. Either way the enforcer is resync()'d from the tools' real
// state -- so the next attempt's shrink-before-grow ordering is
// computed against reality -- and the apply is retried with
// exponentially growing backoff, up to max_attempts. Backoff is
// *simulated* (accumulated and exported as an attribute/counter, never
// slept): the simulator's epoch clock is virtual, and a chaos run of
// thousands of retries must not take wall-clock minutes.
//
// apply() returns false when every attempt failed. The caller keeps
// running under whatever partition the hardware is actually in
// (enforcer.current() after the final resync) -- degraded but
// consistent -- and the failure is visible as fault.actuator.gave_up.
#pragma once

#include <cstdint>
#include <memory>

#include "isolation/enforcer.h"
#include "util/rng.h"
#include "util/types.h"

namespace sturgeon::telemetry {
class TelemetryContext;
class Counter;
}  // namespace sturgeon::telemetry

namespace sturgeon::fault {

struct RetryConfig {
  int max_attempts = 4;          ///< total attempts per apply (>= 1)
  int base_backoff_us = 100;     ///< backoff before the 2nd attempt
  int max_backoff_us = 10'000;   ///< exponential growth ceiling
  /// Deterministic jitter on each backoff delay: the delay is scaled by
  /// a seeded uniform draw from [1 - jitter/2, 1 + jitter/2), breaking
  /// the synchronized retry storms a fleet of identical backoff
  /// schedules produces. 0 (the default) draws nothing at all, keeping
  /// pre-jitter runs bit-exact. Must lie in [0, 1].
  double jitter = 0.0;
};

struct RetryStats {
  std::uint64_t applies = 0;          ///< apply() calls that changed state
  std::uint64_t retries = 0;          ///< extra attempts beyond the first
  std::uint64_t actuator_errors = 0;  ///< attempts ended by ActuatorError
  std::uint64_t verify_failures = 0;  ///< attempts that applied but failed verify
  std::uint64_t gave_up = 0;          ///< applies abandoned after max_attempts
  std::uint64_t backoff_us = 0;       ///< total simulated backoff
};

class RetryingEnforcer {
 public:
  /// `jitter_seed` seeds the backoff-jitter stream; pass the node's
  /// derive_seed(seed, kRetryJitterStream) so each node's jitter is an
  /// independent deterministic stream. Unused (no draws) while
  /// config.jitter == 0.
  RetryingEnforcer(isolation::ResourceEnforcer& inner,
                   RetryConfig config = {}, std::uint64_t jitter_seed = 0);

  /// Attach counters (fault.actuator.*) and the tracer used for the
  /// "enforce.retry" span opened whenever an apply needs more than one
  /// attempt.
  void attach_telemetry(
      const std::shared_ptr<telemetry::TelemetryContext>& context);

  /// Apply `target`, retrying transient failures. Returns true once the
  /// partition is applied AND verified; false after giving up.
  bool apply(const Partition& target);

  const Partition& current() const { return inner_.current(); }
  const RetryStats& stats() const { return stats_; }
  const RetryConfig& config() const { return config_; }

 private:
  isolation::ResourceEnforcer& inner_;
  RetryConfig config_;
  RetryStats stats_;
  Rng jitter_rng_;
  std::shared_ptr<telemetry::TelemetryContext> telemetry_;
  telemetry::Counter* retries_counter_ = nullptr;
  telemetry::Counter* verify_counter_ = nullptr;
  telemetry::Counter* gave_up_counter_ = nullptr;
};

/// derive_seed stream label for the retry backoff jitter, separating it
/// from the node's fault schedule (kFaultStream) and workload streams.
inline constexpr std::uint64_t kRetryJitterStream = 0xB0;

}  // namespace sturgeon::fault
