#include "fault/retry.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "telemetry/context.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace sturgeon::fault {

RetryingEnforcer::RetryingEnforcer(isolation::ResourceEnforcer& inner,
                                   RetryConfig config, std::uint64_t jitter_seed)
    : inner_(inner), config_(config), jitter_rng_(jitter_seed) {
  if (config_.max_attempts < 1 || config_.base_backoff_us < 0 ||
      config_.max_backoff_us < config_.base_backoff_us) {
    throw std::invalid_argument("RetryingEnforcer: bad retry config");
  }
  if (!(config_.jitter >= 0.0 && config_.jitter <= 1.0)) {
    throw std::invalid_argument("RetryingEnforcer: jitter must be in [0, 1]");
  }
}

void RetryingEnforcer::attach_telemetry(
    const std::shared_ptr<telemetry::TelemetryContext>& context) {
  telemetry_ = context;
  if (telemetry_ == nullptr) {
    retries_counter_ = verify_counter_ = gave_up_counter_ = nullptr;
    return;
  }
  auto& registry = telemetry_->metrics();
  retries_counter_ = &registry.counter("fault.actuator.retries");
  verify_counter_ = &registry.counter("fault.actuator.verify_failures");
  gave_up_counter_ = &registry.counter("fault.actuator.gave_up");
}

bool RetryingEnforcer::apply(const Partition& target) {
  ++stats_.applies;
  std::optional<telemetry::Span> retry_span;
  std::uint64_t backoff_us = 0;
  int attempts = 0;
  bool ok = false;
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    attempts = attempt + 1;
    if (attempt > 0) {
      ++stats_.retries;
      if (retries_counter_ != nullptr) retries_counter_->inc();
      // Simulated bounded exponential backoff: recorded, never slept.
      std::uint64_t delay = std::min<std::uint64_t>(
          static_cast<std::uint64_t>(config_.base_backoff_us) << (attempt - 1),
          static_cast<std::uint64_t>(config_.max_backoff_us));
      if (config_.jitter > 0.0) {
        // One draw per backoff, only when jitter is on: the zero-jitter
        // default consumes no RNG and stays bit-exact with older runs.
        const double factor =
            1.0 - config_.jitter / 2.0 + config_.jitter * jitter_rng_.next_double();
        delay = static_cast<std::uint64_t>(static_cast<double>(delay) * factor);
      }
      backoff_us += delay;
      stats_.backoff_us += delay;
      if (!retry_span && telemetry_ != nullptr &&
          telemetry_->tracing_enabled()) {
        retry_span = telemetry_->tracer().start_span("enforce.retry");
      }
    }
    try {
      inner_.apply(target);
    } catch (const isolation::ActuatorError&) {
      ++stats_.actuator_errors;
      inner_.resync();
      continue;
    }
    if (inner_.verify(target)) {
      ok = true;
      break;
    }
    ++stats_.verify_failures;
    if (verify_counter_ != nullptr) verify_counter_->inc();
    inner_.resync();
  }
  if (!ok) {
    ++stats_.gave_up;
    if (gave_up_counter_ != nullptr) gave_up_counter_->inc();
    inner_.resync();
  }
  if (retry_span) {
    retry_span->attr("attempts", attempts)
        .attr("backoff_us", backoff_us)
        .attr("ok", ok);
  }
  return ok;
}

}  // namespace sturgeon::fault
