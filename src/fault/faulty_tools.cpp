#include "fault/faulty_tools.h"

namespace sturgeon::fault {

void FaultyCpuset::set_cpuset(isolation::AppId app,
                              const std::vector<int>& cores) {
  if (injector_ != nullptr && injector_->tool_call_fails()) {
    throw isolation::ActuatorError("cpuset write");
  }
  inner_.set_cpuset(app, cores);
}

void FaultyCat::set_way_mask(isolation::AppId app, std::uint32_t mask) {
  if (injector_ != nullptr && injector_->tool_call_fails()) {
    throw isolation::ActuatorError("way-mask write");
  }
  inner_.set_way_mask(app, mask);
}

void FaultyFreq::set_frequency_level(const std::vector<int>& cores,
                                     int level) {
  if (injector_ != nullptr && injector_->tool_call_fails()) {
    throw isolation::ActuatorError("frequency write");
  }
  inner_.set_frequency_level(cores, level);
}

}  // namespace sturgeon::fault
