#include "fault/sanitizer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/metrics.h"

namespace sturgeon::fault {

SignalSanitizer::SignalSanitizer(SanitizerConfig config) : config_(config) {
  if (!(std::isfinite(config_.lo) && std::isfinite(config_.hi) &&
        config_.lo <= config_.hi)) {
    throw std::invalid_argument("SignalSanitizer: bad bounds");
  }
  if (!(config_.decay >= 0.0 && config_.decay <= 1.0)) {
    throw std::invalid_argument("SignalSanitizer: decay must be in [0, 1]");
  }
  if (!(config_.spike_rel_threshold > 0.0)) {
    throw std::invalid_argument(
        "SignalSanitizer: spike_rel_threshold must be > 0");
  }
  held_ = config_.lo;
  mean_ = config_.lo;
}

double SignalSanitizer::sanitize(double raw) {
  if (!std::isfinite(raw)) {
    ++counters_.rejected_nonfinite;
    if (rejected_counter_ != nullptr) rejected_counter_->inc();
    // Last good value, decayed toward the running mean: a long dropout
    // converges to "typical" rather than holding one extreme sample.
    held_ = mean_ + config_.decay * (held_ - mean_);
    return held_;
  }

  double value = std::clamp(raw, config_.lo, config_.hi);
  if (value != raw) {
    ++counters_.clamped;
    if (clamped_counter_ != nullptr) clamped_counter_->inc();
  }

  window_[window_next_] = value;
  window_next_ = (window_next_ + 1) % 3;
  window_size_ = std::min(window_size_ + 1, 3);

  double out = value;
  if (window_size_ == 3) {
    const double a = window_[0], b = window_[1], c = window_[2];
    out = std::max(std::min(a, b), std::min(std::max(a, b), c));
    if (std::abs(value - out) >
        config_.spike_rel_threshold * std::max(std::abs(out), 1e-9)) {
      ++counters_.spike_suppressed;
      if (suppressed_counter_ != nullptr) suppressed_counter_->inc();
    }
  }

  ++counters_.accepted;
  mean_ += (out - mean_) / static_cast<double>(counters_.accepted);
  held_ = out;
  return out;
}

void SignalSanitizer::bind(telemetry::MetricsRegistry& registry,
                           const std::string& prefix) {
  rejected_counter_ = &registry.counter(prefix + ".rejected");
  clamped_counter_ = &registry.counter(prefix + ".clamped");
  suppressed_counter_ = &registry.counter(prefix + ".suppressed");
}

void SignalSanitizer::reset() {
  window_size_ = 0;
  window_next_ = 0;
  mean_ = config_.lo;
  held_ = config_.lo;
  counters_ = SanitizerCounters{};
}

}  // namespace sturgeon::fault
