#include "fault/watchdog.h"

#include <stdexcept>

namespace sturgeon::fault {

NodeWatchdog::NodeWatchdog(WatchdogConfig config) : config_(config) {
  if (config_.trip_after < 1 || config_.clear_after < 1) {
    throw std::invalid_argument("NodeWatchdog: thresholds must be >= 1");
  }
}

bool NodeWatchdog::observe(bool qos_violation, bool cap_overshoot) {
  if (!config_.enabled) return false;
  const bool bad = qos_violation || cap_overshoot;
  if (!safe_mode_) {
    bad_streak_ = bad ? bad_streak_ + 1 : 0;
    if (bad_streak_ >= config_.trip_after) {
      safe_mode_ = true;
      ++trips_;
      bad_streak_ = 0;
      good_streak_ = 0;
      episode_epochs_ = 0;
    }
  } else {
    good_streak_ = bad ? 0 : good_streak_ + 1;
    if (good_streak_ >= config_.clear_after) {
      safe_mode_ = false;
      episodes_.push_back(episode_epochs_);
      good_streak_ = 0;
      episode_epochs_ = 0;
    }
  }
  if (safe_mode_) {
    ++episode_epochs_;
    ++epochs_in_safe_mode_;
  }
  return safe_mode_;
}

void NodeWatchdog::reset() {
  safe_mode_ = false;
  bad_streak_ = 0;
  good_streak_ = 0;
  episode_epochs_ = 0;
  trips_ = 0;
  epochs_in_safe_mode_ = 0;
  episodes_.clear();
}

}  // namespace sturgeon::fault
