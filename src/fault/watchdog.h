// Per-node watchdog with a safe-mode fallback.
//
// State machine (two states, hysteresis on both edges):
//
//   HEALTHY --[trip_after consecutive bad epochs]--> SAFE_MODE
//   SAFE_MODE --[clear_after consecutive good epochs]--> HEALTHY
//
// A "bad" epoch is a QoS violation or a cap overshoot beyond the
// configured tolerance -- the two signals that mean the policy's model
// of the machine has diverged from reality (crippled sensors, a wedged
// actuator, a mispredicting model). While tripped, the node abandons
// its policy's decisions and enforces the known-safe LS-max/BE-min
// static partition (Partition::all_to_ls: every core, way and P-state
// to the latency-sensitive app, BE parked), trading all batch
// throughput for QoS until the fleet looks sane again. The asymmetric
// thresholds (trip fast, clear slow) prevent flapping when the
// underlying fault is intermittent.
//
// Episode lengths are recorded so recovery time (MTTR) is measurable:
// each completed safe-mode episode feeds the cluster's
// recovery.mttr_epochs histogram.
#pragma once

#include <vector>

namespace sturgeon::fault {

struct WatchdogConfig {
  bool enabled = false;
  int trip_after = 4;   ///< consecutive bad epochs before safe mode
  int clear_after = 6;  ///< consecutive good epochs before exit
  /// A measured power above cap * (1 + tolerance) counts as a cap
  /// overshoot. The slack absorbs the governor's one-epoch reaction lag
  /// so a single hot epoch under a freshly lowered cap is not "bad".
  double cap_overshoot_tolerance = 0.10;
};

class NodeWatchdog {
 public:
  explicit NodeWatchdog(WatchdogConfig config = {});

  /// Feed one epoch's health verdict; returns true while in safe mode
  /// (including the epoch the trip happens, so the safe partition is
  /// enforced immediately).
  bool observe(bool qos_violation, bool cap_overshoot);

  bool in_safe_mode() const { return safe_mode_; }
  int trips() const { return trips_; }
  int epochs_in_safe_mode() const { return epochs_in_safe_mode_; }
  /// Lengths (epochs) of completed safe-mode episodes, trip to clear.
  const std::vector<int>& completed_episodes() const { return episodes_; }

  void reset();

 private:
  WatchdogConfig config_;
  bool safe_mode_ = false;
  int bad_streak_ = 0;
  int good_streak_ = 0;
  int episode_epochs_ = 0;
  int trips_ = 0;
  int epochs_in_safe_mode_ = 0;
  std::vector<int> episodes_;
};

}  // namespace sturgeon::fault
