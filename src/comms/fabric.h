// CommsFabric: the engine-facing assembly of channel + leases.
//
// The fabric owns the whole messaging plane of one run: the
// MessageChannel, the coordinator-side LeaseLedger and retransmit
// state, and one LeaseClient per node (the node-side protocol agent --
// modeled as always-responsive firmware; crash realism enters through
// the node never SENDING reports while down, so its adoptions are
// never acked and the ledger stays conservative about it).
//
// Per-epoch call order (all from the engines' sequential phases):
//
//   collect(t)                 drain the coordinator inbox: refresh the
//                              report vector, heartbeat epochs, acks,
//                              and the one-shot lease-lapse flags;
//   send_grants(desired, ...)  coordinator -> nodes. Reliable channel:
//                              every node gets its desired cap, same
//                              epoch, unclamped -- bit-identical to the
//                              direct path. Lossy channel: leases with
//                              term-aligned expiries, ledger-clamped
//                              (lease.h invariant), bounded-exponential
//                              re-send with deterministic jitter, no
//                              sends to dead-classified nodes;
//   effective_caps(t)          node side: adopt due grants, return the
//                              cap each node actually runs this epoch
//                              (the TRUE caps the budget check sums);
//   send_report / send_heartbeat
//                              node -> coordinator, after stepping.
#pragma once

#include <cstdint>
#include <vector>

#include "comms/channel.h"
#include "comms/lease.h"
#include "comms/message.h"
#include "util/rng.h"

namespace sturgeon::telemetry {
class MetricsRegistry;
}  // namespace sturgeon::telemetry

namespace sturgeon::comms {

class CommsFabric {
 public:
  /// `initial_reports` seeds the coordinator's report vector (what the
  /// lockstep path reads from the nodes at t=0, before any message
  /// could arrive); `idle_w` feeds the autonomous fallback split.
  /// `seed` should be derive_seed(engine seed, kCommsStream).
  CommsFabric(const CommsConfig& config, std::uint64_t seed, double budget_w,
              std::vector<cluster::NodeReport> initial_reports,
              std::vector<double> idle_w);

  bool reliable() const { return channel_.reliable(); }
  int nodes() const { return static_cast<int>(reports_.size()); }

  // -- coordinator side ------------------------------------------------
  void collect(int t);
  /// Latest received report per node (raw: liveness/rejoined unstamped).
  const std::vector<cluster::NodeReport>& reports() const { return reports_; }
  /// Latest heartbeat epoch per node (HeartbeatTracker input; -1 =
  /// nothing heard yet).
  const std::vector<int>& last_report_epochs() const {
    return last_report_epochs_;
  }
  /// One-shot per collect(): node i's autonomy count grew since its
  /// previous message, i.e. its lease lapsed in between (the tracker
  /// turns this into a rejoin-style rebase).
  const std::vector<bool>& lease_lapsed() const { return lease_lapsed_; }
  /// Send this epoch's cap decisions; `dead[i]` suppresses the send (no
  /// point messaging a dead-classified node; its lease lapses into the
  /// autonomous fallback the ledger already reserves).
  void send_grants(const std::vector<double>& desired_w,
                   const std::vector<bool>& dead, int t);

  // -- node side -------------------------------------------------------
  /// Adopt due grants and return the caps actually in force at t (call
  /// exactly once per epoch, after send_grants).
  const std::vector<double>& effective_caps(int t);
  void send_report(int node, const cluster::NodeReport& report,
                   int last_step_epoch, int t);
  void send_heartbeat(int node, int t);

  // -- accounting ------------------------------------------------------
  const ChannelStats& stats() const { return channel_.stats(); }
  const ChannelStats& grant_stats() const { return channel_.grant_stats(); }
  const LeaseClient& client(int node) const {
    return clients_[static_cast<std::size_t>(node)];
  }
  std::uint64_t stale_reports() const { return stale_reports_; }
  std::uint64_t lease_renewals() const;
  std::uint64_t lease_expiries() const;
  std::uint64_t autonomy_epochs() const;

  /// Mirror totals into `comms.*` counters/gauges of `registry` (call
  /// once, end of run, before the rollup flushes).
  void export_metrics(telemetry::MetricsRegistry& registry) const;

 private:
  void handle_ack(int node, std::uint64_t ack_seq);
  void note_autonomy(int node, std::uint64_t autonomy_epochs);
  void maybe_grant(int node, double desired_w, int expiry_epoch, int t);

  CommsConfig config_;
  double budget_w_;
  MessageChannel channel_;
  LeaseLedger ledger_;
  std::vector<LeaseClient> clients_;
  std::vector<double> idle_w_;
  std::vector<cluster::NodeReport> reports_;
  std::vector<int> last_report_epochs_;
  std::vector<bool> lease_lapsed_;
  std::vector<std::uint64_t> report_seq_seen_;
  std::vector<std::uint64_t> report_seq_next_;
  std::vector<std::uint64_t> autonomy_seen_;
  std::vector<int> attempts_;
  std::vector<int> next_retry_;
  std::vector<Rng> retry_rng_;
  std::vector<double> effective_;
  std::uint64_t stale_reports_ = 0;
};

}  // namespace sturgeon::comms
