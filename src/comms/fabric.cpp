#include "comms/fabric.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/metrics.h"
#include "util/check.h"

namespace sturgeon::comms {

namespace {
constexpr std::uint64_t kRetryJitterFork = 0x7E;
}  // namespace

CommsFabric::CommsFabric(const CommsConfig& config, std::uint64_t seed,
                         double budget_w,
                         std::vector<cluster::NodeReport> initial_reports,
                         std::vector<double> idle_w)
    : config_(config),
      budget_w_(budget_w),
      channel_(config.network, seed,
               static_cast<int>(initial_reports.size())),
      ledger_(autonomous_split(budget_w, idle_w), budget_w),
      idle_w_(std::move(idle_w)),
      reports_(std::move(initial_reports)) {
  STURGEON_CHECK(!reports_.empty(), "CommsFabric: empty fleet");
  STURGEON_CHECK(reports_.size() == idle_w_.size(),
                 "CommsFabric: reports/idle size mismatch");
  if (config_.lease_epochs < 1 || config_.renew_ahead_epochs < 0 ||
      config_.renew_ahead_epochs >= config_.lease_epochs ||
      config_.retry_base_epochs < 1 ||
      config_.retry_max_epochs < config_.retry_base_epochs ||
      !(config_.retry_jitter >= 0.0 && config_.retry_jitter <= 1.0) ||
      !(config_.grant_epsilon_w >= 0.0)) {
    throw std::invalid_argument("CommsFabric: bad comms configuration");
  }
  const std::size_t n = reports_.size();
  clients_.reserve(n);
  retry_rng_.reserve(n);
  const Rng jitter_root = Rng(derive_seed(seed, kRetryJitterFork));
  for (std::size_t i = 0; i < n; ++i) {
    clients_.emplace_back(ledger_.autonomous_w(static_cast<int>(i)));
    retry_rng_.push_back(jitter_root.fork(static_cast<std::uint64_t>(i)));
  }
  last_report_epochs_.assign(n, -1);
  lease_lapsed_.assign(n, false);
  report_seq_seen_.assign(n, 0);
  report_seq_next_.assign(n, 0);
  autonomy_seen_.assign(n, 0);
  attempts_.assign(n, 0);
  next_retry_.assign(n, 0);
  effective_.assign(n, 0.0);
}

void CommsFabric::handle_ack(int node, std::uint64_t ack_seq) {
  if (channel_.reliable()) return;  // no clamping, no retransmits
  if (ledger_.on_ack(node, ack_seq)) {
    const auto i = static_cast<std::size_t>(node);
    attempts_[i] = 0;  // progress: restart the backoff ladder
    next_retry_[i] = 0;
  }
}

void CommsFabric::note_autonomy(int node, std::uint64_t autonomy_epochs) {
  const auto i = static_cast<std::size_t>(node);
  if (autonomy_epochs > autonomy_seen_[i]) {
    lease_lapsed_[i] = true;
    autonomy_seen_[i] = autonomy_epochs;
  }
}

void CommsFabric::collect(int t) {
  std::fill(lease_lapsed_.begin(), lease_lapsed_.end(), false);
  for (const Message& m : channel_.recv_coord(t)) {
    switch (m.kind) {
      case MsgKind::kNodeReport: {
        const int node = m.report.node;
        handle_ack(node, m.report.ack_seq);
        note_autonomy(node, m.report.autonomy_epochs);
        const auto i = static_cast<std::size_t>(node);
        if (m.report.seq > report_seq_seen_[i]) {
          report_seq_seen_[i] = m.report.seq;
          reports_[i] = m.report.report;
          last_report_epochs_[i] =
              std::max(last_report_epochs_[i], m.report.last_step_epoch);
        } else {
          ++stale_reports_;  // delayed/reordered behind a newer report
        }
        break;
      }
      case MsgKind::kHeartbeat: {
        const int node = m.beat.node;
        handle_ack(node, m.beat.ack_seq);
        note_autonomy(node, m.beat.autonomy_epochs);
        const auto i = static_cast<std::size_t>(node);
        last_report_epochs_[i] = std::max(last_report_epochs_[i], m.beat.epoch);
        break;
      }
      case MsgKind::kCapGrant:
        STURGEON_CHECK(false, "CommsFabric: cap grant on the up link");
    }
  }
}

void CommsFabric::send_grants(const std::vector<double>& desired_w,
                              const std::vector<bool>& dead, int t) {
  const int n = nodes();
  STURGEON_CHECK(static_cast<int>(desired_w.size()) == n &&
                     static_cast<int>(dead.size()) == n,
                 "CommsFabric::send_grants: fleet size mismatch");
  if (channel_.reliable()) {
    // Bit-compat mode: the desired cap IS the cap, delivered this
    // epoch, renewed every epoch; liveness stays the tracker's job.
    for (int i = 0; i < n; ++i) {
      Message m;
      m.kind = MsgKind::kCapGrant;
      m.grant = CapGrant{ledger_.next_seq(i), desired_w[i], t + 1, t};
      channel_.send_to_node(i, m, t);
    }
    return;
  }

  ledger_.prune(t);
  // Term-aligned expiry; inside the renewal window grants are already
  // stamped for the next term (a grant that dies in renew_ahead epochs
  // is not worth the ack round trip).
  const int term = config_.lease_epochs;
  int expiry = ((t / term) + 1) * term;
  if (expiry - t <= config_.renew_ahead_epochs) expiry += term;
  // Two passes, node order inside each: modest asks (at or below the
  // autonomous fallback) first. They tighten no budget scenario the
  // fallback did not already reserve, so sending them first leaves the
  // clamp maximal room for the above-average asks.
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < n; ++i) {
      const bool modest = desired_w[i] <= ledger_.autonomous_w(i) +
                                              config_.grant_epsilon_w;
      if (modest != (pass == 0)) continue;
      if (dead[static_cast<std::size_t>(i)]) continue;
      maybe_grant(i, desired_w[i], expiry, t);
    }
  }
}

void CommsFabric::maybe_grant(int node, double desired_w, int expiry_epoch,
                              int t) {
  const auto i = static_cast<std::size_t>(node);
  const LeaseCandidate& acked = ledger_.acked(node);
  const double eps = config_.grant_epsilon_w;
  const bool settled = acked.seq != 0 &&
                       std::abs(acked.cap_w - desired_w) <= eps &&
                       acked.expiry_epoch - t > config_.renew_ahead_epochs;
  if (settled) {
    attempts_[i] = 0;  // a future desired change starts a fresh ladder
    next_retry_[i] = t;
    return;
  }
  if (t < next_retry_[i]) return;  // backing off an unacked send
  const double room = ledger_.max_grant(node, expiry_epoch, t);
  const double cap = std::min(desired_w, room);
  // A cap below idle is not actionable and below the autonomous
  // fallback it is not an improvement either; stay clamp-blocked and
  // re-evaluate next epoch (acks free room without our help, so this
  // is not a retransmit and takes no backoff).
  if (cap < idle_w_[i] || cap + eps < std::min(desired_w, ledger_.autonomous_w(node))) {
    return;
  }
  if (acked.seq != 0 && std::abs(acked.cap_w - cap) <= eps &&
      acked.expiry_epoch == expiry_epoch) {
    return;  // identical to what the node already holds: no news
  }

  Message m;
  m.kind = MsgKind::kCapGrant;
  m.grant = CapGrant{ledger_.next_seq(node), cap, expiry_epoch, t};
  ledger_.record_grant(node, m.grant);
  channel_.send_to_node(node, m, t);

  // Bounded-exponential re-send schedule with deterministic jitter
  // (src/fault/retry discipline on the epoch clock). Reset on any ack
  // progress (handle_ack).
  ++attempts_[i];
  const int shift = std::min(attempts_[i] - 1, 30);
  double backoff = std::min<double>(
      static_cast<double>(config_.retry_base_epochs) *
          static_cast<double>(1u << shift),
      static_cast<double>(config_.retry_max_epochs));
  if (config_.retry_jitter > 0.0) {
    backoff *= 1.0 - config_.retry_jitter / 2.0 +
               config_.retry_jitter * retry_rng_[i].next_double();
  }
  next_retry_[i] = t + std::max(1, static_cast<int>(backoff));
}

const std::vector<double>& CommsFabric::effective_caps(int t) {
  const int n = nodes();
  for (int i = 0; i < n; ++i) {
    for (const Message& m : channel_.recv_node(i, t)) {
      STURGEON_CHECK(m.kind == MsgKind::kCapGrant,
                     "CommsFabric: non-grant on the down link");
      clients_[static_cast<std::size_t>(i)].on_grant(m.grant);
    }
    effective_[static_cast<std::size_t>(i)] =
        clients_[static_cast<std::size_t>(i)].cap(t);
  }
  return effective_;
}

void CommsFabric::send_report(int node, const cluster::NodeReport& report,
                              int last_step_epoch, int t) {
  const auto i = static_cast<std::size_t>(node);
  Message m;
  m.kind = MsgKind::kNodeReport;
  m.report.seq = ++report_seq_next_[i];
  m.report.node = node;
  m.report.report = report;
  m.report.last_step_epoch = last_step_epoch;
  m.report.ack_seq = clients_[i].ack_seq();
  m.report.autonomy_epochs = clients_[i].autonomy_epochs();
  channel_.send_to_coord(node, m, t);
}

void CommsFabric::send_heartbeat(int node, int t) {
  const auto i = static_cast<std::size_t>(node);
  Message m;
  m.kind = MsgKind::kHeartbeat;
  m.beat = Heartbeat{node, t, clients_[i].ack_seq(),
                     clients_[i].autonomy_epochs()};
  channel_.send_to_coord(node, m, t);
}

std::uint64_t CommsFabric::lease_renewals() const {
  std::uint64_t sum = 0;
  for (const LeaseClient& c : clients_) sum += c.renewals();
  return sum;
}

std::uint64_t CommsFabric::lease_expiries() const {
  std::uint64_t sum = 0;
  for (const LeaseClient& c : clients_) sum += c.expiries();
  return sum;
}

std::uint64_t CommsFabric::autonomy_epochs() const {
  std::uint64_t sum = 0;
  for (const LeaseClient& c : clients_) sum += c.autonomy_epochs();
  return sum;
}

void CommsFabric::export_metrics(telemetry::MetricsRegistry& registry) const {
  const ChannelStats& s = channel_.stats();
  registry.counter("comms.sent").add(s.sent);
  registry.counter("comms.delivered").add(s.delivered);
  registry.counter("comms.dropped").add(s.dropped);
  registry.counter("comms.delayed").add(s.delayed);
  registry.counter("comms.duplicated").add(s.duplicated);
  registry.gauge("comms.in_flight").set(static_cast<double>(s.in_flight()));
  const ChannelStats& g = channel_.grant_stats();
  registry.counter("comms.grants_sent").add(g.sent);
  registry.counter("comms.grants_delivered").add(g.delivered);
  registry.counter("comms.grants_dropped").add(g.dropped);
  registry.gauge("comms.grants_in_flight")
      .set(static_cast<double>(g.in_flight()));
  registry.counter("comms.stale_reports").add(stale_reports_);
  registry.counter("comms.lease_renewals").add(lease_renewals());
  registry.counter("comms.lease_expiries").add(lease_expiries());
  registry.counter("comms.autonomy_epochs").add(autonomy_epochs());
}

}  // namespace sturgeon::comms
