#include "comms/channel.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace sturgeon::comms {

const char* to_string(MsgKind kind) {
  switch (kind) {
    case MsgKind::kCapGrant: return "cap_grant";
    case MsgKind::kNodeReport: return "node_report";
    case MsgKind::kHeartbeat: return "heartbeat";
  }
  return "unknown";
}

namespace {
// Link-identity labels for derive_seed: the two directions of a node's
// link must be independent streams.
constexpr std::uint64_t kDownDirection = 1;
constexpr std::uint64_t kUpDirection = 2;
}  // namespace

MessageChannel::MessageChannel(const fault::NetworkFaultConfig& network,
                               std::uint64_t seed, int nodes)
    : reliable_(!network.any()), to_node_(static_cast<std::size_t>(nodes)) {
  STURGEON_CHECK(nodes > 0, "MessageChannel: need at least one node, got "
                                << nodes);
  if (reliable_) return;
  down_links_.reserve(static_cast<std::size_t>(nodes));
  up_links_.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    down_links_.emplace_back(
        network, derive_seed(seed, kDownDirection, static_cast<std::uint64_t>(i)),
        i);
    up_links_.emplace_back(
        network, derive_seed(seed, kUpDirection, static_cast<std::uint64_t>(i)),
        i);
  }
}

void MessageChannel::send(std::vector<Envelope>& queue,
                          fault::LinkFaultInjector* link,
                          const Message& message, int t, bool grant) {
  ++stats_.sent;
  if (grant) ++grant_stats_.sent;

  Envelope env;
  env.message = message;
  env.deliver_epoch = t;
  env.send_seq = ++send_seq_;
  // FIFO order keys live in the top half of the key space so a
  // reordered message's random key usually sorts it ahead of its batch.
  env.order_key = (1ULL << 63) + env.send_seq;
  if (link == nullptr) {  // reliable channel
    queue.push_back(env);
    return;
  }

  const fault::LinkFate fate = link->on_send(t);
  if (fate.dropped) {
    ++stats_.dropped;
    if (grant) ++grant_stats_.dropped;
    return;
  }
  env.deliver_epoch = t + fate.delay_epochs;
  env.order_key = fate.order_key;
  if (fate.delay_epochs > 0) {
    ++stats_.delayed;
    if (grant) ++grant_stats_.delayed;
  }
  queue.push_back(env);
  if (fate.duplicated) {
    // The copy lands one epoch later: a later receive batch has to
    // prove adoption is idempotent, not just same-batch dedup.
    Envelope dup = env;
    dup.deliver_epoch += 1;
    dup.duplicate = true;
    queue.push_back(dup);
    ++stats_.duplicated;
    if (grant) ++grant_stats_.duplicated;
  }
}

void MessageChannel::send_to_node(int node, const Message& message, int t) {
  auto& queue = to_node_.at(static_cast<std::size_t>(node));
  send(queue, reliable_ ? nullptr : &down_links_[static_cast<std::size_t>(node)],
       message, t, message.kind == MsgKind::kCapGrant);
}

void MessageChannel::send_to_coord(int node, const Message& message, int t) {
  send(to_coord_, reliable_ ? nullptr : &up_links_[static_cast<std::size_t>(node)],
       message, t, false);
}

std::vector<Message> MessageChannel::recv(std::vector<Envelope>& queue, int t) {
  // Partition due envelopes out, sort them into delivery order, count.
  auto due_end = std::stable_partition(
      queue.begin(), queue.end(),
      [t](const Envelope& e) { return e.deliver_epoch <= t; });
  std::sort(queue.begin(), due_end, [](const Envelope& a, const Envelope& b) {
    if (a.deliver_epoch != b.deliver_epoch) {
      return a.deliver_epoch < b.deliver_epoch;
    }
    if (a.order_key != b.order_key) return a.order_key < b.order_key;
    return a.send_seq < b.send_seq;
  });
  std::vector<Message> out;
  out.reserve(static_cast<std::size_t>(due_end - queue.begin()));
  for (auto it = queue.begin(); it != due_end; ++it) {
    if (!it->duplicate) {
      ++stats_.delivered;
      if (it->message.kind == MsgKind::kCapGrant) ++grant_stats_.delivered;
    }
    out.push_back(it->message);
  }
  queue.erase(queue.begin(), due_end);
  return out;
}

std::vector<Message> MessageChannel::recv_node(int node, int t) {
  return recv(to_node_.at(static_cast<std::size_t>(node)), t);
}

std::vector<Message> MessageChannel::recv_coord(int t) {
  return recv(to_coord_, t);
}

}  // namespace sturgeon::comms
