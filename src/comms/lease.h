// Cap leases: the machinery that keeps sum(true caps) <= budget under
// arbitrary message loss.
//
// Node side (LeaseClient): adopt monotone-seq grants, run at the leased
// cap while the lease is live, fall back to the conservative autonomous
// cap the moment it expires. The autonomous cap is the node's
// static-equal share of the cluster budget floored at idle power
// (autonomous_split), so a fleet that hears nothing at all degenerates
// to the static-equal coordinator -- safe by construction.
//
// Coordinator side (LeaseLedger): the coordinator cannot know which of
// its unacked grants arrived, so it must budget for the worst case. Per
// node it tracks every CANDIDATE lease the node might currently hold:
// the last acked grant plus all outstanding (sent, unacked, unexpired)
// grants; expired unacked grants collapse into a "might be autonomous"
// flag. The node's RESERVE at a future epoch t' is the largest cap any
// candidate scenario gives it at t':
//
//   reserve_i(t') = max( {cap : candidate unexpired at t'}
//                        u {autonomous_i if any candidate is expired at t'} )
//
// and the safety invariant is
//
//   for all t' >= now:  sum_i reserve_i(t') <= budget.
//
// The invariant is preserved by every transition: time passing changes
// no candidate set; an ack only SHRINKS a candidate set (the node
// adopted seq s, so it can never run any seq < s again), so reserves
// only drop; and a new grant is CLAMPED by max_grant() so the
// post-grant reserves still satisfy the inequality at every breakpoint
// (candidate expiries, where the piecewise-constant reserves change).
// The node's true cap is always one of its candidates' caps (or the
// autonomous fallback), hence true caps are pointwise below reserves
// and the STURGEON_CHECKed budget inequality holds every epoch no
// matter what the channel does.
#pragma once

#include <cstdint>
#include <vector>

#include "comms/message.h"

namespace sturgeon::comms {

/// Conservative fallback split: equal share of the cluster budget,
/// floored at each node's idle power, with the float redistributed
/// (water-filling) so the total never exceeds `budget_w`. Requires
/// budget_w > sum(idle_w) (build_cluster guarantees it).
std::vector<double> autonomous_split(double budget_w,
                                     const std::vector<double>& idle_w);

/// Node-side lease state machine: autonomous -> leased on adoption,
/// leased -> autonomous on expiry. cap(t) must be called exactly once
/// per epoch (it advances the autonomy accounting).
class LeaseClient {
 public:
  explicit LeaseClient(double autonomous_w);

  /// Adopt `grant` iff it advances the sequence; duplicates and
  /// reordered stale grants are no-ops (idempotent by construction).
  void on_grant(const CapGrant& grant);

  /// The cap actually in force at epoch `t`.
  double cap(int t);

  /// Highest adopted grant seq (cumulative ack); 0 before any adoption.
  std::uint64_t ack_seq() const { return lease_.seq; }
  double autonomous_w() const { return autonomous_w_; }
  bool leased(int t) const {
    return lease_.seq != 0 && t < lease_.expiry_epoch;
  }

  std::uint64_t renewals() const { return renewals_; }
  std::uint64_t expiries() const { return expiries_; }
  std::uint64_t autonomy_epochs() const { return autonomy_epochs_; }
  /// Last epoch spent on the autonomous cap (-1 = never): chaos tests
  /// measure reconvergence-after-heal with it.
  int last_autonomy_epoch() const { return last_autonomy_epoch_; }

 private:
  double autonomous_w_;
  CapGrant lease_;  ///< seq 0 = no lease yet
  bool was_leased_ = false;
  std::uint64_t renewals_ = 0;
  std::uint64_t expiries_ = 0;
  std::uint64_t autonomy_epochs_ = 0;
  int last_autonomy_epoch_ = -1;
};

/// One possible lease a node might hold, from the coordinator's view.
struct LeaseCandidate {
  std::uint64_t seq = 0;
  double cap_w = 0.0;
  int expiry_epoch = 0;
};

class LeaseLedger {
 public:
  LeaseLedger(std::vector<double> autonomous_w, double budget_w);

  int nodes() const { return static_cast<int>(autonomous_.size()); }

  /// Next grant sequence number for `node` (monotone from 1).
  std::uint64_t next_seq(int node);

  /// Process a cumulative ack: the node adopted `ack_seq`, so retire
  /// every candidate at or below it. Returns true when the ack advanced
  /// (callers reset their retransmit backoff on progress).
  bool on_ack(int node, std::uint64_t ack_seq);

  /// Collapse outstanding grants that expired by epoch `t` into the
  /// might-be-autonomous flag (call once per epoch before granting).
  void prune(int t);

  /// Worst-case cap node `node` might run at epoch `t_future`.
  double reserve(int node, int t_future) const;

  /// Largest cap grantable to `node` with the given expiry such that
  /// the reserve invariant survives at every breakpoint; negative when
  /// even a zero-cap grant is unsafe (its expiry would add an
  /// autonomous scenario the budget cannot absorb).
  double max_grant(int node, int expiry_epoch, int t) const;

  /// Record a sent (clamped) grant as outstanding.
  void record_grant(int node, const CapGrant& grant);

  /// Last acked candidate (seq 0 = none yet).
  const LeaseCandidate& acked(int node) const {
    return acked_[static_cast<std::size_t>(node)];
  }
  double autonomous_w(int node) const {
    return autonomous_[static_cast<std::size_t>(node)];
  }

 private:
  bool maybe_autonomous(int node, int t_future) const;

  double budget_w_;
  std::vector<double> autonomous_;
  std::vector<LeaseCandidate> acked_;
  std::vector<std::vector<LeaseCandidate>> outstanding_;
  /// Highest seq among pruned (expired, never acked) grants; the node
  /// might still be sitting on one of them, i.e. be autonomous now.
  /// Cleared once an ack at or above it proves otherwise.
  std::vector<std::uint64_t> expired_unacked_seq_;
  std::vector<std::uint64_t> seq_;
};

}  // namespace sturgeon::comms
