#include "comms/lease.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace sturgeon::comms {

namespace {
// An acked seq whose parameters were pruned is represented as expired
// forever: only its autonomous scenario can contribute to the reserve.
constexpr int kExpiredForever = std::numeric_limits<int>::min();
}  // namespace

std::vector<double> autonomous_split(double budget_w,
                                     const std::vector<double>& idle_w) {
  const std::size_t n = idle_w.size();
  STURGEON_CHECK(n > 0, "autonomous_split: empty fleet");
  // Water-filling: nodes whose idle floor exceeds the equal share of
  // the unpinned budget are pinned at idle; the rest split what is
  // left. Terminates because each round pins at least one node.
  std::vector<bool> pinned(n, false);
  double remaining = budget_w;
  std::size_t free_count = n;
  bool changed = true;
  while (changed) {
    changed = false;
    STURGEON_CHECK(free_count > 0,
                   "autonomous_split: idle power exceeds budget ("
                       << budget_w << " W)");
    const double share = remaining / static_cast<double>(free_count);
    for (std::size_t i = 0; i < n; ++i) {
      if (pinned[i] || idle_w[i] <= share) continue;
      pinned[i] = true;
      remaining -= idle_w[i];
      --free_count;
      changed = true;
    }
  }
  STURGEON_CHECK(free_count > 0 && remaining > 0.0,
                 "autonomous_split: idle power exceeds budget (" << budget_w
                                                                 << " W)");
  const double share = remaining / static_cast<double>(free_count);
  std::vector<double> caps(n);
  for (std::size_t i = 0; i < n; ++i) caps[i] = pinned[i] ? idle_w[i] : share;
  return caps;
}

// ---------------------------------------------------------------------
// LeaseClient
// ---------------------------------------------------------------------

LeaseClient::LeaseClient(double autonomous_w) : autonomous_w_(autonomous_w) {
  STURGEON_CHECK(autonomous_w > 0.0,
                 "LeaseClient: autonomous cap must be positive, got "
                     << autonomous_w);
}

void LeaseClient::on_grant(const CapGrant& grant) {
  if (grant.seq <= lease_.seq) return;  // duplicate or out-of-date: no-op
  lease_ = grant;
  ++renewals_;
}

double LeaseClient::cap(int t) {
  if (leased(t)) {
    was_leased_ = true;
    return lease_.cap_w;
  }
  if (was_leased_) {
    ++expiries_;
    was_leased_ = false;
  }
  ++autonomy_epochs_;
  last_autonomy_epoch_ = t;
  return autonomous_w_;
}

// ---------------------------------------------------------------------
// LeaseLedger
// ---------------------------------------------------------------------

LeaseLedger::LeaseLedger(std::vector<double> autonomous_w, double budget_w)
    : budget_w_(budget_w), autonomous_(std::move(autonomous_w)) {
  STURGEON_CHECK(!autonomous_.empty(), "LeaseLedger: empty fleet");
  double sum = 0.0;
  for (const double a : autonomous_) sum += a;
  STURGEON_CHECK(sum <= budget_w_ * (1.0 + 1e-9) + 1e-6,
                 "LeaseLedger: autonomous caps oversubscribe the budget ("
                     << sum << " W > " << budget_w_ << " W)");
  const std::size_t n = autonomous_.size();
  acked_.resize(n);
  outstanding_.resize(n);
  expired_unacked_seq_.assign(n, 0);
  seq_.assign(n, 0);
}

std::uint64_t LeaseLedger::next_seq(int node) {
  return ++seq_[static_cast<std::size_t>(node)];
}

bool LeaseLedger::on_ack(int node, std::uint64_t ack_seq) {
  const auto i = static_cast<std::size_t>(node);
  if (ack_seq == 0 || ack_seq <= acked_[i].seq) return false;
  // The node adopted ack_seq: it can never again run any lower seq, so
  // every candidate at or below it retires. If the adopted grant is
  // still in the outstanding list we learn its parameters; if it was
  // pruned as expired, only its autonomous scenario remains.
  LeaseCandidate adopted{ack_seq, 0.0, kExpiredForever};
  auto& out = outstanding_[i];
  for (const LeaseCandidate& cand : out) {
    if (cand.seq == ack_seq) adopted = cand;
  }
  out.erase(std::remove_if(out.begin(), out.end(),
                           [ack_seq](const LeaseCandidate& cand) {
                             return cand.seq <= ack_seq;
                           }),
            out.end());
  if (expired_unacked_seq_[i] <= ack_seq) expired_unacked_seq_[i] = 0;
  acked_[i] = adopted;
  return true;
}

void LeaseLedger::prune(int t) {
  for (std::size_t i = 0; i < outstanding_.size(); ++i) {
    auto& out = outstanding_[i];
    auto expired = [t](const LeaseCandidate& cand) {
      return cand.expiry_epoch <= t;
    };
    for (const LeaseCandidate& cand : out) {
      if (expired(cand)) {
        expired_unacked_seq_[i] = std::max(expired_unacked_seq_[i], cand.seq);
      }
    }
    out.erase(std::remove_if(out.begin(), out.end(), expired), out.end());
  }
}

bool LeaseLedger::maybe_autonomous(int node, int t_future) const {
  const auto i = static_cast<std::size_t>(node);
  if (acked_[i].seq == 0) return true;  // never adopted any lease
  if (acked_[i].expiry_epoch <= t_future) return true;
  // The node may have silently adopted a newer grant that already
  // expired (ack lost) ...
  if (expired_unacked_seq_[i] > acked_[i].seq) return true;
  // ... or may adopt an in-flight grant that expires by t_future.
  for (const LeaseCandidate& cand : outstanding_[i]) {
    if (cand.expiry_epoch <= t_future) return true;
  }
  return false;
}

double LeaseLedger::reserve(int node, int t_future) const {
  const auto i = static_cast<std::size_t>(node);
  double r = maybe_autonomous(node, t_future) ? autonomous_[i] : 0.0;
  if (acked_[i].seq != 0 && acked_[i].expiry_epoch > t_future) {
    r = std::max(r, acked_[i].cap_w);
  }
  for (const LeaseCandidate& cand : outstanding_[i]) {
    if (cand.expiry_epoch > t_future) r = std::max(r, cand.cap_w);
  }
  return r;
}

double LeaseLedger::max_grant(int node, int expiry_epoch, int t) const {
  STURGEON_CHECK(expiry_epoch > t, "LeaseLedger::max_grant: expiry "
                                       << expiry_epoch << " not after t=" << t);
  // Reserves are piecewise constant in t', changing only at candidate
  // expiries, so checking every breakpoint >= t covers all of time.
  std::vector<int> breakpoints{t, expiry_epoch};
  const std::size_t n = autonomous_.size();
  for (std::size_t j = 0; j < n; ++j) {
    if (acked_[j].seq != 0 && acked_[j].expiry_epoch > t) {
      breakpoints.push_back(acked_[j].expiry_epoch);
    }
    for (const LeaseCandidate& cand : outstanding_[j]) {
      if (cand.expiry_epoch > t) breakpoints.push_back(cand.expiry_epoch);
    }
  }
  std::sort(breakpoints.begin(), breakpoints.end());
  breakpoints.erase(std::unique(breakpoints.begin(), breakpoints.end()),
                    breakpoints.end());

  double cap = std::numeric_limits<double>::infinity();
  for (const int tp : breakpoints) {
    double others = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (static_cast<int>(j) != node) others += reserve(static_cast<int>(j), tp);
    }
    const double room = budget_w_ - others;
    if (tp < expiry_epoch) {
      // While the new grant is live its cap joins the candidate max.
      cap = std::min(cap, room);
    } else if (std::max(reserve(node, tp), autonomous_w(node)) >
               room + budget_w_ * 1e-9 + 1e-6) {
      // Past its expiry the grant adds an autonomous scenario; if the
      // budget cannot absorb that, no grant with this expiry is safe.
      // The slack mirrors note_cap_sum's: when the autonomous split
      // consumes the whole budget, `budget - sum(others)` lands a few
      // ulps below this node's own share and must not read as overflow.
      return -1.0;
    }
  }
  return cap;
}

void LeaseLedger::record_grant(int node, const CapGrant& grant) {
  outstanding_[static_cast<std::size_t>(node)].push_back(
      LeaseCandidate{grant.seq, grant.cap_w, grant.expiry_epoch});
}

}  // namespace sturgeon::comms
