// Typed coordinator<->node protocol messages and the comms configuration.
//
// The lockstep engines pass caps and reports through shared memory; at
// fleet scale those are network messages, and the budget-safety story
// has to survive the network losing, delaying, duplicating and
// reordering them. This header defines the wire format:
//
//   CapGrant       coordinator -> node. A cap is a LEASE: it carries an
//                  expiry epoch, and a node whose lease lapses without
//                  renewal falls back to its conservative autonomous cap
//                  (static-equal share of the cluster budget, floored at
//                  idle power). Sequence numbers are per-node monotone;
//                  nodes adopt only seq increases, which makes duplicate
//                  and reordered deliveries idempotent.
//   NodeReportMsg  node -> coordinator. The node's last-epoch NodeReport
//                  plus its heartbeat (last_step_epoch), the highest
//                  grant seq it adopted (cumulative ack) and how many
//                  epochs it has spent on its autonomous cap.
//   Heartbeat      node -> coordinator, report-free liveness for nodes
//                  with nothing new to say (quiescent fleet sleepers).
//
// Everything is plain data: the channel (channel.h) moves Message values
// between per-link queues, the lease machinery (lease.h) interprets
// them, and the fabric (fabric.h) wires both into the engines.
#pragma once

#include <cstdint>

#include "cluster/coordinator.h"
#include "fault/injector.h"

namespace sturgeon::comms {

enum class MsgKind { kCapGrant, kNodeReport, kHeartbeat };

const char* to_string(MsgKind kind);

/// One cap lease from the coordinator to a node.
struct CapGrant {
  std::uint64_t seq = 0;  ///< per-node monotone; 0 means "no lease"
  double cap_w = 0.0;
  /// First epoch the lease no longer covers. Term-aligned: every grant
  /// inside a lease term expires at the term boundary, so in steady
  /// state the whole fleet's leases roll over together and a renewal
  /// never has to fit beside a mix of half-expired caps.
  int expiry_epoch = 0;
  int granted_at = 0;  ///< epoch the coordinator issued it
};

/// One node's epoch report on the wire.
struct NodeReportMsg {
  std::uint64_t seq = 0;  ///< per-node monotone report counter
  int node = -1;
  cluster::NodeReport report;
  int last_step_epoch = -1;  ///< the node's heartbeat
  /// Cumulative ack: highest grant seq this node has adopted. Riding on
  /// every report means a lost ack heals with the next report.
  std::uint64_t ack_seq = 0;
  /// Cumulative epochs this node has run on its autonomous fallback
  /// cap. An increase tells the coordinator the node's lease lapsed in
  /// between -- the rejoin-under-expired-lease signal the
  /// HeartbeatTracker turns into a one-shot rebase.
  std::uint64_t autonomy_epochs = 0;
};

/// Report-free liveness beat (same ack/autonomy piggyback).
struct Heartbeat {
  int node = -1;
  int epoch = -1;  ///< epoch the node considers itself healthy through
  std::uint64_t ack_seq = 0;
  std::uint64_t autonomy_epochs = 0;
};

/// Fat wire message: `kind` selects which payload is meaningful.
struct Message {
  MsgKind kind = MsgKind::kHeartbeat;
  CapGrant grant;
  NodeReportMsg report;
  Heartbeat beat;
};

struct CommsConfig {
  /// Route coordinator<->node traffic through the message channel. Off
  /// by default: the engines keep their direct shared-memory paths and
  /// nothing below is consulted.
  bool enabled = false;
  /// Lease term length. Grants expire at the next term boundary (epoch
  /// multiples of this), so all leases in a term lapse together.
  int lease_epochs = 16;
  /// Renewal window: within this many epochs of the term boundary,
  /// grants are stamped with the FOLLOWING boundary and settled leases
  /// become due for renewal. Must exceed the grant->ack round trip
  /// (2 epochs) or every term boundary causes a spurious lapse.
  int renew_ahead_epochs = 4;
  /// A lease within this many watts of the coordinator's desired cap
  /// counts as settled (no re-send).
  double grant_epsilon_w = 1e-6;
  /// Bounded-exponential re-send backoff, in epochs (src/fault/retry
  /// discipline, on the virtual epoch clock).
  int retry_base_epochs = 1;
  int retry_max_epochs = 8;
  /// Deterministic jitter fraction on the backoff (0 = none, 1 = the
  /// delay is scaled by a seeded uniform draw from [0.5, 1.5)).
  double retry_jitter = 0.5;
  /// Link perturbation. All-zero (the default) makes the channel
  /// RELIABLE: same-epoch delivery, no lease clamping, no retries --
  /// bit-identical to the direct shared-memory paths.
  fault::NetworkFaultConfig network;
};

/// derive_seed stream label for the comms fabric (channel link streams
/// and retry jitter fork from the derived seed).
inline constexpr std::uint64_t kCommsStream = 0xC0;

}  // namespace sturgeon::comms
