// Simulated coordinator<->node message fabric with per-link fault
// injection.
//
// One MessageChannel carries all 2N links of a fleet: a "down" link
// (coordinator -> node) and an "up" link (node -> coordinator) per
// node. Each link owns a fault::LinkFaultInjector seeded from the
// channel seed and the link identity, so every link's drop / delay /
// duplicate / reorder schedule is an independent deterministic stream
// -- chaos-net runs are bit-reproducible across thread counts because
// all sends and receives happen in the engines' sequential phases.
//
// Delivery model (virtual epoch clock, no wall time):
//   - a message sent at epoch t is normally receivable at epoch t
//     (same-epoch delivery: the coordinator's grant reaches the node
//     before the node steps, exactly like the lockstep direct path);
//   - a delay fault postpones delivery by 1..max_delay_epochs;
//   - a duplicate fault delivers a second copy one epoch after the
//     first (the interesting case for idempotence: the dupe arrives in
//     a LATER receive batch);
//   - receives drain every message with deliver_epoch <= t, ordered by
//     (deliver_epoch, order_key, send sequence). Non-reordered sends
//     carry monotone order keys (FIFO); a reorder fault assigns a
//     random key that sorts the message ahead of / between its batch.
//
// Accounting identity (validated end-to-end by trace_stats):
//   sent == delivered + dropped + in_flight
// where all four count PRIMARY envelopes only; duplicate copies are
// tracked separately in `duplicated` and never enter the identity.
#pragma once

#include <cstdint>
#include <vector>

#include "comms/message.h"
#include "fault/injector.h"

namespace sturgeon::comms {

/// Channel-level accounting. `sent`, `delivered`, `dropped` count
/// primary envelopes; `in_flight()` is what is still queued.
struct ChannelStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;     ///< lost to drop faults or partitions
  std::uint64_t delayed = 0;     ///< delivered late (subset of delivered)
  std::uint64_t duplicated = 0;  ///< extra copies injected (not in sent)

  std::uint64_t in_flight() const { return sent - delivered - dropped; }
};

class MessageChannel {
 public:
  /// `seed` should be derive_seed(engine seed, kCommsStream); link
  /// injectors fork from it per (direction, node).
  MessageChannel(const fault::NetworkFaultConfig& network, std::uint64_t seed,
                 int nodes);

  /// True when no perturbation is configured: every send is delivered
  /// in the same epoch, in FIFO order, exactly once.
  bool reliable() const { return reliable_; }
  int nodes() const { return static_cast<int>(to_node_.size()); }

  void send_to_node(int node, const Message& message, int t);
  void send_to_coord(int node, const Message& message, int t);

  /// Drain everything receivable at epoch `t` (deliver_epoch <= t), in
  /// deterministic delivery order.
  std::vector<Message> recv_node(int node, int t);
  std::vector<Message> recv_coord(int t);

  /// All-links totals, and the cap-grant subset (send_to_node messages
  /// of kind kCapGrant) for the grants_sent identity.
  const ChannelStats& stats() const { return stats_; }
  const ChannelStats& grant_stats() const { return grant_stats_; }

 private:
  struct Envelope {
    Message message;
    int deliver_epoch = 0;
    std::uint64_t order_key = 0;
    std::uint64_t send_seq = 0;  ///< global send order tie-break
    bool duplicate = false;
  };

  void send(std::vector<Envelope>& queue, fault::LinkFaultInjector* link,
            const Message& message, int t, bool grant);
  std::vector<Message> recv(std::vector<Envelope>& queue, int t);

  bool reliable_ = true;
  std::vector<fault::LinkFaultInjector> down_links_;  // coordinator -> node
  std::vector<fault::LinkFaultInjector> up_links_;    // node -> coordinator
  std::vector<std::vector<Envelope>> to_node_;
  std::vector<Envelope> to_coord_;
  std::uint64_t send_seq_ = 0;
  ChannelStats stats_;
  ChannelStats grant_stats_;
};

}  // namespace sturgeon::comms
