// SimulatedServer: the co-located machine, stepped in 1 s controller
// intervals. Combines the M/G/k LS queue, the BE throughput model, the
// LLC way model, the package power model and the interference processes
// into the response surface a Sturgeon-style controller observes:
//
//   partition <C1,F1,L1; C2,F2,L2> + load  ->  (p95 latency, BE
//   throughput, package power, bandwidth, violations)
//
// It is the stand-in for the paper's Xeon + CAT + RAPL + tailbench
// testbed (see DESIGN.md section 2).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/interference.h"
#include "sim/ls_queue.h"
#include "sim/power_model.h"
#include "util/types.h"
#include "workloads/app_profile.h"

namespace sturgeon::sim {

/// Per-slice view of one telemetry sample: how each co-scheduled
/// workload fared this interval, in WorkloadSet order. Pair servers emit
/// two entries (LS then BE); the fields not applicable to a slice's kind
/// stay zero.
struct SliceTelemetry {
  WorkloadKind kind = WorkloadKind::kBestEffort;
  AppSlice slice;              ///< resources the workload held
  double p95_ms = 0.0;         ///< LS only
  double qos_target_ms = 0.0;  ///< LS only
  bool qos_met = true;         ///< LS only; always true for BE
  double throughput = 0.0;       ///< BE only (abstract ops/s)
  double throughput_norm = 0.0;  ///< BE only, normalized to solo
};

/// One 1 s telemetry sample, the unit of observation for controllers and
/// for offline model training.
struct ServerTelemetry {
  double load_fraction = 0.0;  ///< input load (0..1 of LS peak)
  double qps_real = 0.0;       ///< real-scale queries per second

  IntervalStats ls;            ///< queueing stats (latencies in ms)
  double qos_target_ms = 0.0;

  double power_w = 0.0;        ///< package power (RAPL analogue), peak of
                               ///< the interval as the paper trains on
  double bw_gbps = 0.0;        ///< total memory traffic

  double be_throughput = 0.0;       ///< abstract ops/s
  double be_throughput_norm = 0.0;  ///< normalized to the solo run
  double be_ipc = 0.0;              ///< per-core-cycle efficiency proxy

  double interference_factor = 1.0;  ///< hidden disturbance (ground truth;
                                     ///< controllers must not read this)

  /// Per-workload breakdown in WorkloadSet order (LS then BE for pair
  /// servers); the scalar fields above are the K = 2 roll-up.
  std::vector<SliceTelemetry> slices;

  bool qos_met() const { return ls.p95_ms <= qos_target_ms; }
};

struct ServerConfig {
  MachineSpec machine = MachineSpec::xeon_e5_2630_v4();
  PowerCoefficients power = {};
  InterferenceConfig interference = {};
  /// Gaussian relative noise on reported power (sensor jitter).
  double power_noise = 0.01;
};

class SimulatedServer {
 public:
  SimulatedServer(const LsProfile& ls, const BeProfile& be,
                  std::uint64_t seed, ServerConfig config = {});

  /// Apply a resource configuration; takes effect from the next step()
  /// (the few-ms actuation latency of cpuset/CAT/DVFS is below the 1 s
  /// interval resolution). Throws if invalid for the machine, except that
  /// an empty BE slice (cores == 0) is allowed: it models the paper's
  /// initial all-to-LS allocation.
  void set_partition(const Partition& p);
  const Partition& partition() const { return partition_; }

  /// K-way adapters over the pair simulator (exactly K = 2; throws
  /// otherwise -- the physical model simulates one LS + one BE).
  void set_allocation(const Allocation& a);
  Allocation allocation() const { return Allocation::of(partition_); }

  /// Advance one second at `load_fraction` of the LS peak load.
  ServerTelemetry step(double load_fraction);

  /// Restart queue/interference state (new experiment, same profiles).
  void reset();

  const MachineSpec& machine() const { return config_.machine; }
  const LsProfile& ls_profile() const { return ls_; }
  const BeProfile& be_profile() const { return be_; }
  const PowerModel& power_model() const { return power_model_; }

  /// Solo-run BE throughput (whole machine, max frequency): the paper's
  /// normalization baseline for Figs 3 and 10.
  double be_solo_throughput() const;

  /// The node power budget: package power when the LS service alone runs
  /// the whole machine at its peak load (paper Section III-B).
  double power_budget_w() const;

  /// Mean per-request LS demand (ms) under slice `s` with bandwidth
  /// overcommit `bw_overcommit` and interference `interference`; exposed
  /// for calibration tests.
  double ls_mean_demand_ms(const AppSlice& s, double bw_overcommit,
                           double interference) const;

  /// BE throughput (abstract ops/s) for slice `s` before bandwidth
  /// contention; exposed for calibration tests.
  double be_raw_throughput(const AppSlice& s) const;

 private:
  /// Bandwidth demand of each side and the resulting overcommit ratio.
  struct BwState {
    double ls_gbps = 0.0;
    double be_gbps = 0.0;
    double overcommit = 0.0;  ///< max(0, total/capacity - 1)
  };
  BwState bandwidth_state(double load_fraction, double be_thr_raw) const;

  LsProfile ls_;
  BeProfile be_;
  ServerConfig config_;
  PowerModel power_model_;
  Partition partition_;
  LsQueueSim queue_;
  InterferenceProcess interference_;
  Rng noise_rng_;
};

}  // namespace sturgeon::sim
