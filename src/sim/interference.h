// Unpredictable-interference process: occasional multi-second episodes
// (OS interrupt storms, network bursts, contention on unmanaged hardware)
// that inflate LS service demand by a factor the offline-trained models
// cannot know about. This is precisely the disturbance the paper's
// resource balancer exists to absorb (Section VI); with the balancer
// disabled ("Sturgeon-NoB") these episodes surface as QoS violations.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace sturgeon::sim {

struct InterferenceConfig {
  double episode_rate_per_s = 0.008;  ///< Poisson onset rate
  double min_duration_s = 2.0;
  double max_duration_s = 5.0;
  double min_factor = 1.12;  ///< LS demand multiplier during an episode
  double max_factor = 1.30;
  bool enabled = true;
};

class InterferenceProcess {
 public:
  InterferenceProcess(InterferenceConfig config, std::uint64_t seed);

  /// Advance one second; returns the LS demand multiplier (>= 1) in
  /// effect for that second.
  double step();

  bool active() const { return remaining_s_ > 0; }

 private:
  InterferenceConfig config_;
  Rng rng_;
  int remaining_s_ = 0;
  double factor_ = 1.0;
};

}  // namespace sturgeon::sim
