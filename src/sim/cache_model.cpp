#include "sim/cache_model.h"

#include <algorithm>
#include <stdexcept>

namespace sturgeon::sim {

double ways_to_mb(const MachineSpec& m, int ways) {
  if (ways < 0 || ways > m.llc_ways) {
    throw std::invalid_argument("ways_to_mb: ways outside [0, llc_ways]");
  }
  return m.llc_mb * static_cast<double>(ways) /
         static_cast<double>(m.llc_ways);
}

double miss_ratio(const MachineSpec& m, int ways, double wss_mb) {
  if (wss_mb <= 0.0) return 0.0;
  const double alloc = ways_to_mb(m, ways);
  const double base = wss_mb / (wss_mb + alloc);
  return base * base;
}

double cache_inflation(const MachineSpec& m, int ways, double wss_mb,
                       double sensitivity) {
  if (sensitivity < 0.0) {
    throw std::invalid_argument("cache_inflation: negative sensitivity");
  }
  return 1.0 + sensitivity * miss_ratio(m, ways, wss_mb);
}

double bw_fraction(const MachineSpec& m, int ways, double wss_mb) {
  const double at_one_way = miss_ratio(m, 1, wss_mb);
  if (at_one_way <= 0.0) return 0.0;
  return miss_ratio(m, ways, wss_mb) / at_one_way;
}

}  // namespace sturgeon::sim
