#include "sim/server.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/cache_model.h"
#include "util/check.h"
#include "util/invariants.h"
#include "util/rng.h"

namespace sturgeon::sim {

SimulatedServer::SimulatedServer(const LsProfile& ls, const BeProfile& be,
                                 std::uint64_t seed, ServerConfig config)
    : ls_(ls),
      be_(be),
      config_(config),
      power_model_(config.machine, config.power),
      partition_(Partition::all_to_ls(config.machine)),
      queue_(derive_seed(seed, 0)),
      interference_(config.interference, derive_seed(seed, 1)),
      noise_rng_(derive_seed(seed, 2)) {}

void SimulatedServer::set_allocation(const Allocation& a) {
  if (a.size() != 2) {
    throw std::invalid_argument(
        "set_allocation: pair simulator cannot express K = " +
        std::to_string(a.size()));
  }
  set_partition(a.to_partition());
}

void SimulatedServer::set_partition(const Partition& p) {
  const bool be_empty = p.be.cores == 0;
  if (be_empty) {
    // All-to-LS mode: only the LS slice must be well-formed.
    if (!(p.ls.cores >= 1 && p.ls.cores <= config_.machine.num_cores &&
          p.ls.llc_ways >= 1 && p.ls.llc_ways <= config_.machine.llc_ways &&
          p.ls.freq_level >= 0 &&
          p.ls.freq_level < config_.machine.num_freq_levels())) {
      throw std::invalid_argument("set_partition: bad LS slice " +
                                  p.to_string(config_.machine));
    }
  } else if (!p.valid_for(config_.machine)) {
    throw std::invalid_argument("set_partition: invalid partition " +
                                p.to_string(config_.machine));
  }
  partition_ = p;
}

void SimulatedServer::reset() {
  queue_.reset();
  interference_ = InterferenceProcess(config_.interference,
                                      noise_rng_.next_u64());
  partition_ = Partition::all_to_ls(config_.machine);
}

double SimulatedServer::ls_mean_demand_ms(const AppSlice& s,
                                          double bw_overcommit,
                                          double interference) const {
  const double f = config_.machine.freq_at(s.freq_level);
  const double cache = cache_inflation(config_.machine, s.llc_ways,
                                       ls_.cache_wss_mb,
                                       ls_.cache_sensitivity);
  const double ls_miss = miss_ratio(config_.machine, s.llc_ways,
                                    ls_.cache_wss_mb);
  // Bandwidth contention hurts in proportion to how much the LS service
  // actually goes to memory (its miss ratio): giving the LS slice more
  // LLC shields it, which is the indirect regulation the balancer uses.
  const double bw = 1.0 + ls_.bw_sensitivity * bw_overcommit * ls_miss /
                              std::max(1e-9, miss_ratio(config_.machine, 1,
                                                        ls_.cache_wss_mb));
  return ls_.work_ghz_ms / f * cache * bw * interference;
}

double SimulatedServer::be_raw_throughput(const AppSlice& s) const {
  if (s.cores <= 0) return 0.0;
  const double f = config_.machine.freq_at(s.freq_level);
  const double f_norm = f / config_.machine.max_freq_ghz();
  const double cache = cache_inflation(config_.machine, std::max(1, s.llc_ways),
                                       be_.cache_wss_mb,
                                       be_.cache_sensitivity);
  return be_.base_ops_per_core *
         amdahl_speedup(s.cores, be_.parallel_fraction) *
         std::pow(f_norm, be_.freq_exponent) / cache;
}

double SimulatedServer::be_solo_throughput() const {
  AppSlice solo{config_.machine.num_cores, config_.machine.max_freq_level(),
                config_.machine.llc_ways};
  // Solo run: the whole LLC, no co-runner -> no bandwidth overcommit
  // (per-app demands are below machine bandwidth by construction).
  return be_raw_throughput(solo);
}

SimulatedServer::BwState SimulatedServer::bandwidth_state(
    double load_fraction, double be_thr_raw) const {
  BwState bw;
  const double ls_miss_now = miss_ratio(config_.machine,
                                        std::max(1, partition_.ls.llc_ways),
                                        ls_.cache_wss_mb);
  // LS traffic is referenced to a half-LLC allocation (its typical
  // co-location share) and capped: squeezing the LS slice raises its
  // traffic, but a leaf service's request stream bounds how much.
  const double ls_miss_ref = miss_ratio(
      config_.machine, std::max(1, config_.machine.llc_ways / 2),
      ls_.cache_wss_mb);
  const double ls_ratio =
      ls_miss_ref > 0 ? std::min(3.0, ls_miss_now / ls_miss_ref) : 1.0;
  bw.ls_gbps = ls_.bw_gbps_at_peak * load_fraction * ls_ratio;

  if (partition_.be.cores > 0) {
    const double be_miss_now = miss_ratio(config_.machine,
                                          std::max(1, partition_.be.llc_ways),
                                          be_.cache_wss_mb);
    const double be_miss_full = miss_ratio(
        config_.machine, config_.machine.llc_ways, be_.cache_wss_mb);
    const double thr_norm = be_thr_raw / std::max(1e-9, be_solo_throughput());
    bw.be_gbps = be_.bw_gbps_max * thr_norm *
                 (be_miss_full > 0 ? be_miss_now / be_miss_full : 1.0);
  }
  const double total = bw.ls_gbps + bw.be_gbps;
  bw.overcommit = std::max(0.0, total / config_.machine.mem_bw_gbps - 1.0);
  return bw;
}

ServerTelemetry SimulatedServer::step(double load_fraction) {
  if (load_fraction < 0.0 || load_fraction > 1.0) {
    throw std::invalid_argument("step: load_fraction outside [0,1]");
  }
  ServerTelemetry t;
  t.load_fraction = load_fraction;
  t.qps_real = load_fraction * ls_.peak_qps;
  t.qos_target_ms = ls_.qos_target_ms;
  t.interference_factor = interference_.step();

  // Best-effort side first (its bandwidth pressure feeds the LS demand).
  const double be_thr_raw = be_raw_throughput(partition_.be);
  const BwState bw = bandwidth_state(load_fraction, be_thr_raw);
  t.bw_gbps = bw.ls_gbps + bw.be_gbps;

  // Bandwidth saturation throttles the BE application too.
  t.be_throughput = be_thr_raw / (1.0 + bw.overcommit);
  t.be_throughput_norm = t.be_throughput / std::max(1e-9,
                                                    be_solo_throughput());
  if (partition_.be.cores > 0) {
    const double f = config_.machine.freq_at(partition_.be.freq_level);
    t.be_ipc = t.be_throughput /
               (static_cast<double>(partition_.be.cores) * f);
  }

  // Latency-sensitive side: one second of queueing.
  const double demand_ms = ls_mean_demand_ms(partition_.ls, bw.overcommit,
                                             t.interference_factor);
  const double qps_sim = load_fraction * ls_.sim_peak_qps();
  t.ls = queue_.step(1000.0, partition_.ls.cores, qps_sim, demand_ms,
                     ls_.service_cv, ls_.qos_target_ms);

  // Package power: the paper trains on interval-peak power; our model is
  // quasi-static so the mean is the peak, plus sensor noise.
  const double be_util = partition_.be.cores > 0 ? 1.0 : 0.0;
  const double power = power_model_.package_power_w(
      partition_.ls, t.ls.utilization, ls_.power_activity, partition_.be,
      be_util, be_.power_activity, t.bw_gbps);
  t.power_w = power * (1.0 + noise_rng_.normal(0.0, config_.power_noise));

  // The sample crosses into the telemetry/controller layers: everything a
  // controller reads must be finite, and rates/powers non-negative.
  STURGEON_DCHECK(std::isfinite(t.power_w) && t.power_w >= 0.0,
                  "step: power = " << t.power_w);
  STURGEON_DCHECK(std::isfinite(t.ls.p95_ms) && t.ls.p95_ms >= 0.0,
                  "step: p95 = " << t.ls.p95_ms);
  STURGEON_DCHECK(std::isfinite(t.be_throughput) && t.be_throughput >= 0.0,
                  "step: be throughput = " << t.be_throughput);
  STURGEON_DCHECK(std::isfinite(t.bw_gbps) && t.bw_gbps >= 0.0,
                  "step: bandwidth = " << t.bw_gbps);

  // Per-workload breakdown (LS then BE), the K-way view of the sample.
  SliceTelemetry ls_view;
  ls_view.kind = WorkloadKind::kLatencySensitive;
  ls_view.slice = partition_.ls;
  ls_view.p95_ms = t.ls.p95_ms;
  ls_view.qos_target_ms = t.qos_target_ms;
  ls_view.qos_met = t.qos_met();
  SliceTelemetry be_view;
  be_view.kind = WorkloadKind::kBestEffort;
  be_view.slice = partition_.be;
  be_view.throughput = t.be_throughput;
  be_view.throughput_norm = t.be_throughput_norm;
  t.slices = {ls_view, be_view};
  return t;
}

double SimulatedServer::power_budget_w() const {
  // The LS service alone on the whole machine at peak load: analytic
  // utilization = arrival rate x mean demand / cores.
  const MachineSpec& m = config_.machine;
  AppSlice all{m.num_cores, m.max_freq_level(), m.llc_ways};
  const double demand_ms = ls_mean_demand_ms(all, 0.0, 1.0);
  const double qps_sim = ls_.sim_peak_qps();
  const double util = std::min(
      1.0, qps_sim / 1000.0 * demand_ms / static_cast<double>(m.num_cores));
  const double bw = ls_.bw_gbps_at_peak;
  AppSlice none{0, 0, 0};
  return power_model_.package_power_w(all, util, ls_.power_activity, none,
                                      0.0, 0.0, bw);
}

}  // namespace sturgeon::sim
