#include "sim/ls_queue.h"

#include <algorithm>
#include <stdexcept>

#include "util/stats.h"

namespace sturgeon::sim {

namespace {
constexpr auto kMinHeap = std::greater<>{};
}  // namespace

LsQueueSim::LsQueueSim(std::uint64_t seed) : rng_(seed) {}

void LsQueueSim::reset() {
  server_free_.clear();
  waiting_ = {};
  now_ms_ = 0.0;
}

std::uint64_t LsQueueSim::backlog() const {
  std::uint64_t in_service = 0;
  for (double f : server_free_) {
    if (f > now_ms_) ++in_service;
  }
  return waiting_.size() + in_service;
}

IntervalStats LsQueueSim::step(double dt_ms, int servers, double qps,
                               double mean_service_ms, double service_cv,
                               double qos_target_ms) {
  if (dt_ms <= 0.0 || qps < 0.0 || mean_service_ms <= 0.0 ||
      qos_target_ms <= 0.0) {
    throw std::invalid_argument("LsQueueSim::step: bad arguments");
  }
  const double end_ms = now_ms_ + dt_ms;
  IntervalStats stats;

  // `server_free_` holds per-server free times. Resize to the current core
  // count: grown servers become free immediately; on shrink the least-
  // backlogged servers are removed (their in-service request migrates, as
  // cpuset rebalancing would do on real hardware).
  while (static_cast<int>(server_free_.size()) > servers &&
         !server_free_.empty()) {
    std::pop_heap(server_free_.begin(), server_free_.end(), kMinHeap);
    server_free_.pop_back();
  }
  while (static_cast<int>(server_free_.size()) < servers) {
    server_free_.push_back(now_ms_);
    std::push_heap(server_free_.begin(), server_free_.end(), kMinHeap);
  }

  std::vector<double> latencies;
  double busy_time_ms = 0.0;

  const auto try_dispatch = [&](double arrival_ms) -> bool {
    if (server_free_.empty()) return false;
    const double start = std::max(arrival_ms, server_free_.front());
    if (start >= end_ms) return false;  // next config serves it instead
    const double service = rng_.lognormal_mean_cv(mean_service_ms, service_cv);
    std::pop_heap(server_free_.begin(), server_free_.end(), kMinHeap);
    server_free_.back() = start + service;
    std::push_heap(server_free_.begin(), server_free_.end(), kMinHeap);
    const double latency = start + service - arrival_ms;
    latencies.push_back(latency);
    ++stats.completed;
    if (latency > qos_target_ms) ++stats.qos_violations;
    busy_time_ms += service;
    return true;
  };

  // First serve the backlog carried over from previous intervals.
  while (!waiting_.empty()) {
    if (!try_dispatch(waiting_.front())) break;
    waiting_.pop();
  }

  // Poisson arrivals over this interval (rate per ms).
  const double rate_per_ms = qps / 1000.0;
  if (rate_per_ms > 0.0) {
    double t = now_ms_;
    for (;;) {
      t += rng_.exponential(rate_per_ms);
      if (t >= end_ms) break;
      ++stats.arrivals;
      if (!waiting_.empty() || !try_dispatch(t)) {
        if (waiting_.size() >= kMaxWaiting) {
          ++stats.qos_violations;  // dropped: counts against QoS
        } else {
          waiting_.push(t);
        }
      }
    }
  }

  now_ms_ = end_ms;

  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    stats.p95_ms = percentile_sorted(latencies, 95.0);
    stats.p99_ms = percentile_sorted(latencies, 99.0);
    double sum = 0.0;
    for (double l : latencies) sum += l;
    stats.mean_ms = sum / static_cast<double>(latencies.size());
  } else if (!waiting_.empty()) {
    // Nothing dispatched but work is queued: report the age of the oldest
    // waiting request so controllers see the building latency.
    const double age = now_ms_ - waiting_.front();
    stats.p95_ms = stats.p99_ms = stats.mean_ms = age;
  }

  stats.utilization =
      servers > 0
          ? std::min(1.0,
                     busy_time_ms / (static_cast<double>(servers) * dt_ms))
          : 0.0;
  stats.backlog = backlog();
  return stats;
}

}  // namespace sturgeon::sim
