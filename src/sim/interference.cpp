#include "sim/interference.h"

#include <stdexcept>

namespace sturgeon::sim {

InterferenceProcess::InterferenceProcess(InterferenceConfig config,
                                         std::uint64_t seed)
    : config_(config), rng_(seed) {
  if (config.episode_rate_per_s < 0.0 || config.min_factor < 1.0 ||
      config.max_factor < config.min_factor ||
      config.min_duration_s < 0.0 ||
      config.max_duration_s < config.min_duration_s) {
    throw std::invalid_argument("InterferenceConfig: bad parameters");
  }
}

double InterferenceProcess::step() {
  if (!config_.enabled) return 1.0;
  if (remaining_s_ > 0) {
    --remaining_s_;
    return factor_;
  }
  // One Bernoulli draw per second approximates the Poisson onset.
  if (rng_.bernoulli(config_.episode_rate_per_s)) {
    remaining_s_ = static_cast<int>(
        rng_.uniform(config_.min_duration_s, config_.max_duration_s) + 0.5);
    factor_ = rng_.uniform(config_.min_factor, config_.max_factor);
    if (remaining_s_ > 0) {
      --remaining_s_;
      return factor_;
    }
  }
  factor_ = 1.0;
  return 1.0;
}

}  // namespace sturgeon::sim
