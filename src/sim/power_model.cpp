#include "sim/power_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sturgeon::sim {

PowerModel::PowerModel(const MachineSpec& machine, PowerCoefficients coeffs)
    : machine_(machine), coeffs_(coeffs) {
  if (coeffs_.uncore_w < 0 || coeffs_.core_static_w < 0 || coeffs_.k_dyn < 0 ||
      coeffs_.alpha <= 0 || coeffs_.util_floor < 0 ||
      coeffs_.util_floor > 1.0 || coeffs_.k_bw_w_per_gbps < 0) {
    throw std::invalid_argument("PowerModel: bad coefficients");
  }
}

double PowerModel::slice_power_w(int cores, int freq_level, double util,
                                 double activity) const {
  if (cores < 0 || cores > machine_.num_cores) {
    throw std::invalid_argument("slice_power_w: bad core count");
  }
  if (cores == 0) return 0.0;
  const double f = machine_.freq_at(freq_level);
  util = std::clamp(util, 0.0, 1.0);
  const double u = coeffs_.util_floor + (1.0 - coeffs_.util_floor) * util;
  const double dyn = activity * coeffs_.k_dyn * std::pow(f, coeffs_.alpha) * u;
  return static_cast<double>(cores) * (coeffs_.core_static_w + dyn);
}

double PowerModel::package_power_w(const AppSlice& ls, double ls_util,
                                   double ls_activity, const AppSlice& be,
                                   double be_util, double be_activity,
                                   double total_bw_gbps) const {
  return coeffs_.uncore_w +
         slice_power_w(ls.cores, ls.freq_level, ls_util, ls_activity) +
         slice_power_w(be.cores, be.freq_level, be_util, be_activity) +
         coeffs_.k_bw_w_per_gbps * std::max(0.0, total_bw_gbps);
}

double PowerModel::max_package_power_w() const {
  const AppSlice all{machine_.num_cores, machine_.max_freq_level(),
                     machine_.llc_ways};
  const AppSlice none{0, 0, 0};
  return package_power_w(all, 1.0, 1.0, none, 0.0, 0.0, 0.0);
}

}  // namespace sturgeon::sim
