// Discrete-event M/G/k queue for the latency-sensitive service.
//
// Requests arrive as a Poisson process and are served FCFS by `k`
// identical servers (the cores allocated to the LS slice); per-request
// service demand is lognormal around the mean demand implied by the
// current frequency / cache / interference state. This reproduces the
// mechanism behind real leaf-service tail latency -- queueing delay that
// explodes as utilization approaches 1 -- rather than curve-fitting
// latency, so controllers face the same cliff the paper's testbed shows.
//
// The queue carries state across 1 s controller intervals: requests left
// waiting at an interval boundary are dispatched under the *next*
// interval's configuration, which is what makes sustained overload
// visible to controllers as growing tails, and recovery effective once
// resources are added.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "util/rng.h"

namespace sturgeon::sim {

/// Telemetry for one simulated interval.
struct IntervalStats {
  std::uint64_t arrivals = 0;
  std::uint64_t completed = 0;
  std::uint64_t qos_violations = 0;  ///< completions above the QoS target
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double utilization = 0.0;  ///< busy core-time / available core-time
  std::uint64_t backlog = 0; ///< requests still queued or in service
};

class LsQueueSim {
 public:
  explicit LsQueueSim(std::uint64_t seed);

  /// Simulate `dt_ms` of wall-clock with `servers` cores, Poisson arrival
  /// rate `qps` (per second), mean per-request demand `mean_service_ms`
  /// and lognormal CV `service_cv`. `qos_target_ms` classifies completions.
  ///
  /// Backlogged requests from prior calls are served first; their service
  /// demand is drawn at dispatch time, so a frequency/cache change applies
  /// to the backlog too, as it would on real hardware.
  IntervalStats step(double dt_ms, int servers, double qps,
                     double mean_service_ms, double service_cv,
                     double qos_target_ms);

  /// Drop all queued state (used when (re)initializing an experiment).
  void reset();

  /// Requests waiting plus requests in service past the current time.
  std::uint64_t backlog() const;

 private:
  Rng rng_;
  double now_ms_ = 0.0;
  /// Min-heap (via std::*_heap on a vector) of per-server free times.
  std::vector<double> server_free_;
  /// Arrival times of requests waiting for a server (FIFO).
  std::queue<double> waiting_;

  /// Hard cap on the waiting queue so a pathological controller cannot
  /// allocate unbounded memory; overflow arrivals count as violations.
  static constexpr std::size_t kMaxWaiting = 200000;
};

}  // namespace sturgeon::sim
