// LLC way-partitioning model. Intel CAT assigns whole ways; an
// application's effective cache is its way count times the per-way
// capacity. Miss ratio follows a saturating working-set curve with a
// knee: with allocation `a` MB against working set `w` MB,
// miss = (w / (w + a))^2. This produces the qualitative CAT behaviour
// Sturgeon relies on: diminishing returns per extra way, and a steep
// penalty when an LLC-hungry application is squeezed into few ways.
#pragma once

#include "util/types.h"

namespace sturgeon::sim {

/// Effective capacity of `ways` LLC ways on machine `m`, in MB.
double ways_to_mb(const MachineSpec& m, int ways);

/// Miss ratio in [0,1) for a working set `wss_mb` given `ways` ways.
double miss_ratio(const MachineSpec& m, int ways, double wss_mb);

/// Demand/throughput inflation factor >= 1: 1 + sensitivity * miss_ratio.
/// LS per-request demand is multiplied by this; BE throughput is divided
/// by it.
double cache_inflation(const MachineSpec& m, int ways, double wss_mb,
                       double sensitivity);

/// Memory-bandwidth multiplier in [0,1]: the fraction of an application's
/// worst-case (all-miss) bandwidth demand it actually generates with
/// `ways` ways. Equal to the miss ratio normalized by the miss ratio at
/// one way, so fewer ways -> more traffic (the indirect-regulation effect
/// the balancer exploits, paper Section VII-C).
double bw_fraction(const MachineSpec& m, int ways, double wss_mb);

}  // namespace sturgeon::sim
