// Package power model (RAPL analogue).
//
//   P_pkg = P_uncore + sum over slices of
//           cores * (P_static + activity * k_dyn * f^alpha * u(util))
//           + k_bw * total_memory_bandwidth
//
// with u(util) = u_floor + (1 - u_floor) * util. The utilization floor
// models the energy non-proportionality of real servers (Barroso &
// Hoelzle, cited by the paper): an active core at low utilization still
// draws a large fraction of its busy power. This is exactly why the
// paper's Fig 2 overshoot is *moderate* (2-12.6%): the LS-at-peak budget
// already includes near-full static+active power, and co-location adds
// the BE's higher activity on top.
//
// f^alpha with alpha ~= 2.6 captures the superlinear V*f^2 growth of DVFS
// power, which makes frequency the most power-expensive resource --
// the property Sturgeon's "harvest power" option exploits.
#pragma once

#include "util/types.h"

namespace sturgeon::sim {

struct PowerCoefficients {
  double uncore_w = 18.0;     ///< package base (LLC, memory controller, IO)
  double core_static_w = 1.0; ///< per active core, frequency-independent
  double k_dyn = 0.6;         ///< dynamic scale: W per (GHz^alpha * activity)
  double alpha = 2.6;         ///< DVFS superlinearity exponent
  double util_floor = 0.7;    ///< u(0) -- energy non-proportionality
  double k_bw_w_per_gbps = 0.15;  ///< DRAM power per GB/s of traffic
};

class PowerModel {
 public:
  PowerModel(const MachineSpec& machine, PowerCoefficients coeffs = {});

  /// Power of `cores` cores at P-state `freq_level`, average utilization
  /// `util` in [0,1], and application activity factor `activity`.
  double slice_power_w(int cores, int freq_level, double util,
                       double activity) const;

  /// Full package power for two slices plus memory traffic.
  double package_power_w(const AppSlice& ls, double ls_util,
                         double ls_activity, const AppSlice& be,
                         double be_util, double be_activity,
                         double total_bw_gbps) const;

  /// Idle package power (no active cores, no traffic).
  double idle_power_w() const { return coeffs_.uncore_w; }

  /// Machine power capacity: the whole package busy at top frequency
  /// with unit activity and no memory traffic. Machine-only (no
  /// workload term), so heterogeneous fleets rank by hardware size --
  /// used by placement and as the physical upper bound a sane power
  /// sensor reading can never exceed (sensor sanitization).
  double max_package_power_w() const;

  const PowerCoefficients& coefficients() const { return coeffs_; }
  const MachineSpec& machine() const { return machine_; }

 private:
  MachineSpec machine_;
  PowerCoefficients coeffs_;
};

}  // namespace sturgeon::sim
