// Load traces: per-second load fractions (of LS peak QPS) driving the
// evaluation. The paper evaluates on a fluctuating trace rising from 20%
// to 80% of peak and back (Section VII-A) and shows a 20%->50% ramp in
// Fig 11; diurnal and step traces support additional experiments.
#pragma once

#include <cstdint>
#include <vector>

namespace sturgeon {

class LoadTrace {
 public:
  /// Load fraction (0..1 of peak QPS) at second `t`; clamps past the end.
  double at(int t) const;

  int duration_s() const { return static_cast<int>(points_.size()); }
  const std::vector<double>& points() const { return points_; }

  /// Linear ramp `lo -> hi -> lo` over `duration_s` seconds (paper's
  /// evaluation trace with lo=0.2, hi=0.8).
  static LoadTrace ramp_up_down(double lo, double hi, int duration_s);

  /// Linear ramp `lo -> hi` (paper Fig 11 uses 0.2 -> 0.5).
  static LoadTrace ramp(double lo, double hi, int duration_s);

  /// One sinusoidal day compressed into `duration_s` seconds, load in
  /// [lo, hi] with the minimum at t=0 (night) and maximum mid-trace.
  static LoadTrace diurnal(double lo, double hi, int duration_s);

  /// Diurnal with the minimum shifted to `phase_fraction` of the day
  /// (in [0,1)). Fleet runs spread node phases so load shifts -- and
  /// therefore event-engine wakes -- stagger instead of synchronizing.
  static LoadTrace diurnal_phased(double lo, double hi, int duration_s,
                                  double phase_fraction);

  static LoadTrace constant(double level, int duration_s);

  /// Piecewise-constant steps, each held `step_len_s` seconds.
  static LoadTrace steps(const std::vector<double>& levels, int step_len_s);

  /// Return a copy with multiplicative noise (clamped to [0.01, 1.0]);
  /// models the short-term jitter real services see on top of the trend.
  LoadTrace with_noise(double stddev_fraction, std::uint64_t seed) const;

 private:
  explicit LoadTrace(std::vector<double> points);

  std::vector<double> points_;
};

}  // namespace sturgeon
