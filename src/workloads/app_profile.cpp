#include "workloads/app_profile.h"

#include <stdexcept>

namespace sturgeon {

// Calibration notes
// -----------------
// LS `work_ghz_ms` values are calibrated against the paper's measured
// anchor points (Section III-B): at 20% of peak load, ~4 cores at
// 1.6-1.8 GHz with 5-6 LLC ways are "just enough" to hold the p95 target,
// and at peak load the full machine at 2.2 GHz meets QoS with headroom.
// tests/sim/calibration_test.cpp asserts these anchors against the DES.
//
// memcached is simulated at a 10x reduced arrival rate (sim_scale 0.1);
// displayed QPS are always real-scale (60K peak, as in the paper).
//
// BE profiles encode the preference diversity the paper observes in
// PARSEC: bs/sp are compute-bound frequency-lovers; fe scales almost
// linearly with cores but gains little from frequency (pipeline
// parallelism, memory-stalled); fd is bandwidth-bound; fa/rt sit between,
// with rt strongly LLC-sensitive. Power activity factors exceed the LS
// services' (the root cause of the paper's Fig 2 overload).

const std::vector<LsProfile>& ls_catalog() {
  static const std::vector<LsProfile> catalog = [] {
    std::vector<LsProfile> v;

    LsProfile memcached;
    memcached.name = "memcached";
    memcached.qos_target_ms = 10.0;
    memcached.peak_qps = 60000;
    memcached.sim_scale = 0.1;
    memcached.work_ghz_ms = 3.1;
    memcached.service_cv = 0.9;
    memcached.cache_wss_mb = 8.0;
    memcached.cache_sensitivity = 1.0;
    memcached.bw_gbps_at_peak = 8.0;
    memcached.bw_sensitivity = 1.5;
    memcached.power_activity = 1.0;
    v.push_back(memcached);

    LsProfile xapian;
    xapian.name = "xapian";
    xapian.qos_target_ms = 15.0;
    xapian.peak_qps = 3500;
    xapian.sim_scale = 1.0;
    xapian.work_ghz_ms = 5.7;
    xapian.service_cv = 0.8;
    xapian.cache_wss_mb = 6.0;
    xapian.cache_sensitivity = 1.0;
    xapian.bw_gbps_at_peak = 4.0;
    xapian.bw_sensitivity = 1.2;
    xapian.power_activity = 1.0;
    v.push_back(xapian);

    LsProfile imgdnn;
    imgdnn.name = "img-dnn";
    imgdnn.qos_target_ms = 10.0;
    imgdnn.peak_qps = 3000;
    imgdnn.sim_scale = 1.0;
    imgdnn.work_ghz_ms = 5.3;
    imgdnn.service_cv = 0.6;
    imgdnn.cache_wss_mb = 5.0;
    imgdnn.cache_sensitivity = 0.9;
    imgdnn.bw_gbps_at_peak = 5.0;
    imgdnn.bw_sensitivity = 1.2;
    imgdnn.power_activity = 1.02;
    v.push_back(imgdnn);

    return v;
  }();
  return catalog;
}

const std::vector<BeProfile>& be_catalog() {
  static const std::vector<BeProfile> catalog = [] {
    std::vector<BeProfile> v;

    BeProfile bs;  // blackscholes: compute-bound, embarrassingly parallel
    bs.name = "bs";
    bs.parallel_fraction = 0.995;
    bs.freq_exponent = 1.0;
    bs.cache_wss_mb = 2.0;
    bs.cache_sensitivity = 0.08;
    bs.bw_gbps_max = 2.0;
    bs.power_activity = 1.09;
    v.push_back(bs);

    BeProfile fa;  // facesim: moderate scaling, sizable working set
    fa.name = "fa";
    fa.parallel_fraction = 0.92;
    fa.freq_exponent = 0.9;
    fa.cache_wss_mb = 12.0;
    fa.cache_sensitivity = 0.6;
    fa.bw_gbps_max = 12.0;
    fa.power_activity = 1.03;
    v.push_back(fa);

    BeProfile fe;  // ferret: pipeline-parallel, memory-stalled
    fe.name = "fe";
    fe.parallel_fraction = 0.985;
    fe.freq_exponent = 0.75;
    fe.cache_wss_mb = 16.0;
    fe.cache_sensitivity = 0.8;
    fe.bw_gbps_max = 14.0;
    fe.power_activity = 0.99;
    v.push_back(fe);

    BeProfile rt;  // raytrace: LLC-hungry, decent scaling
    rt.name = "rt";
    rt.parallel_fraction = 0.97;
    rt.freq_exponent = 0.85;
    rt.cache_wss_mb = 18.0;
    rt.cache_sensitivity = 0.9;
    rt.bw_gbps_max = 8.0;
    rt.power_activity = 1.01;
    v.push_back(rt);

    BeProfile sp;  // swaptions: compute-bound, tiny working set
    sp.name = "sp";
    sp.parallel_fraction = 0.99;
    sp.freq_exponent = 1.0;
    sp.cache_wss_mb = 1.0;
    sp.cache_sensitivity = 0.05;
    sp.bw_gbps_max = 1.0;
    sp.power_activity = 1.12;
    v.push_back(sp);

    BeProfile fd;  // fluidanimate: bandwidth-bound, limited scaling
    fd.name = "fd";
    fd.parallel_fraction = 0.90;
    fd.freq_exponent = 0.65;
    fd.cache_wss_mb = 14.0;
    fd.cache_sensitivity = 0.7;
    fd.bw_gbps_max = 28.0;
    fd.power_activity = 0.96;
    v.push_back(fd);

    return v;
  }();
  return catalog;
}

const LsProfile& find_ls(const std::string& name) {
  for (const auto& p : ls_catalog()) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("find_ls: unknown LS service '" + name + "'");
}

const BeProfile& find_be(const std::string& name) {
  for (const auto& p : be_catalog()) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("find_be: unknown BE application '" + name +
                              "'");
}

double amdahl_speedup(int cores, double p) {
  if (cores < 1) return 0.0;
  if (p < 0.0 || p >= 1.0 + 1e-12) {
    throw std::invalid_argument("amdahl_speedup: p outside [0,1]");
  }
  return 1.0 / ((1.0 - p) + p / static_cast<double>(cores));
}

}  // namespace sturgeon
