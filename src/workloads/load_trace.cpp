#include "workloads/load_trace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace sturgeon {

LoadTrace::LoadTrace(std::vector<double> points) : points_(std::move(points)) {
  if (points_.empty()) throw std::invalid_argument("LoadTrace: empty trace");
  for (double p : points_) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument("LoadTrace: load fraction outside [0,1]");
    }
  }
}

double LoadTrace::at(int t) const {
  if (t < 0) return points_.front();
  const auto i = static_cast<std::size_t>(t);
  return i < points_.size() ? points_[i] : points_.back();
}

LoadTrace LoadTrace::ramp_up_down(double lo, double hi, int duration_s) {
  if (duration_s < 2) throw std::invalid_argument("ramp_up_down: too short");
  std::vector<double> pts(static_cast<std::size_t>(duration_s));
  const int half = duration_s / 2;
  for (int t = 0; t < duration_s; ++t) {
    const double frac =
        t < half ? static_cast<double>(t) / half
                 : static_cast<double>(duration_s - 1 - t) /
                       std::max(1, duration_s - 1 - half);
    pts[static_cast<std::size_t>(t)] = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return LoadTrace(std::move(pts));
}

LoadTrace LoadTrace::ramp(double lo, double hi, int duration_s) {
  if (duration_s < 2) throw std::invalid_argument("ramp: too short");
  std::vector<double> pts(static_cast<std::size_t>(duration_s));
  for (int t = 0; t < duration_s; ++t) {
    pts[static_cast<std::size_t>(t)] =
        lo + (hi - lo) * static_cast<double>(t) / (duration_s - 1);
  }
  return LoadTrace(std::move(pts));
}

LoadTrace LoadTrace::diurnal(double lo, double hi, int duration_s) {
  if (duration_s < 2) throw std::invalid_argument("diurnal: too short");
  std::vector<double> pts(static_cast<std::size_t>(duration_s));
  for (int t = 0; t < duration_s; ++t) {
    const double phase =
        2.0 * M_PI * static_cast<double>(t) / static_cast<double>(duration_s);
    // Minimum at t=0, maximum mid-trace.
    pts[static_cast<std::size_t>(t)] =
        lo + (hi - lo) * 0.5 * (1.0 - std::cos(phase));
  }
  return LoadTrace(std::move(pts));
}

LoadTrace LoadTrace::diurnal_phased(double lo, double hi, int duration_s,
                                    double phase_fraction) {
  if (duration_s < 2) throw std::invalid_argument("diurnal_phased: too short");
  if (phase_fraction < 0.0 || phase_fraction >= 1.0) {
    throw std::invalid_argument("diurnal_phased: phase outside [0,1)");
  }
  std::vector<double> pts(static_cast<std::size_t>(duration_s));
  for (int t = 0; t < duration_s; ++t) {
    const double phase =
        2.0 * M_PI *
        (static_cast<double>(t) / static_cast<double>(duration_s) -
         phase_fraction);
    pts[static_cast<std::size_t>(t)] =
        lo + (hi - lo) * 0.5 * (1.0 - std::cos(phase));
  }
  return LoadTrace(std::move(pts));
}

LoadTrace LoadTrace::constant(double level, int duration_s) {
  if (duration_s < 1) throw std::invalid_argument("constant: too short");
  return LoadTrace(
      std::vector<double>(static_cast<std::size_t>(duration_s), level));
}

LoadTrace LoadTrace::steps(const std::vector<double>& levels, int step_len_s) {
  if (levels.empty() || step_len_s < 1) {
    throw std::invalid_argument("steps: empty levels or bad step length");
  }
  std::vector<double> pts;
  pts.reserve(levels.size() * static_cast<std::size_t>(step_len_s));
  for (double level : levels) {
    for (int i = 0; i < step_len_s; ++i) pts.push_back(level);
  }
  return LoadTrace(std::move(pts));
}

LoadTrace LoadTrace::with_noise(double stddev_fraction,
                                std::uint64_t seed) const {
  Rng rng(seed);
  std::vector<double> pts = points_;
  for (double& p : pts) {
    p = std::clamp(p * (1.0 + rng.normal(0.0, stddev_fraction)), 0.01, 1.0);
  }
  return LoadTrace(std::move(pts));
}

}  // namespace sturgeon
