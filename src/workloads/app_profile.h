// Application profiles: the behavioural parameters from which the
// simulator derives latency, throughput and power. These stand in for the
// paper's CloudSuite/Tailbench LS services and PARSEC BE applications
// (see DESIGN.md section 2 for the substitution argument). The *diversity*
// of scaling / frequency / cache / power behaviour across profiles is what
// drives the paper's findings, so each parameter is documented with the
// behaviour it controls.
#pragma once

#include <string>
#include <vector>

namespace sturgeon {

/// Latency-sensitive service profile. Requests are served by an M/G/k
/// queue; one request costs `work_ghz_ms / f_ghz` milliseconds on one core
/// before cache and interference inflation.
struct LsProfile {
  std::string name;

  double qos_target_ms = 10.0;  ///< p95 latency target (paper Section III-A)
  double peak_qps = 60000;      ///< peak load used to right-size the budget

  /// DES arrival scale: simulated_qps = real_qps * sim_scale. Latency
  /// anchors are calibrated at the simulated rate; reported QPS always use
  /// the real scale. Keeps 18-pair sweeps tractable on one core.
  double sim_scale = 1.0;

  double work_ghz_ms = 1.0;   ///< per-request demand in GHz * ms (cycles proxy)
  double service_cv = 0.8;    ///< lognormal service-time variability

  double cache_wss_mb = 8.0;       ///< LLC working set
  double cache_sensitivity = 0.3;  ///< demand inflation at full miss
  double bw_gbps_at_peak = 6.0;    ///< memory bandwidth demand at peak load
  double bw_sensitivity = 0.5;     ///< demand inflation per unit bandwidth
                                   ///< overcommit (scaled by miss ratio)

  double power_activity = 1.0;  ///< dynamic-power activity factor

  double sim_peak_qps() const { return peak_qps * sim_scale; }
};

/// Best-effort application profile. Throughput is Amdahl-scaled over
/// cores, sub-linear in frequency for memory-bound codes, and degrades
/// with fewer LLC ways and under bandwidth contention.
struct BeProfile {
  std::string name;

  double parallel_fraction = 0.95;  ///< Amdahl p: multi-thread scalability
  double freq_exponent = 1.0;       ///< throughput ~ f^gamma (gamma < 1 for
                                    ///< memory-bound applications)
  double cache_wss_mb = 10.0;
  double cache_sensitivity = 0.4;   ///< throughput loss at full miss
  double bw_gbps_max = 10.0;        ///< bandwidth demand at solo throughput
  double power_activity = 1.2;      ///< BE apps draw more power than LS at
                                    ///< equal resources (paper Fig 2)
  double base_ops_per_core = 1.0;   ///< solo single-core rate at max freq
};

/// The paper's three LS services (memcached, xapian, img-dnn analogues).
const std::vector<LsProfile>& ls_catalog();

/// The paper's six PARSEC BE applications (bs, fa, fe, rt, sp, fd).
const std::vector<BeProfile>& be_catalog();

/// Lookup by name; throws std::invalid_argument if absent.
const LsProfile& find_ls(const std::string& name);
const BeProfile& find_be(const std::string& name);

/// Amdahl's-law speedup for `cores` at parallel fraction `p`.
double amdahl_speedup(int cores, double p);

}  // namespace sturgeon
