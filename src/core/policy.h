// Co-location policy interface: one decision per 1 s interval, mapping
// the latest telemetry sample to the allocation for the next interval.
// Sturgeon, Sturgeon-NoB and the baseline controllers all implement this,
// so the experiment harness can drive them interchangeably.
//
// Observability contract (uniform across every implementation):
//   - describe() is a one-line, human-readable summary of the policy and
//     its tuning (for run headers and trace metadata);
//   - last_decision() reports what the most recent decide() call chose
//     and why, replacing per-class ad-hoc getters;
//   - attach_telemetry() hands the policy the run's TelemetryContext.
//     Policies report counters/gauges/spans through it; a policy always
//     has a context (a private no-op sink from birth), so instrument
//     updates never need a null check.
//
// Decisions carry a K-way Allocation; the pair-era decide(Partition)
// entry point remains the required override (every shipped policy is a
// pair controller), and the Allocation overload adapts exactly at K = 2.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/server.h"
#include "util/types.h"

namespace sturgeon::telemetry {
class TelemetryContext;
}  // namespace sturgeon::telemetry

namespace sturgeon::core {

/// Machine-readable decision tag. The free-form detail string refines the
/// tag ("balance" + "cores", "power_cap" + "freq"); exporters render both
/// via PolicyDecision::action_string(), which reproduces the historical
/// "tag:detail" wire format exactly.
enum class Action {
  kNone,      ///< no decision yet (pre-first-decide / post-reset)
  kHold,      ///< keep the current allocation
  kSearch,    ///< adopted a model-searched configuration
  kBalance,   ///< feedback balancer moved a resource unit
  kRevert,    ///< undid the previous probe/adjustment
  kStatic,    ///< fixed allocation (no management)
  kUpsize,    ///< grew the LS share of a resource
  kDownsize,  ///< harvested a resource unit from the LS share
  kProbe,     ///< speculative downsize while healthy
  kSeedBe,    ///< gave an empty BE side its first minimal slice
  kPowerCap,  ///< backed off to respect the power budget
  kBeBoost,   ///< opportunistically raised the BE frequency
  kSafeMode,  ///< watchdog forced the known-safe allocation
};

const char* to_string(Action action);

/// What the last decide() call chose, uniformly across policies.
struct PolicyDecision {
  std::uint64_t epoch = 0;  ///< 1-based decide() counter since reset()
  Allocation allocation;    ///< the returned allocation (K slices)
  Action action = Action::kNone;
  std::string detail;  ///< optional refinement, e.g. "cores", "freq"
  double slack = 0.0;  ///< measured slack this decision saw (0 if unused)
  /// Model expectations backing the decision; 0 for model-free policies.
  double predicted_throughput = 0.0;
  double predicted_power_w = 0.0;

  /// K = 2 view of the allocation (empty Partition before any decision).
  Partition partition() const;

  /// Historical wire format for exporters: "hold", "balance:cores",
  /// "power_cap:freq", ... -- to_string(action) plus ":detail" when set.
  std::string action_string() const;
};

class Policy {
 public:
  Policy();
  virtual ~Policy() = default;

  virtual std::string name() const = 0;

  /// One-line description of the policy and its tuning knobs.
  virtual std::string describe() const { return name(); }

  /// Forget controller state (new run).
  virtual void reset() = 0;

  /// Observe the last interval's telemetry and choose the partition for
  /// the next interval. Note: `sample.interference_factor` is simulator
  /// ground truth and MUST NOT be read by policies -- controllers only
  /// see what RAPL / latency instrumentation would expose.
  virtual Partition decide(const sim::ServerTelemetry& sample,
                           const Partition& current) = 0;

  /// K-way entry point. The default adapter handles exactly K = 2 by
  /// delegating to the pair decide() above (bit-identical round trip);
  /// it throws std::invalid_argument for any other K. Policies with a
  /// native K-way control loop override this.
  virtual Allocation decide(const sim::ServerTelemetry& sample,
                            const Allocation& current);

  /// What the most recent decide() chose; default-initialized before the
  /// first call and after reset().
  const PolicyDecision& last_decision() const { return last_decision_; }

  /// Whether set_power_cap() actually retargets this policy. Callers that
  /// distribute caps (exp::Runner, cluster::ClusterNode) consult this to
  /// count dropped caps instead of silently losing them.
  virtual bool supports_power_cap() const { return false; }

  /// Update the power budget (watts) this policy must keep the node
  /// under. The cluster-level PowerCoordinator re-caps nodes between
  /// epochs; power-aware policies (Sturgeon, PARTIES, Heracles) retarget
  /// their budget checks and report supports_power_cap() == true; the
  /// default ignores the cap (policies with no power notion, e.g.
  /// Static). Takes effect from the next decide().
  virtual void set_power_cap(double /*watts*/) {}

  /// Route this policy's instruments/spans through `context` (the
  /// experiment runner calls this before reset()). Null restores the
  /// built-in no-op sink.
  void attach_telemetry(std::shared_ptr<telemetry::TelemetryContext> context);

  telemetry::TelemetryContext& telemetry() const { return *telemetry_; }

 protected:
  /// Start recording decision `epoch + 1`; clears every other field.
  PolicyDecision& begin_decision();
  /// Forget the decision history (implementations call from reset()).
  void clear_decision() { last_decision_ = PolicyDecision{}; }

  /// Re-fetch cached instrument references after a context change.
  virtual void on_telemetry_attached() {}

  PolicyDecision last_decision_;

 private:
  std::shared_ptr<telemetry::TelemetryContext> telemetry_;
};

}  // namespace sturgeon::core
