// Co-location policy interface: one decision per 1 s interval, mapping
// the latest telemetry sample to the partition for the next interval.
// Sturgeon, Sturgeon-NoB and the baseline controllers all implement this,
// so the experiment harness can drive them interchangeably.
#pragma once

#include <string>

#include "sim/server.h"
#include "util/types.h"

namespace sturgeon::core {

class Policy {
 public:
  virtual ~Policy() = default;

  virtual std::string name() const = 0;

  /// Forget controller state (new run).
  virtual void reset() = 0;

  /// Observe the last interval's telemetry and choose the partition for
  /// the next interval. Note: `sample.interference_factor` is simulator
  /// ground truth and MUST NOT be read by policies -- controllers only
  /// see what RAPL / latency instrumentation would expose.
  virtual Partition decide(const sim::ServerTelemetry& sample,
                           const Partition& current) = 0;
};

}  // namespace sturgeon::core
