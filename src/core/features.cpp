#include "core/features.h"

namespace sturgeon::core {

ml::FeatureRow ls_features(const MachineSpec& m, double qps_real,
                           const AppSlice& slice) {
  return {qps_real / 1000.0, static_cast<double>(slice.cores),
          m.freq_at(slice.freq_level), static_cast<double>(slice.llc_ways)};
}

ml::FeatureRow be_features(const MachineSpec& m, double input_level,
                           const AppSlice& slice) {
  return {input_level, static_cast<double>(slice.cores),
          m.freq_at(slice.freq_level), static_cast<double>(slice.llc_ways)};
}

}  // namespace sturgeon::core
