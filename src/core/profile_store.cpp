#include "core/profile_store.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace sturgeon::core {

namespace {

constexpr char kLsHeader[] = "sturgeon-ls-profile-v1";
constexpr char kBeHeader[] = "sturgeon-be-profile-v1";

std::vector<double> parse_row(const std::string& line, std::size_t expect,
                              int lineno) {
  std::vector<double> cells;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) {
    try {
      std::size_t used = 0;
      cells.push_back(std::stod(cell, &used));
      if (used != cell.size()) throw std::invalid_argument(cell);
    } catch (const std::exception&) {
      throw std::runtime_error("profile_store: bad number '" + cell +
                               "' on line " + std::to_string(lineno));
    }
  }
  if (cells.size() != expect) {
    throw std::runtime_error("profile_store: expected " +
                             std::to_string(expect) + " cells on line " +
                             std::to_string(lineno) + ", got " +
                             std::to_string(cells.size()));
  }
  return cells;
}

void expect_header(std::istream& is, const char* header) {
  std::string line;
  if (!std::getline(is, line) || line != header) {
    throw std::runtime_error(std::string("profile_store: missing header '") +
                             header + "'");
  }
}

}  // namespace

void save_ls_profiling(std::ostream& os, const LsProfilingData& data) {
  os << kLsHeader << '\n';
  os << "kqps,cores,freq_ghz,ways,qos_ok,power_w\n";
  os.precision(10);
  for (std::size_t i = 0; i < data.x.size(); ++i) {
    const auto& r = data.x[i];
    os << r[0] << ',' << r[1] << ',' << r[2] << ',' << r[3] << ','
       << data.qos_ok[i] << ',' << data.power_w[i] << '\n';
  }
}

void save_be_profiling(std::ostream& os, const BeProfilingData& data) {
  os << kBeHeader << '\n';
  os << "idle_power_w," << data.idle_power_w << '\n';
  os << "input,cores,freq_ghz,ways,ipc,power_w\n";
  os.precision(10);
  for (std::size_t i = 0; i < data.x.size(); ++i) {
    const auto& r = data.x[i];
    os << r[0] << ',' << r[1] << ',' << r[2] << ',' << r[3] << ','
       << data.ipc[i] << ',' << data.power_w[i] << '\n';
  }
}

LsProfilingData load_ls_profiling(std::istream& is) {
  expect_header(is, kLsHeader);
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("profile_store: missing LS column header");
  }
  LsProfilingData data;
  int lineno = 2;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto cells = parse_row(line, 6, lineno);
    data.x.push_back({cells[0], cells[1], cells[2], cells[3]});
    const int label = static_cast<int>(cells[4]);
    if (label != 0 && label != 1) {
      throw std::runtime_error("profile_store: qos_ok must be 0/1 on line " +
                               std::to_string(lineno));
    }
    data.qos_ok.push_back(label);
    data.power_w.push_back(cells[5]);
  }
  return data;
}

BeProfilingData load_be_profiling(std::istream& is) {
  expect_header(is, kBeHeader);
  std::string line;
  if (!std::getline(is, line) || line.rfind("idle_power_w,", 0) != 0) {
    throw std::runtime_error("profile_store: missing idle_power_w line");
  }
  BeProfilingData data;
  data.idle_power_w = std::stod(line.substr(std::string("idle_power_w,").size()));
  if (!std::getline(is, line)) {
    throw std::runtime_error("profile_store: missing BE column header");
  }
  int lineno = 3;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto cells = parse_row(line, 6, lineno);
    data.x.push_back({cells[0], cells[1], cells[2], cells[3]});
    data.ipc.push_back(cells[4]);
    data.power_w.push_back(cells[5]);
  }
  return data;
}

namespace {
std::ofstream open_out(const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("profile_store: cannot write " + path);
  return os;
}
std::ifstream open_in(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("profile_store: cannot read " + path);
  return is;
}
}  // namespace

void save_ls_profiling_file(const std::string& path,
                            const LsProfilingData& data) {
  auto os = open_out(path);
  save_ls_profiling(os, data);
}

void save_be_profiling_file(const std::string& path,
                            const BeProfilingData& data) {
  auto os = open_out(path);
  save_be_profiling(os, data);
}

LsProfilingData load_ls_profiling_file(const std::string& path) {
  auto is = open_in(path);
  return load_ls_profiling(is);
}

BeProfilingData load_be_profiling_file(const std::string& path) {
  auto is = open_in(path);
  return load_be_profiling(is);
}

}  // namespace sturgeon::core
