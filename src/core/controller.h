// Sturgeon's top-level controller (paper Algorithm 1).
//
// Every second the controller reads the LS service's load and tail
// latency, computes slack = (target - latency) / target, and when slack
// leaves the [alpha, beta] band either re-runs the predictor-driven
// configuration search (Section V) or lets the preference-aware balancer
// fine-tune the allocation (Section VI). Setting
// `options.enable_balancer = false` yields the paper's Sturgeon-NoB
// ablation.
//
// Persistent compensation (extension): the offline models are blind to
// co-runner contention by design (they are trained on solo profiling
// runs), so a fresh search would re-install exactly the configuration the
// balancer just spent several intervals compensating. The controller
// therefore remembers the balancer's *net* harvests as per-resource
// reserves and re-applies them on top of every search result; reserves
// halve after a calm period so transient interference does not permanently
// tax the BE application.
//
// Observability: every decide() opens child spans (features, search,
// balance) under the caller's epoch span and reports through the
// attached TelemetryContext -- counters "controller.searches",
// "controller.balancer_actions", "controller.decisions", gauges for the
// compensation reserves and the predictor's cache/model-call state.
// searches_run()/balancer_actions() read those registry instruments.
#pragma once

#include <cstdint>
#include <memory>

#include "core/balancer.h"
#include "core/config_search.h"
#include "core/policy.h"

namespace sturgeon::telemetry {
class Counter;
}  // namespace sturgeon::telemetry

namespace sturgeon::core {

struct SturgeonOptions {
  double alpha = 0.10;          ///< paper default lower slack bound
  double beta = 0.20;           ///< paper default upper slack bound
  bool enable_balancer = true;  ///< false = Sturgeon-NoB
  /// Initial balancer harvest granularity (fraction of BE holdings).
  double balancer_granularity = 0.5;
  /// Calm intervals (slack >= alpha, no balancer action) after which the
  /// compensation reserves decay by half. See class comment.
  int reserve_decay_interval_s = 20;
};

class SturgeonController : public Policy {
 public:
  /// `qos_target_ms` is the LS service's target; `power_budget_w` the
  /// node budget. The predictor is shared (models are immutable).
  SturgeonController(std::shared_ptr<const Predictor> predictor,
                     double qos_target_ms, double power_budget_w,
                     SturgeonOptions options = {});

  std::string name() const override;
  std::string describe() const override;
  void reset() override;
  using Policy::decide;
  Partition decide(const sim::ServerTelemetry& sample,
                   const Partition& current) override;

  bool supports_power_cap() const override { return true; }

  /// Retarget the node budget the search and the balancer admit
  /// configurations under (cluster coordinator re-caps). Unlike reset(),
  /// controller state (reserves, balancer sequence) is kept: a cap change
  /// is a budget move, not a new run.
  void set_power_cap(double watts) override;

  double power_budget_w() const { return search_.power_budget_w(); }

  /// Cumulative number of predictor searches run (overhead accounting);
  /// reads the "controller.searches" registry counter.
  std::uint64_t searches_run() const;

  /// Cumulative balancer interventions applied ("controller.
  /// balancer_actions" counter).
  std::uint64_t balancer_actions() const;

  const ResourceBalancer& balancer() const { return balancer_; }

  /// The shared predictor (e.g. for cache/invocation statistics).
  const Predictor& predictor() const { return *predictor_; }

  /// Current compensation reserves (for tracing/tests).
  struct Reserves {
    int cores = 0;
    int ways = 0;
    int freq = 0;  ///< BE P-state reduction
  };
  const Reserves& reserves() const { return reserves_; }

 protected:
  void on_telemetry_attached() override;

 private:
  /// Shift `p` LS-ward by the current reserves (clamped so the BE slice
  /// stays minimally viable).
  Partition apply_reserves(Partition p) const;

  /// Record `p` as the epoch's outcome on last_decision() and the
  /// registry gauges, then hand it back to the caller.
  Partition finish_decision(const Partition& p, Action action,
                            std::string detail, double predicted_throughput,
                            double predicted_power_w);

  /// Cache instrument references from the current context.
  void rebind_instruments();

  std::shared_ptr<const Predictor> predictor_;
  double qos_target_ms_;
  SturgeonOptions options_;
  ConfigSearch search_;
  ResourceBalancer balancer_;
  bool balancer_armed_ = false;
  Reserves reserves_;
  int calm_intervals_ = 0;

  telemetry::Counter* decisions_counter_ = nullptr;
  telemetry::Counter* searches_counter_ = nullptr;
  telemetry::Counter* balancer_actions_counter_ = nullptr;
};

}  // namespace sturgeon::core
