// Sturgeon's top-level controller (paper Algorithm 1).
//
// Every second the controller reads the LS service's load and tail
// latency, computes slack = (target - latency) / target, and when slack
// leaves the [alpha, beta] band either re-runs the predictor-driven
// configuration search (Section V) or lets the preference-aware balancer
// fine-tune the allocation (Section VI). Setting
// `options.enable_balancer = false` yields the paper's Sturgeon-NoB
// ablation.
//
// Persistent compensation (extension): the offline models are blind to
// co-runner contention by design (they are trained on solo profiling
// runs), so a fresh search would re-install exactly the configuration the
// balancer just spent several intervals compensating. The controller
// therefore remembers the balancer's *net* harvests as per-resource
// reserves and re-applies them on top of every search result; reserves
// halve after a calm period so transient interference does not permanently
// tax the BE application.
#pragma once

#include <cstdint>
#include <memory>

#include "core/balancer.h"
#include "core/config_search.h"
#include "core/policy.h"

namespace sturgeon::core {

struct SturgeonOptions {
  double alpha = 0.10;          ///< paper default lower slack bound
  double beta = 0.20;           ///< paper default upper slack bound
  bool enable_balancer = true;  ///< false = Sturgeon-NoB
  /// Initial balancer harvest granularity (fraction of BE holdings).
  double balancer_granularity = 0.5;
  /// Calm intervals (slack >= alpha, no balancer action) after which the
  /// compensation reserves decay by half. See class comment.
  int reserve_decay_interval_s = 20;
};

class SturgeonController : public Policy {
 public:
  /// `qos_target_ms` is the LS service's target; `power_budget_w` the
  /// node budget. The predictor is shared (models are immutable).
  SturgeonController(std::shared_ptr<const Predictor> predictor,
                     double qos_target_ms, double power_budget_w,
                     SturgeonOptions options = {});

  std::string name() const override;
  void reset() override;
  Partition decide(const sim::ServerTelemetry& sample,
                   const Partition& current) override;

  /// Cumulative number of predictor searches run (overhead accounting).
  std::uint64_t searches_run() const { return searches_; }

  /// Cumulative balancer interventions applied.
  std::uint64_t balancer_actions() const { return balancer_actions_; }

  const ResourceBalancer& balancer() const { return balancer_; }

  /// The shared predictor (e.g. for cache/invocation statistics).
  const Predictor& predictor() const { return *predictor_; }

  /// Current compensation reserves (for tracing/tests).
  struct Reserves {
    int cores = 0;
    int ways = 0;
    int freq = 0;  ///< BE P-state reduction
  };
  const Reserves& reserves() const { return reserves_; }

 private:
  /// Shift `p` LS-ward by the current reserves (clamped so the BE slice
  /// stays minimally viable).
  Partition apply_reserves(Partition p) const;

  std::shared_ptr<const Predictor> predictor_;
  double qos_target_ms_;
  SturgeonOptions options_;
  ConfigSearch search_;
  ResourceBalancer balancer_;
  bool balancer_armed_ = false;
  std::uint64_t searches_ = 0;
  std::uint64_t balancer_actions_ = 0;
  Reserves reserves_;
  int calm_intervals_ = 0;
};

}  // namespace sturgeon::core
