// Sharded prediction memo layer between the Predictor and its trained
// models (overhead optimization, paper Section VII-E).
//
// Every search flavor asks the models the same questions over and over:
// the slice space is tiny (at most (C+1) x (F+1) x (L+1) = a few thousand
// configurations on the paper platform) while one exhaustive search alone
// issues 40000+ predictions. The cache therefore stores *dense tables*
// indexed by slice, one table per (model role, QPS bucket). A miss fills
// the whole table with a single predict_batch sweep -- columnar inference
// through the ml layer -- and every later query at that load is an array
// lookup.
//
// Bit-identity contract: quantized QPS buckets only bound how many tables
// are retained; they never change *values*. Each table remembers the
// exact real-scale QPS it was filled at, and a same-bucket query at a
// different exact QPS refills the table at the new load. Combined with
// the ml layer's bit-identical predict_batch implementations, a cached
// search returns exactly the partition, feasibility flag, and predicted
// throughput/power of an uncached one.
//
// Thread safety: lookups are safe from any number of threads (the
// parallel search hits the cache concurrently). Each shard owns a mutex;
// a filling thread holds its shard lock for the duration of the batch
// sweep so concurrent workers never duplicate the work. Published tables
// are immutable (shared_ptr<const>), so readers touch them lock-free
// once fetched. invalidate() may not race with lookups.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "telemetry/monitor.h"
#include "util/thread_annotations.h"
#include "util/types.h"

namespace sturgeon::core {

struct PredictionCacheConfig {
  /// Real-scale QPS per bucket. Only bounds table count (see above).
  double qps_bucket_width = 50.0;
  std::size_t num_shards = 8;
};

/// Per-role model invocation counts (overhead accounting). A snapshot of
/// the Predictor's live counters; fills add the whole batch size.
struct ModelCallBreakdown {
  std::uint64_t ls_qos = 0;
  std::uint64_t ls_power = 0;
  std::uint64_t be_ipc = 0;
  std::uint64_t be_power = 0;

  std::uint64_t total() const { return ls_qos + ls_power + be_ipc + be_power; }
};

/// The Predictor's live per-role invocation counters. Thread-safe: the
/// parallel search invokes models concurrently.
struct ModelCallCounters {
  mutable std::atomic<std::uint64_t> ls_qos{0};
  mutable std::atomic<std::uint64_t> ls_power{0};
  mutable std::atomic<std::uint64_t> be_ipc{0};
  mutable std::atomic<std::uint64_t> be_power{0};

  ModelCallBreakdown snapshot() const;
  void reset();
};

class PredictionCache {
 public:
  /// Fills receive the exact query QPS and a table sized table_size();
  /// entry i is the model output for slice_at(i).
  using FillInt = std::function<void(double qps_real, std::vector<int>&)>;
  using FillDouble =
      std::function<void(double qps_real, std::vector<double>&)>;

  PredictionCache(const MachineSpec& machine, PredictionCacheConfig config);

  /// Lookup-or-fill for each model role. LS tables are keyed by QPS
  /// bucket; BE tables are load-independent (the paper's BE models see a
  /// fixed native input level) so a single table serves every query.
  int ls_qos(double qps_real, const AppSlice& slice, const FillInt& fill);
  double ls_power(double qps_real, const AppSlice& slice,
                  const FillDouble& fill);
  double be_ipc(const AppSlice& slice, const FillDouble& fill);
  double be_power(const AppSlice& slice, const FillDouble& fill);

  /// Drop every table and bump the generation counter (model swap).
  /// Not safe against concurrent lookups.
  void invalidate();

  telemetry::PredictionCacheStats stats() const;

  /// Dense-table geometry: index over (cores, freq_level, llc_ways) with
  /// each dimension including 0, so complement/degenerate slices index
  /// without special cases.
  std::size_t table_size() const { return table_size_; }
  std::size_t slice_index(const AppSlice& slice) const;
  AppSlice slice_at(std::size_t index) const;

 private:
  struct LsEntry {
    double qos_qps = -1.0;
    std::shared_ptr<const std::vector<int>> qos;
    double power_qps = -1.0;
    std::shared_ptr<const std::vector<double>> power;
  };
  struct Shard {
    Mutex mu;
    std::unordered_map<std::int64_t, LsEntry> buckets STURGEON_GUARDED_BY(mu);
  };

  std::int64_t bucket_of(double qps_real) const;
  Shard& shard_of(std::int64_t bucket);

  MachineSpec machine_;
  PredictionCacheConfig config_;
  std::size_t table_size_;
  std::vector<std::unique_ptr<Shard>> shards_;

  Mutex be_mu_;
  std::shared_ptr<const std::vector<double>> be_ipc_table_
      STURGEON_GUARDED_BY(be_mu_);
  std::shared_ptr<const std::vector<double>> be_power_table_
      STURGEON_GUARDED_BY(be_mu_);

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> fills_{0};
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace sturgeon::core
