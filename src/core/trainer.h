// Offline model training (paper Section V-A/V-C).
//
// In the paper, a dedicated cluster's telemetry provides training samples
// of latency / IPC / peak power under different resource configurations.
// Here the SimulatedServer plays the telemetry source: each sample is a
// short *measured* profiling run at one configuration -- the trainer
// observes only what instrumentation would expose (p95 latency, IPC,
// RAPL power), never the simulator internals.
//
// Per-application models (paper Fig 5):
//   LS service:      ls_qos  (classification) -- does <qps, C1, F1, L1>
//                    meet the target?
//                    ls_power (regression) -- LS-solo package peak power
//   BE application:  be_ipc  (regression) -- IPC at <I, C2, F2, L2>
//                    be_power (regression) -- BE slice incremental power
// Power labels use the interval-peak, matching the paper's conservative
// choice (Section V-A). LS models are independent of the co-runner and
// vice versa, so each service/application is profiled once and the
// models are shared across all co-location pairs.
#pragma once

#include <cstdint>
#include <memory>

#include "ml/factory.h"
#include "sim/server.h"
#include "workloads/app_profile.h"

namespace sturgeon::core {

struct TrainerConfig {
  int ls_samples = 500;        ///< uniform profiling configs per LS service
  /// Boundary-focused profiling campaigns: each draws a random (load,
  /// frequency) and binary-searches the measured minimum feasible core
  /// count and way count, labeling every probe. Concentrates samples
  /// where the QoS classifier's decision boundary lives -- the adaptive
  /// sampling a real profiling cluster would run.
  int ls_boundary_searches = 120;
  int be_samples = 400;        ///< profiling configurations per BE app
  int intervals_per_sample = 3;  ///< 1 s measurements per configuration
  double test_fraction = 0.25;   ///< hold-out share for model selection
  /// A configuration is labeled QoS-feasible only if its profiled p95
  /// stays within margin * target. The margin aligns the classifier
  /// boundary with the controller's alpha slack band so the search does
  /// not hand out configurations that sit exactly on the latency cliff
  /// (the paper's conservative-training spirit, Section V-A).
  double qos_label_margin = 0.85;
  std::uint64_t seed = 0xfeedULL;
  sim::ServerConfig server;      ///< profiling-cluster machine (defaults)
};

/// Raw LS profiling dataset. Features are {kQPS, C1, F1, L1}.
struct LsProfilingData {
  std::vector<ml::FeatureRow> x;
  std::vector<int> qos_ok;       // 1 = p95 within margin*target, all runs
  std::vector<double> power_w;   // peak package power, LS solo
};

/// Raw BE profiling dataset. Features are {I, C2, F2, L2}.
struct BeProfilingData {
  std::vector<ml::FeatureRow> x;
  std::vector<double> ipc;
  std::vector<double> power_w;   // peak package power minus idle probe
  double idle_power_w = 0.0;
};

/// Profile an LS service across randomized solo configurations
/// (interference disabled: a quiet profiling cluster, as the paper
/// assumes).
LsProfilingData collect_ls_profiling(const LsProfile& ls,
                                     const TrainerConfig& config);

/// Profile a BE application across randomized solo configurations.
BeProfilingData collect_be_profiling(const BeProfile& be,
                                     const TrainerConfig& config);

/// Per-family hold-out scores, the data behind Figs 6 and 7.
using FamilyScores = std::vector<std::pair<ml::ModelKind, double>>;

/// Trained LS-side models. Shared pointers: the same trained models back
/// every co-location pair involving this service.
struct LsModels {
  std::shared_ptr<const ml::Classifier> qos;
  std::shared_ptr<const ml::Regressor> power;
  FamilyScores qos_accuracy;  ///< hold-out accuracy per family (Fig 6)
  FamilyScores power_r2;      ///< hold-out R^2 per family (Fig 7)
};

struct BeModels {
  std::shared_ptr<const ml::Regressor> ipc;
  std::shared_ptr<const ml::Regressor> power;
  double idle_power_w = 0.0;
  FamilyScores ipc_r2;    ///< Fig 6 (BE performance)
  FamilyScores power_r2;  ///< Fig 7
};

/// Train every paper model family per role, score on a hold-out set, and
/// deploy the best ("the most suitable one", Section V-C).
LsModels train_ls_models(const LsProfilingData& data,
                         const TrainerConfig& config);
BeModels train_be_models(const BeProfilingData& data,
                         const TrainerConfig& config);

/// The model bundle backing one co-location pair's Predictor.
struct TrainedModels {
  std::shared_ptr<const ml::Classifier> ls_qos;
  std::shared_ptr<const ml::Regressor> ls_power;
  std::shared_ptr<const ml::Regressor> be_ipc;
  std::shared_ptr<const ml::Regressor> be_power;
  double idle_power_w = 0.0;
};

TrainedModels assemble_models(const LsModels& ls, const BeModels& be);

/// Convenience: profile + train + assemble for one pair.
TrainedModels train_for_pair(const LsProfile& ls, const BeProfile& be,
                             const TrainerConfig& config = {});

/// Lasso feature-selection report: indices of the retained features
/// (paper says all four inputs survive selection).
std::vector<std::size_t> lasso_selected_features(
    const std::vector<ml::FeatureRow>& x, const std::vector<double>& y,
    double lambda = 0.05);

}  // namespace sturgeon::core
