#include "core/config_search.h"

#include <cmath>
#include <stdexcept>

#include "telemetry/trace.h"
#include "util/check.h"
#include "util/invariants.h"

namespace sturgeon::core {

namespace {

// Candidate-sweep attributes shared by every search flavor, so Sturgeon
// and the exhaustive oracle emit the same span schema.
void annotate_sweep(telemetry::Span& span, const SearchResult& r) {
  span.attr("candidates", static_cast<std::uint64_t>(r.candidates.size()))
      .attr("feasible", r.feasible)
      .attr("model_calls", r.model_invocations)
      .attr("predicted_throughput", r.predicted_throughput)
      .attr("predicted_power_w", r.predicted_power_w);
}

// Postcondition of every search flavor: the chosen partition is
// expressible on the machine, and a feasible result respects the budget
// its own power prediction was admitted under.
void check_search_result(const MachineSpec& m, const SearchResult& r,
                         double budget_w, const char* where) {
  ValidateConfig(m, r.best, where);
  if (r.feasible) {
    STURGEON_DCHECK(r.best.be.cores >= 1,
                    "" << where << ": feasible result with empty BE slice");
    STURGEON_DCHECK(std::isfinite(r.predicted_power_w) &&
                        r.predicted_power_w <= budget_w,
                    "" << where << ": predicted power " << r.predicted_power_w
                       << " W exceeds budget " << budget_w << " W");
    STURGEON_DCHECK(std::isfinite(r.predicted_throughput) &&
                        r.predicted_throughput >= 0.0,
                    "" << where << ": bad predicted throughput "
                       << r.predicted_throughput);
  }
}

}  // namespace

ConfigSearch::ConfigSearch(const Predictor& predictor, double power_budget_w)
    : predictor_(predictor), budget_w_(power_budget_w) {
  if (!std::isfinite(power_budget_w) || power_budget_w <= 0.0) {
    throw std::invalid_argument("ConfigSearch: bad power budget");
  }
}

void ConfigSearch::set_power_budget(double watts) {
  if (!std::isfinite(watts) || watts <= 0.0) {
    throw std::invalid_argument("ConfigSearch: bad power budget");
  }
  budget_w_ = watts;
}

std::optional<int> ConfigSearch::min_ls_cores(double qps_real) const {
  STURGEON_CHECK(std::isfinite(qps_real) && qps_real >= 0.0,
                 "min_ls_cores: qps = " << qps_real);
  const MachineSpec& m = predictor_.machine();
  AppSlice probe{m.num_cores, m.max_freq_level(), m.llc_ways};
  if (!predictor_.ls_qos_ok(qps_real, probe)) return std::nullopt;
  int lo = 1, hi = m.num_cores;  // invariant: hi feasible
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    probe.cores = mid;
    if (predictor_.ls_qos_ok(qps_real, probe)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

int ConfigSearch::min_ls_ways(double qps_real, AppSlice slice) const {
  const MachineSpec& m = predictor_.machine();
  int lo = 1, hi = m.llc_ways;  // caller guarantees hi feasible
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    slice.llc_ways = mid;
    if (predictor_.ls_qos_ok(qps_real, slice)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

int ConfigSearch::min_ls_freq(double qps_real, AppSlice slice) const {
  const MachineSpec& m = predictor_.machine();
  int lo = 0, hi = m.max_freq_level();  // caller guarantees hi feasible
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    slice.freq_level = mid;
    if (predictor_.ls_qos_ok(qps_real, slice)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  STURGEON_DCHECK_RANGE(hi, 0, m.max_freq_level());
  return hi;
}

std::optional<int> ConfigSearch::max_be_freq(double qps_real,
                                             const AppSlice& ls,
                                             AppSlice be) const {
  const MachineSpec& m = predictor_.machine();
  const auto fits = [&](int level) {
    be.freq_level = level;
    Partition p{ls, be};
    return predictor_.total_power_w(qps_real, p) <= budget_w_;
  };
  if (!fits(0)) return std::nullopt;
  int lo = 0, hi = m.max_freq_level();  // invariant: lo feasible
  while (lo < hi) {
    const int mid = lo + (hi - lo + 1) / 2;
    if (fits(mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

std::optional<Candidate> ConfigSearch::evaluate_candidate(double qps_real,
                                                          int c1) const {
  const MachineSpec& m = predictor_.machine();
  AppSlice ls{c1, m.max_freq_level(), m.llc_ways};
  // Just-enough ways, then just-enough frequency (Section V-B order).
  ls.llc_ways = min_ls_ways(qps_real, ls);
  if (ls.llc_ways >= m.llc_ways) return std::nullopt;  // nothing left for BE
  ls.freq_level = min_ls_freq(qps_real, ls);

  AppSlice be = Allocation::complement(m, ls, 0);
  if (be.cores < 1 || be.llc_ways < 1) return std::nullopt;
  const auto f2 = max_be_freq(qps_real, ls, be);
  if (!f2) return std::nullopt;  // power infeasible even at the bottom P-state
  be.freq_level = *f2;

  Candidate cand;
  cand.partition = Partition{ls, be};
  cand.predicted_throughput = predictor_.be_throughput(be);
  cand.predicted_power_w = predictor_.total_power_w(qps_real, cand.partition);
  return cand;
}

SearchResult ConfigSearch::search(double qps_real) const {
  const MachineSpec& m = predictor_.machine();
  const std::uint64_t invocations_before = predictor_.model_invocations();
  telemetry::Span span = tracer_ != nullptr
                             ? tracer_->start_span("candidate_eval")
                             : telemetry::Span{};
  SearchResult result;
  result.best = Partition::all_to_ls(m);

  const auto c1_min = min_ls_cores(qps_real);
  if (!c1_min) {
    // Even the whole machine cannot hold QoS: keep everything on the LS
    // service (Algorithm 1's conservative initial allocation).
    result.model_invocations =
        predictor_.model_invocations() - invocations_before;
    annotate_sweep(span, result);
    return result;
  }

  // Sweep candidate LS core counts upward from the minimum; each candidate
  // gives the BE side fewer cores but (potentially) a higher frequency.
  result.candidates.reserve(
      static_cast<std::size_t>(m.num_cores - *c1_min));
  for (int c1 = *c1_min; c1 < m.num_cores; ++c1) {
    const auto cand = evaluate_candidate(qps_real, c1);
    if (!cand) continue;
    result.candidates.push_back(*cand);

    if (!result.feasible ||
        cand->predicted_throughput > result.predicted_throughput) {
      result.feasible = true;
      result.best = cand->partition;
      result.predicted_throughput = cand->predicted_throughput;
      result.predicted_power_w = cand->predicted_power_w;
    }
    // Once the BE slice already runs at the top P-state, shrinking it
    // further cannot raise its frequency any more: stop (Section V-B).
    if (cand->partition.be.freq_level == m.max_freq_level()) break;
  }

  result.model_invocations =
      predictor_.model_invocations() - invocations_before;
  annotate_sweep(span, result);
  check_search_result(m, result, budget_w_, "ConfigSearch::search");
  return result;
}

SearchResult ConfigSearch::search_parallel(double qps_real,
                                           ThreadPool& pool) const {
  const MachineSpec& m = predictor_.machine();
  const std::uint64_t invocations_before = predictor_.model_invocations();
  telemetry::Span span = tracer_ != nullptr
                             ? tracer_->start_span("candidate_eval")
                             : telemetry::Span{};
  SearchResult result;
  result.best = Partition::all_to_ls(m);

  const auto c1_min = min_ls_cores(qps_real);
  if (!c1_min) {
    result.model_invocations =
        predictor_.model_invocations() - invocations_before;
    annotate_sweep(span, result);
    return result;
  }

  // Evaluate every candidate C1 independently; the sequential sweep's
  // early stop (first candidate whose F2 reaches the top P-state) is
  // applied afterwards so the result is bit-identical.
  const int first = *c1_min;
  const int count = m.num_cores - first;
  std::vector<std::optional<Candidate>> evaluated(
      static_cast<std::size_t>(count));
  pool.parallel_for(static_cast<std::size_t>(count), [&](std::size_t i) {
    evaluated[i] = evaluate_candidate(qps_real, first + static_cast<int>(i));
  });

  result.candidates.reserve(evaluated.size());
  for (const auto& cand : evaluated) {
    if (!cand) continue;
    result.candidates.push_back(*cand);
    if (!result.feasible ||
        cand->predicted_throughput > result.predicted_throughput) {
      result.feasible = true;
      result.best = cand->partition;
      result.predicted_throughput = cand->predicted_throughput;
      result.predicted_power_w = cand->predicted_power_w;
    }
    if (cand->partition.be.freq_level == m.max_freq_level()) break;
  }
  result.model_invocations =
      predictor_.model_invocations() - invocations_before;
  annotate_sweep(span, result);
  check_search_result(m, result, budget_w_, "ConfigSearch::search_parallel");
  return result;
}

SearchResult ConfigSearch::exhaustive(double qps_real) const {
  const MachineSpec& m = predictor_.machine();
  const std::uint64_t invocations_before = predictor_.model_invocations();
  telemetry::Span span = tracer_ != nullptr
                             ? tracer_->start_span("candidate_eval")
                             : telemetry::Span{};
  SearchResult result;
  result.best = Partition::all_to_ls(m);

  for (int c1 = 1; c1 < m.num_cores; ++c1) {
    for (int f1 = 0; f1 <= m.max_freq_level(); ++f1) {
      for (int l1 = 1; l1 < m.llc_ways; ++l1) {
        const AppSlice ls{c1, f1, l1};
        if (!predictor_.ls_qos_ok(qps_real, ls)) continue;
        for (int f2 = m.max_freq_level(); f2 >= 0; --f2) {
          AppSlice be = Allocation::complement(m, ls, f2);
          Partition p{ls, be};
          const double power = predictor_.total_power_w(qps_real, p);
          if (power > budget_w_) continue;
          const double thr = predictor_.be_throughput(be);
          if (!result.feasible || thr > result.predicted_throughput) {
            result.feasible = true;
            result.best = p;
            result.predicted_throughput = thr;
            result.predicted_power_w = power;
          }
          break;  // lower F2 can only reduce throughput
        }
      }
    }
  }
  result.model_invocations =
      predictor_.model_invocations() - invocations_before;
  annotate_sweep(span, result);
  check_search_result(m, result, budget_w_, "ConfigSearch::exhaustive");
  return result;
}

}  // namespace sturgeon::core
