#include "core/controller.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "telemetry/context.h"
#include "telemetry/monitor.h"
#include "util/check.h"
#include "util/invariants.h"

namespace sturgeon::core {

namespace {

// The member-initializer list dereferences the predictor (ConfigSearch and
// ResourceBalancer hold references), so the null check must run before any
// member is constructed — a check in the constructor body would be too late.
const Predictor& require_predictor(
    const std::shared_ptr<const Predictor>& predictor) {
  if (!predictor) {
    throw std::invalid_argument("SturgeonController: null predictor");
  }
  return *predictor;
}

}  // namespace

SturgeonController::SturgeonController(
    std::shared_ptr<const Predictor> predictor, double qos_target_ms,
    double power_budget_w, SturgeonOptions options)
    : predictor_(std::move(predictor)),
      qos_target_ms_(qos_target_ms),
      options_(options),
      search_(require_predictor(predictor_), power_budget_w),
      balancer_(*predictor_, power_budget_w,
                BalancerConfig{options.alpha, options.beta,
                               options.balancer_granularity}) {
  if (qos_target_ms <= 0.0) {
    throw std::invalid_argument("SturgeonController: bad QoS target");
  }
  if (options.alpha < 0.0 || options.beta <= options.alpha) {
    throw std::invalid_argument("SturgeonController: alpha/beta");
  }
  rebind_instruments();
}

std::string SturgeonController::name() const {
  return options_.enable_balancer ? "Sturgeon" : "Sturgeon-NoB";
}

std::string SturgeonController::describe() const {
  std::ostringstream os;
  os << name() << "(alpha=" << options_.alpha << ", beta=" << options_.beta
     << ", qos_target_ms=" << qos_target_ms_
     << ", power_budget_w=" << search_.power_budget_w() << ", balancer="
     << (options_.enable_balancer ? "on" : "off")
     << ", cache=" << (predictor_->cache_enabled() ? "on" : "off") << ")";
  return os.str();
}

void SturgeonController::rebind_instruments() {
  auto& metrics = telemetry().metrics();
  decisions_counter_ = &metrics.counter("controller.decisions");
  searches_counter_ = &metrics.counter("controller.searches");
  balancer_actions_counter_ = &metrics.counter("controller.balancer_actions");
  search_.set_tracer(&telemetry().tracer());
  balancer_.bind_telemetry(&metrics, &telemetry().tracer());
}

void SturgeonController::on_telemetry_attached() { rebind_instruments(); }

void SturgeonController::set_power_cap(double watts) {
  search_.set_power_budget(watts);
  balancer_.set_power_budget(watts);
  telemetry().metrics().gauge("controller.power_cap_w").set(watts);
}

std::uint64_t SturgeonController::searches_run() const {
  return searches_counter_->value();
}

std::uint64_t SturgeonController::balancer_actions() const {
  return balancer_actions_counter_->value();
}

void SturgeonController::reset() {
  balancer_armed_ = false;
  reserves_ = Reserves{};
  calm_intervals_ = 0;
  clear_decision();
  decisions_counter_->reset();
  searches_counter_->reset();
  balancer_actions_counter_->reset();
}

Partition SturgeonController::apply_reserves(Partition p) const {
  if (p.be.cores == 0) return p;
  const MachineSpec& m = predictor_->machine();
  const int cores = std::min(reserves_.cores, p.be.cores - 1);
  if (cores > 0) {
    p.ls.cores += cores;
    p.be.cores -= cores;
  }
  const int ways = std::min(reserves_.ways, p.be.llc_ways - 1);
  if (ways > 0) {
    p.ls.llc_ways += ways;
    p.be.llc_ways -= ways;
  }
  if (reserves_.freq > 0) {
    p.be.freq_level = std::max(0, p.be.freq_level - reserves_.freq);
    p.ls.freq_level = std::min(m.max_freq_level(),
                               p.ls.freq_level + reserves_.freq);
  }
  return p;
}

Partition SturgeonController::finish_decision(const Partition& p,
                                              Action action,
                                              std::string detail,
                                              double predicted_throughput,
                                              double predicted_power_w) {
  last_decision_.allocation = Allocation::of(p);
  last_decision_.action = action;
  last_decision_.detail = std::move(detail);
  last_decision_.predicted_throughput = predicted_throughput;
  last_decision_.predicted_power_w = predicted_power_w;

  auto& metrics = telemetry().metrics();
  metrics.gauge("controller.reserves.cores")
      .set(static_cast<double>(reserves_.cores));
  metrics.gauge("controller.reserves.ways")
      .set(static_cast<double>(reserves_.ways));
  metrics.gauge("controller.reserves.freq")
      .set(static_cast<double>(reserves_.freq));
  predictor_->publish_metrics(metrics);
  return p;
}

Partition SturgeonController::decide(const sim::ServerTelemetry& sample,
                                     const Partition& current) {
  // Telemetry and the running partition are this layer's preconditions:
  // a malformed sample or an inexpressible current config means a layer
  // below us already failed.
  ValidateConfig(predictor_->machine(), current, "SturgeonController::decide");
  STURGEON_DCHECK(std::isfinite(sample.ls.p95_ms) && sample.ls.p95_ms >= 0.0,
                  "decide: p95 = " << sample.ls.p95_ms);
  STURGEON_DCHECK(std::isfinite(sample.qps_real) && sample.qps_real >= 0.0,
                  "decide: qps = " << sample.qps_real);

  auto& tracer = telemetry().tracer();
  PolicyDecision& decision = begin_decision();
  decisions_counter_->inc();

  const double slack =
      telemetry::latency_slack(sample.ls.p95_ms, qos_target_ms_);
  const double qps = sample.qps_real;
  decision.slack = slack;

  {
    // Feature-extraction phase: slack banding and reserve bookkeeping.
    telemetry::Span span = tracer.start_span("features");
    span.attr("slack", slack)
        .attr("qps", qps)
        .attr("observed_p95_ms", sample.ls.p95_ms)
        .attr("observed_power_w", sample.power_w);

    // Decay the compensation reserves after sustained calm.
    if (slack >= options_.alpha && !balancer_.active()) {
      if (++calm_intervals_ >= options_.reserve_decay_interval_s) {
        reserves_.cores /= 2;
        reserves_.ways /= 2;
        reserves_.freq /= 2;
        calm_intervals_ = 0;
      }
    } else {
      calm_intervals_ = 0;
    }
  }

  // Slack inside the band: nothing to do (Algorithm 1 line 5). Let an
  // in-flight balancer sequence observe the settled state.
  if (slack >= options_.alpha && slack <= options_.beta) {
    if (options_.enable_balancer && balancer_armed_) {
      telemetry::Span span = tracer.start_span("balance");
      balancer_.step(slack, qps, current);  // disarms itself in-band
      span.attr("action", "settle");
    }
    return finish_decision(current, Action::kHold, {}, 0.0, 0.0);
  }

  // A live balancer sequence continues before any new search: it is the
  // feedback path that knows about unmodelled interference. Its net
  // LS-ward movement accumulates into the reserves.
  const auto run_balancer = [&](const Partition& base)
      -> std::optional<Partition> {
    telemetry::Span span = tracer.start_span("balance");
    const auto p = balancer_.step(slack, qps, base);
    span.attr("action",
              balancer_.last_action().empty() ? "none"
                                              : balancer_.last_action());
    if (p) {
      balancer_actions_counter_->inc();
      reserves_.cores =
          std::clamp(reserves_.cores + (p->ls.cores - base.ls.cores), 0,
                     predictor_->machine().num_cores - 1);
      reserves_.ways =
          std::clamp(reserves_.ways + (p->ls.llc_ways - base.ls.llc_ways), 0,
                     predictor_->machine().llc_ways - 1);
      reserves_.freq = std::clamp(
          reserves_.freq + (base.be.freq_level - p->be.freq_level), 0,
          predictor_->machine().max_freq_level());
    }
    return p;
  };

  if (options_.enable_balancer && balancer_armed_ && balancer_.active()) {
    if (const auto p = run_balancer(current)) {
      return finish_decision(*p, Action::kBalance,
                             balancer_.last_action(), 0.0, 0.0);
    }
  }

  // Find and apply a new configuration with the predictor (line 6),
  // shifted by the compensation reserves the balancer has accumulated.
  SearchResult result;
  {
    telemetry::Span span = tracer.start_span("search");
    result = search_.search(qps);
    searches_counter_->inc();
    result.best = apply_reserves(result.best);
    span.attr("feasible", result.feasible)
        .attr("model_calls", result.model_invocations)
        .attr("predicted_throughput", result.predicted_throughput)
        .attr("predicted_power_w", result.predicted_power_w)
        .attr("chosen", result.best.to_string(predictor_->machine()))
        .attr("cache_hit_rate", predictor_->cache_stats().hit_rate());
  }
  ValidateConfig(predictor_->machine(), result.best,
                 "SturgeonController::decide(apply_reserves)");
  if (!(result.best == current)) {
    if (options_.enable_balancer) {
      balancer_.arm(result.best);
      balancer_armed_ = true;
    }
    return finish_decision(result.best, Action::kSearch, {},
                           result.predicted_throughput,
                           result.predicted_power_w);
  }

  // The predictor proposes the configuration we are already running, yet
  // slack is still bad: unmodelled interference. Only the feedback
  // balancer can fix this (line 7: "fine-tune if necessary"); without it
  // (Sturgeon-NoB) the violation persists -- exactly the paper's Fig 9.
  if (slack < options_.alpha && options_.enable_balancer) {
    if (!balancer_armed_) {
      balancer_.arm(current);
      balancer_armed_ = true;
    }
    if (const auto p = run_balancer(current)) {
      return finish_decision(*p, Action::kBalance,
                             balancer_.last_action(), 0.0, 0.0);
    }
  }
  return finish_decision(current, Action::kHold, {},
                         result.predicted_throughput,
                         result.predicted_power_w);
}

}  // namespace sturgeon::core
