// K-way configuration search: the N-slice generalization of Sturgeon's
// pair search (paper Section V-B).
//
// The pair search exploits LS/BE monotonicity to enumerate "just-enough"
// LS candidates in O(N log N). With K workloads (any mix of LS services
// with individual QoS targets and priority-ranked BE applications) the
// candidate lattice is no longer one-dimensional, so KwaySearch uses a
// different sub-millisecond strategy:
//
//   1. greedy seed -- every slice starts minimal; each LS slice grows
//      (cores, then ways, then frequency) until its own predictor says
//      its QoS target holds at its load; leftover cores/ways spread over
//      the BE slices by priority weight; BE frequencies rise while the
//      summed power model fits the budget;
//   2. warm start -- when the caller passes last epoch's allocation and
//      it is still feasible at the new loads, it replaces the seed
//      (steady-state searches start at the optimum and converge in one
//      round);
//   3. hill-climb -- single-unit moves (one core or one way between any
//      ordered slice pair, one P-state up or down on any slice) are
//      scanned in a fixed order; the best strictly-improving feasible
//      move is taken until none exists.
//
// The objective is the priority-weighted sum of predicted BE throughputs
// (LS slices are constraints, not objective terms). Total power is
// approximated as sum(ls_power_w) + sum(be_power_w), exact at K = 2 by
// construction of the pair predictor and conservative (uncore counted
// once per LS slice) beyond it.
//
// K = 2 with a shared predictor and the canonical {LS, BE} shape does
// not hill-climb at all: it delegates to ConfigSearch::search and
// converts the result, so pair answers are bit-identical to the pair
// path. Everything here is deterministic -- fixed enumeration order, no
// RNG, no time -- preserving the repo's bit-reproducibility discipline.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config_search.h"
#include "core/predictor.h"
#include "util/types.h"

namespace sturgeon::core {

struct KwaySearchResult {
  /// Best feasible allocation; all-to-first fallback when no K-way split
  /// satisfies every LS target under the budget (feasible == false).
  Allocation best;
  bool feasible = false;
  /// Priority-weighted sum of predicted BE throughputs of `best`.
  double objective = 0.0;
  double predicted_power_w = 0.0;
  /// Predicted BE throughput per slice (0 for LS slices), aligned with
  /// `best`.
  std::vector<double> slice_throughput;
  std::uint64_t model_invocations = 0;  ///< predictions this search used
  int rounds = 0;  ///< hill-climb rounds run (0 = seed was optimal or the
                   ///< K = 2 delegation path answered)
};

class KwaySearch {
 public:
  /// One predictor per workload, aligned with `workloads` (an LS
  /// workload's predictor answers ls_qos_ok/ls_power_w for ITS demand
  /// model; a BE workload's answers be_throughput/be_power_w). All
  /// predictors must share the same MachineSpec and outlive the search.
  KwaySearch(WorkloadSet workloads,
             std::vector<const Predictor*> predictors, double power_budget_w);

  /// Convenience: every workload shares one predictor (the common case:
  /// one profiled LS service and one profiled BE app family).
  KwaySearch(WorkloadSet workloads, const Predictor& predictor,
             double power_budget_w);

  /// Search at per-workload loads `qps_real` (indexed like the workload
  /// set; entries for BE workloads are ignored). `warm_start`, when given
  /// and still feasible, seeds the climb with last epoch's allocation.
  KwaySearchResult search(const std::vector<double>& qps_real,
                          const Allocation* warm_start = nullptr) const;

  /// Exhaustive oracle over the full K-way grid (every composition of
  /// cores and ways times every frequency combination). Exponential in
  /// K -- only for small machines in tests and search-quality checks.
  KwaySearchResult exhaustive(const std::vector<double>& qps_real) const;

  double power_budget_w() const { return budget_w_; }

  /// Retarget the budget; applies from the next search. Must be > 0.
  void set_power_budget(double watts);

  const WorkloadSet& workloads() const { return workloads_; }
  const MachineSpec& machine() const { return predictors_[0]->machine(); }

  /// Summed power of `a` at loads `qps_real` under the per-slice model
  /// (exposed for tests and the bench harness).
  double predicted_power_w(const std::vector<double>& qps_real,
                           const Allocation& a) const;

  /// Priority-weighted BE objective of `a`.
  double objective(const Allocation& a) const;

 private:
  /// True iff `a` is expressible, every LS slice meets its target at its
  /// load, and the summed power fits the budget.
  bool feasible(const std::vector<double>& qps_real,
                const Allocation& a) const;

  /// The greedy seed described in the header comment; nullopt when some
  /// LS target cannot be met even greedily.
  std::optional<Allocation> greedy_seed(
      const std::vector<double>& qps_real) const;

  /// Best strictly-improving single-unit move from `a`, or nullopt at a
  /// local optimum. Scans moves in a fixed order for determinism.
  std::optional<Allocation> best_move(const std::vector<double>& qps_real,
                                      const Allocation& a,
                                      double current_objective) const;

  KwaySearchResult finish(const std::vector<double>& qps_real, Allocation a,
                          bool feasible, int rounds,
                          std::uint64_t invocations_before) const;

  std::uint64_t total_invocations() const;
  void validate_loads(const std::vector<double>& qps_real) const;

  WorkloadSet workloads_;
  std::vector<const Predictor*> predictors_;
  double budget_w_;
  /// Non-null exactly when the workload set is the canonical {LS, BE}
  /// pair sharing one predictor: the delegation path that recovers the
  /// pair search bit-for-bit.
  std::unique_ptr<ConfigSearch> pair_search_;
};

}  // namespace sturgeon::core
