// Configuration search (paper Section V-B).
//
// The exhaustive space is N_C x N_F x N_L x N_F (40000+ configurations on
// the paper platform). Sturgeon's search exploits monotonicity: BE
// throughput only grows when the LS slice shrinks, so it is enough to
// enumerate configurations with "just-enough" LS resources. For each
// candidate LS core count C1 (starting from the binary-searched minimum),
// the minimum feasible L1 and F1 are binary-searched, the BE slice takes
// the remainder, and the maximum F2 under the power budget is binary-
// searched. Candidates stop once F2 reaches the top P-state; the
// candidate with the highest predicted BE throughput wins. Complexity
// O(N log N) versus O(N^4) exhaustive, as derived in the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/predictor.h"
#include "util/thread_pool.h"

namespace sturgeon::telemetry {
class Tracer;
}  // namespace sturgeon::telemetry

namespace sturgeon::core {

struct Candidate {
  Partition partition;
  double predicted_throughput = 0.0;
  double predicted_power_w = 0.0;
};

struct SearchResult {
  /// Best feasible partition; all-to-LS fallback when nothing fits the
  /// QoS target (feasible == false) or nothing fits the power budget.
  Partition best;
  bool feasible = false;
  double predicted_throughput = 0.0;
  double predicted_power_w = 0.0;
  std::vector<Candidate> candidates;      ///< all feasible candidates seen
  std::uint64_t model_invocations = 0;    ///< predictions this search used
};

class ConfigSearch {
 public:
  /// `power_budget_w` is the node budget (LS-at-peak power, Section
  /// III-B). The predictor is borrowed and must outlive the search.
  ConfigSearch(const Predictor& predictor, double power_budget_w);

  /// Sturgeon's O(N log N) search at real-scale load `qps_real`.
  SearchResult search(double qps_real) const;

  /// Same result as search(), but candidate LS core counts are evaluated
  /// concurrently on `pool` (paper Section VII-E: "the search can also be
  /// further accelerated using multithreading"). Deterministic: the
  /// candidate set and winner match the sequential search.
  SearchResult search_parallel(double qps_real, ThreadPool& pool) const;

  /// Exhaustive O(N^4) reference search over the full grid; used by the
  /// overhead experiment (Section VII-E) and as a search-quality oracle.
  SearchResult exhaustive(double qps_real) const;

  double power_budget_w() const { return budget_w_; }

  /// Retarget the budget (e.g. a cluster coordinator re-capped the node);
  /// applies from the next search. Must be > 0.
  void set_power_budget(double watts);

  /// Emit a "candidate_eval" child span (candidate count, model calls,
  /// winner) through `tracer` on every search. Nullptr switches the
  /// instrumentation off; the tracer must outlive the search.
  void set_tracer(telemetry::Tracer* tracer) { tracer_ = tracer; }

 private:
  /// Smallest C1 in [1, num_cores] meeting QoS with F1, L1 maxed, or
  /// nullopt if even the full machine fails.
  std::optional<int> min_ls_cores(double qps_real) const;

  /// Smallest feasible L1 (resp. F1) for a fixed slice; assumes
  /// feasibility is monotone in the searched dimension.
  int min_ls_ways(double qps_real, AppSlice slice) const;
  int min_ls_freq(double qps_real, AppSlice slice) const;

  /// Largest F2 whose total power fits the budget, or nullopt if even the
  /// lowest P-state overshoots.
  std::optional<int> max_be_freq(double qps_real, const AppSlice& ls,
                                 AppSlice be) const;

  /// Evaluate one candidate LS core count: just-enough ways and
  /// frequency, BE complement, budget-limited F2, predicted throughput
  /// and power. Shared by search() and search_parallel(); nullopt when
  /// the candidate leaves nothing for the BE app or busts the budget.
  std::optional<Candidate> evaluate_candidate(double qps_real, int c1) const;

  const Predictor& predictor_;
  double budget_w_;
  telemetry::Tracer* tracer_ = nullptr;
};

}  // namespace sturgeon::core
