#include "core/policy.h"

#include <stdexcept>

#include "telemetry/context.h"

namespace sturgeon::core {

const char* to_string(Action action) {
  switch (action) {
    case Action::kNone: return "none";
    case Action::kHold: return "hold";
    case Action::kSearch: return "search";
    case Action::kBalance: return "balance";
    case Action::kRevert: return "revert";
    case Action::kStatic: return "static";
    case Action::kUpsize: return "upsize";
    case Action::kDownsize: return "downsize";
    case Action::kProbe: return "probe";
    case Action::kSeedBe: return "seed_be";
    case Action::kPowerCap: return "power_cap";
    case Action::kBeBoost: return "be_boost";
    case Action::kSafeMode: return "safe-mode";
  }
  return "unknown";
}

Partition PolicyDecision::partition() const {
  if (allocation.size() == 0) return Partition{};
  return allocation.to_partition();
}

std::string PolicyDecision::action_string() const {
  std::string out = to_string(action);
  if (!detail.empty()) {
    out += ':';
    out += detail;
  }
  return out;
}

Policy::Policy() : telemetry_(telemetry::TelemetryContext::noop()) {}

void Policy::attach_telemetry(
    std::shared_ptr<telemetry::TelemetryContext> context) {
  telemetry_ =
      context ? std::move(context) : telemetry::TelemetryContext::noop();
  on_telemetry_attached();
}

Allocation Policy::decide(const sim::ServerTelemetry& sample,
                          const Allocation& current) {
  if (current.size() != 2) {
    throw std::invalid_argument(
        name() + ": pair policy cannot decide a K = " +
        std::to_string(current.size()) + " allocation");
  }
  return Allocation::of(decide(sample, current.to_partition()));
}

PolicyDecision& Policy::begin_decision() {
  const std::uint64_t next_epoch = last_decision_.epoch + 1;
  last_decision_ = PolicyDecision{};
  last_decision_.epoch = next_epoch;
  return last_decision_;
}

}  // namespace sturgeon::core
