#include "core/policy.h"

#include "telemetry/context.h"

namespace sturgeon::core {

Policy::Policy() : telemetry_(telemetry::TelemetryContext::noop()) {}

void Policy::attach_telemetry(
    std::shared_ptr<telemetry::TelemetryContext> context) {
  telemetry_ =
      context ? std::move(context) : telemetry::TelemetryContext::noop();
  on_telemetry_attached();
}

PolicyDecision& Policy::begin_decision() {
  const std::uint64_t next_epoch = last_decision_.epoch + 1;
  last_decision_ = PolicyDecision{};
  last_decision_.epoch = next_epoch;
  return last_decision_;
}

}  // namespace sturgeon::core
