#include "core/prediction_cache.h"

#include <cmath>
#include <stdexcept>

#include "util/check.h"

namespace sturgeon::core {

ModelCallBreakdown ModelCallCounters::snapshot() const {
  ModelCallBreakdown b;
  b.ls_qos = ls_qos.load(std::memory_order_relaxed);
  b.ls_power = ls_power.load(std::memory_order_relaxed);
  b.be_ipc = be_ipc.load(std::memory_order_relaxed);
  b.be_power = be_power.load(std::memory_order_relaxed);
  return b;
}

void ModelCallCounters::reset() {
  ls_qos.store(0, std::memory_order_relaxed);
  ls_power.store(0, std::memory_order_relaxed);
  be_ipc.store(0, std::memory_order_relaxed);
  be_power.store(0, std::memory_order_relaxed);
}

PredictionCache::PredictionCache(const MachineSpec& machine,
                                 PredictionCacheConfig config)
    : machine_(machine), config_(config) {
  if (!std::isfinite(config.qps_bucket_width) ||
      config.qps_bucket_width <= 0.0) {
    throw std::invalid_argument("PredictionCache: bad qps_bucket_width");
  }
  if (config.num_shards < 1) {
    throw std::invalid_argument("PredictionCache: num_shards < 1");
  }
  table_size_ = static_cast<std::size_t>(machine_.num_cores + 1) *
                static_cast<std::size_t>(machine_.num_freq_levels()) *
                static_cast<std::size_t>(machine_.llc_ways + 1);
  shards_.reserve(config_.num_shards);
  for (std::size_t i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::size_t PredictionCache::slice_index(const AppSlice& slice) const {
  STURGEON_DCHECK_RANGE(slice.cores, 0, machine_.num_cores);
  STURGEON_DCHECK_RANGE(slice.freq_level, 0, machine_.max_freq_level());
  STURGEON_DCHECK_RANGE(slice.llc_ways, 0, machine_.llc_ways);
  const std::size_t nf = static_cast<std::size_t>(machine_.num_freq_levels());
  const std::size_t nw = static_cast<std::size_t>(machine_.llc_ways + 1);
  return (static_cast<std::size_t>(slice.cores) * nf +
          static_cast<std::size_t>(slice.freq_level)) *
             nw +
         static_cast<std::size_t>(slice.llc_ways);
}

AppSlice PredictionCache::slice_at(std::size_t index) const {
  STURGEON_DCHECK(index < table_size_,
                  "slice_at: index " << index << " >= " << table_size_);
  const std::size_t nf = static_cast<std::size_t>(machine_.num_freq_levels());
  const std::size_t nw = static_cast<std::size_t>(machine_.llc_ways + 1);
  AppSlice s;
  s.llc_ways = static_cast<int>(index % nw);
  s.freq_level = static_cast<int>((index / nw) % nf);
  s.cores = static_cast<int>(index / (nw * nf));
  return s;
}

std::int64_t PredictionCache::bucket_of(double qps_real) const {
  return static_cast<std::int64_t>(
      std::floor(qps_real / config_.qps_bucket_width));
}

PredictionCache::Shard& PredictionCache::shard_of(std::int64_t bucket) {
  const auto b = static_cast<std::uint64_t>(bucket);
  return *shards_[static_cast<std::size_t>(b % shards_.size())];
}

int PredictionCache::ls_qos(double qps_real, const AppSlice& slice,
                            const FillInt& fill) {
  const std::size_t idx = slice_index(slice);
  const std::int64_t bucket = bucket_of(qps_real);
  Shard& shard = shard_of(bucket);
  std::shared_ptr<const std::vector<int>> table;
  {
    MutexLock lock(shard.mu);
    LsEntry& e = shard.buckets[bucket];
    if (e.qos && e.qos_qps == qps_real) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      table = e.qos;
    } else {
      misses_.fetch_add(1, std::memory_order_relaxed);
      auto fresh = std::make_shared<std::vector<int>>(table_size_, 0);
      fill(qps_real, *fresh);
      fills_.fetch_add(1, std::memory_order_relaxed);
      e.qos = std::move(fresh);
      e.qos_qps = qps_real;
      table = e.qos;
    }
  }
  return (*table)[idx];
}

double PredictionCache::ls_power(double qps_real, const AppSlice& slice,
                                 const FillDouble& fill) {
  const std::size_t idx = slice_index(slice);
  const std::int64_t bucket = bucket_of(qps_real);
  Shard& shard = shard_of(bucket);
  std::shared_ptr<const std::vector<double>> table;
  {
    MutexLock lock(shard.mu);
    LsEntry& e = shard.buckets[bucket];
    if (e.power && e.power_qps == qps_real) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      table = e.power;
    } else {
      misses_.fetch_add(1, std::memory_order_relaxed);
      auto fresh = std::make_shared<std::vector<double>>(table_size_, 0.0);
      fill(qps_real, *fresh);
      fills_.fetch_add(1, std::memory_order_relaxed);
      e.power = std::move(fresh);
      e.power_qps = qps_real;
      table = e.power;
    }
  }
  return (*table)[idx];
}

double PredictionCache::be_ipc(const AppSlice& slice, const FillDouble& fill) {
  const std::size_t idx = slice_index(slice);
  std::shared_ptr<const std::vector<double>> table;
  {
    MutexLock lock(be_mu_);
    if (be_ipc_table_) {
      hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      misses_.fetch_add(1, std::memory_order_relaxed);
      auto fresh = std::make_shared<std::vector<double>>(table_size_, 0.0);
      fill(0.0, *fresh);
      fills_.fetch_add(1, std::memory_order_relaxed);
      be_ipc_table_ = std::move(fresh);
    }
    table = be_ipc_table_;
  }
  return (*table)[idx];
}

double PredictionCache::be_power(const AppSlice& slice,
                                 const FillDouble& fill) {
  const std::size_t idx = slice_index(slice);
  std::shared_ptr<const std::vector<double>> table;
  {
    MutexLock lock(be_mu_);
    if (be_power_table_) {
      hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      misses_.fetch_add(1, std::memory_order_relaxed);
      auto fresh = std::make_shared<std::vector<double>>(table_size_, 0.0);
      fill(0.0, *fresh);
      fills_.fetch_add(1, std::memory_order_relaxed);
      be_power_table_ = std::move(fresh);
    }
    table = be_power_table_;
  }
  return (*table)[idx];
}

void PredictionCache::invalidate() {
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->buckets.clear();
  }
  {
    MutexLock lock(be_mu_);
    be_ipc_table_.reset();
    be_power_table_.reset();
  }
  generation_.fetch_add(1, std::memory_order_relaxed);
}

telemetry::PredictionCacheStats PredictionCache::stats() const {
  telemetry::PredictionCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.fills = fills_.load(std::memory_order_relaxed);
  s.generation = generation_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace sturgeon::core
