#include "core/trainer.h"

#include <algorithm>
#include <stdexcept>

#include "core/features.h"
#include "ml/linear.h"
#include "util/rng.h"
#include "util/stats.h"

namespace sturgeon::core {

namespace {

/// Profiling runs happen on a quiet machine: no interference episodes.
sim::ServerConfig quiet(const sim::ServerConfig& base) {
  sim::ServerConfig cfg = base;
  cfg.interference.enabled = false;
  return cfg;
}

/// The minimal "parking" slice used for the idle side of a solo probe.
AppSlice parking_slice() { return AppSlice{1, 0, 1}; }

void check_config(const TrainerConfig& config) {
  if (config.ls_samples < 10 || config.be_samples < 10 ||
      config.intervals_per_sample < 1 || config.qos_label_margin <= 0.0 ||
      config.qos_label_margin > 1.0) {
    throw std::invalid_argument("TrainerConfig: bad parameters");
  }
}

}  // namespace

LsProfilingData collect_ls_profiling(const LsProfile& ls,
                                     const TrainerConfig& config) {
  check_config(config);
  const MachineSpec machine = config.server.machine;
  // Any BE profile serves for LS-solo runs (the BE slice stays empty).
  const BeProfile& dummy_be = be_catalog().front();
  LsProfilingData data;
  Rng rng(config.seed ^ std::hash<std::string>{}(ls.name));

  const auto probe = [&](double load, const AppSlice& slice) {
    sim::SimulatedServer server(ls, dummy_be, rng.next_u64(),
                                quiet(config.server));
    Partition p;
    p.ls = slice;
    p.be = AppSlice{0, 0, 0};
    server.set_partition(p);
    bool qos_ok = true;
    double peak_power = 0.0;
    for (int i = 0; i < config.intervals_per_sample; ++i) {
      const auto t = server.step(load);
      qos_ok = qos_ok &&
               t.ls.p95_ms <= config.qos_label_margin * ls.qos_target_ms;
      peak_power = std::max(peak_power, t.power_w);
    }
    data.x.push_back(ls_features(machine, load * ls.peak_qps, slice));
    data.qos_ok.push_back(qos_ok ? 1 : 0);
    data.power_w.push_back(peak_power);
    return qos_ok;
  };

  // Uniform sweep over the configuration space.
  for (int s = 0; s < config.ls_samples; ++s) {
    AppSlice slice;
    slice.cores = rng.uniform_int(1, machine.num_cores);
    slice.freq_level = rng.uniform_int(0, machine.max_freq_level());
    slice.llc_ways = rng.uniform_int(1, machine.llc_ways);
    probe(rng.uniform(0.05, 1.0), slice);
  }

  // Boundary-focused campaigns: binary-search the measured minimum
  // feasible core count at random (load, frequency, ways), then the
  // minimum feasible way count near that core count. Every probe run
  // becomes a labeled sample, concentrating data on the feasibility edge
  // that the controller's own binary searches will walk.
  for (int s = 0; s < config.ls_boundary_searches; ++s) {
    const double load = rng.uniform(0.05, 1.0);
    AppSlice slice;
    slice.freq_level = rng.uniform_int(0, machine.max_freq_level());
    slice.llc_ways = rng.uniform_int(1, machine.llc_ways);
    int lo = 1, hi = machine.num_cores;
    slice.cores = hi;
    if (!probe(load, slice)) continue;  // infeasible even with all cores
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      slice.cores = mid;
      if (probe(load, slice)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    slice.cores = std::min(machine.num_cores, hi + rng.uniform_int(0, 2));
    slice.llc_ways = machine.llc_ways;
    if (probe(load, slice)) {
      int wlo = 1, whi = machine.llc_ways;
      while (wlo < whi) {
        const int mid = wlo + (whi - wlo) / 2;
        slice.llc_ways = mid;
        if (probe(load, slice)) {
          whi = mid;
        } else {
          wlo = mid + 1;
        }
      }
    }
  }
  return data;
}

BeProfilingData collect_be_profiling(const BeProfile& be,
                                     const TrainerConfig& config) {
  check_config(config);
  const MachineSpec machine = config.server.machine;
  // Any LS profile serves for BE-solo runs (zero load, parked slice).
  const LsProfile& dummy_ls = ls_catalog().front();
  BeProfilingData data;
  Rng rng(config.seed ^ std::hash<std::string>{}(be.name) ^ 0xbeULL);

  // Idle probe: both sides parked; the BE incremental power is defined
  // against this baseline.
  {
    sim::SimulatedServer server(dummy_ls, be, rng.next_u64(),
                                quiet(config.server));
    Partition p;
    p.ls = parking_slice();
    p.be = AppSlice{0, 0, 0};
    server.set_partition(p);
    double peak = 0.0;
    for (int i = 0; i < config.intervals_per_sample; ++i) {
      peak = std::max(peak, server.step(0.0).power_w);
    }
    data.idle_power_w = peak;
  }

  for (int s = 0; s < config.be_samples; ++s) {
    AppSlice slice;
    slice.cores = rng.uniform_int(1, machine.num_cores - 1);
    slice.freq_level = rng.uniform_int(0, machine.max_freq_level());
    slice.llc_ways = rng.uniform_int(1, machine.llc_ways - 1);

    sim::SimulatedServer server(dummy_ls, be, rng.next_u64(),
                                quiet(config.server));
    Partition p;
    p.ls = parking_slice();
    p.be = slice;
    server.set_partition(p);

    double peak_power = 0.0;
    double ipc_sum = 0.0;
    for (int i = 0; i < config.intervals_per_sample; ++i) {
      const auto t = server.step(0.0);
      peak_power = std::max(peak_power, t.power_w);
      ipc_sum += t.be_ipc;
    }
    data.x.push_back(be_features(machine, kNativeInputLevel, slice));
    data.ipc.push_back(ipc_sum / config.intervals_per_sample);
    data.power_w.push_back(std::max(0.0, peak_power - data.idle_power_w));
  }
  return data;
}

namespace {

/// Split parallel arrays into train/test with one shuffled index set.
struct Split {
  std::vector<std::size_t> train, test;
};
Split make_split(std::size_t n, double test_fraction, std::uint64_t seed) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  Rng rng(seed);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(idx[i - 1], idx[rng.next_below(i)]);
  }
  const auto n_test = static_cast<std::size_t>(test_fraction * n);
  Split s;
  s.test.assign(idx.begin(), idx.begin() + static_cast<long>(n_test));
  s.train.assign(idx.begin() + static_cast<long>(n_test), idx.end());
  return s;
}

ml::DataSet gather(const std::vector<ml::FeatureRow>& x,
                   const std::vector<double>& y,
                   const std::vector<std::size_t>& idx) {
  ml::DataSet d;
  for (std::size_t i : idx) d.add(x[i], y[i]);
  return d;
}

/// Train every regression family, score on hold-out, return the winner
/// refit on all data.
std::shared_ptr<const ml::Regressor> select_regressor(
    const std::vector<ml::FeatureRow>& x, const std::vector<double>& y,
    const TrainerConfig& config, std::uint64_t salt,
    FamilyScores& scores_out) {
  if (x.empty()) throw std::invalid_argument("select_regressor: no data");
  const Split split =
      make_split(x.size(), config.test_fraction, config.seed ^ salt);
  const ml::DataSet train = gather(x, y, split.train);
  const ml::DataSet test = gather(x, y, split.test);
  ml::ModelKind best_kind = ml::ModelKind::kKnn;
  double best_r2 = -1e30;
  for (ml::ModelKind kind : ml::paper_regression_kinds()) {
    auto model = ml::make_regressor(kind, config.seed ^ salt);
    const double r2 = ml::holdout_r2(*model, train, test);
    scores_out.emplace_back(kind, r2);
    if (r2 > best_r2) {
      best_r2 = r2;
      best_kind = kind;
    }
  }
  auto best = ml::make_regressor(best_kind, config.seed ^ salt);
  ml::DataSet all;
  for (std::size_t i = 0; i < x.size(); ++i) all.add(x[i], y[i]);
  best->fit(all);
  return std::shared_ptr<const ml::Regressor>(std::move(best));
}

std::shared_ptr<const ml::Classifier> select_classifier(
    const std::vector<ml::FeatureRow>& x, const std::vector<int>& labels,
    const TrainerConfig& config, std::uint64_t salt,
    FamilyScores& scores_out) {
  if (x.empty()) throw std::invalid_argument("select_classifier: no data");
  const Split split =
      make_split(x.size(), config.test_fraction, config.seed ^ salt);
  std::vector<ml::FeatureRow> xtr, xte;
  std::vector<int> ytr, yte;
  for (std::size_t i : split.train) {
    xtr.push_back(x[i]);
    ytr.push_back(labels[i]);
  }
  for (std::size_t i : split.test) {
    xte.push_back(x[i]);
    yte.push_back(labels[i]);
  }
  ml::ModelKind best_kind = ml::ModelKind::kDecisionTree;
  double best_acc = -1.0;
  for (ml::ModelKind kind : ml::paper_classification_kinds()) {
    auto model = ml::make_classifier(kind, config.seed ^ salt);
    const double acc = ml::holdout_accuracy(*model, xtr, ytr, xte, yte);
    scores_out.emplace_back(kind, acc);
    if (acc > best_acc) {
      best_acc = acc;
      best_kind = kind;
    }
  }
  auto best = ml::make_classifier(best_kind, config.seed ^ salt);
  best->fit(x, labels);
  return std::shared_ptr<const ml::Classifier>(std::move(best));
}

}  // namespace

LsModels train_ls_models(const LsProfilingData& data,
                         const TrainerConfig& config) {
  LsModels models;
  models.qos =
      select_classifier(data.x, data.qos_ok, config, 0xa1,
                        models.qos_accuracy);
  models.power =
      select_regressor(data.x, data.power_w, config, 0xa2, models.power_r2);
  return models;
}

BeModels train_be_models(const BeProfilingData& data,
                         const TrainerConfig& config) {
  BeModels models;
  models.idle_power_w = data.idle_power_w;
  models.ipc = select_regressor(data.x, data.ipc, config, 0xa3,
                                models.ipc_r2);
  models.power =
      select_regressor(data.x, data.power_w, config, 0xa4, models.power_r2);
  return models;
}

TrainedModels assemble_models(const LsModels& ls, const BeModels& be) {
  TrainedModels m;
  m.ls_qos = ls.qos;
  m.ls_power = ls.power;
  m.be_ipc = be.ipc;
  m.be_power = be.power;
  m.idle_power_w = be.idle_power_w;
  return m;
}

TrainedModels train_for_pair(const LsProfile& ls, const BeProfile& be,
                             const TrainerConfig& config) {
  const auto ls_models = train_ls_models(collect_ls_profiling(ls, config),
                                         config);
  const auto be_models = train_be_models(collect_be_profiling(be, config),
                                         config);
  return assemble_models(ls_models, be_models);
}

std::vector<std::size_t> lasso_selected_features(
    const std::vector<ml::FeatureRow>& x, const std::vector<double>& y,
    double lambda) {
  ml::DataSet d;
  for (std::size_t i = 0; i < x.size(); ++i) d.add(x[i], y[i]);
  ml::LassoRegression lasso(lambda, 3000);
  lasso.fit(d);
  return lasso.selected_features();
}

}  // namespace sturgeon::core
