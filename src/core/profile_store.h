// Persistence for profiling campaigns. The paper's deployment stores
// offline-trained models on every server (Section V-C); this store
// persists the *profiling datasets* (CSV, versioned header) so nodes can
// retrain any model family in milliseconds without re-running the
// profiling cluster, and so campaigns are auditable.
#pragma once

#include <iosfwd>
#include <string>

#include "core/trainer.h"

namespace sturgeon::core {

/// Serialize a profiling dataset as CSV with a schema-version header.
void save_ls_profiling(std::ostream& os, const LsProfilingData& data);
void save_be_profiling(std::ostream& os, const BeProfilingData& data);

/// Parse datasets written by the save functions. Throws
/// std::runtime_error on version/schema mismatch or malformed rows.
LsProfilingData load_ls_profiling(std::istream& is);
BeProfilingData load_be_profiling(std::istream& is);

/// File-path convenience wrappers; throw std::runtime_error on IO errors.
void save_ls_profiling_file(const std::string& path,
                            const LsProfilingData& data);
void save_be_profiling_file(const std::string& path,
                            const BeProfilingData& data);
LsProfilingData load_ls_profiling_file(const std::string& path);
BeProfilingData load_be_profiling_file(const std::string& path);

}  // namespace sturgeon::core
