#include "core/predictor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/features.h"
#include "telemetry/metrics.h"
#include "util/check.h"
#include "util/invariants.h"

namespace sturgeon::core {

namespace {

/// Flattened feature matrix covering every dense-table slice, in
/// slice_at() order. `row_fn` maps an AppSlice to its FeatureRow, so the
/// fills reuse the exact feature encoding of the scalar paths.
template <typename RowFn>
std::vector<double> build_feature_matrix(const PredictionCache& cache,
                                         RowFn&& row_fn,
                                         std::size_t* stride_out) {
  const std::size_t n = cache.table_size();
  std::vector<double> xs;
  std::size_t stride = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const ml::FeatureRow row = row_fn(cache.slice_at(i));
    if (i == 0) {
      stride = row.size();
      xs.reserve(n * stride);
    }
    STURGEON_DCHECK(row.size() == stride, "feature matrix: ragged row");
    xs.insert(xs.end(), row.begin(), row.end());
  }
  *stride_out = stride;
  return xs;
}

}  // namespace

TrainedModels Predictor::validate_models(TrainedModels models) {
  if (!models.ls_qos || !models.ls_power || !models.be_ipc ||
      !models.be_power) {
    throw std::invalid_argument("Predictor: missing trained models");
  }
  return models;
}

Predictor::Predictor(const MachineSpec& machine, TrainedModels models)
    : machine_(machine), models_(validate_models(std::move(models))) {
  STURGEON_CHECK(machine_.num_cores >= 1 && machine_.llc_ways >= 1 &&
                     machine_.num_freq_levels() >= 1,
                 "Predictor: degenerate machine spec");
}

void Predictor::enable_cache(PredictionCacheConfig config) {
  cache_ = std::make_unique<PredictionCache>(machine_, config);
}

void Predictor::disable_cache() { cache_.reset(); }

void Predictor::swap_models(TrainedModels models) {
  models_ = validate_models(std::move(models));
  if (cache_) cache_->invalidate();
}

telemetry::PredictionCacheStats Predictor::cache_stats() const {
  return cache_ ? cache_->stats() : telemetry::PredictionCacheStats{};
}

void Predictor::publish_metrics(telemetry::MetricsRegistry& metrics) const {
  const ModelCallBreakdown calls = counters_.snapshot();
  metrics.gauge("predictor.calls.ls_qos").set(static_cast<double>(calls.ls_qos));
  metrics.gauge("predictor.calls.ls_power")
      .set(static_cast<double>(calls.ls_power));
  metrics.gauge("predictor.calls.be_ipc")
      .set(static_cast<double>(calls.be_ipc));
  metrics.gauge("predictor.calls.be_power")
      .set(static_cast<double>(calls.be_power));
  metrics.gauge("predictor.calls.total")
      .set(static_cast<double>(calls.total()));

  const telemetry::PredictionCacheStats cache = cache_stats();
  metrics.gauge("cache.hits").set(static_cast<double>(cache.hits));
  metrics.gauge("cache.misses").set(static_cast<double>(cache.misses));
  metrics.gauge("cache.fills").set(static_cast<double>(cache.fills));
  metrics.gauge("cache.hit_rate").set(cache.hit_rate());
  metrics.gauge("cache.generation").set(static_cast<double>(cache.generation));
}

void Predictor::fill_ls_qos_table(double qps_real,
                                  std::vector<int>& table) const {
  std::size_t stride = 0;
  const auto xs = build_feature_matrix(
      *cache_,
      [&](const AppSlice& s) { return ls_features(machine_, qps_real, s); },
      &stride);
  models_.ls_qos->predict_batch(xs.data(), table.size(), stride, table.data());
  counters_.ls_qos.fetch_add(table.size(), std::memory_order_relaxed);
}

void Predictor::fill_ls_power_table(double qps_real,
                                    std::vector<double>& table) const {
  std::size_t stride = 0;
  const auto xs = build_feature_matrix(
      *cache_,
      [&](const AppSlice& s) { return ls_features(machine_, qps_real, s); },
      &stride);
  models_.ls_power->predict_batch(xs.data(), table.size(), stride,
                                  table.data());
  for (double& v : table) {
    v = ValidateModelOutput(v, "ls_power", /*allow_negative=*/true);
  }
  counters_.ls_power.fetch_add(table.size(), std::memory_order_relaxed);
}

void Predictor::fill_be_ipc_table(std::vector<double>& table) const {
  std::size_t stride = 0;
  const auto xs = build_feature_matrix(
      *cache_,
      [&](const AppSlice& s) {
        return be_features(machine_, kNativeInputLevel, s);
      },
      &stride);
  models_.be_ipc->predict_batch(xs.data(), table.size(), stride, table.data());
  for (double& v : table) {
    v = std::max(0.0, ValidateModelOutput(v, "be_ipc",
                                          /*allow_negative=*/true));
  }
  counters_.be_ipc.fetch_add(table.size(), std::memory_order_relaxed);
}

void Predictor::fill_be_power_table(std::vector<double>& table) const {
  std::size_t stride = 0;
  const auto xs = build_feature_matrix(
      *cache_,
      [&](const AppSlice& s) {
        return be_features(machine_, kNativeInputLevel, s);
      },
      &stride);
  models_.be_power->predict_batch(xs.data(), table.size(), stride,
                                  table.data());
  for (double& v : table) {
    v = std::max(0.0, ValidateModelOutput(v, "be_power",
                                          /*allow_negative=*/true));
  }
  counters_.be_power.fetch_add(table.size(), std::memory_order_relaxed);
}

bool Predictor::ls_qos_ok(double qps_real, const AppSlice& slice) const {
  STURGEON_DCHECK(std::isfinite(qps_real) && qps_real >= 0.0,
                  "ls_qos_ok: qps = " << qps_real);
  if (PredictionCache* cache = cache_.get()) {
    return cache->ls_qos(qps_real, slice,
                         [this](double q, std::vector<int>& t) {
                           fill_ls_qos_table(q, t);
                         }) == 1;
  }
  counters_.ls_qos.fetch_add(1, std::memory_order_relaxed);
  return models_.ls_qos->predict(ls_features(machine_, qps_real, slice)) == 1;
}

double Predictor::ls_power_w(double qps_real, const AppSlice& slice) const {
  if (PredictionCache* cache = cache_.get()) {
    return cache->ls_power(qps_real, slice,
                           [this](double q, std::vector<double>& t) {
                             fill_ls_power_table(q, t);
                           });
  }
  counters_.ls_power.fetch_add(1, std::memory_order_relaxed);
  // A regression model may extrapolate slightly below zero at the edge of
  // the feature space; that is benign, but non-finite output never is.
  return ValidateModelOutput(
      models_.ls_power->predict(ls_features(machine_, qps_real, slice)),
      "ls_power", /*allow_negative=*/true);
}

double Predictor::be_power_w(const AppSlice& slice) const {
  if (slice.cores == 0) return 0.0;
  if (PredictionCache* cache = cache_.get()) {
    return cache->be_power(slice, [this](double, std::vector<double>& t) {
      fill_be_power_table(t);
    });
  }
  counters_.be_power.fetch_add(1, std::memory_order_relaxed);
  return std::max(
      0.0, ValidateModelOutput(
               models_.be_power->predict(
                   be_features(machine_, kNativeInputLevel, slice)),
               "be_power", /*allow_negative=*/true));
}

double Predictor::be_ipc(const AppSlice& slice) const {
  if (slice.cores == 0) return 0.0;
  if (PredictionCache* cache = cache_.get()) {
    return cache->be_ipc(slice, [this](double, std::vector<double>& t) {
      fill_be_ipc_table(t);
    });
  }
  counters_.be_ipc.fetch_add(1, std::memory_order_relaxed);
  return std::max(0.0, ValidateModelOutput(
                           models_.be_ipc->predict(be_features(
                               machine_, kNativeInputLevel, slice)),
                           "be_ipc", /*allow_negative=*/true));
}

double Predictor::be_throughput(const AppSlice& slice) const {
  if (slice.cores == 0) return 0.0;
  return be_ipc(slice) * static_cast<double>(slice.cores) *
         machine_.freq_at(slice.freq_level);
}

double Predictor::total_power_w(double qps_real, const Partition& p) const {
  const double total = ls_power_w(qps_real, p.ls) + be_power_w(p.be);
  STURGEON_DCHECK(std::isfinite(total),
                  "total_power_w: non-finite total " << total);
  return total;
}

}  // namespace sturgeon::core
