#include "core/predictor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/features.h"
#include "util/check.h"
#include "util/invariants.h"

namespace sturgeon::core {

Predictor::Predictor(const MachineSpec& machine, TrainedModels models)
    : machine_(machine), models_(std::move(models)) {
  if (!models_.ls_qos || !models_.ls_power || !models_.be_ipc ||
      !models_.be_power) {
    throw std::invalid_argument("Predictor: missing trained models");
  }
  STURGEON_CHECK(machine_.num_cores >= 1 && machine_.llc_ways >= 1 &&
                     machine_.num_freq_levels() >= 1,
                 "Predictor: degenerate machine spec");
}

bool Predictor::ls_qos_ok(double qps_real, const AppSlice& slice) const {
  STURGEON_DCHECK(std::isfinite(qps_real) && qps_real >= 0.0,
                  "ls_qos_ok: qps = " << qps_real);
  invocations_.fetch_add(1, std::memory_order_relaxed);
  return models_.ls_qos->predict(ls_features(machine_, qps_real, slice)) == 1;
}

double Predictor::ls_power_w(double qps_real, const AppSlice& slice) const {
  invocations_.fetch_add(1, std::memory_order_relaxed);
  // A regression model may extrapolate slightly below zero at the edge of
  // the feature space; that is benign, but non-finite output never is.
  return ValidateModelOutput(
      models_.ls_power->predict(ls_features(machine_, qps_real, slice)),
      "ls_power", /*allow_negative=*/true);
}

double Predictor::be_power_w(const AppSlice& slice) const {
  if (slice.cores == 0) return 0.0;
  invocations_.fetch_add(1, std::memory_order_relaxed);
  return std::max(
      0.0, ValidateModelOutput(
               models_.be_power->predict(
                   be_features(machine_, kNativeInputLevel, slice)),
               "be_power", /*allow_negative=*/true));
}

double Predictor::be_ipc(const AppSlice& slice) const {
  if (slice.cores == 0) return 0.0;
  invocations_.fetch_add(1, std::memory_order_relaxed);
  return std::max(0.0, ValidateModelOutput(
                           models_.be_ipc->predict(be_features(
                               machine_, kNativeInputLevel, slice)),
                           "be_ipc", /*allow_negative=*/true));
}

double Predictor::be_throughput(const AppSlice& slice) const {
  if (slice.cores == 0) return 0.0;
  return be_ipc(slice) * static_cast<double>(slice.cores) *
         machine_.freq_at(slice.freq_level);
}

double Predictor::total_power_w(double qps_real, const Partition& p) const {
  const double total = ls_power_w(qps_real, p.ls) + be_power_w(p.be);
  STURGEON_DCHECK(std::isfinite(total),
                  "total_power_w: non-finite total " << total);
  return total;
}

}  // namespace sturgeon::core
