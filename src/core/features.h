// Feature construction for the performance/power models (paper Section
// V-A): four inputs selected by Lasso -- input size (QPS for LS services,
// input level for BE applications), number of cores, core frequency, and
// LLC ways. Centralized here so the trainer and the online predictor can
// never drift apart on feature order or units.
#pragma once

#include "ml/dataset.h"
#include "util/types.h"

namespace sturgeon::core {

/// LS model features: {kQPS, cores, frequency GHz, LLC ways}. QPS is in
/// thousands (real scale) to keep features in comparable ranges for the
/// distance- and gradient-based model families.
ml::FeatureRow ls_features(const MachineSpec& m, double qps_real,
                           const AppSlice& slice);

/// BE model features: {input level, cores, frequency GHz, LLC ways}.
/// PARSEC defines six input levels; this reproduction runs the native
/// input (level 6) but the feature is kept so trained models transfer to
/// multi-input deployments.
ml::FeatureRow be_features(const MachineSpec& m, double input_level,
                           const AppSlice& slice);

/// Default PARSEC input level used throughout the reproduction.
inline constexpr double kNativeInputLevel = 6.0;

}  // namespace sturgeon::core
