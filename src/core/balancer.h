// Preference-aware resource balancer (paper Section VI, Algorithm 2).
//
// When the LS service runs short of slack despite the predictor's
// configuration -- contention on unmanaged resources, OS interference --
// the balancer harvests resources from the BE application with
// "binary-harvest" granularity: it starts at half of what the BE side
// owns, picks whichever of {cores, cache ways, power (frequency swap)}
// the predictor says costs the least BE throughput without breaking the
// power budget, observes the next interval, reverts half on an excessive
// harvest, and halves the granularity until slack returns to the
// [alpha, beta] band.
//
// One robustness refinement over the paper's Algorithm 2: the balancer
// tracks whether the previous harvest actually improved the measured
// slack. A resource type whose harvest bought no improvement is excluded
// for the rest of the sequence, so a CPU-capacity overload cannot keep
// soaking up cheap-but-useless cache harvests while the queue grows.
// (All types excluded resets the exclusion set.)
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/predictor.h"

namespace sturgeon::telemetry {
class Counter;
class MetricsRegistry;
class Tracer;
}  // namespace sturgeon::telemetry

namespace sturgeon::core {

struct BalancerConfig {
  double alpha = 0.10;  ///< lower slack bound (Algorithm 1/2)
  double beta = 0.20;   ///< upper slack bound
  /// Initial harvest granularity as a fraction of the BE side's holdings
  /// (Algorithm 2 line 2 uses 0.5, the "binary-harvest" default).
  double initial_granularity = 0.5;
};

class ResourceBalancer {
 public:
  ResourceBalancer(const Predictor& predictor, double power_budget_w,
                   BalancerConfig config = {});

  /// Re-arm after the predictor installs a fresh configuration: resets
  /// the granularity to half of the BE side's current holdings (line 2).
  void arm(const Partition& current);

  /// One Algorithm 2 iteration. Returns the partition to apply next, or
  /// nullopt when slack is inside [alpha, beta] (nothing to fine-tune).
  std::optional<Partition> step(double slack, double qps_real,
                                const Partition& current);

  /// True while a harvest sequence is in flight (granularity not yet
  /// exhausted and slack was recently outside the band).
  bool active() const { return active_; }

  const BalancerConfig& config() const { return config_; }

  /// Retarget the power budget the harvest options are checked against
  /// (cluster re-caps); applies from the next step(). Must be > 0.
  void set_power_budget(double watts);

  /// Which resource the last harvest took ("cores", "ways", "power",
  /// "revert" or ""); exposed for tracing and tests.
  const std::string& last_action() const { return last_action_; }

  /// Report "balancer.harvests"/"balancer.reverts" counters and
  /// "balance_step" spans through the given registry/tracer (nullptr =
  /// off). Both must outlive the balancer; the controller rebinds on
  /// every TelemetryContext attach.
  void bind_telemetry(telemetry::MetricsRegistry* metrics,
                      telemetry::Tracer* tracer);

 private:
  enum class Resource { kCores, kWays, kPower };

  /// Candidate partition after harvesting `amount` units of `r`, or
  /// nullopt if the move is not expressible (e.g. BE already minimal).
  std::optional<Partition> harvested(const Partition& current, Resource r,
                                     int amount) const;

  const Predictor& predictor_;
  double budget_w_;
  BalancerConfig config_;

  bool active_ = false;
  double g_cores_ = 0.0;  ///< current granularity per resource type
  double g_ways_ = 0.0;
  double g_freq_ = 0.0;
  std::optional<Resource> last_harvest_;
  int last_amount_ = 0;
  std::string last_action_;
  double slack_at_harvest_ = 0.0;     ///< measured slack when we harvested
  bool ineffective_[3] = {false, false, false};  ///< per-Resource exclusion

  telemetry::Tracer* tracer_ = nullptr;
  telemetry::Counter* harvests_counter_ = nullptr;
  telemetry::Counter* reverts_counter_ = nullptr;
};

struct KwayArbiterConfig {
  double alpha = 0.10;  ///< an LS slice below this slack is starved
  double beta = 0.20;   ///< every LS slice above this => return resources
};

/// K-way analogue of the balancer's fine-tuning loop, model-free by
/// design: between KwaySearch epochs it arbitrates single resource units
/// using measured slacks only, so it works even when the predictors are
/// wrong (the situation that makes fine-tuning necessary at all).
///
/// One step moves at most one unit:
///   - the most-starved LS slice (smallest slack below alpha; index
///     breaks ties) harvests 1 core from the lowest-priority BE slice
///     that still has one to spare, falling back to 1 cache way;
///   - when EVERY LS slice sits above beta, the one with the most slack
///     returns 1 core (else 1 way) to the highest-priority BE slice;
///   - anything else (all LS inside the band, or nothing movable) is
///     nullopt.
/// All scans run in fixed index order -- deterministic, like everything
/// in the control plane. At K = 2 the harvest direction matches the
/// ResourceBalancer's cores-from-BE move at unit granularity.
class KwayArbiter {
 public:
  explicit KwayArbiter(KwayArbiterConfig config = {});

  /// One arbitration at measured `slacks` (aligned with `workloads`;
  /// entries at BE indices are ignored). Returns the allocation to apply
  /// next, or nullopt when there is nothing to do.
  std::optional<Allocation> step(const WorkloadSet& workloads,
                                 const std::vector<double>& slacks,
                                 const Allocation& current);

  /// What the last step did ("cores", "ways", "return:cores",
  /// "return:ways" or ""); exposed for tracing and tests.
  const std::string& last_action() const { return last_action_; }

  const KwayArbiterConfig& config() const { return config_; }

 private:
  KwayArbiterConfig config_;
  std::string last_action_;
};

}  // namespace sturgeon::core
