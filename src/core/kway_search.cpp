#include "core/kway_search.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

#include "util/check.h"
#include "util/invariants.h"

namespace sturgeon::core {

namespace {

constexpr int kMaxHillClimbRounds = 256;

std::vector<const Predictor*> shared_predictors(const WorkloadSet& workloads,
                                                const Predictor& predictor) {
  return std::vector<const Predictor*>(
      static_cast<std::size_t>(workloads.size()), &predictor);
}

}  // namespace

KwaySearch::KwaySearch(WorkloadSet workloads,
                       std::vector<const Predictor*> predictors,
                       double power_budget_w)
    : workloads_(std::move(workloads)),
      predictors_(std::move(predictors)),
      budget_w_(power_budget_w) {
  workloads_.validate();
  if (static_cast<int>(predictors_.size()) != workloads_.size()) {
    throw std::invalid_argument(
        "KwaySearch: predictor count does not match workload count");
  }
  for (const Predictor* p : predictors_) {
    if (p == nullptr) throw std::invalid_argument("KwaySearch: null predictor");
  }
  if (!std::isfinite(power_budget_w) || power_budget_w <= 0.0) {
    throw std::invalid_argument("KwaySearch: bad power budget");
  }
  // The canonical pair sharing one predictor recovers the paper's
  // O(N log N) pair search exactly -- no hill-climb, bit-identical
  // results (the K = 2 compatibility contract).
  if (workloads_.is_pair() && predictors_[0] == predictors_[1]) {
    pair_search_ = std::make_unique<ConfigSearch>(*predictors_[0], budget_w_);
  }
}

KwaySearch::KwaySearch(WorkloadSet workloads, const Predictor& predictor,
                       double power_budget_w)
    : KwaySearch(workloads, shared_predictors(workloads, predictor),
                 power_budget_w) {}

void KwaySearch::set_power_budget(double watts) {
  if (!std::isfinite(watts) || watts <= 0.0) {
    throw std::invalid_argument("KwaySearch: bad power budget");
  }
  budget_w_ = watts;
  if (pair_search_ != nullptr) pair_search_->set_power_budget(watts);
}

std::uint64_t KwaySearch::total_invocations() const {
  // Sum each distinct predictor once (several workloads usually share
  // one); linear dedupe keeps the scan deterministic.
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < predictors_.size(); ++i) {
    bool seen = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (predictors_[j] == predictors_[i]) {
        seen = true;
        break;
      }
    }
    if (!seen) total += predictors_[i]->model_invocations();
  }
  return total;
}

void KwaySearch::validate_loads(const std::vector<double>& qps_real) const {
  if (static_cast<int>(qps_real.size()) != workloads_.size()) {
    throw std::invalid_argument(
        "KwaySearch: qps vector does not match workload count");
  }
  for (int i = 0; i < workloads_.size(); ++i) {
    if (!workloads_[i].is_ls()) continue;
    const double q = qps_real[static_cast<std::size_t>(i)];
    STURGEON_CHECK(std::isfinite(q) && q >= 0.0,
                   "KwaySearch: qps[" << i << "] = " << q);
  }
}

double KwaySearch::predicted_power_w(const std::vector<double>& qps_real,
                                     const Allocation& a) const {
  double power = 0.0;
  for (int i = 0; i < workloads_.size(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (workloads_[i].is_ls()) {
      power += predictors_[idx]->ls_power_w(qps_real[idx], a[i]);
    } else if (a[i].cores > 0) {
      power += predictors_[idx]->be_power_w(a[i]);
    }
  }
  return power;
}

double KwaySearch::objective(const Allocation& a) const {
  double sum = 0.0;
  for (int i = 0; i < workloads_.size(); ++i) {
    if (!workloads_[i].is_be() || a[i].cores == 0) continue;
    sum += workloads_[i].weight() *
           predictors_[static_cast<std::size_t>(i)]->be_throughput(a[i]);
  }
  return sum;
}

bool KwaySearch::feasible(const std::vector<double>& qps_real,
                          const Allocation& a) const {
  if (a.size() != workloads_.size() || !a.valid_for(machine())) return false;
  for (int i = 0; i < workloads_.size(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (workloads_[i].is_ls() &&
        !predictors_[idx]->ls_qos_ok(qps_real[idx], a[i])) {
      return false;
    }
  }
  return predicted_power_w(qps_real, a) <= budget_w_;
}

std::optional<Allocation> KwaySearch::greedy_seed(
    const std::vector<double>& qps_real) const {
  const MachineSpec& m = machine();
  const int k = workloads_.size();
  if (k > m.num_cores || k > m.llc_ways) return std::nullopt;

  Allocation a;
  a.slices.assign(static_cast<std::size_t>(k), AppSlice{1, 0, 1});
  int cores_used = k;
  int ways_used = k;

  // Grow each LS slice until its own predictor clears its QoS target.
  // One unit of each resource per round (cores, then ways, then
  // frequency), stopping at the first ok -- round-robin rather than
  // exhaust-cores-first, because a target gated on cache ways would
  // otherwise soak up the whole core pool before touching a way. The
  // hill-climb trims any overshoot afterwards.
  for (const int i : workloads_.ls_indices()) {
    const Predictor& pred = *predictors_[static_cast<std::size_t>(i)];
    const double qps = qps_real[static_cast<std::size_t>(i)];
    AppSlice& s = a[i];
    while (!pred.ls_qos_ok(qps, s)) {
      bool grew = false;
      if (cores_used < m.num_cores) {
        ++s.cores;
        ++cores_used;
        grew = true;
      }
      if (!pred.ls_qos_ok(qps, s)) {
        if (ways_used < m.llc_ways) {
          ++s.llc_ways;
          ++ways_used;
          grew = true;
        }
        if (!pred.ls_qos_ok(qps, s) && s.freq_level < m.max_freq_level()) {
          ++s.freq_level;
          grew = true;
        }
      }
      if (!grew) return std::nullopt;  // machine cannot hold this target
    }
  }

  // Spread the leftover cores and ways over the BE slices proportionally
  // to their priority weights (largest-remainder rounding, index order
  // breaking ties) so higher-priority applications seed bigger.
  const std::vector<int> be = workloads_.be_indices();
  if (!be.empty()) {
    double total_weight = 0.0;
    for (const int j : be) total_weight += workloads_[j].weight();
    const auto spread = [&](int spare, auto get, auto bump) {
      std::vector<double> frac(be.size(), 0.0);
      int handed = 0;
      for (std::size_t n = 0; n < be.size(); ++n) {
        const double ideal =
            spare * workloads_[be[n]].weight() / total_weight;
        const int whole = static_cast<int>(ideal);
        frac[n] = ideal - whole;
        bump(a[be[n]], whole);
        handed += whole;
      }
      for (int rest = spare - handed; rest > 0; --rest) {
        std::size_t pick = 0;
        for (std::size_t n = 1; n < be.size(); ++n) {
          if (frac[n] > frac[pick]) pick = n;
        }
        frac[pick] = -1.0;
        bump(a[be[pick]], 1);
      }
      (void)get;
    };
    spread(m.num_cores - cores_used,
           [](const AppSlice& s) { return s.cores; },
           [](AppSlice& s, int n) { s.cores += n; });
    spread(m.llc_ways - ways_used,
           [](const AppSlice& s) { return s.llc_ways; },
           [](AppSlice& s, int n) { s.llc_ways += n; });

    // Raise BE frequencies round-robin (heaviest first, index breaking
    // ties) while the summed power model still fits the budget.
    std::vector<int> order = be;
    std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
      return workloads_[x].weight() > workloads_[y].weight();
    });
    bool raised = true;
    while (raised) {
      raised = false;
      for (const int j : order) {
        if (a[j].freq_level >= m.max_freq_level()) continue;
        ++a[j].freq_level;
        if (predicted_power_w(qps_real, a) <= budget_w_) {
          raised = true;
        } else {
          --a[j].freq_level;
        }
      }
    }
  }

  if (!feasible(qps_real, a)) return std::nullopt;
  return a;
}

std::optional<Allocation> KwaySearch::best_move(
    const std::vector<double>& qps_real, const Allocation& a,
    double current_objective) const {
  const MachineSpec& m = machine();
  const int k = workloads_.size();
  std::optional<Allocation> best;
  double best_obj = current_objective;

  const auto consider = [&](const Allocation& cand) {
    if (!feasible(qps_real, cand)) return;
    const double obj = objective(cand);
    if (obj > best_obj) {
      best_obj = obj;
      best = cand;
    }
  };

  // Single-unit transfers between every ordered slice pair, then single
  // P-state steps -- one fixed enumeration order, so equal-objective
  // candidates always resolve the same way.
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      if (i == j) continue;
      if (a[i].cores > 1) {
        Allocation cand = a;
        --cand[i].cores;
        ++cand[j].cores;
        consider(cand);
      }
      if (a[i].llc_ways > 1) {
        Allocation cand = a;
        --cand[i].llc_ways;
        ++cand[j].llc_ways;
        consider(cand);
      }
    }
  }
  for (int i = 0; i < k; ++i) {
    if (a[i].freq_level < m.max_freq_level()) {
      Allocation cand = a;
      ++cand[i].freq_level;
      consider(cand);
    }
    if (a[i].freq_level > 0) {
      Allocation cand = a;
      --cand[i].freq_level;
      consider(cand);
    }
  }
  return best;
}

KwaySearchResult KwaySearch::finish(const std::vector<double>& qps_real,
                                    Allocation a, bool is_feasible,
                                    int rounds,
                                    std::uint64_t invocations_before) const {
  KwaySearchResult r;
  r.best = std::move(a);
  r.feasible = is_feasible;
  r.rounds = rounds;
  r.slice_throughput.assign(static_cast<std::size_t>(workloads_.size()), 0.0);
  if (is_feasible) {
    for (const int j : workloads_.be_indices()) {
      if (r.best[j].cores == 0) continue;
      r.slice_throughput[static_cast<std::size_t>(j)] =
          predictors_[static_cast<std::size_t>(j)]->be_throughput(r.best[j]);
    }
    r.objective = objective(r.best);
    r.predicted_power_w = predicted_power_w(qps_real, r.best);
  }
  r.model_invocations = total_invocations() - invocations_before;
  ValidateConfig(machine(), r.best, "KwaySearch::search");
  return r;
}

KwaySearchResult KwaySearch::search(const std::vector<double>& qps_real,
                                    const Allocation* warm_start) const {
  validate_loads(qps_real);
  const std::uint64_t invocations_before = total_invocations();

  if (pair_search_ != nullptr) {
    const SearchResult pair = pair_search_->search(qps_real[0]);
    KwaySearchResult r;
    r.best = Allocation::of(pair.best);
    r.feasible = pair.feasible;
    r.predicted_power_w = pair.predicted_power_w;
    r.slice_throughput = {0.0, pair.predicted_throughput};
    r.objective = workloads_[1].weight() * pair.predicted_throughput;
    r.model_invocations = pair.model_invocations;
    return r;
  }

  std::optional<Allocation> start;
  if (warm_start != nullptr && warm_start->size() == workloads_.size() &&
      feasible(qps_real, *warm_start)) {
    start = *warm_start;
  } else {
    start = greedy_seed(qps_real);
  }
  if (!start) {
    return finish(qps_real,
                  Allocation::all_to_first(machine(), workloads_.size()),
                  false, 0, invocations_before);
  }

  Allocation current = std::move(*start);
  double obj = objective(current);
  int rounds = 0;
  while (rounds < kMaxHillClimbRounds) {
    const auto next = best_move(qps_real, current, obj);
    if (!next) break;
    current = *next;
    obj = objective(current);
    ++rounds;
  }
  return finish(qps_real, std::move(current), true, rounds,
                invocations_before);
}

KwaySearchResult KwaySearch::exhaustive(
    const std::vector<double>& qps_real) const {
  validate_loads(qps_real);
  const std::uint64_t invocations_before = total_invocations();
  const MachineSpec& m = machine();
  const int k = workloads_.size();

  Allocation cur;
  cur.slices.assign(static_cast<std::size_t>(k), AppSlice{});
  std::optional<Allocation> best;
  double best_obj = 0.0;

  // Depth-first over every (cores, freq, ways) choice per slice, pruning
  // on the core/way totals. Exponential in K: tests-and-oracles only.
  const auto recurse = [&](auto&& self, int i, int cores_used,
                           int ways_used) -> void {
    if (i == k) {
      if (!feasible(qps_real, cur)) return;
      const double obj = objective(cur);
      if (!best || obj > best_obj) {
        best = cur;
        best_obj = obj;
      }
      return;
    }
    const int max_c = m.num_cores - cores_used - (k - 1 - i);
    const int max_l = m.llc_ways - ways_used - (k - 1 - i);
    for (int c = 1; c <= max_c; ++c) {
      for (int f = 0; f <= m.max_freq_level(); ++f) {
        for (int l = 1; l <= max_l; ++l) {
          cur[i] = AppSlice{c, f, l};
          self(self, i + 1, cores_used + c, ways_used + l);
        }
      }
    }
  };
  recurse(recurse, 0, 0, 0);

  if (!best) {
    return finish(qps_real, Allocation::all_to_first(m, k), false, 0,
                  invocations_before);
  }
  return finish(qps_real, std::move(*best), true, 0, invocations_before);
}

}  // namespace sturgeon::core
