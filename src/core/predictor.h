// Online performance/power predictor (paper Section V, Fig 5).
//
// For a configuration <C1,F1,L1; C2,F2,L2> at load Q the predictor
// answers, using only the offline-trained models:
//   - does the LS service meet its QoS target?       (ls_qos classifier)
//   - what is the total package power?               (ls_power + be_power)
//   - what BE throughput does the configuration buy? (be_ipc * C2 * F2)
// Model invocations are counted so the overhead experiments (paper
// Section VII-E) can report predictions-per-search.
//
// With enable_cache() the predictor answers through a sharded memo layer
// (see prediction_cache.h): a miss fills a dense per-load table with one
// predict_batch sweep and later queries become array lookups. Cached
// answers are bit-identical to uncached ones; only cache *fills* count as
// model invocations, so steady-state searches report ~0 predictions.
#pragma once

#include <cstdint>
#include <memory>

#include "core/prediction_cache.h"
#include "core/trainer.h"
#include "util/types.h"

namespace sturgeon::core {

class Predictor {
 public:
  /// Takes ownership of the trained models.
  Predictor(const MachineSpec& machine, TrainedModels models);

  /// QoS feasibility of an LS slice at real-scale load `qps_real`.
  bool ls_qos_ok(double qps_real, const AppSlice& slice) const;

  /// Predicted package power of the LS side alone (includes uncore).
  double ls_power_w(double qps_real, const AppSlice& slice) const;

  /// Predicted incremental power of the BE slice.
  double be_power_w(const AppSlice& slice) const;

  /// Predicted BE IPC and throughput (IPC x cores x GHz).
  double be_ipc(const AppSlice& slice) const;
  double be_throughput(const AppSlice& slice) const;

  /// Total package power of the co-location.
  double total_power_w(double qps_real, const Partition& p) const;

  const MachineSpec& machine() const { return machine_; }

  /// Install the sharded prediction cache. Not safe against concurrent
  /// predictions; call before sharing the predictor across threads.
  void enable_cache(PredictionCacheConfig config = {});
  void disable_cache();
  bool cache_enabled() const { return cache_ != nullptr; }

  /// Replace the trained models (e.g. after retraining) and invalidate
  /// any cached tables. Not safe against concurrent predictions.
  void swap_models(TrainedModels models);

  /// Cache counters; all-zero when the cache is disabled.
  telemetry::PredictionCacheStats cache_stats() const;

  /// Publish the cumulative model-call and cache counters as
  /// "predictor.calls.*" / "cache.*" gauges on `metrics` (the predictor
  /// is shared and immutable, so its counters are re-homed behind the
  /// registry by whoever owns the run's TelemetryContext).
  void publish_metrics(telemetry::MetricsRegistry& metrics) const;

  /// Cumulative number of model invocations (overhead accounting).
  /// Thread-safe: the parallel search invokes models concurrently.
  /// Cache hits are array lookups, not invocations; a cache fill adds
  /// the whole batch it swept.
  std::uint64_t model_invocations() const {
    return counters_.snapshot().total();
  }
  /// Per-role split of model_invocations().
  ModelCallBreakdown model_call_breakdown() const {
    return counters_.snapshot();
  }
  void reset_invocation_count() { counters_.reset(); }

 private:
  static TrainedModels validate_models(TrainedModels models);

  /// Dense-table fills: one predict_batch sweep over every slice, with
  /// the same feature encoding and output post-processing as the scalar
  /// paths (bit-identity contract).
  void fill_ls_qos_table(double qps_real, std::vector<int>& table) const;
  void fill_ls_power_table(double qps_real, std::vector<double>& table) const;
  void fill_be_ipc_table(std::vector<double>& table) const;
  void fill_be_power_table(std::vector<double>& table) const;

  MachineSpec machine_;
  TrainedModels models_;
  ModelCallCounters counters_;
  std::unique_ptr<PredictionCache> cache_;
};

}  // namespace sturgeon::core
