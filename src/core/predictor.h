// Online performance/power predictor (paper Section V, Fig 5).
//
// For a configuration <C1,F1,L1; C2,F2,L2> at load Q the predictor
// answers, using only the offline-trained models:
//   - does the LS service meet its QoS target?       (ls_qos classifier)
//   - what is the total package power?               (ls_power + be_power)
//   - what BE throughput does the configuration buy? (be_ipc * C2 * F2)
// Model invocations are counted so the overhead experiments (paper
// Section VII-E) can report predictions-per-search.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/trainer.h"
#include "util/types.h"

namespace sturgeon::core {

class Predictor {
 public:
  /// Takes ownership of the trained models.
  Predictor(const MachineSpec& machine, TrainedModels models);

  /// QoS feasibility of an LS slice at real-scale load `qps_real`.
  bool ls_qos_ok(double qps_real, const AppSlice& slice) const;

  /// Predicted package power of the LS side alone (includes uncore).
  double ls_power_w(double qps_real, const AppSlice& slice) const;

  /// Predicted incremental power of the BE slice.
  double be_power_w(const AppSlice& slice) const;

  /// Predicted BE IPC and throughput (IPC x cores x GHz).
  double be_ipc(const AppSlice& slice) const;
  double be_throughput(const AppSlice& slice) const;

  /// Total package power of the co-location.
  double total_power_w(double qps_real, const Partition& p) const;

  const MachineSpec& machine() const { return machine_; }

  /// Cumulative number of model invocations (overhead accounting).
  /// Thread-safe: the parallel search invokes models concurrently.
  std::uint64_t model_invocations() const {
    return invocations_.load(std::memory_order_relaxed);
  }
  void reset_invocation_count() {
    invocations_.store(0, std::memory_order_relaxed);
  }

 private:
  MachineSpec machine_;
  TrainedModels models_;
  mutable std::atomic<std::uint64_t> invocations_{0};
};

}  // namespace sturgeon::core
