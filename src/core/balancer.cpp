#include "core/balancer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/check.h"
#include "util/invariants.h"

namespace sturgeon::core {

ResourceBalancer::ResourceBalancer(const Predictor& predictor,
                                   double power_budget_w,
                                   BalancerConfig config)
    : predictor_(predictor), budget_w_(power_budget_w), config_(config) {
  if (power_budget_w <= 0.0 || config.alpha < 0.0 ||
      config.beta <= config.alpha || config.initial_granularity <= 0.0 ||
      config.initial_granularity > 1.0) {
    throw std::invalid_argument("ResourceBalancer: bad configuration");
  }
}

void ResourceBalancer::set_power_budget(double watts) {
  if (!std::isfinite(watts) || watts <= 0.0) {
    throw std::invalid_argument("ResourceBalancer: bad power budget");
  }
  budget_w_ = watts;
}

void ResourceBalancer::bind_telemetry(telemetry::MetricsRegistry* metrics,
                                      telemetry::Tracer* tracer) {
  tracer_ = tracer;
  harvests_counter_ =
      metrics != nullptr ? &metrics->counter("balancer.harvests") : nullptr;
  reverts_counter_ =
      metrics != nullptr ? &metrics->counter("balancer.reverts") : nullptr;
}

void ResourceBalancer::arm(const Partition& current) {
  // Algorithm 2 line 2: granularity = a fraction (default half) of what
  // the BE side owns.
  const double g = config_.initial_granularity;
  g_cores_ = g * current.be.cores;
  g_ways_ = g * current.be.llc_ways;
  g_freq_ = g * (current.be.freq_level + 1);
  active_ = false;
  last_harvest_.reset();
  last_amount_ = 0;
  last_action_.clear();
  slack_at_harvest_ = 0.0;
  for (bool& b : ineffective_) b = false;
}

std::optional<Partition> ResourceBalancer::harvested(const Partition& current,
                                                     Resource r,
                                                     int amount) const {
  if (amount < 1) return std::nullopt;
  const MachineSpec& m = predictor_.machine();
  Partition p = current;
  switch (r) {
    case Resource::kCores: {
      const int take = std::min(amount, p.be.cores - 1);
      if (take < 1) return std::nullopt;
      p.be.cores -= take;
      p.ls.cores += take;
      return p;
    }
    case Resource::kWays: {
      const int take = std::min(amount, p.be.llc_ways - 1);
      if (take < 1) return std::nullopt;
      p.be.llc_ways -= take;
      p.ls.llc_ways += take;
      return p;
    }
    case Resource::kPower: {
      // "Harvest power": shift P-states -- BE down, LS up.
      const int down = std::min(amount, p.be.freq_level);
      const int up = std::min(amount, m.max_freq_level() - p.ls.freq_level);
      if (down < 1 && up < 1) return std::nullopt;
      p.be.freq_level -= down;
      p.ls.freq_level += up;
      return p;
    }
  }
  return std::nullopt;
}

std::optional<Partition> ResourceBalancer::step(double slack, double qps_real,
                                                const Partition& current) {
  telemetry::Span span = tracer_ != nullptr
                             ? tracer_->start_span("balance_step")
                             : telemetry::Span{};
  span.attr("slack", slack);
  last_action_.clear();
  if (current.be.cores == 0) {
    active_ = false;
    return std::nullopt;  // nothing to harvest from
  }

  if (slack >= config_.alpha && slack <= config_.beta) {
    // Tail latency back in the suitable band: sequence complete.
    active_ = false;
    last_harvest_.reset();
    return std::nullopt;
  }

  if (slack > config_.beta) {
    // Latency suddenly very low: the previous harvest was excessive;
    // revert half of it to the BE application (lines 11-13).
    if (!active_ || !last_harvest_) return std::nullopt;
    const int back = std::max(1, last_amount_ / 2);
    Partition p = current;
    const MachineSpec& m = predictor_.machine();
    switch (*last_harvest_) {
      case Resource::kCores:
        if (p.ls.cores - back < 1) return std::nullopt;
        p.ls.cores -= back;
        p.be.cores += back;
        break;
      case Resource::kWays:
        if (p.ls.llc_ways - back < 1) return std::nullopt;
        p.ls.llc_ways -= back;
        p.be.llc_ways += back;
        break;
      case Resource::kPower:
        p.be.freq_level = std::min(m.max_freq_level(),
                                   p.be.freq_level + back);
        p.ls.freq_level = std::max(0, p.ls.freq_level - back);
        break;
    }
    // The revert must not re-introduce a power overload (line 13).
    if (predictor_.total_power_w(qps_real, p) > budget_w_) {
      return std::nullopt;
    }
    last_amount_ -= back;
    if (last_amount_ <= 0) last_harvest_.reset();
    last_action_ = "revert";
    if (reverts_counter_ != nullptr) reverts_counter_->inc();
    span.attr("action", last_action_).attr("amount", back);
    ValidateConfig(m, p, "ResourceBalancer::step(revert)",
                   /*allow_empty_be=*/false);
    return p;
  }

  // slack < alpha: harvest. First grade the previous harvest: if it
  // bought essentially no slack, its resource type is not what the LS
  // service is starved of -- exclude it for the rest of the sequence.
  if (active_ && last_harvest_) {
    if (slack - slack_at_harvest_ < 0.03) {
      ineffective_[static_cast<int>(*last_harvest_)] = true;
    }
  }
  {
    bool all_excluded = true;
    for (bool b : ineffective_) all_excluded = all_excluded && b;
    if (all_excluded) {
      for (bool& b : ineffective_) b = false;
    }
  }

  // Choose the harvest with minimum predicted throughput loss that keeps
  // power under budget (lines 4-9).
  active_ = true;
  struct Option {
    Resource r;
    double* granularity;
  };
  Option options[] = {{Resource::kCores, &g_cores_},
                      {Resource::kWays, &g_ways_},
                      {Resource::kPower, &g_freq_}};
  std::optional<Partition> best;
  double best_thr = -1.0;
  Resource best_r = Resource::kCores;
  int best_amount = 0;
  double* best_g = nullptr;
  for (const auto& opt : options) {
    if (ineffective_[static_cast<int>(opt.r)]) continue;
    const int amount =
        std::max(1, static_cast<int>(std::lround(*opt.granularity)));
    const auto cand = harvested(current, opt.r, amount);
    if (!cand) continue;
    if (predictor_.total_power_w(qps_real, *cand) > budget_w_) continue;
    const double thr = predictor_.be_throughput(cand->be);
    if (thr > best_thr) {
      best_thr = thr;
      best = cand;
      best_r = opt.r;
      best_amount = amount;
      best_g = opt.granularity;
    }
  }
  if (!best) return std::nullopt;  // BE already minimal everywhere
  ValidateConfig(predictor_.machine(), *best, "ResourceBalancer::step(harvest)",
                 /*allow_empty_be=*/false);
  last_harvest_ = best_r;
  last_amount_ = best_amount;
  slack_at_harvest_ = slack;
  *best_g = std::max(0.5, *best_g * 0.5);  // line 14
  switch (best_r) {
    case Resource::kCores: last_action_ = "cores"; break;
    case Resource::kWays: last_action_ = "ways"; break;
    case Resource::kPower: last_action_ = "power"; break;
  }
  if (harvests_counter_ != nullptr) harvests_counter_->inc();
  span.attr("action", last_action_).attr("amount", best_amount);
  return best;
}

KwayArbiter::KwayArbiter(KwayArbiterConfig config) : config_(config) {
  if (!(config_.alpha >= 0.0) || !(config_.beta > config_.alpha)) {
    throw std::invalid_argument("KwayArbiter: need 0 <= alpha < beta");
  }
}

std::optional<Allocation> KwayArbiter::step(const WorkloadSet& workloads,
                                            const std::vector<double>& slacks,
                                            const Allocation& current) {
  last_action_.clear();
  if (current.size() != workloads.size() ||
      static_cast<int>(slacks.size()) != workloads.size()) {
    throw std::invalid_argument(
        "KwayArbiter: workloads/slacks/allocation sizes disagree");
  }
  const std::vector<int> ls = workloads.ls_indices();
  const std::vector<int> be = workloads.be_indices();
  if (ls.empty() || be.empty()) return std::nullopt;

  // Most-starved LS slice (smallest slack strictly below alpha).
  int starved = -1;
  for (const int i : ls) {
    const double s = slacks[static_cast<std::size_t>(i)];
    if (s < config_.alpha &&
        (starved < 0 || s < slacks[static_cast<std::size_t>(starved)])) {
      starved = i;
    }
  }
  if (starved >= 0) {
    // Harvest from the lowest-priority BE slice that can spare a unit;
    // cores first (the resource the queue model responds to fastest).
    const auto donor = [&](auto has_spare) {
      int pick = -1;
      for (const int j : be) {
        if (!has_spare(current[j])) continue;
        if (pick < 0 || workloads[j].weight() < workloads[pick].weight()) {
          pick = j;
        }
      }
      return pick;
    };
    if (const int j = donor([](const AppSlice& s) { return s.cores > 1; });
        j >= 0) {
      Allocation next = current;
      --next[j].cores;
      ++next[starved].cores;
      last_action_ = "cores";
      return next;
    }
    if (const int j = donor([](const AppSlice& s) { return s.llc_ways > 1; });
        j >= 0) {
      Allocation next = current;
      --next[j].llc_ways;
      ++next[starved].llc_ways;
      last_action_ = "ways";
      return next;
    }
    return std::nullopt;  // every BE slice is already minimal
  }

  // Every LS slice comfortably above beta: the one with the most slack
  // returns a unit to the highest-priority BE slice.
  int fattest = -1;
  for (const int i : ls) {
    const double s = slacks[static_cast<std::size_t>(i)];
    if (s <= config_.beta) return std::nullopt;  // someone is in the band
    if (fattest < 0 || s > slacks[static_cast<std::size_t>(fattest)]) {
      fattest = i;
    }
  }
  int receiver = be.front();
  for (const int j : be) {
    if (workloads[j].weight() > workloads[receiver].weight()) receiver = j;
  }
  if (current[fattest].cores > 1) {
    Allocation next = current;
    --next[fattest].cores;
    ++next[receiver].cores;
    last_action_ = "return:cores";
    return next;
  }
  if (current[fattest].llc_ways > 1) {
    Allocation next = current;
    --next[fattest].llc_ways;
    ++next[receiver].llc_ways;
    last_action_ = "return:ways";
    return next;
  }
  return std::nullopt;  // the donor LS slice is already minimal
}

}  // namespace sturgeon::core
