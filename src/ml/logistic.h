// Binary logistic regression trained by full-batch gradient descent with
// L2 regularization on standardized features. One of the classification
// families compared for the LS performance model (paper Fig 6, "LR").
#pragma once

#include "ml/model.h"

namespace sturgeon::ml {

class LogisticRegression : public Classifier {
 public:
  explicit LogisticRegression(double learning_rate = 0.5, int max_iter = 500,
                              double l2 = 1e-4);

  void fit(const std::vector<FeatureRow>& x,
           const std::vector<int>& labels) override;
  int predict(const FeatureRow& row) const override;
  using Classifier::predict_batch;
  void predict_batch(const double* xs, std::size_t n, std::size_t stride,
                     int* out) const override;
  std::string name() const override { return "LogisticRegression"; }

  /// P(label == 1 | row).
  double predict_proba(const FeatureRow& row) const;

 private:
  double lr_;
  int max_iter_;
  double l2_;
  StandardScaler scaler_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

}  // namespace sturgeon::ml
