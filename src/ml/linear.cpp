#include "ml/linear.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "ml/linalg.h"

namespace sturgeon::ml {

namespace {
std::vector<std::vector<double>> with_bias(const std::vector<FeatureRow>& x) {
  std::vector<std::vector<double>> rows;
  rows.reserve(x.size());
  for (const auto& r : x) {
    std::vector<double> row;
    row.reserve(r.size() + 1);
    row.push_back(1.0);
    row.insert(row.end(), r.begin(), r.end());
    rows.push_back(std::move(row));
  }
  return rows;
}
}  // namespace

void LinearRegression::fit(const DataSet& data) {
  data.validate();
  if (data.empty()) throw std::invalid_argument("LinearRegression: empty fit");
  const auto rows = with_bias(data.x);
  auto m = normal_matrix(rows, ridge_);
  m[0][0] -= ridge_;  // do not regularize the intercept
  const auto rhs = normal_rhs(rows, data.y);
  const auto w = solve_linear_system(std::move(m), rhs);
  intercept_ = w[0];
  coef_.assign(w.begin() + 1, w.end());
}

double LinearRegression::predict(const FeatureRow& row) const {
  if (coef_.empty()) throw std::logic_error("LinearRegression: not fitted");
  if (row.size() != coef_.size()) {
    throw std::invalid_argument("LinearRegression: arity mismatch");
  }
  double acc = intercept_;
  for (std::size_t j = 0; j < row.size(); ++j) acc += coef_[j] * row[j];
  return acc;
}

void LinearRegression::predict_batch(const double* xs, std::size_t n,
                                     std::size_t stride, double* out) const {
  if (coef_.empty()) throw std::logic_error("LinearRegression: not fitted");
  if (stride != coef_.size()) {
    throw std::invalid_argument("LinearRegression: arity mismatch");
  }
  for (std::size_t r = 0; r < n; ++r) {
    const double* row = xs + r * stride;
    double acc = intercept_;
    for (std::size_t j = 0; j < stride; ++j) acc += coef_[j] * row[j];
    out[r] = acc;
  }
}

LassoRegression::LassoRegression(double lambda, int max_iter, double tol)
    : lambda_(lambda), max_iter_(max_iter), tol_(tol) {
  if (lambda < 0.0) throw std::invalid_argument("Lasso: lambda < 0");
  if (max_iter < 1) throw std::invalid_argument("Lasso: max_iter < 1");
}

void LassoRegression::fit(const DataSet& data) {
  data.validate();
  if (data.empty()) throw std::invalid_argument("Lasso: empty fit");
  scaler_.fit(data.x);
  const auto xs = scaler_.transform(data.x);
  const std::size_t n = xs.size();
  const std::size_t d = xs[0].size();

  // Center the target; intercept is its mean in standardized space.
  intercept_ =
      std::accumulate(data.y.begin(), data.y.end(), 0.0) /
      static_cast<double>(n);
  std::vector<double> yc(n);
  for (std::size_t i = 0; i < n; ++i) yc[i] = data.y[i] - intercept_;

  coef_.assign(d, 0.0);
  std::vector<double> residual = yc;  // residual = y - X w (w starts at 0)

  // Column norms; standardized columns have norm ~ n, but compute exactly.
  std::vector<double> col_sq(d, 0.0);
  for (const auto& row : xs) {
    for (std::size_t j = 0; j < d; ++j) col_sq[j] += row[j] * row[j];
  }

  const double n_d = static_cast<double>(n);
  for (int it = 0; it < max_iter_; ++it) {
    double max_delta = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      if (col_sq[j] == 0.0) continue;  // constant feature
      // rho = x_j . (residual + x_j * w_j)
      double rho = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        rho += xs[i][j] * (residual[i] + xs[i][j] * coef_[j]);
      }
      // Soft threshold.
      const double threshold = lambda_ * n_d;
      double w_new = 0.0;
      if (rho > threshold) {
        w_new = (rho - threshold) / col_sq[j];
      } else if (rho < -threshold) {
        w_new = (rho + threshold) / col_sq[j];
      }
      const double delta = w_new - coef_[j];
      if (delta != 0.0) {
        for (std::size_t i = 0; i < n; ++i) residual[i] -= delta * xs[i][j];
        coef_[j] = w_new;
        max_delta = std::max(max_delta, std::abs(delta));
      }
    }
    if (max_delta < tol_) break;
  }
}

double LassoRegression::predict(const FeatureRow& row) const {
  if (!scaler_.fitted()) throw std::logic_error("Lasso: not fitted");
  const auto xs = scaler_.transform(row);
  double acc = intercept_;
  for (std::size_t j = 0; j < xs.size(); ++j) acc += coef_[j] * xs[j];
  return acc;
}

void LassoRegression::predict_batch(const double* xs, std::size_t n,
                                    std::size_t stride, double* out) const {
  if (!scaler_.fitted()) throw std::logic_error("Lasso: not fitted");
  if (stride != scaler_.dim()) {
    throw std::invalid_argument("Lasso: arity mismatch");
  }
  std::vector<double> scaled(stride);
  for (std::size_t r = 0; r < n; ++r) {
    scaler_.transform_into(xs + r * stride, scaled.data());
    double acc = intercept_;
    for (std::size_t j = 0; j < stride; ++j) acc += coef_[j] * scaled[j];
    out[r] = acc;
  }
}

std::vector<std::size_t> LassoRegression::selected_features() const {
  std::vector<std::size_t> idx;
  for (std::size_t j = 0; j < coef_.size(); ++j) {
    if (coef_[j] != 0.0) idx.push_back(j);
  }
  std::sort(idx.begin(), idx.end(), [this](std::size_t a, std::size_t b) {
    return std::abs(coef_[a]) > std::abs(coef_[b]);
  });
  return idx;
}

}  // namespace sturgeon::ml
