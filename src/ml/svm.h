// Support-vector models ("SV" in the paper's Figs 6-7): a linear soft-
// margin SVM classifier trained with the Pegasos stochastic sub-gradient
// method, and a linear epsilon-insensitive support-vector regressor
// trained the same way. Features are standardized internally.
#pragma once

#include <cstdint>

#include "ml/model.h"

namespace sturgeon::ml {

class SvmClassifier : public Classifier {
 public:
  /// `lambda` is the Pegasos regularization strength; `epochs` full
  /// passes over the (shuffled) training set.
  explicit SvmClassifier(double lambda = 1e-3, int epochs = 60,
                         std::uint64_t seed = 17);

  void fit(const std::vector<FeatureRow>& x,
           const std::vector<int>& labels) override;
  int predict(const FeatureRow& row) const override;
  using Classifier::predict_batch;
  void predict_batch(const double* xs, std::size_t n, std::size_t stride,
                     int* out) const override;
  std::string name() const override { return "SvmClassifier"; }

  /// Signed margin w.x + b.
  double decision_function(const FeatureRow& row) const;

 private:
  double lambda_;
  int epochs_;
  std::uint64_t seed_;
  StandardScaler scaler_;
  std::vector<double> w_;
  double b_ = 0.0;
};

class SvRegressor : public Regressor {
 public:
  explicit SvRegressor(double c = 10.0, double epsilon = 0.05,
                       int epochs = 120, std::uint64_t seed = 17);

  void fit(const DataSet& data) override;
  double predict(const FeatureRow& row) const override;
  using Regressor::predict_batch;
  void predict_batch(const double* xs, std::size_t n, std::size_t stride,
                     double* out) const override;
  std::string name() const override { return "SvRegressor"; }

 private:
  double c_;
  double epsilon_;
  int epochs_;
  std::uint64_t seed_;
  StandardScaler scaler_;
  std::vector<double> w_;
  double b_ = 0.0;
  double y_scale_ = 1.0;
  double y_mean_ = 0.0;
};

}  // namespace sturgeon::ml
