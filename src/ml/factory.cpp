#include "ml/factory.h"

#include <stdexcept>

#include "ml/forest.h"
#include "ml/knn.h"
#include "ml/linear.h"
#include "ml/logistic.h"
#include "ml/mlp.h"
#include "ml/svm.h"
#include "ml/tree.h"
#include "util/stats.h"

namespace sturgeon::ml {

std::string to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLinear: return "LR";
    case ModelKind::kLasso: return "Lasso";
    case ModelKind::kDecisionTree: return "DT";
    case ModelKind::kRandomForest: return "RF";
    case ModelKind::kKnn: return "KNN";
    case ModelKind::kSvm: return "SV";
    case ModelKind::kMlp: return "MLP";
  }
  return "?";
}

std::vector<ModelKind> paper_regression_kinds() {
  return {ModelKind::kDecisionTree, ModelKind::kKnn, ModelKind::kSvm,
          ModelKind::kMlp, ModelKind::kLinear};
}

std::vector<ModelKind> paper_classification_kinds() {
  return {ModelKind::kDecisionTree, ModelKind::kKnn, ModelKind::kSvm,
          ModelKind::kMlp, ModelKind::kLinear};
}

RegressorPtr make_regressor(ModelKind kind, std::uint64_t seed) {
  switch (kind) {
    case ModelKind::kLinear:
      return std::make_unique<LinearRegression>();
    case ModelKind::kLasso:
      return std::make_unique<LassoRegression>(0.01);
    case ModelKind::kDecisionTree: {
      TreeParams tp;
      tp.max_depth = 14;
      tp.min_samples_leaf = 2;
      tp.seed = seed;
      return std::make_unique<DecisionTreeRegressor>(tp);
    }
    case ModelKind::kRandomForest: {
      ForestParams fp;
      fp.num_trees = 30;
      fp.seed = seed;
      return std::make_unique<RandomForestRegressor>(fp);
    }
    case ModelKind::kKnn:
      return std::make_unique<KnnRegressor>(5, /*weighted=*/true);
    case ModelKind::kSvm:
      return std::make_unique<SvRegressor>(10.0, 0.05, 120, seed);
    case ModelKind::kMlp: {
      MlpParams mp;
      mp.hidden = {16};
      mp.epochs = 150;
      mp.seed = seed;
      return std::make_unique<MlpRegressor>(mp);
    }
  }
  throw std::invalid_argument("make_regressor: unknown kind");
}

ClassifierPtr make_classifier(ModelKind kind, std::uint64_t seed) {
  switch (kind) {
    case ModelKind::kLinear:
      return std::make_unique<LogisticRegression>();
    case ModelKind::kDecisionTree: {
      TreeParams tp;
      tp.max_depth = 14;
      tp.min_samples_leaf = 2;
      tp.seed = seed;
      return std::make_unique<DecisionTreeClassifier>(tp);
    }
    case ModelKind::kRandomForest: {
      ForestParams fp;
      fp.num_trees = 30;
      fp.seed = seed;
      return std::make_unique<RandomForestClassifier>(fp);
    }
    case ModelKind::kKnn:
      return std::make_unique<KnnClassifier>(7);
    case ModelKind::kSvm:
      return std::make_unique<SvmClassifier>(1e-3, 60, seed);
    case ModelKind::kMlp: {
      MlpParams mp;
      mp.hidden = {16};
      mp.epochs = 150;
      mp.seed = seed;
      return std::make_unique<MlpClassifier>(mp);
    }
    case ModelKind::kLasso:
      break;  // Lasso has no classification analogue here
  }
  throw std::invalid_argument("make_classifier: unsupported kind " +
                              to_string(kind));
}

double holdout_r2(Regressor& model, const DataSet& train,
                  const DataSet& test) {
  model.fit(train);
  return r_squared(test.y, model.predict_batch(test.x));
}

double holdout_accuracy(Classifier& model,
                        const std::vector<FeatureRow>& train_x,
                        const std::vector<int>& train_labels,
                        const std::vector<FeatureRow>& test_x,
                        const std::vector<int>& test_labels) {
  model.fit(train_x, train_labels);
  return accuracy(test_labels, model.predict_batch(test_x));
}

double kfold_r2(ModelKind kind, const DataSet& data, int folds,
                std::uint64_t seed) {
  data.validate();
  const auto fold_idx = kfold_indices(data.size(), folds, seed);
  double total = 0.0;
  for (std::size_t f = 0; f < fold_idx.size(); ++f) {
    std::vector<std::size_t> train_idx;
    for (std::size_t g = 0; g < fold_idx.size(); ++g) {
      if (g == f) continue;
      train_idx.insert(train_idx.end(), fold_idx[g].begin(),
                       fold_idx[g].end());
    }
    auto model = make_regressor(kind, seed + f);
    total += holdout_r2(*model, subset(data, train_idx),
                        subset(data, fold_idx[f]));
  }
  return total / static_cast<double>(fold_idx.size());
}

}  // namespace sturgeon::ml
