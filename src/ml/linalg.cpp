#include "ml/linalg.h"

#include <cmath>
#include <stdexcept>

namespace sturgeon::ml {

std::vector<double> solve_linear_system(Matrix a, std::vector<double> b) {
  const std::size_t n = a.size();
  if (n == 0 || b.size() != n) {
    throw std::invalid_argument("solve_linear_system: bad shapes");
  }
  for (const auto& row : a) {
    if (row.size() != n) {
      throw std::invalid_argument("solve_linear_system: non-square matrix");
    }
  }
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    if (std::abs(a[pivot][col]) < 1e-12) {
      throw std::runtime_error("solve_linear_system: singular matrix");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    const double inv = 1.0 / a[col][col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[r][col] * inv;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a[i][c] * x[c];
    x[i] = acc / a[i][i];
  }
  return x;
}

Matrix normal_matrix(const std::vector<std::vector<double>>& rows,
                     double ridge) {
  if (rows.empty()) throw std::invalid_argument("normal_matrix: empty");
  const std::size_t d = rows[0].size();
  Matrix m(d, std::vector<double>(d, 0.0));
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = i; j < d; ++j) {
        m[i][j] += row[i] * row[j];
      }
    }
  }
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < i; ++j) m[i][j] = m[j][i];
    m[i][i] += ridge;
  }
  return m;
}

std::vector<double> normal_rhs(const std::vector<std::vector<double>>& rows,
                               const std::vector<double>& y) {
  if (rows.size() != y.size() || rows.empty()) {
    throw std::invalid_argument("normal_rhs: bad shapes");
  }
  const std::size_t d = rows[0].size();
  std::vector<double> v(d, 0.0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t j = 0; j < d; ++j) v[j] += rows[r][j] * y[r];
  }
  return v;
}

void matmul_transposed_bias(const double* a, std::size_t n, std::size_t k,
                            const double* b, std::size_t m,
                            const double* bias, double* out) {
  for (std::size_t r = 0; r < n; ++r) {
    const double* arow = a + r * k;
    double* orow = out + r * m;
    for (std::size_t j = 0; j < m; ++j) {
      const double* brow = b + j * k;
      double z = bias != nullptr ? bias[j] : 0.0;
      for (std::size_t i = 0; i < k; ++i) z += brow[i] * arow[i];
      orow[j] = z;
    }
  }
}

}  // namespace sturgeon::ml
