#include "ml/svm.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.h"

namespace sturgeon::ml {

SvmClassifier::SvmClassifier(double lambda, int epochs, std::uint64_t seed)
    : lambda_(lambda), epochs_(epochs), seed_(seed) {
  if (lambda <= 0.0 || epochs < 1) {
    throw std::invalid_argument("SvmClassifier: bad hyperparameters");
  }
}

void SvmClassifier::fit(const std::vector<FeatureRow>& x,
                        const std::vector<int>& labels) {
  if (x.empty() || x.size() != labels.size()) {
    throw std::invalid_argument("SvmClassifier::fit: bad shapes");
  }
  scaler_.fit(x);
  const auto xs = scaler_.transform(x);
  const std::size_t n = xs.size();
  const std::size_t d = xs[0].size();
  // Map labels {0,1} -> {-1,+1}.
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (labels[i] != 0 && labels[i] != 1) {
      throw std::invalid_argument("SvmClassifier: labels must be 0/1");
    }
    ys[i] = labels[i] == 1 ? 1.0 : -1.0;
  }
  w_.assign(d, 0.0);
  b_ = 0.0;
  Rng rng(seed_);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::size_t t = 0;
  for (int epoch = 0; epoch < epochs_; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
    for (std::size_t i : order) {
      ++t;
      const double eta = 1.0 / (lambda_ * static_cast<double>(t));
      double margin = b_;
      for (std::size_t j = 0; j < d; ++j) margin += w_[j] * xs[i][j];
      margin *= ys[i];
      const double decay = 1.0 - eta * lambda_;
      for (auto& wj : w_) wj *= decay;
      if (margin < 1.0) {
        for (std::size_t j = 0; j < d; ++j) w_[j] += eta * ys[i] * xs[i][j];
        b_ += eta * ys[i];
      }
    }
  }
}

double SvmClassifier::decision_function(const FeatureRow& row) const {
  if (!scaler_.fitted()) throw std::logic_error("SvmClassifier: not fitted");
  const auto xs = scaler_.transform(row);
  double z = b_;
  for (std::size_t j = 0; j < xs.size(); ++j) z += w_[j] * xs[j];
  return z;
}

int SvmClassifier::predict(const FeatureRow& row) const {
  return decision_function(row) >= 0.0 ? 1 : 0;
}

void SvmClassifier::predict_batch(const double* xs, std::size_t n,
                                  std::size_t stride, int* out) const {
  if (!scaler_.fitted()) throw std::logic_error("SvmClassifier: not fitted");
  if (stride != scaler_.dim()) {
    throw std::invalid_argument("SvmClassifier: arity mismatch");
  }
  std::vector<double> scaled(stride);
  for (std::size_t r = 0; r < n; ++r) {
    scaler_.transform_into(xs + r * stride, scaled.data());
    double z = b_;
    for (std::size_t j = 0; j < stride; ++j) z += w_[j] * scaled[j];
    out[r] = z >= 0.0 ? 1 : 0;
  }
}

SvRegressor::SvRegressor(double c, double epsilon, int epochs,
                         std::uint64_t seed)
    : c_(c), epsilon_(epsilon), epochs_(epochs), seed_(seed) {
  if (c <= 0.0 || epsilon < 0.0 || epochs < 1) {
    throw std::invalid_argument("SvRegressor: bad hyperparameters");
  }
}

void SvRegressor::fit(const DataSet& data) {
  data.validate();
  if (data.empty()) throw std::invalid_argument("SvRegressor: empty fit");
  scaler_.fit(data.x);
  const auto xs = scaler_.transform(data.x);
  const std::size_t n = xs.size();
  const std::size_t d = xs[0].size();

  // Normalize the target so epsilon is in units of target stddev.
  y_mean_ = std::accumulate(data.y.begin(), data.y.end(), 0.0) /
            static_cast<double>(n);
  double var = 0.0;
  for (double yv : data.y) var += (yv - y_mean_) * (yv - y_mean_);
  y_scale_ = std::sqrt(var / static_cast<double>(n));
  if (y_scale_ < 1e-12) y_scale_ = 1.0;
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) ys[i] = (data.y[i] - y_mean_) / y_scale_;

  w_.assign(d, 0.0);
  b_ = 0.0;
  const double lambda = 1.0 / (c_ * static_cast<double>(n));
  Rng rng(seed_);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::size_t t = 0;
  for (int epoch = 0; epoch < epochs_; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
    for (std::size_t i : order) {
      ++t;
      const double eta = 1.0 / (lambda * static_cast<double>(t));
      double pred = b_;
      for (std::size_t j = 0; j < d; ++j) pred += w_[j] * xs[i][j];
      const double err = pred - ys[i];
      const double decay = 1.0 - eta * lambda;
      for (auto& wj : w_) wj *= decay;
      if (err > epsilon_) {
        for (std::size_t j = 0; j < d; ++j) w_[j] -= eta * xs[i][j];
        b_ -= eta;
      } else if (err < -epsilon_) {
        for (std::size_t j = 0; j < d; ++j) w_[j] += eta * xs[i][j];
        b_ += eta;
      }
    }
  }
}

double SvRegressor::predict(const FeatureRow& row) const {
  if (!scaler_.fitted()) throw std::logic_error("SvRegressor: not fitted");
  const auto xs = scaler_.transform(row);
  double z = b_;
  for (std::size_t j = 0; j < xs.size(); ++j) z += w_[j] * xs[j];
  return z * y_scale_ + y_mean_;
}

void SvRegressor::predict_batch(const double* xs, std::size_t n,
                                std::size_t stride, double* out) const {
  if (!scaler_.fitted()) throw std::logic_error("SvRegressor: not fitted");
  if (stride != scaler_.dim()) {
    throw std::invalid_argument("SvRegressor: arity mismatch");
  }
  std::vector<double> scaled(stride);
  for (std::size_t r = 0; r < n; ++r) {
    scaler_.transform_into(xs + r * stride, scaled.data());
    double z = b_;
    for (std::size_t j = 0; j < stride; ++j) z += w_[j] * scaled[j];
    out[r] = z * y_scale_ + y_mean_;
  }
}

}  // namespace sturgeon::ml
