// Random forests by bootstrap aggregation of CART trees. Not in the
// paper's compared set; included as an extension the model repository can
// select when it beats the paper's families on validation data.
#pragma once

#include "ml/tree.h"

namespace sturgeon::ml {

struct ForestParams {
  int num_trees = 25;
  TreeParams tree;        ///< per-tree parameters (max_features honored)
  std::uint64_t seed = 7;
};

class RandomForestRegressor : public Regressor {
 public:
  explicit RandomForestRegressor(ForestParams params = {});

  void fit(const DataSet& data) override;
  double predict(const FeatureRow& row) const override;
  using Regressor::predict_batch;
  void predict_batch(const double* xs, std::size_t n, std::size_t stride,
                     double* out) const override;
  std::string name() const override { return "RandomForestRegressor"; }

  std::size_t num_trees() const { return trees_.size(); }

 private:
  ForestParams params_;
  std::vector<detail::CartTree> trees_;
};

class RandomForestClassifier : public Classifier {
 public:
  explicit RandomForestClassifier(ForestParams params = {});

  void fit(const std::vector<FeatureRow>& x,
           const std::vector<int>& labels) override;
  int predict(const FeatureRow& row) const override;
  using Classifier::predict_batch;
  void predict_batch(const double* xs, std::size_t n, std::size_t stride,
                     int* out) const override;
  std::string name() const override { return "RandomForestClassifier"; }

  std::size_t num_trees() const { return trees_.size(); }

 private:
  ForestParams params_;
  std::vector<detail::CartTree> trees_;
};

}  // namespace sturgeon::ml
