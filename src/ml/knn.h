// K-nearest-neighbor regression and classification over standardized
// features (brute force; training sets here are a few thousand rows).
// The paper finds KNN regression the best fit for the power models and
// competitive for BE performance (Figs 6 & 7).
#pragma once

#include "ml/model.h"

namespace sturgeon::ml {

namespace detail {
/// Indices of the k nearest rows to `query` under squared Euclidean
/// distance; exposed for testing.
std::vector<std::size_t> knn_indices(const std::vector<FeatureRow>& rows,
                                     const FeatureRow& query, int k);
}  // namespace detail

class KnnRegressor : public Regressor {
 public:
  /// `weighted` uses inverse-distance weighting of neighbor targets.
  explicit KnnRegressor(int k = 5, bool weighted = true);

  void fit(const DataSet& data) override;
  double predict(const FeatureRow& row) const override;
  using Regressor::predict_batch;
  void predict_batch(const double* xs, std::size_t n, std::size_t stride,
                     double* out) const override;
  std::string name() const override { return "KnnRegressor"; }

 private:
  /// Shared aggregation over an already-scaled query; keeps the scalar
  /// and batched paths structurally identical.
  double predict_scaled(const FeatureRow& q) const;

  int k_;
  bool weighted_;
  StandardScaler scaler_;
  std::vector<FeatureRow> x_;
  std::vector<double> y_;
};

class KnnClassifier : public Classifier {
 public:
  explicit KnnClassifier(int k = 5);

  void fit(const std::vector<FeatureRow>& x,
           const std::vector<int>& labels) override;
  int predict(const FeatureRow& row) const override;
  using Classifier::predict_batch;
  void predict_batch(const double* xs, std::size_t n, std::size_t stride,
                     int* out) const override;
  std::string name() const override { return "KnnClassifier"; }

 private:
  int predict_scaled(const FeatureRow& q) const;

  int k_;
  StandardScaler scaler_;
  std::vector<FeatureRow> x_;
  std::vector<int> labels_;
};

}  // namespace sturgeon::ml
