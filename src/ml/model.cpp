#include "ml/model.h"

#include <cmath>
#include <stdexcept>

#include "util/check.h"

namespace sturgeon::ml {

namespace {

/// Flatten uniform-arity rows into one dense row-major buffer; throws on
/// ragged input (the strided batch contract needs a rectangular matrix).
std::vector<double> flatten(const std::vector<FeatureRow>& x,
                            std::size_t stride) {
  std::vector<double> xs;
  xs.reserve(x.size() * stride);
  for (const auto& row : x) {
    if (row.size() != stride) {
      throw std::invalid_argument("predict_batch: ragged feature rows");
    }
    xs.insert(xs.end(), row.begin(), row.end());
  }
  return xs;
}

}  // namespace

void Regressor::predict_batch(const double* xs, std::size_t n,
                              std::size_t stride, double* out) const {
  FeatureRow row(stride);
  for (std::size_t i = 0; i < n; ++i) {
    const double* r = xs + i * stride;
    row.assign(r, r + stride);
    out[i] = predict(row);
  }
}

std::vector<double> Regressor::predict_batch(
    const std::vector<FeatureRow>& x) const {
  if (x.empty()) return {};
  const std::size_t stride = x[0].size();
  const auto xs = flatten(x, stride);
  std::vector<double> out(x.size());
  predict_batch(xs.data(), x.size(), stride, out.data());
  for (const double v : out) {
    STURGEON_DCHECK(std::isfinite(v),
                    "" << name() << ": non-finite prediction");
  }
  return out;
}

void Classifier::predict_batch(const double* xs, std::size_t n,
                               std::size_t stride, int* out) const {
  FeatureRow row(stride);
  for (std::size_t i = 0; i < n; ++i) {
    const double* r = xs + i * stride;
    row.assign(r, r + stride);
    out[i] = predict(row);
  }
}

std::vector<int> Classifier::predict_batch(
    const std::vector<FeatureRow>& x) const {
  if (x.empty()) return {};
  const std::size_t stride = x[0].size();
  const auto xs = flatten(x, stride);
  std::vector<int> out(x.size());
  predict_batch(xs.data(), x.size(), stride, out.data());
  return out;
}

}  // namespace sturgeon::ml
