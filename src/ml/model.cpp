#include "ml/model.h"

#include <cmath>

#include "util/check.h"

namespace sturgeon::ml {

std::vector<double> Regressor::predict_batch(
    const std::vector<FeatureRow>& x) const {
  std::vector<double> out;
  out.reserve(x.size());
  for (const auto& row : x) {
    const double v = predict(row);
    STURGEON_DCHECK(std::isfinite(v),
                    "" << name() << ": non-finite prediction");
    out.push_back(v);
  }
  return out;
}

std::vector<int> Classifier::predict_batch(
    const std::vector<FeatureRow>& x) const {
  std::vector<int> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(predict(row));
  return out;
}

}  // namespace sturgeon::ml
