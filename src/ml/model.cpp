#include "ml/model.h"

namespace sturgeon::ml {

std::vector<double> Regressor::predict_batch(
    const std::vector<FeatureRow>& x) const {
  std::vector<double> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(predict(row));
  return out;
}

std::vector<int> Classifier::predict_batch(
    const std::vector<FeatureRow>& x) const {
  std::vector<int> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(predict(row));
  return out;
}

}  // namespace sturgeon::ml
