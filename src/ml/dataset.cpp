#include "ml/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sturgeon::ml {

void DataSet::add(FeatureRow row, double target) {
  if (!x.empty() && row.size() != x[0].size()) {
    throw std::invalid_argument("DataSet::add: feature arity mismatch");
  }
  x.push_back(std::move(row));
  y.push_back(target);
}

void DataSet::validate() const {
  if (x.size() != y.size()) {
    throw std::invalid_argument("DataSet: |x| != |y|");
  }
  if (!x.empty()) {
    const std::size_t arity = x[0].size();
    for (const auto& row : x) {
      if (row.size() != arity) {
        throw std::invalid_argument("DataSet: ragged feature rows");
      }
    }
  }
}

SplitResult train_test_split(const DataSet& data, double test_fraction,
                             std::uint64_t seed) {
  data.validate();
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    throw std::invalid_argument("train_test_split: fraction out of (0,1)");
  }
  std::vector<std::size_t> idx(data.size());
  std::iota(idx.begin(), idx.end(), 0);
  Rng rng(seed);
  for (std::size_t i = idx.size(); i > 1; --i) {
    std::swap(idx[i - 1], idx[rng.next_below(i)]);
  }
  const auto n_test = static_cast<std::size_t>(
      std::round(test_fraction * static_cast<double>(data.size())));
  SplitResult out;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    auto& dst = i < n_test ? out.test : out.train;
    dst.add(data.x[idx[i]], data.y[idx[i]]);
  }
  return out;
}

std::vector<std::vector<std::size_t>> kfold_indices(std::size_t n, int k,
                                                    std::uint64_t seed) {
  if (k < 2 || static_cast<std::size_t>(k) > n) {
    throw std::invalid_argument("kfold_indices: bad k");
  }
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  Rng rng(seed);
  for (std::size_t i = idx.size(); i > 1; --i) {
    std::swap(idx[i - 1], idx[rng.next_below(i)]);
  }
  std::vector<std::vector<std::size_t>> folds(static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < n; ++i) {
    folds[i % static_cast<std::size_t>(k)].push_back(idx[i]);
  }
  return folds;
}

DataSet subset(const DataSet& data, const std::vector<std::size_t>& idx) {
  DataSet out;
  for (std::size_t i : idx) {
    if (i >= data.size()) throw std::out_of_range("subset: index");
    out.add(data.x[i], data.y[i]);
  }
  return out;
}

void StandardScaler::fit(const std::vector<FeatureRow>& x) {
  if (x.empty()) throw std::invalid_argument("StandardScaler::fit: empty");
  const std::size_t d = x[0].size();
  mean_.assign(d, 0.0);
  stddev_.assign(d, 0.0);
  for (const auto& row : x) {
    if (row.size() != d) {
      throw std::invalid_argument("StandardScaler::fit: ragged rows");
    }
    for (std::size_t j = 0; j < d; ++j) mean_[j] += row[j];
  }
  for (auto& m : mean_) m /= static_cast<double>(x.size());
  for (const auto& row : x) {
    for (std::size_t j = 0; j < d; ++j) {
      const double dlt = row[j] - mean_[j];
      stddev_[j] += dlt * dlt;
    }
  }
  for (auto& s : stddev_) {
    s = std::sqrt(s / static_cast<double>(x.size()));
    if (s < 1e-12) s = 0.0;  // constant feature
  }
}

FeatureRow StandardScaler::transform(const FeatureRow& row) const {
  if (!fitted()) throw std::logic_error("StandardScaler: not fitted");
  if (row.size() != mean_.size()) {
    throw std::invalid_argument("StandardScaler::transform: arity mismatch");
  }
  FeatureRow out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j) {
    out[j] = stddev_[j] == 0.0 ? 0.0 : (row[j] - mean_[j]) / stddev_[j];
  }
  return out;
}

void StandardScaler::transform_into(const double* row, double* out) const {
  if (!fitted()) throw std::logic_error("StandardScaler: not fitted");
  for (std::size_t j = 0; j < mean_.size(); ++j) {
    out[j] = stddev_[j] == 0.0 ? 0.0 : (row[j] - mean_[j]) / stddev_[j];
  }
}

std::vector<FeatureRow> StandardScaler::transform(
    const std::vector<FeatureRow>& x) const {
  std::vector<FeatureRow> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(transform(row));
  return out;
}

}  // namespace sturgeon::ml
