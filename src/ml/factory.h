// Model-family enumeration and factory, mirroring the set compared in
// paper Section V-C / Figs 6-7, plus evaluation helpers (hold-out R²,
// hold-out accuracy, k-fold scores) used by the trainer to pick the best
// family per model role.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/model.h"

namespace sturgeon::ml {

enum class ModelKind {
  kLinear,        ///< linear regression / logistic regression
  kLasso,         ///< lasso regression (regression only)
  kDecisionTree,
  kRandomForest,  ///< extension beyond the paper's set
  kKnn,
  kSvm,
  kMlp,
};

std::string to_string(ModelKind kind);

/// The families the paper compares for regression / classification roles
/// (Figs 6-7): LR, DT, KNN, SV, MLP.
std::vector<ModelKind> paper_regression_kinds();
std::vector<ModelKind> paper_classification_kinds();

/// Construct a model of the given family with sensible defaults for the
/// 4-feature Sturgeon workload (paper Section V-A). `seed` controls any
/// stochastic training.
RegressorPtr make_regressor(ModelKind kind, std::uint64_t seed = 1);
ClassifierPtr make_classifier(ModelKind kind, std::uint64_t seed = 1);

/// Fit on `train`, score R² on `test`.
double holdout_r2(Regressor& model, const DataSet& train, const DataSet& test);

/// Fit on train rows/labels, score accuracy on test rows/labels.
double holdout_accuracy(Classifier& model,
                        const std::vector<FeatureRow>& train_x,
                        const std::vector<int>& train_labels,
                        const std::vector<FeatureRow>& test_x,
                        const std::vector<int>& test_labels);

/// Mean k-fold R² for a fresh model of `kind` per fold.
double kfold_r2(ModelKind kind, const DataSet& data, int folds,
                std::uint64_t seed);

}  // namespace sturgeon::ml
