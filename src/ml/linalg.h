// Minimal dense linear algebra for the closed-form regressors: Gaussian
// elimination with partial pivoting on small (d <= ~20) systems.
#pragma once

#include <vector>

namespace sturgeon::ml {

/// Square matrix in row-major order.
using Matrix = std::vector<std::vector<double>>;

/// Solve A x = b in place (A and b are copied); throws std::runtime_error
/// if the matrix is numerically singular.
std::vector<double> solve_linear_system(Matrix a, std::vector<double> b);

/// C = A^T A for a tall data matrix (rows are samples), plus ridge*I.
Matrix normal_matrix(const std::vector<std::vector<double>>& rows,
                     double ridge);

/// v = A^T y.
std::vector<double> normal_rhs(const std::vector<std::vector<double>>& rows,
                               const std::vector<double>& y);

/// out = A * B^T + bias: A is n x k row-major (one sample per row), B is
/// m x k row-major (one output unit's weights per row), bias has length m
/// (nullptr = zero), out is n x m row-major. The inner accumulation runs
/// z = bias[j]; z += B[j][i] * A[r][i] for i ascending -- the same order
/// as a per-sample GEMV -- so batched inference built on this routine is
/// bit-identical to scalar prediction.
void matmul_transposed_bias(const double* a, std::size_t n, std::size_t k,
                            const double* b, std::size_t m,
                            const double* bias, double* out);

}  // namespace sturgeon::ml
