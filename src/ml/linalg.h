// Minimal dense linear algebra for the closed-form regressors: Gaussian
// elimination with partial pivoting on small (d <= ~20) systems.
#pragma once

#include <vector>

namespace sturgeon::ml {

/// Square matrix in row-major order.
using Matrix = std::vector<std::vector<double>>;

/// Solve A x = b in place (A and b are copied); throws std::runtime_error
/// if the matrix is numerically singular.
std::vector<double> solve_linear_system(Matrix a, std::vector<double> b);

/// C = A^T A for a tall data matrix (rows are samples), plus ridge*I.
Matrix normal_matrix(const std::vector<std::vector<double>>& rows,
                     double ridge);

/// v = A^T y.
std::vector<double> normal_rhs(const std::vector<std::vector<double>>& rows,
                               const std::vector<double>& y);

}  // namespace sturgeon::ml
