#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "ml/linalg.h"
#include "util/check.h"
#include "util/rng.h"

namespace sturgeon::ml {
namespace detail {

void MlpNet::init(std::size_t input_dim, const std::vector<int>& hidden,
                  std::uint64_t seed) {
  weights_.clear();
  biases_.clear();
  in_dims_.clear();
  out_dims_.clear();
  Rng rng(seed);
  std::size_t prev = input_dim;
  std::vector<std::size_t> dims;
  for (int h : hidden) {
    if (h < 1) throw std::invalid_argument("MlpNet: hidden width < 1");
    dims.push_back(static_cast<std::size_t>(h));
  }
  dims.push_back(1);  // scalar output
  for (std::size_t out : dims) {
    in_dims_.push_back(prev);
    out_dims_.push_back(out);
    // Xavier/Glorot uniform initialization.
    const double bound =
        std::sqrt(6.0 / static_cast<double>(prev + out));
    std::vector<double> w(prev * out);
    for (auto& v : w) v = rng.uniform(-bound, bound);
    weights_.push_back(std::move(w));
    biases_.emplace_back(out, 0.0);
    prev = out;
  }
  const auto zeros_like = [this] {
    std::vector<std::vector<double>> z;
    for (const auto& w : weights_) z.emplace_back(w.size(), 0.0);
    return z;
  };
  const auto zeros_like_b = [this] {
    std::vector<std::vector<double>> z;
    for (const auto& b : biases_) z.emplace_back(b.size(), 0.0);
    return z;
  };
  gw_ = zeros_like();
  mw_ = zeros_like();
  vw_ = zeros_like();
  gb_ = zeros_like_b();
  mb_ = zeros_like_b();
  vb_ = zeros_like_b();
}

double MlpNet::forward(const FeatureRow& row,
                       std::vector<std::vector<double>>& acts) const {
  if (!initialized()) throw std::logic_error("MlpNet: not initialized");
  if (row.size() != in_dims_[0]) {
    throw std::invalid_argument("MlpNet::forward: arity mismatch");
  }
  acts.assign(weights_.size(), {});
  const double* input = row.data();
  std::size_t in_dim = row.size();
  double out_preact = 0.0;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    const std::size_t out_dim = out_dims_[l];
    acts[l].assign(out_dim, 0.0);
    const bool last = l + 1 == weights_.size();
    for (std::size_t j = 0; j < out_dim; ++j) {
      double z = biases_[l][j];
      const double* wrow = &weights_[l][j * in_dim];
      for (std::size_t i = 0; i < in_dim; ++i) z += wrow[i] * input[i];
      acts[l][j] = last ? z : std::tanh(z);
      if (last) out_preact = z;
    }
    input = acts[l].data();
    in_dim = out_dim;
  }
  return out_preact;
}

void MlpNet::forward_batch(const double* xs, std::size_t n,
                           double* out) const {
  if (!initialized()) throw std::logic_error("MlpNet: not initialized");
  std::vector<double> cur(xs, xs + n * in_dims_[0]);
  std::vector<double> next;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    const std::size_t in_dim = in_dims_[l];
    const std::size_t out_dim = out_dims_[l];
    next.assign(n * out_dim, 0.0);
    matmul_transposed_bias(cur.data(), n, in_dim, weights_[l].data(), out_dim,
                           biases_[l].data(), next.data());
    if (l + 1 < weights_.size()) {
      for (double& v : next) v = std::tanh(v);
    }
    cur.swap(next);
  }
  std::copy(cur.begin(), cur.begin() + static_cast<long>(n), out);
}

void MlpNet::backward(const FeatureRow& row,
                      const std::vector<std::vector<double>>& acts,
                      double dloss_dout) {
  const std::size_t layers = weights_.size();
  // delta for the output layer (linear activation).
  std::vector<double> delta{dloss_dout};
  for (std::size_t l = layers; l-- > 0;) {
    const std::size_t in_dim = in_dims_[l];
    const std::size_t out_dim = out_dims_[l];
    const double* input = l == 0 ? row.data() : acts[l - 1].data();
    for (std::size_t j = 0; j < out_dim; ++j) {
      const double dj = delta[j];
      gb_[l][j] += dj;
      double* grow = &gw_[l][j * in_dim];
      for (std::size_t i = 0; i < in_dim; ++i) grow[i] += dj * input[i];
    }
    if (l == 0) break;
    // Propagate delta to the previous (tanh) layer.
    std::vector<double> prev_delta(in_dim, 0.0);
    for (std::size_t j = 0; j < out_dim; ++j) {
      const double dj = delta[j];
      const double* wrow = &weights_[l][j * in_dim];
      for (std::size_t i = 0; i < in_dim; ++i) prev_delta[i] += dj * wrow[i];
    }
    for (std::size_t i = 0; i < in_dim; ++i) {
      const double a = acts[l - 1][i];
      prev_delta[i] *= 1.0 - a * a;  // tanh'
    }
    delta = std::move(prev_delta);
  }
}

void MlpNet::apply_adam(double lr, double l2, std::size_t batch, int step) {
  if (batch == 0) return;
  constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
  const double inv_batch = 1.0 / static_cast<double>(batch);
  const double bc1 = 1.0 - std::pow(kBeta1, step);
  const double bc2 = 1.0 - std::pow(kBeta2, step);
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    for (std::size_t k = 0; k < weights_[l].size(); ++k) {
      const double g = gw_[l][k] * inv_batch + l2 * weights_[l][k];
      mw_[l][k] = kBeta1 * mw_[l][k] + (1.0 - kBeta1) * g;
      vw_[l][k] = kBeta2 * vw_[l][k] + (1.0 - kBeta2) * g * g;
      weights_[l][k] -=
          lr * (mw_[l][k] / bc1) / (std::sqrt(vw_[l][k] / bc2) + kEps);
      gw_[l][k] = 0.0;
    }
    for (std::size_t k = 0; k < biases_[l].size(); ++k) {
      const double g = gb_[l][k] * inv_batch;
      mb_[l][k] = kBeta1 * mb_[l][k] + (1.0 - kBeta1) * g;
      vb_[l][k] = kBeta2 * vb_[l][k] + (1.0 - kBeta2) * g * g;
      biases_[l][k] -=
          lr * (mb_[l][k] / bc1) / (std::sqrt(vb_[l][k] / bc2) + kEps);
      gb_[l][k] = 0.0;
    }
  }
}

}  // namespace detail

namespace {
double sigmoid(double z) {
  if (z >= 0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}
}  // namespace

MlpRegressor::MlpRegressor(MlpParams params) : params_(std::move(params)) {
  if (params_.epochs < 1 || params_.batch_size < 1 ||
      params_.learning_rate <= 0.0) {
    throw std::invalid_argument("MlpRegressor: bad hyperparameters");
  }
}

void MlpRegressor::fit(const DataSet& data) {
  data.validate();
  if (data.empty()) throw std::invalid_argument("MlpRegressor: empty fit");
  scaler_.fit(data.x);
  const auto xs = scaler_.transform(data.x);
  const std::size_t n = xs.size();

  y_mean_ = std::accumulate(data.y.begin(), data.y.end(), 0.0) /
            static_cast<double>(n);
  double var = 0.0;
  for (double yv : data.y) var += (yv - y_mean_) * (yv - y_mean_);
  y_scale_ = std::sqrt(var / static_cast<double>(n));
  if (y_scale_ < 1e-12) y_scale_ = 1.0;

  net_.init(xs[0].size(), params_.hidden, params_.seed);
  Rng rng(params_.seed ^ 0xabcdULL);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<std::vector<double>> acts;
  int step = 0;
  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
    for (std::size_t start = 0; start < n;
         start += static_cast<std::size_t>(params_.batch_size)) {
      const std::size_t end =
          std::min(n, start + static_cast<std::size_t>(params_.batch_size));
      for (std::size_t bi = start; bi < end; ++bi) {
        const std::size_t i = order[bi];
        const double pred = net_.forward(xs[i], acts);
        const double target = (data.y[i] - y_mean_) / y_scale_;
        net_.backward(xs[i], acts, pred - target);  // d(0.5 e^2)/dz
      }
      net_.apply_adam(params_.learning_rate, params_.l2, end - start, ++step);
    }
  }
}

double MlpRegressor::predict(const FeatureRow& row) const {
  if (!scaler_.fitted()) throw std::logic_error("MlpRegressor: not fitted");
  std::vector<std::vector<double>> acts;
  const double v = net_.forward(scaler_.transform(row), acts) * y_scale_ +
                   y_mean_;
  STURGEON_DCHECK(std::isfinite(v), "MlpRegressor: non-finite prediction");
  return v;
}

void MlpRegressor::predict_batch(const double* xs, std::size_t n,
                                 std::size_t stride, double* out) const {
  if (!scaler_.fitted()) throw std::logic_error("MlpRegressor: not fitted");
  if (stride != scaler_.dim()) {
    throw std::invalid_argument("MlpRegressor: arity mismatch");
  }
  std::vector<double> scaled(n * stride);
  for (std::size_t r = 0; r < n; ++r) {
    scaler_.transform_into(xs + r * stride, scaled.data() + r * stride);
  }
  net_.forward_batch(scaled.data(), n, out);
  for (std::size_t r = 0; r < n; ++r) {
    out[r] = out[r] * y_scale_ + y_mean_;
    STURGEON_DCHECK(std::isfinite(out[r]),
                    "MlpRegressor: non-finite prediction");
  }
}

MlpClassifier::MlpClassifier(MlpParams params) : params_(std::move(params)) {
  if (params_.epochs < 1 || params_.batch_size < 1 ||
      params_.learning_rate <= 0.0) {
    throw std::invalid_argument("MlpClassifier: bad hyperparameters");
  }
}

void MlpClassifier::fit(const std::vector<FeatureRow>& x,
                        const std::vector<int>& labels) {
  if (x.empty() || x.size() != labels.size()) {
    throw std::invalid_argument("MlpClassifier::fit: bad shapes");
  }
  scaler_.fit(x);
  const auto xs = scaler_.transform(x);
  const std::size_t n = xs.size();
  net_.init(xs[0].size(), params_.hidden, params_.seed);
  Rng rng(params_.seed ^ 0xdcbaULL);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<std::vector<double>> acts;
  int step = 0;
  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
    for (std::size_t start = 0; start < n;
         start += static_cast<std::size_t>(params_.batch_size)) {
      const std::size_t end =
          std::min(n, start + static_cast<std::size_t>(params_.batch_size));
      for (std::size_t bi = start; bi < end; ++bi) {
        const std::size_t i = order[bi];
        const double z = net_.forward(xs[i], acts);
        // Cross-entropy on sigmoid output: dL/dz = p - y.
        net_.backward(xs[i], acts,
                      sigmoid(z) - static_cast<double>(labels[i]));
      }
      net_.apply_adam(params_.learning_rate, params_.l2, end - start, ++step);
    }
  }
}

double MlpClassifier::predict_proba(const FeatureRow& row) const {
  if (!scaler_.fitted()) throw std::logic_error("MlpClassifier: not fitted");
  std::vector<std::vector<double>> acts;
  return sigmoid(net_.forward(scaler_.transform(row), acts));
}

int MlpClassifier::predict(const FeatureRow& row) const {
  return predict_proba(row) >= 0.5 ? 1 : 0;
}

void MlpClassifier::predict_batch(const double* xs, std::size_t n,
                                  std::size_t stride, int* out) const {
  if (!scaler_.fitted()) throw std::logic_error("MlpClassifier: not fitted");
  if (stride != scaler_.dim()) {
    throw std::invalid_argument("MlpClassifier: arity mismatch");
  }
  std::vector<double> scaled(n * stride);
  for (std::size_t r = 0; r < n; ++r) {
    scaler_.transform_into(xs + r * stride, scaled.data() + r * stride);
  }
  std::vector<double> z(n);
  net_.forward_batch(scaled.data(), n, z.data());
  for (std::size_t r = 0; r < n; ++r) {
    out[r] = sigmoid(z[r]) >= 0.5 ? 1 : 0;
  }
}

}  // namespace sturgeon::ml
