// Multi-layer perceptron with tanh hidden units trained by Adam on
// mini-batches; regressor (linear output, squared loss) and classifier
// (sigmoid output, cross-entropy). MLP regression is among the paper's
// best families for BE performance models (Fig 6).
#pragma once

#include <cstdint>

#include "ml/model.h"

namespace sturgeon::ml {

struct MlpParams {
  std::vector<int> hidden = {16, 16};
  double learning_rate = 5e-3;
  int epochs = 300;
  int batch_size = 32;
  double l2 = 1e-5;
  std::uint64_t seed = 23;
};

namespace detail {
/// Fully-connected network used by both public wrappers. All hidden
/// activations are tanh; the output activation is the wrapper's concern.
class MlpNet {
 public:
  void init(std::size_t input_dim, const std::vector<int>& hidden,
            std::uint64_t seed);

  /// Forward pass; returns the single pre-activation output, filling the
  /// per-layer activation cache used by backward().
  double forward(const FeatureRow& row,
                 std::vector<std::vector<double>>& acts) const;

  /// Batched forward over `n` densely packed (already scaled) rows; writes
  /// the n pre-activation outputs. Each layer is one matrix-matrix product,
  /// but the per-output accumulation order matches forward() bit-for-bit.
  void forward_batch(const double* xs, std::size_t n, double* out) const;

  /// Accumulate gradients for one sample given dLoss/dOutput.
  void backward(const FeatureRow& row,
                const std::vector<std::vector<double>>& acts,
                double dloss_dout);

  /// Adam step over accumulated gradients (averaged over `batch` samples),
  /// then clears the accumulators.
  void apply_adam(double lr, double l2, std::size_t batch, int step);

  bool initialized() const { return !weights_.empty(); }

 private:
  // weights_[l][j*in+ i]: layer l maps in_dims_[l] -> out_dims_[l].
  std::vector<std::vector<double>> weights_;
  std::vector<std::vector<double>> biases_;
  std::vector<std::size_t> in_dims_, out_dims_;
  // Gradient accumulators and Adam moments (same shapes as weights/biases).
  std::vector<std::vector<double>> gw_, gb_, mw_, vw_, mb_, vb_;
};
}  // namespace detail

class MlpRegressor : public Regressor {
 public:
  explicit MlpRegressor(MlpParams params = {});

  void fit(const DataSet& data) override;
  double predict(const FeatureRow& row) const override;
  using Regressor::predict_batch;
  void predict_batch(const double* xs, std::size_t n, std::size_t stride,
                     double* out) const override;
  std::string name() const override { return "MlpRegressor"; }

 private:
  MlpParams params_;
  StandardScaler scaler_;
  detail::MlpNet net_;
  double y_mean_ = 0.0, y_scale_ = 1.0;
};

class MlpClassifier : public Classifier {
 public:
  explicit MlpClassifier(MlpParams params = {});

  void fit(const std::vector<FeatureRow>& x,
           const std::vector<int>& labels) override;
  int predict(const FeatureRow& row) const override;
  using Classifier::predict_batch;
  void predict_batch(const double* xs, std::size_t n, std::size_t stride,
                     int* out) const override;
  std::string name() const override { return "MlpClassifier"; }

  double predict_proba(const FeatureRow& row) const;

 private:
  MlpParams params_;
  StandardScaler scaler_;
  detail::MlpNet net_;
};

}  // namespace sturgeon::ml
