// Tabular dataset container plus the standard preprocessing utilities
// (train/test split, k-fold cross validation, feature standardization)
// used by the offline model trainer (paper Section V-A/V-C).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace sturgeon::ml {

using FeatureRow = std::vector<double>;

/// Feature matrix + regression target. Classification tasks reuse `y`
/// with integer-coded labels (0/1).
struct DataSet {
  std::vector<FeatureRow> x;
  std::vector<double> y;

  std::size_t size() const { return x.size(); }
  std::size_t num_features() const { return x.empty() ? 0 : x[0].size(); }
  bool empty() const { return x.empty(); }

  void add(FeatureRow row, double target);

  /// Throws std::invalid_argument unless all rows have equal arity and
  /// |x| == |y|.
  void validate() const;
};

/// Deterministic shuffled split; test_fraction in (0,1).
struct SplitResult {
  DataSet train;
  DataSet test;
};
SplitResult train_test_split(const DataSet& data, double test_fraction,
                             std::uint64_t seed);

/// Index folds for k-fold CV (shuffled, near-equal sizes).
std::vector<std::vector<std::size_t>> kfold_indices(std::size_t n, int k,
                                                    std::uint64_t seed);

/// Gather a row-subset of a dataset.
DataSet subset(const DataSet& data, const std::vector<std::size_t>& idx);

/// Per-feature standardization to zero mean / unit variance. Constant
/// features map to zero. Fitted on train data, applied to any row.
class StandardScaler {
 public:
  void fit(const std::vector<FeatureRow>& x);
  FeatureRow transform(const FeatureRow& row) const;
  std::vector<FeatureRow> transform(const std::vector<FeatureRow>& x) const;
  /// Allocation-free variant for the batched-inference hot path: scales
  /// `row[0..dim)` into `out` with arithmetic identical to transform().
  void transform_into(const double* row, double* out) const;
  bool fitted() const { return !mean_.empty(); }
  std::size_t dim() const { return mean_.size(); }

  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return stddev_; }

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace sturgeon::ml
