#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <stdexcept>

#include "util/rng.h"

namespace sturgeon::ml {
namespace detail {

namespace {

double leaf_value(const std::vector<double>& y,
                  const std::vector<std::size_t>& idx, std::size_t lo,
                  std::size_t hi, bool classification) {
  if (!classification) {
    double acc = 0.0;
    for (std::size_t i = lo; i < hi; ++i) acc += y[idx[i]];
    return acc / static_cast<double>(hi - lo);
  }
  std::map<int, int> votes;
  for (std::size_t i = lo; i < hi; ++i) {
    ++votes[static_cast<int>(std::lround(y[idx[i]]))];
  }
  int best = 0, best_count = -1;
  for (const auto& [label, count] : votes) {
    if (count > best_count) {
      best_count = count;
      best = label;
    }
  }
  return static_cast<double>(best);
}

/// Impurity * count for a label histogram (Gini) or value accumulators
/// (variance); lower is better.
struct SplitScan {
  // Regression accumulators.
  double sum = 0.0, sum_sq = 0.0;
  // Classification histogram (labels are small non-negative ints).
  std::map<int, int> hist;
  int count = 0;

  void add(double yv, bool classification) {
    ++count;
    if (classification) {
      ++hist[static_cast<int>(std::lround(yv))];
    } else {
      sum += yv;
      sum_sq += yv * yv;
    }
  }
  void remove(double yv, bool classification) {
    --count;
    if (classification) {
      --hist[static_cast<int>(std::lround(yv))];
    } else {
      sum -= yv;
      sum_sq -= yv * yv;
    }
  }
  /// Weighted impurity contribution (count * impurity).
  double weighted_impurity(bool classification) const {
    if (count == 0) return 0.0;
    const double n = static_cast<double>(count);
    if (classification) {
      double gini = 1.0;
      for (const auto& [label, c] : hist) {
        (void)label;
        const double p = static_cast<double>(c) / n;
        gini -= p * p;
      }
      return n * gini;
    }
    const double mean = sum / n;
    return sum_sq - n * mean * mean;  // n * variance
  }
};

}  // namespace

void CartTree::fit(const std::vector<FeatureRow>& x,
                   const std::vector<double>& y, const TreeParams& params,
                   bool classification) {
  if (x.empty() || x.size() != y.size()) {
    throw std::invalid_argument("CartTree::fit: bad shapes");
  }
  nodes_.clear();
  params_ = params;
  classification_ = classification;
  rng_state_ = params.seed ? params.seed : 1;
  std::vector<std::size_t> idx(x.size());
  std::iota(idx.begin(), idx.end(), 0);
  build(x, y, idx, 0, idx.size(), 0);
}

int CartTree::build(const std::vector<FeatureRow>& x,
                    const std::vector<double>& y,
                    std::vector<std::size_t>& idx, std::size_t lo,
                    std::size_t hi, int depth) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  const std::size_t n = hi - lo;

  const auto make_leaf = [&] {
    nodes_[static_cast<std::size_t>(node_id)].value =
        leaf_value(y, idx, lo, hi, classification_);
    return node_id;
  };

  if (depth >= params_.max_depth ||
      n < static_cast<std::size_t>(params_.min_samples_split)) {
    return make_leaf();
  }

  const std::size_t d = x[0].size();
  // Candidate features (optionally subsampled for forests).
  std::vector<std::size_t> features(d);
  std::iota(features.begin(), features.end(), 0);
  if (params_.max_features > 0 &&
      static_cast<std::size_t>(params_.max_features) < d) {
    for (std::size_t i = features.size(); i > 1; --i) {
      std::swap(features[i - 1], features[splitmix64(rng_state_) % i]);
    }
    features.resize(static_cast<std::size_t>(params_.max_features));
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_score = std::numeric_limits<double>::infinity();

  std::vector<std::pair<double, double>> vals;  // (feature value, target)
  vals.reserve(n);
  for (std::size_t f : features) {
    vals.clear();
    for (std::size_t i = lo; i < hi; ++i) {
      vals.emplace_back(x[idx[i]][f], y[idx[i]]);
    }
    std::sort(vals.begin(), vals.end());
    if (vals.front().first == vals.back().first) continue;  // constant

    SplitScan left, right;
    for (const auto& [xv, yv] : vals) {
      (void)xv;
      right.add(yv, classification_);
    }
    const std::size_t min_leaf =
        static_cast<std::size_t>(params_.min_samples_leaf);
    for (std::size_t i = 0; i + 1 < n; ++i) {
      left.add(vals[i].second, classification_);
      right.remove(vals[i].second, classification_);
      if (vals[i].first == vals[i + 1].first) continue;  // not a boundary
      if (i + 1 < min_leaf || n - i - 1 < min_leaf) continue;
      const double score = left.weighted_impurity(classification_) +
                           right.weighted_impurity(classification_);
      if (score < best_score) {
        best_score = score;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (vals[i].first + vals[i + 1].first);
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  // Also require the split to actually improve on the parent impurity.
  SplitScan parent;
  for (std::size_t i = lo; i < hi; ++i) parent.add(y[idx[i]], classification_);
  if (best_score >= parent.weighted_impurity(classification_) - 1e-12) {
    return make_leaf();
  }

  const auto mid_it = std::partition(
      idx.begin() + static_cast<long>(lo), idx.begin() + static_cast<long>(hi),
      [&](std::size_t i) {
        return x[i][static_cast<std::size_t>(best_feature)] <= best_threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_it - idx.begin());
  if (mid == lo || mid == hi) return make_leaf();  // degenerate partition

  nodes_[static_cast<std::size_t>(node_id)].feature = best_feature;
  nodes_[static_cast<std::size_t>(node_id)].threshold = best_threshold;
  const int left_id = build(x, y, idx, lo, mid, depth + 1);
  const int right_id = build(x, y, idx, mid, hi, depth + 1);
  nodes_[static_cast<std::size_t>(node_id)].left = left_id;
  nodes_[static_cast<std::size_t>(node_id)].right = right_id;
  return node_id;
}

double CartTree::predict(const FeatureRow& row) const {
  return predict(row.data(), row.size());
}

double CartTree::predict(const double* row, std::size_t arity) const {
  if (nodes_.empty()) throw std::logic_error("CartTree: not fitted");
  int cur = 0;
  for (;;) {
    const TreeNode& node = nodes_[static_cast<std::size_t>(cur)];
    if (node.feature < 0) return node.value;
    const std::size_t f = static_cast<std::size_t>(node.feature);
    if (f >= arity) {
      throw std::invalid_argument("CartTree::predict: arity mismatch");
    }
    cur = row[f] <= node.threshold ? node.left : node.right;
  }
}

int CartTree::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth via explicit stack of (node, depth).
  int max_depth = 0;
  std::vector<std::pair<int, int>> stack{{0, 1}};
  while (!stack.empty()) {
    const auto [id, dep] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, dep);
    const TreeNode& node = nodes_[static_cast<std::size_t>(id)];
    if (node.feature >= 0) {
      stack.emplace_back(node.left, dep + 1);
      stack.emplace_back(node.right, dep + 1);
    }
  }
  return max_depth;
}

}  // namespace detail

void DecisionTreeRegressor::fit(const DataSet& data) {
  data.validate();
  if (data.empty()) throw std::invalid_argument("DTRegressor: empty fit");
  tree_.fit(data.x, data.y, params_, /*classification=*/false);
}

double DecisionTreeRegressor::predict(const FeatureRow& row) const {
  return tree_.predict(row);
}

void DecisionTreeRegressor::predict_batch(const double* xs, std::size_t n,
                                          std::size_t stride,
                                          double* out) const {
  for (std::size_t r = 0; r < n; ++r) {
    out[r] = tree_.predict(xs + r * stride, stride);
  }
}

void DecisionTreeClassifier::fit(const std::vector<FeatureRow>& x,
                                 const std::vector<int>& labels) {
  if (x.empty() || x.size() != labels.size()) {
    throw std::invalid_argument("DTClassifier::fit: bad shapes");
  }
  std::vector<double> y(labels.begin(), labels.end());
  tree_.fit(x, y, params_, /*classification=*/true);
}

int DecisionTreeClassifier::predict(const FeatureRow& row) const {
  return static_cast<int>(std::lround(tree_.predict(row)));
}

void DecisionTreeClassifier::predict_batch(const double* xs, std::size_t n,
                                           std::size_t stride,
                                           int* out) const {
  for (std::size_t r = 0; r < n; ++r) {
    out[r] = static_cast<int>(std::lround(tree_.predict(xs + r * stride,
                                                        stride)));
  }
}

}  // namespace sturgeon::ml
