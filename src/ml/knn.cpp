#include "ml/knn.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace sturgeon::ml {

namespace detail {
std::vector<std::size_t> knn_indices(const std::vector<FeatureRow>& rows,
                                     const FeatureRow& query, int k) {
  if (rows.empty()) throw std::logic_error("knn_indices: empty training set");
  const std::size_t kk =
      std::min<std::size_t>(static_cast<std::size_t>(k), rows.size());
  std::vector<std::pair<double, std::size_t>> dist;
  dist.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    double d2 = 0.0;
    for (std::size_t j = 0; j < query.size(); ++j) {
      const double dlt = rows[i][j] - query[j];
      d2 += dlt * dlt;
    }
    dist.emplace_back(d2, i);
  }
  std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(kk),
                    dist.end());
  std::vector<std::size_t> out;
  out.reserve(kk);
  for (std::size_t i = 0; i < kk; ++i) out.push_back(dist[i].second);
  return out;
}
}  // namespace detail

KnnRegressor::KnnRegressor(int k, bool weighted) : k_(k), weighted_(weighted) {
  if (k < 1) throw std::invalid_argument("KnnRegressor: k < 1");
}

void KnnRegressor::fit(const DataSet& data) {
  data.validate();
  if (data.empty()) throw std::invalid_argument("KnnRegressor: empty fit");
  scaler_.fit(data.x);
  x_ = scaler_.transform(data.x);
  y_ = data.y;
}

double KnnRegressor::predict_scaled(const FeatureRow& q) const {
  const auto idx = detail::knn_indices(x_, q, k_);
  if (!weighted_) {
    double acc = 0.0;
    for (std::size_t i : idx) acc += y_[i];
    return acc / static_cast<double>(idx.size());
  }
  double wsum = 0.0, acc = 0.0;
  for (std::size_t i : idx) {
    double d2 = 0.0;
    for (std::size_t j = 0; j < q.size(); ++j) {
      const double dlt = x_[i][j] - q[j];
      d2 += dlt * dlt;
    }
    const double w = 1.0 / (std::sqrt(d2) + 1e-9);
    wsum += w;
    acc += w * y_[i];
  }
  return acc / wsum;
}

double KnnRegressor::predict(const FeatureRow& row) const {
  if (x_.empty()) throw std::logic_error("KnnRegressor: not fitted");
  return predict_scaled(scaler_.transform(row));
}

void KnnRegressor::predict_batch(const double* xs, std::size_t n,
                                 std::size_t stride, double* out) const {
  if (x_.empty()) throw std::logic_error("KnnRegressor: not fitted");
  if (stride != scaler_.dim()) {
    throw std::invalid_argument("KnnRegressor: arity mismatch");
  }
  FeatureRow q(stride);
  for (std::size_t r = 0; r < n; ++r) {
    scaler_.transform_into(xs + r * stride, q.data());
    out[r] = predict_scaled(q);
  }
}

KnnClassifier::KnnClassifier(int k) : k_(k) {
  if (k < 1) throw std::invalid_argument("KnnClassifier: k < 1");
}

void KnnClassifier::fit(const std::vector<FeatureRow>& x,
                        const std::vector<int>& labels) {
  if (x.empty() || x.size() != labels.size()) {
    throw std::invalid_argument("KnnClassifier::fit: bad shapes");
  }
  scaler_.fit(x);
  x_ = scaler_.transform(x);
  labels_ = labels;
}

int KnnClassifier::predict_scaled(const FeatureRow& q) const {
  const auto idx = detail::knn_indices(x_, q, k_);
  std::map<int, int> votes;
  for (std::size_t i : idx) ++votes[labels_[i]];
  int best_label = labels_[idx[0]];
  int best_votes = -1;
  for (const auto& [label, count] : votes) {
    if (count > best_votes) {
      best_votes = count;
      best_label = label;
    }
  }
  return best_label;
}

int KnnClassifier::predict(const FeatureRow& row) const {
  if (x_.empty()) throw std::logic_error("KnnClassifier: not fitted");
  return predict_scaled(scaler_.transform(row));
}

void KnnClassifier::predict_batch(const double* xs, std::size_t n,
                                  std::size_t stride, int* out) const {
  if (x_.empty()) throw std::logic_error("KnnClassifier: not fitted");
  if (stride != scaler_.dim()) {
    throw std::invalid_argument("KnnClassifier: arity mismatch");
  }
  FeatureRow q(stride);
  for (std::size_t r = 0; r < n; ++r) {
    scaler_.transform_into(xs + r * stride, q.data());
    out[r] = predict_scaled(q);
  }
}

}  // namespace sturgeon::ml
