#include "ml/logistic.h"

#include <cmath>
#include <stdexcept>

namespace sturgeon::ml {

namespace {
double sigmoid(double z) {
  if (z >= 0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}
}  // namespace

LogisticRegression::LogisticRegression(double learning_rate, int max_iter,
                                       double l2)
    : lr_(learning_rate), max_iter_(max_iter), l2_(l2) {
  if (learning_rate <= 0.0 || max_iter < 1 || l2 < 0.0) {
    throw std::invalid_argument("LogisticRegression: bad hyperparameters");
  }
}

void LogisticRegression::fit(const std::vector<FeatureRow>& x,
                             const std::vector<int>& labels) {
  if (x.empty() || x.size() != labels.size()) {
    throw std::invalid_argument("LogisticRegression::fit: bad shapes");
  }
  for (int l : labels) {
    if (l != 0 && l != 1) {
      throw std::invalid_argument("LogisticRegression: labels must be 0/1");
    }
  }
  scaler_.fit(x);
  const auto xs = scaler_.transform(x);
  const std::size_t n = xs.size();
  const std::size_t d = xs[0].size();
  coef_.assign(d, 0.0);
  intercept_ = 0.0;

  std::vector<double> grad(d);
  for (int it = 0; it < max_iter_; ++it) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double z = intercept_;
      for (std::size_t j = 0; j < d; ++j) z += coef_[j] * xs[i][j];
      const double err = sigmoid(z) - static_cast<double>(labels[i]);
      for (std::size_t j = 0; j < d; ++j) grad[j] += err * xs[i][j];
      grad_b += err;
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    double step = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double g = grad[j] * inv_n + l2_ * coef_[j];
      coef_[j] -= lr_ * g;
      step = std::max(step, std::abs(g));
    }
    intercept_ -= lr_ * grad_b * inv_n;
    if (step < 1e-7) break;
  }
}

double LogisticRegression::predict_proba(const FeatureRow& row) const {
  if (!scaler_.fitted()) throw std::logic_error("Logistic: not fitted");
  const auto xs = scaler_.transform(row);
  double z = intercept_;
  for (std::size_t j = 0; j < xs.size(); ++j) z += coef_[j] * xs[j];
  return sigmoid(z);
}

int LogisticRegression::predict(const FeatureRow& row) const {
  return predict_proba(row) >= 0.5 ? 1 : 0;
}

void LogisticRegression::predict_batch(const double* xs, std::size_t n,
                                       std::size_t stride, int* out) const {
  if (!scaler_.fitted()) throw std::logic_error("Logistic: not fitted");
  if (stride != scaler_.dim()) {
    throw std::invalid_argument("Logistic: arity mismatch");
  }
  std::vector<double> scaled(stride);
  for (std::size_t r = 0; r < n; ++r) {
    scaler_.transform_into(xs + r * stride, scaled.data());
    double z = intercept_;
    for (std::size_t j = 0; j < stride; ++j) z += coef_[j] * scaled[j];
    out[r] = sigmoid(z) >= 0.5 ? 1 : 0;
  }
}

}  // namespace sturgeon::ml
