// Abstract model interfaces. The predictor layer (src/core) talks only to
// these, so any model family can back a performance or power model.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.h"

namespace sturgeon::ml {

/// Real-valued prediction model (power models, BE performance models).
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Fit on the dataset; throws std::invalid_argument on empty/ragged data.
  virtual void fit(const DataSet& data) = 0;

  /// Predict a single row; models must be fitted first.
  virtual double predict(const FeatureRow& row) const = 0;

  virtual std::string name() const = 0;

  std::vector<double> predict_batch(const std::vector<FeatureRow>& x) const;
};

/// Integer-label classifier (LS QoS met / violated, paper Section V-C).
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// `labels` parallel to data.x; data.y is ignored by classifiers.
  virtual void fit(const std::vector<FeatureRow>& x,
                   const std::vector<int>& labels) = 0;

  virtual int predict(const FeatureRow& row) const = 0;

  virtual std::string name() const = 0;

  std::vector<int> predict_batch(const std::vector<FeatureRow>& x) const;
};

using RegressorPtr = std::unique_ptr<Regressor>;
using ClassifierPtr = std::unique_ptr<Classifier>;

}  // namespace sturgeon::ml
