// Abstract model interfaces. The predictor layer (src/core) talks only to
// these, so any model family can back a performance or power model.
//
// Batched inference: every model exposes a strided predict_batch over a
// dense row-major feature matrix. The base implementation loops over the
// scalar predict(); families with a cheap vectorized form (linear, SVM,
// MLP matrix-matrix, ...) override it. Overrides must stay bit-identical
// to the scalar path -- the prediction cache (src/core/prediction_cache)
// prefills its tables through predict_batch and the search results must
// not depend on whether the cache is on.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.h"

namespace sturgeon::ml {

/// Real-valued prediction model (power models, BE performance models).
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Fit on the dataset; throws std::invalid_argument on empty/ragged data.
  virtual void fit(const DataSet& data) = 0;

  /// Predict a single row; models must be fitted first.
  virtual double predict(const FeatureRow& row) const = 0;

  virtual std::string name() const = 0;

  /// Batched prediction over a dense row-major matrix: `n` rows of
  /// `stride` features each (row i starts at xs + i * stride, and all
  /// `stride` values of a row are features). Writes one prediction per
  /// row into `out`. Default: scalar-predict loop.
  virtual void predict_batch(const double* xs, std::size_t n,
                             std::size_t stride, double* out) const;

  /// Convenience overload; flattens and forwards to the strided batch.
  std::vector<double> predict_batch(const std::vector<FeatureRow>& x) const;
};

/// Integer-label classifier (LS QoS met / violated, paper Section V-C).
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// `labels` parallel to data.x; data.y is ignored by classifiers.
  virtual void fit(const std::vector<FeatureRow>& x,
                   const std::vector<int>& labels) = 0;

  virtual int predict(const FeatureRow& row) const = 0;

  virtual std::string name() const = 0;

  /// Batched prediction; same matrix contract as Regressor::predict_batch.
  virtual void predict_batch(const double* xs, std::size_t n,
                             std::size_t stride, int* out) const;

  /// Convenience overload; flattens and forwards to the strided batch.
  std::vector<int> predict_batch(const std::vector<FeatureRow>& x) const;
};

using RegressorPtr = std::unique_ptr<Regressor>;
using ClassifierPtr = std::unique_ptr<Classifier>;

}  // namespace sturgeon::ml
