// Closed-form and sparse linear models: ordinary least squares (with an
// optional ridge term for conditioning), and Lasso via cyclic coordinate
// descent. The paper uses Lasso for feature selection (Section V-A) and
// linear regression as one of the compared model families (Section V-C).
#pragma once

#include <vector>

#include "ml/model.h"

namespace sturgeon::ml {

/// OLS linear regression with intercept; `ridge` adds L2 regularization
/// (0 = plain OLS, tiny default keeps near-collinear designs solvable).
class LinearRegression : public Regressor {
 public:
  explicit LinearRegression(double ridge = 1e-8) : ridge_(ridge) {}

  void fit(const DataSet& data) override;
  double predict(const FeatureRow& row) const override;
  using Regressor::predict_batch;
  void predict_batch(const double* xs, std::size_t n, std::size_t stride,
                     double* out) const override;
  std::string name() const override { return "LinearRegression"; }

  const std::vector<double>& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }

 private:
  double ridge_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

/// Lasso (L1) regression via cyclic coordinate descent on standardized
/// features. Besides prediction it exposes the sparsity pattern, which
/// Sturgeon's trainer uses to select model input features.
class LassoRegression : public Regressor {
 public:
  explicit LassoRegression(double lambda = 0.1, int max_iter = 1000,
                           double tol = 1e-7);

  void fit(const DataSet& data) override;
  double predict(const FeatureRow& row) const override;
  using Regressor::predict_batch;
  void predict_batch(const double* xs, std::size_t n, std::size_t stride,
                     double* out) const override;
  std::string name() const override { return "LassoRegression"; }

  /// Coefficients in the standardized feature space.
  const std::vector<double>& coefficients() const { return coef_; }

  /// Indices of features with non-zero coefficients, sorted by
  /// decreasing absolute coefficient (most explanatory first).
  std::vector<std::size_t> selected_features() const;

 private:
  double lambda_;
  int max_iter_;
  double tol_;
  StandardScaler scaler_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

}  // namespace sturgeon::ml
