// CART decision trees: a regressor (variance-reduction splits) and a
// classifier (Gini impurity). DT classification is the paper's pick for
// the LS performance model (Fig 6). Both trees share the same binary
// axis-aligned split machinery.
#pragma once

#include <cstdint>
#include <limits>

#include "ml/model.h"

namespace sturgeon::ml {

struct TreeParams {
  int max_depth = 12;
  int min_samples_split = 4;
  int min_samples_leaf = 2;
  /// Features examined per split; 0 = all (set by random forest).
  int max_features = 0;
  /// Seed for feature subsampling when max_features > 0.
  std::uint64_t seed = 1;
};

namespace detail {
/// Flat-array binary tree; leaves carry a prediction value.
struct TreeNode {
  int feature = -1;                 // -1 marks a leaf
  double threshold = 0.0;           // go left if x[feature] <= threshold
  double value = 0.0;               // leaf payload (mean target / majority)
  int left = -1, right = -1;        // child indices
};

class CartTree {
 public:
  /// `classification` switches impurity from variance to Gini and leaf
  /// payload from mean to majority label.
  void fit(const std::vector<FeatureRow>& x, const std::vector<double>& y,
           const TreeParams& params, bool classification);
  double predict(const FeatureRow& row) const;
  /// Raw-pointer traversal for batched callers; `arity` bounds the
  /// feature indices the tree may touch.
  double predict(const double* row, std::size_t arity) const;
  bool fitted() const { return !nodes_.empty(); }
  std::size_t node_count() const { return nodes_.size(); }
  int depth() const;

 private:
  int build(const std::vector<FeatureRow>& x, const std::vector<double>& y,
            std::vector<std::size_t>& idx, std::size_t lo, std::size_t hi,
            int depth);

  std::vector<TreeNode> nodes_;
  TreeParams params_;
  bool classification_ = false;
  std::uint64_t rng_state_ = 1;
};
}  // namespace detail

class DecisionTreeRegressor : public Regressor {
 public:
  explicit DecisionTreeRegressor(TreeParams params = {}) : params_(params) {}

  void fit(const DataSet& data) override;
  double predict(const FeatureRow& row) const override;
  using Regressor::predict_batch;
  void predict_batch(const double* xs, std::size_t n, std::size_t stride,
                     double* out) const override;
  std::string name() const override { return "DecisionTreeRegressor"; }

  const detail::CartTree& tree() const { return tree_; }

 private:
  TreeParams params_;
  detail::CartTree tree_;
};

class DecisionTreeClassifier : public Classifier {
 public:
  explicit DecisionTreeClassifier(TreeParams params = {}) : params_(params) {}

  void fit(const std::vector<FeatureRow>& x,
           const std::vector<int>& labels) override;
  int predict(const FeatureRow& row) const override;
  using Classifier::predict_batch;
  void predict_batch(const double* xs, std::size_t n, std::size_t stride,
                     int* out) const override;
  std::string name() const override { return "DecisionTreeClassifier"; }

  const detail::CartTree& tree() const { return tree_; }

 private:
  TreeParams params_;
  detail::CartTree tree_;
};

}  // namespace sturgeon::ml
