#include "ml/forest.h"

#include <cmath>
#include <map>
#include <stdexcept>

#include "util/check.h"
#include "util/rng.h"

namespace sturgeon::ml {

namespace {
/// Draw a bootstrap sample (with replacement) of (x, y).
void bootstrap(const std::vector<FeatureRow>& x, const std::vector<double>& y,
               Rng& rng, std::vector<FeatureRow>& bx, std::vector<double>& by) {
  const std::size_t n = x.size();
  bx.clear();
  by.clear();
  bx.reserve(n);
  by.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t pick = rng.next_below(n);
    bx.push_back(x[pick]);
    by.push_back(y[pick]);
  }
}

int default_max_features(std::size_t d, bool classification) {
  const double f = classification ? std::sqrt(static_cast<double>(d))
                                  : static_cast<double>(d) / 3.0;
  return std::max(1, static_cast<int>(std::lround(f)));
}
}  // namespace

RandomForestRegressor::RandomForestRegressor(ForestParams params)
    : params_(params) {
  if (params.num_trees < 1) {
    throw std::invalid_argument("RandomForestRegressor: num_trees < 1");
  }
}

void RandomForestRegressor::fit(const DataSet& data) {
  data.validate();
  if (data.empty()) throw std::invalid_argument("RFRegressor: empty fit");
  trees_.assign(static_cast<std::size_t>(params_.num_trees), {});
  Rng rng(params_.seed);
  TreeParams tp = params_.tree;
  if (tp.max_features == 0) {
    tp.max_features = default_max_features(data.num_features(), false);
  }
  std::vector<FeatureRow> bx;
  std::vector<double> by;
  for (auto& tree : trees_) {
    bootstrap(data.x, data.y, rng, bx, by);
    tp.seed = rng.next_u64() | 1;
    tree.fit(bx, by, tp, /*classification=*/false);
  }
}

double RandomForestRegressor::predict(const FeatureRow& row) const {
  if (trees_.empty()) throw std::logic_error("RFRegressor: not fitted");
  double acc = 0.0;
  for (const auto& tree : trees_) acc += tree.predict(row);
  const double mean = acc / static_cast<double>(trees_.size());
  STURGEON_DCHECK(std::isfinite(mean), "RFRegressor: non-finite prediction");
  return mean;
}

void RandomForestRegressor::predict_batch(const double* xs, std::size_t n,
                                          std::size_t stride,
                                          double* out) const {
  if (trees_.empty()) throw std::logic_error("RFRegressor: not fitted");
  for (std::size_t r = 0; r < n; ++r) {
    const double* row = xs + r * stride;
    double acc = 0.0;
    for (const auto& tree : trees_) acc += tree.predict(row, stride);
    const double mean = acc / static_cast<double>(trees_.size());
    STURGEON_DCHECK(std::isfinite(mean), "RFRegressor: non-finite prediction");
    out[r] = mean;
  }
}

RandomForestClassifier::RandomForestClassifier(ForestParams params)
    : params_(params) {
  if (params.num_trees < 1) {
    throw std::invalid_argument("RandomForestClassifier: num_trees < 1");
  }
}

void RandomForestClassifier::fit(const std::vector<FeatureRow>& x,
                                 const std::vector<int>& labels) {
  if (x.empty() || x.size() != labels.size()) {
    throw std::invalid_argument("RFClassifier::fit: bad shapes");
  }
  trees_.assign(static_cast<std::size_t>(params_.num_trees), {});
  Rng rng(params_.seed);
  TreeParams tp = params_.tree;
  if (tp.max_features == 0) {
    tp.max_features = default_max_features(x[0].size(), true);
  }
  std::vector<double> y(labels.begin(), labels.end());
  std::vector<FeatureRow> bx;
  std::vector<double> by;
  for (auto& tree : trees_) {
    bootstrap(x, y, rng, bx, by);
    tp.seed = rng.next_u64() | 1;
    tree.fit(bx, by, tp, /*classification=*/true);
  }
}

int RandomForestClassifier::predict(const FeatureRow& row) const {
  if (trees_.empty()) throw std::logic_error("RFClassifier: not fitted");
  std::map<int, int> votes;
  for (const auto& tree : trees_) {
    ++votes[static_cast<int>(std::lround(tree.predict(row)))];
  }
  int best = 0, best_count = -1;
  for (const auto& [label, count] : votes) {
    if (count > best_count) {
      best_count = count;
      best = label;
    }
  }
  return best;
}

void RandomForestClassifier::predict_batch(const double* xs, std::size_t n,
                                           std::size_t stride,
                                           int* out) const {
  if (trees_.empty()) throw std::logic_error("RFClassifier: not fitted");
  for (std::size_t r = 0; r < n; ++r) {
    const double* row = xs + r * stride;
    std::map<int, int> votes;
    for (const auto& tree : trees_) {
      ++votes[static_cast<int>(std::lround(tree.predict(row, stride)))];
    }
    int best = 0, best_count = -1;
    for (const auto& [label, count] : votes) {
      if (count > best_count) {
        best_count = count;
        best = label;
      }
    }
    out[r] = best;
  }
}

}  // namespace sturgeon::ml
