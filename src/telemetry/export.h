// Pluggable exporters for the observability layer.
//
// Three sinks share the instruments and spans collected during a run:
//   - CSV       per-interval rows (TraceRecorder, kept for back compat);
//   - JSONL     one JSON object per finished span plus a final
//               "run_summary" line with per-phase totals, so offline
//               tooling (tools/trace_stats.py) can reconcile the trace
//               against itself without a JSON library;
//   - summary   end-of-run text report: counters, gauges, and per-phase
//               duration quantiles (p50/p95/p99).
//
// Schemas are stability-tested (golden files in tests/telemetry): add
// fields at the end, never rename or reorder existing ones.
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace sturgeon::telemetry {

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(std::string_view s);

/// Render one attribute value as a JSON literal.
std::string attr_to_json(const AttrValue& v);

/// Per-phase span aggregate: the {count,total_us} pairs a run_summary
/// line carries. Exposed so the cluster roll-up can reuse exactly the
/// totals the per-node JSONL exporter writes.
struct PhaseTotal {
  std::uint64_t count = 0;
  std::int64_t total_us = 0;
};
std::map<std::string, PhaseTotal> phase_totals(
    const std::vector<SpanRecord>& spans);

/// Render a phases map as the JSON object run_summary lines embed:
/// {"name":{"count":N,"total_us":T},...} in name order.
std::string phases_to_json(const std::map<std::string, PhaseTotal>& phases);

/// Span lines followed by one {"type":"run_summary",...} line carrying
/// span_count and per-phase {count,total_us}. Children appear before
/// their parents (finish order).
void write_trace_jsonl(const std::vector<SpanRecord>& spans,
                       std::ostream& os);

/// Human-readable end-of-run report over a registry snapshot.
void write_metrics_summary(const MetricsRegistry& metrics, std::ostream& os);

}  // namespace sturgeon::telemetry
