// Per-interval trace recording for time-series experiments (paper Fig 11)
// and offline analysis. Rows capture what a datacenter telemetry system
// would log each second: load, latency, power, allocation, throughput.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "sim/server.h"
#include "telemetry/monitor.h"
#include "util/types.h"

namespace sturgeon::telemetry {

struct TraceRow {
  int t_s = 0;
  double load_fraction = 0.0;
  double qps = 0.0;
  double p95_ms = 0.0;
  double power_w = 0.0;
  double be_throughput_norm = 0.0;
  Partition partition;
  /// Cumulative prediction-cache counters at record time (all-zero when
  /// the controller runs without a cache).
  PredictionCacheStats cache;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(const MachineSpec& machine) : machine_(machine) {}

  void record(int t_s, const sim::ServerTelemetry& sample,
              const Partition& partition);
  /// Same, also capturing the predictor's cache counters for the row.
  void record(int t_s, const sim::ServerTelemetry& sample,
              const Partition& partition, const PredictionCacheStats& cache);

  const std::vector<TraceRow>& rows() const { return rows_; }
  bool empty() const { return rows_.empty(); }

  /// Dump as CSV (header + one row per interval).
  void write_csv(std::ostream& os) const;

  /// Compact fixed-interval summary for console output: every
  /// `stride` seconds, one line with the paper's Fig 11 quantities.
  void write_summary(std::ostream& os, int stride) const;

 private:
  MachineSpec machine_;
  std::vector<TraceRow> rows_;
};

}  // namespace sturgeon::telemetry
