#include "telemetry/trace.h"

#include <algorithm>
#include <chrono>

#include "telemetry/metrics.h"

namespace sturgeon::telemetry {

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    rec_ = std::move(other.rec_);
    other.tracer_ = nullptr;
  }
  return *this;
}

Span& Span::attr(std::string_view key, std::int64_t v) {
  if (tracer_ != nullptr) rec_.attrs.emplace_back(std::string(key), v);
  return *this;
}

Span& Span::attr(std::string_view key, double v) {
  if (tracer_ != nullptr) rec_.attrs.emplace_back(std::string(key), v);
  return *this;
}

Span& Span::attr(std::string_view key, std::string_view v) {
  if (tracer_ != nullptr) {
    rec_.attrs.emplace_back(std::string(key), std::string(v));
  }
  return *this;
}

void Span::end() {
  if (tracer_ == nullptr) return;
  Tracer* t = tracer_;
  tracer_ = nullptr;
  t->finish(std::move(rec_));
}

Tracer::Tracer(bool enabled, Clock clock)
    : enabled_(enabled), clock_(std::move(clock)) {}

std::int64_t Tracer::now_us() const {
  if (clock_) return clock_();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Span Tracer::start_span(std::string_view name) {
  if (!enabled_) return Span{};
  SpanRecord rec;
  rec.name = std::string(name);
  rec.start_us = now_us();
  {
    MutexLock lock(mu_);
    rec.id = next_id_++;
    rec.parent = open_.empty() ? 0 : open_.back();
    open_.push_back(rec.id);
  }
  return Span(this, std::move(rec));
}

void Tracer::bind_registry(MetricsRegistry* registry) {
  MutexLock lock(mu_);
  registry_ = registry;
  phase_hist_.clear();
}

void Tracer::finish(SpanRecord&& rec) {
  rec.dur_us = std::max<std::int64_t>(0, now_us() - rec.start_us);
  Histogram* hist = nullptr;
  {
    MutexLock lock(mu_);
    // Pop this span from the open stack; out-of-order ends (a moved span
    // outliving its parent) just remove the matching entry.
    const auto it = std::find(open_.rbegin(), open_.rend(), rec.id);
    if (it != open_.rend()) open_.erase(std::next(it).base());
    if (registry_ != nullptr) {
      const auto cached = std::find_if(
          phase_hist_.begin(), phase_hist_.end(),
          [&](const auto& e) { return e.first == rec.name; });
      if (cached != phase_hist_.end()) {
        hist = cached->second;
      } else {
        hist = &registry_->duration_histogram("phase." + rec.name +
                                              ".duration_us");
        phase_hist_.emplace_back(rec.name, hist);
      }
    }
    finished_.push_back(std::move(rec));
    if (hist != nullptr) {
      hist->observe(static_cast<double>(finished_.back().dur_us));
    }
  }
}

std::size_t Tracer::finished_count() const {
  MutexLock lock(mu_);
  return finished_.size();
}

void Tracer::clear() {
  MutexLock lock(mu_);
  finished_.clear();
}

}  // namespace sturgeon::telemetry
