// QoS monitoring and experiment metrics. The QosMonitor implements the
// 1 s sampling loop's bookkeeping from Algorithm 1 (slack computation,
// rolling tail-latency view); the RunMetrics accumulator produces the
// evaluation numbers of Figs 9 and 10 (QoS guarantee rate, normalized BE
// throughput, power-overshoot statistics).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "sim/server.h"
#include "util/stats.h"

namespace sturgeon::telemetry {

class MetricsRegistry;

/// Latency slack as defined by Algorithm 1: (target - latency) / target.
/// Negative slack means the QoS target is violated.
double latency_slack(double p95_ms, double target_ms);

/// Counters exported by the core-layer prediction cache. Defined here so
/// telemetry (monitor, recorder) can log them without depending on core;
/// core already links against telemetry.
struct PredictionCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t fills = 0;       ///< dense-table batch sweeps run
  std::uint64_t generation = 0;  ///< bumped on every invalidation

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Rolling view of recent samples used by controllers.
class QosMonitor {
 public:
  explicit QosMonitor(double qos_target_ms, std::size_t window = 8);

  void observe(const sim::ServerTelemetry& sample);

  /// Slack of the most recent sample, or std::nullopt before the first
  /// observe() call (there is no meaningful slack with nothing observed;
  /// the old interface returned a +1 sentinel that callers could silently
  /// mistake for 100% headroom).
  std::optional<double> slack() const;

  /// Most recent sample values.
  double p95_ms() const { return last_p95_ms_; }
  double power_w() const { return last_power_w_; }
  double qps() const { return last_qps_; }

  /// Mean p95 over the rolling window (smoother feedback signal).
  double window_p95_ms() const;

  std::size_t samples_seen() const { return count_; }

 private:
  double qos_target_ms_;
  std::size_t window_;
  std::deque<double> recent_p95_;
  double last_p95_ms_ = 0.0;
  double last_power_w_ = 0.0;
  double last_qps_ = 0.0;
  std::size_t count_ = 0;
};

/// Whole-run accumulator for the evaluation metrics.
class RunMetrics {
 public:
  explicit RunMetrics(double power_budget_w);

  void observe(const sim::ServerTelemetry& sample);

  /// Fraction of completed queries within the QoS target (paper Fig 9).
  double qos_guarantee_rate() const;

  /// Mean normalized BE throughput over the run (paper Fig 10).
  double mean_be_throughput_norm() const;

  /// Fraction of intervals whose package power exceeded the budget.
  double power_overshoot_fraction() const;

  /// Largest observed power / budget ratio.
  double max_power_ratio() const;

  /// Fraction of intervals whose p95 met the target.
  double interval_qos_rate() const;

  std::uint64_t total_completed() const { return completed_; }
  std::uint64_t total_violations() const { return violations_; }
  std::size_t intervals() const { return intervals_; }

  /// Publish the run-level metrics as "run.*" gauges so they appear in
  /// the registry snapshot next to every other instrument.
  void publish(MetricsRegistry& metrics) const;

 private:
  double budget_w_;
  std::uint64_t completed_ = 0;
  std::uint64_t violations_ = 0;
  std::size_t intervals_ = 0;
  std::size_t overshoot_intervals_ = 0;
  std::size_t qos_ok_intervals_ = 0;
  double max_power_ratio_ = 0.0;
  OnlineStats be_thr_;
};

}  // namespace sturgeon::telemetry
