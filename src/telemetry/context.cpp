#include "telemetry/context.h"

#include <fstream>

#include "telemetry/export.h"

namespace sturgeon::telemetry {

TelemetryContext::TelemetryContext(const MachineSpec& machine,
                                   TelemetryConfig config)
    : machine_(machine),
      config_(std::move(config)),
      tracer_(config_.tracing, config_.clock),
      recorder_(machine) {
  if (config_.tracing) tracer_.bind_registry(&metrics_);
}

std::shared_ptr<TelemetryContext> TelemetryContext::noop() {
  // A throwaway machine spec: the recorder only consults it when CSV
  // rows are written, which a noop context never does.
  return std::make_shared<TelemetryContext>(MachineSpec::xeon_e5_2630_v4(),
                                            TelemetryConfig{});
}

std::shared_ptr<TelemetryContext> TelemetryContext::make(
    const MachineSpec& machine, TelemetryConfig config) {
  return std::make_shared<TelemetryContext>(machine, std::move(config));
}

bool TelemetryContext::flush() {
  bool ok = true;
  const auto to_file = [&](const std::string& path, auto&& write) {
    if (path.empty()) return;
    std::ofstream os(path);
    if (!os) {
      metrics_.counter("telemetry.export.errors").inc();
      ok = false;
      return;
    }
    write(os);
    os.flush();
    if (!os.good()) {  // short write: disk full or I/O error mid-stream
      metrics_.counter("telemetry.export.errors").inc();
      ok = false;
    }
  };
  to_file(config_.trace_jsonl_path,
          [this](std::ostream& os) { write_trace_jsonl(os); });
  to_file(config_.csv_path, [this](std::ostream& os) { write_csv(os); });
  return ok;
}

void TelemetryContext::write_trace_jsonl(std::ostream& os) const {
  telemetry::write_trace_jsonl(tracer_.finished(), os);
}

void TelemetryContext::write_summary(std::ostream& os) const {
  write_metrics_summary(metrics_, os);
}

}  // namespace sturgeon::telemetry
