#include "telemetry/context.h"

#include <fstream>
#include <stdexcept>

#include "telemetry/export.h"

namespace sturgeon::telemetry {

TelemetryContext::TelemetryContext(const MachineSpec& machine,
                                   TelemetryConfig config)
    : machine_(machine),
      config_(std::move(config)),
      tracer_(config_.tracing, config_.clock),
      recorder_(machine) {
  if (config_.tracing) tracer_.bind_registry(&metrics_);
}

std::shared_ptr<TelemetryContext> TelemetryContext::noop() {
  // A throwaway machine spec: the recorder only consults it when CSV
  // rows are written, which a noop context never does.
  return std::make_shared<TelemetryContext>(MachineSpec::xeon_e5_2630_v4(),
                                            TelemetryConfig{});
}

std::shared_ptr<TelemetryContext> TelemetryContext::make(
    const MachineSpec& machine, TelemetryConfig config) {
  return std::make_shared<TelemetryContext>(machine, std::move(config));
}

void TelemetryContext::flush() {
  if (!config_.trace_jsonl_path.empty()) {
    std::ofstream os(config_.trace_jsonl_path);
    if (!os) {
      throw std::runtime_error("TelemetryContext: cannot open " +
                               config_.trace_jsonl_path);
    }
    write_trace_jsonl(os);
  }
  if (!config_.csv_path.empty()) {
    std::ofstream os(config_.csv_path);
    if (!os) {
      throw std::runtime_error("TelemetryContext: cannot open " +
                               config_.csv_path);
    }
    write_csv(os);
  }
}

void TelemetryContext::write_trace_jsonl(std::ostream& os) const {
  telemetry::write_trace_jsonl(tracer_.finished(), os);
}

void TelemetryContext::write_summary(std::ostream& os) const {
  write_metrics_summary(metrics_, os);
}

}  // namespace sturgeon::telemetry
