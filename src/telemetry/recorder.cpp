#include "telemetry/recorder.h"

#include <stdexcept>

#include "util/table.h"

namespace sturgeon::telemetry {

void TraceRecorder::record(int t_s, const sim::ServerTelemetry& sample,
                           const Partition& partition) {
  record(t_s, sample, partition, PredictionCacheStats{});
}

void TraceRecorder::record(int t_s, const sim::ServerTelemetry& sample,
                           const Partition& partition,
                           const PredictionCacheStats& cache) {
  TraceRow row;
  row.t_s = t_s;
  row.load_fraction = sample.load_fraction;
  row.qps = sample.qps_real;
  row.p95_ms = sample.ls.p95_ms;
  row.power_w = sample.power_w;
  row.be_throughput_norm = sample.be_throughput_norm;
  row.partition = partition;
  row.cache = cache;
  rows_.push_back(row);
}

void TraceRecorder::write_csv(std::ostream& os) const {
  CsvWriter csv(os, {"t_s", "load", "qps", "p95_ms", "power_w", "be_thr_norm",
                     "ls_cores", "ls_freq_ghz", "ls_ways", "be_cores",
                     "be_freq_ghz", "be_ways", "cache_hits", "cache_misses",
                     "cache_fills"});
  for (const auto& r : rows_) {
    csv.write_row(std::vector<double>{
        static_cast<double>(r.t_s), r.load_fraction, r.qps, r.p95_ms,
        r.power_w, r.be_throughput_norm,
        static_cast<double>(r.partition.ls.cores),
        machine_.freq_at(r.partition.ls.freq_level),
        static_cast<double>(r.partition.ls.llc_ways),
        static_cast<double>(r.partition.be.cores),
        r.partition.be.cores > 0
            ? machine_.freq_at(r.partition.be.freq_level)
            : 0.0,
        static_cast<double>(r.partition.be.llc_ways),
        static_cast<double>(r.cache.hits),
        static_cast<double>(r.cache.misses),
        static_cast<double>(r.cache.fills)});
  }
}

void TraceRecorder::write_summary(std::ostream& os, int stride) const {
  if (stride < 1) throw std::invalid_argument("write_summary: bad stride");
  TablePrinter table({"t(s)", "load", "p95(ms)", "power(W)", "BE thr",
                      "config <C,F,L; C,F,L>"});
  for (std::size_t i = 0; i < rows_.size();
       i += static_cast<std::size_t>(stride)) {
    const auto& r = rows_[i];
    table.add_row({std::to_string(r.t_s), TablePrinter::fmt(r.load_fraction, 2),
                   TablePrinter::fmt(r.p95_ms, 2),
                   TablePrinter::fmt(r.power_w, 1),
                   TablePrinter::fmt(r.be_throughput_norm, 3),
                   r.partition.to_string(machine_)});
  }
  table.print(os);
}

}  // namespace sturgeon::telemetry
