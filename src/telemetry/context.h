// One handle for everything a run observes.
//
// TelemetryContext bundles the metrics registry, the span tracer, and
// the per-interval CSV recorder so callers stop hand-assembling Monitor
// + Recorder pairs: the experiment runner wires a single context through
// the policy, the controller internals, and the exporters, and every
// layer reports through the same interface (identical schemas across
// Sturgeon and the baselines).
//
// Construction goes through two factories:
//   TelemetryContext::noop()  -- the default null sink: metrics are kept
//     (they are cheap), tracing and CSV recording are off, nothing is
//     written anywhere. Every Policy owns one from birth so telemetry
//     calls never need a null check.
//   TelemetryContext::make(machine, config) -- a live context; tracing,
//     CSV rows and file sinks (JSONL trace, CSV) switch on per config.
//
// flush() writes the configured file sinks and is safe to call multiple
// times and on early-exit paths: a partially-recorded run still produces
// valid CSV/JSONL output. Sink failures (unopenable path, disk full /
// short write) do not throw: flush() returns false and increments the
// telemetry.export.errors counter, so a long chaos run survives a broken
// sink and the loss is still visible in the metrics snapshot.
#pragma once

#include <memory>
#include <ostream>
#include <string>

#include "telemetry/metrics.h"
#include "telemetry/recorder.h"
#include "telemetry/trace.h"

namespace sturgeon::telemetry {

struct TelemetryConfig {
  bool tracing = false;  ///< collect spans (and phase-duration histograms)
  bool csv = false;      ///< record per-interval TraceRecorder rows
  /// File sinks written by flush(); empty = no file output.
  std::string trace_jsonl_path;
  std::string csv_path;
  /// Injectable microsecond clock for deterministic traces in tests;
  /// empty = monotonic steady clock.
  Tracer::Clock clock;
};

class TelemetryContext {
 public:
  /// Null sink: metrics only, no tracing, no CSV rows, no files.
  static std::shared_ptr<TelemetryContext> noop();

  static std::shared_ptr<TelemetryContext> make(const MachineSpec& machine,
                                                TelemetryConfig config = {});

  /// Prefer the factories; public so make_shared can construct.
  TelemetryContext(const MachineSpec& machine, TelemetryConfig config);

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  TraceRecorder& recorder() { return recorder_; }
  const TraceRecorder& recorder() const { return recorder_; }

  bool tracing_enabled() const { return tracer_.enabled(); }
  bool csv_enabled() const { return config_.csv; }
  const TelemetryConfig& config() const { return config_; }
  const MachineSpec& machine() const { return machine_; }

  /// Write configured file sinks (idempotent; early-exit safe). Returns
  /// false -- after bumping telemetry.export.errors -- when any sink
  /// could not be opened or was written short; never throws.
  bool flush();

  void write_trace_jsonl(std::ostream& os) const;
  void write_csv(std::ostream& os) const { recorder_.write_csv(os); }
  void write_summary(std::ostream& os) const;

 private:
  MachineSpec machine_;
  TelemetryConfig config_;
  MetricsRegistry metrics_;
  Tracer tracer_;
  TraceRecorder recorder_;
};

}  // namespace sturgeon::telemetry
