// Span-based tracing of the control loop.
//
// Each controller epoch opens a root "epoch" span; the phases inside it
// (observe, decide, search, candidate_eval, balance, enforce) open child
// spans carrying structured attributes -- the chosen <C,F,L> slices,
// predicted vs. observed QoS/power, cache hit ratio. Spans are RAII
// handles: they time themselves from construction to end()/destruction
// and parent under whichever span was innermost when they started.
//
// The clock is injectable (microsecond monotonic by default) so tests
// and golden files are deterministic. When a MetricsRegistry is bound,
// every finished span also feeds the "phase.<name>.duration_us"
// histogram, which is what ties the JSONL trace to the end-of-run
// summary: per-phase span counts and the histogram counts must agree.
//
// A disabled tracer hands out inert spans whose every operation is a
// no-op branch, so instrumented code needs no `if (tracing)` guards.
// Span creation is intended for the control-loop thread; the tracer
// itself serializes finish() under a mutex.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/thread_annotations.h"

namespace sturgeon::telemetry {

class MetricsRegistry;
class Histogram;

/// Structured span attribute: integer, floating point, or string.
using AttrValue = std::variant<std::int64_t, double, std::string>;

/// A finished span as exported to JSONL.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root (no parent)
  std::string name;
  std::int64_t start_us = 0;
  std::int64_t dur_us = 0;
  std::vector<std::pair<std::string, AttrValue>> attrs;
};

class Tracer;

/// RAII span handle. Move-only; ends at destruction (idempotent). A
/// default-constructed or disabled-tracer span is inert.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  Span& attr(std::string_view key, std::int64_t v);
  Span& attr(std::string_view key, int v) {
    return attr(key, static_cast<std::int64_t>(v));
  }
  Span& attr(std::string_view key, std::uint64_t v) {
    return attr(key, static_cast<std::int64_t>(v));
  }
  Span& attr(std::string_view key, bool v) {
    return attr(key, static_cast<std::int64_t>(v ? 1 : 0));
  }
  Span& attr(std::string_view key, double v);
  Span& attr(std::string_view key, std::string_view v);
  Span& attr(std::string_view key, const char* v) {
    return attr(key, std::string_view(v));
  }

  /// Close the span now (record duration, publish). No-op when inert or
  /// already ended.
  void end();

  bool active() const { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, SpanRecord rec)
      : tracer_(tracer), rec_(std::move(rec)) {}

  Tracer* tracer_ = nullptr;
  SpanRecord rec_;
};

class Tracer {
 public:
  /// Microsecond timestamp source; monotonic steady clock when empty.
  using Clock = std::function<std::int64_t()>;

  explicit Tracer(bool enabled = true, Clock clock = {});

  bool enabled() const { return enabled_; }

  /// Open a span parented under the innermost open span (root if none).
  Span start_span(std::string_view name) STURGEON_EXCLUDES(mu_);

  /// Feed finished span durations into `registry`'s
  /// "phase.<name>.duration_us" histograms. Pass nullptr to unbind.
  void bind_registry(MetricsRegistry* registry) STURGEON_EXCLUDES(mu_);

  /// Finished spans, in finish order (children precede parents).
  /// Do not call while spans may finish concurrently. Analysis waived:
  /// the export path reads the vector lock-free by borrowing a reference,
  /// and its single-threaded-at-export contract is a caller obligation
  /// the capability model cannot express (taking mu_ here could not
  /// outlive the return anyway).
  const std::vector<SpanRecord>& finished() const
      STURGEON_NO_THREAD_SAFETY_ANALYSIS {
    return finished_;
  }
  std::size_t finished_count() const STURGEON_EXCLUDES(mu_);

  /// Drop finished spans (long benches); open spans are unaffected.
  void clear() STURGEON_EXCLUDES(mu_);

 private:
  friend class Span;
  void finish(SpanRecord&& rec) STURGEON_EXCLUDES(mu_);
  std::int64_t now_us() const;

  bool enabled_;   ///< immutable after construction
  Clock clock_;    ///< immutable after construction
  mutable Mutex mu_;
  std::vector<std::uint64_t> open_ STURGEON_GUARDED_BY(mu_);  ///< innermost last
  std::vector<SpanRecord> finished_ STURGEON_GUARDED_BY(mu_);
  std::uint64_t next_id_ STURGEON_GUARDED_BY(mu_) = 1;
  MetricsRegistry* registry_ STURGEON_GUARDED_BY(mu_) = nullptr;
  /// span name -> bound histogram memo
  std::vector<std::pair<std::string, Histogram*>> phase_hist_
      STURGEON_GUARDED_BY(mu_);
};

}  // namespace sturgeon::telemetry
