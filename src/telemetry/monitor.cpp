#include "telemetry/monitor.h"

#include <stdexcept>

#include "telemetry/metrics.h"

namespace sturgeon::telemetry {

double latency_slack(double p95_ms, double target_ms) {
  if (target_ms <= 0.0) throw std::invalid_argument("latency_slack: target");
  return (target_ms - p95_ms) / target_ms;
}

QosMonitor::QosMonitor(double qos_target_ms, std::size_t window)
    : qos_target_ms_(qos_target_ms), window_(window) {
  if (qos_target_ms <= 0.0 || window == 0) {
    throw std::invalid_argument("QosMonitor: bad parameters");
  }
}

void QosMonitor::observe(const sim::ServerTelemetry& sample) {
  last_p95_ms_ = sample.ls.p95_ms;
  last_power_w_ = sample.power_w;
  last_qps_ = sample.qps_real;
  recent_p95_.push_back(sample.ls.p95_ms);
  while (recent_p95_.size() > window_) recent_p95_.pop_front();
  ++count_;
}

std::optional<double> QosMonitor::slack() const {
  if (count_ == 0) return std::nullopt;
  return latency_slack(last_p95_ms_, qos_target_ms_);
}

double QosMonitor::window_p95_ms() const {
  if (recent_p95_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : recent_p95_) sum += v;
  return sum / static_cast<double>(recent_p95_.size());
}

RunMetrics::RunMetrics(double power_budget_w) : budget_w_(power_budget_w) {
  if (power_budget_w <= 0.0) {
    throw std::invalid_argument("RunMetrics: bad budget");
  }
}

void RunMetrics::observe(const sim::ServerTelemetry& sample) {
  ++intervals_;
  completed_ += sample.ls.completed;
  violations_ += sample.ls.qos_violations;
  if (sample.power_w > budget_w_) ++overshoot_intervals_;
  if (sample.qos_met()) ++qos_ok_intervals_;
  max_power_ratio_ = std::max(max_power_ratio_, sample.power_w / budget_w_);
  be_thr_.add(sample.be_throughput_norm);
}

double RunMetrics::qos_guarantee_rate() const {
  if (completed_ == 0) return 1.0;
  const std::uint64_t ok =
      completed_ >= violations_ ? completed_ - violations_ : 0;
  return static_cast<double>(ok) / static_cast<double>(completed_);
}

double RunMetrics::mean_be_throughput_norm() const { return be_thr_.mean(); }

double RunMetrics::power_overshoot_fraction() const {
  return intervals_ == 0 ? 0.0
                         : static_cast<double>(overshoot_intervals_) /
                               static_cast<double>(intervals_);
}

double RunMetrics::max_power_ratio() const { return max_power_ratio_; }

double RunMetrics::interval_qos_rate() const {
  return intervals_ == 0 ? 1.0
                         : static_cast<double>(qos_ok_intervals_) /
                               static_cast<double>(intervals_);
}

void RunMetrics::publish(MetricsRegistry& metrics) const {
  metrics.gauge("run.qos_guarantee_rate").set(qos_guarantee_rate());
  metrics.gauge("run.mean_be_throughput_norm").set(mean_be_throughput_norm());
  metrics.gauge("run.interval_qos_rate").set(interval_qos_rate());
  metrics.gauge("run.power_overshoot_fraction")
      .set(power_overshoot_fraction());
  metrics.gauge("run.max_power_ratio").set(max_power_ratio());
  metrics.gauge("run.intervals").set(static_cast<double>(intervals_));
}

}  // namespace sturgeon::telemetry
