// Typed metric instruments and the process-wide registry behind them.
//
// Every runtime counter in the system -- controller searches, balancer
// harvests, prediction-cache hits, model invocations, per-phase latencies
// -- reports through one of three instruments:
//
//   Counter    monotone event count; sharded relaxed atomics so the
//              config-search hot path pays one uncontended fetch_add.
//   Gauge      last-observed value (slack, hit rate, reserve sizes).
//   Histogram  fixed-bucket distribution with snapshot-time quantiles
//              (phase durations, per-epoch p95/power).
//
// Instruments are owned by a MetricsRegistry and addressed by dotted
// lowercase names ("controller.searches", "phase.search.duration_us");
// see DESIGN.md section 7 for the naming conventions. Lookup takes a
// mutex, so hot paths fetch the instrument once and keep the reference;
// references stay valid for the registry's lifetime. Reads are
// snapshot-on-read: value()/snapshot() sum the shards without stopping
// writers.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.h"

namespace sturgeon::telemetry {

/// Monotone event counter. Thread-safe; add() is wait-free on a
/// cache-line-padded shard picked per thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  /// Sum over shards; monotone between reset() calls.
  std::uint64_t value() const noexcept;

  /// Zero every shard (new run). Not atomic against concurrent add().
  void reset() noexcept;

 private:
  static constexpr std::size_t kNumShards = 16;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };

  static std::size_t shard_index() noexcept;

  std::array<Shard, kNumShards> shards_;
};

/// Last-observed value. Thread-safe (single atomic double).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations x with
/// x <= bounds[i] (first match); an implicit overflow bucket catches the
/// rest. Thread-safe; observe() is a bucket search plus relaxed atomics.
class Histogram {
 public:
  /// `bounds` are strictly ascending, finite upper bucket edges.
  explicit Histogram(std::vector<double> bounds);

  void observe(double x) noexcept;

  struct Snapshot {
    std::vector<double> bounds;         ///< upper edges, one per bucket
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
    /// Quantile estimate, q in [0, 1]; linear interpolation inside the
    /// containing bucket, clamped to the observed min/max.
    double quantile(double q) const;
  };
  Snapshot snapshot() const;

  void reset() noexcept;

  const std::vector<double>& bounds() const { return bounds_; }

  /// `n` ascending bounds: start, start*factor, start*factor^2, ...
  static std::vector<double> exponential_bounds(double start, double factor,
                                                int n);
  /// `n` ascending bounds: start, start+width, start+2*width, ...
  static std::vector<double> linear_bounds(double start, double width, int n);

  /// Default bounds for phase-duration histograms: 1 us .. ~2 s.
  static std::vector<double> duration_us_bounds() {
    return exponential_bounds(1.0, 2.0, 22);
  }

 private:
  std::size_t bucket_of(double x) const noexcept;

  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Name -> instrument map. Instruments are created on first access and
/// live as long as the registry; a name identifies exactly one instrument
/// kind (asking for "x" as a counter and later as a gauge throws).
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name) STURGEON_EXCLUDES(mu_);
  Gauge& gauge(std::string_view name) STURGEON_EXCLUDES(mu_);
  /// `bounds` are used only on first creation; later calls return the
  /// existing histogram regardless of the bounds argument.
  Histogram& histogram(std::string_view name, std::vector<double> bounds)
      STURGEON_EXCLUDES(mu_);
  Histogram& duration_histogram(std::string_view name) STURGEON_EXCLUDES(mu_) {
    return histogram(name, Histogram::duration_us_bounds());
  }

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
  };
  /// Name-sorted snapshot of every instrument (export schema order).
  Snapshot snapshot() const STURGEON_EXCLUDES(mu_);

  /// Zero every instrument (new run); instruments stay registered.
  void reset() STURGEON_EXCLUDES(mu_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  void check_kind(const std::string& name, Kind kind) STURGEON_REQUIRES(mu_);

  // mu_ guards the name->instrument maps, not the instruments: returned
  // Counter/Gauge/Histogram references are internally atomic and stay
  // valid for the registry's lifetime, so hot paths hold no lock.
  mutable Mutex mu_;
  std::map<std::string, Kind, std::less<>> kinds_ STURGEON_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      STURGEON_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      STURGEON_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      STURGEON_GUARDED_BY(mu_);
};

}  // namespace sturgeon::telemetry
