#include "telemetry/export.h"

#include <charconv>
#include <cstdio>
#include <map>

#include "util/table.h"

namespace sturgeon::telemetry {

namespace {

/// Shortest round-trip decimal rendering (deterministic golden files).
std::string double_to_json(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string attr_to_json(const AttrValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return std::to_string(*i);
  }
  if (const auto* d = std::get_if<double>(&v)) {
    return double_to_json(*d);
  }
  return "\"" + json_escape(std::get<std::string>(v)) + "\"";
}

std::map<std::string, PhaseTotal> phase_totals(
    const std::vector<SpanRecord>& spans) {
  std::map<std::string, PhaseTotal> phases;
  for (const auto& s : spans) {
    auto& p = phases[s.name];
    ++p.count;
    p.total_us += s.dur_us;
  }
  return phases;
}

std::string phases_to_json(const std::map<std::string, PhaseTotal>& phases) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, p] : phases) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":{\"count\":" +
           std::to_string(p.count) +
           ",\"total_us\":" + std::to_string(p.total_us) + "}";
  }
  out += "}";
  return out;
}

void write_trace_jsonl(const std::vector<SpanRecord>& spans,
                       std::ostream& os) {
  for (const auto& s : spans) {
    os << "{\"type\":\"span\",\"id\":" << s.id << ",\"parent\":" << s.parent
       << ",\"name\":\"" << json_escape(s.name)
       << "\",\"start_us\":" << s.start_us << ",\"dur_us\":" << s.dur_us
       << ",\"attrs\":{";
    for (std::size_t i = 0; i < s.attrs.size(); ++i) {
      if (i > 0) os << ",";
      os << "\"" << json_escape(s.attrs[i].first)
         << "\":" << attr_to_json(s.attrs[i].second);
    }
    os << "}}\n";
  }
  os << "{\"type\":\"run_summary\",\"span_count\":" << spans.size()
     << ",\"phases\":" << phases_to_json(phase_totals(spans)) << "}\n";
}

void write_metrics_summary(const MetricsRegistry& metrics, std::ostream& os) {
  const auto snap = metrics.snapshot();

  os << "== telemetry summary ==\n";
  if (!snap.counters.empty()) {
    os << "\ncounters:\n";
    for (const auto& [name, v] : snap.counters) {
      os << "  " << name << " = " << v << "\n";
    }
  }
  if (!snap.gauges.empty()) {
    os << "\ngauges:\n";
    for (const auto& [name, v] : snap.gauges) {
      os << "  " << name << " = " << TablePrinter::fmt(v, 4) << "\n";
    }
  }
  if (!snap.histograms.empty()) {
    os << "\nhistograms:\n";
    TablePrinter table(
        {"name", "count", "mean", "p50", "p95", "p99", "max"});
    for (const auto& [name, h] : snap.histograms) {
      table.add_row({name, std::to_string(h.count),
                     TablePrinter::fmt(h.mean(), 2),
                     TablePrinter::fmt(h.quantile(0.50), 2),
                     TablePrinter::fmt(h.quantile(0.95), 2),
                     TablePrinter::fmt(h.quantile(0.99), 2),
                     TablePrinter::fmt(h.max, 2)});
    }
    table.print(os);
  }
}

}  // namespace sturgeon::telemetry
