#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sturgeon::telemetry {

std::size_t Counter::shard_index() noexcept {
  // Threads round-robin onto shards at first use; a thread keeps its
  // shard for life so the hot path is a thread_local read.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kNumShards;
  return idx;
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() noexcept {
  for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: empty bucket bounds");
  }
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (!std::isfinite(bounds_[i]) ||
        (i > 0 && bounds_[i] <= bounds_[i - 1])) {
      throw std::invalid_argument(
          "Histogram: bounds must be finite and strictly ascending");
    }
  }
}

std::size_t Histogram::bucket_of(double x) const noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  return static_cast<std::size_t>(it - bounds_.begin());
}

namespace {

// Relaxed CAS loops for the double accumulators; contention is rare
// (histograms are written by the control loop, occasionally by workers).
void atomic_add(std::atomic<double>& a, double x) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double x) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (x < cur &&
         !a.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double x) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (x > cur &&
         !a.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::observe(double x) noexcept {
  counts_[bucket_of(x)].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t before = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, x);
  if (before == 0) {
    // First observation seeds min/max; racing observers converge via the
    // CAS loops below.
    double expected = 0.0;
    min_.compare_exchange_strong(expected, x, std::memory_order_relaxed);
    expected = 0.0;
    max_.compare_exchange_strong(expected, x, std::memory_order_relaxed);
  }
  atomic_min(min_, x);
  atomic_max(max_, x);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    s.counts.push_back(c.load(std::memory_order_relaxed));
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t next = cum + counts[i];
    if (static_cast<double>(next) >= target && counts[i] > 0) {
      double lo = i == 0 ? min : bounds[i - 1];
      double hi = i == bounds.size() ? max : bounds[i];
      lo = std::max(lo, min);
      hi = std::min(hi, max);
      if (hi < lo) hi = lo;
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(counts[i]);
      return lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
    }
    cum = next;
  }
  return max;
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  int n) {
  if (start <= 0.0 || factor <= 1.0 || n < 1) {
    throw std::invalid_argument("Histogram::exponential_bounds");
  }
  std::vector<double> b;
  b.reserve(static_cast<std::size_t>(n));
  double v = start;
  for (int i = 0; i < n; ++i, v *= factor) b.push_back(v);
  return b;
}

std::vector<double> Histogram::linear_bounds(double start, double width,
                                             int n) {
  if (width <= 0.0 || n < 1) {
    throw std::invalid_argument("Histogram::linear_bounds");
  }
  std::vector<double> b;
  b.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) b.push_back(start + width * i);
  return b;
}

void MetricsRegistry::check_kind(const std::string& name, Kind kind) {
  const auto [it, inserted] = kinds_.try_emplace(name, kind);
  if (!inserted && it->second != kind) {
    throw std::invalid_argument("MetricsRegistry: instrument '" + name +
                                "' already registered with another kind");
  }
}

Counter& MetricsRegistry::counter(std::string_view name) {
  MutexLock lock(mu_);
  std::string key(name);
  check_kind(key, Kind::kCounter);
  auto& slot = counters_[key];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  MutexLock lock(mu_);
  std::string key(name);
  check_kind(key, Kind::kGauge);
  auto& slot = gauges_[key];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  MutexLock lock(mu_);
  std::string key(name);
  check_kind(key, Kind::kHistogram);
  auto& slot = histograms_[key];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  MutexLock lock(mu_);
  Snapshot s;
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name,
                                                                  c->value());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name,
                                                              g->value());
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace_back(name, h->snapshot());
  }
  return s;
}

void MetricsRegistry::reset() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace sturgeon::telemetry
