#include "cluster/coordinator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/check.h"

namespace sturgeon::cluster {

namespace {

void check_inputs(double cluster_budget_w,
                  const std::vector<NodeReport>& reports) {
  if (!(std::isfinite(cluster_budget_w) && cluster_budget_w > 0.0)) {
    throw std::invalid_argument("PowerCoordinator: bad cluster budget");
  }
  if (reports.empty()) {
    throw std::invalid_argument("PowerCoordinator: empty fleet");
  }
  for (const auto& r : reports) {
    STURGEON_CHECK(r.budget_w > 0.0 && r.idle_w >= 0.0 &&
                       r.idle_w < r.budget_w,
                   "PowerCoordinator: bad node report (budget "
                       << r.budget_w << " W, idle " << r.idle_w << " W)");
  }
}

/// Split `budget` proportionally to `weights`, clamping node i into
/// [lo[i], hi[i]] and re-spreading what the clamps cut among the
/// unclamped nodes. Converges in at most n rounds; any residual that no
/// node can absorb stays unallocated (never oversubscribed).
std::vector<double> bounded_proportional(double budget,
                                         const std::vector<double>& weights,
                                         const std::vector<double>& lo,
                                         const std::vector<double>& hi) {
  const std::size_t n = weights.size();
  std::vector<double> caps(n, 0.0);
  std::vector<bool> fixed(n, false);
  double remaining = budget;
  for (std::size_t round = 0; round < n; ++round) {
    double weight_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!fixed[i]) weight_sum += weights[i];
    }
    if (weight_sum <= 0.0) break;
    bool clamped = false;
    double spent = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (fixed[i]) continue;
      const double share = remaining * weights[i] / weight_sum;
      if (share <= lo[i]) {
        caps[i] = lo[i];
        fixed[i] = true;
        clamped = true;
        spent += caps[i];
      } else if (share >= hi[i]) {
        caps[i] = hi[i];
        fixed[i] = true;
        clamped = true;
        spent += caps[i];
      } else {
        caps[i] = share;
      }
    }
    if (!clamped) break;
    remaining -= spent;
    if (remaining <= 0.0) {
      // Floors ate the whole budget: everyone unfixed gets its floor.
      for (std::size_t i = 0; i < n; ++i) {
        if (!fixed[i]) {
          caps[i] = lo[i];
          fixed[i] = true;
        }
      }
      break;
    }
  }
  return caps;
}

/// First-epoch / re-base split (no trustworthy telemetry): caps
/// proportional to each node's natural budget, floored at idle --
/// heterogeneous fleets start with big machines holding proportionally
/// more of the cluster budget. Dead nodes are pinned at their idle
/// floor (lo == hi) so the budget they would have held flows to the
/// live nodes instead.
std::vector<double> budget_proportional_base(
    double cluster_budget_w, const std::vector<NodeReport>& reports) {
  std::vector<double> weights, lo, hi;
  weights.reserve(reports.size());
  lo.reserve(reports.size());
  hi.reserve(reports.size());
  for (const auto& r : reports) {
    weights.push_back(r.budget_w);
    lo.push_back(r.idle_w);
    hi.push_back(r.dead() ? r.idle_w : r.budget_w);
  }
  return bounded_proportional(cluster_budget_w, weights, lo, hi);
}

bool any_dead(const std::vector<NodeReport>& reports) {
  for (const auto& r : reports) {
    if (r.dead()) return true;
  }
  return false;
}

class StaticEqualCoordinator final : public PowerCoordinator {
 public:
  std::string name() const override { return "static-equal"; }

  std::vector<double> assign(
      double cluster_budget_w,
      const std::vector<NodeReport>& reports) override {
    check_inputs(cluster_budget_w, reports);
    const std::size_t n = reports.size();
    if (!any_dead(reports)) {
      const double share = cluster_budget_w / static_cast<double>(n);
      return std::vector<double>(n, share);
    }
    // Dead nodes hold only their idle floor; the rest splits equally
    // among the living ("static" refers to the policy, not to wasting
    // watts on a machine that cannot use them).
    std::vector<double> caps(n, 0.0);
    double reserved = 0.0;
    std::size_t live = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (reports[i].dead()) {
        caps[i] = reports[i].idle_w;
        reserved += caps[i];
      } else {
        ++live;
      }
    }
    const double share = live == 0 ? 0.0
                                   : std::max(0.0, cluster_budget_w -
                                                       reserved) /
                                         static_cast<double>(live);
    for (std::size_t i = 0; i < n; ++i) {
      if (!reports[i].dead()) caps[i] = share;
    }
    return caps;
  }
};

class DemandProportionalCoordinator final : public PowerCoordinator {
 public:
  explicit DemandProportionalCoordinator(CoordinatorConfig config)
      : config_(config) {}

  std::string name() const override { return "demand-proportional"; }

  std::vector<double> assign(
      double cluster_budget_w,
      const std::vector<NodeReport>& reports) override {
    check_inputs(cluster_budget_w, reports);
    std::vector<double> weights, lo, hi;
    weights.reserve(reports.size());
    lo.reserve(reports.size());
    hi.reserve(reports.size());
    for (const auto& r : reports) {
      // Demand = last measured power plus a headroom margin; a node
      // with no sample yet claims its full budget (conservative: it is
      // about to start drawing power), while a dead node is pinned at
      // its idle floor (lo == hi) -- its stale power_w predates the
      // crash and must not hold watts hostage.
      const double demand =
          r.alive() ? std::clamp(
                          r.power_w + config_.headroom_margin * r.budget_w,
                          r.idle_w, r.budget_w)
                    : r.budget_w;
      weights.push_back(demand);
      lo.push_back(r.idle_w);
      hi.push_back(r.dead() ? r.idle_w : r.budget_w);
    }
    return bounded_proportional(cluster_budget_w, weights, lo, hi);
  }

 private:
  CoordinatorConfig config_;
};

class SlackHarvestCoordinator final : public PowerCoordinator {
 public:
  explicit SlackHarvestCoordinator(CoordinatorConfig config)
      : config_(config) {}

  std::string name() const override { return "slack-harvest"; }

  std::vector<double> assign(
      double cluster_budget_w,
      const std::vector<NodeReport>& reports) override {
    check_inputs(cluster_budget_w, reports);
    const std::size_t n = reports.size();
    // Stateful evolution needs trustworthy last-epoch caps fleet-wide.
    // Before any node's first epoch, or on the epoch a node rejoins
    // after an outage (its cap_w/power_w predate the crash), re-base on
    // the budget-proportional split -- which also re-grants a rejoining
    // node its share in one step -- with dead nodes pinned at idle.
    bool rebase = false;
    for (const auto& r : reports) {
      rebase = rebase || r.liveness == Liveness::kNeverReported || r.rejoined;
    }
    if (rebase) {
      return budget_proportional_base(cluster_budget_w, reports);
    }

    // Caps evolve from the caps in force last epoch; donations and
    // grants move watts between nodes without changing the fleet total.
    std::vector<double> caps(n);
    for (std::size_t i = 0; i < n; ++i) caps[i] = reports[i].cap_w;

    // Watts the previous assignment left unallocated rejoin the pool.
    double allocated = 0.0;
    for (const double c : caps) allocated += c;
    double pool = std::max(0.0, cluster_budget_w - allocated);

    // Dead-node reclamation: a crashed node draws only uncore power, so
    // everything above its idle floor is harvested into the pool for
    // the living (and re-granted through the rebase when it rejoins).
    for (std::size_t i = 0; i < n; ++i) {
      if (!reports[i].dead()) continue;
      pool += std::max(0.0, caps[i] - reports[i].idle_w);
      caps[i] = reports[i].idle_w;
    }

    // Donors: healthy slack and measured power comfortably under cap.
    // A node violating QoS *under* its cap is also squeezed: its problem
    // is co-location interference, not watts -- extra watts would only
    // expand the BE side further, while tightening the cap to just above
    // measured power makes the node's own budget-aware policy and the
    // governor shed BE pressure (the paper's power lever in reverse).
    std::vector<double> donation(n, 0.0);
    double donated = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto& r = reports[i];
      if (r.dead()) continue;  // already fully harvested above
      const double margin = config_.headroom_margin * r.budget_w;
      const bool comfortable = r.slack > config_.beta && r.qos_met;
      const bool violating_underneath =
          !r.qos_met && r.power_w + margin < caps[i];
      if (!comfortable && !violating_underneath) continue;
      const double floor = std::max(
          r.idle_w, config_.min_cap_fraction * r.budget_w);
      const double headroom = caps[i] - (r.power_w + margin);
      if (headroom <= 0.0) continue;
      const double share =
          violating_underneath ? 1.0 : config_.donate_fraction;
      const double d = std::min(share * headroom,
                                std::max(0.0, caps[i] - floor));
      if (d <= 0.0) continue;
      donation[i] = d;
      caps[i] -= d;
      donated += d;
      pool += d;
    }

    // Receivers: nodes pressed against their cap -- the only nodes whose
    // QoS or throughput more watts can actually improve. A pressed node
    // that is also QoS-stressed may claim the full distance to its
    // natural budget; a healthy pressed node expands one margin step per
    // epoch, so the per-node balancer's feedback keeps pace with the
    // watts arriving (granting the full distance at once lets the policy
    // leap to aggressive co-locations its models have not been corrected
    // on, costing fleet QoS).
    std::vector<double> want(n, 0.0);
    double want_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto& r = reports[i];
      if (donation[i] > 0.0) continue;
      if (r.dead()) continue;  // stale power_w cannot express demand
      const double margin = config_.headroom_margin * r.budget_w;
      const bool stressed = r.slack < config_.alpha || !r.qos_met;
      const bool pressed = r.power_w + margin > caps[i];
      if (!pressed) continue;
      double w = std::max(0.0, r.budget_w - caps[i]);
      if (!stressed) w = std::min(w, margin);
      want[i] = w;
      want_sum += want[i];
    }

    double granted = 0.0;
    if (want_sum > 0.0 && pool > 0.0) {
      const double scale = std::min(1.0, pool / want_sum);
      for (std::size_t i = 0; i < n; ++i) {
        const double g = want[i] * scale;
        caps[i] += g;
        granted += g;
      }
    }

    // Un-granted watts flow back to the donors (pro-rata), so a calm
    // fleet does not ratchet its caps toward the floor.
    double leftover = pool - granted;
    if (leftover > 0.0 && donated > 0.0) {
      for (std::size_t i = 0; i < n; ++i) {
        if (donation[i] <= 0.0) continue;
        const double back = std::min(leftover * donation[i] / donated,
                                     reports[i].budget_w - caps[i]);
        caps[i] += std::max(0.0, back);
      }
    }
    last_transfer_w_ = granted;
    return caps;
  }

  void reset() override { last_transfer_w_ = 0.0; }

  /// Watts moved donor->receiver in the last assignment (telemetry).
  double last_transfer_w() const { return last_transfer_w_; }

 private:
  CoordinatorConfig config_;
  double last_transfer_w_ = 0.0;
};

}  // namespace

const char* to_string(Liveness liveness) {
  switch (liveness) {
    case Liveness::kNeverReported: return "never-reported";
    case Liveness::kAlive: return "alive";
    case Liveness::kDead: return "dead";
  }
  return "unknown";
}

const char* to_string(CoordinatorKind kind) {
  switch (kind) {
    case CoordinatorKind::kStaticEqual: return "static-equal";
    case CoordinatorKind::kDemandProportional: return "demand-proportional";
    case CoordinatorKind::kSlackHarvest: return "slack-harvest";
  }
  return "unknown";
}

std::unique_ptr<PowerCoordinator> make_coordinator(CoordinatorKind kind,
                                                   CoordinatorConfig config) {
  if (config.alpha < 0.0 || config.beta <= config.alpha ||
      config.donate_fraction <= 0.0 || config.donate_fraction > 1.0 ||
      config.headroom_margin < 0.0 || config.min_cap_fraction < 0.0 ||
      config.min_cap_fraction >= 1.0) {
    throw std::invalid_argument("make_coordinator: bad configuration");
  }
  switch (kind) {
    case CoordinatorKind::kStaticEqual:
      return std::make_unique<StaticEqualCoordinator>();
    case CoordinatorKind::kDemandProportional:
      return std::make_unique<DemandProportionalCoordinator>(config);
    case CoordinatorKind::kSlackHarvest:
      return std::make_unique<SlackHarvestCoordinator>(config);
  }
  throw std::invalid_argument("make_coordinator: unknown kind");
}

HeartbeatTracker::HeartbeatTracker(std::size_t nodes, HeartbeatConfig config)
    : config_(config),
      state_(nodes, Liveness::kNeverReported),
      declared_dead_epoch_(nodes, -1) {
  if (nodes == 0) {
    throw std::invalid_argument("HeartbeatTracker: empty fleet");
  }
  if (config_.dead_after_epochs < 1) {
    throw std::invalid_argument(
        "HeartbeatTracker: dead_after_epochs must be >= 1");
  }
}

int HeartbeatTracker::update(int t, const std::vector<int>& last_step_epoch,
                             std::vector<NodeReport>& reports,
                             const std::vector<bool>& lease_lapsed) {
  STURGEON_CHECK(last_step_epoch.size() == state_.size() &&
                     reports.size() == state_.size(),
                 "HeartbeatTracker::update: fleet size mismatch");
  STURGEON_CHECK(lease_lapsed.empty() || lease_lapsed.size() == state_.size(),
                 "HeartbeatTracker::update: lease_lapsed size mismatch");
  currently_dead_ = 0;
  for (std::size_t i = 0; i < state_.size(); ++i) {
    // Heartbeat = the node completed its lockstep step. `t` is the
    // epoch about to run, so a healthy node's last heartbeat is t-1 and
    // `missed` counts the silent epochs since.
    const int missed = (t - 1) - last_step_epoch[i];
    const bool silent_too_long = missed >= config_.dead_after_epochs;
    const Liveness prev = state_[i];
    Liveness now;
    bool rejoined = false;
    if (silent_too_long) {
      now = Liveness::kDead;
      if (prev != Liveness::kDead) declared_dead_epoch_[i] = t;
    } else if (last_step_epoch[i] < 0) {
      now = Liveness::kNeverReported;  // startup, not failure
    } else {
      now = Liveness::kAlive;
      if (prev == Liveness::kDead) {
        rejoined = true;
        completed_outages_.push_back(t - declared_dead_epoch_[i]);
        declared_dead_epoch_[i] = -1;
      } else if (!lease_lapsed.empty() && lease_lapsed[i]) {
        // Rejoin under an expired lease: the node stayed alive (kept
        // reporting) but ran autonomously in between, so its cap_w /
        // power_w predate the lapse just like an outage. One-shot, no
        // outage recorded.
        rejoined = true;
      }
    }
    state_[i] = now;
    reports[i].liveness = now;
    reports[i].rejoined = rejoined;
    if (now == Liveness::kDead) ++currently_dead_;
  }
  return currently_dead_;
}

void HeartbeatTracker::reset() {
  for (auto& s : state_) s = Liveness::kNeverReported;
  for (auto& e : declared_dead_epoch_) e = -1;
  completed_outages_.clear();
  currently_dead_ = 0;
}

}  // namespace sturgeon::cluster
