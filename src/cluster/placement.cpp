#include "cluster/placement.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "sim/power_model.h"

namespace sturgeon::cluster {

const char* to_string(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kRoundRobin: return "round-robin";
    case PlacementKind::kBinPack: return "bin-pack";
    case PlacementKind::kWorstFit: return "worst-fit";
  }
  return "unknown";
}

double estimate_pair_power_w(const LsProfile& ls, const BeProfile& be,
                             const sim::ServerConfig& server) {
  const MachineSpec& m = server.machine;
  const sim::PowerModel model(m, server.power);
  AppSlice ls_slice{m.num_cores / 2, m.max_freq_level(), m.llc_ways / 2};
  const AppSlice be_slice =
      Allocation::complement(m, ls_slice, m.max_freq_level());
  // Busy on both sides, each demanding its profile's peak traffic.
  return model.package_power_w(ls_slice, 1.0, ls.power_activity, be_slice,
                               1.0, be.power_activity,
                               ls.bw_gbps_at_peak + be.bw_gbps_max);
}

std::vector<std::size_t> place(PlacementKind kind,
                               const std::vector<double>& demand_w,
                               const std::vector<double>& capacity_w) {
  const std::size_t n = demand_w.size();
  if (n == 0 || capacity_w.size() != n) {
    throw std::invalid_argument(
        "place: need one workload per node (non-empty, equal lengths)");
  }
  std::vector<std::size_t> assignment(n);

  switch (kind) {
    case PlacementKind::kRoundRobin: {
      std::iota(assignment.begin(), assignment.end(), std::size_t{0});
      break;
    }
    case PlacementKind::kBinPack: {
      // Sorted matching: k-th hungriest workload onto the k-th biggest
      // node. Stable sorts keep ties in index order (determinism).
      std::vector<std::size_t> by_demand(n), by_capacity(n);
      std::iota(by_demand.begin(), by_demand.end(), std::size_t{0});
      std::iota(by_capacity.begin(), by_capacity.end(), std::size_t{0});
      std::stable_sort(by_demand.begin(), by_demand.end(),
                       [&](std::size_t a, std::size_t b) {
                         return demand_w[a] > demand_w[b];
                       });
      std::stable_sort(by_capacity.begin(), by_capacity.end(),
                       [&](std::size_t a, std::size_t b) {
                         return capacity_w[a] > capacity_w[b];
                       });
      for (std::size_t k = 0; k < n; ++k) {
        assignment[by_capacity[k]] = by_demand[k];
      }
      break;
    }
    case PlacementKind::kWorstFit: {
      // Each workload in arrival order takes the free node with the most
      // leftover capacity after hosting it.
      std::vector<bool> used(n, false);
      for (std::size_t w = 0; w < n; ++w) {
        std::size_t best = n;
        double best_leftover = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          if (used[i]) continue;
          const double leftover = capacity_w[i] - demand_w[w];
          if (best == n || leftover > best_leftover) {
            best = i;
            best_leftover = leftover;
          }
        }
        used[best] = true;
        assignment[best] = w;
      }
      break;
    }
  }
  return assignment;
}

}  // namespace sturgeon::cluster
