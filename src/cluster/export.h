// Cluster JSONL roll-up: one run_summary line per node plus a final
// cluster line, written so tools/trace_stats.py --cluster can reconcile
// the fleet against itself (node ids cover 0..N-1 exactly once; the
// cluster line's span_count and per-phase {count,total_us} equal the
// sums of the node lines).
#pragma once

#include <ostream>
#include <string>

#include "cluster/cluster.h"

namespace sturgeon::cluster {

/// Per-node `{"type":"run_summary","node":i,...}` lines followed by one
/// `{"type":"run_summary","cluster":true,...}` roll-up line. Schema
/// stability rules follow telemetry/export.h: append fields, never
/// rename or reorder.
void write_cluster_jsonl(const ClusterResult& result, std::ostream& os);

/// File variant. Returns false -- after bumping telemetry.export.errors
/// on the result's cluster context -- when `path` cannot be opened or
/// the write comes up short; never throws.
bool write_cluster_jsonl(const ClusterResult& result, const std::string& path);

}  // namespace sturgeon::cluster
