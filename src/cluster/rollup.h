// Shared fleet construction and aggregation, used by both stepping
// engines: the lockstep ClusterSim (cluster/cluster.h) and the
// event-driven FleetSim (fleet/fleet.h).
//
// The twin-equivalence contract (tests/fleet/twin_test.cpp) says the
// event-driven path with quiescence skipping disabled and zero churn
// must produce a ClusterResult bit-identical to the lockstep path. The
// only way to keep that promise cheap is to share the arithmetic: node
// construction (placement, seeding, model warming, budget resolution)
// lives in build_cluster(), and every per-epoch instrument plus the
// end-of-run ClusterResult assembly lives in ClusterRollup. Both
// engines call the same code in the same order; only the decision of
// WHICH nodes step each epoch differs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "comms/fabric.h"

namespace sturgeon::cluster {

/// Copy a run's comms accounting (channel totals, the grant identity,
/// per-node lease counters) out of the fabric into the result; both
/// stepping engines call it right after finalize.
void fill_comms_results(const comms::CommsFabric& fabric,
                        ClusterResult& result);

/// Everything ClusterSim's constructor used to assemble inline: the
/// placed, seeded fleet (models pre-warmed), the cluster telemetry
/// context and the resolved cluster power budget.
struct ClusterBuild {
  std::shared_ptr<telemetry::TelemetryContext> telemetry;
  std::vector<std::unique_ptr<ClusterNode>> nodes;
  double budget_w = 0.0;
  int max_trace_s = 0;  ///< longest node trace (default epoch count)
};

/// Place workloads onto machines, warm every distinct Sturgeon model on
/// `pool`, construct the fleet with per-node derived seeds and child
/// telemetry contexts, and resolve the cluster budget. Throws
/// std::invalid_argument on an empty fleet or bad oversubscription;
/// STURGEON_CHECKs that the budget clears the fleet's idle power.
ClusterBuild build_cluster(std::vector<NodeSpec> specs,
                           const ClusterConfig& config, ThreadPool& pool);

/// Per-epoch cluster instruments plus the end-of-run ClusterResult
/// assembly. One instance per run; feed it in epoch order.
class ClusterRollup {
 public:
  ClusterRollup(telemetry::TelemetryContext& telemetry, double budget_w);

  /// Epoch bookkeeping, called once per epoch in this order.
  void begin_epoch();
  void note_dead(int dead_nodes);
  /// Checks the coordinator invariant sum(caps) <= budget (t only
  /// labels the failure message).
  void note_cap_sum(double cap_sum_w, int t);
  void note_power(double fleet_power_w);
  void note_slices(int ls_total, int ls_met, double be_norm_sum);

  double max_cap_sum_ratio() const { return max_cap_sum_ratio_; }

  /// Assemble the ClusterResult: per-node results, fleet QoS/throughput
  /// roll-ups, recovery accounting, fleet.* counter roll-up, final
  /// gauges and flushes. Exactly the epilogue ClusterSim::run used to
  /// inline, so both engines produce identical results from identical
  /// node states.
  ClusterResult finalize(
      int epochs, const std::string& coordinator_name,
      const std::vector<std::unique_ptr<ClusterNode>>& nodes,
      const HeartbeatTracker& heartbeat,
      std::shared_ptr<telemetry::TelemetryContext> telemetry);

 private:
  telemetry::TelemetryContext& telemetry_;
  double budget_w_ = 0.0;

  telemetry::Histogram* power_hist_ = nullptr;
  telemetry::Counter* epoch_counter_ = nullptr;
  telemetry::Counter* overshoot_counter_ = nullptr;
  telemetry::Gauge* power_gauge_ = nullptr;
  telemetry::Gauge* dead_gauge_ = nullptr;
  telemetry::Gauge* ls_qos_gauge_ = nullptr;
  telemetry::Gauge* be_norm_gauge_ = nullptr;
  telemetry::Counter* dead_epochs_counter_ = nullptr;

  double power_sum_ = 0.0;
  double max_ratio_ = 0.0;
  double max_cap_sum_ratio_ = 0.0;
  int overshoot_epochs_ = 0;
  int dead_node_epochs_ = 0;
};

}  // namespace sturgeon::cluster
