// Placement: which (LS service, BE application) pair runs on which node.
//
// The fleet is a fixed set of machines (possibly heterogeneous power
// coefficients / budgets) and the work is one co-location pair plus its
// load trace per node. The scheduler decides the pairing from each
// workload's *predicted* power appetite and each node's capacity:
//
//   round-robin   workload i -> node i (the oblivious baseline);
//   bin-pack      heaviest workload onto the biggest node (sorted
//                 matching -- with one pair per node, first-fit
//                 decreasing degenerates to rank pairing);
//   worst-fit     each workload, in arrival order, takes the free node
//                 with the most leftover capacity, spreading headroom
//                 evenly (the baseline CuttleSys-style schedulers use).
//
// All strategies are deterministic; ties break toward the lower node id.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/server.h"
#include "workloads/app_profile.h"

namespace sturgeon::cluster {

enum class PlacementKind { kRoundRobin, kBinPack, kWorstFit };

const char* to_string(PlacementKind kind);

/// Predicted package power (W) of co-locating `ls` + `be` on a `server`
/// machine: both slices busy on an even split at top frequency. This is
/// the *appetite* a scheduler would read off the pair's profiles before
/// placing it -- deliberately model-free so placement never needs a
/// trained predictor.
double estimate_pair_power_w(const LsProfile& ls, const BeProfile& be,
                             const sim::ServerConfig& server);

/// assignment[node] = index into the workload list. `demand_w` is the
/// per-workload predicted power, `capacity_w` the per-node power budget;
/// the two must be the same length (one pair per node). Throws on
/// mismatched or empty inputs.
std::vector<std::size_t> place(PlacementKind kind,
                               const std::vector<double>& demand_w,
                               const std::vector<double>& capacity_w);

}  // namespace sturgeon::cluster
