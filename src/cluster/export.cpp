#include "cluster/export.h"

#include <cstddef>
#include <fstream>
#include <map>
#include <string>

#include "telemetry/export.h"
#include "util/check.h"

namespace sturgeon::cluster {

namespace {

std::string num(double v) {
  return telemetry::attr_to_json(telemetry::AttrValue(v));
}

std::string str(const std::string& s) {
  return "\"" + telemetry::json_escape(s) + "\"";
}

}  // namespace

void write_cluster_jsonl(const ClusterResult& result, std::ostream& os) {
  std::size_t span_total = 0;
  long long skipped_total = 0, wakes_total = 0;
  std::map<std::string, telemetry::PhaseTotal> merged;

  for (const auto& nr : result.node_results) {
    STURGEON_CHECK(nr.telemetry != nullptr,
                   "write_cluster_jsonl: node " << nr.node
                                                << " has no telemetry");
    const auto& spans = nr.telemetry->tracer().finished();
    const auto phases = telemetry::phase_totals(spans);
    span_total += spans.size();
    for (const auto& [name, p] : phases) {
      auto& m = merged[name];
      m.count += p.count;
      m.total_us += p.total_us;
    }
    os << "{\"type\":\"run_summary\",\"node\":" << nr.node
       << ",\"policy\":" << str(nr.policy) << ",\"ls\":" << str(nr.ls)
       << ",\"be\":" << str(nr.be) << ",\"span_count\":" << spans.size()
       << ",\"phases\":" << telemetry::phases_to_json(phases)
       << ",\"epochs\":" << nr.epochs
       << ",\"qos_guarantee_rate\":" << num(nr.qos_guarantee_rate)
       << ",\"be_throughput_norm\":" << num(nr.mean_be_throughput_norm)
       << ",\"budget_w\":" << num(nr.budget_w)
       << ",\"mean_cap_w\":" << num(nr.mean_cap_w)
       << ",\"max_power_ratio\":" << num(nr.max_power_ratio)
       << ",\"throttled_epochs\":" << nr.throttled_epochs
       << ",\"epochs_down\":" << nr.epochs_down
       << ",\"epochs_hung\":" << nr.epochs_hung
       << ",\"safe_mode_epochs\":" << nr.safe_mode_epochs
       << ",\"watchdog_trips\":" << nr.watchdog_trips
       << ",\"faults_injected\":" << nr.faults_injected
       << ",\"sensor_rejected\":" << nr.sensor_rejected
       << ",\"actuator_retries\":" << nr.actuator_retries
       << ",\"actuator_gave_up\":" << nr.actuator_gave_up
       << ",\"skipped_epochs\":" << nr.skipped_epochs
       << ",\"wakes\":" << nr.wakes
       << ",\"lease_renewals\":" << nr.lease_renewals
       << ",\"lease_expiries\":" << nr.lease_expiries
       << ",\"autonomy_epochs\":" << nr.autonomy_epochs
       << ",\"last_autonomy_epoch\":" << nr.last_autonomy_epoch << "}\n";
    skipped_total += nr.skipped_epochs;
    wakes_total += nr.wakes;
  }

  os << "{\"type\":\"run_summary\",\"cluster\":true,\"nodes\":"
     << result.nodes << ",\"span_count\":" << span_total
     << ",\"phases\":" << telemetry::phases_to_json(merged)
     << ",\"epochs\":" << result.epochs
     << ",\"coordinator\":" << str(result.coordinator)
     << ",\"power_budget_w\":" << num(result.cluster_power_budget_w)
     << ",\"fleet_qos_guarantee_rate\":"
     << num(result.fleet_qos_guarantee_rate)
     << ",\"aggregate_be_throughput\":" << num(result.aggregate_be_throughput)
     << ",\"overshoot_fraction\":" << num(result.cluster_overshoot_fraction)
     << ",\"max_power_ratio\":" << num(result.max_cluster_power_ratio)
     << ",\"mean_power_w\":" << num(result.mean_cluster_power_w)
     << ",\"max_cap_sum_ratio\":" << num(result.max_cap_sum_ratio)
     << ",\"dead_node_epochs\":" << result.dead_node_epochs
     << ",\"recovery_episodes\":" << result.recovery_mttr_epochs.size()
     << ",\"mttr_p95_epochs\":" << num(result.mttr_p95_epochs)
     << ",\"skipped_epochs\":" << skipped_total
     << ",\"wakes\":" << wakes_total
     << ",\"comms_sent\":" << result.comms_sent
     << ",\"comms_dropped\":" << result.comms_dropped
     << ",\"comms_delayed\":" << result.comms_delayed
     << ",\"comms_duplicated\":" << result.comms_duplicated
     << ",\"grants_sent\":" << result.comms_grants_sent
     << ",\"grants_delivered\":" << result.comms_grants_delivered
     << ",\"grants_dropped\":" << result.comms_grants_dropped
     << ",\"grants_in_flight\":" << result.comms_grants_in_flight
     << ",\"lease_renewals\":" << result.comms_lease_renewals
     << ",\"lease_expiries\":" << result.comms_lease_expiries
     << ",\"autonomy_epochs\":" << result.comms_autonomy_epochs << "}\n";
}

bool write_cluster_jsonl(const ClusterResult& result,
                         const std::string& path) {
  const auto count_error = [&result] {
    if (result.telemetry != nullptr) {
      result.telemetry->metrics().counter("telemetry.export.errors").inc();
    }
  };
  std::ofstream os(path);
  if (!os) {
    count_error();
    return false;
  }
  write_cluster_jsonl(result, os);
  os.flush();
  if (!os.good()) {  // short write: disk full or I/O error mid-stream
    count_error();
    return false;
  }
  return true;
}

}  // namespace sturgeon::cluster
