#include "cluster/cluster.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "exp/model_registry.h"
#include "util/check.h"
#include "util/rng.h"

namespace sturgeon::cluster {

namespace {

/// Machine power capacity proxy for placement: the whole package busy at
/// top frequency with unit activity. Machine-only (no workload term), so
/// heterogeneous fleets rank by hardware size.
double machine_capacity_w(const sim::ServerConfig& server) {
  return sim::PowerModel(server.machine, server.power).max_package_power_w();
}

/// p95 of a sample of episode lengths (0 for an empty sample).
double p95_epochs(std::vector<int> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t idx =
      (samples.size() * 95 + 99) / 100;  // ceil(0.95 n), 1-based
  return static_cast<double>(samples[std::min(idx, samples.size()) - 1]);
}

}  // namespace

ClusterSim::ClusterSim(std::vector<NodeSpec> specs, ClusterConfig config)
    : config_(std::move(config)),
      heartbeat_(std::max<std::size_t>(specs.size(), 1),
                 config_.resilience.heartbeat),
      pool_(config_.threads) {
  if (specs.empty()) {
    throw std::invalid_argument("ClusterSim: empty fleet");
  }
  if (!(config_.oversubscription > 0.0 && config_.oversubscription <= 1.0)) {
    throw std::invalid_argument("ClusterSim: oversubscription must be (0,1]");
  }
  const std::size_t n = specs.size();

  telemetry_ = config_.telemetry
                   ? config_.telemetry
                   : telemetry::TelemetryContext::make(specs[0].server.machine);

  // Placement: map workload w (pair + trace + policy) onto machine i.
  std::vector<double> demand(n), capacity(n);
  for (std::size_t i = 0; i < n; ++i) {
    demand[i] = estimate_pair_power_w(specs[i].ls, specs[i].be,
                                      specs[i].server);
    capacity[i] = machine_capacity_w(specs[i].server);
  }
  const std::vector<std::size_t> assignment =
      place(config_.placement, demand, capacity);

  // Warm every distinct Sturgeon model before any node constructs its
  // policy: parallel across distinct services, train-once per service.
  std::vector<std::pair<const LsProfile*, const BeProfile*>> to_warm;
  const core::TrainerConfig* trainer = nullptr;
  for (const auto& spec : specs) {
    if (spec.policy == PolicyKind::kSturgeon && !spec.make_policy) {
      to_warm.emplace_back(&spec.ls, &spec.be);
      trainer = &spec.trainer;
    }
  }
  if (!to_warm.empty()) {
    exp::warm_models(to_warm, &pool_, *trainer);
  }

  nodes_.reserve(n);
  double budget_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    NodeSpec spec = specs[assignment[i]];
    spec.server = specs[i].server;  // workload moves, the machine stays
    if (config_.route_via_allocation) spec.route_via_allocation = true;
    max_trace_s_ = std::max(max_trace_s_, spec.trace.duration_s());
    auto ctx = telemetry::TelemetryContext::make(
        spec.server.machine, telemetry::TelemetryConfig{
                                 config_.node_tracing, false, "", "",
                                 telemetry_->config().clock});
    nodes_.push_back(std::make_unique<ClusterNode>(
        static_cast<int>(i), std::move(spec),
        derive_seed(config_.seed, static_cast<std::uint64_t>(i)),
        std::move(ctx), config_.governor, config_.resilience,
        config_.faults.for_node(static_cast<int>(i))));
    budget_sum += nodes_.back()->budget_w();
  }

  budget_w_ = config_.power_budget_w > 0.0
                  ? config_.power_budget_w
                  : config_.oversubscription * budget_sum;
  double idle_sum = 0.0;
  for (const auto& node : nodes_) idle_sum += node->idle_w();
  STURGEON_CHECK(budget_w_ > idle_sum,
                 "ClusterSim: cluster budget " << budget_w_
                     << " W below fleet idle power " << idle_sum << " W");

  coordinator_ =
      make_coordinator(config_.coordinator, config_.coordinator_config);

  auto& registry = telemetry_->metrics();
  registry.gauge("cluster.nodes").set(static_cast<double>(n));
  registry.gauge("cluster.power_budget_w").set(budget_w_);
}

ClusterResult ClusterSim::run(int epochs) {
  if (ran_) {
    throw std::logic_error("ClusterSim::run: one-shot; build a new sim");
  }
  ran_ = true;
  if (epochs <= 0) epochs = max_trace_s_;
  const std::size_t n = nodes_.size();

  auto& registry = telemetry_->metrics();
  auto& power_hist = registry.histogram(
      "cluster.power_w", telemetry::Histogram::exponential_bounds(
                             budget_w_ / 64.0, 1.25, 24));
  auto& epoch_counter = registry.counter("cluster.epochs");
  auto& overshoot_counter = registry.counter("cluster.overshoot_epochs");
  auto& power_gauge = registry.gauge("cluster.power_w.last");
  auto& dead_gauge = registry.gauge("cluster.dead_nodes");
  auto& ls_qos_gauge = registry.gauge("cluster.slices.ls_qos_fraction");
  auto& be_norm_gauge = registry.gauge("cluster.slices.be_throughput_norm");
  auto& dead_epochs_counter = registry.counter("fault.node.dead_epochs");

  coordinator_->reset();
  heartbeat_.reset();
  std::vector<NodeReport> reports(n);
  std::vector<int> last_steps(n, -1);
  double power_sum = 0.0;
  double max_ratio = 0.0;
  double max_cap_sum_ratio = 0.0;
  int overshoot_epochs = 0;
  int dead_node_epochs = 0;

  for (int t = 0; t < epochs; ++t) {
    telemetry::Span span = telemetry_->tracer().start_span("cluster.epoch");
    span.attr("t_s", t);
    epoch_counter.inc();

    // 1. Budget split (sequential, deterministic in node order). The
    // heartbeat tracker stamps liveness first: a node that stopped
    // stepping is declared dead after dead_after_epochs of silence and
    // its cap collapses to the idle floor inside the coordinator.
    for (std::size_t i = 0; i < n; ++i) {
      reports[i] = nodes_[i]->report();
      last_steps[i] = nodes_[i]->last_step_epoch();
    }
    const int dead = heartbeat_.update(t, last_steps, reports);
    dead_gauge.set(static_cast<double>(dead));
    if (dead > 0) {
      dead_node_epochs += dead;
      dead_epochs_counter.add(static_cast<std::uint64_t>(dead));
    }
    const std::vector<double> caps = coordinator_->assign(budget_w_, reports);
    double cap_sum = 0.0;
    for (const double c : caps) cap_sum += c;
    STURGEON_CHECK(cap_sum <= budget_w_ * (1.0 + 1e-9) + 1e-6,
                   "ClusterSim: coordinator oversubscribed the budget ("
                       << cap_sum << " W > " << budget_w_ << " W at t=" << t
                       << ")");
    max_cap_sum_ratio = std::max(max_cap_sum_ratio, cap_sum / budget_w_);
    for (std::size_t i = 0; i < n; ++i) nodes_[i]->set_power_cap(caps[i]);

    // 2. Lockstep: every node advances one epoch, in parallel. Nodes
    // share no mutable state, so the schedule cannot change results.
    pool_.parallel_for(n, [&](std::size_t i) { nodes_[i]->step(t); });

    // 3. Fleet aggregation (sequential again), over ground-truth power:
    // a sensor fault may lie to the coordinator, but the budget verdict
    // is about watts actually drawn.
    double fleet_power = 0.0;
    for (const auto& node : nodes_) fleet_power += node->true_power_w();
    power_hist.observe(fleet_power);
    power_gauge.set(fleet_power);
    power_sum += fleet_power;
    max_ratio = std::max(max_ratio, fleet_power / budget_w_);
    if (fleet_power > budget_w_) {
      ++overshoot_epochs;
      overshoot_counter.inc();
    }
    // Per-slice fleet roll-up, in node/slice order: what fraction of the
    // fleet's LS slices met QoS this epoch, and how many machines' worth
    // of BE work its BE slices sustained.
    int ls_total = 0, ls_met = 0;
    double be_norm_sum = 0.0;
    for (const auto& node : nodes_) {
      for (const SliceReport& s : node->report().slices) {
        if (s.latency_sensitive) {
          ++ls_total;
          if (s.qos_met) ++ls_met;
        } else {
          be_norm_sum += s.throughput_norm;
        }
      }
    }
    ls_qos_gauge.set(ls_total == 0 ? 1.0
                                   : static_cast<double>(ls_met) /
                                         static_cast<double>(ls_total));
    be_norm_gauge.set(be_norm_sum);

    span.attr("power_w", fleet_power).attr("dead_nodes", dead);
  }

  ClusterResult result;
  result.cluster_power_budget_w = budget_w_;
  result.epochs = epochs;
  result.nodes = static_cast<int>(n);
  result.coordinator = coordinator_->name();
  result.telemetry = telemetry_;

  std::uint64_t completed = 0, violations = 0;
  result.node_results.reserve(n);
  for (const auto& node : nodes_) {
    NodeResult nr = node->result();
    completed += nr.total_completed;
    violations += nr.total_violations;
    result.aggregate_be_throughput += nr.mean_be_throughput_norm;
    result.node_results.push_back(std::move(nr));
  }
  result.fleet_qos_guarantee_rate =
      completed == 0 ? 1.0
                     : static_cast<double>(completed - violations) /
                           static_cast<double>(completed);
  result.cluster_overshoot_fraction =
      epochs == 0 ? 0.0
                  : static_cast<double>(overshoot_epochs) /
                        static_cast<double>(epochs);
  result.max_cluster_power_ratio = max_ratio;
  result.mean_cluster_power_w =
      epochs == 0 ? 0.0 : power_sum / static_cast<double>(epochs);
  result.max_cap_sum_ratio = max_cap_sum_ratio;
  result.dead_node_epochs = dead_node_epochs;

  // Recovery accounting: heartbeat outages (declared-dead to rejoin)
  // plus each node's completed watchdog safe-mode episodes, merged into
  // one MTTR sample. Sequential in node order, so deterministic.
  result.recovery_mttr_epochs = heartbeat_.completed_outages();
  for (const auto& node : nodes_) {
    const std::vector<int> episodes = node->result().safe_mode_episodes;
    result.recovery_mttr_epochs.insert(result.recovery_mttr_epochs.end(),
                                       episodes.begin(), episodes.end());
  }
  result.mttr_p95_epochs = p95_epochs(result.recovery_mttr_epochs);
  auto& mttr_hist = registry.histogram(
      "recovery.mttr_epochs", telemetry::Histogram::exponential_bounds(
                                  1.0, 2.0, 10));
  for (const int e : result.recovery_mttr_epochs) {
    mttr_hist.observe(static_cast<double>(e));
  }
  registry.gauge("recovery.mttr_p95_epochs").set(result.mttr_p95_epochs);
  registry.gauge("cluster.max_cap_sum_ratio").set(max_cap_sum_ratio);

  // Roll the per-node counters up into the cluster registry ("fleet."
  // prefix) so one snapshot answers fleet-wide questions; gauges and
  // histograms stay node-local (summing them is not meaningful).
  for (const auto& node : nodes_) {
    const auto snap = node->result().telemetry->metrics().snapshot();
    for (const auto& [name, value] : snap.counters) {
      registry.counter("fleet." + name).add(value);
    }
  }
  registry.gauge("cluster.fleet_qos_guarantee_rate")
      .set(result.fleet_qos_guarantee_rate);
  registry.gauge("cluster.aggregate_be_throughput")
      .set(result.aggregate_be_throughput);
  registry.gauge("cluster.overshoot_fraction")
      .set(result.cluster_overshoot_fraction);
  registry.gauge("cluster.max_power_ratio").set(result.max_cluster_power_ratio);
  registry.gauge("cluster.mean_power_w").set(result.mean_cluster_power_w);

  for (const auto& node : nodes_) node->result().telemetry->flush();
  telemetry_->flush();
  return result;
}

}  // namespace sturgeon::cluster
