#include "cluster/cluster.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "cluster/rollup.h"
#include "util/check.h"

namespace sturgeon::cluster {

ClusterSim::ClusterSim(std::vector<NodeSpec> specs, ClusterConfig config)
    : config_(std::move(config)),
      heartbeat_(std::max<std::size_t>(specs.size(), 1),
                 config_.resilience.heartbeat),
      pool_(config_.threads) {
  ClusterBuild build = build_cluster(std::move(specs), config_, pool_);
  telemetry_ = std::move(build.telemetry);
  nodes_ = std::move(build.nodes);
  budget_w_ = build.budget_w;
  max_trace_s_ = build.max_trace_s;
  coordinator_ =
      make_coordinator(config_.coordinator, config_.coordinator_config);
}

ClusterResult ClusterSim::run(int epochs) {
  if (ran_) {
    throw std::logic_error("ClusterSim::run: one-shot; build a new sim");
  }
  ran_ = true;
  if (epochs <= 0) epochs = max_trace_s_;
  const std::size_t n = nodes_.size();

  ClusterRollup rollup(*telemetry_, budget_w_);
  coordinator_->reset();
  heartbeat_.reset();
  std::vector<NodeReport> reports(n);
  std::vector<int> last_steps(n, -1);

  // Comms mode: every cap revision and node report crosses the message
  // channel instead of shared memory. With a zero-fault network the
  // channel is reliable (same-epoch delivery, desired cap == effective
  // cap) and this loop stays bit-identical to the direct path below.
  std::unique_ptr<comms::CommsFabric> fabric;
  std::vector<bool> dead_nodes;
  if (config_.comms.enabled) {
    std::vector<NodeReport> initial(n);
    std::vector<double> idle(n);
    for (std::size_t i = 0; i < n; ++i) {
      initial[i] = nodes_[i]->report();
      idle[i] = initial[i].idle_w;
    }
    fabric = std::make_unique<comms::CommsFabric>(
        config_.comms, derive_seed(config_.seed, comms::kCommsStream),
        budget_w_, std::move(initial), std::move(idle));
    dead_nodes.assign(n, false);
  }

  for (int t = 0; t < epochs; ++t) {
    telemetry::Span span = telemetry_->tracer().start_span("cluster.epoch");
    span.attr("t_s", t);
    rollup.begin_epoch();

    // 1. Budget split (sequential, deterministic in node order). The
    // heartbeat tracker stamps liveness first: a node that stopped
    // stepping is declared dead after dead_after_epochs of silence and
    // its cap collapses to the idle floor inside the coordinator. In
    // comms mode the tracker's inputs are what the wire delivered, not
    // ground truth: stale reports freeze, lost reports look like death.
    int dead = 0;
    if (fabric) {
      fabric->collect(t);
      reports = fabric->reports();
      dead = heartbeat_.update(t, fabric->last_report_epochs(), reports,
                               fabric->lease_lapsed());
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        reports[i] = nodes_[i]->report();
        last_steps[i] = nodes_[i]->last_step_epoch();
      }
      dead = heartbeat_.update(t, last_steps, reports);
    }
    rollup.note_dead(dead);
    const std::vector<double> caps = coordinator_->assign(budget_w_, reports);
    if (fabric) {
      // The coordinator's caps are only DESIRED now; what binds each
      // node is its lease (or autonomous fallback). The budget check
      // runs over the true caps -- the safety claim under chaos.
      for (std::size_t i = 0; i < n; ++i) dead_nodes[i] = reports[i].dead();
      fabric->send_grants(caps, dead_nodes, t);
      const std::vector<double>& effective = fabric->effective_caps(t);
      double cap_sum = 0.0;
      for (const double c : effective) cap_sum += c;
      rollup.note_cap_sum(cap_sum, t);
      for (std::size_t i = 0; i < n; ++i) {
        nodes_[i]->set_power_cap(effective[i]);
      }
    } else {
      double cap_sum = 0.0;
      for (const double c : caps) cap_sum += c;
      rollup.note_cap_sum(cap_sum, t);
      for (std::size_t i = 0; i < n; ++i) nodes_[i]->set_power_cap(caps[i]);
    }

    // 2. Lockstep: every node advances one epoch, in parallel. Nodes
    // share no mutable state, so the schedule cannot change results.
    pool_.parallel_for(n, [&](std::size_t i) { nodes_[i]->step(t); });

    // 3. Fleet aggregation (sequential again), over ground-truth power:
    // a sensor fault may lie to the coordinator, but the budget verdict
    // is about watts actually drawn.
    double fleet_power = 0.0;
    for (const auto& node : nodes_) fleet_power += node->true_power_w();
    rollup.note_power(fleet_power);
    // Per-slice fleet roll-up, in node/slice order: what fraction of the
    // fleet's LS slices met QoS this epoch, and how many machines' worth
    // of BE work its BE slices sustained.
    int ls_total = 0, ls_met = 0;
    double be_norm_sum = 0.0;
    for (const auto& node : nodes_) {
      for (const SliceReport& s : node->report().slices) {
        if (s.latency_sensitive) {
          ++ls_total;
          if (s.qos_met) ++ls_met;
        } else {
          be_norm_sum += s.throughput_norm;
        }
      }
    }
    rollup.note_slices(ls_total, ls_met, be_norm_sum);

    // In comms mode a node's report only reaches the coordinator as a
    // message, sent after a completed healthy step (a crashed or hung
    // node goes silent for real -- that is what the heartbeat sees).
    if (fabric) {
      for (std::size_t i = 0; i < n; ++i) {
        if (nodes_[i]->last_step_epoch() == t) {
          fabric->send_report(static_cast<int>(i), nodes_[i]->report(), t, t);
        }
      }
    }

    span.attr("power_w", fleet_power).attr("dead_nodes", dead);
  }

  if (fabric) fabric->export_metrics(telemetry_->metrics());
  ClusterResult result = rollup.finalize(epochs, coordinator_->name(), nodes_,
                                         heartbeat_, telemetry_);
  if (fabric) fill_comms_results(*fabric, result);
  return result;
}

}  // namespace sturgeon::cluster
