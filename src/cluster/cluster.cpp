#include "cluster/cluster.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "cluster/rollup.h"
#include "util/check.h"

namespace sturgeon::cluster {

ClusterSim::ClusterSim(std::vector<NodeSpec> specs, ClusterConfig config)
    : config_(std::move(config)),
      heartbeat_(std::max<std::size_t>(specs.size(), 1),
                 config_.resilience.heartbeat),
      pool_(config_.threads) {
  ClusterBuild build = build_cluster(std::move(specs), config_, pool_);
  telemetry_ = std::move(build.telemetry);
  nodes_ = std::move(build.nodes);
  budget_w_ = build.budget_w;
  max_trace_s_ = build.max_trace_s;
  coordinator_ =
      make_coordinator(config_.coordinator, config_.coordinator_config);
}

ClusterResult ClusterSim::run(int epochs) {
  if (ran_) {
    throw std::logic_error("ClusterSim::run: one-shot; build a new sim");
  }
  ran_ = true;
  if (epochs <= 0) epochs = max_trace_s_;
  const std::size_t n = nodes_.size();

  ClusterRollup rollup(*telemetry_, budget_w_);
  coordinator_->reset();
  heartbeat_.reset();
  std::vector<NodeReport> reports(n);
  std::vector<int> last_steps(n, -1);

  for (int t = 0; t < epochs; ++t) {
    telemetry::Span span = telemetry_->tracer().start_span("cluster.epoch");
    span.attr("t_s", t);
    rollup.begin_epoch();

    // 1. Budget split (sequential, deterministic in node order). The
    // heartbeat tracker stamps liveness first: a node that stopped
    // stepping is declared dead after dead_after_epochs of silence and
    // its cap collapses to the idle floor inside the coordinator.
    for (std::size_t i = 0; i < n; ++i) {
      reports[i] = nodes_[i]->report();
      last_steps[i] = nodes_[i]->last_step_epoch();
    }
    const int dead = heartbeat_.update(t, last_steps, reports);
    rollup.note_dead(dead);
    const std::vector<double> caps = coordinator_->assign(budget_w_, reports);
    double cap_sum = 0.0;
    for (const double c : caps) cap_sum += c;
    rollup.note_cap_sum(cap_sum, t);
    for (std::size_t i = 0; i < n; ++i) nodes_[i]->set_power_cap(caps[i]);

    // 2. Lockstep: every node advances one epoch, in parallel. Nodes
    // share no mutable state, so the schedule cannot change results.
    pool_.parallel_for(n, [&](std::size_t i) { nodes_[i]->step(t); });

    // 3. Fleet aggregation (sequential again), over ground-truth power:
    // a sensor fault may lie to the coordinator, but the budget verdict
    // is about watts actually drawn.
    double fleet_power = 0.0;
    for (const auto& node : nodes_) fleet_power += node->true_power_w();
    rollup.note_power(fleet_power);
    // Per-slice fleet roll-up, in node/slice order: what fraction of the
    // fleet's LS slices met QoS this epoch, and how many machines' worth
    // of BE work its BE slices sustained.
    int ls_total = 0, ls_met = 0;
    double be_norm_sum = 0.0;
    for (const auto& node : nodes_) {
      for (const SliceReport& s : node->report().slices) {
        if (s.latency_sensitive) {
          ++ls_total;
          if (s.qos_met) ++ls_met;
        } else {
          be_norm_sum += s.throughput_norm;
        }
      }
    }
    rollup.note_slices(ls_total, ls_met, be_norm_sum);

    span.attr("power_w", fleet_power).attr("dead_nodes", dead);
  }

  return rollup.finalize(epochs, coordinator_->name(), nodes_, heartbeat_,
                         telemetry_);
}

}  // namespace sturgeon::cluster
