// Cluster power coordination: split one cluster-level power budget into
// per-node caps, re-assigned every 1 s epoch from the fleet's latest
// telemetry (Hydra-style hierarchical budgeting: cluster -> node; each
// node's own policy then keeps the node under its cap).
//
// Three strategies, in ascending awareness:
//   static-equal         every node gets budget / N, forever;
//   demand-proportional  caps follow last-epoch measured power, so idle
//                        nodes stop hoarding provisioned watts;
//   slack-harvesting     nodes with QoS headroom (slack > beta) donate a
//                        fraction of their unused cap into a pool that is
//                        granted to nodes near violation (slack < alpha)
//                        or pressed against their cap -- the cluster-level
//                        analogue of Sturgeon's own harvest loop.
// Every strategy preserves the invariant sum(caps) <= cluster budget and
// floors each cap at the node's idle power (a cap below idle is not
// actionable: the package draws uncore power regardless).
//
// assign() is pure arithmetic over the report vector in node order --
// no RNG, no time -- which is what keeps cluster runs bit-reproducible
// across thread counts.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace sturgeon::cluster {

/// What one node tells the coordinator about its last epoch.
struct NodeReport {
  double budget_w = 0.0;  ///< node's natural budget (LS-at-peak power)
  double idle_w = 0.0;    ///< package idle power; floor for any cap
  double cap_w = 0.0;     ///< cap that was in force last epoch
  double power_w = 0.0;   ///< measured package power last epoch
  double slack = 0.0;     ///< measured latency slack last epoch
  bool qos_met = true;    ///< last epoch met the QoS target
  bool valid = false;     ///< false before the node's first epoch
};

enum class CoordinatorKind { kStaticEqual, kDemandProportional, kSlackHarvest };

const char* to_string(CoordinatorKind kind);

struct CoordinatorConfig {
  double alpha = 0.10;  ///< receiver threshold: slack below => needs watts
  double beta = 0.20;   ///< donor threshold: slack above => has headroom
  /// Fraction of a donor's measured cap headroom moved into the pool per
  /// epoch (0.5 mirrors the balancer's binary-harvest granularity).
  double donate_fraction = 0.5;
  /// Headroom kept above measured power when donating, and targeted when
  /// granting, as a fraction of the node's own budget (absorbs sensor
  /// noise and one epoch of load drift).
  double headroom_margin = 0.04;
  /// No donation may push a cap below this fraction of the node budget.
  double min_cap_fraction = 0.30;
};

class PowerCoordinator {
 public:
  virtual ~PowerCoordinator() = default;

  virtual std::string name() const = 0;

  /// Per-node caps for the next epoch. `reports` is indexed by node, in
  /// the fleet's fixed order; the result has the same size and sums to
  /// at most `cluster_budget_w` (up to rounding). Deterministic.
  virtual std::vector<double> assign(
      double cluster_budget_w, const std::vector<NodeReport>& reports) = 0;

  /// Forget inter-epoch state (new run). Default: stateless.
  virtual void reset() {}
};

std::unique_ptr<PowerCoordinator> make_coordinator(
    CoordinatorKind kind, CoordinatorConfig config = {});

}  // namespace sturgeon::cluster
