// Cluster power coordination: split one cluster-level power budget into
// per-node caps, re-assigned every 1 s epoch from the fleet's latest
// telemetry (Hydra-style hierarchical budgeting: cluster -> node; each
// node's own policy then keeps the node under its cap).
//
// Three strategies, in ascending awareness:
//   static-equal         every node gets budget / N, forever;
//   demand-proportional  caps follow last-epoch measured power, so idle
//                        nodes stop hoarding provisioned watts;
//   slack-harvesting     nodes with QoS headroom (slack > beta) donate a
//                        fraction of their unused cap into a pool that is
//                        granted to nodes near violation (slack < alpha)
//                        or pressed against their cap -- the cluster-level
//                        analogue of Sturgeon's own harvest loop.
// Every strategy preserves the invariant sum(caps) <= cluster budget and
// floors each cap at the node's idle power (a cap below idle is not
// actionable: the package draws uncore power regardless).
//
// assign() is pure arithmetic over the report vector in node order --
// no RNG, no time -- which is what keeps cluster runs bit-reproducible
// across thread counts.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace sturgeon::cluster {

/// A report's standing with the coordinator. The old single `valid`
/// bool conflated two very different situations: a node that has not
/// reported YET (first epoch: budget conservatively, it is about to
/// draw power) and a node that STOPPED reporting (crashed: budgeting
/// watts to it wastes them, and worse, hides headroom from the live
/// nodes). Strategies treat them oppositely, so the distinction is an
/// explicit enum stamped by the HeartbeatTracker.
enum class Liveness {
  kNeverReported,  ///< no epoch completed yet (startup, not failure)
  kAlive,          ///< reporting normally
  kDead,           ///< missed enough consecutive epochs to be declared dead
};

const char* to_string(Liveness liveness);

/// Per-slice observation inside a NodeReport: how each co-scheduled
/// workload fared last epoch. For today's pair nodes there are two
/// entries (LS then BE); K-way nodes report one per workload.
struct SliceReport {
  bool latency_sensitive = false;
  double slack = 0.0;            ///< LS only; 0 for BE slices
  bool qos_met = true;           ///< LS only; always true for BE slices
  double throughput_norm = 0.0;  ///< BE only; 0 for LS slices
};

/// What one node tells the coordinator about its last epoch.
struct NodeReport {
  double budget_w = 0.0;  ///< node's natural budget (LS-at-peak power)
  double idle_w = 0.0;    ///< package idle power; floor for any cap
  double cap_w = 0.0;     ///< cap that was in force last epoch
  double power_w = 0.0;   ///< measured package power last epoch
  double slack = 0.0;     ///< measured latency slack last epoch
  bool qos_met = true;    ///< last epoch met the QoS target
  Liveness liveness = Liveness::kNeverReported;
  /// First report after a dead spell (stamped by the HeartbeatTracker):
  /// the node's cap_w/power_w predate the outage, so stateful
  /// strategies re-base instead of trusting them.
  bool rejoined = false;
  /// Per-workload roll-up (LS then BE on pair nodes; one entry per
  /// workload on K-way nodes). Empty until the node's first full epoch.
  std::vector<SliceReport> slices;

  bool alive() const { return liveness == Liveness::kAlive; }
  bool dead() const { return liveness == Liveness::kDead; }
};

enum class CoordinatorKind { kStaticEqual, kDemandProportional, kSlackHarvest };

const char* to_string(CoordinatorKind kind);

struct CoordinatorConfig {
  double alpha = 0.10;  ///< receiver threshold: slack below => needs watts
  double beta = 0.20;   ///< donor threshold: slack above => has headroom
  /// Fraction of a donor's measured cap headroom moved into the pool per
  /// epoch (0.5 mirrors the balancer's binary-harvest granularity).
  double donate_fraction = 0.5;
  /// Headroom kept above measured power when donating, and targeted when
  /// granting, as a fraction of the node's own budget (absorbs sensor
  /// noise and one epoch of load drift).
  double headroom_margin = 0.04;
  /// No donation may push a cap below this fraction of the node budget.
  double min_cap_fraction = 0.30;
};

class PowerCoordinator {
 public:
  virtual ~PowerCoordinator() = default;

  virtual std::string name() const = 0;

  /// Per-node caps for the next epoch. `reports` is indexed by node, in
  /// the fleet's fixed order; the result has the same size and sums to
  /// at most `cluster_budget_w` (up to rounding). Deterministic.
  virtual std::vector<double> assign(
      double cluster_budget_w, const std::vector<NodeReport>& reports) = 0;

  /// Forget inter-epoch state (new run). Default: stateless.
  virtual void reset() {}
};

std::unique_ptr<PowerCoordinator> make_coordinator(
    CoordinatorKind kind, CoordinatorConfig config = {});

struct HeartbeatConfig {
  /// Missed consecutive epochs before a silent node is declared dead.
  /// Short enough that a crashed node's watts return to the pool within
  /// a few control intervals, long enough that one slow epoch does not
  /// trigger a spurious reclamation.
  int dead_after_epochs = 3;
};

/// Coordinator-side liveness bookkeeping: watches which nodes actually
/// completed their lockstep step and stamps Liveness/rejoined onto the
/// report vector before each budget split. Dead nodes' caps collapse to
/// their idle floor (the package draws uncore power even crashed), the
/// freed watts rejoin the pool, and a rejoin re-grants them. Completed
/// outage lengths (declared-dead to rejoin) feed recovery.mttr_epochs.
class HeartbeatTracker {
 public:
  explicit HeartbeatTracker(std::size_t nodes, HeartbeatConfig config = {});

  /// Classify the fleet before the epoch-`t` budget split.
  /// `last_step_epoch[i]` is the last epoch node i completed (-1 =
  /// never). Stamps liveness/rejoined on `reports`; returns the number
  /// of currently dead nodes.
  ///
  /// `lease_lapsed` (empty = none) marks nodes whose cap lease expired
  /// since their previous message (comms mode): an alive node that
  /// rejoins under an expired lease gets the same one-shot `rejoined`
  /// stamp as a dead->alive transition, so stateful strategies re-base
  /// instead of leaking a stale slack-harvest grant into the new lease
  /// term. No outage is recorded (the node never went silent).
  int update(int t, const std::vector<int>& last_step_epoch,
             std::vector<NodeReport>& reports,
             const std::vector<bool>& lease_lapsed = {});

  int currently_dead() const { return currently_dead_; }
  /// Epochs from declared-dead to rejoin, one entry per completed
  /// outage (fleet-wide, in detection order).
  const std::vector<int>& completed_outages() const {
    return completed_outages_;
  }

  void reset();

 private:
  HeartbeatConfig config_;
  std::vector<Liveness> state_;
  std::vector<int> declared_dead_epoch_;
  std::vector<int> completed_outages_;
  int currently_dead_ = 0;
};

}  // namespace sturgeon::cluster
