#include "cluster/node.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "baselines/parties.h"
#include "baselines/static_policy.h"
#include "core/controller.h"
#include "exp/model_registry.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/check.h"

namespace sturgeon::cluster {

namespace {

std::unique_ptr<core::Policy> default_policy(
    const NodeSpec& spec, const sim::SimulatedServer& server) {
  const MachineSpec& m = server.machine();
  switch (spec.policy) {
    case PolicyKind::kSturgeon: {
      const auto predictor =
          exp::predictor_for(spec.ls, spec.be, spec.trainer);
      return std::make_unique<core::SturgeonController>(
          predictor, spec.ls.qos_target_ms, server.power_budget_w());
    }
    case PolicyKind::kParties: {
      baselines::PartiesOptions options;
      options.power_budget_w = server.power_budget_w();
      return std::make_unique<baselines::PartiesController>(
          m, spec.ls.qos_target_ms, options);
    }
    case PolicyKind::kStatic: {
      // Canonical 60/40 split, BE at a mid P-state: the "no management"
      // configuration an operator might hand-pick.
      Partition p;
      p.ls = {std::max(1, m.num_cores * 3 / 5), m.max_freq_level(),
              std::max(1, m.llc_ways * 3 / 5)};
      p.be = complement_slice(m, p.ls, m.max_freq_level() / 2);
      return std::make_unique<baselines::StaticPolicy>(p);
    }
  }
  throw std::invalid_argument("ClusterNode: unknown policy kind");
}

}  // namespace

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kSturgeon: return "sturgeon";
    case PolicyKind::kParties: return "parties";
    case PolicyKind::kStatic: return "static";
  }
  return "unknown";
}

ClusterNode::ClusterNode(int id, NodeSpec spec, std::uint64_t seed,
                         std::shared_ptr<telemetry::TelemetryContext> telemetry,
                         GovernorConfig governor)
    : id_(id),
      spec_(std::move(spec)),
      server_(spec_.ls, spec_.be, seed, spec_.server),
      backend_(server_),
      enforcer_(server_.machine(), backend_.cpuset(), backend_.cat(),
                backend_.freq()),
      telemetry_(std::move(telemetry)),
      metrics_(server_.power_budget_w()),
      governor_(governor) {
  STURGEON_CHECK(telemetry_ != nullptr, "ClusterNode: null telemetry context");
  budget_w_ = server_.power_budget_w();
  idle_w_ = server_.power_model().idle_power_w();
  cap_w_ = budget_w_;  // uncapped until the coordinator says otherwise

  policy_ = spec_.make_policy ? spec_.make_policy(server_)
                              : default_policy(spec_, server_);
  STURGEON_CHECK(policy_ != nullptr, "ClusterNode: policy factory returned "
                                     "null");
  policy_->attach_telemetry(telemetry_);
  policy_->reset();

  auto& registry = telemetry_->metrics();
  p95_hist_ = &registry.histogram(
      "epoch.p95_ms", telemetry::Histogram::exponential_bounds(0.125, 2.0, 16));
  power_hist_ = &registry.histogram(
      "epoch.power_w", telemetry::Histogram::linear_bounds(0.0, 10.0, 40));
  slack_hist_ = &registry.histogram(
      "epoch.slack", telemetry::Histogram::linear_bounds(-1.0, 0.1, 21));
  epochs_counter_ = &registry.counter("run.epochs");
  violations_counter_ = &registry.counter("run.qos_violation_intervals");
  changes_counter_ = &registry.counter("run.partition_changes");
  throttle_counter_ = &registry.counter("node.governor.throttled_epochs");
  registry.gauge("node.power_budget_w").set(budget_w_);

  report_ = NodeReport{budget_w_, idle_w_, cap_w_, 0.0, 0.0, true, false};
}

void ClusterNode::set_power_cap(double watts) {
  STURGEON_CHECK(watts > 0.0, "ClusterNode::set_power_cap: " << watts);
  cap_w_ = watts;
  policy_->set_power_cap(watts);
  telemetry_->metrics().gauge("node.power_cap_w").set(watts);

  // Feed-forward clamp before the first measurement: the reactive loop
  // only sees 1 s samples, but a real node's RAPL would clamp frequency
  // mid-interval. Size the startup throttle from the node's own power
  // model (worst case: both slices fully busy) so the initial all-to-LS
  // partition cannot blow through the very first cap.
  if (governor_.enabled && epochs_run_ == 0) {
    const auto& model = server_.power_model();
    const int max_throttle = 2 * server_.machine().max_freq_level();
    const double bw = spec_.ls.bw_gbps_at_peak + spec_.be.bw_gbps_max;
    throttle_ = 0;
    while (throttle_ < max_throttle) {
      const Partition p = throttled(enforcer_.current());
      const double estimate = model.package_power_w(
          p.ls, 1.0, spec_.ls.power_activity, p.be, 1.0,
          spec_.be.power_activity, bw);
      if (estimate <= cap_w_) break;
      ++throttle_;
    }
    const Partition target = throttled(enforcer_.current());
    if (!(target == enforcer_.current())) enforcer_.apply(target);
  }
}

Partition ClusterNode::throttled(Partition p) const {
  int remaining = throttle_;
  if (remaining <= 0) return p;
  if (p.be.cores > 0) {
    const int d = std::min(remaining, p.be.freq_level);
    p.be.freq_level -= d;
    remaining -= d;
  }
  p.ls.freq_level -= std::min(remaining, p.ls.freq_level);
  return p;
}

void ClusterNode::step(int t) {
  auto& tracer = telemetry_->tracer();
  telemetry::Span epoch = tracer.start_span("epoch");
  epoch.attr("t_s", t).attr("node", id_);
  epochs_counter_->inc();

  sim::ServerTelemetry sample;
  {
    telemetry::Span span = tracer.start_span("observe");
    sample = server_.step(spec_.trace.at(t));
    backend_.observe(sample);
    metrics_.observe(sample);
    if (telemetry_->csv_enabled()) {
      telemetry_->recorder().record(t, sample, enforcer_.current());
    }
    span.attr("qps", sample.qps_real)
        .attr("p95_ms", sample.ls.p95_ms)
        .attr("power_w", sample.power_w);
  }
  const double slack =
      telemetry::latency_slack(sample.ls.p95_ms, sample.qos_target_ms);
  p95_hist_->observe(sample.ls.p95_ms);
  power_hist_->observe(sample.power_w);
  slack_hist_->observe(slack);

  // Reactive cap enforcement (RAPL analogue): confiscate one frequency
  // level while measured power sits above the cap, give one back once it
  // falls comfortably below. Runs on the epoch's measurement, before the
  // partition for the next epoch is enforced.
  if (governor_.enabled) {
    const int max_throttle = 2 * server_.machine().max_freq_level();
    if (sample.power_w > cap_w_) {
      throttle_ = std::min(throttle_ + 1, max_throttle);
    } else if (throttle_ > 0 &&
               sample.power_w <= governor_.relax_margin * cap_w_) {
      --throttle_;
    }
  }

  Partition next;
  {
    telemetry::Span span = tracer.start_span("decide");
    next = policy_->decide(sample, enforcer_.current());
    span.attr("action", policy_->last_decision().action);
  }
  const Partition target = throttled(next);
  if (!(target == next)) {
    ++throttled_epochs_;
    throttle_counter_->inc();
  }

  const bool changed = !(target == enforcer_.current());
  if (changed) {
    telemetry::Span span = tracer.start_span("enforce");
    enforcer_.apply(target);
    changes_counter_->inc();
    span.attr("partition", target.to_string(server_.machine()));
  }
  epoch.attr("p95_ms", sample.ls.p95_ms)
      .attr("power_w", sample.power_w)
      .attr("cap_w", cap_w_)
      .attr("slack", slack)
      .attr("action", policy_->last_decision().action)
      .attr("throttle", throttle_);

  if (!sample.qos_met()) violations_counter_->inc();
  ++epochs_run_;
  cap_w_sum_ += cap_w_;
  max_power_ratio_ = std::max(max_power_ratio_, sample.power_w / budget_w_);
  report_ = NodeReport{budget_w_, idle_w_,        cap_w_, sample.power_w,
                       slack,     sample.qos_met(), true};
}

NodeResult ClusterNode::result() const {
  NodeResult r;
  r.node = id_;
  r.policy = policy_->describe();
  r.ls = spec_.ls.name;
  r.be = spec_.be.name;
  r.epochs = epochs_run_;
  r.total_completed = metrics_.total_completed();
  r.total_violations = metrics_.total_violations();
  r.qos_guarantee_rate = metrics_.qos_guarantee_rate();
  r.interval_qos_rate = metrics_.interval_qos_rate();
  r.mean_be_throughput_norm = metrics_.mean_be_throughput_norm();
  r.budget_w = budget_w_;
  r.mean_cap_w = epochs_run_ > 0
                     ? cap_w_sum_ / static_cast<double>(epochs_run_)
                     : cap_w_;
  r.max_power_ratio = max_power_ratio_;
  r.throttled_epochs = throttled_epochs_;
  r.telemetry = telemetry_;
  return r;
}

}  // namespace sturgeon::cluster
