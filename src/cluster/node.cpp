#include "cluster/node.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "baselines/parties.h"
#include "baselines/static_policy.h"
#include "core/controller.h"
#include "exp/model_registry.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/check.h"
#include "util/rng.h"

namespace sturgeon::cluster {

namespace {

std::unique_ptr<core::Policy> default_policy(
    const NodeSpec& spec, const sim::SimulatedServer& server) {
  const MachineSpec& m = server.machine();
  switch (spec.policy) {
    case PolicyKind::kSturgeon: {
      const auto predictor =
          exp::predictor_for(spec.ls, spec.be, spec.trainer);
      return std::make_unique<core::SturgeonController>(
          predictor, spec.ls.qos_target_ms, server.power_budget_w());
    }
    case PolicyKind::kParties: {
      baselines::PartiesOptions options;
      options.power_budget_w = server.power_budget_w();
      return std::make_unique<baselines::PartiesController>(
          m, spec.ls.qos_target_ms, options);
    }
    case PolicyKind::kStatic: {
      // Canonical 60/40 split, BE at a mid P-state: the "no management"
      // configuration an operator might hand-pick.
      Partition p;
      p.ls = {std::max(1, m.num_cores * 3 / 5), m.max_freq_level(),
              std::max(1, m.llc_ways * 3 / 5)};
      p.be = Allocation::complement(m, p.ls, m.max_freq_level() / 2);
      return std::make_unique<baselines::StaticPolicy>(p);
    }
  }
  throw std::invalid_argument("ClusterNode: unknown policy kind");
}

std::unique_ptr<fault::FaultInjector> make_injector(
    const fault::FaultConfig& faults, std::uint64_t node_seed) {
  if (!faults.enabled) return nullptr;
  return std::make_unique<fault::FaultInjector>(
      faults, derive_seed(node_seed, fault::kFaultStream));
}

}  // namespace

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kSturgeon: return "sturgeon";
    case PolicyKind::kParties: return "parties";
    case PolicyKind::kStatic: return "static";
  }
  return "unknown";
}

ClusterNode::ClusterNode(int id, NodeSpec spec, std::uint64_t seed,
                         std::shared_ptr<telemetry::TelemetryContext> telemetry,
                         GovernorConfig governor, ResilienceConfig resilience,
                         fault::FaultConfig faults)
    : id_(id),
      spec_(std::move(spec)),
      resilience_(resilience),
      server_(spec_.ls, spec_.be, seed, spec_.server),
      backend_(server_),
      injector_(make_injector(faults, seed)),
      faulty_cpuset_(backend_.cpuset(), injector_.get()),
      faulty_cat_(backend_.cat(), injector_.get()),
      faulty_freq_(backend_.freq(), injector_.get()),
      enforcer_(server_.machine(), faulty_cpuset_, faulty_cat_, faulty_freq_),
      retry_(enforcer_, resilience_.retry,
             derive_seed(seed, fault::kRetryJitterStream)),
      watchdog_(resilience_.watchdog),
      safe_partition_(Partition::all_to_ls(server_.machine())),
      telemetry_(std::move(telemetry)),
      metrics_(server_.power_budget_w()),
      governor_(governor) {
  STURGEON_CHECK(telemetry_ != nullptr, "ClusterNode: null telemetry context");
  budget_w_ = server_.power_budget_w();
  idle_w_ = server_.power_model().idle_power_w();
  cap_w_ = budget_w_;  // uncapped until the coordinator says otherwise

  // Physical sensor bounds: a package cannot draw negative watts or
  // more than its fully-busy maximum (generous 1.25x margin so honest
  // transients are never clamped); a p95 beyond 100x the QoS target
  // carries no more information than "violating badly".
  fault::SanitizerConfig power_bounds;
  power_bounds.lo = 0.0;
  power_bounds.hi = 1.25 * server_.power_model().max_package_power_w();
  power_sanitizer_ = fault::SignalSanitizer(power_bounds);
  fault::SanitizerConfig latency_bounds;
  latency_bounds.lo = 0.0;
  latency_bounds.hi = 100.0 * spec_.ls.qos_target_ms;
  latency_sanitizer_ = fault::SignalSanitizer(latency_bounds);

  policy_ = spec_.make_policy ? spec_.make_policy(server_)
                              : default_policy(spec_, server_);
  STURGEON_CHECK(policy_ != nullptr, "ClusterNode: policy factory returned "
                                     "null");
  policy_->attach_telemetry(telemetry_);
  policy_->reset();

  auto& registry = telemetry_->metrics();
  p95_hist_ = &registry.histogram(
      "epoch.p95_ms", telemetry::Histogram::exponential_bounds(0.125, 2.0, 16));
  power_hist_ = &registry.histogram(
      "epoch.power_w", telemetry::Histogram::linear_bounds(0.0, 10.0, 40));
  slack_hist_ = &registry.histogram(
      "epoch.slack", telemetry::Histogram::linear_bounds(-1.0, 0.1, 21));
  epochs_counter_ = &registry.counter("run.epochs");
  violations_counter_ = &registry.counter("run.qos_violation_intervals");
  changes_counter_ = &registry.counter("run.partition_changes");
  throttle_counter_ = &registry.counter("node.governor.throttled_epochs");
  safe_mode_counter_ = &registry.counter("fault.watchdog.safe_mode_epochs");
  cap_unsupported_counter_ = &registry.counter("policy.cap.unsupported");
  degraded_gauge_ = &registry.gauge("node.degraded");
  registry.gauge("node.power_budget_w").set(budget_w_);
  if (injector_ != nullptr) injector_->bind(registry);
  if (resilience_.sanitize_sensors) {
    power_sanitizer_.bind(registry, "fault.sensor.power");
    latency_sanitizer_.bind(registry, "fault.sensor.latency");
  }
  retry_.attach_telemetry(telemetry_);

  report_ = NodeReport{budget_w_, idle_w_, cap_w_, 0.0, 0.0, true,
                       Liveness::kNeverReported, false, {}};
}

void ClusterNode::push_cap_to_policy(double watts) {
  if (policy_->supports_power_cap()) {
    policy_->set_power_cap(watts);
  } else {
    // The cap still binds through the reactive governor, but the policy
    // itself will keep proposing configurations sized for its original
    // budget -- make that visible instead of silently dropping the cap.
    cap_unsupported_counter_->inc();
  }
}

void ClusterNode::set_power_cap(double watts) {
  STURGEON_CHECK(watts > 0.0, "ClusterNode::set_power_cap: " << watts);
  cap_w_ = watts;
  push_cap_to_policy(watts);
  telemetry_->metrics().gauge("node.power_cap_w").set(watts);

  // Feed-forward clamp before the first measurement: the reactive loop
  // only sees 1 s samples, but a real node's RAPL would clamp frequency
  // mid-interval. Size the startup throttle from the node's own power
  // model (worst case: both slices fully busy) so the initial all-to-LS
  // partition cannot blow through the very first cap.
  if (governor_.enabled && epochs_run_ == 0) {
    const auto& model = server_.power_model();
    const int max_throttle = 2 * server_.machine().max_freq_level();
    const double bw = spec_.ls.bw_gbps_at_peak + spec_.be.bw_gbps_max;
    throttle_ = 0;
    while (throttle_ < max_throttle) {
      const Partition p = throttled(retry_.current());
      const double estimate = model.package_power_w(
          p.ls, 1.0, spec_.ls.power_activity, p.be, 1.0,
          spec_.be.power_activity, bw);
      if (estimate <= cap_w_) break;
      ++throttle_;
    }
    const Partition target = throttled(retry_.current());
    if (!(target == retry_.current())) retry_.apply(target);
  }
}

Partition ClusterNode::throttled(Partition p) const {
  int remaining = throttle_;
  if (remaining <= 0) return p;
  if (p.be.cores > 0) {
    const int d = std::min(remaining, p.be.freq_level);
    p.be.freq_level -= d;
    remaining -= d;
  }
  p.ls.freq_level -= std::min(remaining, p.ls.freq_level);
  return p;
}

void ClusterNode::step_down() {
  // Crashed: the machine is off. The lockstep epoch still elapses (the
  // validator's epochs-equality contract holds), but nothing is served,
  // no power is drawn, and the heartbeat stays silent so the
  // coordinator's tracker can declare the node dead.
  ++epochs_run_;
  ++epochs_down_;
  cap_w_sum_ += cap_w_;
  true_power_w_ = 0.0;
  degraded_gauge_->set(1.0);
}

void ClusterNode::step_hung(int t) {
  // Hung: the serving path is alive under the last enforced partition,
  // but the control loop is stalled -- no observation, no decision, no
  // report, no heartbeat. Users still experience the served quality, so
  // the ground-truth metrics accumulator keeps recording.
  const sim::ServerTelemetry sample = server_.step(spec_.trace.at(t));
  metrics_.observe(sample);
  true_power_w_ = sample.power_w;
  ++epochs_run_;
  ++epochs_hung_;
  cap_w_sum_ += cap_w_;
  max_power_ratio_ = std::max(max_power_ratio_, sample.power_w / budget_w_);
  degraded_gauge_->set(1.0);
}

void ClusterNode::step(int t) {
  if (injector_ != nullptr) {
    injector_->begin_epoch(t);
    if (injector_->node_down()) {
      step_down();
      return;
    }
    if (injector_->rebooted_this_epoch()) {
      // Reboot after a crash: the server restarts cold (queues and
      // interference state cleared) and the control plane
      // re-initializes; the isolation hardware keeps its last
      // programmed state, like BIOS-persisted settings.
      server_.reset();
      policy_->reset();
      push_cap_to_policy(cap_w_);
      throttle_ = 0;
    }
    if (injector_->node_hung()) {
      step_hung(t);
      return;
    }
  }

  auto& tracer = telemetry_->tracer();
  telemetry::Span epoch = tracer.start_span("epoch");
  epoch.attr("t_s", t).attr("node", id_);
  epochs_counter_->inc();

  sim::ServerTelemetry sample;   // ground truth
  sim::ServerTelemetry observed; // what the monitor path sees
  {
    telemetry::Span span = tracer.start_span("observe");
    sample = server_.step(spec_.trace.at(t));
    true_power_w_ = sample.power_w;
    observed = sample;
    if (injector_ != nullptr) {
      // Sensor faults fire at the server/monitor boundary: everything
      // downstream (governor, policy, watchdog, coordinator report)
      // sees the corrupted stream; only the evaluation metrics keep the
      // ground truth.
      observed.power_w = injector_->corrupt_power_w(observed.power_w);
      observed.ls.p95_ms = injector_->corrupt_latency_ms(observed.ls.p95_ms);
    }
    if (resilience_.sanitize_sensors) {
      observed.power_w = power_sanitizer_.sanitize(observed.power_w);
      observed.ls.p95_ms = latency_sanitizer_.sanitize(observed.ls.p95_ms);
    }
    backend_.observe(observed);
    metrics_.observe(sample);
    if (telemetry_->csv_enabled()) {
      telemetry_->recorder().record(t, observed, retry_.current());
    }
    span.attr("qps", sample.qps_real)
        .attr("p95_ms", observed.ls.p95_ms)
        .attr("power_w", observed.power_w);
  }
  const double slack =
      telemetry::latency_slack(observed.ls.p95_ms, observed.qos_target_ms);
  if (std::isfinite(observed.ls.p95_ms)) p95_hist_->observe(observed.ls.p95_ms);
  if (std::isfinite(observed.power_w)) power_hist_->observe(observed.power_w);
  if (std::isfinite(slack)) slack_hist_->observe(slack);

  // Reactive cap enforcement (RAPL analogue): confiscate one frequency
  // level while measured power sits above the cap, give one back once it
  // falls comfortably below. Runs on the epoch's measurement, before the
  // partition for the next epoch is enforced.
  if (governor_.enabled) {
    const int max_throttle = 2 * server_.machine().max_freq_level();
    if (observed.power_w > cap_w_) {
      throttle_ = std::min(throttle_ + 1, max_throttle);
    } else if (throttle_ > 0 &&
               observed.power_w <= governor_.relax_margin * cap_w_) {
      --throttle_;
    }
  }

  // Watchdog: consecutive QoS violations or cap overshoots (as the
  // monitor sees them) trip the node into the known-safe all-to-LS
  // partition; hysteresis on the way out prevents flapping.
  bool safe_mode = false;
  if (resilience_.watchdog.enabled) {
    const bool qos_violation = !observed.qos_met();
    const bool cap_overshoot =
        observed.power_w >
        cap_w_ * (1.0 + resilience_.watchdog.cap_overshoot_tolerance);
    safe_mode = watchdog_.observe(qos_violation, cap_overshoot);
    if (safe_mode) {
      ++safe_mode_epochs_;
      safe_mode_counter_->inc();
    }
  }
  degraded_gauge_->set(safe_mode ? 1.0 : 0.0);

  Partition next;
  std::string action;
  if (safe_mode) {
    next = safe_partition_;
    action = core::to_string(core::Action::kSafeMode);
  } else if (!be_active_) {
    // No BE jobs on the node: hold the all-to-LS partition without
    // consulting the policy. The LS service keeps its whole machine;
    // the policy resumes (warm-started from this partition) when the
    // churn engine lands the next job.
    next = safe_partition_;
    action = "be-idle";
  } else {
    telemetry::Span span = tracer.start_span("decide");
    sim::ServerTelemetry decide_sample = observed;
    if (injector_ != nullptr) {
      // Model fault: the policy's inputs drift from what the monitor
      // recorded, inflating prediction error until the balancer
      // compensates.
      const double inflation = injector_->model_error_inflation();
      if (inflation != 1.0) {
        decide_sample.ls.p95_ms *= inflation;
        decide_sample.be_throughput /= inflation;
        decide_sample.be_throughput_norm /= inflation;
      }
    }
    if (spec_.route_via_allocation) {
      next = policy_->decide(decide_sample,
                             Allocation::of(retry_.current()))
                 .to_partition();
    } else {
      next = policy_->decide(decide_sample, retry_.current());
    }
    action = policy_->last_decision().action_string();
    span.attr("action", action);
  }
  const Partition target = throttled(next);
  if (!(target == next)) {
    ++throttled_epochs_;
    throttle_counter_->inc();
  }

  const bool changed = !(target == retry_.current());
  if (changed) {
    telemetry::Span span = tracer.start_span("enforce");
    const bool applied = retry_.apply(target);
    changes_counter_->inc();
    span.attr("partition", target.to_string(server_.machine()))
        .attr("applied", applied);
  }
  epoch.attr("p95_ms", observed.ls.p95_ms)
      .attr("power_w", observed.power_w)
      .attr("cap_w", cap_w_)
      .attr("slack", slack)
      .attr("action", action)
      .attr("throttle", throttle_);

  if (!sample.qos_met()) violations_counter_->inc();
  ++epochs_run_;
  last_step_epoch_ = t;
  cap_w_sum_ += cap_w_;
  max_power_ratio_ = std::max(max_power_ratio_, sample.power_w / budget_w_);
  report_ = NodeReport{budget_w_, idle_w_,
                       cap_w_,    observed.power_w,
                       slack,     observed.qos_met(),
                       Liveness::kAlive, false, {}};
  report_.slices.reserve(observed.slices.size());
  for (const auto& sv : observed.slices) {
    SliceReport sr;
    sr.latency_sensitive = sv.kind == WorkloadKind::kLatencySensitive;
    if (sr.latency_sensitive) {
      // Monitor-path values, consistent with the scalar roll-up (sensor
      // faults and sanitization touch the roll-up scalars).
      sr.slack = slack;
      sr.qos_met = observed.qos_met();
    } else {
      sr.throughput_norm = sv.throughput_norm;
    }
    report_.slices.push_back(sr);
  }
}

NodeResult ClusterNode::result() const {
  NodeResult r;
  r.node = id_;
  r.policy = policy_->describe();
  r.ls = spec_.ls.name;
  r.be = spec_.be.name;
  r.epochs = epochs_run_;
  r.total_completed = metrics_.total_completed();
  r.total_violations = metrics_.total_violations();
  r.qos_guarantee_rate = metrics_.qos_guarantee_rate();
  r.interval_qos_rate = metrics_.interval_qos_rate();
  r.mean_be_throughput_norm = metrics_.mean_be_throughput_norm();
  r.budget_w = budget_w_;
  r.mean_cap_w = epochs_run_ > 0
                     ? cap_w_sum_ / static_cast<double>(epochs_run_)
                     : cap_w_;
  r.max_power_ratio = max_power_ratio_;
  r.throttled_epochs = throttled_epochs_;
  r.epochs_down = epochs_down_;
  r.epochs_hung = epochs_hung_;
  r.safe_mode_epochs = safe_mode_epochs_;
  r.watchdog_trips = watchdog_.trips();
  r.safe_mode_episodes = watchdog_.completed_episodes();
  if (injector_ != nullptr) {
    const auto& c = injector_->counts();
    r.faults_injected = c.sensor_dropouts + c.sensor_stale + c.sensor_spikes +
                        c.tool_call_failures + c.down_epochs + c.hung_epochs +
                        c.model_epochs;
  }
  r.sensor_rejected = power_sanitizer_.counters().total_interventions() +
                      latency_sanitizer_.counters().total_interventions();
  r.actuator_retries = retry_.stats().retries;
  r.actuator_gave_up = retry_.stats().gave_up;
  r.telemetry = telemetry_;
  return r;
}

}  // namespace sturgeon::cluster
