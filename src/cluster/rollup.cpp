#include "cluster/rollup.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "exp/model_registry.h"
#include "util/check.h"
#include "util/rng.h"

namespace sturgeon::cluster {

namespace {

/// Machine power capacity proxy for placement: the whole package busy at
/// top frequency with unit activity. Machine-only (no workload term), so
/// heterogeneous fleets rank by hardware size.
double machine_capacity_w(const sim::ServerConfig& server) {
  return sim::PowerModel(server.machine, server.power).max_package_power_w();
}

/// p95 of a sample of episode lengths (0 for an empty sample).
double p95_epochs(std::vector<int> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t idx =
      (samples.size() * 95 + 99) / 100;  // ceil(0.95 n), 1-based
  return static_cast<double>(samples[std::min(idx, samples.size()) - 1]);
}

}  // namespace

void fill_comms_results(const comms::CommsFabric& fabric,
                        ClusterResult& result) {
  const comms::ChannelStats& s = fabric.stats();
  result.comms_sent = s.sent;
  result.comms_dropped = s.dropped;
  result.comms_delayed = s.delayed;
  result.comms_duplicated = s.duplicated;
  const comms::ChannelStats& g = fabric.grant_stats();
  result.comms_grants_sent = g.sent;
  result.comms_grants_delivered = g.delivered;
  result.comms_grants_dropped = g.dropped;
  result.comms_grants_in_flight = g.in_flight();
  result.comms_lease_renewals = fabric.lease_renewals();
  result.comms_lease_expiries = fabric.lease_expiries();
  result.comms_autonomy_epochs = fabric.autonomy_epochs();
  for (std::size_t i = 0; i < result.node_results.size(); ++i) {
    const comms::LeaseClient& client = fabric.client(static_cast<int>(i));
    result.node_results[i].lease_renewals = client.renewals();
    result.node_results[i].lease_expiries = client.expiries();
    result.node_results[i].autonomy_epochs = client.autonomy_epochs();
    result.node_results[i].last_autonomy_epoch = client.last_autonomy_epoch();
  }
}

ClusterBuild build_cluster(std::vector<NodeSpec> specs,
                           const ClusterConfig& config, ThreadPool& pool) {
  if (specs.empty()) {
    throw std::invalid_argument("ClusterSim: empty fleet");
  }
  if (!(config.oversubscription > 0.0 && config.oversubscription <= 1.0)) {
    throw std::invalid_argument("ClusterSim: oversubscription must be (0,1]");
  }
  const std::size_t n = specs.size();

  ClusterBuild build;
  build.telemetry =
      config.telemetry
          ? config.telemetry
          : telemetry::TelemetryContext::make(specs[0].server.machine);

  // Placement: map workload w (pair + trace + policy) onto machine i.
  std::vector<double> demand(n), capacity(n);
  for (std::size_t i = 0; i < n; ++i) {
    demand[i] = estimate_pair_power_w(specs[i].ls, specs[i].be,
                                      specs[i].server);
    capacity[i] = machine_capacity_w(specs[i].server);
  }
  const std::vector<std::size_t> assignment =
      place(config.placement, demand, capacity);

  // Warm every distinct Sturgeon model before any node constructs its
  // policy: parallel across distinct services, train-once per service.
  std::vector<std::pair<const LsProfile*, const BeProfile*>> to_warm;
  const core::TrainerConfig* trainer = nullptr;
  for (const auto& spec : specs) {
    if (spec.policy == PolicyKind::kSturgeon && !spec.make_policy) {
      to_warm.emplace_back(&spec.ls, &spec.be);
      trainer = &spec.trainer;
    }
  }
  if (!to_warm.empty()) {
    exp::warm_models(to_warm, &pool, *trainer);
  }

  build.nodes.reserve(n);
  double budget_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    NodeSpec spec = specs[assignment[i]];
    spec.server = specs[i].server;  // workload moves, the machine stays
    if (config.route_via_allocation) spec.route_via_allocation = true;
    build.max_trace_s = std::max(build.max_trace_s, spec.trace.duration_s());
    auto ctx = telemetry::TelemetryContext::make(
        spec.server.machine, telemetry::TelemetryConfig{
                                 config.node_tracing, false, "", "",
                                 build.telemetry->config().clock});
    build.nodes.push_back(std::make_unique<ClusterNode>(
        static_cast<int>(i), std::move(spec),
        derive_seed(config.seed, static_cast<std::uint64_t>(i)),
        std::move(ctx), config.governor, config.resilience,
        config.faults.for_node(static_cast<int>(i))));
    budget_sum += build.nodes.back()->budget_w();
  }

  build.budget_w = config.power_budget_w > 0.0
                       ? config.power_budget_w
                       : config.oversubscription * budget_sum;
  double idle_sum = 0.0;
  for (const auto& node : build.nodes) idle_sum += node->idle_w();
  STURGEON_CHECK(build.budget_w > idle_sum,
                 "ClusterSim: cluster budget " << build.budget_w
                     << " W below fleet idle power " << idle_sum << " W");

  auto& registry = build.telemetry->metrics();
  registry.gauge("cluster.nodes").set(static_cast<double>(n));
  registry.gauge("cluster.power_budget_w").set(build.budget_w);
  return build;
}

ClusterRollup::ClusterRollup(telemetry::TelemetryContext& telemetry,
                             double budget_w)
    : telemetry_(telemetry), budget_w_(budget_w) {
  auto& registry = telemetry_.metrics();
  power_hist_ = &registry.histogram(
      "cluster.power_w", telemetry::Histogram::exponential_bounds(
                             budget_w_ / 64.0, 1.25, 24));
  epoch_counter_ = &registry.counter("cluster.epochs");
  overshoot_counter_ = &registry.counter("cluster.overshoot_epochs");
  power_gauge_ = &registry.gauge("cluster.power_w.last");
  dead_gauge_ = &registry.gauge("cluster.dead_nodes");
  ls_qos_gauge_ = &registry.gauge("cluster.slices.ls_qos_fraction");
  be_norm_gauge_ = &registry.gauge("cluster.slices.be_throughput_norm");
  dead_epochs_counter_ = &registry.counter("fault.node.dead_epochs");
}

void ClusterRollup::begin_epoch() { epoch_counter_->inc(); }

void ClusterRollup::note_dead(int dead_nodes) {
  dead_gauge_->set(static_cast<double>(dead_nodes));
  if (dead_nodes > 0) {
    dead_node_epochs_ += dead_nodes;
    dead_epochs_counter_->add(static_cast<std::uint64_t>(dead_nodes));
  }
}

void ClusterRollup::note_cap_sum(double cap_sum_w, int t) {
  STURGEON_CHECK(cap_sum_w <= budget_w_ * (1.0 + 1e-9) + 1e-6,
                 "ClusterSim: coordinator oversubscribed the budget ("
                     << cap_sum_w << " W > " << budget_w_ << " W at t=" << t
                     << ")");
  max_cap_sum_ratio_ = std::max(max_cap_sum_ratio_, cap_sum_w / budget_w_);
}

void ClusterRollup::note_power(double fleet_power_w) {
  power_hist_->observe(fleet_power_w);
  power_gauge_->set(fleet_power_w);
  power_sum_ += fleet_power_w;
  max_ratio_ = std::max(max_ratio_, fleet_power_w / budget_w_);
  if (fleet_power_w > budget_w_) {
    ++overshoot_epochs_;
    overshoot_counter_->inc();
  }
}

void ClusterRollup::note_slices(int ls_total, int ls_met,
                                double be_norm_sum) {
  ls_qos_gauge_->set(ls_total == 0 ? 1.0
                                   : static_cast<double>(ls_met) /
                                         static_cast<double>(ls_total));
  be_norm_gauge_->set(be_norm_sum);
}

ClusterResult ClusterRollup::finalize(
    int epochs, const std::string& coordinator_name,
    const std::vector<std::unique_ptr<ClusterNode>>& nodes,
    const HeartbeatTracker& heartbeat,
    std::shared_ptr<telemetry::TelemetryContext> telemetry) {
  const std::size_t n = nodes.size();
  auto& registry = telemetry_.metrics();

  ClusterResult result;
  result.cluster_power_budget_w = budget_w_;
  result.epochs = epochs;
  result.nodes = static_cast<int>(n);
  result.coordinator = coordinator_name;
  result.telemetry = std::move(telemetry);

  std::uint64_t completed = 0, violations = 0;
  result.node_results.reserve(n);
  for (const auto& node : nodes) {
    NodeResult nr = node->result();
    completed += nr.total_completed;
    violations += nr.total_violations;
    result.aggregate_be_throughput += nr.mean_be_throughput_norm;
    result.node_results.push_back(std::move(nr));
  }
  result.fleet_qos_guarantee_rate =
      completed == 0 ? 1.0
                     : static_cast<double>(completed - violations) /
                           static_cast<double>(completed);
  result.cluster_overshoot_fraction =
      epochs == 0 ? 0.0
                  : static_cast<double>(overshoot_epochs_) /
                        static_cast<double>(epochs);
  result.max_cluster_power_ratio = max_ratio_;
  result.mean_cluster_power_w =
      epochs == 0 ? 0.0 : power_sum_ / static_cast<double>(epochs);
  result.max_cap_sum_ratio = max_cap_sum_ratio_;
  result.dead_node_epochs = dead_node_epochs_;

  // Recovery accounting: heartbeat outages (declared-dead to rejoin)
  // plus each node's completed watchdog safe-mode episodes, merged into
  // one MTTR sample. Sequential in node order, so deterministic.
  result.recovery_mttr_epochs = heartbeat.completed_outages();
  for (const auto& node : nodes) {
    const std::vector<int> episodes = node->result().safe_mode_episodes;
    result.recovery_mttr_epochs.insert(result.recovery_mttr_epochs.end(),
                                       episodes.begin(), episodes.end());
  }
  result.mttr_p95_epochs = p95_epochs(result.recovery_mttr_epochs);
  auto& mttr_hist = registry.histogram(
      "recovery.mttr_epochs", telemetry::Histogram::exponential_bounds(
                                  1.0, 2.0, 10));
  for (const int e : result.recovery_mttr_epochs) {
    mttr_hist.observe(static_cast<double>(e));
  }
  registry.gauge("recovery.mttr_p95_epochs").set(result.mttr_p95_epochs);
  registry.gauge("cluster.max_cap_sum_ratio").set(max_cap_sum_ratio_);

  // Roll the per-node counters up into the cluster registry ("fleet."
  // prefix) so one snapshot answers fleet-wide questions; gauges and
  // histograms stay node-local (summing them is not meaningful).
  for (const auto& node : nodes) {
    const auto snap = node->result().telemetry->metrics().snapshot();
    for (const auto& [name, value] : snap.counters) {
      registry.counter("fleet." + name).add(value);
    }
  }
  registry.gauge("cluster.fleet_qos_guarantee_rate")
      .set(result.fleet_qos_guarantee_rate);
  registry.gauge("cluster.aggregate_be_throughput")
      .set(result.aggregate_be_throughput);
  registry.gauge("cluster.overshoot_fraction")
      .set(result.cluster_overshoot_fraction);
  registry.gauge("cluster.max_power_ratio").set(result.max_cluster_power_ratio);
  registry.gauge("cluster.mean_power_w").set(result.mean_cluster_power_w);

  for (const auto& node : nodes) node->result().telemetry->flush();
  telemetry_.flush();
  return result;
}

}  // namespace sturgeon::cluster
