// ClusterSim: N co-location nodes advanced in lockstep 1 s epochs under
// one cluster-level power budget.
//
// Layering per epoch:
//
//   PowerCoordinator   splits the cluster budget into per-node caps from
//                      the fleet's last-epoch reports (sequential, node
//                      order -- see coordinator.h);
//   ClusterNode.step   every node runs its own policy + governor under
//                      its cap; steps are independent, so the fleet
//                      advances in parallel on the shared ThreadPool;
//   aggregation        cluster power / QoS / throughput roll-ups, again
//                      sequential in node order.
//
// Determinism: node i's RNG streams derive from derive_seed(cluster
// seed, i); nothing mutable is shared between nodes inside step(); the
// coordinator and the aggregation are sequential. A cluster run is
// therefore bit-identical across thread counts -- tested.
//
// Telemetry: each node gets a child TelemetryContext; the cluster
// context carries "cluster.*" instruments (per-epoch fleet power
// histogram, overshoot counters) and, at end of run, a "fleet.*" roll-up
// summing every node counter.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/node.h"
#include "cluster/placement.h"
#include "comms/fabric.h"
#include "util/thread_pool.h"

namespace sturgeon::cluster {

struct ClusterConfig {
  std::uint64_t seed = 1;
  /// Cluster-level power budget (W). 0 = `oversubscription` times the
  /// sum of the fleet's natural node budgets -- the power-constrained
  /// regime the paper targets, where not every node can run at its own
  /// budget simultaneously.
  double power_budget_w = 0.0;
  double oversubscription = 0.90;
  /// Per-node tolerance on cap overshoot: one epoch's measured power may
  /// exceed the cap by this fraction before the run counts it against
  /// the coordinator (reactive governors lag by one interval).
  double power_tolerance = 0.05;
  CoordinatorKind coordinator = CoordinatorKind::kSlackHarvest;
  CoordinatorConfig coordinator_config;
  /// How workloads (LS/BE pair + trace + policy) map onto machines.
  PlacementKind placement = PlacementKind::kRoundRobin;
  GovernorConfig governor;
  /// Lockstep worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Span tracing on the per-node child contexts (cluster-context tracing
  /// follows `telemetry`'s own config).
  bool node_tracing = false;
  /// Cluster-level sink. Null = a fresh private context (metrics only).
  std::shared_ptr<telemetry::TelemetryContext> telemetry;
  /// Route every node's decisions through the K-way Allocation entry
  /// points (NodeSpec::route_via_allocation on the whole fleet);
  /// bit-identical at K = 2, pinned by the cluster twin test.
  bool route_via_allocation = false;
  /// Per-node defenses (sanitization, watchdog, retry) plus the
  /// coordinator-side heartbeat threshold. Defaults all-off.
  ResilienceConfig resilience;
  /// Fault schedule; each node receives faults.for_node(i). Defaults
  /// disabled (no injector constructed anywhere).
  fault::FaultConfig faults;
  /// Coordinator<->node messaging. Disabled (direct shared-memory
  /// paths) by default; enabled with a zero-fault network it stays
  /// bit-identical to the direct paths, and with network faults the
  /// lease machinery keeps sum(true caps) <= budget under message loss.
  comms::CommsConfig comms;
};

/// Fleet-level outcome, the cluster analogue of exp::RunResult.
struct ClusterResult {
  /// Query-weighted QoS guarantee rate over every LS query the fleet
  /// completed: sum(completed - violations) / sum(completed).
  double fleet_qos_guarantee_rate = 0.0;
  /// Sum over nodes of mean normalized BE throughput ("machines' worth"
  /// of batch work the fleet sustained).
  double aggregate_be_throughput = 0.0;
  double cluster_power_budget_w = 0.0;
  /// Fraction of epochs where summed fleet power exceeded the budget.
  double cluster_overshoot_fraction = 0.0;
  /// Largest (fleet power / cluster budget) over the run.
  double max_cluster_power_ratio = 0.0;
  double mean_cluster_power_w = 0.0;
  /// Largest (sum of assigned caps / cluster budget) over the run. The
  /// coordinator contract keeps this <= 1 (up to rounding); asserted
  /// every epoch, surfaced here so chaos tests can check it stayed tight.
  double max_cap_sum_ratio = 0.0;
  /// Node-epochs the heartbeat tracker considered some node dead.
  int dead_node_epochs = 0;
  /// Recovery episode lengths: heartbeat outages (declared-dead to
  /// rejoin) and completed watchdog safe-mode episodes, in epochs. Feeds
  /// the recovery.mttr_epochs histogram.
  std::vector<int> recovery_mttr_epochs;
  /// p95 of recovery_mttr_epochs (0 when there were no episodes).
  double mttr_p95_epochs = 0.0;
  int epochs = 0;
  int nodes = 0;
  std::string coordinator;
  // -- comms accounting (all zero when comms is disabled) -------------
  std::uint64_t comms_sent = 0;       ///< primary messages sent
  std::uint64_t comms_dropped = 0;    ///< lost to drops/partitions
  std::uint64_t comms_delayed = 0;    ///< delivered late
  std::uint64_t comms_duplicated = 0; ///< extra copies delivered
  /// Cap-grant subset; sent == delivered + dropped + in_flight exactly
  /// (trace_stats validates the identity end-to-end).
  std::uint64_t comms_grants_sent = 0;
  std::uint64_t comms_grants_delivered = 0;
  std::uint64_t comms_grants_dropped = 0;
  std::uint64_t comms_grants_in_flight = 0;
  std::uint64_t comms_lease_renewals = 0;
  std::uint64_t comms_lease_expiries = 0;
  std::uint64_t comms_autonomy_epochs = 0;
  std::vector<NodeResult> node_results;
  /// Cluster-level telemetry (cluster.* + fleet.* roll-up), always set.
  std::shared_ptr<telemetry::TelemetryContext> telemetry;
};

class ClusterSim {
 public:
  /// One spec per node. The placement strategy decides which spec's
  /// *workload* (LS/BE pair, trace, policy) lands on which spec's
  /// *machine*; node i always keeps spec i's ServerConfig. Sturgeon
  /// nodes resolve their predictors through exp::predictor_for, warmed
  /// in parallel here so the first epoch pays no training.
  explicit ClusterSim(std::vector<NodeSpec> specs, ClusterConfig config = {});

  /// Advance `epochs` lockstep epochs (0 = longest node trace) and
  /// aggregate. One-shot: a ClusterSim instance runs once; build a new
  /// one (same seed) to replay.
  ClusterResult run(int epochs = 0);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  double cluster_budget_w() const { return budget_w_; }
  /// True once run() has been called (the instance is spent).
  bool has_run() const { return ran_; }
  ClusterNode& node(std::size_t i) { return *nodes_.at(i); }
  PowerCoordinator& coordinator() { return *coordinator_; }

 private:
  ClusterConfig config_;
  std::shared_ptr<telemetry::TelemetryContext> telemetry_;
  std::vector<std::unique_ptr<ClusterNode>> nodes_;
  std::unique_ptr<PowerCoordinator> coordinator_;
  HeartbeatTracker heartbeat_;
  ThreadPool pool_;
  double budget_w_ = 0.0;
  int max_trace_s_ = 0;
  bool ran_ = false;
};

}  // namespace sturgeon::cluster
