// One node of the co-location fleet: the per-node runtime that
// exp::run_colocation drives for a single machine, re-packaged as a
// steppable object so a ClusterSim can advance N of them in lockstep.
// Each node owns its SimulatedServer, isolation stack (SimBackend +
// ResourceEnforcer), policy, telemetry context, and metrics accumulator;
// nothing is shared between nodes except immutable trained models, which
// is what makes the lockstep step() calls safe to run in parallel.
//
// Power capping: the ClusterSim hands the node a cap each epoch
// (set_power_cap). The cap reaches the policy (Sturgeon retargets its
// search budget) AND a node-local reactive governor -- the RAPL
// analogue -- which steps frequencies down (BE slice first, LS last)
// while measured power exceeds the cap and relaxes them when power falls
// comfortably below. The governor is what turns a cap into a hard-ish
// limit even under policies with no power notion; the QoS damage it does
// when forced to throttle the LS slice is exactly the overload cost the
// paper's Fig 2 measures.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "cluster/coordinator.h"
#include "core/policy.h"
#include "core/trainer.h"
#include "isolation/enforcer.h"
#include "isolation/sim_backend.h"
#include "telemetry/context.h"
#include "telemetry/monitor.h"
#include "workloads/load_trace.h"

namespace sturgeon::cluster {

enum class PolicyKind { kSturgeon, kParties, kStatic };

const char* to_string(PolicyKind kind);

/// Everything needed to instantiate one node of the fleet.
struct NodeSpec {
  LsProfile ls;
  BeProfile be;
  LoadTrace trace = LoadTrace::constant(0.5, 1);
  sim::ServerConfig server;  ///< heterogeneous machines/coefficients OK
  PolicyKind policy = PolicyKind::kSturgeon;
  /// Profiling campaign for Sturgeon nodes (must match across the fleet:
  /// one campaign per process, see exp/model_registry.h).
  core::TrainerConfig trainer;
  /// Overrides `policy` when set (tests inject fake-model controllers).
  /// Receives the node's server so the factory can read the machine spec
  /// and natural power budget.
  std::function<std::unique_ptr<core::Policy>(const sim::SimulatedServer&)>
      make_policy;
};

struct GovernorConfig {
  bool enabled = true;
  /// Relax one throttle step when measured power is at or below this
  /// fraction of the cap. The default (1.0) behaves like an integrator
  /// around the cap -- confiscated levels drain back as soon as the
  /// policy is compliant, so a policy that deliberately sits just below
  /// its cap is not left permanently throttled. Values < 1 trade that
  /// responsiveness for hysteresis.
  double relax_margin = 1.0;
};

/// Per-node outcome, the cluster analogue of exp::RunResult.
struct NodeResult {
  int node = 0;
  std::string policy;  ///< policy describe() string
  std::string ls;
  std::string be;
  int epochs = 0;
  std::uint64_t total_completed = 0;   ///< LS queries completed
  std::uint64_t total_violations = 0;  ///< of those, QoS-violating
  double qos_guarantee_rate = 0.0;
  double interval_qos_rate = 0.0;
  double mean_be_throughput_norm = 0.0;
  double budget_w = 0.0;    ///< node natural budget
  double mean_cap_w = 0.0;  ///< average coordinator cap over the run
  double max_power_ratio = 0.0;  ///< max measured power / natural budget
  /// Epochs the governor spent throttling below the policy's choice.
  int throttled_epochs = 0;
  /// The node's telemetry (child context; rolled up by the ClusterSim).
  std::shared_ptr<telemetry::TelemetryContext> telemetry;
};

class ClusterNode {
 public:
  /// `seed` is the node's derived seed (derive_seed(cluster_seed, id)).
  /// `telemetry` must be non-null (the ClusterSim makes one child
  /// context per node).
  ClusterNode(int id, NodeSpec spec, std::uint64_t seed,
              std::shared_ptr<telemetry::TelemetryContext> telemetry,
              GovernorConfig governor = {});

  /// Re-cap the node for the coming epoch (policy budget + governor).
  void set_power_cap(double watts);

  /// Advance one lockstep epoch at trace time `t`. Thread-safe with
  /// respect to OTHER nodes (no shared mutable state); never call
  /// concurrently on the same node.
  void step(int t);

  /// Telemetry for the coordinator, reflecting the last finished epoch.
  const NodeReport& report() const { return report_; }

  NodeResult result() const;

  int id() const { return id_; }
  double budget_w() const { return budget_w_; }
  double idle_w() const { return idle_w_; }
  double power_cap_w() const { return cap_w_; }
  const sim::SimulatedServer& server() const { return server_; }
  core::Policy& policy() { return *policy_; }

 private:
  /// Apply the governor's current throttle to `p` (BE frequency first,
  /// then LS), returning the partition actually enforced.
  Partition throttled(Partition p) const;

  int id_;
  NodeSpec spec_;
  sim::SimulatedServer server_;
  isolation::SimBackend backend_;
  isolation::ResourceEnforcer enforcer_;
  std::unique_ptr<core::Policy> policy_;
  std::shared_ptr<telemetry::TelemetryContext> telemetry_;
  telemetry::RunMetrics metrics_;
  GovernorConfig governor_;

  double budget_w_ = 0.0;
  double idle_w_ = 0.0;
  double cap_w_ = 0.0;
  int throttle_ = 0;  ///< frequency levels currently confiscated
  int throttled_epochs_ = 0;
  int epochs_run_ = 0;
  double cap_w_sum_ = 0.0;
  double max_power_ratio_ = 0.0;
  NodeReport report_;

  telemetry::Histogram* p95_hist_ = nullptr;
  telemetry::Histogram* power_hist_ = nullptr;
  telemetry::Histogram* slack_hist_ = nullptr;
  telemetry::Counter* epochs_counter_ = nullptr;
  telemetry::Counter* violations_counter_ = nullptr;
  telemetry::Counter* changes_counter_ = nullptr;
  telemetry::Counter* throttle_counter_ = nullptr;
};

}  // namespace sturgeon::cluster
