// One node of the co-location fleet: the per-node runtime that
// exp::run_colocation drives for a single machine, re-packaged as a
// steppable object so a ClusterSim can advance N of them in lockstep.
// Each node owns its SimulatedServer, isolation stack (SimBackend +
// ResourceEnforcer), policy, telemetry context, and metrics accumulator;
// nothing is shared between nodes except immutable trained models, which
// is what makes the lockstep step() calls safe to run in parallel.
//
// Power capping: the ClusterSim hands the node a cap each epoch
// (set_power_cap). The cap reaches the policy (Sturgeon retargets its
// search budget) AND a node-local reactive governor -- the RAPL
// analogue -- which steps frequencies down (BE slice first, LS last)
// while measured power exceeds the cap and relaxes them when power falls
// comfortably below. The governor is what turns a cap into a hard-ish
// limit even under policies with no power notion; the QoS damage it does
// when forced to throttle the LS slice is exactly the overload cost the
// paper's Fig 2 measures.
//
// Faults and resilience (src/fault): a node may carry a FaultInjector
// whose schedule corrupts its sensors, fails its actuators, crashes or
// hangs the whole node, and inflates the sample its policy sees. The
// matching defenses -- sensor sanitization in front of the governor/
// policy/report, retry-with-verify around the enforcer, a watchdog that
// falls back to the known-safe all-to-LS partition -- are configured
// independently (ResilienceConfig) and default OFF, so fault-free runs
// are bit-identical to the pre-fault code paths.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/coordinator.h"
#include "core/policy.h"
#include "core/trainer.h"
#include "fault/faulty_tools.h"
#include "fault/injector.h"
#include "fault/retry.h"
#include "fault/sanitizer.h"
#include "fault/watchdog.h"
#include "isolation/enforcer.h"
#include "isolation/sim_backend.h"
#include "telemetry/context.h"
#include "telemetry/monitor.h"
#include "workloads/load_trace.h"

namespace sturgeon::cluster {

enum class PolicyKind { kSturgeon, kParties, kStatic };

const char* to_string(PolicyKind kind);

/// Everything needed to instantiate one node of the fleet.
struct NodeSpec {
  LsProfile ls;
  BeProfile be;
  LoadTrace trace = LoadTrace::constant(0.5, 1);
  sim::ServerConfig server;  ///< heterogeneous machines/coefficients OK
  PolicyKind policy = PolicyKind::kSturgeon;
  /// Profiling campaign for Sturgeon nodes (must match across the fleet:
  /// one campaign per process, see exp/model_registry.h).
  core::TrainerConfig trainer;
  /// Overrides `policy` when set (tests inject fake-model controllers).
  /// Receives the node's server so the factory can read the machine spec
  /// and natural power budget.
  std::function<std::unique_ptr<core::Policy>(const sim::SimulatedServer&)>
      make_policy;
  /// Route decisions through the K-way Allocation entry points instead of
  /// the pair ones; bit-identical at K = 2 (pinned by the cluster twin
  /// test in tests/kway).
  bool route_via_allocation = false;
};

struct GovernorConfig {
  bool enabled = true;
  /// Relax one throttle step when measured power is at or below this
  /// fraction of the cap. The default (1.0) behaves like an integrator
  /// around the cap -- confiscated levels drain back as soon as the
  /// policy is compliant, so a policy that deliberately sits just below
  /// its cap is not left permanently throttled. Values < 1 trade that
  /// responsiveness for hysteresis.
  double relax_margin = 1.0;
};

/// Which defenses are armed. Everything defaults OFF: with the struct
/// default-constructed a node behaves bit-identically to the
/// pre-resilience runtime (only the always-on heartbeat classification
/// differs, and without faults it never changes a liveness verdict).
struct ResilienceConfig {
  /// Sensor sanitization (last-good-with-decay + median-of-3 + physical
  /// bounds) in front of the governor, the policy and the NodeReport.
  bool sanitize_sensors = false;
  /// Watchdog / safe-mode fallback (enabled flag lives inside).
  fault::WatchdogConfig watchdog;
  /// Retry-with-verify around the enforcer (always constructed; with
  /// max_attempts == 1 it degenerates to a single verified apply).
  fault::RetryConfig retry;
  /// Coordinator-side dead-node detection threshold.
  HeartbeatConfig heartbeat;
};

/// Per-node outcome, the cluster analogue of exp::RunResult.
struct NodeResult {
  int node = 0;
  std::string policy;  ///< policy describe() string
  std::string ls;
  std::string be;
  int epochs = 0;
  std::uint64_t total_completed = 0;   ///< LS queries completed
  std::uint64_t total_violations = 0;  ///< of those, QoS-violating
  double qos_guarantee_rate = 0.0;
  double interval_qos_rate = 0.0;
  double mean_be_throughput_norm = 0.0;
  double budget_w = 0.0;    ///< node natural budget
  double mean_cap_w = 0.0;  ///< average coordinator cap over the run
  double max_power_ratio = 0.0;  ///< max measured power / natural budget
  /// Epochs the governor spent throttling below the policy's choice.
  int throttled_epochs = 0;
  // -- fault/recovery accounting (all zero in fault-free runs) --------
  int epochs_down = 0;      ///< lockstep epochs spent crashed
  int epochs_hung = 0;      ///< lockstep epochs with a stalled control loop
  int safe_mode_epochs = 0; ///< epochs spent in watchdog safe mode
  int watchdog_trips = 0;
  /// Completed safe-mode episode lengths (trip to clear), for MTTR.
  std::vector<int> safe_mode_episodes;
  std::uint64_t faults_injected = 0;   ///< injector events of any class
  std::uint64_t sensor_rejected = 0;   ///< sanitizer interventions
  std::uint64_t actuator_retries = 0;  ///< extra enforcer attempts
  std::uint64_t actuator_gave_up = 0;  ///< applies abandoned after retries
  // -- event-driven engine accounting (always zero under lockstep) ----
  /// Epochs the fleet engine skipped this node while quiescent; in an
  /// event-driven run epochs + skipped_epochs == the run's epoch count.
  int skipped_epochs = 0;
  /// Times the engine woke the node out of quiescence (load shift, job
  /// arrival/finish, cap change, rebalance).
  int wakes = 0;
  // -- comms accounting (all zero when comms is disabled) -------------
  std::uint64_t lease_renewals = 0;  ///< cap grants this node adopted
  std::uint64_t lease_expiries = 0;  ///< leased -> autonomous lapses
  std::uint64_t autonomy_epochs = 0; ///< epochs on the fallback cap
  /// Last epoch spent on the autonomous cap (-1 = never); chaos tests
  /// measure reconvergence-after-heal with it.
  int last_autonomy_epoch = -1;
  /// The node's telemetry (child context; rolled up by the ClusterSim).
  std::shared_ptr<telemetry::TelemetryContext> telemetry;
};

class ClusterNode {
 public:
  /// `seed` is the node's derived seed (derive_seed(cluster_seed, id)).
  /// `telemetry` must be non-null (the ClusterSim makes one child
  /// context per node). `faults` should already be victim-filtered
  /// (FaultConfig::for_node); with faults.enabled == false no injector
  /// is constructed and the fault hooks cost one null check each.
  ClusterNode(int id, NodeSpec spec, std::uint64_t seed,
              std::shared_ptr<telemetry::TelemetryContext> telemetry,
              GovernorConfig governor = {}, ResilienceConfig resilience = {},
              fault::FaultConfig faults = {});

  /// Re-cap the node for the coming epoch (policy budget + governor).
  void set_power_cap(double watts);

  /// Whether the node currently hosts any best-effort work. With BE
  /// inactive (the churn engine drained the node's last job) step()
  /// bypasses the policy and holds the all-to-LS partition: the LS
  /// service keeps serving, the BE slice is empty, and the node draws
  /// LS-only power. Defaults active -- lockstep runs never call this,
  /// so pre-fleet behaviour is bit-identical.
  void set_be_active(bool active) { be_active_ = active; }
  bool be_active() const { return be_active_; }

  /// Frequency levels the reactive governor currently confiscates; the
  /// fleet engine keeps throttled nodes awake (cap pressure).
  int governor_throttle() const { return throttle_; }

  /// True when a fault injector is armed: such nodes are never eligible
  /// for quiescence skipping (their fault timeline must advance every
  /// epoch).
  bool has_fault_injector() const { return injector_ != nullptr; }

  /// Advance one lockstep epoch at trace time `t`. Thread-safe with
  /// respect to OTHER nodes (no shared mutable state); never call
  /// concurrently on the same node.
  void step(int t);

  /// Telemetry for the coordinator, reflecting the last finished epoch
  /// (the *sanitized* monitor view when sanitization is armed; frozen
  /// while the node is down or hung).
  const NodeReport& report() const { return report_; }

  NodeResult result() const;

  int id() const { return id_; }
  double budget_w() const { return budget_w_; }
  double idle_w() const { return idle_w_; }
  double power_cap_w() const { return cap_w_; }
  /// Ground-truth package power of the last epoch (0 while crashed) --
  /// what the fleet aggregation sums, as opposed to the possibly
  /// fault-corrupted report().power_w the coordinator sees.
  double true_power_w() const { return true_power_w_; }
  /// Last epoch whose control loop completed (-1 before the first):
  /// the heartbeat the ClusterSim feeds the HeartbeatTracker. Crashed
  /// and hung epochs do not beat.
  int last_step_epoch() const { return last_step_epoch_; }
  bool in_safe_mode() const { return watchdog_.in_safe_mode(); }
  /// The node's LS load trace (the quiescence policy scans it ahead for
  /// the next shift out of the epsilon band).
  const LoadTrace& trace() const { return spec_.trace; }
  const sim::SimulatedServer& server() const { return server_; }
  core::Policy& policy() { return *policy_; }

 private:
  /// Apply the governor's current throttle to `p` (BE frequency first,
  /// then LS), returning the partition actually enforced.
  Partition throttled(Partition p) const;
  /// Retarget the policy's budget, or count the dropped cap when the
  /// policy has no power notion (the governor still enforces it).
  void push_cap_to_policy(double watts);
  /// One crashed epoch: the machine is off -- no serving, no power, no
  /// heartbeat, no report.
  void step_down();
  /// One hung epoch: serving continues under the last partition but the
  /// control loop (observe/decide/enforce/report) is stalled.
  void step_hung(int t);

  int id_;
  NodeSpec spec_;
  ResilienceConfig resilience_;
  sim::SimulatedServer server_;
  isolation::SimBackend backend_;
  /// Null unless fault injection is enabled for this node.
  std::unique_ptr<fault::FaultInjector> injector_;
  // Tool decorators sit between the backend and the enforcer; with a
  // null injector they are transparent pass-throughs.
  fault::FaultyCpuset faulty_cpuset_;
  fault::FaultyCat faulty_cat_;
  fault::FaultyFreq faulty_freq_;
  isolation::ResourceEnforcer enforcer_;
  fault::RetryingEnforcer retry_;
  fault::SignalSanitizer power_sanitizer_;
  fault::SignalSanitizer latency_sanitizer_;
  fault::NodeWatchdog watchdog_;
  Partition safe_partition_;  ///< known-safe fallback (all-to-LS)
  std::unique_ptr<core::Policy> policy_;
  std::shared_ptr<telemetry::TelemetryContext> telemetry_;
  telemetry::RunMetrics metrics_;
  GovernorConfig governor_;

  double budget_w_ = 0.0;
  double idle_w_ = 0.0;
  double cap_w_ = 0.0;
  double true_power_w_ = 0.0;
  int throttle_ = 0;  ///< frequency levels currently confiscated
  bool be_active_ = true;  ///< false = no BE jobs: hold all-to-LS
  int throttled_epochs_ = 0;
  int epochs_run_ = 0;
  int epochs_down_ = 0;
  int epochs_hung_ = 0;
  int safe_mode_epochs_ = 0;
  int last_step_epoch_ = -1;
  double cap_w_sum_ = 0.0;
  double max_power_ratio_ = 0.0;
  NodeReport report_;

  telemetry::Histogram* p95_hist_ = nullptr;
  telemetry::Histogram* power_hist_ = nullptr;
  telemetry::Histogram* slack_hist_ = nullptr;
  telemetry::Counter* epochs_counter_ = nullptr;
  telemetry::Counter* violations_counter_ = nullptr;
  telemetry::Counter* changes_counter_ = nullptr;
  telemetry::Counter* throttle_counter_ = nullptr;
  telemetry::Counter* safe_mode_counter_ = nullptr;
  telemetry::Counter* cap_unsupported_counter_ = nullptr;
  telemetry::Gauge* degraded_gauge_ = nullptr;
};

}  // namespace sturgeon::cluster
