// FleetSim: the event-driven fleet engine.
//
// ClusterSim advances every node every epoch -- O(N) node steps per
// epoch no matter how little is happening. At fleet scale (10k nodes,
// diurnal traces) the overwhelming majority of node-epochs are control
// fixed points: the load is where it was, slack is in band, the
// partition and DVFS level would come out unchanged. FleetSim replaces
// the lockstep sweep with a priority queue of events keyed by
// (time, node, seq) (fleet/event.h): quiescent nodes schedule their
// next wake (trace shift / predicted job finish / max-sleep backstop)
// and are skipped until it arrives or an external event -- job arrival,
// cap change from a rebalance -- targets them earlier. While asleep, a
// node's last power/slice contribution stays frozen in the fleet
// aggregates (incremental += new - old updates, so per-epoch
// aggregation cost follows the woken set, not the fleet).
//
// Workload churn (fleet/churn.h) runs on top: a seeded deterministic
// arrival process emits best-effort jobs, placed online (fleet/
// placer.h, reusing the cluster PlacementKind vocabulary) into BE
// slots, drained at each node's measured normalized BE throughput, and
// migrated off nodes showing sustained QoS violation or cap pressure.
// A node whose last job leaves goes LS-only and may quiesce.
//
// Coordination between rebalances is incremental too: the
// DeltaCoordinator (fleet/delta_coordinator.h) revises only woken
// nodes' caps against a running pool; a periodic kRebalance event runs
// the full lockstep strategy over the persistent report vector.
//
// Twin contract: with quiescence disabled and churn disabled, run()
// takes a lockstep path built from the same shared pieces as
// ClusterSim::run (cluster/rollup.h) and produces a bit-identical
// ClusterResult -- pinned by tests/fleet/twin_test.cpp. With skipping
// enabled the engine is an approximation whose error is bounded by the
// quiescence bands; determinism across worker thread counts holds in
// every mode (events, churn and aggregation are engine-sequential).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/rollup.h"
#include "fleet/churn.h"
#include "fleet/delta_coordinator.h"
#include "fleet/event_queue.h"
#include "fleet/placer.h"
#include "fleet/quiescence.h"

namespace sturgeon::fleet {

struct FleetConfig {
  /// Fleet construction, budget, coordinator strategy, faults,
  /// resilience -- everything the lockstep engine understands.
  cluster::ClusterConfig cluster;
  QuiescenceConfig quiescence;
  ChurnConfig churn;
  /// Delta coordination (only consulted when quiescence is enabled;
  /// the lockstep-equivalent path runs the full strategy every epoch).
  DeltaCoordinatorConfig delta;
  /// Online job placement strategy (cluster vocabulary: worst-fit
  /// spreads, bin-pack consolidates so whole nodes can quiesce).
  cluster::PlacementKind job_placement = cluster::PlacementKind::kWorstFit;
};

/// ClusterResult plus the engine's own accounting.
struct FleetResult {
  cluster::ClusterResult cluster;
  // -- event engine ---------------------------------------------------
  std::uint64_t total_skipped_epochs = 0;  ///< sum over nodes
  std::uint64_t total_wakes = 0;
  /// skipped node-epochs / (nodes * epochs): the work the engine avoided.
  double skipped_fraction = 0.0;
  std::uint64_t events_processed = 0;
  std::size_t event_queue_peak = 0;
  // -- coordinator ----------------------------------------------------
  std::uint64_t cap_revisions = 0;  ///< delta revisions (0 in twin mode)
  std::uint64_t rebalances = 0;     ///< full-strategy re-splits
  // -- churn ----------------------------------------------------------
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_placed = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_migrated = 0;
  std::uint64_t jobs_rejected = 0;
  std::size_t job_queue_peak = 0;
  double mean_job_completion_epochs = 0.0;
  std::size_t jobs_active_at_end = 0;
  std::size_t jobs_queued_at_end = 0;
};

class FleetSim {
 public:
  explicit FleetSim(std::vector<cluster::NodeSpec> specs,
                    FleetConfig config = {});

  /// Advance `epochs` (0 = longest node trace) and aggregate. One-shot,
  /// like ClusterSim::run.
  FleetResult run(int epochs = 0);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  double cluster_budget_w() const { return budget_w_; }
  bool has_run() const { return ran_; }
  cluster::ClusterNode& node(std::size_t i) { return *nodes_.at(i); }
  const ChurnEngine& churn() const { return churn_; }

 private:
  // Per-node engine control state (everything the event path needs to
  // know about a node that the node itself does not track).
  struct NodeCtl {
    bool sleeping = false;
    int sleep_from = 0;       ///< first skipped epoch
    int woke_at = -1;         ///< epoch of the most recent wake
    double frozen_rate = 0.0; ///< BE norm rate at sleep time (job drain)
    int skipped = 0;
    int wakes = 0;
    int bad_streak = 0;  ///< consecutive stepped epochs under pressure
    int last_throttle = 0;  ///< governor level after the previous step
    bool never_sleep = false;  ///< fault injector armed
  };

  FleetResult run_lockstep(int epochs);  ///< twin / no-skip path
  FleetResult run_events(int epochs);    ///< quiescence-skipping path

  /// Pull a node out of quiescence at epoch `t`: settle its sleep
  /// window (skipped-epoch accounting + frozen-rate job drain) and mark
  /// it steppable. Idempotent for awake nodes.
  void wake_node(std::size_t i, int t);
  /// Route one emitted job: place (waking the host), queue, or reject.
  void route_job(std::uint64_t id, int t);
  /// Post-step churn bookkeeping for node i at epoch t: drain jobs at
  /// the measured BE rate, complete finished ones (freeing slots and
  /// admitting queued jobs), check the migration trigger.
  void churn_post_step(std::size_t i, int t);
  /// Completions on `node`: slot release, queued-job admission, LS-only
  /// transition when the node's last job left.
  void handle_completions(int node, const std::vector<std::uint64_t>& done,
                          int t);
  /// Post-step quiescence decision for an awake node (event path only).
  void maybe_sleep(std::size_t i, int t);
  /// Fold node i's fresh post-step state into the incremental fleet
  /// aggregates (power / slice tallies), replacing its frozen share.
  void update_contrib(std::size_t i, const cluster::NodeReport& report,
                      double true_power_w);
  /// Engine accounting into FleetResult + telemetry, then the shared
  /// rollup finalize. Both paths end here.
  FleetResult finish(cluster::ClusterRollup& rollup, int epochs);
  /// Measured normalized BE throughput from a report (sum of BE slices).
  static double be_rate(const cluster::NodeReport& report);

  FleetConfig config_;
  std::shared_ptr<telemetry::TelemetryContext> telemetry_;
  /// Comms mode (config_.cluster.comms.enabled): grants and reports
  /// cross the message channel. Null otherwise; built at run() start.
  std::unique_ptr<comms::CommsFabric> fabric_;
  std::vector<bool> dead_nodes_;  ///< comms scratch: send_grants skip mask
  std::vector<double> caps_;      ///< comms mode: this epoch's desired caps
  std::vector<std::unique_ptr<cluster::ClusterNode>> nodes_;
  std::unique_ptr<cluster::PowerCoordinator> coordinator_;
  cluster::HeartbeatTracker heartbeat_;
  ThreadPool pool_;
  double budget_w_ = 0.0;
  int max_trace_s_ = 0;
  bool ran_ = false;

  EventQueue queue_;
  ChurnEngine churn_;
  SlotPlacer placer_;
  /// Needs the resolved budget, so built after build_cluster().
  std::unique_ptr<DeltaCoordinator> delta_;
  std::vector<NodeCtl> ctl_;
  /// Persistent last-known report per node (stale while asleep).
  std::vector<cluster::NodeReport> reports_;
  std::vector<int> last_steps_;
  /// Frozen per-node contributions to the incremental aggregates.
  std::vector<double> power_contrib_;
  std::vector<int> ls_contrib_, ls_met_contrib_;
  std::vector<double> be_norm_contrib_;
  double fleet_power_ = 0.0;
  int ls_total_ = 0, ls_met_ = 0;
  double be_norm_sum_ = 0.0;
  std::uint64_t rebalances_ = 0;
  std::uint64_t events_processed_ = 0;
  std::vector<std::size_t> woken_;  ///< step set scratch (fleet order)
};

}  // namespace sturgeon::fleet
