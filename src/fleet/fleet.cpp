#include "fleet/fleet.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/check.h"
#include "util/rng.h"

namespace sturgeon::fleet {

using cluster::ClusterRollup;
using cluster::NodeReport;

FleetSim::FleetSim(std::vector<cluster::NodeSpec> specs, FleetConfig config)
    : config_(std::move(config)),
      heartbeat_(std::max<std::size_t>(specs.size(), 1),
                 config_.cluster.resilience.heartbeat),
      pool_(config_.cluster.threads),
      churn_(config_.churn, config_.cluster.seed, specs.size(), specs.size()),
      placer_(config_.job_placement,
              static_cast<int>(std::max<std::size_t>(specs.size(), 1)),
              config_.churn.slots_per_node) {
  cluster::ClusterBuild build =
      cluster::build_cluster(std::move(specs), config_.cluster, pool_);
  telemetry_ = std::move(build.telemetry);
  nodes_ = std::move(build.nodes);
  budget_w_ = build.budget_w;
  max_trace_s_ = build.max_trace_s;
  coordinator_ = cluster::make_coordinator(config_.cluster.coordinator,
                                           config_.cluster.coordinator_config);
  const std::size_t n = nodes_.size();
  delta_ = std::make_unique<DeltaCoordinator>(config_.delta, budget_w_, n);
  ctl_.resize(n);
  reports_.resize(n);
  last_steps_.assign(n, -1);
  power_contrib_.assign(n, 0.0);
  ls_contrib_.assign(n, 0);
  ls_met_contrib_.assign(n, 0);
  be_norm_contrib_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    // Fault timelines must advance every epoch; armed nodes never sleep.
    ctl_[i].never_sleep = nodes_[i]->has_fault_injector();
    // Under churn the job population IS the best-effort work: nodes
    // start LS-only and activate their BE slice when the first job
    // lands. Without churn the static pair stays active (twin mode).
    if (config_.churn.enabled) nodes_[i]->set_be_active(false);
  }
}

FleetResult FleetSim::run(int epochs) {
  if (ran_) {
    throw std::logic_error("FleetSim::run: one-shot; build a new sim");
  }
  ran_ = true;
  if (epochs <= 0) epochs = max_trace_s_;
  if (config_.cluster.comms.enabled) {
    const std::size_t n = nodes_.size();
    std::vector<NodeReport> initial(n);
    std::vector<double> idle(n);
    for (std::size_t i = 0; i < n; ++i) {
      initial[i] = nodes_[i]->report();
      idle[i] = initial[i].idle_w;
    }
    fabric_ = std::make_unique<comms::CommsFabric>(
        config_.cluster.comms,
        derive_seed(config_.cluster.seed, comms::kCommsStream), budget_w_,
        std::move(initial), std::move(idle));
    dead_nodes_.assign(n, false);
    caps_.assign(n, 0.0);
  }
  return config_.quiescence.enabled ? run_events(epochs)
                                    : run_lockstep(epochs);
}

double FleetSim::be_rate(const NodeReport& report) {
  double sum = 0.0;
  for (const cluster::SliceReport& s : report.slices) {
    if (!s.latency_sensitive) sum += s.throughput_norm;
  }
  return sum;
}

// ---------------------------------------------------------------------
// Lockstep-equivalent path: every node steps every epoch, the full
// coordinator splits the budget each epoch. With churn disabled this is
// arithmetic-for-arithmetic the ClusterSim::run loop (the twin test
// pins bit-identity); with churn enabled the job hooks slot in between
// the shared phases.
// ---------------------------------------------------------------------

FleetResult FleetSim::run_lockstep(int epochs) {
  const std::size_t n = nodes_.size();
  ClusterRollup rollup(*telemetry_, budget_w_);
  coordinator_->reset();
  heartbeat_.reset();

  for (int t = 0; t < epochs; ++t) {
    telemetry::Span span = telemetry_->tracer().start_span("cluster.epoch");
    span.attr("t_s", t);
    rollup.begin_epoch();

    if (config_.churn.enabled) {
      const int next = churn_.next_arrival_epoch();
      if (next >= 0 && next <= t) {
        for (std::uint64_t id : churn_.arrive(t)) route_job(id, t);
      }
    }

    // Comms mode mirrors ClusterSim::run exactly: the coordinator sees
    // what the wire delivered, and each node obeys its lease (or the
    // autonomous fallback), never the coordinator's wish directly.
    int dead = 0;
    if (fabric_) {
      fabric_->collect(t);
      reports_ = fabric_->reports();
      dead = heartbeat_.update(t, fabric_->last_report_epochs(), reports_,
                               fabric_->lease_lapsed());
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        reports_[i] = nodes_[i]->report();
        last_steps_[i] = nodes_[i]->last_step_epoch();
      }
      dead = heartbeat_.update(t, last_steps_, reports_);
    }
    rollup.note_dead(dead);
    const std::vector<double> caps = coordinator_->assign(budget_w_, reports_);
    if (fabric_) {
      for (std::size_t i = 0; i < n; ++i) dead_nodes_[i] = reports_[i].dead();
      fabric_->send_grants(caps, dead_nodes_, t);
      const std::vector<double>& effective = fabric_->effective_caps(t);
      double cap_sum = 0.0;
      for (const double c : effective) cap_sum += c;
      rollup.note_cap_sum(cap_sum, t);
      for (std::size_t i = 0; i < n; ++i) {
        nodes_[i]->set_power_cap(effective[i]);
      }
    } else {
      double cap_sum = 0.0;
      for (const double c : caps) cap_sum += c;
      rollup.note_cap_sum(cap_sum, t);
      for (std::size_t i = 0; i < n; ++i) nodes_[i]->set_power_cap(caps[i]);
    }

    pool_.parallel_for(n, [&](std::size_t i) { nodes_[i]->step(t); });

    double fleet_power = 0.0;
    for (const auto& node : nodes_) fleet_power += node->true_power_w();
    rollup.note_power(fleet_power);
    int ls_total = 0, ls_met = 0;
    double be_norm_sum = 0.0;
    for (const auto& node : nodes_) {
      for (const cluster::SliceReport& s : node->report().slices) {
        if (s.latency_sensitive) {
          ++ls_total;
          if (s.qos_met) ++ls_met;
        } else {
          be_norm_sum += s.throughput_norm;
        }
      }
    }
    rollup.note_slices(ls_total, ls_met, be_norm_sum);

    if (config_.churn.enabled) {
      for (std::size_t i = 0; i < n; ++i) {
        reports_[i] = nodes_[i]->report();
        churn_post_step(i, t);
      }
    }

    // Comms mode: a report reaches the coordinator only as a message,
    // sent after a completed healthy step (crashed/hung nodes go silent
    // for real -- that is what the heartbeat sees next epoch).
    if (fabric_) {
      for (std::size_t i = 0; i < n; ++i) {
        if (nodes_[i]->last_step_epoch() == t) {
          fabric_->send_report(static_cast<int>(i), nodes_[i]->report(), t, t);
        }
      }
    }

    span.attr("power_w", fleet_power).attr("dead_nodes", dead);
  }

  return finish(rollup, epochs);
}

// ---------------------------------------------------------------------
// Event-driven path.
// ---------------------------------------------------------------------

FleetResult FleetSim::run_events(int epochs) {
  const std::size_t n = nodes_.size();
  ClusterRollup rollup(*telemetry_, budget_w_);
  coordinator_->reset();
  heartbeat_.reset();

  // Seed the persistent report vector from the nodes' pre-step state so
  // the t=0 rebalance sees real budgets (the lockstep path re-reads
  // node->report() every epoch; here a node's entry refreshes only when
  // it steps).
  for (std::size_t i = 0; i < n; ++i) reports_[i] = nodes_[i]->report();

  auto& registry = telemetry_->metrics();
  telemetry::Counter& skipped_counter =
      registry.counter("fleet.skipped_epochs.live");
  telemetry::Gauge& depth_gauge = registry.gauge("fleet.event_queue.depth");
  telemetry::Gauge& woken_gauge = registry.gauge("fleet.woken_nodes");

  // Seed the fleet-level event streams: the first churn arrival and the
  // initial (t=0) full budget split; every later rebalance reschedules
  // itself rebalance_period epochs ahead.
  queue_.push(EventKind::kRebalance, 0, -1);
  if (config_.churn.enabled) {
    const int first = churn_.next_arrival_epoch();
    if (first >= 0 && first < epochs) {
      queue_.push(EventKind::kJobArrival, first, -1);
    }
  }

  std::vector<double> caps;
  for (int t = 0; t < epochs; ++t) {
    rollup.begin_epoch();

    // Phase 1: drain events due at t (pop order: (time, node, seq)).
    // Wakes mark nodes steppable; arrivals may place jobs onto sleeping
    // nodes, which wakes them too (the host must re-partition).
    bool rebalance_due = false;
    while (queue_.has_due(t)) {
      const FleetEvent e = queue_.pop();
      ++events_processed_;
      switch (e.kind) {
        case EventKind::kJobArrival: {
          for (std::uint64_t id : churn_.arrive(t)) route_job(id, t);
          const int next = churn_.next_arrival_epoch();
          if (next >= 0 && next < epochs) {
            queue_.push(EventKind::kJobArrival, next, -1);
          }
          break;
        }
        case EventKind::kRebalance: {
          rebalance_due = true;
          if (config_.delta.rebalance_period > 0 &&
              t + config_.delta.rebalance_period < epochs) {
            queue_.push(EventKind::kRebalance,
                        t + config_.delta.rebalance_period, -1);
          }
          break;
        }
        case EventKind::kWake:
        case EventKind::kJobFinish:
        case EventKind::kCapChange:
          wake_node(static_cast<std::size_t>(e.node), t);
          break;
      }
    }

    // Phase 2: heartbeat over the whole fleet. Scheduled sleepers beat
    // virtually (they are healthy by construction -- only nodes without
    // fault injectors may sleep); a crashed node stops beating for real
    // because it never becomes eligible to sleep. In comms mode both
    // signals cross the wire instead: stepped nodes sent reports,
    // sleepers sent firmware heartbeats (end of phase 5), and the
    // tracker reads whatever actually arrived.
    int dead = 0;
    if (fabric_) {
      fabric_->collect(t);
      reports_ = fabric_->reports();
      dead = heartbeat_.update(t, fabric_->last_report_epochs(), reports_,
                               fabric_->lease_lapsed());
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        // A node woken in phase 1 of this very epoch was asleep through
        // t-1 and gets the same virtual beat: its real last_step_epoch
        // is stale pre-sleep history, not a missed heartbeat.
        last_steps_[i] = ctl_[i].sleeping || ctl_[i].woke_at == t
                             ? t - 1
                             : nodes_[i]->last_step_epoch();
      }
      dead = heartbeat_.update(t, last_steps_, reports_);
    }
    rollup.note_dead(dead);

    // Phase 3: caps. Rebalance epochs run the full strategy over the
    // persistent report vector and rebase the delta state; other epochs
    // revise only the awake nodes, O(#awake).
    if (rebalance_due) {
      ++rebalances_;
      caps = coordinator_->assign(budget_w_, reports_);
      delta_->rebase(caps);
      if (fabric_) {
        caps_ = caps;  // desired; what binds each node is its lease
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          nodes_[i]->set_power_cap(caps[i]);
          if (ctl_[i].sleeping && caps[i] < power_contrib_[i]) {
            // The new cap undercuts the frozen draw: the node must wake
            // and re-govern this epoch (counts as a cap-change wake).
            ++events_processed_;
            wake_node(i, t);
          }
        }
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        if (ctl_[i].sleeping) continue;
        const double revised = delta_->revise(i, reports_[i]);
        if (fabric_) {
          caps_[i] = revised;
        } else {
          nodes_[i]->set_power_cap(revised);
        }
      }
    }
    if (fabric_) {
      for (std::size_t i = 0; i < n; ++i) dead_nodes_[i] = reports_[i].dead();
      fabric_->send_grants(caps_, dead_nodes_, t);
      const std::vector<double>& eff = fabric_->effective_caps(t);
      if (fabric_->reliable()) {
        // Zero-fault channel: eff == caps_, so apply exactly where the
        // direct path applies (every node on a rebalance epoch, awake
        // nodes otherwise) and keep the delta pool as the invariant
        // sum -- the twin stays bit-identical.
        if (rebalance_due) {
          for (std::size_t i = 0; i < n; ++i) {
            nodes_[i]->set_power_cap(eff[i]);
            if (ctl_[i].sleeping && eff[i] < power_contrib_[i]) {
              ++events_processed_;
              wake_node(i, t);
            }
          }
        } else {
          for (std::size_t i = 0; i < n; ++i) {
            if (!ctl_[i].sleeping) nodes_[i]->set_power_cap(eff[i]);
          }
        }
        rollup.note_cap_sum(delta_->cap_sum(), t);
      } else {
        // Lossy channel: every node obeys its lease (or the autonomous
        // fallback) every epoch. A lapse can drop a sleeping node's
        // cap under its frozen draw -- it must wake and re-govern. The
        // budget check runs over the TRUE caps: the safety claim.
        double cap_sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          cap_sum += eff[i];
          nodes_[i]->set_power_cap(eff[i]);
          if (ctl_[i].sleeping && eff[i] < power_contrib_[i]) {
            ++events_processed_;
            wake_node(i, t);
          }
        }
        rollup.note_cap_sum(cap_sum, t);
      }
    } else {
      rollup.note_cap_sum(delta_->cap_sum(), t);
    }

    // Phase 4: step the woken set in parallel (fleet order; nodes share
    // no mutable state, so the schedule cannot change results).
    woken_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (!ctl_[i].sleeping) woken_.push_back(i);
    }
    pool_.parallel_for(woken_.size(),
                       [&](std::size_t k) { nodes_[woken_[k]]->step(t); });

    // Phase 5: sequential post-step over the woken set, fleet order:
    // fold fresh contributions into the incremental aggregates, drain
    // churn jobs, decide who sleeps next.
    for (std::size_t i : woken_) {
      const NodeReport& r = nodes_[i]->report();
      update_contrib(i, r, nodes_[i]->true_power_w());
      reports_[i] = r;
      // Comms mode: a stepped healthy node reports over the wire (the
      // engine-local reports_[i] above still feeds this epoch's churn
      // and sleep decisions -- those are node-local control, not
      // coordinator state; the coordinator's copy refreshes from the
      // fabric next epoch).
      if (fabric_ && nodes_[i]->last_step_epoch() == t) {
        fabric_->send_report(static_cast<int>(i), r, t, t);
      }
      if (config_.churn.enabled) churn_post_step(i, t);
      maybe_sleep(i, t);
    }
    // Scheduled sleepers are healthy by construction: their firmware
    // keeps beating so the coordinator does not declare them dead
    // (nodes that slept THROUGH t, not ones that just decided to sleep
    // from t+1 -- those sent a report above).
    if (fabric_) {
      for (std::size_t i = 0; i < n; ++i) {
        if (ctl_[i].sleeping && ctl_[i].sleep_from <= t) {
          fabric_->send_heartbeat(static_cast<int>(i), t);
        }
      }
    }
    rollup.note_power(fleet_power_);
    rollup.note_slices(ls_total_, ls_met_, be_norm_sum_);

    skipped_counter.add(static_cast<std::uint64_t>(n - woken_.size()));
    depth_gauge.set(static_cast<double>(queue_.size()));
    woken_gauge.set(static_cast<double>(woken_.size()));
  }

  // Settle nodes still asleep at the end of the run so the per-node
  // invariant (stepped + skipped == run epochs) holds; no wake is
  // counted (nothing woke them, the run ended).
  for (std::size_t i = 0; i < n; ++i) {
    if (!ctl_[i].sleeping) continue;
    ctl_[i].skipped += epochs - ctl_[i].sleep_from;
    if (config_.churn.enabled) {
      handle_completions(static_cast<int>(i),
                         churn_.accrue(static_cast<int>(i),
                                       ctl_[i].frozen_rate,
                                       ctl_[i].sleep_from, epochs - 1),
                         epochs - 1);
    }
    ctl_[i].sleeping = false;
  }

  return finish(rollup, epochs);
}

void FleetSim::wake_node(std::size_t i, int t) {
  NodeCtl& c = ctl_[i];
  if (!c.sleeping) return;  // stale event for an already-woken node
  c.sleeping = false;
  c.woke_at = t;
  ++c.wakes;
  const int skipped = t - c.sleep_from;  // epochs sleep_from .. t-1
  c.skipped += skipped;
  if (config_.churn.enabled && skipped > 0) {
    // Drain the sleep window at the frozen rate. By construction the
    // scheduled job-finish wake lands before any completion epoch, so
    // this normally completes nothing; handled anyway for external
    // wakes racing a nearly-done job.
    handle_completions(
        static_cast<int>(i),
        churn_.accrue(static_cast<int>(i), c.frozen_rate, c.sleep_from,
                      t - 1),
        t - 1);
  }
}

void FleetSim::route_job(std::uint64_t id, int t) {
  const int to = placer_.pick();
  if (to >= 0) {
    placer_.claim(to);
    churn_.assign(id, to, t);
    nodes_[static_cast<std::size_t>(to)]->set_be_active(true);
    // Pre-step phase: a sleeping host wakes and steps this very epoch.
    wake_node(static_cast<std::size_t>(to), t);
  } else if (config_.churn.queue_when_full) {
    churn_.enqueue(id);
  } else {
    churn_.reject(id);
  }
}

void FleetSim::churn_post_step(std::size_t i, int t) {
  const int node = static_cast<int>(i);
  if (churn_.active_on(node).empty()) return;
  const NodeReport& r = reports_[i];
  handle_completions(node, churn_.accrue(node, be_rate(r), t, t), t);

  NodeCtl& c = ctl_[i];
  if (config_.churn.migrate_after_epochs <= 0 ||
      churn_.active_on(node).empty()) {
    c.bad_streak = 0;
    return;
  }
  // Sustained QoS violation or cap pressure (governor actively
  // throttling) evicts the newest job to the best other host.
  const bool pressure = !r.qos_met || nodes_[i]->governor_throttle() > 0;
  c.bad_streak = pressure ? c.bad_streak + 1 : 0;
  if (c.bad_streak < config_.churn.migrate_after_epochs) return;
  c.bad_streak = 0;
  const int to = placer_.pick(node);
  if (to < 0) return;  // nowhere to go; stay and retry next streak
  const std::uint64_t id = churn_.active_on(node).back();
  placer_.release(node);
  placer_.claim(to);
  churn_.migrate(id, to, t);
  nodes_[static_cast<std::size_t>(to)]->set_be_active(true);
  if (churn_.active_on(node).empty()) nodes_[i]->set_be_active(false);
  if (ctl_[static_cast<std::size_t>(to)].sleeping && t + 1 >= 0) {
    // Post-step phase: the target steps again no earlier than t+1.
    queue_.push(EventKind::kWake, t + 1, to);
  }
}

void FleetSim::handle_completions(int node,
                                  const std::vector<std::uint64_t>& done,
                                  int t) {
  if (done.empty()) return;
  for (std::size_t k = 0; k < done.size(); ++k) placer_.release(node);
  // Freed slots admit queued jobs FIFO; the placer decides the host
  // (often this node, possibly a better one that freed up earlier).
  while (churn_.has_queued()) {
    const int to = placer_.pick();
    if (to < 0) break;
    const std::uint64_t id = churn_.pop_queued();
    placer_.claim(to);
    churn_.assign(id, to, t);
    nodes_[static_cast<std::size_t>(to)]->set_be_active(true);
    if (ctl_[static_cast<std::size_t>(to)].sleeping) {
      queue_.push(EventKind::kWake, t + 1, to);
    }
  }
  if (churn_.active_on(node).empty()) {
    nodes_[static_cast<std::size_t>(node)]->set_be_active(false);
  }
}

void FleetSim::maybe_sleep(std::size_t i, int t) {
  const QuiescenceConfig& q = config_.quiescence;
  NodeCtl& c = ctl_[i];
  if (c.never_sleep) return;
  cluster::ClusterNode& node = *nodes_[i];
  const NodeReport& r = reports_[i];
  // Only a node whose controller is at a fixed point may sleep: alive
  // and reporting, QoS met with slack in band, governor quiet, not in
  // safe mode, comfortably under its cap.
  if (!r.alive() || !r.qos_met) return;
  if (r.slack < q.min_slack) return;
  // Governor: quiet (no levels confiscated) or holding a constant
  // nonzero level under the relax hysteresis -- both are part of the
  // node's fixed point. A *moving* nonzero level is active cap
  // enforcement and blocks sleep.
  const int throttle = node.governor_throttle();
  const bool throttle_quiet = throttle == 0 || throttle == c.last_throttle;
  c.last_throttle = throttle;
  if (!throttle_quiet || node.in_safe_mode()) return;
  if (r.power_w > (1.0 - q.cap_headroom) * node.power_cap_w()) return;
  const double rate = be_rate(r);
  const bool has_jobs =
      config_.churn.enabled && !churn_.active_on(static_cast<int>(i)).empty();
  if (has_jobs && rate <= 0.0) return;  // starved jobs need live control

  int wake = next_load_shift(node.trace(), t, q.load_epsilon,
                             q.max_sleep_epochs);
  EventKind kind = EventKind::kWake;
  if (has_jobs) {
    const int finish =
        churn_.earliest_finish(static_cast<int>(i), rate, t);
    if (finish >= 0 && finish < wake) {
      wake = finish;
      kind = EventKind::kJobFinish;
    }
  }
  if (wake - (t + 1) < q.min_sleep_epochs) return;
  c.sleeping = true;
  c.sleep_from = t + 1;
  c.frozen_rate = rate;
  queue_.push(kind, wake, static_cast<int>(i));
}

void FleetSim::update_contrib(std::size_t i, const NodeReport& report,
                              double true_power_w) {
  fleet_power_ += true_power_w - power_contrib_[i];
  power_contrib_[i] = true_power_w;
  int ls = 0, met = 0;
  double be = 0.0;
  for (const cluster::SliceReport& s : report.slices) {
    if (s.latency_sensitive) {
      ++ls;
      if (s.qos_met) ++met;
    } else {
      be += s.throughput_norm;
    }
  }
  ls_total_ += ls - ls_contrib_[i];
  ls_met_ += met - ls_met_contrib_[i];
  be_norm_sum_ += be - be_norm_contrib_[i];
  ls_contrib_[i] = ls;
  ls_met_contrib_[i] = met;
  be_norm_contrib_[i] = be;
}

FleetResult FleetSim::finish(ClusterRollup& rollup, int epochs) {
  const std::size_t n = nodes_.size();
  std::uint64_t total_skipped = 0, total_wakes = 0;
  for (const NodeCtl& c : ctl_) {
    total_skipped += static_cast<std::uint64_t>(c.skipped);
    total_wakes += static_cast<std::uint64_t>(c.wakes);
  }

  // Engine + churn roll-up into the cluster registry before finalize
  // flushes it (satellites export these through the fleet JSONL).
  auto& registry = telemetry_->metrics();
  registry.counter("fleet.skipped_epochs").add(total_skipped);
  registry.counter("fleet.wakes").add(total_wakes);
  registry.counter("fleet.events").add(events_processed_);
  registry.gauge("fleet.event_queue.depth_peak")
      .set(static_cast<double>(queue_.max_depth()));
  const ChurnStats& cs = churn_.stats();
  registry.counter("fleet.churn.submitted").add(cs.submitted);
  registry.counter("fleet.churn.placed").add(cs.placed);
  registry.counter("fleet.churn.completed").add(cs.completed);
  registry.counter("fleet.churn.migrated").add(cs.migrated);
  registry.counter("fleet.churn.rejected").add(cs.rejected);
  registry.gauge("fleet.churn.queue_peak")
      .set(static_cast<double>(cs.queue_peak));
  registry.gauge("fleet.churn.active_at_end")
      .set(static_cast<double>(churn_.active_total()));
  if (fabric_) fabric_->export_metrics(registry);

  FleetResult out;
  out.cluster = rollup.finalize(epochs, coordinator_->name(), nodes_,
                                heartbeat_, telemetry_);
  if (fabric_) cluster::fill_comms_results(*fabric_, out.cluster);
  for (std::size_t i = 0; i < n; ++i) {
    out.cluster.node_results[i].skipped_epochs = ctl_[i].skipped;
    out.cluster.node_results[i].wakes = ctl_[i].wakes;
  }
  out.total_skipped_epochs = total_skipped;
  out.total_wakes = total_wakes;
  out.skipped_fraction =
      (n == 0 || epochs == 0)
          ? 0.0
          : static_cast<double>(total_skipped) /
                (static_cast<double>(n) * static_cast<double>(epochs));
  out.events_processed = events_processed_;
  out.event_queue_peak = queue_.max_depth();
  out.cap_revisions = delta_->revisions();
  out.rebalances = rebalances_;
  out.jobs_submitted = cs.submitted;
  out.jobs_placed = cs.placed;
  out.jobs_completed = cs.completed;
  out.jobs_migrated = cs.migrated;
  out.jobs_rejected = cs.rejected;
  out.job_queue_peak = cs.queue_peak;
  out.mean_job_completion_epochs = churn_.mean_completion_epochs();
  out.jobs_active_at_end = churn_.active_total();
  out.jobs_queued_at_end = churn_.queued();
  return out;
}

}  // namespace sturgeon::fleet
