// Incremental power coordination for the event-driven fleet.
//
// The lockstep PowerCoordinator re-splits the whole budget from all N
// reports every epoch -- O(N) coordinator work per epoch, which defeats
// the point of skipping node steps. The DeltaCoordinator keeps the full
// strategies for *periodic* rebalances (rebase() from a full assign)
// and between them revises only the caps of nodes that actually woke
// and stepped, against a running (cap_sum, pool) pair:
//
//   pressure  (power near cap, or QoS violated)  -> grant from the pool,
//   headroom  (QoS met, power well under cap)    -> shrink toward power,
//   dead                                         -> collapse to idle,
//   rejoin                                       -> re-grant a floor cap.
//
// Per-epoch coordinator cost is O(#woken), sublinear in fleet size when
// most nodes are quiescent. The invariant sum(caps) <= budget holds by
// construction: grants are bounded by the pool, shrinks only enlarge it,
// and every rebase comes from a full strategy that already satisfies it.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/coordinator.h"

namespace sturgeon::fleet {

struct DeltaCoordinatorConfig {
  /// Epochs between full-strategy rebalances (always one at t=0).
  /// 0 = initial split only, deltas forever after.
  int rebalance_period = 32;
  /// Power above this fraction of the cap counts as cap pressure.
  double pressure_ratio = 0.92;
  /// Fraction of the node's natural budget granted per pressure event.
  double grant_fraction = 0.25;
  /// Power below this fraction of the cap lets the cap shrink.
  double shrink_ratio = 0.60;
  /// Headroom left above measured power when shrinking (fraction of the
  /// node budget), mirroring CoordinatorConfig::headroom_margin.
  double headroom_margin = 0.04;
  /// No shrink may push a cap below this fraction of the node budget.
  double min_cap_fraction = 0.30;
};

class DeltaCoordinator {
 public:
  DeltaCoordinator(DeltaCoordinatorConfig config, double budget_w,
                   std::size_t nodes);

  /// Adopt the caps of a full-strategy assign (rebalance or t=0).
  void rebase(const std::vector<double>& caps);

  /// Revise node i's cap from its fresh post-step report; returns the
  /// new cap. Pure arithmetic in call order -- callers iterate woken
  /// nodes in fleet order so runs stay bit-reproducible.
  double revise(std::size_t i, const cluster::NodeReport& report);

  double cap(std::size_t i) const { return caps_[i]; }
  const std::vector<double>& caps() const { return caps_; }
  double cap_sum() const { return cap_sum_; }
  double pool_w() const { return budget_w_ - cap_sum_; }

  // -- instrumentation ------------------------------------------------
  std::uint64_t revisions() const { return revisions_; }
  std::uint64_t grants() const { return grants_; }
  std::uint64_t shrinks() const { return shrinks_; }

 private:
  DeltaCoordinatorConfig config_;
  double budget_w_;
  std::vector<double> caps_;
  double cap_sum_ = 0.0;
  std::uint64_t revisions_ = 0;
  std::uint64_t grants_ = 0;
  std::uint64_t shrinks_ = 0;
};

}  // namespace sturgeon::fleet
