// Deterministic event queue for the fleet engine: a binary heap over
// FleetEvents ordered by (time, node, seq), with push-order sequence
// stamping and depth instrumentation.
//
// Single-threaded by design: only the engine's sequential epoch driver
// touches it (the parallel part of an epoch is the node step()s, which
// never schedule events themselves). That keeps the queue free of locks
// and its pop order a pure function of the push history, which is what
// makes event-driven runs bit-identical across worker thread counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

#include "fleet/event.h"

namespace sturgeon::fleet {

class EventQueue {
 public:
  /// Schedule `kind` for `node` (-1 = fleet-level) at epoch `time`.
  /// Returns the stamped event. `time` may equal the current epoch
  /// (same-epoch wakes are legal); scheduling into the past is the
  /// caller's bug and throws via STURGEON_CHECK at pop time.
  FleetEvent push(EventKind kind, int time, int node);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Earliest pending event time; -1 when empty.
  int next_time() const { return heap_.empty() ? -1 : heap_.top().time; }

  /// True when the earliest event fires at or before `t`.
  bool has_due(int t) const {
    return !heap_.empty() && heap_.top().time <= t;
  }

  /// Pop the earliest event (must exist, checked).
  FleetEvent pop();

  // -- instrumentation ------------------------------------------------
  std::uint64_t total_pushed() const { return pushed_; }
  std::size_t max_depth() const { return max_depth_; }

 private:
  std::priority_queue<FleetEvent, std::vector<FleetEvent>, EventAfter> heap_;
  std::uint64_t seq_ = 0;
  std::uint64_t pushed_ = 0;
  std::size_t max_depth_ = 0;
};

}  // namespace sturgeon::fleet
