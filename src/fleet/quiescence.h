// Quiescence policy: when may the fleet engine stop stepping a node?
//
// A node is quiescent when nothing that would change its control
// decisions is on the horizon: its load trace holds inside an epsilon
// band, its QoS slack sits inside the configured band, its governor's
// throttle level is not moving (a constant level held by the relax
// hysteresis is part of the fixed point; a changing one is active
// control), it is not in fault safe-mode and no fault injector is
// armed. Such a node's partition, DVFS level and power draw are fixed
// points of the controller -- re-running the step every epoch just
// re-derives them, which is the cost the event engine skips.
//
// A sleeping node freezes its last power/slice contribution in the
// fleet aggregates and schedules a wake at the earliest of: the next
// trace shift out of the epsilon band, its earliest predicted job
// completion, and a max-sleep backstop. External events (job arrival,
// cap change from a rebalance) wake it earlier. The approximation is
// therefore bounded by the band widths: anything larger than epsilon /
// the slack band triggers a real step.
#pragma once

#include "workloads/load_trace.h"

namespace sturgeon::fleet {

struct QuiescenceConfig {
  /// Master switch: false = lockstep-equivalent (every node steps every
  /// epoch; the twin-equivalence tests run in this mode).
  bool enabled = false;
  /// Trace band: a node sleeps only while |load(t') - load(t)| stays
  /// below this; the first epoch outside the band is a scheduled wake.
  double load_epsilon = 0.02;
  /// Minimum QoS slack (fraction of the target) required to sleep --
  /// nodes near their latency target keep stepping so the governor can
  /// react every epoch.
  double min_slack = 0.05;
  /// Required power headroom under the cap: sleep only while
  /// power <= (1 - cap_headroom) * cap, so a frozen draw cannot sit on
  /// the cap edge unobserved.
  double cap_headroom = 0.04;
  /// Backstop: never sleep past this many epochs without a real step.
  int max_sleep_epochs = 64;
  /// Sleeps shorter than this are not worth the event traffic.
  int min_sleep_epochs = 2;
};

/// First epoch s > t with |trace(s) - trace(t)| > epsilon, capped at
/// t + max_sleep. Exploits LoadTrace::at clamping past the end: a trace
/// in its final plateau yields the full max_sleep.
int next_load_shift(const LoadTrace& trace, int t, double epsilon,
                    int max_sleep);

}  // namespace sturgeon::fleet
