#include "fleet/churn.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace sturgeon::fleet {

ChurnEngine::ChurnEngine(ChurnConfig config, std::uint64_t seed,
                         std::size_t num_be_profiles, std::size_t num_nodes)
    : config_(config),
      rng_(derive_seed(seed, kChurnStream)),
      num_be_profiles_(num_be_profiles == 0 ? 1 : num_be_profiles),
      active_(num_nodes) {
  STURGEON_CHECK(config_.slots_per_node >= 1,
                 "ChurnEngine: slots_per_node must be >= 1, got "
                     << config_.slots_per_node);
  if (config_.enabled) {
    STURGEON_CHECK(config_.arrival_rate_per_epoch > 0.0,
                   "ChurnEngine: arrival rate must be > 0 when enabled");
    STURGEON_CHECK(config_.mean_size_norm_s > 0.0,
                   "ChurnEngine: mean job size must be > 0");
    next_arrival_time_ =
        rng_.exponential(config_.arrival_rate_per_epoch);
  }
}

int ChurnEngine::next_arrival_epoch() const {
  if (next_arrival_time_ < 0.0) return -1;
  return static_cast<int>(std::floor(next_arrival_time_));
}

std::vector<std::uint64_t> ChurnEngine::arrive(int t) {
  std::vector<std::uint64_t> out;
  if (next_arrival_time_ < 0.0) return out;
  while (std::floor(next_arrival_time_) <= static_cast<double>(t)) {
    Job job;
    job.id = jobs_.size();
    job.be_index = static_cast<int>(rng_.next_below(num_be_profiles_));
    job.size_norm_s = std::max(
        1e-6, rng_.lognormal_mean_cv(config_.mean_size_norm_s,
                                     config_.size_cv));
    job.remaining_norm_s = job.size_norm_s;
    job.arrival_epoch = t;
    jobs_.push_back(job);
    out.push_back(job.id);
    ++stats_.submitted;
    next_arrival_time_ += rng_.exponential(config_.arrival_rate_per_epoch);
  }
  return out;
}

void ChurnEngine::assign(std::uint64_t id, int node, int t) {
  Job& job = jobs_[id];
  STURGEON_CHECK(job.node < 0 && job.finish_epoch < 0,
                 "ChurnEngine::assign: job " << id << " already placed");
  job.node = node;
  if (job.start_epoch < 0) job.start_epoch = t;
  active_[static_cast<std::size_t>(node)].push_back(id);
  ++active_total_;
  ++stats_.placed;
}

void ChurnEngine::enqueue(std::uint64_t id) {
  pending_.push_back(id);
  if (pending_.size() > stats_.queue_peak) stats_.queue_peak = pending_.size();
}

void ChurnEngine::reject(std::uint64_t id) {
  jobs_[id].finish_epoch = -2;  // sentinel: never ran
  ++stats_.rejected;
}

std::uint64_t ChurnEngine::pop_queued() {
  STURGEON_CHECK(!pending_.empty(), "ChurnEngine::pop_queued: empty queue");
  std::uint64_t id = pending_.front();
  pending_.pop_front();
  return id;
}

std::vector<std::uint64_t> ChurnEngine::accrue(int node,
                                               double rate_norm_per_epoch,
                                               int first_epoch,
                                               int last_epoch) {
  std::vector<std::uint64_t> done;
  const int epochs = last_epoch - first_epoch + 1;
  auto& list = active_[static_cast<std::size_t>(node)];
  if (epochs <= 0 || list.empty() || rate_norm_per_epoch <= 0.0) return done;
  // Equal share frozen at the window start: at most the shortest job can
  // finish inside a sleep window (the node wakes at that epoch), so the
  // share never needs recomputing mid-window.
  const double share =
      rate_norm_per_epoch / static_cast<double>(list.size());
  for (std::uint64_t id : list) {
    Job& job = jobs_[id];
    const int need =
        static_cast<int>(std::ceil(job.remaining_norm_s / share));
    if (need <= epochs) {
      job.remaining_norm_s = 0.0;
      job.finish_epoch = first_epoch + std::max(need, 1) - 1;
      done.push_back(id);
    } else {
      job.remaining_norm_s -= share * static_cast<double>(epochs);
    }
  }
  std::sort(done.begin(), done.end(),
            [this](std::uint64_t a, std::uint64_t b) {
              const Job& ja = jobs_[a];
              const Job& jb = jobs_[b];
              if (ja.finish_epoch != jb.finish_epoch)
                return ja.finish_epoch < jb.finish_epoch;
              return a < b;
            });
  for (std::uint64_t id : done) complete(id, jobs_[id].finish_epoch);
  return done;
}

int ChurnEngine::earliest_finish(int node, double rate_norm_per_epoch,
                                 int t) const {
  const auto& list = active_[static_cast<std::size_t>(node)];
  if (list.empty() || rate_norm_per_epoch <= 0.0) return -1;
  const double share =
      rate_norm_per_epoch / static_cast<double>(list.size());
  double min_rem = -1.0;
  for (std::uint64_t id : list) {
    const double rem = jobs_[id].remaining_norm_s;
    if (min_rem < 0.0 || rem < min_rem) min_rem = rem;
  }
  const int need =
      std::max(1, static_cast<int>(std::ceil(min_rem / share)));
  return t + need;
}

void ChurnEngine::migrate(std::uint64_t id, int to, int t) {
  Job& job = jobs_[id];
  STURGEON_CHECK(job.node >= 0,
                 "ChurnEngine::migrate: job " << id << " not placed");
  detach(id);
  job.node = to;
  ++job.migrations;
  active_[static_cast<std::size_t>(to)].push_back(id);
  ++stats_.migrated;
  (void)t;
}

void ChurnEngine::complete(std::uint64_t id, int t) {
  Job& job = jobs_[id];
  detach(id);
  job.node = -1;
  job.finish_epoch = t;
  --active_total_;
  ++stats_.completed;
  stats_.completion_epochs_sum +=
      static_cast<double>(t - job.arrival_epoch + 1);
}

void ChurnEngine::detach(std::uint64_t id) {
  auto& list = active_[static_cast<std::size_t>(jobs_[id].node)];
  auto it = std::find(list.begin(), list.end(), id);
  STURGEON_CHECK(it != list.end(),
                 "ChurnEngine::detach: job " << id << " not on its node");
  list.erase(it);
}

}  // namespace sturgeon::fleet
