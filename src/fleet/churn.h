// Workload churn: the job population the fleet engine manages online.
//
// The lockstep cluster pins one LS/BE pair per node forever; real
// datacenters see best-effort work arrive, run and finish continuously
// (CuttleSys manages exactly such a churning co-scheduled population).
// The ChurnEngine models that: a seeded deterministic arrival process
// emits Jobs whose identity (BE application) comes from the workload
// catalog and whose size is a lognormal draw in *normalized BE
// throughput-seconds* -- the unit the simulator's BE slices produce.
// Jobs are placed online onto nodes (fleet/placer.h), occupy one BE
// slot each, drain at the hosting node's measured normalized BE
// throughput shared equally across its active jobs, and leave when
// their remaining work hits zero. A node whose last job leaves goes
// LS-only (ClusterNode::set_be_active(false)) and may then quiesce.
//
// Completion-time model: a job's finish epoch is a function of the
// co-location decisions made while it ran -- power caps, governor
// throttling and LS load all move the node's BE throughput, so the
// same job finishes later on a power-starved node. This is what makes
// the churn layer a completion-time-aware evaluation, not just an
// arrival counter.
//
// Determinism: one Rng stream (derive_seed(fleet seed, kChurnStream))
// drives every draw; the engine is only ever called from the engine's
// sequential phases, so job timelines are bit-identical across worker
// thread counts.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "util/rng.h"

namespace sturgeon::fleet {

/// Stream label for the churn Rng (distinct from node seeds, which
/// derive directly from the cluster seed and the node index).
inline constexpr std::uint64_t kChurnStream = 0x466c656574ULL;  // "Fleet"

struct ChurnConfig {
  bool enabled = false;
  /// Mean fleet-wide job arrivals per epoch (exponential interarrivals).
  double arrival_rate_per_epoch = 1.0;
  /// Mean job size in normalized BE throughput-seconds (a size-30 job
  /// takes 30 epochs on one full machine's worth of BE throughput).
  double mean_size_norm_s = 30.0;
  double size_cv = 1.0;  ///< lognormal coefficient of variation
  /// BE slots per node: how many jobs may share a node's BE slice.
  int slots_per_node = 4;
  /// Full fleet: queue arrivals FIFO (true) or reject them (false).
  bool queue_when_full = true;
  /// Migrate one job off a node after this many consecutive stepped
  /// epochs of QoS violation or governor throttling (0 = never).
  int migrate_after_epochs = 5;
};

struct Job {
  std::uint64_t id = 0;
  int be_index = 0;  ///< index into the BE workload catalog (identity)
  double size_norm_s = 0.0;
  double remaining_norm_s = 0.0;
  int arrival_epoch = 0;
  int start_epoch = -1;   ///< first epoch on a node (-1 while queued)
  int finish_epoch = -1;  ///< completion epoch (-1 while running)
  int node = -1;          ///< hosting node (-1 while queued/rejected)
  int migrations = 0;
};

struct ChurnStats {
  std::uint64_t submitted = 0;
  std::uint64_t placed = 0;
  std::uint64_t completed = 0;
  std::uint64_t migrated = 0;
  std::uint64_t rejected = 0;
  std::size_t queue_peak = 0;
  /// Sum over completed jobs of (finish - arrival + 1) epochs.
  double completion_epochs_sum = 0.0;
};

class ChurnEngine {
 public:
  /// `num_be_profiles` sizes the catalog-identity draw; `seed` is the
  /// fleet seed (the engine forks its own stream).
  ChurnEngine(ChurnConfig config, std::uint64_t seed,
              std::size_t num_be_profiles, std::size_t num_nodes);

  const ChurnConfig& config() const { return config_; }
  const ChurnStats& stats() const { return stats_; }

  /// Epoch of the next pending arrival, or -1 when disabled / the
  /// process has not been primed. Monotone non-decreasing.
  int next_arrival_epoch() const;

  /// Emit every job whose arrival time falls in epoch `t` (advancing
  /// the arrival clock past it) and return their ids. Jobs start
  /// unplaced; the caller routes them through the placer.
  std::vector<std::uint64_t> arrive(int t);

  Job& job(std::uint64_t id) { return jobs_[id]; }
  const Job& job(std::uint64_t id) const { return jobs_[id]; }

  /// Active job ids on `node`, in assignment order (newest last).
  const std::vector<std::uint64_t>& active_on(int node) const {
    return active_[static_cast<std::size_t>(node)];
  }

  // -- placement / lifecycle (engine-sequential only) -----------------
  void assign(std::uint64_t id, int node, int t);
  void enqueue(std::uint64_t id);
  void reject(std::uint64_t id);
  bool has_queued() const { return !pending_.empty(); }
  std::size_t queued() const { return pending_.size(); }
  /// Pop the oldest queued job id (must exist).
  std::uint64_t pop_queued();

  /// Advance every active job on `node` through epochs
  /// [first_epoch, last_epoch] at total normalized BE rate
  /// `rate_norm_per_epoch`, shared equally across the jobs active at
  /// the window start. Jobs whose remaining work drains inside the
  /// window complete at their per-job epoch and are removed; returns
  /// completed ids ordered by (finish_epoch, id).
  std::vector<std::uint64_t> accrue(int node, double rate_norm_per_epoch,
                                    int first_epoch, int last_epoch);

  /// Predicted earliest completion epoch among `node`'s active jobs if
  /// the node holds rate `rate_norm_per_epoch` from epoch t+1 on
  /// (equal sharing, frozen rate) -- the job-finish wake the sleeping
  /// node schedules. Returns -1 with no jobs or no rate.
  int earliest_finish(int node, double rate_norm_per_epoch, int t) const;

  /// Move `id` from its node to `to` at epoch `t` (slot bookkeeping is
  /// the caller's; this updates the job and the active lists).
  void migrate(std::uint64_t id, int to, int t);

  /// Jobs still running across the whole fleet.
  std::size_t active_total() const { return active_total_; }
  double mean_completion_epochs() const {
    return stats_.completed == 0
               ? 0.0
               : stats_.completion_epochs_sum /
                     static_cast<double>(stats_.completed);
  }

 private:
  void complete(std::uint64_t id, int t);
  void detach(std::uint64_t id);

  ChurnConfig config_;
  Rng rng_;
  std::size_t num_be_profiles_;
  double next_arrival_time_ = -1.0;  ///< continuous arrival clock
  std::vector<Job> jobs_;            ///< indexed by id
  std::vector<std::vector<std::uint64_t>> active_;  ///< per node
  std::deque<std::uint64_t> pending_;
  std::size_t active_total_ = 0;
  ChurnStats stats_;
};

}  // namespace sturgeon::fleet
