#include "fleet/export.h"

#include <fstream>

#include "cluster/export.h"
#include "telemetry/export.h"

namespace sturgeon::fleet {

namespace {

std::string num(double v) {
  return telemetry::attr_to_json(telemetry::AttrValue(v));
}

}  // namespace

void write_fleet_jsonl(const FleetResult& result, std::ostream& os) {
  cluster::write_cluster_jsonl(result.cluster, os);
  os << "{\"type\":\"fleet_summary\",\"nodes\":" << result.cluster.nodes
     << ",\"epochs\":" << result.cluster.epochs
     << ",\"skipped_epochs\":" << result.total_skipped_epochs
     << ",\"wakes\":" << result.total_wakes
     << ",\"skipped_fraction\":" << num(result.skipped_fraction)
     << ",\"events_processed\":" << result.events_processed
     << ",\"event_queue_peak\":" << result.event_queue_peak
     << ",\"cap_revisions\":" << result.cap_revisions
     << ",\"rebalances\":" << result.rebalances
     << ",\"jobs_submitted\":" << result.jobs_submitted
     << ",\"jobs_placed\":" << result.jobs_placed
     << ",\"jobs_completed\":" << result.jobs_completed
     << ",\"jobs_migrated\":" << result.jobs_migrated
     << ",\"jobs_rejected\":" << result.jobs_rejected
     << ",\"job_queue_peak\":" << result.job_queue_peak
     << ",\"jobs_active_at_end\":" << result.jobs_active_at_end
     << ",\"jobs_queued_at_end\":" << result.jobs_queued_at_end
     << ",\"mean_job_completion_epochs\":"
     << num(result.mean_job_completion_epochs) << "}\n";
}

bool write_fleet_jsonl(const FleetResult& result, const std::string& path) {
  const auto count_error = [&result] {
    if (result.cluster.telemetry != nullptr) {
      result.cluster.telemetry->metrics()
          .counter("telemetry.export.errors")
          .inc();
    }
  };
  std::ofstream os(path);
  if (!os) {
    count_error();
    return false;
  }
  write_fleet_jsonl(result, os);
  os.flush();
  if (!os.good()) {
    count_error();
    return false;
  }
  return true;
}

}  // namespace sturgeon::fleet
