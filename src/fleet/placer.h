// Online slot placement for churn jobs.
//
// The batch scheduler in cluster/placement.h matches one workload pair
// per node up front; churn jobs instead arrive one at a time and need
// an O(log N) "which node hosts this job" answer against the live
// occupancy state. SlotPlacer keeps per-free-slot-count buckets of
// node ids (ordered sets, ties toward the lower id like the batch
// scheduler) and reuses the same PlacementKind vocabulary:
//
//   worst-fit     node with the most free BE slots (spread load);
//   bin-pack      node with the fewest free slots that still fits
//                 (consolidate, leave whole nodes idle to quiesce);
//   round-robin   rotating cursor over nodes with a free slot.
//
// All state changes go through claim()/release() so the placer is a
// pure function of the assignment history -- deterministic across
// thread counts because only the sequential engine phases call it.
#pragma once

#include <cstddef>
#include <set>
#include <vector>

#include "cluster/placement.h"

namespace sturgeon::fleet {

class SlotPlacer {
 public:
  SlotPlacer(cluster::PlacementKind kind, int num_nodes, int slots_per_node);

  /// Pick the host for one job, or -1 when no node has a free slot.
  /// `exclude` (e.g. the migration source) is never returned. Does NOT
  /// claim the slot; callers pair every successful pick with claim().
  int pick(int exclude = -1) const;

  void claim(int node);    ///< one slot consumed (must have a free one)
  void release(int node);  ///< one slot freed (must have a claimed one)

  int free_slots(int node) const {
    return free_[static_cast<std::size_t>(node)];
  }
  /// Total free slots fleet-wide.
  long total_free() const { return total_free_; }

 private:
  cluster::PlacementKind kind_;
  int slots_per_node_;
  std::vector<int> free_;                ///< per-node free slot count
  std::vector<std::set<int>> buckets_;   ///< buckets_[f] = nodes with f free
  long total_free_ = 0;
  mutable int cursor_ = 0;  ///< round-robin rotation point
};

}  // namespace sturgeon::fleet
