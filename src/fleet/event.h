// Fleet events: the currency of the event-driven stepping engine.
//
// The lockstep ClusterSim touches every node every epoch; the fleet
// engine instead advances a priority queue of events keyed by
// (time, node, seq). A node with nothing happening -- stable load
// trace, slack in band, no pending faults, no churn -- schedules its
// next wake and is skipped until that epoch arrives or some event
// (job arrival/finish, cap change, rebalance) targets it earlier.
//
// Determinism: the triple key totally orders events. `time` is the
// epoch the event fires, `node` breaks ties across nodes in fleet
// order, and `seq` (a monotone counter stamped at push) breaks ties
// between events targeting the same node in creation order. No clocks,
// no RNG -- the queue's pop order is a pure function of the pushes.
#pragma once

#include <cstdint>

namespace sturgeon::fleet {

enum class EventKind {
  kWake,        ///< scheduled quiescence expiry (load shift / max sleep)
  kJobArrival,  ///< fleet-level: the churn process emits the next job
  kJobFinish,   ///< a sleeping node's earliest job completion lands
  kCapChange,   ///< a rebalance shrank a sleeping node's cap below its
                ///< frozen power draw -- it must wake and re-govern
  kRebalance,   ///< fleet-level: periodic full coordinator re-split
};

const char* to_string(EventKind kind);

/// `node` is the target fleet index, or -1 for fleet-level events
/// (arrivals, rebalances).
struct FleetEvent {
  int time = 0;
  int node = -1;
  std::uint64_t seq = 0;
  EventKind kind = EventKind::kWake;
};

/// Strict weak ordering by (time, node, seq): the queue's pop order.
struct EventAfter {
  bool operator()(const FleetEvent& a, const FleetEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    if (a.node != b.node) return a.node > b.node;
    return a.seq > b.seq;
  }
};

}  // namespace sturgeon::fleet
