#include "fleet/quiescence.h"

#include <cmath>

#include "util/check.h"

namespace sturgeon::fleet {

int next_load_shift(const LoadTrace& trace, int t, double epsilon,
                    int max_sleep) {
  STURGEON_CHECK(max_sleep >= 1, "next_load_shift: max_sleep must be >= 1");
  const double base = trace.at(t);
  const int horizon = t + max_sleep;
  // Past the trace end at() clamps to the final value, so the scan can
  // stop there: no further shift is possible.
  const int scan_end =
      horizon < trace.duration_s() ? horizon : trace.duration_s();
  for (int s = t + 1; s <= scan_end; ++s) {
    if (std::abs(trace.at(s) - base) > epsilon) return s;
  }
  return horizon;
}

}  // namespace sturgeon::fleet
