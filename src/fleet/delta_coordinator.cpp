#include "fleet/delta_coordinator.h"

#include <algorithm>

#include "util/check.h"

namespace sturgeon::fleet {

DeltaCoordinator::DeltaCoordinator(DeltaCoordinatorConfig config,
                                   double budget_w, std::size_t nodes)
    : config_(config), budget_w_(budget_w), caps_(nodes, 0.0) {
  STURGEON_CHECK(budget_w_ > 0.0, "DeltaCoordinator: budget must be > 0");
  STURGEON_CHECK(config_.pressure_ratio > config_.shrink_ratio,
                 "DeltaCoordinator: pressure_ratio must exceed shrink_ratio");
}

void DeltaCoordinator::rebase(const std::vector<double>& caps) {
  STURGEON_CHECK(caps.size() == caps_.size(),
                 "DeltaCoordinator::rebase: cap vector size mismatch");
  caps_ = caps;
  cap_sum_ = 0.0;
  for (double c : caps_) cap_sum_ += c;
  STURGEON_CHECK(cap_sum_ <= budget_w_ * (1.0 + 1e-9),
                 "DeltaCoordinator::rebase: caps exceed budget ("
                     << cap_sum_ << " > " << budget_w_ << ")");
}

double DeltaCoordinator::revise(std::size_t i,
                                const cluster::NodeReport& r) {
  const double cap = caps_[i];
  double next = cap;
  ++revisions_;
  if (r.dead()) {
    // Crashed: the package still draws uncore power, nothing more.
    next = std::min(cap, r.idle_w);
  } else if (r.rejoined) {
    // Post-outage reports predate the crash; re-grant a floor cap and
    // let pressure revisions grow it back.
    const double floor =
        std::max(r.idle_w, config_.min_cap_fraction * r.budget_w);
    next = std::min(cap + pool_w(), std::max(cap, floor));
  } else if (!r.qos_met || r.power_w > config_.pressure_ratio * cap) {
    const double want =
        std::min(r.budget_w, cap + config_.grant_fraction * r.budget_w);
    next = cap + std::max(0.0, std::min(want - cap, pool_w()));
    if (next > cap) ++grants_;
  } else if (r.alive() && r.power_w < config_.shrink_ratio * cap) {
    const double floor =
        std::max(r.idle_w, config_.min_cap_fraction * r.budget_w);
    const double target = r.power_w + config_.headroom_margin * r.budget_w;
    next = std::max(floor, std::min(cap, target));
    if (next < cap) ++shrinks_;
  }
  cap_sum_ += next - cap;
  caps_[i] = next;
  return next;
}

}  // namespace sturgeon::fleet
