#include "fleet/event_queue.h"

#include "util/check.h"

namespace sturgeon::fleet {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kWake: return "wake";
    case EventKind::kJobArrival: return "job-arrival";
    case EventKind::kJobFinish: return "job-finish";
    case EventKind::kCapChange: return "cap-change";
    case EventKind::kRebalance: return "rebalance";
  }
  return "unknown";
}

FleetEvent EventQueue::push(EventKind kind, int time, int node) {
  STURGEON_CHECK(time >= 0, "EventQueue::push: negative time " << time);
  FleetEvent e;
  e.time = time;
  e.node = node;
  e.seq = seq_++;
  e.kind = kind;
  heap_.push(e);
  ++pushed_;
  if (heap_.size() > max_depth_) max_depth_ = heap_.size();
  return e;
}

FleetEvent EventQueue::pop() {
  STURGEON_CHECK(!heap_.empty(), "EventQueue::pop: empty queue");
  FleetEvent e = heap_.top();
  heap_.pop();
  return e;
}

}  // namespace sturgeon::fleet
