#include "fleet/placer.h"

#include "util/check.h"

namespace sturgeon::fleet {

SlotPlacer::SlotPlacer(cluster::PlacementKind kind, int num_nodes,
                       int slots_per_node)
    : kind_(kind),
      slots_per_node_(slots_per_node),
      free_(static_cast<std::size_t>(num_nodes), slots_per_node),
      buckets_(static_cast<std::size_t>(slots_per_node) + 1) {
  STURGEON_CHECK(num_nodes > 0 && slots_per_node > 0,
                 "SlotPlacer: need nodes > 0 and slots > 0");
  for (int i = 0; i < num_nodes; ++i) {
    buckets_[static_cast<std::size_t>(slots_per_node)].insert(i);
  }
  total_free_ = static_cast<long>(num_nodes) * slots_per_node;
}

namespace {

// First id != exclude in an ordered set, or -1.
int first_not(const std::set<int>& s, int exclude) {
  for (auto it = s.begin(); it != s.end(); ++it) {
    if (*it != exclude) return *it;
  }
  return -1;
}

}  // namespace

int SlotPlacer::pick(int exclude) const {
  switch (kind_) {
    case cluster::PlacementKind::kWorstFit: {
      for (int f = slots_per_node_; f >= 1; --f) {
        int id = first_not(buckets_[static_cast<std::size_t>(f)], exclude);
        if (id >= 0) return id;
      }
      return -1;
    }
    case cluster::PlacementKind::kBinPack: {
      for (int f = 1; f <= slots_per_node_; ++f) {
        int id = first_not(buckets_[static_cast<std::size_t>(f)], exclude);
        if (id >= 0) return id;
      }
      return -1;
    }
    case cluster::PlacementKind::kRoundRobin: {
      // Smallest eligible id >= cursor_, wrapping; advance the cursor
      // past the pick so successive jobs rotate through the fleet.
      int best = -1;
      int wrap_best = -1;
      for (int f = 1; f <= slots_per_node_; ++f) {
        const auto& bucket = buckets_[static_cast<std::size_t>(f)];
        auto it = bucket.lower_bound(cursor_);
        while (it != bucket.end() && *it == exclude) ++it;
        if (it != bucket.end() && (best < 0 || *it < best)) best = *it;
        int head = first_not(bucket, exclude);
        if (head >= 0 && (wrap_best < 0 || head < wrap_best))
          wrap_best = head;
      }
      int id = best >= 0 ? best : wrap_best;
      if (id >= 0) cursor_ = id + 1;
      return id;
    }
  }
  return -1;
}

void SlotPlacer::claim(int node) {
  int& f = free_[static_cast<std::size_t>(node)];
  STURGEON_CHECK(f > 0, "SlotPlacer::claim: node " << node << " is full");
  buckets_[static_cast<std::size_t>(f)].erase(node);
  --f;
  --total_free_;
  if (f > 0) buckets_[static_cast<std::size_t>(f)].insert(node);
}

void SlotPlacer::release(int node) {
  int& f = free_[static_cast<std::size_t>(node)];
  STURGEON_CHECK(f < slots_per_node_,
                 "SlotPlacer::release: node " << node << " has no claimed slot");
  if (f > 0) buckets_[static_cast<std::size_t>(f)].erase(node);
  ++f;
  ++total_free_;
  buckets_[static_cast<std::size_t>(f)].insert(node);
}

}  // namespace sturgeon::fleet
