// Fleet JSONL roll-up: the cluster export (per-node + cluster lines,
// now carrying skipped_epochs/wakes) followed by one fleet_summary
// line with the event-engine and churn accounting, so
// tools/trace_stats.py --fleet can reconcile an event-driven run:
// every node's epochs + skipped_epochs equals the run's epoch count,
// and the fleet line's totals equal the node-line sums.
#pragma once

#include <ostream>
#include <string>

#include "fleet/fleet.h"

namespace sturgeon::fleet {

/// write_cluster_jsonl(result.cluster) plus a final
/// `{"type":"fleet_summary",...}` line. Schema stability rules follow
/// telemetry/export.h: append fields, never rename or reorder.
void write_fleet_jsonl(const FleetResult& result, std::ostream& os);

/// File variant; returns false (bumping telemetry.export.errors on the
/// cluster context) when the path cannot be opened or the write comes
/// up short. Never throws.
bool write_fleet_jsonl(const FleetResult& result, const std::string& path);

}  // namespace sturgeon::fleet
