// Heracles-style baseline (Lo et al., ISCA'15), the paper's other point
// of comparison. Heracles guards the LS service with independent
// subcontrollers and uses DVFS on the BE cores as its *only* power lever:
//
//   - power subcontroller: if measured package power nears the budget,
//     step the BE frequency down; when there is headroom, step it up;
//   - core subcontroller: grow the LS core allocation when slack is low,
//     shrink it when slack is high;
//   - cache subcontroller: grow the BE way allocation slowly while the LS
//     service is healthy, claw it back quickly otherwise.
//
// The LS service always runs at the top P-state. Because the BE side
// inherits whatever cores/ways remain and only frequency reacts to power,
// Heracles misses configurations where a smaller, faster BE slice (or a
// bigger, slower one) would yield more throughput -- the preference
// blindness Sturgeon exploits (paper Sections II-C and III-C).
#pragma once

#include "core/policy.h"

namespace sturgeon::baselines {

struct HeraclesOptions {
  double alpha = 0.10;
  double beta = 0.20;
  double power_budget_w = 100.0;
  double power_guard = 0.98;  ///< step F2 down above guard * budget
  double power_slack = 0.90;  ///< step F2 up below slack * budget
};

class HeraclesController : public core::Policy {
 public:
  HeraclesController(const MachineSpec& machine, double qos_target_ms,
                     HeraclesOptions options);

  std::string name() const override { return "Heracles"; }
  std::string describe() const override;
  void reset() override { clear_decision(); }
  using core::Policy::decide;
  Partition decide(const sim::ServerTelemetry& sample,
                   const Partition& current) override;

  /// Retarget the power subcontroller's budget (cluster re-caps).
  bool supports_power_cap() const override { return true; }
  void set_power_cap(double watts) override { options_.power_budget_w = watts; }

 private:
  MachineSpec machine_;
  double qos_target_ms_;
  HeraclesOptions options_;
};

}  // namespace sturgeon::baselines
