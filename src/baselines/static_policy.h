// Fixed-partition policy: applies one configuration and never moves.
// Used by the motivation experiments (Figs 2 and 3 evaluate fixed
// configurations), by tests, and as the "no management" strawman.
#pragma once

#include "core/policy.h"

namespace sturgeon::baselines {

class StaticPolicy : public core::Policy {
 public:
  explicit StaticPolicy(Partition partition, std::string label = "Static")
      : partition_(partition), label_(std::move(label)) {}

  std::string name() const override { return label_; }
  void reset() override {}
  Partition decide(const sim::ServerTelemetry& /*sample*/,
                   const Partition& /*current*/) override {
    return partition_;
  }

 private:
  Partition partition_;
  std::string label_;
};

}  // namespace sturgeon::baselines
