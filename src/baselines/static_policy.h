// Fixed-partition policy: applies one configuration and never moves.
// Used by the motivation experiments (Figs 2 and 3 evaluate fixed
// configurations), by tests, and as the "no management" strawman.
#pragma once

#include <sstream>

#include "core/policy.h"

namespace sturgeon::baselines {

class StaticPolicy : public core::Policy {
 public:
  explicit StaticPolicy(Partition partition, std::string label = "Static")
      : partition_(partition), label_(std::move(label)) {}

  std::string name() const override { return label_; }
  std::string describe() const override {
    std::ostringstream os;
    os << label_ << "(ls=C" << partition_.ls.cores << "/F"
       << partition_.ls.freq_level << "/L" << partition_.ls.llc_ways
       << ", be=C" << partition_.be.cores << "/F" << partition_.be.freq_level
       << "/L" << partition_.be.llc_ways << ")";
    return os.str();
  }
  void reset() override { clear_decision(); }
  using core::Policy::decide;
  Partition decide(const sim::ServerTelemetry& /*sample*/,
                   const Partition& /*current*/) override {
    begin_decision();
    last_decision_.allocation = Allocation::of(partition_);
    last_decision_.action = core::Action::kStatic;
    return partition_;
  }

 private:
  Partition partition_;
  std::string label_;
};

}  // namespace sturgeon::baselines
