#include "baselines/heracles.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>

#include "telemetry/monitor.h"

namespace sturgeon::baselines {

HeraclesController::HeraclesController(const MachineSpec& machine,
                                       double qos_target_ms,
                                       HeraclesOptions options)
    : machine_(machine), qos_target_ms_(qos_target_ms), options_(options) {
  if (qos_target_ms <= 0.0 || options.power_budget_w <= 0.0 ||
      options.beta <= options.alpha) {
    throw std::invalid_argument("HeraclesController: bad options");
  }
}

std::string HeraclesController::describe() const {
  std::ostringstream os;
  os << name() << "(alpha=" << options_.alpha << ", beta=" << options_.beta
     << ", qos_target_ms=" << qos_target_ms_
     << ", power_budget_w=" << options_.power_budget_w
     << ", guard=" << options_.power_guard
     << ", slack=" << options_.power_slack << ")";
  return os.str();
}

Partition HeraclesController::decide(const sim::ServerTelemetry& sample,
                                     const Partition& current) {
  const double slack =
      telemetry::latency_slack(sample.ls.p95_ms, qos_target_ms_);
  begin_decision().slack = slack;
  core::Action action = core::Action::kHold;
  std::string detail;
  Partition p = current;
  p.ls.freq_level = machine_.max_freq_level();  // LS always full speed

  // Core subcontroller.
  if (slack < options_.alpha) {
    // Grow LS aggressively (Heracles disables BE growth and claws back).
    const int grab = std::min(2, p.be.cores - 1);
    if (grab > 0) {
      p.ls.cores += grab;
      p.be.cores -= grab;
      action = core::Action::kUpsize;
      detail = "cores";
    } else if (p.be.cores == 0) {
      // nothing to take
    }
    // Cache subcontroller: claw back ways quickly under pressure.
    const int ways = std::min(2, p.be.llc_ways - 1);
    if (ways > 0) {
      p.ls.llc_ways += ways;
      p.be.llc_ways -= ways;
      if (action == core::Action::kHold) {
        action = core::Action::kUpsize;
        detail = "ways";
      }
    }
  } else if (slack > options_.beta) {
    if (p.be.cores == 0) {
      action = core::Action::kSeedBe;
      // Bootstrap a minimal BE slice at the lowest P-state.
      p.ls.cores = std::max(1, p.ls.cores - 1);
      p.ls.llc_ways = std::max(1, p.ls.llc_ways - 1);
      p.be = AppSlice{machine_.num_cores - p.ls.cores, 0,
                      machine_.llc_ways - p.ls.llc_ways};
    } else {
      if (p.ls.cores > 1) {
        --p.ls.cores;
        ++p.be.cores;
        action = core::Action::kDownsize;
        detail = "cores";
      }
      // Cache subcontroller: grow the BE share slowly while healthy.
      if (p.ls.llc_ways > 1) {
        --p.ls.llc_ways;
        ++p.be.llc_ways;
        if (action == core::Action::kHold) {
          action = core::Action::kDownsize;
          detail = "ways";
        }
      }
    }
  }

  // Power subcontroller: BE DVFS is the only power actuator.
  if (p.be.cores > 0) {
    if (sample.power_w > options_.power_guard * options_.power_budget_w) {
      p.be.freq_level = std::max(0, p.be.freq_level - 1);
      if (action == core::Action::kHold) {
        action = core::Action::kPowerCap;
        detail = "freq";
      }
    } else if (sample.power_w <
               options_.power_slack * options_.power_budget_w) {
      p.be.freq_level =
          std::min(machine_.max_freq_level(), p.be.freq_level + 1);
      if (action == core::Action::kHold) {
        action = core::Action::kBeBoost;
        detail = "freq";
      }
    }
  }
  last_decision_.allocation = Allocation::of(p);
  last_decision_.action = action;
  last_decision_.detail = std::move(detail);
  return p;
}

}  // namespace sturgeon::baselines
