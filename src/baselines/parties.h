// Enhanced PARTIES baseline (Chen, Delimitrou, Martinez, ASPLOS'19), the
// paper's comparison system (Section VII-A).
//
// PARTIES is a feedback controller: each interval it adjusts ONE unit of
// ONE resource type and watches the next interval's latency. Upsizing
// (slack < alpha) gives the LS service a unit; if latency does not
// improve, the unit is reverted and the next resource type is tried.
// Downsizing (slack > beta) harvests a unit from the LS service; if the
// consequent slack collapses, the unit is reverted. It has no models and
// no notion of BE resource preference.
//
// The original system is power-oblivious; the paper enhances it so an
// adjustment that overloads the measured power budget is reverted and
// another type is tried. We additionally let the BE frequency drift up
// only when measured power allows, matching the paper's description of
// PARTIES "proactively adjusting the core frequencies of both co-located
// applications". Even so, convergence takes several feedback iterations,
// during which overload can be live -- the effect Fig 2/9 reports.
#pragma once

#include "core/policy.h"

namespace sturgeon::baselines {

struct PartiesOptions {
  double alpha = 0.10;
  double beta = 0.20;
  double power_budget_w = 0.0;  ///< 0 = power-oblivious (original PARTIES)
  /// Relative p95 improvement required to keep an upsizing step.
  double improvement_threshold = 0.05;
  /// PARTIES periodically probes whether the LS service can spare
  /// resources: after this many consecutive intervals of healthy slack
  /// (above the alpha bound but below beta), it attempts a downsize even
  /// though slack never crossed beta.
  int probe_patience_s = 4;
};

class PartiesController : public core::Policy {
 public:
  PartiesController(const MachineSpec& machine, double qos_target_ms,
                    PartiesOptions options);

  std::string name() const override;
  std::string describe() const override;
  void reset() override;
  using core::Policy::decide;
  Partition decide(const sim::ServerTelemetry& sample,
                   const Partition& current) override;

  /// Retarget the measured-power guard (cluster coordinator re-caps).
  /// A positive cap makes an originally power-oblivious instance
  /// power-aware, matching the paper's enhanced PARTIES.
  bool supports_power_cap() const override { return true; }
  void set_power_cap(double watts) override { options_.power_budget_w = watts; }

 private:
  enum class Resource { kCores, kFreq, kWays };
  static constexpr int kNumResources = 3;

  static const char* resource_name(Resource r);

  /// Record the epoch's outcome on last_decision() and return `p`.
  Partition finish(const Partition& p, core::Action action,
                   std::string detail = {});

  /// Apply one unit of `r` toward the LS service (`toward_ls`) or back to
  /// the BE side; returns nullopt when not expressible.
  std::optional<Partition> adjust(const Partition& p, Resource r,
                                  bool toward_ls) const;

  MachineSpec machine_;
  double qos_target_ms_;
  PartiesOptions options_;

  int resource_idx_ = 0;           ///< round-robin cursor over types
  bool pending_feedback_ = false;  ///< an adjustment awaits its next sample
  bool pending_upsize_ = false;
  Resource pending_resource_ = Resource::kCores;
  double p95_before_ms_ = 0.0;
  int healthy_streak_ = 0;         ///< consecutive in-band intervals
  int cooldown_ = 0;               ///< probe lock-out after a violation
};

}  // namespace sturgeon::baselines
