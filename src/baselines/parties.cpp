#include "baselines/parties.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>

#include "telemetry/monitor.h"

namespace sturgeon::baselines {

PartiesController::PartiesController(const MachineSpec& machine,
                                     double qos_target_ms,
                                     PartiesOptions options)
    : machine_(machine), qos_target_ms_(qos_target_ms), options_(options) {
  if (qos_target_ms <= 0.0 || options.alpha < 0.0 ||
      options.beta <= options.alpha) {
    throw std::invalid_argument("PartiesController: bad options");
  }
}

std::string PartiesController::name() const {
  return options_.power_budget_w > 0.0 ? "PARTIES(power-enhanced)"
                                       : "PARTIES";
}

std::string PartiesController::describe() const {
  std::ostringstream os;
  os << name() << "(alpha=" << options_.alpha << ", beta=" << options_.beta
     << ", qos_target_ms=" << qos_target_ms_
     << ", power_budget_w=" << options_.power_budget_w
     << ", probe_patience_s=" << options_.probe_patience_s << ")";
  return os.str();
}

void PartiesController::reset() {
  resource_idx_ = 0;
  pending_feedback_ = false;
  pending_upsize_ = false;
  p95_before_ms_ = 0.0;
  healthy_streak_ = 0;
  cooldown_ = 0;
  clear_decision();
}

const char* PartiesController::resource_name(Resource r) {
  switch (r) {
    case Resource::kCores: return "cores";
    case Resource::kFreq: return "freq";
    case Resource::kWays: return "ways";
  }
  return "?";
}

Partition PartiesController::finish(const Partition& p,
                                    core::Action action,
                                    std::string detail) {
  last_decision_.allocation = Allocation::of(p);
  last_decision_.action = action;
  last_decision_.detail = std::move(detail);
  return p;
}

std::optional<Partition> PartiesController::adjust(const Partition& p,
                                                   Resource r,
                                                   bool toward_ls) const {
  Partition out = p;
  switch (r) {
    case Resource::kCores: {
      if (toward_ls) {
        if (out.be.cores <= 1) return std::nullopt;
        ++out.ls.cores;
        --out.be.cores;
      } else {
        if (out.ls.cores <= 1) return std::nullopt;
        --out.ls.cores;
        ++out.be.cores;
      }
      return out;
    }
    case Resource::kWays: {
      if (toward_ls) {
        if (out.be.llc_ways <= 1) return std::nullopt;
        ++out.ls.llc_ways;
        --out.be.llc_ways;
      } else {
        if (out.ls.llc_ways <= 1) return std::nullopt;
        --out.ls.llc_ways;
        ++out.be.llc_ways;
      }
      return out;
    }
    case Resource::kFreq: {
      if (toward_ls) {
        if (out.ls.freq_level >= machine_.max_freq_level()) {
          return std::nullopt;
        }
        ++out.ls.freq_level;
      } else {
        if (out.ls.freq_level <= 0) return std::nullopt;
        --out.ls.freq_level;
      }
      return out;
    }
  }
  return std::nullopt;
}

Partition PartiesController::decide(const sim::ServerTelemetry& sample,
                                    const Partition& current) {
  const double slack =
      telemetry::latency_slack(sample.ls.p95_ms, qos_target_ms_);
  begin_decision().slack = slack;
  const bool power_aware = options_.power_budget_w > 0.0;

  // Power-enhancement: a live overload preempts everything; back the BE
  // frequency off one step per interval until within budget.
  if (power_aware && sample.power_w > options_.power_budget_w) {
    pending_feedback_ = false;
    if (current.be.cores > 0 && current.be.freq_level > 0) {
      Partition p = current;
      --p.be.freq_level;
      return finish(p, core::Action::kPowerCap, "freq");
    }
    // Already at the lowest P-state: shrink the BE span instead.
    if (current.be.cores > 1) {
      Partition p = current;
      --p.be.cores;
      ++p.ls.cores;
      return finish(p, core::Action::kPowerCap, "cores");
    }
    return finish(current, core::Action::kHold);
  }

  // Evaluate the feedback of the adjustment made last interval.
  if (pending_feedback_) {
    pending_feedback_ = false;
    if (pending_upsize_) {
      const double improvement =
          p95_before_ms_ > 0.0
              ? (p95_before_ms_ - sample.ls.p95_ms) / p95_before_ms_
              : 0.0;
      if (improvement < options_.improvement_threshold &&
          slack < options_.alpha) {
        // No improvement: revert and move on to the next resource type.
        resource_idx_ = (resource_idx_ + 1) % kNumResources;
        if (const auto p = adjust(
                current, static_cast<Resource>(pending_resource_), false)) {
          return finish(*p, core::Action::kRevert);
        }
      }
    } else {
      if (slack < options_.alpha) {
        // Downsizing collapsed the slack: give the unit back.
        if (const auto p = adjust(
                current, static_cast<Resource>(pending_resource_), true)) {
          return finish(*p, core::Action::kRevert);
        }
      }
    }
  }

  if (slack < options_.alpha) {
    // Upsize: allocate units of the current resource type to LS. PARTIES
    // scales the step with the severity, and a fresh violation restarts
    // the rotation at cores (the resource that most often relieves an
    // overloaded leaf service).
    if (slack < -0.5 && !pending_feedback_) resource_idx_ = 0;
    const int units = slack < -0.5 ? 3 : slack < 0.0 ? 2 : 1;
    for (int attempt = 0; attempt < kNumResources; ++attempt) {
      const auto r = static_cast<Resource>(resource_idx_);
      std::optional<Partition> stepped;
      for (int u = 0; u < units; ++u) {
        if (const auto p = adjust(stepped ? *stepped : current, r, true)) {
          stepped = p;
        }
      }
      if (stepped) {
        pending_feedback_ = true;
        pending_upsize_ = true;
        pending_resource_ = r;
        p95_before_ms_ = sample.ls.p95_ms;
        return finish(*stepped, core::Action::kUpsize, resource_name(r));
      }
      resource_idx_ = (resource_idx_ + 1) % kNumResources;
    }
    return finish(current, core::Action::kHold);
  }

  // Track how long slack has been healthy; a long healthy streak lets
  // PARTIES probe for reclaimable resources even below beta.
  const double probe_floor = 0.5 * (options_.alpha + options_.beta);
  if (slack < 0.0) cooldown_ = 8;  // no probing right after a violation
  if (cooldown_ > 0) --cooldown_;
  const bool probe_downsize = slack >= probe_floor && cooldown_ == 0 &&
                              healthy_streak_ >= options_.probe_patience_s;
  healthy_streak_ = slack >= probe_floor ? healthy_streak_ + 1 : 0;
  if (probe_downsize) healthy_streak_ = 0;

  if (slack > options_.beta || probe_downsize) {
    // Downsize: harvest one unit from the LS service for the BE side.
    // An empty BE side first receives a minimal slice.
    if (current.be.cores == 0) {
      Partition p = current;
      p.ls.cores = std::max(1, p.ls.cores - 1);
      p.ls.llc_ways = std::max(1, p.ls.llc_ways - 1);
      p.be = AppSlice{machine_.num_cores - p.ls.cores,
                      power_aware ? 0 : machine_.max_freq_level(),
                      machine_.llc_ways - p.ls.llc_ways};
      return finish(p, core::Action::kSeedBe);
    }
    for (int attempt = 0; attempt < kNumResources; ++attempt) {
      const auto r = static_cast<Resource>(resource_idx_);
      resource_idx_ = (resource_idx_ + 1) % kNumResources;
      if (const auto p = adjust(current, r, false)) {
        pending_feedback_ = true;
        pending_upsize_ = false;
        pending_resource_ = r;
        p95_before_ms_ = sample.ls.p95_ms;
        return finish(*p,
                      probe_downsize ? core::Action::kProbe
                                     : core::Action::kDownsize,
                      resource_name(r));
      }
    }
    return finish(current, core::Action::kHold);
  }

  // In-band: opportunistically raise the BE frequency one step when the
  // measured power clearly allows (or unconditionally when power-
  // oblivious, as the original PARTIES runs BE cores at full speed).
  if (current.be.cores > 0 &&
      current.be.freq_level < machine_.max_freq_level()) {
    const bool headroom =
        !power_aware || sample.power_w < 0.95 * options_.power_budget_w;
    if (headroom) {
      Partition p = current;
      ++p.be.freq_level;
      return finish(p, core::Action::kBeBoost, "freq");
    }
  }
  return finish(current, core::Action::kHold);
}

}  // namespace sturgeon::baselines
