// Actuator and sensor interfaces mirroring the paper's Table III tools:
//
//   Core      -> Linux cpuset cgroups      (CpusetController)
//   LLC       -> Intel CAT                 (CatController)
//   Frequency -> ACPI frequency driver     (FreqDriver)
//   Power     -> Intel RAPL                (RaplReader)
//
// Sturgeon's runtime talks only to these interfaces; the simulator-backed
// implementations in sim_backend.h stand in for the real drivers, and a
// real-hardware backend (pqos / sysfs cpufreq / powercap) could be
// dropped in without touching the controller code.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace sturgeon::isolation {

/// The two co-located cgroups Sturgeon manages.
enum class AppId { kLs = 0, kBe = 1 };

/// A transient actuation failure: the tool call did not take effect but
/// may succeed if retried (EBUSY from a cgroup write, an MSR write that
/// bounced, a driver mid-reload). Distinct from std::invalid_argument,
/// which marks requests that can never succeed. Thrown by fault-injected
/// tool decorators (fault/faulty_tools.h) and, on real hardware, by any
/// backend whose driver hiccups; absorbed by fault::RetryingEnforcer.
class ActuatorError : public std::runtime_error {
 public:
  explicit ActuatorError(const std::string& what)
      : std::runtime_error("actuator failure: " + what) {}
};

/// Core placement (cpuset cgroups): each app is pinned to an explicit
/// list of logical core ids.
class CpusetController {
 public:
  virtual ~CpusetController() = default;

  /// Pin `app` to exactly `cores` (may be empty for an idle BE group).
  /// Throws std::invalid_argument on out-of-range or duplicate ids.
  virtual void set_cpuset(AppId app, const std::vector<int>& cores) = 0;

  virtual std::vector<int> cpuset(AppId app) const = 0;
};

/// LLC way partitioning (Intel CAT): each app's class of service carries
/// a way bitmask. Masks of co-located apps must be disjoint to provide
/// isolation (real CAT allows overlap; Sturgeon never uses it).
class CatController {
 public:
  virtual ~CatController() = default;

  /// Bit i set = way i allocated. Throws on masks wider than the LLC.
  virtual void set_way_mask(AppId app, std::uint32_t mask) = 0;

  virtual std::uint32_t way_mask(AppId app) const = 0;
};

/// Per-core DVFS (ACPI driver): frequency is set per core id; Sturgeon
/// always programs a whole cpuset to one P-state.
class FreqDriver {
 public:
  virtual ~FreqDriver() = default;

  /// Set the P-state index of every core in `cores`.
  virtual void set_frequency_level(const std::vector<int>& cores,
                                   int level) = 0;

  virtual int frequency_level(int core) const = 0;
};

/// Package power sensor (RAPL).
class RaplReader {
 public:
  virtual ~RaplReader() = default;

  /// Average package power over the last sampling interval, in watts.
  virtual double read_package_power_w() const = 0;
};

/// Number of ways in a contiguous mask starting at bit `lsb`.
std::uint32_t contiguous_mask(int num_ways, int lsb);

}  // namespace sturgeon::isolation
