#include "isolation/sim_backend.h"

#include <algorithm>
#include <bit>
#include <set>
#include <stdexcept>

namespace sturgeon::isolation {

std::uint32_t contiguous_mask(int num_ways, int lsb) {
  if (num_ways < 0 || lsb < 0 || num_ways + lsb > 32) {
    throw std::invalid_argument("contiguous_mask: out of range");
  }
  if (num_ways == 0) return 0;
  const std::uint64_t m = ((1ull << num_ways) - 1ull) << lsb;
  return static_cast<std::uint32_t>(m);
}

SimBackend::SimBackend(sim::SimulatedServer& server)
    : server_(server),
      cpuset_(*this),
      cat_(*this),
      freq_(*this),
      rapl_() {
  const MachineSpec& m = server_.machine();
  state_.core_freq_levels.assign(static_cast<std::size_t>(m.num_cores),
                                 m.max_freq_level());
  // Mirror the simulator's initial all-to-LS allocation.
  const Partition init = server_.partition();
  std::vector<int> all_cores;
  for (int c = 0; c < init.ls.cores; ++c) all_cores.push_back(c);
  state_.cpusets[0] = all_cores;
  state_.way_masks[0] = contiguous_mask(init.ls.llc_ways, 0);
}

void SimBackend::observe(const sim::ServerTelemetry& sample) {
  rapl_.set(sample.power_w);
}

Partition SimBackend::derived_partition() const {
  const MachineSpec& m = server_.machine();
  Partition p;
  p.ls.cores = static_cast<int>(state_.cpusets[0].size());
  p.be.cores = static_cast<int>(state_.cpusets[1].size());
  p.ls.llc_ways = std::popcount(state_.way_masks[0]);
  p.be.llc_ways = std::popcount(state_.way_masks[1]);
  const auto slice_level = [&](const std::vector<int>& cores) {
    if (cores.empty()) return 0;
    return state_.core_freq_levels[static_cast<std::size_t>(cores.front())];
  };
  p.ls.freq_level = std::min(slice_level(state_.cpusets[0]),
                             m.max_freq_level());
  p.be.freq_level = std::min(slice_level(state_.cpusets[1]),
                             m.max_freq_level());
  return p;
}

void SimBackend::sync() {
  // Disjointness is a hard error: Sturgeon never shares cores or ways.
  std::set<int> seen;
  for (const auto& cores : state_.cpusets) {
    for (int c : cores) {
      if (!seen.insert(c).second) {
        throw std::invalid_argument("SimBackend: overlapping cpusets");
      }
    }
  }
  if ((state_.way_masks[0] & state_.way_masks[1]) != 0) {
    throw std::invalid_argument("SimBackend: overlapping CAT masks");
  }
  const Partition p = derived_partition();
  // Intermediate staging states (e.g. LS shrunk before BE grown) may be
  // transiently unappliable; push only once the state is valid. The
  // ResourceEnforcer verifies the final state matches its target.
  const MachineSpec& m = server_.machine();
  const bool appliable =
      p.ls.cores >= 1 && p.ls.llc_ways >= 1 &&
      (p.be.cores == 0 ? true : p.valid_for(m)) &&
      p.ls.cores + p.be.cores <= m.num_cores &&
      p.ls.llc_ways + p.be.llc_ways <= m.llc_ways;
  if (appliable) server_.set_partition(p);
}

void SimBackend::CpusetImpl::set_cpuset(AppId app,
                                        const std::vector<int>& cores) {
  const MachineSpec& m = owner_.server_.machine();
  std::set<int> unique;
  for (int c : cores) {
    if (c < 0 || c >= m.num_cores) {
      throw std::invalid_argument("set_cpuset: core id out of range");
    }
    if (!unique.insert(c).second) {
      throw std::invalid_argument("set_cpuset: duplicate core id");
    }
  }
  owner_.state_.cpusets[static_cast<std::size_t>(app)] = cores;
  owner_.sync();
}

std::vector<int> SimBackend::CpusetImpl::cpuset(AppId app) const {
  return owner_.state_.cpusets[static_cast<std::size_t>(app)];
}

void SimBackend::CatImpl::set_way_mask(AppId app, std::uint32_t mask) {
  const MachineSpec& m = owner_.server_.machine();
  if (m.llc_ways < 32 && (mask >> m.llc_ways) != 0) {
    throw std::invalid_argument("set_way_mask: mask wider than LLC");
  }
  owner_.state_.way_masks[static_cast<std::size_t>(app)] = mask;
  owner_.sync();
}

std::uint32_t SimBackend::CatImpl::way_mask(AppId app) const {
  return owner_.state_.way_masks[static_cast<std::size_t>(app)];
}

void SimBackend::FreqImpl::set_frequency_level(const std::vector<int>& cores,
                                               int level) {
  const MachineSpec& m = owner_.server_.machine();
  if (level < 0 || level >= m.num_freq_levels()) {
    throw std::invalid_argument("set_frequency_level: bad P-state");
  }
  for (int c : cores) {
    if (c < 0 || c >= m.num_cores) {
      throw std::invalid_argument("set_frequency_level: core out of range");
    }
    owner_.state_.core_freq_levels[static_cast<std::size_t>(c)] = level;
  }
  owner_.sync();
}

int SimBackend::FreqImpl::frequency_level(int core) const {
  const MachineSpec& m = owner_.server_.machine();
  if (core < 0 || core >= m.num_cores) {
    throw std::invalid_argument("frequency_level: core out of range");
  }
  return owner_.state_.core_freq_levels[static_cast<std::size_t>(core)];
}

}  // namespace sturgeon::isolation
