// ResourceEnforcer: turns a target <C1,F1,L1;C2,F2,L2> partition into the
// concrete tool actions of Table III -- explicit core lists for cpuset,
// contiguous disjoint way masks for CAT, per-cpuset P-states -- and
// sequences them so co-located apps never overlap mid-transition.
// Controllers above this layer deal only in Partition values.
#pragma once

#include <cstdint>

#include "isolation/controllers.h"
#include "util/types.h"

namespace sturgeon::isolation {

class ResourceEnforcer {
 public:
  /// The enforcer borrows the tool interfaces; `machine` fixes layout.
  ResourceEnforcer(const MachineSpec& machine, CpusetController& cpuset,
                   CatController& cat, FreqDriver& freq);

  /// Apply `target`. LS cores are laid out from core 0 upward and LS ways
  /// from bit 0 upward; BE takes the top of each range, so growth of one
  /// app never collides with the other. Shrinks are staged before grows.
  /// Throws std::invalid_argument for partitions the machine cannot
  /// express (an empty BE slice is allowed).
  void apply(const Partition& target);

  /// K-way entry point. The isolation hardware model (AppId, cpuset/CAT
  /// masks) is two-app, so exactly K = 2 is expressible today: delegates
  /// to apply(Partition) bit-identically, throws std::invalid_argument
  /// for any other K.
  void apply(const Allocation& target);

  /// The partition most recently applied (or reconstructed by resync()
  /// after a failed apply).
  const Partition& current() const { return current_; }

  /// current() as a K = 2 Allocation (the K-way decide loop's view).
  Allocation current_allocation() const { return Allocation::of(current_); }

  /// Verify-after-apply: read the tool state back through the actuator
  /// interfaces and compare against what apply(target) programs. False
  /// means some tool silently dropped or half-applied the request.
  bool verify(const Partition& target) const;

  /// Rebuild current() from the tools' actual state. Call after an
  /// apply() threw partway (e.g. ActuatorError from a flaky driver):
  /// the shrink-before-grow sequencing of the NEXT apply must be
  /// ordered against reality, not against the stale pre-failure
  /// snapshot, or a transition could momentarily overlap the apps.
  void resync();

  /// Total tool invocations issued (actuation cost metric).
  std::uint64_t actuation_count() const { return actuations_; }

 private:
  std::vector<int> ls_core_list(int count) const;
  std::vector<int> be_core_list(int count) const;

  MachineSpec machine_;
  CpusetController& cpuset_;
  CatController& cat_;
  FreqDriver& freq_;
  Partition current_;
  std::uint64_t actuations_ = 0;
};

}  // namespace sturgeon::isolation
