// Simulator-backed implementations of the Table III tool interfaces.
// All four tools share a staging area (core lists, way masks, per-core
// P-states) and push the derived <C1,F1,L1;C2,F2,L2> partition into the
// SimulatedServer after every mutation, mirroring how each real tool
// takes effect immediately and independently.
#pragma once

#include <array>
#include <cstdint>

#include "isolation/controllers.h"
#include "sim/server.h"

namespace sturgeon::isolation {

class SimBackend {
 public:
  explicit SimBackend(sim::SimulatedServer& server);

  CpusetController& cpuset() { return cpuset_; }
  CatController& cat() { return cat_; }
  FreqDriver& freq() { return freq_; }
  const RaplReader& rapl() const { return rapl_; }
  RaplReader& rapl() { return rapl_; }

  /// Record the latest telemetry so the RAPL reader reflects it.
  void observe(const sim::ServerTelemetry& sample);

  /// The partition currently derived from the staged tool state.
  Partition derived_partition() const;

  /// derived_partition() as a K = 2 Allocation (K-way callers' view; the
  /// staged tool state itself is two-app).
  Allocation derived_allocation() const {
    return Allocation::of(derived_partition());
  }

 private:
  struct State {
    std::array<std::vector<int>, 2> cpusets;
    std::array<std::uint32_t, 2> way_masks{0, 0};
    std::vector<int> core_freq_levels;  // per logical core
  };

  /// Recompute the partition from staged state and apply it to the
  /// simulator. Throws std::invalid_argument if apps overlap.
  void sync();

  class CpusetImpl : public CpusetController {
   public:
    explicit CpusetImpl(SimBackend& owner) : owner_(owner) {}
    void set_cpuset(AppId app, const std::vector<int>& cores) override;
    std::vector<int> cpuset(AppId app) const override;

   private:
    SimBackend& owner_;
  };

  class CatImpl : public CatController {
   public:
    explicit CatImpl(SimBackend& owner) : owner_(owner) {}
    void set_way_mask(AppId app, std::uint32_t mask) override;
    std::uint32_t way_mask(AppId app) const override;

   private:
    SimBackend& owner_;
  };

  class FreqImpl : public FreqDriver {
   public:
    explicit FreqImpl(SimBackend& owner) : owner_(owner) {}
    void set_frequency_level(const std::vector<int>& cores,
                             int level) override;
    int frequency_level(int core) const override;

   private:
    SimBackend& owner_;
  };

  class RaplImpl : public RaplReader {
   public:
    double read_package_power_w() const override { return last_power_w_; }
    void set(double w) { last_power_w_ = w; }

   private:
    double last_power_w_ = 0.0;
  };

  sim::SimulatedServer& server_;
  State state_;
  CpusetImpl cpuset_;
  CatImpl cat_;
  FreqImpl freq_;
  RaplImpl rapl_;
};

}  // namespace sturgeon::isolation
