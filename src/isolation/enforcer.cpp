#include "isolation/enforcer.h"

#include <bit>
#include <stdexcept>

#include "util/check.h"

namespace sturgeon::isolation {

ResourceEnforcer::ResourceEnforcer(const MachineSpec& machine,
                                   CpusetController& cpuset,
                                   CatController& cat, FreqDriver& freq)
    : machine_(machine),
      cpuset_(cpuset),
      cat_(cat),
      freq_(freq),
      current_(Partition::all_to_ls(machine)) {}

std::vector<int> ResourceEnforcer::ls_core_list(int count) const {
  std::vector<int> cores;
  cores.reserve(static_cast<std::size_t>(count));
  for (int c = 0; c < count; ++c) cores.push_back(c);
  return cores;
}

std::vector<int> ResourceEnforcer::be_core_list(int count) const {
  // BE occupies the top of the core range so LS growth from the bottom
  // never collides mid-transition.
  std::vector<int> cores;
  cores.reserve(static_cast<std::size_t>(count));
  for (int c = machine_.num_cores - count; c < machine_.num_cores; ++c) {
    cores.push_back(c);
  }
  return cores;
}

void ResourceEnforcer::apply(const Allocation& target) {
  if (target.size() != 2) {
    throw std::invalid_argument(
        "ResourceEnforcer::apply: two-app isolation backend cannot express "
        "K = " + std::to_string(target.size()));
  }
  apply(target.to_partition());
}

void ResourceEnforcer::apply(const Partition& target) {
  const bool be_empty = target.be.cores == 0;
  if (!be_empty && !target.valid_for(machine_)) {
    throw std::invalid_argument("ResourceEnforcer::apply: invalid target " +
                                target.to_string(machine_));
  }
  if (be_empty &&
      (target.ls.cores < 1 || target.ls.cores > machine_.num_cores ||
       target.ls.llc_ways < 1 || target.ls.llc_ways > machine_.llc_ways ||
       target.ls.freq_level < 0 ||
       target.ls.freq_level >= machine_.num_freq_levels())) {
    throw std::invalid_argument("ResourceEnforcer::apply: bad LS slice");
  }

  const auto ls_cores = ls_core_list(target.ls.cores);
  const auto be_cores = be_core_list(target.be.cores);
  const std::uint32_t ls_mask = contiguous_mask(target.ls.llc_ways, 0);
  const std::uint32_t be_mask = contiguous_mask(
      target.be.llc_ways, machine_.llc_ways - target.be.llc_ways);

  // Layout invariant behind the shrink-before-grow sequencing: the two
  // apps' way masks and core lists must never overlap, or a transition
  // would momentarily co-schedule them on the same resource.
  STURGEON_DCHECK((ls_mask & be_mask) == 0u,
                  "apply: overlapping way masks " << ls_mask << " / "
                                                  << be_mask);
  STURGEON_DCHECK(be_cores.empty() || ls_cores.back() < be_cores.front(),
                  "apply: overlapping core lists");

  // Shrink before grow, per resource type, so co-located apps never hold
  // the same core or way at any point in the sequence.
  const bool ls_core_shrink = target.ls.cores < current_.ls.cores;
  const bool ls_way_shrink = target.ls.llc_ways < current_.ls.llc_ways;

  if (ls_core_shrink) {
    cpuset_.set_cpuset(AppId::kLs, ls_cores);
    cpuset_.set_cpuset(AppId::kBe, be_cores);
  } else {
    cpuset_.set_cpuset(AppId::kBe, be_cores);
    cpuset_.set_cpuset(AppId::kLs, ls_cores);
  }
  actuations_ += 2;

  if (ls_way_shrink) {
    cat_.set_way_mask(AppId::kLs, ls_mask);
    cat_.set_way_mask(AppId::kBe, be_mask);
  } else {
    cat_.set_way_mask(AppId::kBe, be_mask);
    cat_.set_way_mask(AppId::kLs, ls_mask);
  }
  actuations_ += 2;

  freq_.set_frequency_level(ls_cores, target.ls.freq_level);
  ++actuations_;
  if (!be_cores.empty()) {
    freq_.set_frequency_level(be_cores, target.be.freq_level);
    ++actuations_;
  }

  current_ = target;
}

bool ResourceEnforcer::verify(const Partition& target) const {
  if (cpuset_.cpuset(AppId::kLs) != ls_core_list(target.ls.cores)) {
    return false;
  }
  if (cpuset_.cpuset(AppId::kBe) != be_core_list(target.be.cores)) {
    return false;
  }
  if (cat_.way_mask(AppId::kLs) != contiguous_mask(target.ls.llc_ways, 0)) {
    return false;
  }
  const std::uint32_t be_mask = contiguous_mask(
      target.be.llc_ways, machine_.llc_ways - target.be.llc_ways);
  if (cat_.way_mask(AppId::kBe) != be_mask) return false;
  for (const int core : cpuset_.cpuset(AppId::kLs)) {
    if (freq_.frequency_level(core) != target.ls.freq_level) return false;
  }
  for (const int core : cpuset_.cpuset(AppId::kBe)) {
    if (freq_.frequency_level(core) != target.be.freq_level) return false;
  }
  return true;
}

void ResourceEnforcer::resync() {
  // Recover slice sizes from the tools. The reconstructed partition may
  // be an inconsistent mixture (that is the point: a failed apply left
  // one), but it is what the next apply's shrink-before-grow ordering
  // and change detection must be computed against.
  const auto ls_cores = cpuset_.cpuset(AppId::kLs);
  const auto be_cores = cpuset_.cpuset(AppId::kBe);
  Partition actual;
  actual.ls.cores = static_cast<int>(ls_cores.size());
  actual.be.cores = static_cast<int>(be_cores.size());
  actual.ls.llc_ways = std::popcount(cat_.way_mask(AppId::kLs));
  actual.be.llc_ways = std::popcount(cat_.way_mask(AppId::kBe));
  actual.ls.freq_level =
      ls_cores.empty() ? current_.ls.freq_level
                       : freq_.frequency_level(ls_cores.front());
  actual.be.freq_level =
      be_cores.empty() ? current_.be.freq_level
                       : freq_.frequency_level(be_cores.front());
  current_ = actual;
}

}  // namespace sturgeon::isolation
