// DeltaCoordinator: incremental cap revision keeps the budget invariant
// and reacts to pressure / headroom / death / rejoin like the full
// strategies do, one node at a time.
#include "fleet/delta_coordinator.h"

#include <gtest/gtest.h>

#include <vector>

namespace sturgeon::fleet {
namespace {

using cluster::Liveness;
using cluster::NodeReport;

NodeReport report(double budget, double idle, double cap, double power,
                  double slack, bool qos_met) {
  NodeReport r;
  r.budget_w = budget;
  r.idle_w = idle;
  r.cap_w = cap;
  r.power_w = power;
  r.slack = slack;
  r.qos_met = qos_met;
  r.liveness = Liveness::kAlive;
  return r;
}

TEST(DeltaCoordinator, RebaseAdoptsCapsAndPool) {
  DeltaCoordinator delta({}, 100.0, 3);
  delta.rebase({30.0, 30.0, 30.0});
  EXPECT_DOUBLE_EQ(delta.cap_sum(), 90.0);
  EXPECT_DOUBLE_EQ(delta.pool_w(), 10.0);
  EXPECT_DOUBLE_EQ(delta.cap(1), 30.0);
}

TEST(DeltaCoordinator, PressureGrantsFromThePoolOnly) {
  DeltaCoordinatorConfig config;
  config.grant_fraction = 0.5;
  DeltaCoordinator delta(config, 100.0, 2);
  delta.rebase({48.0, 48.0});  // pool = 4 W

  // Node 0 presses its cap (power at 95% of 48 W, budget 60 W): it
  // wants +30 W but the pool only holds 4 W.
  const double c0 = delta.revise(0, report(60, 10, 48, 46.5, 0.2, true));
  EXPECT_DOUBLE_EQ(c0, 52.0);
  EXPECT_DOUBLE_EQ(delta.pool_w(), 0.0);
  EXPECT_EQ(delta.grants(), 1u);

  // Pool exhausted: a second pressured node gets nothing.
  const double c1 = delta.revise(1, report(60, 10, 48, 47.0, 0.2, false));
  EXPECT_DOUBLE_EQ(c1, 48.0);
  EXPECT_LE(delta.cap_sum(), 100.0 + 1e-9);
}

TEST(DeltaCoordinator, HeadroomShrinksTowardPowerWithFloor) {
  DeltaCoordinatorConfig config;
  config.headroom_margin = 0.1;
  config.min_cap_fraction = 0.3;
  DeltaCoordinator delta(config, 200.0, 2);
  delta.rebase({100.0, 100.0});

  // Power 20 W well under the 100 W cap: shrink to power + 10% of the
  // 60 W budget = 26 W (above both floors).
  const double c0 = delta.revise(0, report(60, 10, 100, 20.0, 0.5, true));
  EXPECT_DOUBLE_EQ(c0, 26.0);
  EXPECT_EQ(delta.shrinks(), 1u);

  // Deep idle: the min-cap floor (30% of 60 = 18 W) catches the shrink.
  const double c1 = delta.revise(1, report(60, 10, 100, 2.0, 0.9, true));
  EXPECT_DOUBLE_EQ(c1, 18.0);
  EXPECT_DOUBLE_EQ(delta.pool_w(), 200.0 - 26.0 - 18.0);
}

TEST(DeltaCoordinator, QuietZoneLeavesTheCapAlone) {
  DeltaCoordinator delta({}, 100.0, 1);
  delta.rebase({50.0});
  // Power between shrink (60%) and pressure (92%) thresholds: no-op.
  const double c = delta.revise(0, report(60, 10, 50, 40.0, 0.3, true));
  EXPECT_DOUBLE_EQ(c, 50.0);
  EXPECT_EQ(delta.grants(), 0u);
  EXPECT_EQ(delta.shrinks(), 0u);
  EXPECT_EQ(delta.revisions(), 1u);
}

TEST(DeltaCoordinator, DeathCollapsesAndRejoinRegrants) {
  DeltaCoordinator delta({}, 100.0, 2);
  delta.rebase({50.0, 40.0});

  NodeReport dead = report(60, 8, 50, 0.0, 0.0, true);
  dead.liveness = Liveness::kDead;
  EXPECT_DOUBLE_EQ(delta.revise(0, dead), 8.0);  // idle floor
  EXPECT_DOUBLE_EQ(delta.pool_w(), 100.0 - 8.0 - 40.0);

  NodeReport back = report(60, 8, 8, 0.0, 0.0, true);
  back.rejoined = true;
  const double c = delta.revise(0, back);
  EXPECT_DOUBLE_EQ(c, 18.0);  // min_cap_fraction * budget
  EXPECT_LE(delta.cap_sum(), 100.0 + 1e-9);
}

TEST(DeltaCoordinator, RandomizedRevisionsNeverBreakTheBudget) {
  DeltaCoordinator delta({}, 120.0, 4);
  delta.rebase({30.0, 30.0, 30.0, 30.0});
  // Deterministic pseudo-random walk over reports; the invariant must
  // hold after every revision.
  unsigned state = 12345;
  auto next = [&state] {
    state = state * 1103515245u + 12345u;
    return static_cast<double>((state >> 16) & 0x7fff) / 32768.0;
  };
  for (int i = 0; i < 2000; ++i) {
    const std::size_t node = static_cast<std::size_t>(i) % 4;
    const double power = 5.0 + 55.0 * next();
    const bool qos = next() > 0.2;
    delta.revise(node, report(60, 5, delta.cap(node), power, next(), qos));
    ASSERT_LE(delta.cap_sum(), 120.0 + 1e-6) << "iteration " << i;
    ASSERT_GE(delta.cap(node), 5.0 - 1e-9) << "iteration " << i;
  }
}

}  // namespace
}  // namespace sturgeon::fleet
