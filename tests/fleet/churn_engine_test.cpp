// ChurnEngine unit tests: deterministic arrivals, accrual/completion
// arithmetic, the earliest-finish prediction the sleep scheduler uses,
// and the migration bookkeeping -- including the job-finishes-while-
// being-migrated ordering the fleet engine relies on.
#include "fleet/churn.h"

#include <gtest/gtest.h>

#include <vector>

namespace sturgeon::fleet {
namespace {

ChurnConfig small_churn() {
  ChurnConfig c;
  c.enabled = true;
  c.arrival_rate_per_epoch = 0.8;
  c.mean_size_norm_s = 3.0;
  c.size_cv = 0.5;
  c.slots_per_node = 2;
  return c;
}

TEST(ChurnEngine, DisabledEmitsNothing) {
  ChurnEngine engine(ChurnConfig{}, 7, 4, 2);
  EXPECT_EQ(engine.next_arrival_epoch(), -1);
  EXPECT_TRUE(engine.arrive(0).empty());
  EXPECT_TRUE(engine.arrive(1000).empty());
}

TEST(ChurnEngine, ArrivalsAreSeedDeterministic) {
  auto timeline = [](std::uint64_t seed) {
    ChurnEngine engine(small_churn(), seed, 4, 2);
    std::vector<std::size_t> counts;
    for (int t = 0; t < 50; ++t) counts.push_back(engine.arrive(t).size());
    return counts;
  };
  EXPECT_EQ(timeline(7), timeline(7));
  EXPECT_NE(timeline(7), timeline(8));
}

TEST(ChurnEngine, ArriveEmitsEverythingDueAndAdvancesClock) {
  ChurnEngine engine(small_churn(), 7, 4, 2);
  std::uint64_t total = 0;
  for (int t = 0; t < 100; ++t) {
    const int next = engine.next_arrival_epoch();
    const auto ids = engine.arrive(t);
    if (next > t) {
      EXPECT_TRUE(ids.empty());
    }
    total += ids.size();
    // After arrive(t) the clock is strictly past epoch t.
    EXPECT_GT(engine.next_arrival_epoch(), t);
    for (std::uint64_t id : ids) {
      EXPECT_EQ(engine.job(id).arrival_epoch, t);
      EXPECT_GT(engine.job(id).size_norm_s, 0.0);
      EXPECT_EQ(engine.job(id).node, -1);
    }
  }
  EXPECT_EQ(engine.stats().submitted, total);
  // Rate 0.8/epoch over 100 epochs: a seeded draw lands near 80.
  EXPECT_GT(total, 40u);
  EXPECT_LT(total, 160u);
}

TEST(ChurnEngine, AccrueSharesRateEquallyAndCompletesInOrder) {
  ChurnEngine engine(small_churn(), 7, 4, 1);
  const auto ids = [&] {
    std::vector<std::uint64_t> out;
    // Manufacture two jobs deterministically via arrive() draws.
    for (int t = 0; out.size() < 2 && t < 100; ++t) {
      for (std::uint64_t id : engine.arrive(t)) out.push_back(id);
    }
    return out;
  }();
  ASSERT_GE(ids.size(), 2u);
  engine.assign(ids[0], 0, 0);
  engine.assign(ids[1], 0, 0);
  engine.job(ids[0]).remaining_norm_s = 1.0;
  engine.job(ids[1]).remaining_norm_s = 4.0;

  // Total rate 1.0 shared over 2 jobs = 0.5/epoch each: job 0 needs 2
  // epochs, job 1 needs 8.
  EXPECT_EQ(engine.earliest_finish(0, 1.0, 9), 9 + 2);

  auto done = engine.accrue(0, 1.0, 10, 11);  // 2 epochs
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], ids[0]);
  EXPECT_EQ(engine.job(ids[0]).finish_epoch, 11);
  EXPECT_EQ(engine.job(ids[0]).node, -1);
  EXPECT_DOUBLE_EQ(engine.job(ids[1]).remaining_norm_s, 3.0);
  EXPECT_EQ(engine.active_on(0).size(), 1u);
  EXPECT_EQ(engine.stats().completed, 1u);

  // Remaining job alone now takes the whole rate.
  done = engine.accrue(0, 1.0, 12, 14);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(engine.job(ids[1]).finish_epoch, 14);
  EXPECT_EQ(engine.active_total(), 0u);
}

TEST(ChurnEngine, AccrueWithoutRateOrJobsIsANoop) {
  ChurnEngine engine(small_churn(), 7, 4, 1);
  EXPECT_TRUE(engine.accrue(0, 1.0, 0, 5).empty());   // no jobs
  const auto ids = engine.arrive(engine.next_arrival_epoch());
  ASSERT_FALSE(ids.empty());
  engine.assign(ids[0], 0, 0);
  EXPECT_TRUE(engine.accrue(0, 0.0, 0, 5).empty());   // no rate
  EXPECT_TRUE(engine.accrue(0, 1.0, 5, 4).empty());   // empty window
  EXPECT_EQ(engine.earliest_finish(0, 0.0, 0), -1);
}

// The fleet engine's ordering contract: completions are drained BEFORE
// the migration decision, so a job that finishes in the same epoch a
// migration triggers is completed, never moved. The engine must keep
// both bookkeepings consistent when the remaining job then migrates.
TEST(ChurnEngine, CompletionThenMigrationKeepsListsConsistent) {
  ChurnEngine engine(small_churn(), 7, 4, 2);
  std::vector<std::uint64_t> ids;
  for (int t = 0; ids.size() < 2 && t < 100; ++t) {
    for (std::uint64_t id : engine.arrive(t)) ids.push_back(id);
  }
  ASSERT_GE(ids.size(), 2u);
  engine.assign(ids[0], 0, 0);
  engine.assign(ids[1], 0, 0);
  engine.job(ids[0]).remaining_norm_s = 0.2;  // finishes this epoch
  engine.job(ids[1]).remaining_norm_s = 9.0;

  const auto done = engine.accrue(0, 1.0, 5, 5);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], ids[0]);

  engine.migrate(ids[1], 1, 5);
  EXPECT_TRUE(engine.active_on(0).empty());
  ASSERT_EQ(engine.active_on(1).size(), 1u);
  EXPECT_EQ(engine.active_on(1)[0], ids[1]);
  EXPECT_EQ(engine.job(ids[1]).node, 1);
  EXPECT_EQ(engine.job(ids[1]).migrations, 1);
  EXPECT_EQ(engine.stats().migrated, 1u);
  EXPECT_EQ(engine.stats().completed, 1u);
  EXPECT_EQ(engine.active_total(), 1u);
}

TEST(ChurnEngine, QueueIsFifo) {
  ChurnEngine engine(small_churn(), 7, 4, 1);
  engine.enqueue(11);
  engine.enqueue(22);
  EXPECT_EQ(engine.queued(), 2u);
  EXPECT_EQ(engine.stats().queue_peak, 2u);
  EXPECT_EQ(engine.pop_queued(), 11u);
  EXPECT_EQ(engine.pop_queued(), 22u);
  EXPECT_FALSE(engine.has_queued());
}

}  // namespace
}  // namespace sturgeon::fleet
