// next_load_shift: the trace-scan half of the quiescence policy.
#include "fleet/quiescence.h"

#include <gtest/gtest.h>

namespace sturgeon::fleet {
namespace {

TEST(NextLoadShift, ConstantTraceSleepsToTheBackstop) {
  const LoadTrace trace = LoadTrace::constant(0.4, 100);
  EXPECT_EQ(next_load_shift(trace, 10, 0.02, 32), 42);
}

TEST(NextLoadShift, FindsTheFirstEpochOutsideTheBand) {
  // Steps: 0.40 for 20 epochs, then 0.50.
  const LoadTrace trace = LoadTrace::steps({0.40, 0.50}, 20);
  EXPECT_EQ(next_load_shift(trace, 5, 0.02, 64), 20);
  // A wide band swallows the step entirely.
  EXPECT_EQ(next_load_shift(trace, 5, 0.15, 64), 69);
}

TEST(NextLoadShift, ClampsPastTheTraceEnd) {
  // The trace ends at t=10 and at() clamps to the final value, so a
  // scan starting near the end runs to the backstop.
  const LoadTrace trace = LoadTrace::steps({0.3, 0.6}, 5);
  EXPECT_EQ(next_load_shift(trace, 9, 0.02, 50), 59);
  EXPECT_EQ(next_load_shift(trace, 500, 0.02, 16), 516);
}

TEST(NextLoadShift, DiurnalPhasedShiftsTheMinimum) {
  const LoadTrace a = LoadTrace::diurnal(0.2, 0.8, 100);
  const LoadTrace b = LoadTrace::diurnal_phased(0.2, 0.8, 100, 0.25);
  // Phase 0.25 moves the night minimum to t=25.
  EXPECT_NEAR(b.at(25), 0.2, 1e-9);
  EXPECT_NEAR(a.at(0), 0.2, 1e-9);
  EXPECT_NEAR(b.at(75), 0.8, 1e-9);
  // Same shape, different anchor: a phased node's next shift from its
  // own minimum matches the unphased node's from t=0.
  EXPECT_EQ(next_load_shift(a, 0, 0.05, 100) + 25,
            next_load_shift(b, 25, 0.05, 100));
}

}  // namespace
}  // namespace sturgeon::fleet
