// The twin-equivalence contract: FleetSim with quiescence skipping
// disabled and zero churn must produce a ClusterResult bit-identical to
// the lockstep ClusterSim -- same seeds, same coordinator arithmetic,
// same aggregation order (they share build_cluster/ClusterRollup by
// construction; this test pins that it stays true). Plus the event
// engine's own determinism and accounting invariants.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "../core/fake_models.h"
#include "cluster/cluster.h"
#include "core/controller.h"
#include "fleet/export.h"
#include "fleet/fleet.h"
#include "workloads/app_profile.h"

namespace sturgeon::fleet {
namespace {

using cluster::ClusterConfig;
using cluster::ClusterResult;
using cluster::ClusterSim;
using cluster::NodeResult;
using cluster::NodeSpec;

NodeSpec fake_spec(const LoadTrace& trace) {
  NodeSpec spec;
  spec.ls = find_ls("memcached");
  spec.be = be_catalog()[0];
  spec.trace = trace;
  const double qos_ms = spec.ls.qos_target_ms;
  spec.make_policy = [qos_ms](const sim::SimulatedServer& server) {
    return std::make_unique<core::SturgeonController>(
        core::testing::fake_predictor(server.machine()), qos_ms,
        server.power_budget_w());
  };
  return spec;
}

std::vector<NodeSpec> fake_fleet(int n, int duration_s) {
  std::vector<NodeSpec> specs;
  for (int i = 0; i < n; ++i) {
    const double load = 0.3 + 0.1 * (i % 4);
    specs.push_back(fake_spec(LoadTrace::constant(load, duration_s)));
  }
  return specs;
}

void expect_cluster_results_identical(const ClusterResult& a,
                                      const ClusterResult& b) {
  EXPECT_EQ(a.fleet_qos_guarantee_rate, b.fleet_qos_guarantee_rate);
  EXPECT_EQ(a.aggregate_be_throughput, b.aggregate_be_throughput);
  EXPECT_EQ(a.cluster_power_budget_w, b.cluster_power_budget_w);
  EXPECT_EQ(a.cluster_overshoot_fraction, b.cluster_overshoot_fraction);
  EXPECT_EQ(a.max_cluster_power_ratio, b.max_cluster_power_ratio);
  EXPECT_EQ(a.mean_cluster_power_w, b.mean_cluster_power_w);
  EXPECT_EQ(a.max_cap_sum_ratio, b.max_cap_sum_ratio);
  EXPECT_EQ(a.dead_node_epochs, b.dead_node_epochs);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.coordinator, b.coordinator);
  ASSERT_EQ(a.node_results.size(), b.node_results.size());
  for (std::size_t i = 0; i < a.node_results.size(); ++i) {
    const NodeResult& x = a.node_results[i];
    const NodeResult& y = b.node_results[i];
    EXPECT_EQ(x.total_completed, y.total_completed) << "node " << i;
    EXPECT_EQ(x.total_violations, y.total_violations) << "node " << i;
    EXPECT_EQ(x.qos_guarantee_rate, y.qos_guarantee_rate) << "node " << i;
    EXPECT_EQ(x.mean_be_throughput_norm, y.mean_be_throughput_norm)
        << "node " << i;
    EXPECT_EQ(x.mean_cap_w, y.mean_cap_w) << "node " << i;
    EXPECT_EQ(x.max_power_ratio, y.max_power_ratio) << "node " << i;
    EXPECT_EQ(x.throttled_epochs, y.throttled_epochs) << "node " << i;
    EXPECT_EQ(x.epochs, y.epochs) << "node " << i;
  }
}

TEST(FleetTwin, NoSkipNoChurnIsBitIdenticalToLockstep) {
  for (const auto kind : {cluster::CoordinatorKind::kStaticEqual,
                          cluster::CoordinatorKind::kDemandProportional,
                          cluster::CoordinatorKind::kSlackHarvest}) {
    ClusterConfig cc;
    cc.seed = 21;
    cc.coordinator = kind;
    ClusterSim lockstep(fake_fleet(4, 24), cc);
    const ClusterResult expected = lockstep.run();

    FleetConfig fc;
    fc.cluster = cc;  // quiescence + churn default off
    FleetSim fleet(fake_fleet(4, 24), fc);
    const FleetResult actual = fleet.run();

    expect_cluster_results_identical(expected, actual.cluster);
    // Twin mode does no event-engine work at all.
    EXPECT_EQ(actual.total_skipped_epochs, 0u);
    EXPECT_EQ(actual.total_wakes, 0u);
    EXPECT_EQ(actual.events_processed, 0u);
    EXPECT_EQ(actual.cap_revisions, 0u);
    for (const NodeResult& nr : actual.cluster.node_results) {
      EXPECT_EQ(nr.skipped_epochs, 0);
      EXPECT_EQ(nr.wakes, 0);
    }
  }
}

FleetConfig skipping_config(std::uint64_t seed, std::size_t threads) {
  FleetConfig fc;
  fc.cluster.seed = seed;
  fc.cluster.threads = threads;
  fc.quiescence.enabled = true;
  fc.quiescence.min_sleep_epochs = 1;
  fc.quiescence.max_sleep_epochs = 8;
  fc.churn.enabled = true;
  fc.churn.arrival_rate_per_epoch = 0.4;
  fc.churn.mean_size_norm_s = 2.0;
  fc.churn.size_cv = 0.5;
  fc.churn.slots_per_node = 2;
  fc.delta.rebalance_period = 10;
  return fc;
}

void expect_fleet_results_identical(const FleetResult& a,
                                    const FleetResult& b) {
  expect_cluster_results_identical(a.cluster, b.cluster);
  EXPECT_EQ(a.total_skipped_epochs, b.total_skipped_epochs);
  EXPECT_EQ(a.total_wakes, b.total_wakes);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.cap_revisions, b.cap_revisions);
  EXPECT_EQ(a.rebalances, b.rebalances);
  EXPECT_EQ(a.jobs_submitted, b.jobs_submitted);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.jobs_migrated, b.jobs_migrated);
  EXPECT_EQ(a.mean_job_completion_epochs, b.mean_job_completion_epochs);
  for (std::size_t i = 0; i < a.cluster.node_results.size(); ++i) {
    EXPECT_EQ(a.cluster.node_results[i].skipped_epochs,
              b.cluster.node_results[i].skipped_epochs)
        << "node " << i;
    EXPECT_EQ(a.cluster.node_results[i].wakes,
              b.cluster.node_results[i].wakes)
        << "node " << i;
  }
}

// Same seed, any worker thread count: the event path's queue, churn and
// aggregation are engine-sequential, so skipping + churn must stay
// bit-identical across 1/2/8 threads.
TEST(FleetEngine, EventModeDeterministicAcrossThreadCounts) {
  auto run_with = [](std::size_t threads) {
    FleetSim sim(fake_fleet(4, 40), skipping_config(31, threads));
    return sim.run();
  };
  const FleetResult r1 = run_with(1);
  const FleetResult r2 = run_with(2);
  const FleetResult r8 = run_with(8);
  expect_fleet_results_identical(r1, r2);
  expect_fleet_results_identical(r1, r8);
}

// Accounting invariant: every node-epoch is either stepped or skipped.
TEST(FleetEngine, SteppedPlusSkippedCoversTheRun) {
  FleetSim sim(fake_fleet(5, 40), skipping_config(33, 2));
  const FleetResult r = sim.run();
  EXPECT_EQ(r.cluster.epochs, 40);
  std::uint64_t skipped_sum = 0;
  for (const NodeResult& nr : r.cluster.node_results) {
    EXPECT_EQ(nr.epochs + nr.skipped_epochs, 40) << "node " << nr.node;
    EXPECT_GE(nr.wakes, 0);
    skipped_sum += static_cast<std::uint64_t>(nr.skipped_epochs);
  }
  EXPECT_EQ(skipped_sum, r.total_skipped_epochs);
  // Constant traces with slack: the engine must actually skip work.
  EXPECT_GT(r.total_skipped_epochs, 0u);
  EXPECT_GT(r.skipped_fraction, 0.0);
  EXPECT_LT(r.skipped_fraction, 1.0);
}

// The quiescent fleet must still satisfy the coordinator budget
// invariant every epoch (delta grants bounded by the pool).
TEST(FleetEngine, CapInvariantHoldsUnderSkipping) {
  FleetSim sim(fake_fleet(4, 60), skipping_config(35, 2));
  const FleetResult r = sim.run();
  EXPECT_LE(r.cluster.max_cap_sum_ratio, 1.0 + 1e-9);
  EXPECT_GT(r.cap_revisions, 0u);
  EXPECT_GE(r.rebalances, 6u);  // t=0 plus every rebalance_period
}

TEST(FleetExport, JsonlCarriesEngineAndChurnFields) {
  FleetSim sim(fake_fleet(3, 30), skipping_config(37, 1));
  const FleetResult r = sim.run();

  std::ostringstream os;
  write_fleet_jsonl(r, os);
  std::istringstream is(os.str());
  std::vector<std::string> lines;
  for (std::string line; std::getline(is, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  // 3 node lines + cluster line + fleet_summary line.
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_NE(lines[0].find("\"skipped_epochs\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"wakes\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"cluster\":true"), std::string::npos);
  EXPECT_NE(lines[3].find("\"skipped_epochs\""), std::string::npos);
  const std::string& fleet_line = lines[4];
  EXPECT_NE(fleet_line.find("\"type\":\"fleet_summary\""), std::string::npos);
  for (const char* field :
       {"\"skipped_fraction\"", "\"events_processed\"", "\"cap_revisions\"",
        "\"jobs_submitted\"", "\"jobs_completed\"", "\"jobs_migrated\"",
        "\"event_queue_peak\"", "\"mean_job_completion_epochs\""}) {
    EXPECT_NE(fleet_line.find(field), std::string::npos) << field;
  }
}

TEST(FleetSim, RunIsOneShot) {
  FleetSim sim(fake_fleet(1, 5), FleetConfig{});
  EXPECT_FALSE(sim.has_run());
  (void)sim.run();
  EXPECT_TRUE(sim.has_run());
  EXPECT_THROW(sim.run(), std::logic_error);
}

}  // namespace
}  // namespace sturgeon::fleet
