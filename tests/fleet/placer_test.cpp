// SlotPlacer strategy + bookkeeping tests.
#include "fleet/placer.h"

#include <gtest/gtest.h>

namespace sturgeon::fleet {
namespace {

using cluster::PlacementKind;

TEST(SlotPlacer, WorstFitSpreadsAcrossEmptiestNodes) {
  SlotPlacer p(PlacementKind::kWorstFit, 3, 2);
  // All equal: lowest id wins; claims then rotate to the next emptiest.
  EXPECT_EQ(p.pick(), 0);
  p.claim(0);
  EXPECT_EQ(p.pick(), 1);
  p.claim(1);
  EXPECT_EQ(p.pick(), 2);
  p.claim(2);
  EXPECT_EQ(p.pick(), 0);  // all at 1 free slot again
  p.claim(0);
  p.claim(1);
  p.claim(2);
  EXPECT_EQ(p.pick(), -1);  // full fleet
  EXPECT_EQ(p.total_free(), 0);
  p.release(1);
  EXPECT_EQ(p.pick(), 1);
}

TEST(SlotPlacer, BinPackConsolidatesOntoFullestFittingNode) {
  SlotPlacer p(PlacementKind::kBinPack, 3, 2);
  EXPECT_EQ(p.pick(), 0);  // tie toward lowest id
  p.claim(0);
  // Node 0 now has 1 free slot -- the fullest node that still fits.
  EXPECT_EQ(p.pick(), 0);
  p.claim(0);
  // Node 0 full: next job starts node 1, then keeps packing it.
  EXPECT_EQ(p.pick(), 1);
  p.claim(1);
  EXPECT_EQ(p.pick(), 1);
}

TEST(SlotPlacer, RoundRobinRotates) {
  SlotPlacer p(PlacementKind::kRoundRobin, 3, 2);
  EXPECT_EQ(p.pick(), 0);
  p.claim(0);
  EXPECT_EQ(p.pick(), 1);
  p.claim(1);
  EXPECT_EQ(p.pick(), 2);
  p.claim(2);
  EXPECT_EQ(p.pick(), 0);  // wraps
}

TEST(SlotPlacer, ExcludeSkipsTheMigrationSource) {
  SlotPlacer p(PlacementKind::kWorstFit, 2, 2);
  EXPECT_EQ(p.pick(0), 1);
  // Fill the only alternative: nowhere to migrate.
  p.claim(1);
  p.claim(1);
  EXPECT_EQ(p.pick(0), -1);
  EXPECT_EQ(p.pick(), 0);  // but a plain pick still finds node 0
}

TEST(SlotPlacerDeathTest, ChecksMisuse) {
  SlotPlacer p(PlacementKind::kWorstFit, 1, 1);
  p.claim(0);
  EXPECT_DEATH(p.claim(0), "full");
  p.release(0);
  EXPECT_DEATH(p.release(0), "no claimed slot");
}

}  // namespace
}  // namespace sturgeon::fleet
