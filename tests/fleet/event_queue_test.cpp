// EventQueue ordering contract: pop order is exactly (time, node, seq),
// a pure function of the push history.
#include "fleet/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace sturgeon::fleet {
namespace {

TEST(EventQueue, PopsByTimeThenNodeThenSeq) {
  EventQueue q;
  q.push(EventKind::kWake, 5, 2);
  q.push(EventKind::kWake, 3, 7);
  q.push(EventKind::kWake, 3, 1);
  q.push(EventKind::kJobFinish, 3, 1);  // same (time, node): seq decides
  q.push(EventKind::kRebalance, 0, -1);

  std::vector<FleetEvent> order;
  while (!q.empty()) order.push_back(q.pop());

  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0].kind, EventKind::kRebalance);
  EXPECT_EQ(order[0].node, -1);
  EXPECT_EQ(order[1].node, 1);
  EXPECT_EQ(order[1].kind, EventKind::kWake);  // pushed before kJobFinish
  EXPECT_EQ(order[2].node, 1);
  EXPECT_EQ(order[2].kind, EventKind::kJobFinish);
  EXPECT_EQ(order[3].node, 7);
  EXPECT_EQ(order[4].time, 5);
}

TEST(EventQueue, HasDueAndNextTime) {
  EventQueue q;
  EXPECT_FALSE(q.has_due(100));
  EXPECT_EQ(q.next_time(), -1);
  q.push(EventKind::kWake, 4, 0);
  EXPECT_EQ(q.next_time(), 4);
  EXPECT_FALSE(q.has_due(3));
  EXPECT_TRUE(q.has_due(4));
  EXPECT_TRUE(q.has_due(9));
}

TEST(EventQueue, TracksDepthAndPushCount) {
  EventQueue q;
  for (int i = 0; i < 6; ++i) q.push(EventKind::kWake, i, i);
  for (int i = 0; i < 4; ++i) q.pop();
  q.push(EventKind::kWake, 9, 9);
  EXPECT_EQ(q.total_pushed(), 7u);
  EXPECT_EQ(q.max_depth(), 6u);
  EXPECT_EQ(q.size(), 3u);
}

TEST(EventQueue, DuplicateKeysAllPopInPushOrder) {
  // The comms layer can deliver the same logical cap change twice; the
  // engine models that as two events with an identical (time, node)
  // key. Both must surface, adjacent, in push order (seq tie-break) --
  // never dropped, never reordered around other keys.
  EventQueue q;
  q.push(EventKind::kCapChange, 4, 2);
  q.push(EventKind::kWake, 4, 1);
  q.push(EventKind::kCapChange, 4, 2);  // duplicate delivery
  q.push(EventKind::kCapChange, 4, 2);  // and a third copy

  std::vector<FleetEvent> order;
  while (!q.empty()) order.push_back(q.pop());
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0].node, 1);
  for (int k = 1; k < 4; ++k) {
    EXPECT_EQ(order[k].node, 2);
    EXPECT_EQ(order[k].kind, EventKind::kCapChange);
  }
  EXPECT_LT(order[1].seq, order[2].seq);
  EXPECT_LT(order[2].seq, order[3].seq);
}

TEST(EventQueue, ReEnqueuedKeyOrdersByFreshSeq) {
  // Pop a (time, node) key, then re-enqueue the same key: the re-push
  // gets a fresh (larger) seq, so it sorts after anything with the same
  // key still in the heap -- pop order stays a pure function of the
  // push history even when keys are recycled.
  EventQueue q;
  q.push(EventKind::kCapChange, 7, 3);
  q.push(EventKind::kCapChange, 7, 3);
  const FleetEvent first = q.pop();
  const FleetEvent re = q.push(EventKind::kCapChange, 7, 3);
  EXPECT_GT(re.seq, first.seq);
  const FleetEvent second = q.pop();
  const FleetEvent third = q.pop();
  EXPECT_LT(second.seq, third.seq);
  EXPECT_EQ(third.seq, re.seq);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueDeathTest, ChecksMisuse) {
  EventQueue q;
  EXPECT_DEATH(q.push(EventKind::kWake, -1, 0), "negative time");
  EXPECT_DEATH(q.pop(), "empty queue");
}

}  // namespace
}  // namespace sturgeon::fleet
