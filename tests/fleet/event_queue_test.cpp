// EventQueue ordering contract: pop order is exactly (time, node, seq),
// a pure function of the push history.
#include "fleet/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace sturgeon::fleet {
namespace {

TEST(EventQueue, PopsByTimeThenNodeThenSeq) {
  EventQueue q;
  q.push(EventKind::kWake, 5, 2);
  q.push(EventKind::kWake, 3, 7);
  q.push(EventKind::kWake, 3, 1);
  q.push(EventKind::kJobFinish, 3, 1);  // same (time, node): seq decides
  q.push(EventKind::kRebalance, 0, -1);

  std::vector<FleetEvent> order;
  while (!q.empty()) order.push_back(q.pop());

  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0].kind, EventKind::kRebalance);
  EXPECT_EQ(order[0].node, -1);
  EXPECT_EQ(order[1].node, 1);
  EXPECT_EQ(order[1].kind, EventKind::kWake);  // pushed before kJobFinish
  EXPECT_EQ(order[2].node, 1);
  EXPECT_EQ(order[2].kind, EventKind::kJobFinish);
  EXPECT_EQ(order[3].node, 7);
  EXPECT_EQ(order[4].time, 5);
}

TEST(EventQueue, HasDueAndNextTime) {
  EventQueue q;
  EXPECT_FALSE(q.has_due(100));
  EXPECT_EQ(q.next_time(), -1);
  q.push(EventKind::kWake, 4, 0);
  EXPECT_EQ(q.next_time(), 4);
  EXPECT_FALSE(q.has_due(3));
  EXPECT_TRUE(q.has_due(4));
  EXPECT_TRUE(q.has_due(9));
}

TEST(EventQueue, TracksDepthAndPushCount) {
  EventQueue q;
  for (int i = 0; i < 6; ++i) q.push(EventKind::kWake, i, i);
  for (int i = 0; i < 4; ++i) q.pop();
  q.push(EventKind::kWake, 9, 9);
  EXPECT_EQ(q.total_pushed(), 7u);
  EXPECT_EQ(q.max_depth(), 6u);
  EXPECT_EQ(q.size(), 3u);
}

TEST(EventQueueDeathTest, ChecksMisuse) {
  EventQueue q;
  EXPECT_DEATH(q.push(EventKind::kWake, -1, 0), "negative time");
  EXPECT_DEATH(q.pop(), "empty queue");
}

}  // namespace
}  // namespace sturgeon::fleet
