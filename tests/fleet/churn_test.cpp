// End-to-end churn edge cases through FleetSim: admission at a full
// fleet (queue vs reject), the last-BE-job-leaving -> LS-only ->
// quiescent transition, and migration under sustained pressure. The
// bookkeeping invariants asserted here hold in every mode:
//   submitted == placed + rejected + queued_at_end
//   placed    == completed + active_at_end
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "../core/fake_models.h"
#include "core/controller.h"
#include "fleet/fleet.h"
#include "workloads/app_profile.h"

namespace sturgeon::fleet {
namespace {

using cluster::NodeSpec;

NodeSpec fake_spec(const LoadTrace& trace) {
  NodeSpec spec;
  spec.ls = find_ls("memcached");
  spec.be = be_catalog()[0];
  spec.trace = trace;
  const double qos_ms = spec.ls.qos_target_ms;
  spec.make_policy = [qos_ms](const sim::SimulatedServer& server) {
    return std::make_unique<core::SturgeonController>(
        core::testing::fake_predictor(server.machine()), qos_ms,
        server.power_budget_w());
  };
  return spec;
}

std::vector<NodeSpec> fake_fleet(int n, int duration_s, double load = 0.35) {
  std::vector<NodeSpec> specs;
  for (int i = 0; i < n; ++i) {
    specs.push_back(fake_spec(LoadTrace::constant(load, duration_s)));
  }
  return specs;
}

void expect_bookkeeping_consistent(const FleetResult& r) {
  EXPECT_EQ(r.jobs_submitted,
            r.jobs_placed + r.jobs_rejected + r.jobs_queued_at_end);
  EXPECT_EQ(r.jobs_placed, r.jobs_completed + r.jobs_active_at_end);
}

// Jobs far bigger than the run can drain, one slot per node: the fleet
// saturates immediately and every later arrival hits a full fleet.
ChurnConfig saturating_churn() {
  ChurnConfig c;
  c.enabled = true;
  c.arrival_rate_per_epoch = 2.0;
  c.mean_size_norm_s = 500.0;
  c.size_cv = 0.1;
  c.slots_per_node = 1;
  c.migrate_after_epochs = 0;  // nowhere to migrate anyway
  return c;
}

TEST(FleetChurn, FullFleetQueuesWhenConfigured) {
  FleetConfig fc;
  fc.cluster.seed = 11;
  fc.cluster.threads = 1;
  fc.churn = saturating_churn();
  fc.churn.queue_when_full = true;
  FleetSim sim(fake_fleet(2, 30), fc);
  const FleetResult r = sim.run();

  expect_bookkeeping_consistent(r);
  EXPECT_EQ(r.jobs_placed, 2u);  // one per slot, held for the whole run
  EXPECT_EQ(r.jobs_rejected, 0u);
  EXPECT_GT(r.jobs_queued_at_end, 0u);
  EXPECT_GE(r.job_queue_peak, r.jobs_queued_at_end);
  EXPECT_EQ(r.jobs_completed, 0u);
  EXPECT_EQ(r.jobs_active_at_end, 2u);
}

TEST(FleetChurn, FullFleetRejectsWhenQueueDisabled) {
  FleetConfig fc;
  fc.cluster.seed = 11;
  fc.cluster.threads = 1;
  fc.churn = saturating_churn();
  fc.churn.queue_when_full = false;
  FleetSim sim(fake_fleet(2, 30), fc);
  const FleetResult r = sim.run();

  expect_bookkeeping_consistent(r);
  EXPECT_EQ(r.jobs_placed, 2u);
  EXPECT_GT(r.jobs_rejected, 0u);
  EXPECT_EQ(r.job_queue_peak, 0u);
  EXPECT_EQ(r.jobs_queued_at_end, 0u);
}

// Sparse small jobs: nodes repeatedly drain to empty. The engine must
// flip each emptied node to LS-only (be_active false) and let it
// quiesce; BE activity must exactly track job occupancy at end of run.
TEST(FleetChurn, LastJobLeavingGoesLsOnlyAndQuiesces) {
  FleetConfig fc;
  fc.cluster.seed = 13;
  fc.cluster.threads = 2;
  fc.quiescence.enabled = true;
  fc.quiescence.min_sleep_epochs = 1;
  fc.quiescence.max_sleep_epochs = 16;
  fc.churn.enabled = true;
  fc.churn.arrival_rate_per_epoch = 0.08;
  fc.churn.mean_size_norm_s = 1.0;
  fc.churn.size_cv = 0.2;
  fc.churn.slots_per_node = 2;
  FleetSim sim(fake_fleet(2, 120), fc);
  const FleetResult r = sim.run();

  expect_bookkeeping_consistent(r);
  EXPECT_GT(r.jobs_submitted, 0u);
  EXPECT_GT(r.jobs_completed, 0u);
  // BE partition state tracks occupancy: a node holds the all-to-LS
  // partition exactly while it has no jobs.
  for (int i = 0; i < sim.num_nodes(); ++i) {
    EXPECT_EQ(sim.node(static_cast<std::size_t>(i)).be_active(),
              !sim.churn().active_on(i).empty())
        << "node " << i;
  }
  // Drained nodes actually went quiescent, not just idle-stepped.
  EXPECT_GT(r.total_skipped_epochs, 0u);
}

// A starved cluster budget keeps governors throttling; with a short
// migration fuse the engine must evict jobs off pressured hosts and
// keep every list consistent while doing so.
TEST(FleetChurn, SustainedPressureMigratesJobs) {
  FleetConfig fc;
  fc.cluster.seed = 17;
  fc.cluster.threads = 2;
  fc.cluster.oversubscription = 0.55;  // heavy power starvation
  fc.quiescence.enabled = true;
  fc.quiescence.min_sleep_epochs = 1;
  fc.churn.enabled = true;
  fc.churn.arrival_rate_per_epoch = 0.8;
  fc.churn.mean_size_norm_s = 40.0;
  fc.churn.size_cv = 0.3;
  fc.churn.slots_per_node = 2;
  fc.churn.migrate_after_epochs = 3;
  fc.job_placement = cluster::PlacementKind::kBinPack;  // pile onto few
  FleetSim sim(fake_fleet(4, 80, 0.6), fc);
  const FleetResult r = sim.run();

  expect_bookkeeping_consistent(r);
  EXPECT_GT(r.jobs_migrated, 0u);
  EXPECT_LE(r.cluster.max_cap_sum_ratio, 1.0 + 1e-9);
  for (int i = 0; i < sim.num_nodes(); ++i) {
    EXPECT_EQ(sim.node(static_cast<std::size_t>(i)).be_active(),
              !sim.churn().active_on(i).empty())
        << "node " << i;
  }
}

// Churn also rides the lockstep (no-skip) path: same invariants, and
// the run is seed-deterministic across thread counts there too.
TEST(FleetChurn, LockstepChurnIsDeterministicAndConsistent) {
  auto run_with = [](std::size_t threads) {
    FleetConfig fc;
    fc.cluster.seed = 19;
    fc.cluster.threads = threads;
    fc.churn.enabled = true;
    fc.churn.arrival_rate_per_epoch = 0.5;
    fc.churn.mean_size_norm_s = 3.0;
    fc.churn.slots_per_node = 2;
    FleetSim sim(fake_fleet(3, 40), fc);
    return sim.run();
  };
  const FleetResult a = run_with(1);
  const FleetResult b = run_with(4);
  expect_bookkeeping_consistent(a);
  EXPECT_GT(a.jobs_submitted, 0u);
  EXPECT_GT(a.jobs_completed, 0u);
  EXPECT_EQ(a.jobs_submitted, b.jobs_submitted);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.cluster.fleet_qos_guarantee_rate,
            b.cluster.fleet_qos_guarantee_rate);
  EXPECT_EQ(a.cluster.aggregate_be_throughput,
            b.cluster.aggregate_be_throughput);
  // Lockstep path: no events, no skipping.
  EXPECT_EQ(a.total_skipped_epochs, 0u);
  EXPECT_EQ(a.events_processed, 0u);
}

}  // namespace
}  // namespace sturgeon::fleet
