#include "workloads/load_trace.h"

#include <gtest/gtest.h>

namespace sturgeon {
namespace {

TEST(LoadTrace, RampUpDownShape) {
  const auto t = LoadTrace::ramp_up_down(0.2, 0.8, 100);
  EXPECT_EQ(t.duration_s(), 100);
  EXPECT_NEAR(t.at(0), 0.2, 1e-9);
  EXPECT_NEAR(t.at(50), 0.8, 0.02);
  EXPECT_NEAR(t.at(99), 0.2, 0.02);
  // Monotone up then down.
  for (int i = 1; i < 50; ++i) EXPECT_GE(t.at(i), t.at(i - 1) - 1e-12);
  for (int i = 51; i < 100; ++i) EXPECT_LE(t.at(i), t.at(i - 1) + 1e-12);
}

TEST(LoadTrace, RampEndpoints) {
  const auto t = LoadTrace::ramp(0.2, 0.5, 400);
  EXPECT_DOUBLE_EQ(t.at(0), 0.2);
  EXPECT_DOUBLE_EQ(t.at(399), 0.5);
  EXPECT_NEAR(t.at(200), 0.35, 0.01);
}

TEST(LoadTrace, DiurnalMinAtStartMaxAtMiddle) {
  const auto t = LoadTrace::diurnal(0.1, 0.9, 240);
  EXPECT_NEAR(t.at(0), 0.1, 1e-9);
  EXPECT_NEAR(t.at(120), 0.9, 1e-3);
  for (int i = 0; i < 240; ++i) {
    EXPECT_GE(t.at(i), 0.1 - 1e-12);
    EXPECT_LE(t.at(i), 0.9 + 1e-12);
  }
}

TEST(LoadTrace, ConstantAndSteps) {
  const auto c = LoadTrace::constant(0.5, 10);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(c.at(i), 0.5);

  const auto s = LoadTrace::steps({0.2, 0.7}, 5);
  EXPECT_EQ(s.duration_s(), 10);
  EXPECT_DOUBLE_EQ(s.at(0), 0.2);
  EXPECT_DOUBLE_EQ(s.at(4), 0.2);
  EXPECT_DOUBLE_EQ(s.at(5), 0.7);
}

TEST(LoadTrace, ClampsOutOfRangeTime) {
  const auto t = LoadTrace::ramp(0.2, 0.6, 10);
  EXPECT_DOUBLE_EQ(t.at(-5), 0.2);
  EXPECT_DOUBLE_EQ(t.at(1000), 0.6);
}

TEST(LoadTrace, NoiseBoundedAndDeterministic) {
  const auto base = LoadTrace::constant(0.5, 200);
  const auto a = base.with_noise(0.1, 7);
  const auto b = base.with_noise(0.1, 7);
  const auto c = base.with_noise(0.1, 8);
  bool differs_seed = false, differs_base = false;
  for (int i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(a.at(i), b.at(i));
    EXPECT_GE(a.at(i), 0.01);
    EXPECT_LE(a.at(i), 1.0);
    differs_seed |= a.at(i) != c.at(i);
    differs_base |= a.at(i) != base.at(i);
  }
  EXPECT_TRUE(differs_seed);
  EXPECT_TRUE(differs_base);
}

TEST(LoadTrace, SingleIntervalClampsEverywhere) {
  // A one-second trace is legal and answers every query time with its
  // only level (the cluster layer steps shorter traces past their end
  // when fleets mix trace lengths).
  const auto t = LoadTrace::constant(0.35, 1);
  EXPECT_EQ(t.duration_s(), 1);
  EXPECT_DOUBLE_EQ(t.at(-1), 0.35);
  EXPECT_DOUBLE_EQ(t.at(0), 0.35);
  EXPECT_DOUBLE_EQ(t.at(1), 0.35);
  EXPECT_DOUBLE_EQ(t.at(1000000), 0.35);

  const auto s = LoadTrace::steps({0.8}, 1);
  EXPECT_EQ(s.duration_s(), 1);
  EXPECT_DOUBLE_EQ(s.at(5), 0.8);
}

TEST(LoadTrace, NoiseOnSingleIntervalStaysBounded) {
  const auto t = LoadTrace::constant(0.5, 1).with_noise(0.5, 21);
  EXPECT_EQ(t.duration_s(), 1);
  EXPECT_GE(t.at(0), 0.01);
  EXPECT_LE(t.at(0), 1.0);
}

TEST(LoadTrace, RejectsEmptyTraces) {
  // Every factory refuses to build a zero-length trace: at() would have
  // no level to clamp to.
  EXPECT_THROW(LoadTrace::constant(0.5, 0), std::invalid_argument);
  EXPECT_THROW(LoadTrace::ramp(0.2, 0.8, 0), std::invalid_argument);
  EXPECT_THROW(LoadTrace::ramp_up_down(0.2, 0.8, 0), std::invalid_argument);
  EXPECT_THROW(LoadTrace::diurnal(0.2, 0.8, 0), std::invalid_argument);
  EXPECT_THROW(LoadTrace::steps({}, 3), std::invalid_argument);
}

TEST(LoadTrace, RejectsBadParameters) {
  EXPECT_THROW(LoadTrace::ramp_up_down(0.2, 0.8, 1), std::invalid_argument);
  EXPECT_THROW(LoadTrace::constant(1.5, 10), std::invalid_argument);
  EXPECT_THROW(LoadTrace::constant(-0.1, 10), std::invalid_argument);
  EXPECT_THROW(LoadTrace::steps({}, 5), std::invalid_argument);
  EXPECT_THROW(LoadTrace::steps({0.5}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace sturgeon
