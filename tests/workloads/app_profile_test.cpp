#include "workloads/app_profile.h"

#include <gtest/gtest.h>

#include <set>

namespace sturgeon {
namespace {

TEST(Catalog, PaperWorkloadsPresent) {
  const auto& ls = ls_catalog();
  ASSERT_EQ(ls.size(), 3u);
  EXPECT_EQ(ls[0].name, "memcached");
  EXPECT_EQ(ls[1].name, "xapian");
  EXPECT_EQ(ls[2].name, "img-dnn");

  const auto& be = be_catalog();
  ASSERT_EQ(be.size(), 6u);
  std::set<std::string> names;
  for (const auto& b : be) names.insert(b.name);
  for (const char* n : {"bs", "fa", "fe", "rt", "sp", "fd"}) {
    EXPECT_EQ(names.count(n), 1u) << n;
  }
}

TEST(Catalog, PaperQosTargetsAndPeaks) {
  EXPECT_DOUBLE_EQ(find_ls("memcached").qos_target_ms, 10.0);
  EXPECT_DOUBLE_EQ(find_ls("xapian").qos_target_ms, 15.0);
  EXPECT_DOUBLE_EQ(find_ls("img-dnn").qos_target_ms, 10.0);
  EXPECT_DOUBLE_EQ(find_ls("memcached").peak_qps, 60000);
  EXPECT_DOUBLE_EQ(find_ls("xapian").peak_qps, 3500);
  EXPECT_DOUBLE_EQ(find_ls("img-dnn").peak_qps, 3000);
}

TEST(Catalog, ProfilesAreSane) {
  for (const auto& ls : ls_catalog()) {
    EXPECT_GT(ls.work_ghz_ms, 0.0) << ls.name;
    EXPECT_GT(ls.sim_scale, 0.0) << ls.name;
    EXPECT_LE(ls.sim_scale, 1.0) << ls.name;
    EXPECT_GE(ls.service_cv, 0.0) << ls.name;
    EXPECT_GT(ls.cache_wss_mb, 0.0) << ls.name;
    EXPECT_GT(ls.sim_peak_qps(), 0.0) << ls.name;
  }
  for (const auto& be : be_catalog()) {
    EXPECT_GT(be.parallel_fraction, 0.5) << be.name;
    EXPECT_LT(be.parallel_fraction, 1.0) << be.name;
    EXPECT_GT(be.freq_exponent, 0.0) << be.name;
    EXPECT_LE(be.freq_exponent, 1.0) << be.name;
    EXPECT_GT(be.power_activity, 0.5) << be.name;
  }
}

TEST(Catalog, PreferenceDiversityEncoded) {
  // The paper's finding requires diverse BE profiles: at least one
  // near-linear scaler with full frequency gain (bs/sp) and at least one
  // memory-bound app with weak frequency gain (fd/fe).
  const auto& bs = find_be("bs");
  const auto& fd = find_be("fd");
  EXPECT_GT(bs.parallel_fraction, 0.99);
  EXPECT_DOUBLE_EQ(bs.freq_exponent, 1.0);
  EXPECT_LT(fd.freq_exponent, 0.7);
  EXPECT_GT(fd.bw_gbps_max, 2.0 * bs.bw_gbps_max);
}

TEST(Catalog, BeActivityGenerallyAboveLs) {
  // Fig 2's root cause: BE apps draw more power than the LS services at
  // equal resources (on average).
  double ls_mean = 0.0, be_mean = 0.0;
  for (const auto& ls : ls_catalog()) ls_mean += ls.power_activity;
  for (const auto& be : be_catalog()) be_mean += be.power_activity;
  EXPECT_GT(be_mean / 6.0, ls_mean / 3.0);
}

TEST(Catalog, FindThrowsOnUnknown) {
  EXPECT_THROW(find_ls("nginx"), std::invalid_argument);
  EXPECT_THROW(find_be("x264"), std::invalid_argument);
}

TEST(Amdahl, KnownValues) {
  EXPECT_DOUBLE_EQ(amdahl_speedup(1, 0.9), 1.0);
  EXPECT_NEAR(amdahl_speedup(2, 1.0 - 1e-13), 2.0, 1e-9);
  // p=0.5, n->inf converges to 2.
  EXPECT_NEAR(amdahl_speedup(1000000, 0.5), 2.0, 0.01);
  EXPECT_DOUBLE_EQ(amdahl_speedup(0, 0.9), 0.0);
  EXPECT_THROW(amdahl_speedup(4, -0.1), std::invalid_argument);
  EXPECT_THROW(amdahl_speedup(4, 1.1), std::invalid_argument);
}

TEST(Amdahl, MonotoneWithDiminishingReturns) {
  double prev = 0.0;
  double prev_gain = 1e9;
  for (int n = 1; n <= 20; ++n) {
    const double s = amdahl_speedup(n, 0.95);
    EXPECT_GT(s, prev);
    if (n > 1) {
      const double gain = s - prev;
      EXPECT_LE(gain, prev_gain + 1e-12);
      prev_gain = gain;
    }
    prev = s;
  }
}

}  // namespace
}  // namespace sturgeon
