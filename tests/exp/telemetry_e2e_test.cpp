// End-to-end observability contract: a full controller run produces a
// span trace whose per-phase counts reconcile with the registry's
// histograms, early-aborted runs still flush valid telemetry, and every
// policy answers the uniform describe()/last_decision() interface.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>

#include "baselines/heracles.h"
#include "baselines/parties.h"
#include "baselines/static_policy.h"
#include "core/controller.h"
#include "exp/model_registry.h"
#include "exp/runner.h"

namespace sturgeon::exp {
namespace {

core::TrainerConfig small_config() {
  core::TrainerConfig cfg;
  cfg.ls_samples = 250;
  cfg.ls_boundary_searches = 60;
  cfg.be_samples = 150;
  cfg.seed = 0xFEED;  // shared by all tests in this binary
  return cfg;
}

TEST(TelemetryE2E, SturgeonEpochSpansReconcileWithHistograms) {
  const auto& ls = find_ls("memcached");
  const auto& be = find_be("rt");
  auto predictor = predictor_for(ls, be, small_config());
  sim::SimulatedServer probe(ls, be, 7);
  core::SturgeonController sturgeon(predictor, ls.qos_target_ms,
                                    probe.power_budget_w());

  telemetry::TelemetryConfig tc;
  tc.tracing = true;
  RunConfig rc;
  rc.seed = 11;
  rc.telemetry = telemetry::TelemetryContext::make(probe.machine(), tc);
  const int duration_s = 30;
  const auto r = run_colocation(ls, be, sturgeon, LoadTrace::constant(0.4,
                                duration_s), rc);
  ASSERT_EQ(r.intervals_run, duration_s);
  ASSERT_TRUE(r.telemetry);

  const auto& spans = r.telemetry->tracer().finished();
  ASSERT_FALSE(spans.empty());

  // Index spans by id; count per phase.
  std::map<std::uint64_t, const telemetry::SpanRecord*> by_id;
  std::map<std::string, int> per_phase;
  for (const auto& s : spans) {
    by_id[s.id] = &s;
    ++per_phase[s.name];
  }
  ASSERT_EQ(by_id.size(), spans.size()) << "span ids must be unique";

  // One root epoch span per interval, each with observe + decide
  // children; the controller adds features (every decide) and search /
  // candidate_eval whenever it ran the predictor.
  EXPECT_EQ(per_phase["epoch"], duration_s);
  EXPECT_EQ(per_phase["observe"], duration_s);
  EXPECT_EQ(per_phase["decide"], duration_s);
  EXPECT_EQ(per_phase["features"], duration_s);
  EXPECT_GT(per_phase["search"], 0);
  EXPECT_EQ(per_phase["search"], per_phase["candidate_eval"]);
  EXPECT_EQ(per_phase["search"],
            static_cast<int>(sturgeon.searches_run()));

  // Nesting: epoch spans are roots; everything else has a live parent.
  for (const auto& s : spans) {
    if (s.name == "epoch") {
      EXPECT_EQ(s.parent, 0u);
      continue;
    }
    ASSERT_TRUE(by_id.count(s.parent)) << s.name << " has dangling parent";
    const auto* parent = by_id[s.parent];
    EXPECT_GE(s.start_us, parent->start_us);
    EXPECT_LE(s.start_us + s.dur_us, parent->start_us + parent->dur_us);
    if (s.name == "observe" || s.name == "decide" || s.name == "enforce") {
      EXPECT_EQ(parent->name, "epoch");
    }
    if (s.name == "features" || s.name == "search" || s.name == "balance") {
      EXPECT_EQ(parent->name, "decide");
    }
    if (s.name == "candidate_eval") {
      EXPECT_EQ(parent->name, "search");
    }
  }

  // Reconciliation contract: per-phase histogram counts == span counts.
  const auto snap = r.telemetry->metrics().snapshot();
  for (const auto& [name, hist] : snap.histograms) {
    constexpr std::string_view kPrefix = "phase.";
    constexpr std::string_view kSuffix = ".duration_us";
    if (name.rfind(kPrefix, 0) != 0 ||
        name.size() <= kPrefix.size() + kSuffix.size()) {
      continue;
    }
    const std::string phase = name.substr(
        kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
    EXPECT_EQ(hist.count, static_cast<std::uint64_t>(per_phase[phase]))
        << "histogram " << name << " disagrees with the span trace";
  }

  // Run-level instruments reflect the loop.
  auto& metrics = r.telemetry->metrics();
  EXPECT_EQ(metrics.counter("run.epochs").value(),
            static_cast<std::uint64_t>(duration_s));
  EXPECT_EQ(metrics.counter("controller.decisions").value(),
            static_cast<std::uint64_t>(duration_s));
  EXPECT_EQ(metrics.gauge("run.intervals").value(),
            static_cast<double>(duration_s));
  EXPECT_EQ(
      metrics.histogram("epoch.p95_ms", {1.0}).snapshot().count,
      static_cast<std::uint64_t>(duration_s));
}

TEST(TelemetryE2E, EarlyAbortStillFlushesValidTelemetry) {
  const auto& ls = find_ls("memcached");
  const auto& be = find_be("bs");
  const MachineSpec m = MachineSpec::xeon_e5_2630_v4();
  // Starve the LS service so every interval violates QoS.
  Partition p;
  p.ls = {1, 0, 1};
  p.be = Allocation::complement(m, p.ls, m.max_freq_level());
  baselines::StaticPolicy policy(p, "Starved");

  const std::string jsonl = ::testing::TempDir() + "abort_trace.jsonl";
  const std::string csv = ::testing::TempDir() + "abort_trace.csv";
  telemetry::TelemetryConfig tc;
  tc.tracing = true;
  tc.csv = true;
  tc.trace_jsonl_path = jsonl;
  tc.csv_path = csv;
  RunConfig rc;
  rc.telemetry = telemetry::TelemetryContext::make(m, tc);
  rc.abort_after_violation_s = 3;
  const auto r =
      run_colocation(ls, be, policy, LoadTrace::constant(0.9, 120), rc);

  EXPECT_TRUE(r.aborted);
  EXPECT_LT(r.intervals_run, 120);
  EXPECT_GE(r.intervals_run, 3);
  // The partial run still produced complete, parseable sinks.
  ASSERT_TRUE(r.trace);
  EXPECT_EQ(r.trace->rows().size(),
            static_cast<std::size_t>(r.intervals_run));
  std::ifstream jf(jsonl);
  ASSERT_TRUE(jf.good());
  std::string line, last;
  int span_lines = 0;
  while (std::getline(jf, line)) {
    if (line.find("\"type\":\"span\"") != std::string::npos) ++span_lines;
    last = line;
  }
  EXPECT_GT(span_lines, 0);
  EXPECT_NE(last.find("\"type\":\"run_summary\""), std::string::npos);
  std::ifstream cf(csv);
  ASSERT_TRUE(cf.good());
  std::getline(cf, line);
  EXPECT_EQ(line.rfind("t_s,", 0), 0u);
  // Metrics were published despite the abort.
  EXPECT_EQ(r.telemetry->metrics().gauge("run.intervals").value(),
            static_cast<double>(r.intervals_run));
  std::remove(jsonl.c_str());
  std::remove(csv.c_str());
}

TEST(TelemetryE2E, AllPoliciesImplementDescribeAndLastDecision) {
  const auto& ls = find_ls("memcached");
  const auto& be = find_be("bs");
  const MachineSpec m = MachineSpec::xeon_e5_2630_v4();
  auto predictor = predictor_for(ls, be, small_config());
  sim::SimulatedServer probe(ls, be, 7);
  const double budget = probe.power_budget_w();

  core::SturgeonController sturgeon(predictor, ls.qos_target_ms, budget);
  baselines::PartiesOptions po;
  po.power_budget_w = budget;
  baselines::PartiesController parties(m, ls.qos_target_ms, po);
  baselines::HeraclesOptions ho;
  ho.power_budget_w = budget;
  baselines::HeraclesController heracles(m, ls.qos_target_ms, ho);
  Partition fixed;
  fixed.ls = {8, m.max_freq_level(), 10};
  fixed.be = Allocation::complement(m, fixed.ls, 4);
  baselines::StaticPolicy fixed_policy(fixed, "Fixed");

  core::Policy* policies[] = {&sturgeon, &parties, &heracles, &fixed_policy};
  for (core::Policy* policy : policies) {
    SCOPED_TRACE(policy->name());
    // describe() is a superset of name(): same identity, plus tuning.
    EXPECT_NE(policy->describe().find(policy->name()), std::string::npos);
    EXPECT_GE(policy->describe().size(), policy->name().size());

    // Before any decision, last_decision() is the default.
    policy->reset();
    EXPECT_EQ(policy->last_decision().epoch, 0u);
    EXPECT_EQ(policy->last_decision().action, core::Action::kNone);

    RunConfig rc;
    rc.seed = 3;
    const int duration_s = 10;
    const auto r = run_colocation(ls, be, *policy,
                                  LoadTrace::constant(0.3, duration_s), rc);
    EXPECT_EQ(r.intervals_run, duration_s);
    EXPECT_EQ(policy->last_decision().epoch,
              static_cast<std::uint64_t>(duration_s));
    EXPECT_NE(policy->last_decision().action, core::Action::kNone);

    policy->reset();
    EXPECT_EQ(policy->last_decision().epoch, 0u);
    EXPECT_EQ(policy->last_decision().action, core::Action::kNone);
  }
}

}  // namespace
}  // namespace sturgeon::exp
