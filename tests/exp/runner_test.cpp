// Integration tests: full co-location runs through the isolation layer
// with trained models (reduced profiling campaign for speed).
#include "exp/runner.h"

#include <gtest/gtest.h>

#include "baselines/parties.h"
#include "baselines/static_policy.h"
#include "core/controller.h"
#include "exp/model_registry.h"

namespace sturgeon::exp {
namespace {

core::TrainerConfig small_config() {
  core::TrainerConfig cfg;
  cfg.ls_samples = 250;
  cfg.ls_boundary_searches = 60;
  cfg.be_samples = 150;
  cfg.seed = 0xFEED;  // shared by all tests in this binary
  return cfg;
}

TEST(Runner, StaticPolicyHoldsItsPartition) {
  const auto& ls = find_ls("memcached");
  const auto& be = find_be("bs");
  const MachineSpec m = MachineSpec::xeon_e5_2630_v4();
  Partition p;
  p.ls = {8, m.max_freq_level(), 10};
  p.be = Allocation::complement(m, p.ls, 4);
  baselines::StaticPolicy policy(p, "Fixed");
  RunConfig rc;
  rc.record_trace = true;
  const auto r = run_colocation(ls, be, policy, LoadTrace::constant(0.2, 20),
                                rc);
  ASSERT_TRUE(r.trace);
  ASSERT_EQ(r.trace->rows().size(), 20u);
  // From t=1 on, the applied partition is the static one.
  for (std::size_t i = 1; i < r.trace->rows().size(); ++i) {
    EXPECT_EQ(r.trace->rows()[i].partition, p);
  }
  EXPECT_GT(r.mean_be_throughput_norm, 0.0);
}

TEST(Runner, DeterministicForSeed) {
  const auto& ls = find_ls("memcached");
  const auto& be = find_be("bs");
  baselines::PartiesOptions po;
  po.power_budget_w = 117.0;
  baselines::PartiesController policy(MachineSpec::xeon_e5_2630_v4(), 10.0,
                                      po);
  RunConfig rc;
  rc.seed = 5;
  const auto trace = LoadTrace::ramp_up_down(0.2, 0.6, 40);
  const auto a = run_colocation(ls, be, policy, trace, rc);
  const auto b = run_colocation(ls, be, policy, trace, rc);
  EXPECT_DOUBLE_EQ(a.qos_guarantee_rate, b.qos_guarantee_rate);
  EXPECT_DOUBLE_EQ(a.mean_be_throughput_norm, b.mean_be_throughput_norm);
}

TEST(Runner, SturgeonEndToEndHoldsQosAndHarvests) {
  const auto& ls = find_ls("memcached");
  const auto& be = find_be("rt");
  const auto predictor = predictor_for(ls, be, small_config());
  sim::SimulatedServer probe(ls, be, 7);
  core::SturgeonController sturgeon(predictor, ls.qos_target_ms,
                                    probe.power_budget_w());
  RunConfig rc;
  rc.seed = 42;
  const auto r = run_colocation(ls, be, sturgeon,
                                LoadTrace::ramp_up_down(0.2, 0.8, 120), rc);
  EXPECT_GT(r.qos_guarantee_rate, 0.90);
  EXPECT_GT(r.mean_be_throughput_norm, 0.25);
  EXPECT_LT(r.max_power_ratio, 1.06);
  EXPECT_GT(sturgeon.searches_run(), 0u);
}

TEST(Runner, SturgeonBeatsPartiesOnThroughput) {
  const auto& ls = find_ls("memcached");
  const auto& be = find_be("rt");
  const auto predictor = predictor_for(ls, be, small_config());
  sim::SimulatedServer probe(ls, be, 7);
  const double budget = probe.power_budget_w();
  const auto trace = LoadTrace::ramp_up_down(0.2, 0.8, 120);
  RunConfig rc;
  rc.seed = 42;

  core::SturgeonController sturgeon(predictor, ls.qos_target_ms, budget);
  const auto r_st = run_colocation(ls, be, sturgeon, trace, rc);

  baselines::PartiesOptions po;
  po.power_budget_w = budget;
  baselines::PartiesController parties(probe.machine(), ls.qos_target_ms,
                                       po);
  const auto r_pa = run_colocation(ls, be, parties, trace, rc);

  EXPECT_GT(r_st.mean_be_throughput_norm, r_pa.mean_be_throughput_norm);
}

TEST(Runner, BalancerClosesTheNoBQosGap) {
  // fd pairs suffer persistent bandwidth contention: the ablation without
  // the balancer must lose QoS, the full controller must not.
  const auto& ls = find_ls("memcached");
  const auto& be = find_be("fd");
  const auto predictor = predictor_for(ls, be, small_config());
  sim::SimulatedServer probe(ls, be, 7);
  const double budget = probe.power_budget_w();
  const auto trace = LoadTrace::ramp_up_down(0.2, 0.8, 120);
  RunConfig rc;
  rc.seed = 42;

  core::SturgeonController sturgeon(predictor, ls.qos_target_ms, budget);
  const auto r_full = run_colocation(ls, be, sturgeon, trace, rc);

  core::SturgeonOptions nob;
  nob.enable_balancer = false;
  core::SturgeonController no_balancer(predictor, ls.qos_target_ms, budget,
                                       nob);
  const auto r_nob = run_colocation(ls, be, no_balancer, trace, rc);

  EXPECT_GT(r_full.qos_guarantee_rate, r_nob.qos_guarantee_rate + 0.1);
}

TEST(ModelRegistry, CachesAndGuardsSeeds) {
  const auto& ls = find_ls("memcached");
  const auto& be = find_be("rt");
  const auto a = predictor_for(ls, be, small_config());
  const auto b = predictor_for(ls, be, small_config());
  EXPECT_EQ(a.get(), b.get());  // cached

  core::TrainerConfig other = small_config();
  other.seed = 0xDEAD;
  EXPECT_THROW(predictor_for(ls, be, other), std::logic_error);
}

}  // namespace
}  // namespace sturgeon::exp
