#include "exp/ground_truth.h"

#include <gtest/gtest.h>

namespace sturgeon::exp {
namespace {

const MachineSpec m = MachineSpec::xeon_e5_2630_v4();

TEST(GroundTruth, MeasureConfigurationIsDeterministic) {
  const auto& ls = find_ls("memcached");
  const auto& be = find_be("rt");
  Partition p;
  p.ls = {4, m.level_for(1.6), 6};
  p.be = Allocation::complement(m, p.ls, 8);
  const auto a = measure_configuration(ls, be, p, 0.2, 3, 9);
  const auto b = measure_configuration(ls, be, p, 0.2, 3, 9);
  EXPECT_DOUBLE_EQ(a.p95_ms, b.p95_ms);
  EXPECT_DOUBLE_EQ(a.peak_power_w, b.peak_power_w);
  EXPECT_DOUBLE_EQ(a.be_throughput_norm, b.be_throughput_norm);
}

TEST(GroundTruth, MeasureReportsQosAgainstTarget) {
  const auto& ls = find_ls("memcached");
  const auto& be = find_be("bs");
  // Generous slice at low load: met. Starved slice at high load: not.
  Partition good;
  good.ls = {16, m.max_freq_level(), 16};
  good.be = Allocation::complement(m, good.ls, 0);
  EXPECT_TRUE(measure_configuration(ls, be, good, 0.2).qos_met);

  Partition bad;
  bad.ls = {2, 0, 2};
  bad.be = Allocation::complement(m, bad.ls, 0);
  const auto point = measure_configuration(ls, be, bad, 0.8);
  EXPECT_FALSE(point.qos_met);
  EXPECT_GT(point.p95_ms, ls.qos_target_ms);
}

TEST(GroundTruth, MinAllocationMatchesPaperAnchor) {
  // Paper Section III-B: ~4 cores at ~1.6 GHz with ~6 ways suffice for
  // memcached at 20% load. Allow a band around the anchor.
  const auto slice =
      measured_min_ls_allocation(find_ls("memcached"), 0.2, m);
  EXPECT_GE(slice.cores, 3);
  EXPECT_LE(slice.cores, 6);
  EXPECT_GE(m.freq_at(slice.freq_level), 1.3);
  EXPECT_LE(m.freq_at(slice.freq_level), 1.9);
  EXPECT_LE(slice.llc_ways, 16);
}

TEST(GroundTruth, MinAllocationIsActuallyFeasible) {
  for (const auto& ls : ls_catalog()) {
    const auto slice = measured_min_ls_allocation(ls, 0.3, m);
    Partition p;
    p.ls = slice;
    p.be = AppSlice{0, 0, 0};
    const auto point =
        measure_configuration(ls, be_catalog().front(), p, 0.3);
    EXPECT_TRUE(point.qos_met) << ls.name;
  }
}

TEST(GroundTruth, MinAllocationGrowsWithLoad) {
  const auto& ls = find_ls("xapian");
  const auto lo = measured_min_ls_allocation(ls, 0.2, m);
  const auto hi = measured_min_ls_allocation(ls, 0.7, m);
  const double cap_lo = lo.cores * m.freq_at(lo.freq_level);
  const double cap_hi = hi.cores * m.freq_at(hi.freq_level);
  EXPECT_GT(cap_hi, cap_lo);
}

}  // namespace
}  // namespace sturgeon::exp
