#include "telemetry/recorder.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sturgeon::telemetry {
namespace {

sim::ServerTelemetry sample(double load, double p95) {
  sim::ServerTelemetry t;
  t.load_fraction = load;
  t.qps_real = load * 60000;
  t.ls.p95_ms = p95;
  t.power_w = 100.0;
  t.be_throughput_norm = 0.5;
  return t;
}

Partition partition() {
  Partition p;
  p.ls = {4, 4, 6};
  p.be = {16, 8, 14};
  return p;
}

TEST(TraceRecorder, RecordsRows) {
  TraceRecorder rec(MachineSpec::xeon_e5_2630_v4());
  EXPECT_TRUE(rec.empty());
  rec.record(0, sample(0.2, 5.0), partition());
  rec.record(1, sample(0.3, 6.0), partition());
  ASSERT_EQ(rec.rows().size(), 2u);
  EXPECT_EQ(rec.rows()[1].t_s, 1);
  EXPECT_DOUBLE_EQ(rec.rows()[1].p95_ms, 6.0);
  EXPECT_EQ(rec.rows()[0].partition.ls.cores, 4);
}

TEST(TraceRecorder, CsvHasHeaderAndRows) {
  TraceRecorder rec(MachineSpec::xeon_e5_2630_v4());
  rec.record(0, sample(0.2, 5.0), partition());
  std::ostringstream os;
  rec.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("t_s,load,qps,p95_ms"), std::string::npos);
  EXPECT_NE(out.find("\n0.000000,0.200000"), std::string::npos);
  // 1 header + 1 data row.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(TraceRecorder, SummaryStrides) {
  TraceRecorder rec(MachineSpec::xeon_e5_2630_v4());
  for (int t = 0; t < 10; ++t) {
    rec.record(t, sample(0.2, 5.0), partition());
  }
  std::ostringstream os;
  rec.write_summary(os, 5);
  const std::string out = os.str();
  // Header + rule + rows for t=0 and t=5.
  EXPECT_NE(out.find("<4C, 1.6F, 6L; 16C, 2.0F, 14L>"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_THROW(rec.write_summary(os, 0), std::invalid_argument);
}

}  // namespace
}  // namespace sturgeon::telemetry
