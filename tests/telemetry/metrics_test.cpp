#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

namespace sturgeon::telemetry {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentIncrementsAreLossless) {
  // Exercised under TSan by the sanitizer CI legs: many threads hammer
  // one counter through the sharded hot path; value() reads while
  // writers run and the final sum must be exact.
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&c] {
      for (int j = 0; j < kPerThread; ++j) c.inc();
    });
  }
  while (c.value() < 1000) {
  }  // concurrent snapshot-on-read
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAndReset) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.25);
  EXPECT_EQ(g.value(), 3.25);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketBoundariesAreUpperEdgeInclusive) {
  // Bucket i holds x <= bounds[i]: an observation exactly on an edge
  // lands in that edge's bucket, one past it in the next.
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (edge inclusive)
  h.observe(1.001); // bucket 1
  h.observe(2.0);   // bucket 1
  h.observe(4.0);   // bucket 2
  h.observe(4.001); // overflow
  h.observe(100.0); // overflow
  const auto s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 2u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 2u);
  EXPECT_EQ(s.count, 7u);
  EXPECT_EQ(s.min, 0.5);
  EXPECT_EQ(s.max, 100.0);
}

TEST(Histogram, QuantilesInterpolateAndClampToObservedRange) {
  Histogram h(Histogram::linear_bounds(10.0, 10.0, 10));
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
  // Every bucket holds 10 evenly spread observations, so quantiles track
  // the underlying uniform distribution to within one bucket width.
  EXPECT_NEAR(s.quantile(0.5), 50.0, 10.0);
  EXPECT_NEAR(s.quantile(0.95), 95.0, 10.0);
  // q=0/1 clamp to the observed extremes, not the bucket edges.
  EXPECT_EQ(s.quantile(0.0), 1.0);
  EXPECT_EQ(s.quantile(1.0), 100.0);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  Histogram h({1.0, 2.0});
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.quantile(0.5), 0.0);
}

TEST(Histogram, RejectsNonAscendingBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({}), std::invalid_argument);
}

TEST(Histogram, BoundsFactories) {
  EXPECT_EQ(Histogram::exponential_bounds(1.0, 2.0, 4),
            (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  EXPECT_EQ(Histogram::linear_bounds(0.0, 10.0, 3),
            (std::vector<double>{0.0, 10.0, 20.0}));
}

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
  MetricsRegistry r;
  Counter& a = r.counter("x.events");
  Counter& b = r.counter("x.events");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  Histogram& h1 = r.histogram("x.lat", {1.0, 2.0});
  Histogram& h2 = r.histogram("x.lat", {9.0});  // bounds ignored on reuse
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsRegistry, NameKindConflictThrows) {
  MetricsRegistry r;
  r.counter("x");
  EXPECT_THROW(r.gauge("x"), std::invalid_argument);
  EXPECT_THROW(r.histogram("x", {1.0}), std::invalid_argument);
  r.gauge("g");
  EXPECT_THROW(r.counter("g"), std::invalid_argument);
}

TEST(MetricsRegistry, SnapshotIsNameSortedAndComplete) {
  MetricsRegistry r;
  r.counter("b.count").add(2);
  r.counter("a.count").add(1);
  r.gauge("z.gauge").set(7.0);
  r.duration_histogram("m.hist").observe(3.0);
  const auto snap = r.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.count");
  EXPECT_EQ(snap.counters[0].second, 1u);
  EXPECT_EQ(snap.counters[1].first, "b.count");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 7.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);
}

TEST(MetricsRegistry, ResetZeroesButKeepsInstruments) {
  MetricsRegistry r;
  Counter& c = r.counter("c");
  c.add(5);
  r.gauge("g").set(1.0);
  r.duration_histogram("h").observe(2.0);
  r.reset();
  EXPECT_EQ(c.value(), 0u);  // same instrument, zeroed
  EXPECT_EQ(r.gauge("g").value(), 0.0);
  EXPECT_EQ(r.duration_histogram("h").snapshot().count, 0u);
}

}  // namespace
}  // namespace sturgeon::telemetry
