#include "telemetry/monitor.h"

#include <gtest/gtest.h>

namespace sturgeon::telemetry {
namespace {

sim::ServerTelemetry sample_with(double p95, double power = 100.0,
                                 std::uint64_t completed = 1000,
                                 std::uint64_t violations = 0,
                                 double be_thr = 0.5) {
  sim::ServerTelemetry t;
  t.ls.p95_ms = p95;
  t.ls.completed = completed;
  t.ls.qos_violations = violations;
  t.power_w = power;
  t.be_throughput_norm = be_thr;
  t.qos_target_ms = 10.0;
  t.qps_real = 12000;
  return t;
}

TEST(LatencySlack, Definition) {
  EXPECT_DOUBLE_EQ(latency_slack(8.0, 10.0), 0.2);
  EXPECT_DOUBLE_EQ(latency_slack(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(latency_slack(12.0, 10.0), -0.2);
  EXPECT_THROW(latency_slack(1.0, 0.0), std::invalid_argument);
}

TEST(QosMonitor, TracksLatestSample) {
  QosMonitor mon(10.0);
  EXPECT_FALSE(mon.slack().has_value());  // nothing observed yet
  mon.observe(sample_with(8.0, 90.0));
  ASSERT_TRUE(mon.slack().has_value());
  EXPECT_DOUBLE_EQ(*mon.slack(), 0.2);
  EXPECT_DOUBLE_EQ(mon.p95_ms(), 8.0);
  EXPECT_DOUBLE_EQ(mon.power_w(), 90.0);
  EXPECT_DOUBLE_EQ(mon.qps(), 12000.0);
  EXPECT_EQ(mon.samples_seen(), 1u);
}

TEST(QosMonitor, RollingWindowMean) {
  QosMonitor mon(10.0, 3);
  for (double p95 : {2.0, 4.0, 6.0, 8.0}) {
    mon.observe(sample_with(p95));
  }
  // Window holds the last 3: (4+6+8)/3.
  EXPECT_DOUBLE_EQ(mon.window_p95_ms(), 6.0);
}

TEST(QosMonitor, RejectsBadParameters) {
  EXPECT_THROW(QosMonitor(0.0), std::invalid_argument);
  EXPECT_THROW(QosMonitor(10.0, 0), std::invalid_argument);
}

TEST(RunMetrics, QosGuaranteeRate) {
  RunMetrics rm(100.0);
  rm.observe(sample_with(8.0, 90.0, 1000, 50));
  rm.observe(sample_with(9.0, 95.0, 1000, 0));
  EXPECT_DOUBLE_EQ(rm.qos_guarantee_rate(), 1950.0 / 2000.0);
  EXPECT_EQ(rm.total_completed(), 2000u);
  EXPECT_EQ(rm.total_violations(), 50u);
}

TEST(RunMetrics, EmptyRunIsPerfect) {
  RunMetrics rm(100.0);
  EXPECT_DOUBLE_EQ(rm.qos_guarantee_rate(), 1.0);
  EXPECT_DOUBLE_EQ(rm.interval_qos_rate(), 1.0);
  EXPECT_DOUBLE_EQ(rm.power_overshoot_fraction(), 0.0);
}

TEST(RunMetrics, PowerAccounting) {
  RunMetrics rm(100.0);
  rm.observe(sample_with(8.0, 90.0));
  rm.observe(sample_with(8.0, 105.0));
  rm.observe(sample_with(8.0, 99.0));
  rm.observe(sample_with(8.0, 112.0));
  EXPECT_DOUBLE_EQ(rm.power_overshoot_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(rm.max_power_ratio(), 1.12);
  EXPECT_EQ(rm.intervals(), 4u);
}

TEST(RunMetrics, IntervalQosRateUsesTarget) {
  RunMetrics rm(100.0);
  rm.observe(sample_with(8.0));   // within 10 ms target
  rm.observe(sample_with(12.0));  // violation
  EXPECT_DOUBLE_EQ(rm.interval_qos_rate(), 0.5);
}

TEST(RunMetrics, MeanBeThroughput) {
  RunMetrics rm(100.0);
  rm.observe(sample_with(8.0, 90.0, 100, 0, 0.4));
  rm.observe(sample_with(8.0, 90.0, 100, 0, 0.6));
  EXPECT_DOUBLE_EQ(rm.mean_be_throughput_norm(), 0.5);
}

TEST(RunMetrics, RejectsBadBudget) {
  EXPECT_THROW(RunMetrics(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace sturgeon::telemetry
