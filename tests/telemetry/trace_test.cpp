#include "telemetry/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <utility>

#include "telemetry/export.h"
#include "telemetry/metrics.h"

namespace sturgeon::telemetry {
namespace {

/// Deterministic microsecond clock: every call advances by `step_us`.
struct ManualClock {
  std::int64_t t = 0;
  std::int64_t step_us = 1;
  std::int64_t operator()() { return t += step_us; }
};

Tracer::Clock make_clock(std::int64_t step_us = 1) {
  return ManualClock{0, step_us};
}

TEST(Tracer, SpansNestUnderInnermostOpenSpan) {
  Tracer tracer(/*enabled=*/true, make_clock());
  {
    Span epoch = tracer.start_span("epoch");
    {
      Span decide = tracer.start_span("decide");
      Span search = tracer.start_span("search");
      search.end();
      decide.end();
    }
    Span enforce = tracer.start_span("enforce");
  }
  const auto& spans = tracer.finished();
  ASSERT_EQ(spans.size(), 4u);
  // Children finish before parents.
  EXPECT_EQ(spans[0].name, "search");
  EXPECT_EQ(spans[1].name, "decide");
  EXPECT_EQ(spans[2].name, "enforce");
  EXPECT_EQ(spans[3].name, "epoch");
  const SpanRecord& epoch = spans[3];
  EXPECT_EQ(epoch.parent, 0u);  // root
  EXPECT_EQ(spans[1].parent, epoch.id);
  EXPECT_EQ(spans[0].parent, spans[1].id);
  // enforce opened after decide closed: also a direct epoch child.
  EXPECT_EQ(spans[2].parent, epoch.id);
  // The manual clock is strictly increasing, so containment holds.
  for (const auto& s : {spans[0], spans[1], spans[2]}) {
    EXPECT_GE(s.start_us, epoch.start_us);
    EXPECT_LE(s.start_us + s.dur_us, epoch.start_us + epoch.dur_us);
  }
}

TEST(Tracer, AttrsAreTypedAndPreserved) {
  Tracer tracer(/*enabled=*/true, make_clock());
  {
    Span s = tracer.start_span("x");
    s.attr("i", 42).attr("d", 2.5).attr("s", "hello").attr("b", true);
  }
  const auto& rec = tracer.finished().at(0);
  ASSERT_EQ(rec.attrs.size(), 4u);
  EXPECT_EQ(rec.attrs[0].first, "i");
  EXPECT_EQ(std::get<std::int64_t>(rec.attrs[0].second), 42);
  EXPECT_EQ(std::get<double>(rec.attrs[1].second), 2.5);
  EXPECT_EQ(std::get<std::string>(rec.attrs[2].second), "hello");
  EXPECT_EQ(std::get<std::int64_t>(rec.attrs[3].second), 1);
}

TEST(Tracer, DisabledTracerHandsOutInertSpans) {
  Tracer tracer(/*enabled=*/false);
  {
    Span s = tracer.start_span("x");
    EXPECT_FALSE(s.active());
    s.attr("k", 1);  // no-op, no crash
  }
  EXPECT_EQ(tracer.finished_count(), 0u);
  // A default-constructed span is equally inert.
  Span inert;
  inert.attr("k", 2);
  inert.end();
}

TEST(Tracer, EndIsIdempotentAndMoveTransfersOwnership) {
  Tracer tracer(/*enabled=*/true, make_clock());
  Span a = tracer.start_span("a");
  Span b = std::move(a);
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): asserting
  EXPECT_TRUE(b.active());
  b.end();
  b.end();  // second end is a no-op
  EXPECT_EQ(tracer.finished_count(), 1u);
}

TEST(Tracer, BoundRegistryCollectsPhaseDurations) {
  MetricsRegistry registry;
  Tracer tracer(/*enabled=*/true, make_clock(/*step_us=*/10));
  tracer.bind_registry(&registry);
  for (int i = 0; i < 3; ++i) {
    Span s = tracer.start_span("decide");
  }
  {
    Span s = tracer.start_span("observe");
  }
  const auto decide =
      registry.duration_histogram("phase.decide.duration_us").snapshot();
  EXPECT_EQ(decide.count, 3u);
  EXPECT_GT(decide.sum, 0.0);
  const auto observe =
      registry.duration_histogram("phase.observe.duration_us").snapshot();
  EXPECT_EQ(observe.count, 1u);
  // The histogram is the span trace's reconciliation partner: counts must
  // equal the number of finished spans with that name.
  EXPECT_EQ(tracer.finished_count(), 4u);
}

TEST(Tracer, ClearDropsFinishedSpansOnly) {
  Tracer tracer(/*enabled=*/true, make_clock());
  Span open = tracer.start_span("open");
  { Span s = tracer.start_span("closed"); }
  EXPECT_EQ(tracer.finished_count(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.finished_count(), 0u);
  open.end();
  EXPECT_EQ(tracer.finished_count(), 1u);
  EXPECT_EQ(tracer.finished().at(0).name, "open");
}

TEST(TraceExport, JsonlGoldenSchema) {
  // Golden-file schema test: the JSONL layout is a stability contract
  // with tools/trace_stats.py and offline tooling. Field names, order,
  // and number formatting must not drift.
  Tracer tracer(/*enabled=*/true, make_clock());
  {
    Span epoch = tracer.start_span("epoch");
    epoch.attr("t_s", 0).attr("qps", 1.5).attr("tag", "a\"b");
    Span decide = tracer.start_span("decide");
  }
  std::ostringstream os;
  write_trace_jsonl(tracer.finished(), os);
  EXPECT_EQ(os.str(),
            "{\"type\":\"span\",\"id\":2,\"parent\":1,\"name\":\"decide\","
            "\"start_us\":2,\"dur_us\":1,\"attrs\":{}}\n"
            "{\"type\":\"span\",\"id\":1,\"parent\":0,\"name\":\"epoch\","
            "\"start_us\":1,\"dur_us\":3,\"attrs\":{\"t_s\":0,\"qps\":1.5,"
            "\"tag\":\"a\\\"b\"}}\n"
            "{\"type\":\"run_summary\",\"span_count\":2,\"phases\":{"
            "\"decide\":{\"count\":1,\"total_us\":1},"
            "\"epoch\":{\"count\":1,\"total_us\":3}}}\n");
}

TEST(TraceExport, JsonEscaping) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("x\ny"), "x\\ny");
  EXPECT_EQ(json_escape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

}  // namespace
}  // namespace sturgeon::telemetry
