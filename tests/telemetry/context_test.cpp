#include "telemetry/context.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

namespace sturgeon::telemetry {
namespace {

TEST(TelemetryContext, NoopDefaultsKeepMetricsButDisableSinks) {
  auto ctx = TelemetryContext::noop();
  ASSERT_TRUE(ctx);
  EXPECT_FALSE(ctx->tracing_enabled());
  EXPECT_FALSE(ctx->csv_enabled());
  // Metrics stay live -- instrument writes through a noop context are
  // cheap but not discarded.
  ctx->metrics().counter("x").inc();
  EXPECT_EQ(ctx->metrics().counter("x").value(), 1u);
  // Spans from a disabled tracer are inert.
  { Span s = ctx->tracer().start_span("epoch"); }
  EXPECT_EQ(ctx->tracer().finished_count(), 0u);
  // flush() with no file sinks configured is a no-op, not an error.
  ctx->flush();
}

TEST(TelemetryContext, MakeEnablesConfiguredFeatures) {
  TelemetryConfig cfg;
  cfg.tracing = true;
  std::int64_t t = 0;
  cfg.clock = [&t]() { return ++t; };
  auto ctx = TelemetryContext::make(MachineSpec::xeon_e5_2630_v4(), cfg);
  EXPECT_TRUE(ctx->tracing_enabled());
  { Span s = ctx->tracer().start_span("epoch"); }
  EXPECT_EQ(ctx->tracer().finished_count(), 1u);
  // Tracing binds the registry: span durations land in phase histograms.
  EXPECT_EQ(ctx->metrics()
                .duration_histogram("phase.epoch.duration_us")
                .snapshot()
                .count,
            1u);
  std::ostringstream os;
  ctx->write_trace_jsonl(os);
  EXPECT_NE(os.str().find("\"type\":\"span\""), std::string::npos);
  EXPECT_NE(os.str().find("\"type\":\"run_summary\""), std::string::npos);
}

TEST(TelemetryContext, CsvHeaderGoldenSchema) {
  // The CSV schema predates the observability layer and external tooling
  // parses it; the header is a stability contract (append-only).
  auto ctx = TelemetryContext::make(MachineSpec::xeon_e5_2630_v4(), {});
  std::ostringstream os;
  ctx->write_csv(os);
  std::string header = os.str();
  if (const auto nl = header.find('\n'); nl != std::string::npos) {
    header.resize(nl);
  }
  EXPECT_EQ(header,
            "t_s,load,qps,p95_ms,power_w,be_thr_norm,"
            "ls_cores,ls_freq_ghz,ls_ways,be_cores,be_freq_ghz,be_ways,"
            "cache_hits,cache_misses,cache_fills");
}

TEST(TelemetryContext, SummaryListsSections) {
  auto ctx = TelemetryContext::noop();
  ctx->metrics().counter("controller.searches").add(3);
  ctx->metrics().gauge("cache.hit_rate").set(0.5);
  ctx->metrics().duration_histogram("phase.search.duration_us").observe(7.0);
  std::ostringstream os;
  ctx->write_summary(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== telemetry summary =="), std::string::npos);
  EXPECT_NE(out.find("controller.searches = 3"), std::string::npos);
  EXPECT_NE(out.find("cache.hit_rate"), std::string::npos);
  EXPECT_NE(out.find("phase.search.duration_us"), std::string::npos);
}

}  // namespace
}  // namespace sturgeon::telemetry
