#include "isolation/enforcer.h"

#include <gtest/gtest.h>

#include "isolation/sim_backend.h"

namespace sturgeon::isolation {
namespace {

struct Rig {
  sim::SimulatedServer server;
  SimBackend backend;
  ResourceEnforcer enforcer;

  Rig()
      : server(find_ls("memcached"), find_be("rt"), 1,
               [] {
                 sim::ServerConfig cfg;
                 cfg.interference.enabled = false;
                 return cfg;
               }()),
        backend(server),
        enforcer(server.machine(), backend.cpuset(), backend.cat(),
                 backend.freq()) {}
};

TEST(Enforcer, AppliesTargetExactly) {
  Rig rig;
  Partition target;
  target.ls = {6, 4, 8};
  target.be = {14, 9, 12};
  rig.enforcer.apply(target);
  EXPECT_EQ(rig.server.partition(), target);
  EXPECT_EQ(rig.enforcer.current(), target);
}

TEST(Enforcer, SequencesArbitraryTransitions) {
  Rig rig;
  // Walk through transitions that shrink/grow both sides in both orders.
  const Partition steps[] = {
      {{4, 10, 6}, {16, 8, 14}},   // LS shrinks from all-to-LS
      {{12, 2, 12}, {8, 10, 8}},   // LS grows, BE shrinks
      {{3, 0, 2}, {17, 0, 18}},    // everything moves at once
      {{10, 10, 10}, {10, 5, 10}},
  };
  for (const auto& target : steps) {
    rig.enforcer.apply(target);
    EXPECT_EQ(rig.server.partition(), target)
        << target.to_string(rig.server.machine());
  }
}

TEST(Enforcer, EmptyBeSliceSupported) {
  Rig rig;
  Partition mid;
  mid.ls = {6, 4, 8};
  mid.be = {14, 9, 12};
  rig.enforcer.apply(mid);
  // Back to all-to-LS (the controller's conservative fallback).
  rig.enforcer.apply(Partition::all_to_ls(rig.server.machine()));
  EXPECT_EQ(rig.server.partition().be.cores, 0);
  EXPECT_EQ(rig.server.partition().ls.cores, 20);
}

TEST(Enforcer, DisjointLayoutByConstruction) {
  Rig rig;
  Partition target;
  target.ls = {7, 3, 9};
  target.be = {13, 8, 11};
  rig.enforcer.apply(target);
  const auto ls_set = rig.backend.cpuset().cpuset(AppId::kLs);
  const auto be_set = rig.backend.cpuset().cpuset(AppId::kBe);
  for (int c : ls_set) {
    for (int b : be_set) EXPECT_NE(c, b);
  }
  EXPECT_EQ(rig.backend.cat().way_mask(AppId::kLs) &
                rig.backend.cat().way_mask(AppId::kBe),
            0u);
}

TEST(Enforcer, RejectsInvalidTargets) {
  Rig rig;
  Partition bad;
  bad.ls = {12, 4, 10};
  bad.be = {12, 4, 12};  // cores and ways both over capacity
  EXPECT_THROW(rig.enforcer.apply(bad), std::invalid_argument);
  Partition bad2;
  bad2.ls = {0, 0, 5};
  bad2.be = {0, 0, 0};
  EXPECT_THROW(rig.enforcer.apply(bad2), std::invalid_argument);
}

TEST(Enforcer, CountsActuations) {
  Rig rig;
  const auto before = rig.enforcer.actuation_count();
  Partition target;
  target.ls = {6, 4, 8};
  target.be = {14, 9, 12};
  rig.enforcer.apply(target);
  EXPECT_GT(rig.enforcer.actuation_count(), before);
}

}  // namespace
}  // namespace sturgeon::isolation
