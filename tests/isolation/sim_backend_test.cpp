#include "isolation/sim_backend.h"

#include <gtest/gtest.h>

namespace sturgeon::isolation {
namespace {

sim::SimulatedServer make_server() {
  sim::ServerConfig cfg;
  cfg.interference.enabled = false;
  return sim::SimulatedServer(find_ls("memcached"), find_be("bs"), 1, cfg);
}

TEST(SimBackend, InitialStateMirrorsServer) {
  auto server = make_server();
  SimBackend backend(server);
  const auto p = backend.derived_partition();
  EXPECT_EQ(p.ls.cores, 20);
  EXPECT_EQ(p.ls.llc_ways, 20);
  EXPECT_EQ(p.be.cores, 0);
}

TEST(SimBackend, ToolMutationsReachTheServer) {
  auto server = make_server();
  SimBackend backend(server);
  // Shrink LS, then grant the BE side.
  backend.cpuset().set_cpuset(AppId::kLs, {0, 1, 2, 3});
  backend.cat().set_way_mask(AppId::kLs, contiguous_mask(6, 0));
  backend.cpuset().set_cpuset(AppId::kBe,
                              {4, 5, 6, 7, 8, 9, 10, 11, 12, 13});
  backend.cat().set_way_mask(AppId::kBe, contiguous_mask(10, 10));
  backend.freq().set_frequency_level({0, 1, 2, 3}, 4);
  backend.freq().set_frequency_level({4, 5, 6, 7, 8, 9, 10, 11, 12, 13}, 9);

  const auto p = server.partition();
  EXPECT_EQ(p.ls.cores, 4);
  EXPECT_EQ(p.ls.llc_ways, 6);
  EXPECT_EQ(p.ls.freq_level, 4);
  EXPECT_EQ(p.be.cores, 10);
  EXPECT_EQ(p.be.llc_ways, 10);
  EXPECT_EQ(p.be.freq_level, 9);
}

TEST(SimBackend, OverlappingCpusetsRejected) {
  auto server = make_server();
  SimBackend backend(server);
  backend.cpuset().set_cpuset(AppId::kLs, {0, 1, 2});
  EXPECT_THROW(backend.cpuset().set_cpuset(AppId::kBe, {2, 3}),
               std::invalid_argument);
}

TEST(SimBackend, OverlappingWayMasksRejected) {
  auto server = make_server();
  SimBackend backend(server);
  backend.cat().set_way_mask(AppId::kLs, 0b1111);
  EXPECT_THROW(backend.cat().set_way_mask(AppId::kBe, 0b1000),
               std::invalid_argument);
}

TEST(SimBackend, ValidationOfToolArguments) {
  auto server = make_server();
  SimBackend backend(server);
  EXPECT_THROW(backend.cpuset().set_cpuset(AppId::kLs, {20}),
               std::invalid_argument);  // core id out of range
  EXPECT_THROW(backend.cpuset().set_cpuset(AppId::kLs, {1, 1}),
               std::invalid_argument);  // duplicate
  EXPECT_THROW(backend.cat().set_way_mask(AppId::kLs, 0xFFFFFFFFu),
               std::invalid_argument);  // wider than the LLC
  EXPECT_THROW(backend.freq().set_frequency_level({0}, 42),
               std::invalid_argument);
  EXPECT_THROW(backend.freq().set_frequency_level({-1}, 3),
               std::invalid_argument);
  EXPECT_THROW(backend.freq().frequency_level(99), std::invalid_argument);
}

TEST(SimBackend, RaplReflectsObservedTelemetry) {
  auto server = make_server();
  SimBackend backend(server);
  EXPECT_DOUBLE_EQ(backend.rapl().read_package_power_w(), 0.0);
  const auto t = server.step(0.3);
  backend.observe(t);
  EXPECT_DOUBLE_EQ(backend.rapl().read_package_power_w(), t.power_w);
}

TEST(ContiguousMask, Values) {
  EXPECT_EQ(contiguous_mask(0, 0), 0u);
  EXPECT_EQ(contiguous_mask(4, 0), 0b1111u);
  EXPECT_EQ(contiguous_mask(3, 5), 0b11100000u);
  EXPECT_EQ(contiguous_mask(20, 0), 0xFFFFFu);
  EXPECT_THROW(contiguous_mask(-1, 0), std::invalid_argument);
  EXPECT_THROW(contiguous_mask(30, 10), std::invalid_argument);
}

}  // namespace
}  // namespace sturgeon::isolation
