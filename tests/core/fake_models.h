// Hand-crafted analytic models for unit-testing the predictor-driven
// components (search, balancer, controller) without any training. The
// rules are simple and exactly known, so tests can assert the searched
// configurations in closed form.
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/predictor.h"
#include "core/trainer.h"

namespace sturgeon::core::testing {

// Feature layout (core/features.h): {kQPS | input, cores, freq GHz, ways}.

/// QoS rule: feasible iff cores * freq >= demand_per_kqps * kQPS and
/// ways >= min_ways. Monotone in every resource, as the paper assumes.
class FakeQosRule : public ml::Classifier {
 public:
  explicit FakeQosRule(double demand_per_kqps = 1.0, int min_ways = 3)
      : demand_(demand_per_kqps), min_ways_(min_ways) {}

  void fit(const std::vector<ml::FeatureRow>&,
           const std::vector<int>&) override {}
  int predict(const ml::FeatureRow& row) const override {
    const double kqps = row[0], cores = row[1], freq = row[2], ways = row[3];
    return cores * freq >= demand_ * kqps && ways >= min_ways_ ? 1 : 0;
  }
  std::string name() const override { return "FakeQosRule"; }

 private:
  double demand_;
  int min_ways_;
};

/// Package power: uncore + cores * k * f^2.6 (load-independent).
class FakePowerRule : public ml::Regressor {
 public:
  explicit FakePowerRule(double uncore = 18.0, double k = 0.65)
      : uncore_(uncore), k_(k) {}

  void fit(const ml::DataSet&) override {}
  double predict(const ml::FeatureRow& row) const override {
    const double cores = row[1], freq = row[2];
    return uncore_ + cores * k_ * std::pow(freq, 2.6);
  }
  std::string name() const override { return "FakePowerRule"; }

 private:
  double uncore_, k_;
};

/// BE slice incremental power: cores * k * f^2.6.
class FakeBePowerRule : public ml::Regressor {
 public:
  explicit FakeBePowerRule(double k = 0.8) : k_(k) {}
  void fit(const ml::DataSet&) override {}
  double predict(const ml::FeatureRow& row) const override {
    const double cores = row[1], freq = row[2];
    return cores * k_ * std::pow(freq, 2.6);
  }
  std::string name() const override { return "FakeBePowerRule"; }

 private:
  double k_;
};

/// IPC rule: rises with ways, falls mildly with core count (imperfect
/// scaling) -- so throughput = ipc * cores * freq is strictly increasing
/// in cores, freq and ways, with diminishing core returns.
class FakeIpcRule : public ml::Regressor {
 public:
  void fit(const ml::DataSet&) override {}
  double predict(const ml::FeatureRow& row) const override {
    const double cores = row[1], ways = row[3];
    return (0.6 + 0.02 * ways) * (1.0 - 0.01 * cores);
  }
  std::string name() const override { return "FakeIpcRule"; }
};

inline TrainedModels fake_models(double demand_per_kqps = 1.0,
                                 int min_ways = 3) {
  TrainedModels m;
  m.ls_qos = std::make_shared<FakeQosRule>(demand_per_kqps, min_ways);
  m.ls_power = std::make_shared<FakePowerRule>();
  m.be_ipc = std::make_shared<FakeIpcRule>();
  m.be_power = std::make_shared<FakeBePowerRule>();
  m.idle_power_w = 18.0;
  return m;
}

inline std::shared_ptr<const Predictor> fake_predictor(
    const MachineSpec& machine, double demand_per_kqps = 1.0,
    int min_ways = 3) {
  return std::make_shared<const Predictor>(
      machine, fake_models(demand_per_kqps, min_ways));
}

}  // namespace sturgeon::core::testing
